(* A miniature auction in the RUBiS style (§8.1): bidders from three
   continents place strong bids on one item while browsers read causally;
   closeAuction conflicts with storeBid, so the declared PoR conflict
   relation guarantees the winner is the highest bidder.

       dune exec examples/auction.exe *)

module U = Unistore
module Client = U.Client
module Rubis = Workload.Rubis
module Fiber = Sim.Fiber

let () =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:8
      ~conflict:Rubis.conflict_spec ()
  in
  let sys = U.System.create cfg in
  let item = 7 in
  U.System.preload sys (Rubis.item_key ~iid:item ~field:0) (Crdt.Reg_write 1);
  U.System.preload sys
    (Rubis.item_key ~iid:item ~field:2 (* maxbid *))
    (Crdt.Reg_write 0);

  let maxbid_key = Rubis.item_key ~iid:item ~field:2 in
  let closed_key = Rubis.item_key ~iid:item ~field:4 in
  let winner_key = Rubis.item_key ~iid:item ~field:5 in

  (* Three bidders race; each bid is a strong transaction conflicting
     with closeAuction on the same item. *)
  let bids_placed = ref 0 in
  let bidder name dc increment =
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           for _ = 1 to 3 do
             let rec attempt n =
               Client.start c ~label:"storeBid" ~strong:true;
               let closed =
                 Client.read_int ~cls:Rubis.cls_store_bid c closed_key
               in
               if closed = 0 then begin
                 let current =
                   Client.read_int ~cls:Rubis.cls_store_bid c maxbid_key
                 in
                 Client.update ~cls:Rubis.cls_store_bid c maxbid_key
                   (Crdt.Reg_write (current + increment));
                 match Client.commit c with
                 | `Committed _ ->
                     incr bids_placed;
                     Fmt.pr "[%7d us] %s bids %d@." (U.System.now sys) name
                       (current + increment)
                 | `Aborted -> if n < 10 then attempt (n + 1)
               end
               else begin
                 ignore (Client.commit c);
                 Fmt.pr "[%7d us] %s: auction closed, bid refused@."
                   (U.System.now sys) name
               end
             in
             attempt 0;
             Fiber.sleep 300_000
           done))
  in
  bidder "bidder-va" 0 10;
  bidder "bidder-ca" 1 15;
  bidder "bidder-fra" 2 5;

  (* The seller closes the auction from Virginia after two seconds. *)
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Fiber.sleep 2_000_000;
         let rec attempt n =
           Client.start c ~label:"closeAuction" ~strong:true;
           let final_bid =
             Client.read_int ~cls:Rubis.cls_close_auction c maxbid_key
           in
           Client.update ~cls:Rubis.cls_close_auction c closed_key
             (Crdt.Reg_write 1);
           Client.update c winner_key (Crdt.Reg_write final_bid);
           match Client.commit c with
           | `Committed _ ->
               Fmt.pr "[%7d us] auction closed at winning bid %d@."
                 (U.System.now sys) final_bid
           | `Aborted -> if n < 10 then attempt (n + 1)
         in
         attempt 0));

  U.System.run sys ~until:6_000_000;

  (* Invariant: the recorded winner equals the final max bid — possible
     only because storeBid ⋈ closeAuction forces an order between the
     close and every bid. *)
  let check = ref true in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Client.start c ~label:"audit";
         let winner = Client.read_int c winner_key in
         let maxbid = Client.read_int c maxbid_key in
         let closed = Client.read_int c closed_key in
         ignore (Client.commit c);
         Fmt.pr "audit from frankfurt: closed=%d winner=%d maxbid=%d@." closed
           winner maxbid;
         check := closed = 1 && winner = maxbid));
  U.System.run sys ~until:7_000_000;
  assert !check;
  Fmt.pr "invariant holds: the winner is the highest bidder (%d bids \
          placed).@."
    !bids_placed
