(* Client migration and on-demand durability (§4, §5.6).

   A roaming user writes a draft in Virginia, runs a uniform barrier (so
   the writes are durable), migrates to Frankfurt with attach, and
   continues the session there — reading everything written before the
   move, even though Virginia fails the moment the user leaves.

       dune exec examples/migration.exe *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let () =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:8 ()
  in
  let sys = U.System.create cfg in
  let draft = 11 and revision = 12 in
  U.System.preload sys draft (Crdt.Reg_write 0);
  U.System.preload sys revision (Crdt.Ctr_add 0);

  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         (* work in Virginia *)
         Client.start c ~label:"draft";
         Client.update c draft (Crdt.Reg_write 1001);
         Client.update c revision (Crdt.Ctr_add 1);
         ignore (Client.commit c);
         Fmt.pr "[%7d us] draft v1 written in virginia@." (U.System.now sys);

         (* uniform barrier: everything this session observed is now
            durable — it will survive any f = 1 data-center failures *)
         Client.uniform_barrier c;
         Fmt.pr "[%7d us] uniform barrier done: the draft is durable@."
           (U.System.now sys);

         (* migrate: attach blocks until frankfurt has the session's past *)
         Client.attach c ~dc:2;
         Fmt.pr "[%7d us] attached to frankfurt@." (U.System.now sys);

         (* virginia fails right after the user leaves *)
         U.System.fail_dc sys 0;
         Fmt.pr "[%7d us] virginia fails@." (U.System.now sys);

         (* the session continues seamlessly *)
         Client.start c ~label:"continue";
         let v = Client.read_int c draft in
         let r = Client.read_int c revision in
         Fmt.pr "[%7d us] in frankfurt the session reads draft=%d rev=%d@."
           (U.System.now sys) v r;
         assert (v = 1001 && r = 1);
         Client.update c draft (Crdt.Reg_write 1002);
         Client.update c revision (Crdt.Ctr_add 1);
         ignore (Client.commit c);
         Fmt.pr "[%7d us] draft v2 written in frankfurt@." (U.System.now sys)));

  U.System.run sys ~until:8_000_000;

  (* the surviving DCs converge on v2 *)
  (match U.System.check_convergence sys with
  | [] -> Fmt.pr "surviving data centers converged on draft v2.@."
  | errs -> List.iter (Fmt.pr "divergence: %s@.") errs);
  Fmt.pr "migration example done.@."
