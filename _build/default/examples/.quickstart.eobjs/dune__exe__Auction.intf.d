examples/auction.mli:
