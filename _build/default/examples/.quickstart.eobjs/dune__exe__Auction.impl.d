examples/auction.ml: Crdt Fmt Net Sim Unistore Workload
