examples/sessions.mli:
