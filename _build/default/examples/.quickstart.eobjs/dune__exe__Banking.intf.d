examples/banking.mli:
