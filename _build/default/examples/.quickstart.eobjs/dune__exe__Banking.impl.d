examples/banking.ml: Crdt Fmt List Net Sim Unistore
