examples/quickstart.mli:
