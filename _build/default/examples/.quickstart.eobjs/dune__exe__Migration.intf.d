examples/migration.mli:
