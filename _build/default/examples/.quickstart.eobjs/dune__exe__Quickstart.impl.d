examples/quickstart.ml: Crdt Fmt List Net Sim Unistore Vclock
