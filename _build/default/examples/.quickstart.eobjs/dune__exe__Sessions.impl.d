examples/sessions.ml: Crdt Fmt List Net Sim Unistore
