examples/migration.ml: Crdt Fmt List Net Sim Unistore
