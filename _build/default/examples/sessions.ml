(* Session guarantees under causal consistency (§3: the causal order
   includes the session order, giving read-your-writes and friends
   [Terry et al. 63]).

   Four vignettes, one per classic session guarantee, each shaped so the
   guarantee would break on an eventually-consistent store:

   - read your writes:      a write is visible to the writer immediately;
   - monotonic reads:       once seen, never unseen;
   - writes follow reads:   a reply is never visible without the post it
                            answers;
   - monotonic writes:      a session's writes apply in session order.

       dune exec examples/sessions.exe *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let post = 1
let reply = 2
let profile = 3

let () =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:8
      ~trace_enabled:true ()
  in
  let sys = U.System.create cfg in
  U.System.preload sys post (Crdt.Reg_write 0);
  U.System.preload sys reply (Crdt.Reg_write 0);
  U.System.preload sys profile (Crdt.Reg_write 0);

  (* 1. read your writes *)
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         Client.update c profile (Crdt.Reg_write 7);
         ignore (Client.commit c);
         Client.start c;
         let v = Client.read_int c profile in
         ignore (Client.commit c);
         assert (v = 7);
         Fmt.pr "read-your-writes: immediately read back %d@." v));

  (* 2. monotonic reads: a reader that saw version 2 never sees 1 again,
     even after migrating to another data center *)
  ignore
    (U.System.spawn_client sys ~dc:0 (fun alice ->
         Fiber.sleep 100_000;
         Client.start alice;
         Client.update alice post (Crdt.Reg_write 1);
         ignore (Client.commit alice);
         Fiber.sleep 400_000;
         Client.start alice;
         Client.update alice post (Crdt.Reg_write 2);
         ignore (Client.commit alice)));
  ignore
    (U.System.spawn_client sys ~dc:1 (fun reader ->
         (* wait until version 2 is visible in California *)
         let rec poll () =
           Client.start reader;
           let v = Client.read_int reader post in
           ignore (Client.commit reader);
           if v < 2 then begin
             Fiber.sleep 20_000;
             poll ()
           end
         in
         poll ();
         (* hop to Frankfurt; the snapshot there must still contain v2 *)
         Client.migrate reader ~dc:2;
         Client.start reader;
         let v = Client.read_int reader post in
         ignore (Client.commit reader);
         assert (v >= 2);
         Fmt.pr "monotonic-reads: still sees version %d after migrating@." v));

  (* 3. writes follow reads: Bob replies only after reading the post;
     anyone who sees the reply must see the post *)
  ignore
    (U.System.spawn_client sys ~dc:1 (fun bob ->
         let rec poll () =
           Client.start bob;
           let v = Client.read_int bob post in
           ignore (Client.commit bob);
           if v = 0 then begin
             Fiber.sleep 20_000;
             poll ()
           end
         in
         poll ();
         Client.start bob;
         Client.update bob reply (Crdt.Reg_write 99);
         ignore (Client.commit bob)));
  ignore
    (U.System.spawn_client sys ~dc:2 (fun observer ->
         let violations = ref 0 and seen_reply = ref false in
         for _ = 1 to 300 do
           Client.start observer;
           let r = Client.read_int observer reply in
           let p = Client.read_int observer post in
           ignore (Client.commit observer);
           if r = 99 then begin
             seen_reply := true;
             if p = 0 then incr violations
           end;
           Fiber.sleep 10_000
         done;
         assert !seen_reply;
         assert (!violations = 0);
         Fmt.pr
           "writes-follow-reads: the reply never appeared without its post@."));

  (* 4. monotonic writes: a session writes v1 then v2; remotely, v1 can
     never overwrite v2 *)
  ignore
    (U.System.spawn_client sys ~dc:2 (fun watcher ->
         let last = ref 0 and violations = ref 0 in
         for _ = 1 to 300 do
           Client.start watcher;
           let v = Client.read_int watcher post in
           ignore (Client.commit watcher);
           if v < !last then incr violations;
           last := max !last v;
           Fiber.sleep 10_000
         done;
         assert (!violations = 0);
         Fmt.pr "monotonic-writes: versions only ever advanced remotely@."));

  U.System.run sys ~until:6_000_000;
  (match U.System.check_convergence sys with
  | [] -> Fmt.pr "all data centers converged.@."
  | errs -> List.iter (Fmt.pr "divergence: %s@.") errs);
  Fmt.pr "trace summary:@.";
  List.iter
    (fun (kind, n) -> Fmt.pr "  %-16s %d@." kind n)
    (Sim.Trace.summary (U.System.trace sys));
  Fmt.pr "session-guarantees example done.@."
