(* Quickstart: bring up a 3-data-center UniStore deployment, run causal
   and strong transactions from client fibers, and watch geo-replication
   happen.

       dune exec examples/quickstart.exe *)

module U = Unistore
module Client = U.Client

let () =
  (* Three data centers (Virginia, California, Frankfurt), 8 logical
     partitions per DC, tolerating one DC failure. *)
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:8 ~f:1
      ~mode:U.Config.Unistore ()
  in
  let sys = U.System.create cfg in

  let account = 1 and inbox = 2 in
  U.System.preload sys account (Crdt.Ctr_add 0);

  (* A client in Virginia: deposit money (causal, fast), then withdraw
     under a strong transaction (certified against conflicts). *)
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c ~label:"deposit";
         Client.update c account (Crdt.Ctr_add 100);
         Client.update c inbox (Crdt.Reg_write 1);
         (match Client.commit c with
         | `Committed vec ->
             Fmt.pr "[%6d us] deposit committed, vector %a@."
               (U.System.now sys) Vclock.Vc.pp vec
         | `Aborted -> assert false);

         Client.start c ~label:"withdraw" ~strong:true;
         let balance = Client.read_int c account in
         Fmt.pr "[%6d us] balance before withdrawal: %d@." (U.System.now sys)
           balance;
         if balance >= 50 then Client.update c account (Crdt.Ctr_add (-50));
         match Client.commit c with
         | `Committed _ ->
             Fmt.pr "[%6d us] strong withdrawal committed@." (U.System.now sys)
         | `Aborted -> Fmt.pr "withdrawal aborted; retry in real code@."));

  (* A client in Frankfurt sees the updates once they are uniform. *)
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Sim.Fiber.sleep 1_000_000;
         Client.start c ~label:"audit";
         let balance = Client.read_int c account in
         let note = Client.read_int c inbox in
         ignore (Client.commit c);
         Fmt.pr "[%6d us] frankfurt sees balance=%d notification=%d@."
           (U.System.now sys) balance note;
         assert (balance = 50 && note = 1)));

  U.System.run sys ~until:2_000_000;
  (match U.System.check_convergence sys with
  | [] -> Fmt.pr "all data centers converged.@."
  | errs -> List.iter (Fmt.pr "divergence: %s@.") errs);
  Fmt.pr "quickstart done (%d simulated events).@."
    (Sim.Engine.executed_events (U.System.engine sys))
