(* The paper's running example (§1, §3): a geo-replicated bank.

   - Deposits are causal transactions on a counter CRDT: concurrent
     deposits merge, no coordination needed.
   - Notifications ride causal consistency: if Bob sees Alice's message,
     he also sees her deposit (no causality anomaly).
   - Withdrawals are strong transactions with a declared conflict: two
     concurrent withdrawals of the same account synchronize, and the
     non-negative balance invariant holds.

       dune exec examples/banking.exe *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let balance_of account = 2 * account
let inbox_of account = (2 * account) + 1
let cls_withdraw = 1

let () =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:8
      ~conflict:(U.Config.Classes [ (cls_withdraw, cls_withdraw) ])
      ()
  in
  let sys = U.System.create cfg in
  let bob = 1 in
  U.System.preload sys (balance_of bob) (Crdt.Ctr_add 0);
  U.System.preload sys (inbox_of bob) (Crdt.Reg_write 0);

  (* Alice, in Virginia: deposit then notify (two causal transactions,
     causally ordered by her session). *)
  ignore
    (U.System.spawn_client sys ~dc:0 (fun alice ->
         Client.start alice ~label:"deposit";
         Client.update alice (balance_of bob) (Crdt.Ctr_add 100);
         ignore (Client.commit alice);
         Client.start alice ~label:"notify";
         Client.update alice (inbox_of bob) (Crdt.Reg_write 1);
         ignore (Client.commit alice);
         Fmt.pr "[%6d us] alice deposited and notified@." (U.System.now sys)));

  (* Bob, in Frankfurt: when he sees the notification, the deposit is
     guaranteed to be there (Causality Preservation). *)
  ignore
    (U.System.spawn_client sys ~dc:2 (fun bob_c ->
         let rec poll () =
           Client.start bob_c ~label:"check-inbox";
           let note = Client.read_int bob_c (inbox_of bob) in
           let balance = Client.read_int bob_c (balance_of bob) in
           ignore (Client.commit bob_c);
           if note = 1 then begin
             Fmt.pr "[%6d us] bob sees the notification; balance=%d \
                     (never 0 with the notification visible)@."
               (U.System.now sys) balance;
             assert (balance = 100)
           end
           else begin
             Fiber.sleep 10_000;
             poll ()
           end
         in
         poll ()));

  (* Two tellers withdraw the full balance concurrently from different
     continents: the conflict makes one observe the other and fail. *)
  let successes = ref 0 and failures = ref 0 in
  let teller name dc =
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           Fiber.sleep 1_000_000 (* let the deposit settle *);
           let rec attempt n =
             Client.start c ~label:"withdraw" ~strong:true;
             let balance =
               Client.read_int ~cls:cls_withdraw c (balance_of bob)
             in
             if balance >= 100 then begin
               Client.update ~cls:cls_withdraw c (balance_of bob)
                 (Crdt.Ctr_add (-100));
               match Client.commit c with
               | `Committed _ ->
                   incr successes;
                   Fmt.pr "[%6d us] %s withdrew 100@." (U.System.now sys) name
               | `Aborted ->
                   if n < 5 then attempt (n + 1)
                   else Fmt.pr "[%6d us] %s gave up after aborts@."
                          (U.System.now sys) name
             end
             else begin
               ignore (Client.commit c);
               incr failures;
               Fmt.pr "[%6d us] %s sees balance %d: withdrawal refused@."
                 (U.System.now sys) name balance
             end
           in
           attempt 0))
  in
  teller "teller-virginia" 0;
  teller "teller-california" 1;

  U.System.run sys ~until:5_000_000;
  Fmt.pr "withdrawals: %d succeeded, %d refused (invariant: exactly one \
          succeeds)@."
    !successes !failures;
  assert (!successes = 1 && !failures = 1);
  (match U.System.check_convergence sys with
  | [] -> Fmt.pr "all data centers agree on the final balance 0.@."
  | errs -> List.iter (Fmt.pr "divergence: %s@.") errs);
  Fmt.pr "banking example done.@."
