bench/tab_latency.ml: Common Fmt List Net Sim Unistore
