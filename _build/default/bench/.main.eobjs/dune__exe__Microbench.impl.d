bench/microbench.ml: Analyze Array Bechamel Benchmark Common Crdt Fmt Hashtbl Instance List Measure Sim Staged Store Test Time Toolkit Unistore Vclock
