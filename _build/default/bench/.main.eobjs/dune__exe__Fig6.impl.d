bench/fig6.ml: Common Fmt List Net Sim Unistore Workload
