bench/main.mli:
