bench/scenarios.ml: Common Crdt List Net Sim Unistore
