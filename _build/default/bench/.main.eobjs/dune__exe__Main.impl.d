bench/main.ml: Ablations Array Common Fig3 Fig4 Fig5 Fig6 Fmt List Microbench Scenarios String Sys Tab_latency Unix
