bench/ablations.ml: Common Fmt List Net Sim Unistore Workload
