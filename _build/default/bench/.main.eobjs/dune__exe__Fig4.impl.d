bench/fig4.ml: Array Common Fmt Hashtbl Net Unistore Workload
