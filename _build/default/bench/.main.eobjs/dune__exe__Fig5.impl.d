bench/fig5.ml: Common Fmt List Net Unistore Workload
