bench/common.ml: Fmt Sim String Unistore Unix Workload
