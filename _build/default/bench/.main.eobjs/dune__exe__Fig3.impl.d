bench/fig3.ml: Array Common Fmt Hashtbl List Net Unistore
