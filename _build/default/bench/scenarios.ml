(* Figures 1 and 2 (§4): the liveness scenarios that motivate transaction
   forwarding and uniformity, replayed as scripted failure schedules.
   These are qualitative figures in the paper; here the runner prints the
   observed event sequence so the mechanism is visible. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let fig1 () =
  Common.section "Figure 1 — transaction forwarding preserves Eventual \
                  Visibility";
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:4 ()
  in
  let sys = U.System.create cfg in
  U.System.preload sys 1 (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         Client.start c;
         Client.update c 1 (Crdt.Reg_write 42);
         ignore (Client.commit c);
         Common.note "t=%6dus  t1 committed at California (d1)"
           (U.System.now sys)));
  Sim.Engine.schedule (U.System.engine sys) ~delay:45_000 (fun () ->
      Common.note
        "t=%6dus  California fails: t1 reached Virginia but not Frankfurt"
        (U.System.now sys);
      U.System.fail_dc sys 1);
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         let rec poll () =
           Client.start c;
           let v = Client.read_int c 1 in
           ignore (Client.commit c);
           if v = 42 then
             Common.note
               "t=%6dus  t1 visible at Frankfurt via forwarding from Virginia"
               (U.System.now sys)
           else begin
             Fiber.sleep 100_000;
             poll ()
           end
         in
         poll ()));
  U.System.run sys ~until:8_000_000;
  match U.System.check_convergence sys with
  | [] -> Common.note "correct DCs converged: Eventual Visibility holds"
  | errs -> List.iter (Common.note "DIVERGENCE: %s") errs

let fig2 () =
  Common.section "Figure 2 — strong transactions wait for uniform \
                  dependencies (liveness)";
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:4 ()
  in
  let sys = U.System.create cfg in
  U.System.preload sys 1 (Crdt.Reg_write 0);
  U.System.preload sys 2 (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         Client.start c;
         Client.update c 1 (Crdt.Reg_write 1);
         ignore (Client.commit c);
         Common.note "t=%6dus  t1 (causal) committed at California"
           (U.System.now sys);
         Client.start c ~strong:true;
         ignore (Client.read_int c 1);
         Client.update c 2 (Crdt.Reg_write 2);
         (match Client.commit c with
         | `Committed _ ->
             Common.note
               "t=%6dus  t2 (strong) committed — its dependency t1 is \
                already uniform"
               (U.System.now sys);
             U.System.fail_dc sys 1;
             Common.note "t=%6dus  California fails immediately afterwards"
               (U.System.now sys)
         | `Aborted -> Common.note "t2 aborted (unexpected)")));
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Fiber.sleep 2_000_000;
         let rec attempt n =
           Client.start c ~strong:true;
           let v = Client.read_int c 2 in
           Client.update c 2 (Crdt.Reg_write 3);
           match Client.commit c with
           | `Committed _ ->
               Common.note
                 "t=%6dus  t3 (strong, conflicts with t2) committed at \
                  Frankfurt having observed t2's write (%d) — liveness \
                  preserved"
                 (U.System.now sys) v
           | `Aborted ->
               if n < 30 then begin
                 Fiber.sleep 200_000;
                 attempt (n + 1)
               end
               else Common.note "t3 never committed: LIVENESS VIOLATION"
         in
         attempt 0));
  U.System.run sys ~until:15_000_000;
  match U.System.check_convergence sys with
  | [] -> Common.note "correct DCs converged"
  | errs -> List.iter (Common.note "DIVERGENCE: %s") errs

let run () =
  fig1 ();
  fig2 ()
