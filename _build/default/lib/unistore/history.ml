(* Measurement and history recording.

   Two independent concerns share this module:
   - performance measurement (latency samples, throughput windows, abort
     counts, visibility delays) for the experiment harness;
   - full transaction records for the offline PoR consistency checker
     (enabled by [Config.record_history]). *)

module Vc = Vclock.Vc

type txn_record = {
  h_tid : Types.tid;
  h_client : int;
  h_dc : int;
  h_strong : bool;
  h_label : string;
  h_snap : Vc.t;
  h_vec : Vc.t;
  h_lc : int;
  h_reads : (Store.Keyspace.key * Crdt.value) list;  (* external reads, in order *)
  h_writes : Types.write list;
  h_ops : Types.opdesc list;
  h_start_us : int;
  h_commit_us : int;
}

(* see [system_commit] below *)
and system_commit_cell = {
  mutable sy_writes : Types.write list;
  sy_vec : Vc.t;
  sy_lc : int;
  sy_origin : int;
}

type t = {
  record_full : bool;
  mutable txns : txn_record list;
  mutable preloaded : Types.write list;  (* initial database state (t0) *)
  mutable committed_causal : int;
  mutable committed_strong : int;
  mutable aborted_strong : int;
  lat_causal : Sim.Stats.sample_set;
  lat_strong : Sim.Stats.sample_set;
  lat_all : Sim.Stats.sample_set;
  lat_strong_by_dc : (int, Sim.Stats.sample_set) Hashtbl.t;
  lat_by_label : (string, Sim.Stats.sample_set) Hashtbl.t;
  mutable window : Sim.Stats.counter option;
  (* (observer dc, origin dc) -> extra visibility delay samples *)
  visibility : (int * int, Sim.Stats.sample_set) Hashtbl.t;
  system_commits : (Types.tid, system_commit_cell) Hashtbl.t;
  mutable now : unit -> int;
}

let create ?(record_full = false) () =
  {
    record_full;
    txns = [];
    preloaded = [];
    committed_causal = 0;
    committed_strong = 0;
    aborted_strong = 0;
    lat_causal = Sim.Stats.create_samples ();
    lat_strong = Sim.Stats.create_samples ();
    lat_all = Sim.Stats.create_samples ();
    lat_strong_by_dc = Hashtbl.create 8;
    lat_by_label = Hashtbl.create 16;
    window = None;
    visibility = Hashtbl.create 8;
    system_commits = Hashtbl.create 64;
    now = (fun () -> 0);
  }

let set_clock t now = t.now <- now

(* Restrict throughput counting to [start, stop): the harness skips
   warmup and cooldown, as the paper ignores first and last minute. *)
let set_window t ~start ~stop =
  t.window <- Some (Sim.Stats.create_counter ~window_start:start ~window_end:stop)

let sample_for tbl key =
  match Hashtbl.find_opt tbl key with
  | Some s -> s
  | None ->
      let s = Sim.Stats.create_samples () in
      Hashtbl.replace tbl key s;
      s

(* Record a committed transaction. [latency_us] is the client-observed
   latency. Counters always run; latency samples honour the measurement
   window when one is set (warmup/cooldown are excluded, as the paper
   ignores the first and last minute of each run, §8). *)
let committed t ~record ~latency_us =
  let now = t.now () in
  let inside =
    match t.window with
    | None -> true
    | Some c ->
        Sim.Stats.incr_counter c ~now;
        Sim.Stats.in_window c ~now
  in
  if record.h_strong then t.committed_strong <- t.committed_strong + 1
  else t.committed_causal <- t.committed_causal + 1;
  if inside then begin
    Sim.Stats.add t.lat_all latency_us;
    if record.h_strong then begin
      Sim.Stats.add t.lat_strong latency_us;
      Sim.Stats.add (sample_for t.lat_strong_by_dc record.h_dc) latency_us
    end
    else Sim.Stats.add t.lat_causal latency_us;
    Sim.Stats.add (sample_for t.lat_by_label record.h_label) latency_us
  end;
  if t.record_full then t.txns <- record :: t.txns

let aborted t = t.aborted_strong <- t.aborted_strong + 1

(* Commits observed system-side (at replicas / certification): covers
   transactions whose client never received the acknowledgement (e.g. its
   data center crashed after the commit applied). The checker uses these
   as additional writers when a read observes a value no client-recorded
   transaction explains. Keyed by tid; causal slices accumulate, strong
   duplicates (origin + retries, multiple DCs) keep the first record. *)
let system_commit t ~tid ~writes ~vec ~lc ~origin ~accumulate =
  if t.record_full then
    match Hashtbl.find_opt t.system_commits tid with
    | Some sc -> if accumulate then sc.sy_writes <- writes @ sc.sy_writes
    | None ->
        Hashtbl.replace t.system_commits tid
          { sy_writes = writes; sy_vec = vec; sy_lc = lc; sy_origin = origin }

(* Writers known system-side but absent from the client-recorded history:
   (writes, commit vector, tag). *)
let unacked_writers t =
  let acked = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace acked r.h_tid ()) t.txns;
  Hashtbl.fold
    (fun tid sc acc ->
      if Hashtbl.mem acked tid then acc
      else (sc.sy_writes, sc.sy_vec, { Crdt.lc = sc.sy_lc; origin = sc.sy_origin }) :: acc)
    t.system_commits []

let preloaded t ~key ~op =
  if t.record_full then
    t.preloaded <-
      { Types.wkey = key; wop = op; wcls = Types.cls_default } :: t.preloaded

let preloads t = t.preloaded

let visibility_delay t ~observer ~origin ~delay_us =
  Sim.Stats.add (sample_for t.visibility (observer, origin)) delay_us

let visibility_samples t ~observer ~origin =
  Hashtbl.find_opt t.visibility (observer, origin)

let txns t = List.rev t.txns
let committed_causal t = t.committed_causal
let committed_strong t = t.committed_strong
let committed_total t = t.committed_causal + t.committed_strong
let aborted_strong t = t.aborted_strong

let abort_rate t =
  let attempts = t.committed_strong + t.aborted_strong in
  if attempts = 0 then 0.0
  else float_of_int t.aborted_strong /. float_of_int attempts

let latency_causal t = t.lat_causal
let latency_strong t = t.lat_strong
let latency_all t = t.lat_all
let latency_strong_by_dc t dc = Hashtbl.find_opt t.lat_strong_by_dc dc
let latency_by_label t label = Hashtbl.find_opt t.lat_by_label label

let labels t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.lat_by_label []
  |> List.sort compare

let throughput t =
  match t.window with None -> None | Some c -> Some (Sim.Stats.throughput c)

let window_commits t =
  match t.window with None -> None | Some c -> Some (Sim.Stats.counter_events c)
