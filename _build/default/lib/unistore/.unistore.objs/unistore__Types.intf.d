lib/unistore/types.mli: Crdt Fmt Store Vclock
