lib/unistore/config.mli: Net Types
