lib/unistore/abstract_exec.ml: Array Config Crdt Fmt Fun Hashtbl History List Types Vclock
