lib/unistore/history.mli: Crdt Sim Store Types Vclock
