lib/unistore/client.mli: Config Crdt History Msg Net Sim Store Vclock
