lib/unistore/types.ml: Crdt Fmt List Store Vclock
