lib/unistore/checker.mli: Config Crdt Fmt History Types Vclock
