lib/unistore/history.ml: Crdt Hashtbl List Sim Store Types Vclock
