lib/unistore/checker.ml: Array Config Crdt Fmt Hashtbl History List Types Vclock
