lib/unistore/cert.ml: Hashtbl List Msg Store Types Vclock
