lib/unistore/replica.ml: Array Cert Config Crdt Fmt Hashtbl History List Logs Msg Net Sim Store Types Vclock
