lib/unistore/replica.mli: Cert Config History Msg Net Sim Store Types Vclock
