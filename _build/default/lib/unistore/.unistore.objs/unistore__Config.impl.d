lib/unistore/config.ml: List Net Types
