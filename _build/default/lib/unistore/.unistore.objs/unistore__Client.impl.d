lib/unistore/client.ml: Array Config Crdt Hashtbl History List Msg Net Sim Store Types Vclock
