lib/unistore/system.mli: Cert Client Config Crdt History Msg Net Replica Sim Store Types Vclock
