lib/unistore/msg.ml: Config Crdt List Store Types Vclock
