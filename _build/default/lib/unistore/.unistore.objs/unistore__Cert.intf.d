lib/unistore/cert.mli: Msg Types Vclock
