lib/unistore/system.ml: Array Cert Client Config Crdt Fmt Fun History List Msg Net Replica Sim Store Types Vclock
