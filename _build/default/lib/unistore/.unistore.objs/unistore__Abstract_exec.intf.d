lib/unistore/abstract_exec.mli: Config Fmt History Types
