(** Identifiers and transaction records shared across the protocol. *)

(** Transaction identifier: issuing client plus a per-client sequence
    number. *)
type tid = { cl : int; sq : int }

val tid_pp : tid Fmt.t
val tid_equal : tid -> tid -> bool
val tid_compare : tid -> tid -> int

(** ⊥: used by dummy strong heartbeats (Algorithm A6 line 11). *)
val tid_none : tid

val tid_is_none : tid -> bool

(** One operation as seen by the conflict relation ⋈ (§3): key,
    application-assigned class, update flag. The read set of Algorithm A2
    is a list of these. *)
type opdesc = { key : Store.Keyspace.key; cls : int; write : bool }

val opdesc_pp : opdesc Fmt.t
val cls_default : int

(** One buffered write of a transaction. *)
type write = { wkey : Store.Keyspace.key; wop : Crdt.op; wcls : int }

(** Write buffer keyed by partition (wbuff\[tid\]\[l\]); strong
    transactions carry the whole map so leader recovery can re-certify
    across all partitions. *)
type wbuff = (int * write list) list

(** Operation descriptors keyed by partition. *)
type opsmap = (int * opdesc list) list

val wbuff_partitions : wbuff -> int list
val wbuff_find : wbuff -> int -> write list
val opsmap_find : opsmap -> int -> opdesc list
val opsmap_partitions : opsmap -> int list

(** A committed update transaction as replicated between data centers
    (committedCausal entries, REPLICATE payloads). *)
type tx_rec = {
  tx_tid : tid;
  tx_writes : write list;
  tx_vec : Vclock.Vc.t;  (** commit vector *)
  tx_lc : int;  (** Lamport clock of the commit *)
  tx_origin : int;  (** issuing client (LWW tie-breaker) *)
}

(** The CRDT tag of a transaction's writes. *)
val tx_tag : tx_rec -> Crdt.tag

val tx_pp : tx_rec Fmt.t
