(* Identifiers and transaction records shared across the protocol. *)

(* Transaction identifier: issuing client plus a per-client sequence
   number (unique across the system, Algorithm A2 line 3). *)
type tid = { cl : int; sq : int }

let tid_pp ppf t = Fmt.pf ppf "t%d.%d" t.cl t.sq
let tid_equal a b = a.cl = b.cl && a.sq = b.sq
let tid_compare a b =
  match compare a.cl b.cl with 0 -> compare a.sq b.sq | c -> c

(* No transaction: used by dummy strong heartbeats (Algorithm A6 line 11,
   CERTIFY with tid = ⊥). *)
let tid_none = { cl = -1; sq = -1 }
let tid_is_none t = t.cl = -1

(* Description of one operation for the conflict relation ⋈ (§3): the key
   it touches, an application-assigned operation class, and whether it is
   an update. The read set rset of Algorithm A2 is a list of these. *)
type opdesc = { key : Store.Keyspace.key; cls : int; write : bool }

let opdesc_pp ppf o =
  Fmt.pf ppf "%s(%a,c%d)" (if o.write then "w" else "r") Store.Keyspace.pp o.key o.cls

(* Default operation class when the application does not declare one. *)
let cls_default = 0

(* One write of a committed transaction as stored in write buffers,
   REPLICATE messages and certification payloads. *)
type write = { wkey : Store.Keyspace.key; wop : Crdt.op; wcls : int }

(* Write buffer and operation descriptions of a transaction, keyed by
   partition (wbuff[tid][l] in the pseudocode). Strong transactions carry
   the full maps to every partition leader so that certification state
   survives leader recovery (Algorithm A10 re-certifies from it). *)
type wbuff = (int * write list) list

type opsmap = (int * opdesc list) list

let wbuff_partitions (w : wbuff) = List.map fst w

let wbuff_find (w : wbuff) part =
  match List.assoc_opt part w with None -> [] | Some l -> l

let opsmap_find (o : opsmap) part =
  match List.assoc_opt part o with None -> [] | Some l -> l

let opsmap_partitions (o : opsmap) = List.map fst o

(* A committed update transaction as it travels between replicas
   (committedCausal entries and REPLICATE payloads, Algorithm A4). *)
type tx_rec = {
  tx_tid : tid;
  tx_writes : write list;
  tx_vec : Vclock.Vc.t;  (* commit vector *)
  tx_lc : int;  (* Lamport clock of the commit *)
  tx_origin : int;  (* issuing client, tie-breaker for LWW tags *)
}

let tx_tag tx = { Crdt.lc = tx.tx_lc; origin = tx.tx_origin }

let tx_pp ppf tx =
  Fmt.pf ppf "%a@%a" tid_pp tx.tx_tid Vclock.Vc.pp tx.tx_vec
