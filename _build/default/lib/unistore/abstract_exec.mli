(** Abstract executions and the declarative PoR specification (§B).

    Builds, from a recorded history, the abstract execution of the
    paper's correctness proof — visibility from timestamp comparison
    (§D Definition 57) and arbitration as the Lamport-clock order
    (Definition 66) — and checks the §B axioms (CausalVisibility,
    CausalArbitration, ConflictOrdering, RVal) against those relations
    directly. Complements {!Checker}, which verifies the same history
    through the implementation's invariants; agreement between the two
    is itself tested.

    Relations are materialised as matrices: intended for test-sized
    histories. *)

type t

(** Construct the abstract execution (visibility + arbitration). *)
val build : ?preloads:Types.write list -> History.txn_record list -> t

val size : t -> int

(** Visibility between transactions, by index into the history list. *)
val visible : t -> from:int -> to_:int -> bool

(** Position in the arbitration total order. *)
val arbitration_rank : t -> int -> int

type result = {
  violations : string list;
  transactions : int;
  reads_checked : int;
}

val ok : result -> bool

(** Build the abstract execution and check the §B axioms. *)
val check :
  ?preloads:Types.write list -> Config.t -> History.txn_record list -> result

val pp_result : result Fmt.t
