(** Measurement and history recording: latency samples, throughput
    windows, abort counts, remote-visibility delays (Fig. 6), and —
    when [Config.record_history] is set — full transaction records for
    the offline PoR checker. *)

type txn_record = {
  h_tid : Types.tid;
  h_client : int;
  h_dc : int;
  h_strong : bool;
  h_label : string;
  h_snap : Vclock.Vc.t;  (** snapshot vector the transaction ran on *)
  h_vec : Vclock.Vc.t;  (** commit vector *)
  h_lc : int;  (** Lamport clock of the commit *)
  h_reads : (Store.Keyspace.key * Crdt.value) list;  (** in order *)
  h_writes : Types.write list;  (** in order *)
  h_ops : Types.opdesc list;  (** reads and writes interleaved, in order *)
  h_start_us : int;
  h_commit_us : int;
}

type t

val create : ?record_full:bool -> unit -> t
val set_clock : t -> (unit -> int) -> unit

(** Restrict throughput counting and latency sampling to
    [start, stop) (the paper ignores warmup and cooldown, §8). *)
val set_window : t -> start:int -> stop:int -> unit

val committed : t -> record:txn_record -> latency_us:int -> unit
val aborted : t -> unit

(** Record a commit observed system-side (replica commit application or
    certification decision): explains reads of transactions whose client
    never saw the acknowledgement (e.g. its DC crashed). [accumulate]
    appends per-partition slices under one tid; otherwise the first
    record wins. *)
val system_commit :
  t ->
  tid:Types.tid ->
  writes:Types.write list ->
  vec:Vclock.Vc.t ->
  lc:int ->
  origin:int ->
  accumulate:bool ->
  unit

(** Writers recorded system-side but missing from the client-recorded
    history, as [(writes, commit vector, tag)]. *)
val unacked_writers : t -> (Types.write list * Vclock.Vc.t * Crdt.tag) list
val preloaded : t -> key:Store.Keyspace.key -> op:Crdt.op -> unit
val preloads : t -> Types.write list
val visibility_delay : t -> observer:int -> origin:int -> delay_us:int -> unit
val visibility_samples : t -> observer:int -> origin:int -> Sim.Stats.sample_set option

(** Full records in commit order (requires [record_full]). *)
val txns : t -> txn_record list

val committed_causal : t -> int
val committed_strong : t -> int
val committed_total : t -> int
val aborted_strong : t -> int

(** Aborts / (commits + aborts) over strong transactions. *)
val abort_rate : t -> float

val latency_causal : t -> Sim.Stats.sample_set
val latency_strong : t -> Sim.Stats.sample_set
val latency_all : t -> Sim.Stats.sample_set
val latency_strong_by_dc : t -> int -> Sim.Stats.sample_set option
val latency_by_label : t -> string -> Sim.Stats.sample_set option
val labels : t -> string list

(** Committed transactions per simulated second over the window. *)
val throughput : t -> float option

val window_commits : t -> int option
