(* Abstract executions and the declarative PoR specification (§B).

   The paper specifies PoR consistency over *abstract executions*: a
   history of committed transactions extended with a visibility relation
   (a partial order) and an arbitration relation (a total order) that
   must satisfy four axioms — RVal, CausalConsistency, ConflictOrdering
   and (as a liveness property) EventualVisibility.

   [Checker] verifies concrete runs through the implementation's vector
   metadata. This module instead *constructs* the abstract execution the
   paper's proof builds (§D.8, §D.10): visibility from timestamps
   (Definition 57: t1 → t2 iff ts(t1) ≤ ts(st(t2)) and t1 precedes t2 in
   the Lamport-clock order) and arbitration as the Lamport-clock order
   (Definition 66) — and then checks the §B axioms against those
   relations directly. Agreement between the two checkers is itself a
   property test.

   Relations are materialised as boolean matrices over the (small)
   recorded history, so this checker is meant for test-sized runs. *)

module Vc = Vclock.Vc

type txn = History.txn_record

type t = {
  txns : txn array;
  (* vis.(i).(j) = transaction i is visible to transaction j *)
  vis : bool array array;
  (* total order position in the arbitration relation *)
  ar_rank : int array;
  preloads : Types.write list;
}

(* Lamport-clock order: (lc, client id) lexicographically (Definition
   54; client ids break ties). *)
let lc_order (a : txn) (b : txn) =
  match compare a.History.h_lc b.History.h_lc with
  | 0 -> compare a.History.h_client b.History.h_client
  | c -> c

(* Build the abstract execution of §D from a recorded history. *)
let build ?(preloads = []) txns =
  let txns = Array.of_list txns in
  let n = Array.length txns in
  let vis = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let ti = txns.(i) and tj = txns.(j) in
        (* Definition 57: ts(ti) <= ts(st(tj)) ∧ ti -lc-> tj.
           ts(ti) is the commit vector; ts(st(tj)) the snapshot vector. *)
        vis.(i).(j) <-
          Vc.leq ti.History.h_vec tj.History.h_snap && lc_order ti tj < 0
      end
    done
  done;
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> lc_order txns.(a) txns.(b)) order;
  let ar_rank = Array.make n 0 in
  Array.iteri (fun pos idx -> ar_rank.(idx) <- pos) order;
  { txns; vis; ar_rank; preloads }

let size t = Array.length t.txns
let visible t ~from ~to_ = t.vis.(from).(to_)
let arbitration_rank t i = t.ar_rank.(i)

(* ------------------------------------------------------------------ *)
(* Axiom checks (§B.5).                                                 *)

(* CausalVisibility: (so ∪ vis)+ ⊆ vis — with vis built from vector
   comparisons this amounts to: vis is transitive and contains the
   session order. *)
let check_causal_visibility t errors =
  let n = size t in
  (* session order ⊆ vis *)
  let last_of_client = Hashtbl.create 16 in
  for j = 0 to n - 1 do
    let c = t.txns.(j).History.h_client in
    (match Hashtbl.find_opt last_of_client c with
    | Some i ->
        if not t.vis.(i).(j) then
          errors :=
            Fmt.str "session order not in visibility: %a before %a"
              Types.tid_pp t.txns.(i).History.h_tid Types.tid_pp
              t.txns.(j).History.h_tid
            :: !errors
    | None -> ());
    Hashtbl.replace last_of_client c j
  done;
  (* transitivity *)
  (try
     for i = 0 to n - 1 do
       for j = 0 to n - 1 do
         if t.vis.(i).(j) then
           for k = 0 to n - 1 do
             if t.vis.(j).(k) && not t.vis.(i).(k) then begin
               errors :=
                 Fmt.str "visibility not transitive: %a -> %a -> %a"
                   Types.tid_pp t.txns.(i).History.h_tid Types.tid_pp
                   t.txns.(j).History.h_tid Types.tid_pp
                   t.txns.(k).History.h_tid
                 :: !errors;
               raise Exit
             end
           done
       done
     done
   with Exit -> ())

(* CausalArbitration: vis ⊆ ar. *)
let check_causal_arbitration t errors =
  let n = size t in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if t.vis.(i).(j) && t.ar_rank.(i) >= t.ar_rank.(j) then
        errors :=
          Fmt.str "visibility disagrees with arbitration: %a vs %a"
            Types.tid_pp t.txns.(i).History.h_tid Types.tid_pp
            t.txns.(j).History.h_tid
          :: !errors
    done
  done

(* ConflictOrdering (Definition 7): conflicting committed strong
   transactions are related by visibility one way or the other. *)
let check_conflict_ordering cfg t errors =
  let n = size t in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ti = t.txns.(i) and tj = t.txns.(j) in
      if
        ti.History.h_strong && tj.History.h_strong
        && Config.txs_conflict cfg.Config.conflict ti.History.h_ops
             tj.History.h_ops
        && (not t.vis.(i).(j))
        && not t.vis.(j).(i)
      then
        errors :=
          Fmt.str "conflict ordering: %a and %a unrelated by visibility"
            Types.tid_pp ti.History.h_tid Types.tid_pp tj.History.h_tid
          :: !errors
    done
  done

(* EXTRVAL (Definition 4) for LWW registers and counters: an external
   read in t returns the fold, in arbitration order, of the visible
   transactions' last writes to the key (CRDT apply makes the fold
   order-insensitive given tags, so we fold over the visible set). *)
let check_rval t errors =
  let n = size t in
  let reads_checked = ref 0 in
  for j = 0 to n - 1 do
    let tj = t.txns.(j) in
    (* own earlier writes, replayed in program order *)
    let own = Hashtbl.create 4 in
    let reads = ref tj.History.h_reads and writes = ref tj.History.h_writes in
    List.iter
      (fun (o : Types.opdesc) ->
        if o.write then (
          match !writes with
          | w :: rest ->
              writes := rest;
              let cur =
                match Hashtbl.find_opt own w.Types.wkey with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace own w.Types.wkey (w.Types.wop :: cur)
          | [] -> ())
        else
          match !reads with
          | (key, value) :: rest -> (
              reads := rest;
              incr reads_checked;
              (* fold the visible transactions' writes to [key] *)
              let state = ref Crdt.empty in
              List.iter
                (fun (w : Types.write) ->
                  if w.wkey = key then
                    state :=
                      Crdt.apply !state w.wop
                        ~tag:{ Crdt.lc = 0; origin = -1 }
                        ~vec:(Vc.create ~dcs:(Vc.dcs tj.History.h_snap)))
                t.preloads;
              for i = 0 to n - 1 do
                if t.vis.(i).(j) then begin
                  let ti = t.txns.(i) in
                  let tag =
                    { Crdt.lc = ti.History.h_lc; origin = ti.History.h_client }
                  in
                  List.iter
                    (fun (w : Types.write) ->
                      if w.wkey = key then
                        state :=
                          Crdt.apply !state w.wop ~tag ~vec:ti.History.h_vec)
                    ti.History.h_writes
                end
              done;
              let base = Crdt.read !state in
              let expected =
                List.fold_left Crdt.apply_to_value base
                  (List.rev
                     (match Hashtbl.find_opt own key with
                     | Some l -> l
                     | None -> []))
              in
              match (value, expected) with
              | v, e when v = e -> ()
              | _ ->
                  errors :=
                    Fmt.str
                      "RVal: %a read key %d as %a but its visible set \
                       determines %a"
                      Types.tid_pp tj.History.h_tid key Crdt.value_pp value
                      Crdt.value_pp expected
                    :: !errors)
          | [] -> ())
      tj.History.h_ops
  done;
  !reads_checked

type result = {
  violations : string list;
  transactions : int;
  reads_checked : int;
}

let ok r = r.violations = []

(* Check the §B axioms over the abstract execution constructed from the
   history. *)
let check ?preloads cfg txns =
  let t = build ?preloads txns in
  let errors = ref [] in
  check_causal_visibility t errors;
  check_causal_arbitration t errors;
  check_conflict_ordering cfg t errors;
  let reads_checked = check_rval t errors in
  {
    violations = List.rev !errors;
    transactions = size t;
    reads_checked;
  }

let pp_result ppf r =
  if ok r then
    Fmt.pf ppf
      "abstract execution satisfies PoR: %d transactions, %d reads"
      r.transactions r.reads_checked
  else
    Fmt.pf ppf "abstract execution violates PoR:@,%a"
      Fmt.(list ~sep:cut string)
      r.violations
