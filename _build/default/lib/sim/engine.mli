(** Deterministic discrete-event simulation engine.

    Simulated time is [int] microseconds starting at 0. Events scheduled
    for the same instant fire in scheduling order. *)

type t

val create : ?seed:int -> unit -> t

(** Current simulated time in microseconds. *)
val now : t -> int

(** The engine's root RNG; derive per-component streams with
    {!Rng.split}. *)
val rng : t -> Rng.t

val executed_events : t -> int
val pending_events : t -> int

(** Schedule a thunk [delay] microseconds from now. *)
val schedule : t -> delay:int -> (unit -> unit) -> unit

(** Schedule a thunk at an absolute time (clamped to now if in the past). *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** Stop the run loop after the current event. *)
val stop : t -> unit

(** Execute events until the queue drains, [stop] is called, or the next
    event is past [until]. *)
val run : ?until:int -> t -> unit

(** [every t ~period ?phase f] runs [f] every [period] microseconds
    (first run after [phase]) for as long as [f] returns [true]. *)
val every : t -> period:int -> ?phase:int -> (unit -> bool) -> unit
