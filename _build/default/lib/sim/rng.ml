(* Deterministic splittable PRNG (splitmix64 core).

   We avoid [Stdlib.Random] so that simulations are reproducible across
   OCaml versions and so that independent components (each client, each
   replica) can draw from independent streams derived from one seed. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Derive an independent stream: hash the parent state with a stream id. *)
let split t ~id =
  let z = next_int64 t in
  let mix = Int64.add z (Int64.mul (Int64.of_int (id + 1)) 0xD6E8FEB86659FD93L) in
  { state = mix }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits, as in standard doubles-from-bits constructions *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Exponential inter-arrival sampling for Poisson processes. *)
let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

(* Sample an index according to an array of non-negative weights. *)
let weighted t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.weighted: weights sum to zero";
  let x = float t total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
