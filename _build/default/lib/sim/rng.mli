(** Deterministic splittable PRNG (splitmix64).

    All randomness in the simulator flows through this module so that a
    given seed reproduces an identical run, event for event. *)

type t

val create : int -> t

(** [split t ~id] derives an independent stream; streams with distinct
    [id]s drawn from the same parent are independent. *)
val split : t -> id:int -> t

val next_int64 : t -> int64

(** Uniform in [\[0, bound)]. Raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [\[0, bound)]. *)
val float : t -> float -> float

val bool : t -> bool

(** Exponentially distributed sample with the given mean (for Poisson
    arrival processes). *)
val exponential : t -> mean:float -> float

val pick : t -> 'a array -> 'a

(** Index sampled proportionally to the given non-negative weights. *)
val weighted : t -> float array -> int

val shuffle : t -> 'a array -> unit
