(* Structured event tracing for simulations.

   A trace is an in-memory ring of typed events with simulated
   timestamps. Components emit events through a [t]; the harness decides
   whether tracing is enabled (disabled tracing costs one branch per
   emit). Traces can be filtered, counted, and rendered as a text
   timeline — the debugging workflow the examples and tests rely on when
   a run misbehaves. *)

type event = {
  ev_time : int;  (* simulated microseconds *)
  ev_source : string;  (* component, e.g. "replica 0.3" *)
  ev_kind : string;  (* event class, e.g. "commit" *)
  ev_detail : string;
}

type t = {
  mutable events : event array;
  mutable len : int;
  mutable dropped : int;
  capacity : int;
  enabled : bool;
  clock : unit -> int;
}

let dummy = { ev_time = 0; ev_source = ""; ev_kind = ""; ev_detail = "" }

let create ?(capacity = 100_000) ~clock ~enabled () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    events = (if enabled then Array.make (min capacity 4096) dummy else [||]);
    len = 0;
    dropped = 0;
    capacity;
    enabled;
    clock;
  }

let disabled = create ~capacity:1 ~clock:(fun () -> 0) ~enabled:false ()
let enabled t = t.enabled

let emit t ~source ~kind detail =
  if t.enabled then begin
    if t.len = t.capacity then t.dropped <- t.dropped + 1
    else begin
      if t.len = Array.length t.events then begin
        let bigger =
          Array.make (min t.capacity (2 * Array.length t.events)) dummy
        in
        Array.blit t.events 0 bigger 0 t.len;
        t.events <- bigger
      end;
      t.events.(t.len) <-
        { ev_time = t.clock (); ev_source = source; ev_kind = kind;
          ev_detail = detail };
      t.len <- t.len + 1
    end
  end

let emitf t ~source ~kind fmt = Fmt.kstr (emit t ~source ~kind) fmt

let length t = t.len
let dropped t = t.dropped

let events ?source ?kind t =
  let matches e =
    (match source with Some s -> e.ev_source = s | None -> true)
    && match kind with Some k -> e.ev_kind = k | None -> true
  in
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    if matches t.events.(i) then out := t.events.(i) :: !out
  done;
  !out

let count ?source ?kind t = List.length (events ?source ?kind t)

(* Events within a simulated-time interval. *)
let between t ~start ~stop =
  List.filter
    (fun e -> e.ev_time >= start && e.ev_time < stop)
    (events t)

let pp_event ppf e =
  Fmt.pf ppf "%8dus %-14s %-12s %s" e.ev_time e.ev_source e.ev_kind
    e.ev_detail

(* Render the trace (or a filtered view) as a timeline. *)
let dump ?source ?kind ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) (events ?source ?kind t);
  if t.dropped > 0 then Fmt.pf ppf "... %d events dropped (capacity)@." t.dropped

(* Per-kind histogram, largest first. *)
let summary t =
  let tbl = Hashtbl.create 16 in
  for i = 0 to t.len - 1 do
    let k = t.events.(i).ev_kind in
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
