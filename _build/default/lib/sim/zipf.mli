(** Zipfian distribution over [{0, ..., n-1}] (YCSB-style inversion).

    [theta = 0] is uniform; larger [theta] (< 1) skews towards low
    indices. Used by the microbenchmark workloads to create contention. *)

type t

val create : n:int -> theta:float -> t
val sample : t -> Rng.t -> int
val size : t -> int
