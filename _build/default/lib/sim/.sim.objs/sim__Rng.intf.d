lib/sim/rng.mli:
