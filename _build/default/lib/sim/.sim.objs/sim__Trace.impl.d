lib/sim/trace.ml: Array Fmt Hashtbl List Option
