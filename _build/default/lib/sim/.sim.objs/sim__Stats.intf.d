lib/sim/stats.mli:
