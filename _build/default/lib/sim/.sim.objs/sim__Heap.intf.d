lib/sim/heap.mli:
