(* Discrete-event simulation engine.

   Simulated time is [int] microseconds. The run loop pops the earliest
   event and executes its thunk; thunks schedule further events. Ties on
   time break on scheduling order, so runs are fully deterministic. *)

type t = {
  queue : (unit -> unit) Heap.t;
  mutable now : int;
  mutable seq : int;
  mutable stopped : bool;
  rng : Rng.t;
  mutable executed : int;
}

let create ?(seed = 42) () =
  {
    queue = Heap.create (fun () -> ());
    now = 0;
    seq = 0;
    stopped = false;
    rng = Rng.create seed;
    executed = 0;
  }

let now t = t.now
let rng t = t.rng
let executed_events t = t.executed
let pending_events t = Heap.size t.queue

let schedule_at t ~time f =
  let time = if time < t.now then t.now else time in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~time ~seq:t.seq f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) f

let stop t = t.stopped <- true

let run ?until t =
  t.stopped <- false;
  let limit = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if t.stopped then ()
    else
      match Heap.pop t.queue with
      | None -> ()
      | Some { time; value = f; _ } ->
          if time > limit then begin
            (* Leave the clock at the limit; the event is lost, which is
               fine because [run ~until] is only used to end experiments. *)
            t.now <- limit
          end
          else begin
            t.now <- time;
            t.executed <- t.executed + 1;
            f ();
            loop ()
          end
  in
  loop ()

(* Periodic task: reschedules itself every [period] while [f] returns
   [true]. [phase] offsets the first firing, which the network layer uses
   to avoid lock-step broadcasts across replicas. *)
let every t ~period ?phase f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let phase = match phase with Some p -> p | None -> period in
  let rec tick () = if f () then schedule t ~delay:period tick in
  schedule t ~delay:phase tick
