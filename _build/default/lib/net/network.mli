(** Message transport between simulated nodes: reliable FIFO channels with
    WAN latency and jitter, per-node CPU (service-time) modelling, and
    whole-data-center crash failures — the system model of UniStore §2.

    Parametric in the message type. *)

type addr = int

type 'm t

val create : Sim.Engine.t -> Topology.t -> 'm t
val topology : 'm t -> Topology.t
val engine : 'm t -> Sim.Engine.t

(** [register t ~dc ~cost handler] adds a node in data center [dc].
    [cost msg] is the CPU microseconds charged to the node per message;
    [handler] runs after the service time has been paid, unless the DC has
    failed by then. *)
val register : 'm t -> dc:int -> cost:('m -> int) -> ('m -> unit) -> addr

val dc_of : 'm t -> addr -> int
val dc_failed : 'm t -> int -> bool

(** Crash a whole data center: from now on its nodes neither send nor
    receive, and in-flight messages to it are dropped. *)
val fail_dc : 'm t -> int -> unit

(** Send a message. Per-(src,dst) delivery order is FIFO; latency is the
    topology's one-way delay plus jitter; processing at the destination is
    serialized on its CPU. Silently dropped if either end's DC failed. *)
val send : 'm t -> src:addr -> dst:addr -> 'm -> unit

(** Local delivery to self: no network hop, service cost still charged. *)
val send_self : 'm t -> node:addr -> 'm -> unit

val messages_sent : 'm t -> int
val messages_dropped : 'm t -> int
val node_processed : 'm t -> addr -> int
val node_busy_us : 'm t -> addr -> int

(** Fraction of elapsed simulated time the node's CPU was busy. *)
val node_utilization : 'm t -> addr -> float
