lib/net/network.ml: Array Hashtbl Sim Topology
