lib/net/network.mli: Sim Topology
