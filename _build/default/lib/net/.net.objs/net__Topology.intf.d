lib/net/topology.mli: Fmt
