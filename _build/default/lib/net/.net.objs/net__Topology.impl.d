lib/net/topology.ml: Array Fmt
