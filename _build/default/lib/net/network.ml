(* Message transport between simulated nodes.

   Models exactly what the paper's system model assumes (§2) plus the
   resources its evaluation exercises (§8):

   - reliable FIFO channels between any two nodes: per-(src, dst) delivery
     times are monotone, messages between correct data centers are always
     delivered;
   - WAN latency from the deployment topology, plus bounded uniform jitter;
   - per-node CPU: a node processes one message at a time; each message
     has a service cost (microseconds) charged to the node, so nodes
     saturate and queueing delay emerges, which is what shapes the
     throughput/latency curves of §8;
   - whole-data-center crash failures: a failed DC neither sends nor
     receives from the moment of the crash (§2 considers only whole-DC
     failures).

   The module is parametric in the message type: the protocol layer
   instantiates it with its own message variant. *)

type addr = int

type 'm node = {
  addr : addr;
  dc : int;
  cost : 'm -> int;
  handler : 'm -> unit;
  mutable busy_until : int;
  mutable processed : int;
  mutable busy_us : int;
}

type 'm t = {
  eng : Sim.Engine.t;
  topo : Topology.t;
  rng : Sim.Rng.t;
  mutable nodes : 'm node array;
  mutable node_count : int;
  mutable failed : bool array;
  fifo : (int * int, int) Hashtbl.t;  (* (src, dst) -> last arrival time *)
  mutable sent : int;
  mutable dropped : int;
}

let create eng topo =
  {
    eng;
    topo;
    rng = Sim.Rng.split (Sim.Engine.rng eng) ~id:0x4e45;
    nodes = [||];
    node_count = 0;
    failed = Array.make (Topology.dcs topo) false;
    fifo = Hashtbl.create 1024;
    sent = 0;
    dropped = 0;
  }

let topology t = t.topo
let engine t = t.eng

let register t ~dc ~cost handler =
  if dc < 0 || dc >= Topology.dcs t.topo then
    invalid_arg "Network.register: no such data center";
  let addr = t.node_count in
  let node =
    { addr; dc; cost; handler; busy_until = 0; processed = 0; busy_us = 0 }
  in
  if t.node_count = Array.length t.nodes then begin
    let nodes = Array.make (max 64 (2 * t.node_count)) node in
    Array.blit t.nodes 0 nodes 0 t.node_count;
    t.nodes <- nodes
  end;
  t.nodes.(t.node_count) <- node;
  t.node_count <- t.node_count + 1;
  addr

let node t addr =
  if addr < 0 || addr >= t.node_count then
    invalid_arg "Network.node: unknown address";
  t.nodes.(addr)

let dc_of t addr = (node t addr).dc
let dc_failed t dc = t.failed.(dc)

let fail_dc t dc =
  if dc < 0 || dc >= Topology.dcs t.topo then
    invalid_arg "Network.fail_dc: no such data center";
  t.failed.(dc) <- true

(* Process a message at its destination node: serialize on the node's CPU
   and run the handler once the service time has been paid. *)
let process t dst_node msg =
  let now = Sim.Engine.now t.eng in
  let start = max now dst_node.busy_until in
  let cost = dst_node.cost msg in
  let finish = start + cost in
  dst_node.busy_until <- finish;
  dst_node.busy_us <- dst_node.busy_us + cost;
  Sim.Engine.schedule_at t.eng ~time:finish (fun () ->
      if not t.failed.(dst_node.dc) then begin
        dst_node.processed <- dst_node.processed + 1;
        dst_node.handler msg
      end)

let send t ~src ~dst msg =
  let src_node = node t src and dst_node = node t dst in
  if t.failed.(src_node.dc) || t.failed.(dst_node.dc) then
    t.dropped <- t.dropped + 1
  else begin
    t.sent <- t.sent + 1;
    let now = Sim.Engine.now t.eng in
    let base = Topology.one_way t.topo ~src:src_node.dc ~dst:dst_node.dc in
    let jitter =
      let j = Topology.jitter_us t.topo in
      if j = 0 then 0 else Sim.Rng.int t.rng (j + 1)
    in
    let arrival = now + base + jitter in
    (* FIFO per channel: never deliver before an earlier send's arrival. *)
    let key = (src, dst) in
    let arrival =
      match Hashtbl.find_opt t.fifo key with
      | Some last when arrival <= last -> last + 1
      | _ -> arrival
    in
    Hashtbl.replace t.fifo key arrival;
    Sim.Engine.schedule_at t.eng ~time:arrival (fun () ->
        if t.failed.(dst_node.dc) then t.dropped <- t.dropped + 1
        else process t dst_node msg)
  end

(* Deliver a message a node sends to itself: no network hop, but the
   service cost is still charged (the CPU does the work). *)
let send_self t ~node:addr msg =
  let n = node t addr in
  if not t.failed.(n.dc) then process t n msg

let messages_sent t = t.sent
let messages_dropped t = t.dropped
let node_processed t addr = (node t addr).processed
let node_busy_us t addr = (node t addr).busy_us

(* Fraction of the interval [0, now] the node's CPU spent processing. *)
let node_utilization t addr =
  let now = Sim.Engine.now t.eng in
  if now = 0 then 0.0
  else float_of_int (node t addr).busy_us /. float_of_int now
