(** Replicated data types (UniStore §3): LWW register, PN-counter,
    LWW-element set, and MV-register, applied from per-key operation
    logs.

    [apply] is order-insensitive given each operation's [tag] (Lamport
    clock + origin tie-breaker) and commit vector, so replicas holding
    the same operation set converge regardless of delivery order. *)

type tag = { lc : int; origin : int }

val tag_compare : tag -> tag -> int
val tag_pp : tag Fmt.t

type op =
  | Reg_write of int
  | Ctr_add of int
  | Set_add of int
  | Set_remove of int
  | Mv_write of int

val op_pp : op Fmt.t
val is_update : op -> bool

type state

val empty : state

type value =
  | V_none
  | V_int of int
  | V_set of int list
  | V_multi of int list

val value_pp : value Fmt.t

(** Apply one logged operation; raises [Invalid_argument] if the
    operation's type contradicts the item's existing type. *)
val apply : state -> op -> tag:tag -> vec:Vclock.Vc.t -> state

val read : state -> value
val copy : state -> state

(** Overlay an operation on an already-materialised value (used for
    read-your-writes of a transaction's own buffered updates, which are
    newer than anything in the snapshot). *)
val apply_to_value : value -> op -> value

(** Project an integer (registers, counters); [V_none] reads as 0. *)
val int_value : value -> int

(** Project a set; [V_none] reads as the empty set. *)
val set_value : value -> int list
