(* Replicated data types (§3 of the paper).

   Every data item is associated with a type backed by a CRDT
   implementation that merges concurrent updates. UniStore's formal proof
   specialises the store to last-writer-wins registers (§A); the paper's
   examples also use counters (account balances) and sets. We provide:

   - LWW register  — total order on updates by (Lamport clock, origin);
   - PN-counter    — increments/decrements commute;
   - LWW-element set — per-element add/remove resolved by tag order;
   - MV-register   — keeps all causally-maximal written values.

   Operations are applied from the per-key operation log. Each logged
   operation carries a [tag] (its transaction's Lamport clock plus an
   origin tie-breaker) and the transaction's commit vector; [apply] is
   insensitive to application order given these, so replicas that have
   the same set of operations converge regardless of delivery order
   (strong eventual consistency). *)

type tag = { lc : int; origin : int }

let tag_compare a b =
  match compare a.lc b.lc with 0 -> compare a.origin b.origin | c -> c

let tag_pp ppf t = Fmt.pf ppf "%d@%d" t.lc t.origin

type op =
  | Reg_write of int
  | Ctr_add of int
  | Set_add of int
  | Set_remove of int
  | Mv_write of int

let op_pp ppf = function
  | Reg_write v -> Fmt.pf ppf "reg_write(%d)" v
  | Ctr_add v -> Fmt.pf ppf "ctr_add(%d)" v
  | Set_add v -> Fmt.pf ppf "set_add(%d)" v
  | Set_remove v -> Fmt.pf ppf "set_remove(%d)" v
  | Mv_write v -> Fmt.pf ppf "mv_write(%d)" v

(* Whether the operation modifies state (all of the above do; reads are
   not logged). Kept as a function so new read-like ops slot in. *)
let is_update (_ : op) = true

type state =
  | Empty
  | Reg of int * tag
  | Ctr of int
  | Set of (int, bool * tag) Hashtbl.t  (* element -> (present, deciding tag) *)
  | Mv of (int * Vclock.Vc.t) list  (* concurrent values with their commit vectors *)

let empty = Empty

type value =
  | V_none
  | V_int of int
  | V_set of int list
  | V_multi of int list

let value_pp ppf = function
  | V_none -> Fmt.pf ppf "none"
  | V_int v -> Fmt.pf ppf "%d" v
  | V_set vs -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) vs
  | V_multi vs -> Fmt.pf ppf "<%a>" Fmt.(list ~sep:comma int) vs

let type_error expected op =
  invalid_arg
    (Fmt.str "Crdt.apply: %a applied to a %s item" op_pp op expected)

(* Apply one logged operation. [vec] is the commit vector of the
   operation's transaction (used only by MV-registers). *)
let apply state op ~tag ~vec =
  match (state, op) with
  | Empty, Reg_write v -> Reg (v, tag)
  | Reg (v0, t0), Reg_write v ->
      if tag_compare tag t0 > 0 then Reg (v, tag) else Reg (v0, t0)
  | Empty, Ctr_add v -> Ctr v
  | Ctr c, Ctr_add v -> Ctr (c + v)
  | Empty, (Set_add _ | Set_remove _) ->
      let h = Hashtbl.create 8 in
      let state = Set h in
      let present = match op with Set_add _ -> true | _ -> false in
      let elt = match op with Set_add e | Set_remove e -> e | _ -> 0 in
      Hashtbl.replace h elt (present, tag);
      state
  | Set h, (Set_add elt | Set_remove elt) ->
      let present = match op with Set_add _ -> true | _ -> false in
      (match Hashtbl.find_opt h elt with
      | Some (_, t0) when tag_compare tag t0 <= 0 -> ()
      | _ -> Hashtbl.replace h elt (present, tag));
      Set h
  | Empty, Mv_write v -> Mv [ (v, vec) ]
  | Mv vs, Mv_write v ->
      (* Keep values whose vectors are not dominated by the new write, and
         drop the write itself if an existing value dominates it. *)
      let dominated = List.exists (fun (_, w) -> Vclock.Vc.leq vec w) vs in
      let vs = List.filter (fun (_, w) -> not (Vclock.Vc.lt w vec)) vs in
      Mv (if dominated then vs else (v, vec) :: vs)
  | Reg _, op -> type_error "register" op
  | Ctr _, op -> type_error "counter" op
  | Set _, op -> type_error "set" op
  | Mv _, op -> type_error "mv-register" op

let read = function
  | Empty -> V_none
  | Reg (v, _) -> V_int v
  | Ctr c -> V_int c
  | Set h ->
      let elts =
        Hashtbl.fold (fun e (present, _) acc -> if present then e :: acc else acc) h []
      in
      V_set (List.sort compare elts)
  | Mv vs -> V_multi (List.sort compare (List.map fst vs))

(* Deep copy, so cached materialisations cannot alias live state. *)
let copy = function
  | Empty -> Empty
  | Reg (v, t) -> Reg (v, t)
  | Ctr c -> Ctr c
  | Set h -> Set (Hashtbl.copy h)
  | Mv vs -> Mv vs

(* Apply an operation directly to a materialised value. Used by the
   transaction coordinator to overlay a transaction's own buffered writes
   on a snapshot read (read your writes within a transaction, Algorithm 1
   line 13): buffered writes are always newer than the snapshot, so
   value-level application agrees with state-level application. *)
let apply_to_value v op =
  match (v, op) with
  | _, Reg_write x -> V_int x
  | (V_none | V_int _), Ctr_add n ->
      let base = match v with V_int c -> c | _ -> 0 in
      V_int (base + n)
  | (V_none | V_set _), Set_add e ->
      let elts = match v with V_set es -> es | _ -> [] in
      V_set (List.sort_uniq compare (e :: elts))
  | (V_none | V_set _), Set_remove e ->
      let elts = match v with V_set es -> es | _ -> [] in
      V_set (List.filter (fun x -> x <> e) elts)
  | _, Mv_write x -> V_multi [ x ]
  | _, op -> invalid_arg (Fmt.str "Crdt.apply_to_value: %a" op_pp op)

let int_value = function
  | V_int v -> v
  | V_none -> 0
  | v -> invalid_arg (Fmt.str "Crdt.int_value: %a" value_pp v)

let set_value = function
  | V_set vs -> vs
  | V_none -> []
  | v -> invalid_arg (Fmt.str "Crdt.set_value: %a" value_pp v)
