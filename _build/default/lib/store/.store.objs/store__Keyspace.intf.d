lib/store/keyspace.mli: Fmt
