lib/store/keyspace.ml: Fmt
