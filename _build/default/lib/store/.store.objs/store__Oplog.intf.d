lib/store/oplog.mli: Crdt Keyspace Vclock
