lib/store/oplog.ml: Crdt Hashtbl Keyspace List Vclock
