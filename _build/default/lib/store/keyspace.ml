(* Partitioned key space (§2): keys are integers, split into N logical
   partitions; each data center replicates all partitions across its
   machines. The modulo placement matches what the workloads need — the
   contention experiment of §8.2 must be able to aim transactions at one
   designated partition. *)

type key = int

let partition ~partitions key =
  if partitions <= 0 then invalid_arg "Keyspace.partition: no partitions";
  let p = key mod partitions in
  if p < 0 then p + partitions else p

(* A key placed on the given partition: the k-th key of partition [p]. *)
let key_on ~partitions ~p k =
  if p < 0 || p >= partitions then invalid_arg "Keyspace.key_on: bad partition";
  (k * partitions) + p

(* Namespaced keys for multi-table applications (RUBiS): a table id and a
   row id packed into one integer key, with room for a per-row field.
   The row occupies the LOW bits: partitioning is modulo the key, so row
   identity must drive placement — packing table/field low would send
   every field-0 key of every table to the same partition. *)
let row_bits = 40
let table_bits = 4
let field_bits = 4
let max_tables = 1 lsl table_bits
let max_fields = 1 lsl field_bits
let max_row = 1 lsl row_bits

let make ~table ~field ~row =
  if table < 0 || table >= max_tables then invalid_arg "Keyspace.make: table";
  if field < 0 || field >= max_fields then invalid_arg "Keyspace.make: field";
  if row < 0 || row >= max_row then invalid_arg "Keyspace.make: row";
  row lor (field lsl row_bits) lor (table lsl (row_bits + field_bits))

let row_of key = key land (max_row - 1)
let field_of key = (key lsr row_bits) land (max_fields - 1)
let table_of key = (key lsr (row_bits + field_bits)) land (max_tables - 1)

let pp ppf key =
  Fmt.pf ppf "k%d(t%d.f%d.r%d)" key (table_of key) (field_of key) (row_of key)
