(** Partitioned key space (§2): integer keys split into logical
    partitions, plus packed (table, field, row) keys for multi-table
    applications such as RUBiS. *)

type key = int

(** Partition hosting [key] (modulo placement). *)
val partition : partitions:int -> key -> int

(** The [k]-th key guaranteed to live on partition [p]. *)
val key_on : partitions:int -> p:int -> int -> key

val max_tables : int
val max_fields : int
val max_row : int

(** Pack a (table, field, row) triple into a key. The row occupies the
    low bits so modulo partitioning spreads rows, not fields. *)
val make : table:int -> field:int -> row:int -> key

val table_of : key -> int
val field_of : key -> int
val row_of : key -> int
val pp : key Fmt.t
