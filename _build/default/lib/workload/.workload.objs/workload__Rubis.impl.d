lib/workload/rubis.ml: Array Crdt List Sim Store Unistore
