lib/workload/micro.ml: Crdt List Sim Store Unistore
