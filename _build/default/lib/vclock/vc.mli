(** Vector timestamps with one entry per data center plus a [strong]
    entry (UniStore §5.1, §6.1).

    A vector over [D] data centers stores [D + 1] scalar timestamps;
    entry [D] is the strong entry. Commit vectors, snapshot vectors and
    replication-progress vectors all share this representation. *)

type t = int array

val create : dcs:int -> t

(** Defensive copy of the given physical array (length [dcs + 1]). *)
val of_array : int array -> t

val copy : t -> t

(** Number of data-center entries (excludes [strong]). *)
val dcs : t -> int

val get : t -> int -> int
val set : t -> int -> int -> unit
val strong : t -> int
val set_strong : t -> int -> unit

(** Pointwise [<=] over all entries including [strong]. *)
val leq : t -> t -> bool

(** [leq] and strictly smaller in at least one entry. *)
val lt : t -> t -> bool

val equal : t -> t -> bool

(** Pointwise [<=] over the per-DC entries only. *)
val leq_dcs : t -> t -> bool

(** Pointwise join (least upper bound); allocates. *)
val join : t -> t -> t

(** Pointwise meet (greatest lower bound); allocates. *)
val meet : t -> t -> t

(** In-place [v1 := join v1 v2]. *)
val merge_into : t -> t -> unit

(** [bump v i x] is [v.(i) <- max v.(i) x]. *)
val bump : t -> int -> int -> unit

val bump_strong : t -> int -> unit
val pp : t Fmt.t
val to_string : t -> string
