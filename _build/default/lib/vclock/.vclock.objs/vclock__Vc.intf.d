lib/vclock/vc.mli: Fmt
