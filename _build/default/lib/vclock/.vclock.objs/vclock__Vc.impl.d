lib/vclock/vc.ml: Array Fmt
