(* Vector timestamps with one entry per data center plus a [strong] entry,
   as used throughout the UniStore protocol (§5.1, §6.1 of the paper).

   A vector over D data centers has physical length D + 1; index D holds
   the strong entry. Vectors serve three roles in the protocol — commit
   vectors, snapshot vectors, and replication-progress vectors — all with
   the same representation but different comparison conventions, provided
   here as distinct functions. *)

type t = int array

let strong_index v = Array.length v - 1

let create ~dcs = Array.make (dcs + 1) 0

let of_array a = Array.copy a
let copy v = Array.copy v
let dcs v = Array.length v - 1

let get v i = v.(i)
let set v i x = v.(i) <- x
let strong v = v.(strong_index v)
let set_strong v x = v.(strong_index v) <- x

let check_compat v1 v2 =
  if Array.length v1 <> Array.length v2 then
    invalid_arg "Vc: incompatible vector lengths"

(* Pointwise <= over every entry including [strong]. *)
let leq v1 v2 =
  check_compat v1 v2;
  let n = Array.length v1 in
  let rec go i = i = n || (v1.(i) <= v2.(i) && go (i + 1)) in
  go 0

(* Strict order: pointwise <= and strictly smaller somewhere. *)
let lt v1 v2 = leq v1 v2 && not (leq v2 v1)

let equal v1 v2 =
  check_compat v1 v2;
  let n = Array.length v1 in
  let rec go i = i = n || (v1.(i) = v2.(i) && go (i + 1)) in
  go 0

(* Pointwise <= restricted to the per-DC entries (ignoring [strong]);
   used where the causal protocol compares snapshots before strong
   transactions enter the picture. *)
let leq_dcs v1 v2 =
  check_compat v1 v2;
  let n = Array.length v1 - 1 in
  let rec go i = i = n || (v1.(i) <= v2.(i) && go (i + 1)) in
  go 0

(* Pointwise join (least upper bound). *)
let join v1 v2 =
  check_compat v1 v2;
  Array.init (Array.length v1) (fun i -> max v1.(i) v2.(i))

(* Pointwise meet (greatest lower bound). *)
let meet v1 v2 =
  check_compat v1 v2;
  Array.init (Array.length v1) (fun i -> min v1.(i) v2.(i))

(* In-place merge: v1 := join v1 v2. *)
let merge_into v1 v2 =
  check_compat v1 v2;
  for i = 0 to Array.length v1 - 1 do
    if v2.(i) > v1.(i) then v1.(i) <- v2.(i)
  done

(* v.(i) := max v.(i) x *)
let bump v i x = if x > v.(i) then v.(i) <- x

let bump_strong v x =
  let i = strong_index v in
  if x > v.(i) then v.(i) <- x

let pp ppf v =
  let n = Array.length v in
  Fmt.pf ppf "[";
  for i = 0 to n - 2 do
    if i > 0 then Fmt.pf ppf " ";
    Fmt.pf ppf "%d" v.(i)
  done;
  Fmt.pf ppf " | s:%d]" v.(n - 1)

let to_string v = Fmt.str "%a" pp v
