(* Deterministic PRNG: reproducibility, stream independence, samplers. *)

let test_determinism () =
  let a = Sim.Rng.create 7 and b = Sim.Rng.create 7 in
  for _ = 1 to 1000 do
    Alcotest.(check int64)
      "same seed, same stream" (Sim.Rng.next_int64 a) (Sim.Rng.next_int64 b)
  done

let test_different_seeds () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Sim.Rng.next_int64 a = Sim.Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_split_independent () =
  let parent = Sim.Rng.create 7 in
  let a = Sim.Rng.split parent ~id:1 in
  let b = Sim.Rng.split parent ~id:2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Sim.Rng.next_int64 a = Sim.Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 5)

let test_int_bounds () =
  let rng = Sim.Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_covers_range () =
  let rng = Sim.Rng.create 13 in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Sim.Rng.int rng 8) <- true
  done;
  Array.iteri
    (fun i hit -> Alcotest.(check bool) (Fmt.str "value %d seen" i) true hit)
    seen

let test_float_bounds () =
  let rng = Sim.Rng.create 17 in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 3.5)
  done

let test_float_mean () =
  let rng = Sim.Rng.create 19 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Fmt.str "mean %.4f close to 0.5" mean)
    true
    (abs_float (mean -. 0.5) < 0.01)

let test_exponential_mean () =
  let rng = Sim.Rng.create 23 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential rng ~mean:50.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Fmt.str "mean %.2f close to 50" mean)
    true
    (abs_float (mean -. 50.0) < 2.0)

let test_weighted () =
  let rng = Sim.Rng.create 29 in
  let weights = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Sim.Rng.weighted rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight index never drawn" 0 counts.(1);
  let frac0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool)
    (Fmt.str "weight-1 fraction %.3f near 0.25" frac0)
    true
    (abs_float (frac0 -. 0.25) < 0.02)

let test_shuffle_permutation () =
  let rng = Sim.Rng.create 31 in
  let arr = Array.init 100 Fun.id in
  Sim.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 100 Fun.id);
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 100 Fun.id)

let test_invalid_args () =
  let rng = Sim.Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int rng 0));
  Alcotest.check_raises "weighted zero"
    (Invalid_argument "Rng.weighted: weights sum to zero") (fun () ->
      ignore (Sim.Rng.weighted rng [| 0.0; 0.0 |]))

let suite =
  [
    Alcotest.test_case "same seed reproduces stream" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "split streams are independent" `Quick
      test_split_independent;
    Alcotest.test_case "int stays in bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers its range" `Quick test_int_covers_range;
    Alcotest.test_case "float stays in bounds" `Quick test_float_bounds;
    Alcotest.test_case "float is uniform (mean)" `Quick test_float_mean;
    Alcotest.test_case "exponential has requested mean" `Quick
      test_exponential_mean;
    Alcotest.test_case "weighted respects weights" `Quick test_weighted;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "invalid arguments rejected" `Quick test_invalid_args;
  ]
