(* Vector timestamps: orders, lattice operations, strong entry. *)

module Vc = Vclock.Vc

let v3 a b c s =
  let v = Vc.create ~dcs:3 in
  Vc.set v 0 a;
  Vc.set v 1 b;
  Vc.set v 2 c;
  Vc.set_strong v s;
  v

let test_create () =
  let v = Vc.create ~dcs:3 in
  Alcotest.(check int) "dcs" 3 (Vc.dcs v);
  for i = 0 to 2 do
    Alcotest.(check int) "zero" 0 (Vc.get v i)
  done;
  Alcotest.(check int) "strong zero" 0 (Vc.strong v)

let test_leq () =
  Alcotest.(check bool) "refl" true (Vc.leq (v3 1 2 3 4) (v3 1 2 3 4));
  Alcotest.(check bool) "dominated" true (Vc.leq (v3 1 2 3 0) (v3 2 2 4 1));
  Alcotest.(check bool) "not dominated" false (Vc.leq (v3 1 2 3 0) (v3 2 1 4 1));
  Alcotest.(check bool) "strong counts" false
    (Vc.leq (v3 1 2 3 5) (v3 1 2 3 4))

let test_lt () =
  Alcotest.(check bool) "strict" true (Vc.lt (v3 1 2 3 0) (v3 1 2 4 0));
  Alcotest.(check bool) "not strict on equal" false
    (Vc.lt (v3 1 2 3 0) (v3 1 2 3 0));
  Alcotest.(check bool) "incomparable" false (Vc.lt (v3 1 0 0 0) (v3 0 1 0 0))

let test_leq_dcs_ignores_strong () =
  Alcotest.(check bool) "ignores strong" true
    (Vc.leq_dcs (v3 1 2 3 99) (v3 1 2 3 0))

let test_join_meet () =
  let a = v3 1 5 2 7 and b = v3 3 1 2 4 in
  Alcotest.(check bool) "join" true (Vc.equal (Vc.join a b) (v3 3 5 2 7));
  Alcotest.(check bool) "meet" true (Vc.equal (Vc.meet a b) (v3 1 1 2 4))

let test_merge_into () =
  let a = v3 1 5 2 7 in
  Vc.merge_into a (v3 3 1 2 4);
  Alcotest.(check bool) "in-place join" true (Vc.equal a (v3 3 5 2 7))

let test_bump () =
  let a = v3 1 1 1 1 in
  Vc.bump a 0 5;
  Vc.bump a 1 0;
  Vc.bump_strong a 9;
  Alcotest.(check bool) "bumps" true (Vc.equal a (v3 5 1 1 9))

let test_copy_isolated () =
  let a = v3 1 2 3 4 in
  let b = Vc.copy a in
  Vc.set b 0 99;
  Alcotest.(check int) "original untouched" 1 (Vc.get a 0)

let test_incompatible () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Vc: incompatible vector lengths") (fun () ->
      ignore (Vc.leq (Vc.create ~dcs:2) (Vc.create ~dcs:3)))

(* --- lattice laws, property-based ---------------------------------- *)

let gen_vc =
  QCheck.Gen.(
    map
      (fun xs ->
        let v = Vc.create ~dcs:3 in
        List.iteri (fun i x -> Vc.set v i x) xs;
        v)
      (list_size (return 4) (int_bound 100)))

let arb_vc = QCheck.make ~print:Vc.to_string gen_vc

let qcheck_join_commutative =
  QCheck.Test.make ~name:"join commutative" ~count:300 (QCheck.pair arb_vc arb_vc)
    (fun (a, b) -> Vc.equal (Vc.join a b) (Vc.join b a))

let qcheck_join_associative =
  QCheck.Test.make ~name:"join associative" ~count:300
    (QCheck.triple arb_vc arb_vc arb_vc) (fun (a, b, c) ->
      Vc.equal (Vc.join a (Vc.join b c)) (Vc.join (Vc.join a b) c))

let qcheck_join_idempotent =
  QCheck.Test.make ~name:"join idempotent" ~count:300 arb_vc (fun a ->
      Vc.equal (Vc.join a a) a)

let qcheck_join_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound" ~count:300
    (QCheck.pair arb_vc arb_vc) (fun (a, b) ->
      let j = Vc.join a b in
      Vc.leq a j && Vc.leq b j)

let qcheck_meet_lower_bound =
  QCheck.Test.make ~name:"meet is a lower bound" ~count:300
    (QCheck.pair arb_vc arb_vc) (fun (a, b) ->
      let m = Vc.meet a b in
      Vc.leq m a && Vc.leq m b)

let qcheck_absorption =
  QCheck.Test.make ~name:"absorption law" ~count:300
    (QCheck.pair arb_vc arb_vc) (fun (a, b) ->
      Vc.equal (Vc.join a (Vc.meet a b)) a
      && Vc.equal (Vc.meet a (Vc.join a b)) a)

let qcheck_leq_partial_order =
  QCheck.Test.make ~name:"leq transitive and antisymmetric" ~count:300
    (QCheck.triple arb_vc arb_vc arb_vc) (fun (a, b, c) ->
      let trans =
        (not (Vc.leq a b && Vc.leq b c)) || Vc.leq a c
      in
      let antisym = (not (Vc.leq a b && Vc.leq b a)) || Vc.equal a b in
      trans && antisym)

let suite =
  [
    Alcotest.test_case "create zero vector" `Quick test_create;
    Alcotest.test_case "pointwise leq" `Quick test_leq;
    Alcotest.test_case "strict order" `Quick test_lt;
    Alcotest.test_case "leq_dcs ignores strong entry" `Quick
      test_leq_dcs_ignores_strong;
    Alcotest.test_case "join and meet" `Quick test_join_meet;
    Alcotest.test_case "merge_into joins in place" `Quick test_merge_into;
    Alcotest.test_case "bump takes maxima" `Quick test_bump;
    Alcotest.test_case "copy is isolated" `Quick test_copy_isolated;
    Alcotest.test_case "incompatible lengths rejected" `Quick
      test_incompatible;
    QCheck_alcotest.to_alcotest qcheck_join_commutative;
    QCheck_alcotest.to_alcotest qcheck_join_associative;
    QCheck_alcotest.to_alcotest qcheck_join_idempotent;
    QCheck_alcotest.to_alcotest qcheck_join_upper_bound;
    QCheck_alcotest.to_alcotest qcheck_meet_lower_bound;
    QCheck_alcotest.to_alcotest qcheck_absorption;
    QCheck_alcotest.to_alcotest qcheck_leq_partial_order;
  ]
