(* White-box tests of the certification group state machine (Cert):
   certification checks, delivery gating, and leader recovery — driven
   through mock contexts with synchronous message delivery, no network
   or replicas involved. *)

module U = Unistore
module Vc = Vclock.Vc

(* A tiny synchronous bus: addr i = member of DC i. *)
type bus = {
  mutable members : U.Cert.t option array;
  mutable queue : (int * U.Msg.t) list;  (* (dst, msg) in FIFO order *)
  mutable delivered : (int * string) list;  (* deliveries observed *)
  mutable clock : int;
  mutable certify_calls : U.Types.tid list;
}

let dcs = 3

let make_bus () =
  {
    members = Array.make dcs None;
    queue = [];
    delivered = [];
    clock = 100;
    certify_calls = [];
  }

let rec pump bus =
  match bus.queue with
  | [] -> ()
  | (dst, msg) :: rest ->
      bus.queue <- rest;
      (* addresses outside the member range stand for coordinators whose
         replies the tests observe only through state *)
      (if dst >= 0 && dst < Array.length bus.members then
         match bus.members.(dst) with
         | Some c -> ignore (U.Cert.handle c msg)
         | None -> ());
      pump bus

let make_member bus dc =
  let ctx =
    {
      U.Cert.x_dc = dc;
      x_group = 0;
      x_dcs = dcs;
      x_quorum = 2;
      x_conflict_ops = U.Config.ops_conflict U.Config.Serializable;
      x_all_conflict = false;
      x_ops_slice = (fun ops -> List.concat_map snd ops);
      x_clock = (fun () -> bus.clock);
      x_now = (fun () -> bus.clock);
      x_send = (fun dst msg -> bus.queue <- bus.queue @ [ (dst, msg) ]);
      x_self = (fun () -> dc);
      x_member = (fun i -> i);
      x_dc_of = (fun a -> a);
      x_deliver =
        (fun txs ~strong_ts ->
          List.iter
            (fun tx ->
              bus.delivered <-
                (strong_ts, Fmt.str "%a@dc?" U.Types.tid_pp tx.U.Types.tx_tid)
                :: bus.delivered)
            txs;
          if txs = [] then bus.delivered <- (strong_ts, "dummy") :: bus.delivered);
      x_at_clock = (fun ts k -> bus.clock <- max bus.clock ts; k ());
      x_certify =
        (fun ~caller:_ ~tid ~origin:_ ~wbuff:_ ~ops:_ ~snap:_ ~lc:_ ~k:_ ->
          bus.certify_calls <- tid :: bus.certify_calls);
      x_alive = (fun () -> true);
    }
  in
  U.Cert.create ctx ~leader_dc:0

let setup () =
  let bus = make_bus () in
  for dc = 0 to dcs - 1 do
    bus.members.(dc) <- Some (make_member bus dc)
  done;
  let m dc = Option.get bus.members.(dc) in
  (bus, m)

let tid n = { U.Types.cl = 9; sq = n }

let wbuff_of key : U.Types.wbuff =
  [ (0, [ { U.Types.wkey = key; wop = Crdt.Reg_write 1; wcls = 0 } ]) ]

let ops_of key : U.Types.opsmap =
  [ (0, [ { U.Types.key; cls = 0; write = true } ]) ]

let snap0 = Vc.create ~dcs:3

let prepare bus ~coord ~n ~key ~snap =
  bus.queue <-
    bus.queue
    @ [
        ( 0,
          U.Msg.Prepare_strong
            {
              rid = n;
              caller = U.Msg.Normal;
              coord;
              tid = tid n;
              origin = 9;
              wbuff = wbuff_of key;
              ops = ops_of key;
              snap;
              lc = 0;
            } );
      ];
  pump bus

let test_leader_certifies_and_members_ack () =
  let bus, m = setup () in
  Alcotest.(check bool) "dc0 leads" true (U.Cert.is_leader (m 0));
  Alcotest.(check bool) "dc1 follows" false (U.Cert.is_leader (m 1));
  (* coordinator "address" 99 is nobody on the bus: we only observe state *)
  prepare bus ~coord:99 ~n:1 ~key:5 ~snap:snap0;
  (* after the ACCEPT round every member holds the transaction *)
  for dc = 0 to dcs - 1 do
    Alcotest.(check int)
      (Fmt.str "member %d prepared" dc)
      1
      (U.Cert.prepared_count (m dc))
  done

let test_conflicting_second_prepare_votes_abort () =
  let bus, m = setup () in
  prepare bus ~coord:99 ~n:1 ~key:5 ~snap:snap0;
  (* second transaction on the same key while the first is pending *)
  prepare bus ~coord:99 ~n:2 ~key:5 ~snap:snap0;
  ignore m;
  (* deliver decisions: commit the first, the second's vote must be abort;
     we can observe it through the Accept broadcast already applied: both
     are prepared, so inspect via certification check behaviour instead *)
  Alcotest.(check int) "both prepared at leader" 2
    (U.Cert.prepared_count (m 0))

let decide bus ~n ~ts ~dec =
  let vec = Vc.create ~dcs:3 in
  Vc.set_strong vec ts;
  bus.queue <-
    bus.queue @ [ (0, U.Msg.Decision { b = 0; tid = tid n; dec; vec; lc = 1 }) ];
  pump bus

let test_delivery_in_timestamp_order_with_gating () =
  let bus, m = setup () in
  prepare bus ~coord:99 ~n:1 ~key:5 ~snap:snap0;
  prepare bus ~coord:99 ~n:2 ~key:6 ~snap:snap0;
  (* decide the later transaction first: delivery must wait for the
     earlier prepared one *)
  decide bus ~n:2 ~ts:2000 ~dec:true;
  Alcotest.(check (list (pair int string))) "nothing delivered yet" []
    bus.delivered;
  decide bus ~n:1 ~ts:1000 ~dec:true;
  (* both decided: deliveries happen in ts order 1000 then 2000 *)
  let ts_order =
    List.rev_map fst bus.delivered
    |> List.filter (fun t -> t = 1000 || t = 2000)
  in
  Alcotest.(check bool) "delivered in order" true
    (List.length ts_order >= 2
    && List.sort compare ts_order = ts_order);
  Alcotest.(check int) "nothing left prepared" 0 (U.Cert.prepared_count (m 0))

let test_abort_decision_unblocks_delivery () =
  let bus, _m = setup () in
  prepare bus ~coord:99 ~n:1 ~key:5 ~snap:snap0;
  prepare bus ~coord:99 ~n:2 ~key:6 ~snap:snap0;
  decide bus ~n:2 ~ts:2000 ~dec:true;
  Alcotest.(check (list (pair int string))) "gated" [] bus.delivered;
  (* aborting the earlier one lifts the gate *)
  decide bus ~n:1 ~ts:1000 ~dec:false;
  Alcotest.(check bool) "later delivery proceeds" true
    (List.exists (fun (t, _) -> t = 2000) bus.delivered)

let test_already_decided_reply () =
  let bus, _m = setup () in
  prepare bus ~coord:99 ~n:1 ~key:5 ~snap:snap0;
  decide bus ~n:1 ~ts:1000 ~dec:true;
  (* re-preparing the same tid must answer ALREADY_DECIDED to the
     coordinator; member 1 acts as "coordinator" address so the reply
     lands somewhere harmless *)
  let before = List.length bus.queue in
  ignore before;
  prepare bus ~coord:1 ~n:1 ~key:5 ~snap:snap0;
  (* no new prepared entry appears *)
  let _, m = setup () in
  ignore m;
  Alcotest.(check bool) "no duplicate prepared" true
    (U.Cert.prepared_count (Option.get bus.members.(0)) = 0)

let test_leader_recovery_preserves_decisions () =
  let bus, m = setup () in
  prepare bus ~coord:99 ~n:1 ~key:5 ~snap:snap0;
  decide bus ~n:1 ~ts:1000 ~dec:true;
  prepare bus ~coord:99 ~n:2 ~key:6 ~snap:snap0;
  (* dc0 "fails": dc1 and dc2 now trust dc1 *)
  bus.members.(0) <- None;
  U.Cert.set_trusted (m 1) 1;
  U.Cert.set_trusted (m 2) 1;
  pump bus;
  (* the new leader must not serve until the in-flight transaction's fate
     is settled: it stays RESTORING and re-certifies it *)
  Alcotest.(check string) "dc1 restoring" "restoring"
    (U.Cert.status_name (U.Cert.status (m 1)));
  Alcotest.(check bool) "recovery re-certified the pending txn" true
    (List.exists (U.Types.tid_equal (tid 2)) bus.certify_calls);
  Alcotest.(check int) "decided state survived" 1 (U.Cert.decided_count (m 1));
  (* the re-certification concludes with a decision on the new ballot *)
  let vec = Vc.create ~dcs:3 in
  Vc.set_strong vec 3000;
  bus.queue <-
    bus.queue
    @ [ (1, U.Msg.Decision { b = 1; tid = tid 2; dec = true; vec; lc = 1 }) ];
  pump bus;
  Alcotest.(check string) "dc1 now leads" "leader"
    (U.Cert.status_name (U.Cert.status (m 1)));
  Alcotest.(check int) "pending transaction decided" 2
    (U.Cert.decided_count (m 1));
  Alcotest.(check bool) "and delivered under the new leader" true
    (List.exists (fun (t, _) -> t = 3000) bus.delivered)

let test_prune_decided () =
  let bus, m = setup () in
  prepare bus ~coord:99 ~n:1 ~key:5 ~snap:snap0;
  decide bus ~n:1 ~ts:1000 ~dec:true;
  Alcotest.(check int) "one decided" 1 (U.Cert.decided_count (m 0));
  U.Cert.prune_decided (m 0) ~keep_after:500;
  Alcotest.(check int) "recent kept" 1 (U.Cert.decided_count (m 0));
  U.Cert.prune_decided (m 0) ~keep_after:1500;
  Alcotest.(check int) "old pruned" 0 (U.Cert.decided_count (m 0))

let suite =
  [
    Alcotest.test_case "leader certifies, members accept" `Quick
      test_leader_certifies_and_members_ack;
    Alcotest.test_case "conflicting prepares coexist until decisions"
      `Quick test_conflicting_second_prepare_votes_abort;
    Alcotest.test_case "delivery gated and ordered by strong ts" `Quick
      test_delivery_in_timestamp_order_with_gating;
    Alcotest.test_case "abort decisions lift the delivery gate" `Quick
      test_abort_decision_unblocks_delivery;
    Alcotest.test_case "duplicate prepare answered from decided state"
      `Quick test_already_decided_reply;
    Alcotest.test_case "leader recovery preserves decisions" `Quick
      test_leader_recovery_preserves_decisions;
    Alcotest.test_case "decided-set pruning" `Quick test_prune_decided;
  ]
