(* The declarative §B specification: building abstract executions and
   checking the axioms, plus agreement with the vector-based checker. *)

module U = Unistore
module Vc = Vclock.Vc
module Client = U.Client

let vec entries strong =
  let v = Vc.create ~dcs:3 in
  List.iteri (fun i x -> Vc.set v i x) entries;
  Vc.set_strong v strong;
  v

let record ?(client = 0) ?(strong = false) ?(lc = 1) ~sq ~snap ~commit
    ?(reads = []) ?(writes = []) ?(ops = []) () =
  {
    U.History.h_tid = { U.Types.cl = client; sq };
    h_client = client;
    h_dc = 0;
    h_strong = strong;
    h_label = "t";
    h_snap = snap;
    h_vec = commit;
    h_lc = lc;
    h_reads = reads;
    h_writes = writes;
    h_ops = ops;
    h_start_us = 0;
    h_commit_us = sq;
  }

let cfg = U.Config.default ~partitions:2 ~record_history:true ()
let write key v = { U.Types.wkey = key; wop = Crdt.Reg_write v; wcls = 0 }
let wop key = { U.Types.key; cls = 0; write = true }
let rop key = { U.Types.key; cls = 0; write = false }

let test_visibility_construction () =
  let t1 =
    record ~sq:1 ~lc:1 ~snap:(vec [ 0; 0; 0 ] 0) ~commit:(vec [ 10; 0; 0 ] 0) ()
  in
  let t2 =
    record ~client:1 ~sq:1 ~lc:2
      ~snap:(vec [ 10; 0; 0 ] 0)
      ~commit:(vec [ 10; 5; 0 ] 0)
      ()
  in
  let t3 =
    record ~client:2 ~sq:1 ~lc:2
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 0; 0; 7 ] 0)
      ()
  in
  let ae = U.Abstract_exec.build [ t1; t2; t3 ] in
  Alcotest.(check bool) "t1 visible to t2" true
    (U.Abstract_exec.visible ae ~from:0 ~to_:1);
  Alcotest.(check bool) "t2 not visible to t1" false
    (U.Abstract_exec.visible ae ~from:1 ~to_:0);
  Alcotest.(check bool) "t1 not visible to concurrent t3" false
    (U.Abstract_exec.visible ae ~from:0 ~to_:2);
  (* arbitration is a total order consistent with Lamport clocks *)
  Alcotest.(check bool) "t1 before t2 in arbitration" true
    (U.Abstract_exec.arbitration_rank ae 0 < U.Abstract_exec.arbitration_rank ae 1)

let test_accepts_legal () =
  let t1 =
    record ~sq:1 ~lc:1
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 10; 0; 0 ] 0)
      ~writes:[ write 5 42 ] ~ops:[ wop 5 ] ()
  in
  let t2 =
    record ~sq:2 ~lc:2
      ~snap:(vec [ 10; 0; 0 ] 0)
      ~commit:(vec [ 20; 0; 0 ] 0)
      ~reads:[ (5, Crdt.V_int 42) ]
      ~ops:[ rop 5 ] ()
  in
  let r = U.Abstract_exec.check cfg [ t1; t2 ] in
  Alcotest.(check bool) (Fmt.str "%a" U.Abstract_exec.pp_result r) true
    (U.Abstract_exec.ok r)

let test_rejects_unordered_conflict () =
  let t1 =
    record ~sq:1 ~strong:true ~lc:1
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 0; 0; 0 ] 100)
      ~writes:[ write 5 1 ] ~ops:[ wop 5 ] ()
  in
  let t2 =
    record ~client:1 ~sq:1 ~strong:true ~lc:2
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 0; 0; 0 ] 200)
      ~writes:[ write 5 2 ] ~ops:[ wop 5 ] ()
  in
  let r = U.Abstract_exec.check cfg [ t1; t2 ] in
  Alcotest.(check bool) "unordered conflicting strongs rejected" false
    (U.Abstract_exec.ok r)

let test_rejects_stale_read () =
  let t1 =
    record ~sq:1 ~lc:1
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 10; 0; 0 ] 0)
      ~writes:[ write 5 42 ] ~ops:[ wop 5 ] ()
  in
  let t2 =
    record ~client:1 ~sq:1 ~lc:2
      ~snap:(vec [ 15; 0; 0 ] 0)
      ~commit:(vec [ 20; 0; 0 ] 0)
      ~reads:[ (5, Crdt.V_none) ]
      ~ops:[ rop 5 ] ()
  in
  let r = U.Abstract_exec.check cfg [ t1; t2 ] in
  Alcotest.(check bool) "stale read rejected" false (U.Abstract_exec.ok r)

(* End-to-end: run a real workload and check it against BOTH the
   vector-based checker and the abstract-execution specification; they
   must agree (and both pass). *)
let test_agreement_on_real_run () =
  let sys = Util.make_system ~partitions:4 () in
  for k = 0 to 9 do
    U.System.preload sys k (Crdt.Reg_write 0)
  done;
  for i = 0 to 5 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 3) (fun c ->
           let rng = Sim.Rng.create (100 + i) in
           for _ = 1 to 15 do
             let strong = Sim.Rng.int rng 5 = 0 in
             let rec attempt n =
               Client.start c ~strong;
               for _ = 1 to 2 do
                 let key = Sim.Rng.int rng 10 in
                 if Sim.Rng.bool rng then ignore (Client.read c key)
                 else Client.update c key (Crdt.Reg_write (Sim.Rng.int rng 50))
               done;
               match Client.commit c with
               | `Committed _ -> ()
               | `Aborted -> if n < 10 then attempt (n + 1)
             in
             attempt 0;
             Sim.Fiber.sleep (Sim.Rng.int rng 30_000)
           done))
  done;
  Util.run sys ~until:20_000_000;
  let h = U.System.history sys in
  let preloads = U.History.preloads h in
  let txns = U.History.txns h in
  let concrete = U.Checker.check ~preloads (U.System.cfg sys) txns in
  let abstract = U.Abstract_exec.check ~preloads (U.System.cfg sys) txns in
  if not (U.Checker.ok concrete) then
    Alcotest.failf "concrete: %a" U.Checker.pp_result concrete;
  if not (U.Abstract_exec.ok abstract) then
    Alcotest.failf "abstract: %a" U.Abstract_exec.pp_result abstract;
  Alcotest.(check bool) "non-trivial history" true
    (abstract.U.Abstract_exec.transactions > 50)

let suite =
  [
    Alcotest.test_case "visibility/arbitration construction" `Quick
      test_visibility_construction;
    Alcotest.test_case "accepts a legal abstract execution" `Quick
      test_accepts_legal;
    Alcotest.test_case "rejects unordered conflicting strongs" `Quick
      test_rejects_unordered_conflict;
    Alcotest.test_case "rejects stale reads" `Quick test_rejects_stale_read;
    Alcotest.test_case "agrees with the concrete checker on a real run"
      `Slow test_agreement_on_real_run;
  ]
