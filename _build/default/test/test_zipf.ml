(* Zipf sampler: bounds, uniform degeneration, skew ordering. *)

let test_bounds () =
  let rng = Sim.Rng.create 3 in
  let z = Sim.Zipf.create ~n:100 ~theta:0.9 in
  for _ = 1 to 10_000 do
    let x = Sim.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 100)
  done

let test_uniform_when_theta_zero () =
  let rng = Sim.Rng.create 5 in
  let z = Sim.Zipf.create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Sim.Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool)
        (Fmt.str "bucket %d frac %.3f near 0.1" i frac)
        true
        (abs_float (frac -. 0.1) < 0.01))
    counts

let test_skew_prefers_low_ranks () =
  let rng = Sim.Rng.create 7 in
  let z = Sim.Zipf.create ~n:1000 ~theta:0.9 in
  let low = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Sim.Zipf.sample z rng < 10 then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  (* under uniform this would be 1%; a 0.9-skew draws far more *)
  Alcotest.(check bool) (Fmt.str "low-rank mass %.3f" frac) true (frac > 0.3)

let test_rank_monotonicity () =
  let rng = Sim.Rng.create 11 in
  let z = Sim.Zipf.create ~n:50 ~theta:0.8 in
  let counts = Array.make 50 0 in
  for _ = 1 to 200_000 do
    let i = Sim.Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 beats rank 5" true (counts.(0) > counts.(5));
  Alcotest.(check bool) "rank 5 beats rank 40" true (counts.(5) > counts.(40))

let test_invalid () =
  Alcotest.check_raises "n=0"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Sim.Zipf.create ~n:0 ~theta:0.5));
  Alcotest.check_raises "theta=1"
    (Invalid_argument "Zipf.create: theta must be in [0, 1)") (fun () ->
      ignore (Sim.Zipf.create ~n:10 ~theta:1.0))

let suite =
  [
    Alcotest.test_case "samples stay in bounds" `Quick test_bounds;
    Alcotest.test_case "theta=0 is uniform" `Quick test_uniform_when_theta_zero;
    Alcotest.test_case "skew concentrates on low ranks" `Quick
      test_skew_prefers_low_ranks;
    Alcotest.test_case "frequency decreases with rank" `Quick
      test_rank_monotonicity;
    Alcotest.test_case "invalid parameters rejected" `Quick test_invalid;
  ]
