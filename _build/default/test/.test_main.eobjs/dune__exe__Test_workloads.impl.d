test/test_workloads.ml: Alcotest Array Fmt List Net Store String Unistore Workload
