test/test_protocol_basic.ml: Alcotest Array Crdt Fmt List Sim Unistore Util Vclock
