test/test_strong.ml: Alcotest Crdt List Sim Unistore Util Vclock
