test/test_abstract_exec.ml: Alcotest Crdt Fmt List Sim Unistore Util Vclock
