test/test_vc.ml: Alcotest List QCheck QCheck_alcotest Vclock
