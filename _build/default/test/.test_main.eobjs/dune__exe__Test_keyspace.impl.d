test/test_keyspace.ml: Alcotest Array Fmt List QCheck QCheck_alcotest Store
