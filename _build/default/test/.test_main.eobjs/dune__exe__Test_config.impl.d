test/test_config.ml: Alcotest Net Unistore
