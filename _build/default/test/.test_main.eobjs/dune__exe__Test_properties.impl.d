test/test_properties.ml: Crdt Fmt List Net QCheck QCheck_alcotest Sim Store String Unistore Vclock
