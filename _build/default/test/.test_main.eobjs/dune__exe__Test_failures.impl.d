test/test_failures.ml: Alcotest Crdt Fmt Sim Unistore Util
