test/test_heap.ml: Alcotest Fmt List QCheck QCheck_alcotest Sim
