test/test_cert.ml: Alcotest Array Crdt Fmt List Option Unistore Vclock
