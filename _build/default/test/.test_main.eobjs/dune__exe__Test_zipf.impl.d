test/test_zipf.ml: Alcotest Array Fmt Sim
