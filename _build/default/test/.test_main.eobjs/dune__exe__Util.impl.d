test/util.ml: Alcotest Crdt Net String Unistore
