test/test_trace.ml: Alcotest Crdt List Sim String Unistore
