test/test_checker.ml: Alcotest Crdt Fmt List Unistore Vclock
