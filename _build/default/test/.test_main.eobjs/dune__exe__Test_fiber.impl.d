test/test_fiber.ml: Alcotest List Sim
