test/test_crdt.ml: Alcotest Array Crdt Gen List QCheck QCheck_alcotest Sim Vclock
