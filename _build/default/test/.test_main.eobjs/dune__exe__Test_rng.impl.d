test/test_rng.ml: Alcotest Array Fmt Fun Sim
