test/test_history.ml: Alcotest List Sim Unistore Vclock
