test/test_oplog.ml: Alcotest Crdt Gen List QCheck QCheck_alcotest Store Vclock
