test/test_network.ml: Alcotest List Net Sim
