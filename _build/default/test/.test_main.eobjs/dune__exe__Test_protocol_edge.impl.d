test/test_protocol_edge.ml: Alcotest Array Crdt Fmt List Net Sim String Unistore Util
