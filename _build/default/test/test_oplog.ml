(* Per-key operation logs: snapshot reads, ordering, compaction. *)

module Vc = Vclock.Vc

let vec entries =
  let v = Vc.create ~dcs:2 in
  List.iteri (fun i x -> Vc.set v i x) entries;
  v

let tag lc origin = { Crdt.lc; origin }
let value_t = Alcotest.testable Crdt.value_pp ( = )

let test_empty_read () =
  let log = Store.Oplog.create () in
  let v, lc = Store.Oplog.read log 1 ~snap:(vec [ 10; 10 ]) in
  Alcotest.check value_t "no version" Crdt.V_none v;
  Alcotest.(check (option int)) "no lamport" None lc

let test_snapshot_filtering () =
  let log = Store.Oplog.create () in
  Store.Oplog.append log 1 ~op:(Crdt.Reg_write 1) ~vec:(vec [ 1; 0 ]) ~tag:(tag 1 0);
  Store.Oplog.append log 1 ~op:(Crdt.Reg_write 2) ~vec:(vec [ 5; 0 ]) ~tag:(tag 2 0);
  Store.Oplog.append log 1 ~op:(Crdt.Reg_write 3) ~vec:(vec [ 9; 0 ]) ~tag:(tag 3 0);
  let v, lc = Store.Oplog.read log 1 ~snap:(vec [ 6; 0 ]) in
  Alcotest.check value_t "snapshot excludes newer write" (Crdt.V_int 2) v;
  Alcotest.(check (option int)) "lamport of winner" (Some 2) lc;
  let v, _ = Store.Oplog.read log 1 ~snap:(vec [ 100; 100 ]) in
  Alcotest.check value_t "full snapshot sees last write" (Crdt.V_int 3) v;
  let v, _ = Store.Oplog.read log 1 ~snap:(vec [ 0; 0 ]) in
  Alcotest.check value_t "empty snapshot sees nothing" Crdt.V_none v

let test_lww_across_origins () =
  let log = Store.Oplog.create () in
  (* concurrent writes from two DCs: the higher Lamport tag must win
     regardless of append order *)
  Store.Oplog.append log 7 ~op:(Crdt.Reg_write 10) ~vec:(vec [ 0; 3 ]) ~tag:(tag 9 1);
  Store.Oplog.append log 7 ~op:(Crdt.Reg_write 20) ~vec:(vec [ 3; 0 ]) ~tag:(tag 4 0);
  let v, lc = Store.Oplog.read log 7 ~snap:(vec [ 5; 5 ]) in
  Alcotest.check value_t "higher tag wins" (Crdt.V_int 10) v;
  Alcotest.(check (option int)) "its lamport" (Some 9) lc

let test_counter_fold () =
  let log = Store.Oplog.create () in
  Store.Oplog.append log 2 ~op:(Crdt.Ctr_add 5) ~vec:(vec [ 1; 0 ]) ~tag:(tag 1 0);
  Store.Oplog.append log 2 ~op:(Crdt.Ctr_add 3) ~vec:(vec [ 0; 1 ]) ~tag:(tag 1 1);
  Store.Oplog.append log 2 ~op:(Crdt.Ctr_add 2) ~vec:(vec [ 2; 0 ]) ~tag:(tag 2 0);
  let v, _ = Store.Oplog.read log 2 ~snap:(vec [ 1; 1 ]) in
  Alcotest.check value_t "partial sum" (Crdt.V_int 8) v;
  let v, _ = Store.Oplog.read log 2 ~snap:(vec [ 9; 9 ]) in
  Alcotest.check value_t "full sum" (Crdt.V_int 10) v

let test_entries_order () =
  let log = Store.Oplog.create () in
  Store.Oplog.append log 3 ~op:(Crdt.Reg_write 1) ~vec:(vec [ 1; 0 ]) ~tag:(tag 5 0);
  Store.Oplog.append log 3 ~op:(Crdt.Reg_write 2) ~vec:(vec [ 2; 0 ]) ~tag:(tag 1 0);
  Store.Oplog.append log 3 ~op:(Crdt.Reg_write 3) ~vec:(vec [ 3; 0 ]) ~tag:(tag 9 0);
  let tags =
    List.map (fun e -> e.Store.Oplog.tag.Crdt.lc) (Store.Oplog.entries log 3)
  in
  Alcotest.(check (list int)) "descending tag order" [ 9; 5; 1 ] tags;
  Alcotest.(check int) "version count" 3 (Store.Oplog.version_count log 3);
  Alcotest.(check int) "appends" 3 (Store.Oplog.appended log)

let test_same_txn_double_write () =
  (* two writes to the same key in one transaction share the tag; the
     later one must win *)
  let log = Store.Oplog.create () in
  Store.Oplog.append log 4 ~op:(Crdt.Reg_write 1) ~vec:(vec [ 1; 0 ]) ~tag:(tag 3 0);
  Store.Oplog.append log 4 ~op:(Crdt.Reg_write 2) ~vec:(vec [ 1; 0 ]) ~tag:(tag 3 0);
  let v, _ = Store.Oplog.read log 4 ~snap:(vec [ 2; 2 ]) in
  Alcotest.check value_t "second write of the txn wins" (Crdt.V_int 2) v

let test_compact_registers () =
  let log = Store.Oplog.create () in
  for i = 1 to 10 do
    Store.Oplog.append log 5 ~op:(Crdt.Reg_write i) ~vec:(vec [ i; 0 ])
      ~tag:(tag i 0)
  done;
  Store.Oplog.compact log ~horizon:(vec [ 100; 100 ]);
  Alcotest.(check int) "register history collapsed" 1
    (Store.Oplog.version_count log 5);
  let v, _ = Store.Oplog.read log 5 ~snap:(vec [ 100; 100 ]) in
  Alcotest.check value_t "value preserved" (Crdt.V_int 10) v

let test_compact_respects_horizon () =
  let log = Store.Oplog.create () in
  Store.Oplog.append log 6 ~op:(Crdt.Reg_write 1) ~vec:(vec [ 1; 0 ]) ~tag:(tag 1 0);
  Store.Oplog.append log 6 ~op:(Crdt.Reg_write 2) ~vec:(vec [ 9; 0 ]) ~tag:(tag 2 0);
  Store.Oplog.compact log ~horizon:(vec [ 5; 5 ]);
  Alcotest.(check int) "nothing dropped above the horizon" 2
    (Store.Oplog.version_count log 6)

let qcheck_read_matches_fold =
  (* a snapshot read equals folding exactly the in-snapshot entries *)
  QCheck.Test.make ~name:"snapshot read equals direct fold" ~count:300
    QCheck.(
      make
        Gen.(
          list_size (int_range 0 30)
            (triple (int_bound 20) (int_bound 20) (int_bound 100))))
    (fun writes ->
      let log = Store.Oplog.create () in
      List.iteri
        (fun i (a, b, v) ->
          Store.Oplog.append log 1 ~op:(Crdt.Reg_write v) ~vec:(vec [ a; b ])
            ~tag:(tag i 0))
        writes;
      let snap = vec [ 10; 10 ] in
      let got, _ = Store.Oplog.read log 1 ~snap in
      let expected =
        List.fold_left
          (fun st (i, (a, b, v)) ->
            if Vc.leq (vec [ a; b ]) snap then
              Crdt.apply st (Crdt.Reg_write v) ~tag:(tag i 0) ~vec:(vec [ a; b ])
            else st)
          Crdt.empty
          (List.mapi (fun i w -> (i, w)) writes)
        |> Crdt.read
      in
      got = expected)

let suite =
  [
    Alcotest.test_case "reading an absent key" `Quick test_empty_read;
    Alcotest.test_case "snapshot filters versions" `Quick
      test_snapshot_filtering;
    Alcotest.test_case "LWW across origins" `Quick test_lww_across_origins;
    Alcotest.test_case "counter folds in-snapshot entries" `Quick
      test_counter_fold;
    Alcotest.test_case "entries kept in tag order" `Quick test_entries_order;
    Alcotest.test_case "double write in one txn" `Quick
      test_same_txn_double_write;
    Alcotest.test_case "compaction collapses register history" `Quick
      test_compact_registers;
    Alcotest.test_case "compaction respects the horizon" `Quick
      test_compact_respects_horizon;
    QCheck_alcotest.to_alcotest qcheck_read_matches_fold;
  ]
