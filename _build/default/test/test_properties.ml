(* Property-based end-to-end tests: random workloads over random
   deployments must satisfy PoR consistency, converge, and replay
   deterministically. *)

module U = Unistore
module Client = U.Client

type scenario = {
  sc_seed : int;
  sc_partitions : int;
  sc_dcs : int;
  sc_clients : int;
  sc_txns : int;
  sc_keys : int;
  sc_strong_pct : int;  (* 0..100 *)
  sc_conflict : U.Config.conflict_spec;
}

let pp_scenario sc =
  Fmt.str "seed=%d parts=%d dcs=%d clients=%d txns=%d keys=%d strong=%d%%"
    sc.sc_seed sc.sc_partitions sc.sc_dcs sc.sc_clients sc.sc_txns sc.sc_keys
    sc.sc_strong_pct

let gen_scenario =
  QCheck.Gen.(
    map
      (fun ((seed, partitions, dcs, clients), (txns, keys, strong_pct, conflict)) ->
        {
          sc_seed = seed;
          sc_partitions = 1 + partitions;
          sc_dcs = 3 + dcs;
          sc_clients = 1 + clients;
          sc_txns = 1 + txns;
          sc_keys = 1 + keys;
          sc_strong_pct = strong_pct;
          sc_conflict =
            (match conflict with
            | 0 -> U.Config.Serializable
            | 1 -> U.Config.Write_write
            | _ -> U.Config.Classes [ (1, 1); (1, 2) ]);
        })
      (pair
         (quad (int_bound 10_000) (int_bound 5) (int_bound 2) (int_bound 5))
         (quad (int_bound 12) (int_bound 15) (int_bound 100) (int_bound 2))))

let arb_scenario = QCheck.make ~print:pp_scenario gen_scenario

(* Run one random workload; returns the system after quiescence. *)
let run_scenario sc =
  let topo = Net.Topology.n_dcs sc.sc_dcs in
  let cfg =
    U.Config.default ~topo ~partitions:sc.sc_partitions ~f:1
      ~conflict:sc.sc_conflict ~seed:sc.sc_seed ~record_history:true ()
  in
  let sys = U.System.create cfg in
  for k = 0 to sc.sc_keys - 1 do
    U.System.preload sys k (Crdt.Reg_write 0)
  done;
  for i = 0 to sc.sc_clients - 1 do
    let dc = i mod sc.sc_dcs in
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           let rng = Sim.Rng.create ((sc.sc_seed * 131) + i) in
           for _ = 1 to sc.sc_txns do
             let strong = Sim.Rng.int rng 100 < sc.sc_strong_pct in
             let rec attempt n =
               Client.start c ~strong;
               let ops = 1 + Sim.Rng.int rng 3 in
               for _ = 1 to ops do
                 let key = Sim.Rng.int rng sc.sc_keys in
                 let cls = 1 + Sim.Rng.int rng 2 in
                 if Sim.Rng.bool rng then
                   ignore (Client.read ~cls c key)
                 else
                   Client.update ~cls c key
                     (Crdt.Reg_write (Sim.Rng.int rng 1_000))
               done;
               match Client.commit c with
               | `Committed _ -> ()
               | `Aborted -> if n < 10 then attempt (n + 1)
             in
             attempt 0;
             Sim.Fiber.sleep (Sim.Rng.int rng 50_000)
           done))
  done;
  (* generous quiescence horizon: everything replicates and stabilises *)
  U.System.run sys ~until:30_000_000;
  sys

let por_holds sc =
  let sys = run_scenario sc in
  let h = U.System.history sys in
  let result =
    U.Checker.check ~preloads:(U.History.preloads h)
      ~unacked:(U.History.unacked_writers h) (U.System.cfg sys)
      (U.History.txns h)
  in
  if not (U.Checker.ok result) then
    QCheck.Test.fail_reportf "%a" U.Checker.pp_result result;
  true

let converges sc =
  let sys = run_scenario sc in
  match U.System.check_convergence sys with
  | [] -> true
  | errs -> QCheck.Test.fail_reportf "divergence: %s" (String.concat "; " errs)

let deterministic sc =
  let digest sys =
    List.map
      (fun (r : U.History.txn_record) ->
        (r.h_tid, Vclock.Vc.to_string r.h_vec, r.h_lc, r.h_commit_us))
      (U.History.txns (U.System.history sys))
  in
  let a = digest (run_scenario sc) and b = digest (run_scenario sc) in
  a = b

let all_committed_eventually_visible sc =
  (* every committed write appears in every correct DC's log *)
  let sys = run_scenario sc in
  let cfg = U.System.cfg sys in
  let txns = U.History.txns (U.System.history sys) in
  let partitions = cfg.U.Config.partitions in
  List.for_all
    (fun (r : U.History.txn_record) ->
      List.for_all
        (fun (w : U.Types.write) ->
          let part = Store.Keyspace.partition ~partitions w.wkey in
          let ok = ref true in
          for dc = 0 to U.Config.dcs cfg - 1 do
            let log = U.Replica.oplog (U.System.replica sys ~dc ~part) in
            let entries = Store.Oplog.entries log w.wkey in
            if
              not
                (List.exists
                   (fun e -> Vclock.Vc.equal e.Store.Oplog.vec r.h_vec)
                   entries)
            then ok := false
          done;
          !ok)
        r.h_writes)
    txns

(* Crash a random DC mid-run: survivors must converge and the recorded
   history must still satisfy PoR. *)
let crash_tolerant sc =
  let topo = Net.Topology.n_dcs sc.sc_dcs in
  let cfg =
    U.Config.default ~topo ~partitions:sc.sc_partitions ~f:1
      ~conflict:sc.sc_conflict ~seed:sc.sc_seed ~record_history:true ()
  in
  let sys = U.System.create cfg in
  for k = 0 to sc.sc_keys - 1 do
    U.System.preload sys k (Crdt.Reg_write 0)
  done;
  let crash_dc = sc.sc_seed mod sc.sc_dcs in
  let crash_at = 50_000 + (sc.sc_seed mod 400_000) in
  Sim.Engine.schedule (U.System.engine sys) ~delay:crash_at (fun () ->
      U.System.fail_dc sys crash_dc);
  for i = 0 to sc.sc_clients - 1 do
    let dc = i mod sc.sc_dcs in
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           let rng = Sim.Rng.create ((sc.sc_seed * 31) + i) in
           for _ = 1 to sc.sc_txns do
             let strong = Sim.Rng.int rng 100 < sc.sc_strong_pct in
             let rec attempt n =
               Client.start c ~strong;
               for _ = 1 to 1 + Sim.Rng.int rng 2 do
                 let key = Sim.Rng.int rng sc.sc_keys in
                 if Sim.Rng.bool rng then ignore (Client.read c key)
                 else
                   Client.update c key (Crdt.Reg_write (Sim.Rng.int rng 1_000))
               done;
               match Client.commit c with
               | `Committed _ -> ()
               | `Aborted ->
                   if n < 10 then begin
                     Sim.Fiber.sleep 100_000;
                     attempt (n + 1)
                   end
             in
             attempt 0;
             Sim.Fiber.sleep (Sim.Rng.int rng 50_000)
           done))
  done;
  U.System.run sys ~until:40_000_000;
  let h = U.System.history sys in
  let result =
    U.Checker.check ~preloads:(U.History.preloads h)
      ~unacked:(U.History.unacked_writers h) cfg (U.History.txns h)
  in
  if not (U.Checker.ok result) then
    QCheck.Test.fail_reportf "after crashing dc%d at %dus: %a" crash_dc
      crash_at U.Checker.pp_result result;
  (match U.System.check_convergence sys with
  | [] -> ()
  | errs ->
      QCheck.Test.fail_reportf "after crashing dc%d at %dus: %s" crash_dc
        crash_at (String.concat "; " errs));
  true

let t name prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:12 arb_scenario prop)

let suite =
  [
    t "random workloads satisfy PoR consistency" por_holds;
    t "random workloads converge across DCs" converges;
    t "random workloads replay deterministically" deterministic;
    t "committed writes reach every DC" all_committed_eventually_visible;
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"survivors of a DC crash converge and stay PoR"
         ~count:8 arb_scenario crash_tolerant);
  ]
