(* The PoR checker itself: it must accept legal histories and flag each
   kind of violation when we seed one by hand. *)

module U = Unistore
module Vc = Vclock.Vc

let vec entries strong =
  let v = Vc.create ~dcs:3 in
  List.iteri (fun i x -> Vc.set v i x) entries;
  Vc.set_strong v strong;
  v

let record ?(client = 0) ?(dc = 0) ?(strong = false) ?(lc = 1) ~tid ~snap
    ~commit ?(reads = []) ?(writes = []) ?(ops = []) () =
  {
    U.History.h_tid = { U.Types.cl = client; sq = tid };
    h_client = client;
    h_dc = dc;
    h_strong = strong;
    h_label = "t";
    h_snap = snap;
    h_vec = commit;
    h_lc = lc;
    h_reads = reads;
    h_writes = writes;
    h_ops = ops;
    h_start_us = 0;
    h_commit_us = tid;
  }

let cfg = U.Config.default ~partitions:2 ~record_history:true ()

let check ?preloads txns = U.Checker.check ?preloads cfg txns

let write key v = { U.Types.wkey = key; wop = Crdt.Reg_write v; wcls = 0 }
let wop key = { U.Types.key; cls = 0; write = true }
let rop key = { U.Types.key; cls = 0; write = false }

let test_accepts_legal () =
  let t1 =
    record ~tid:1
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 10; 0; 0 ] 0)
      ~writes:[ write 5 42 ] ~ops:[ wop 5 ] ()
  in
  let t2 =
    record ~tid:2 ~lc:2
      ~snap:(vec [ 10; 0; 0 ] 0)
      ~commit:(vec [ 20; 0; 0 ] 0)
      ~reads:[ (5, Crdt.V_int 42) ]
      ~ops:[ rop 5 ] ()
  in
  let r = check [ t1; t2 ] in
  Alcotest.(check bool) (Fmt.str "%a" U.Checker.pp_result r) true
    (U.Checker.ok r)

let test_detects_session_violation () =
  let t1 =
    record ~tid:1 ~snap:(vec [ 0; 0; 0 ] 0) ~commit:(vec [ 10; 0; 0 ] 0) ()
  in
  let t2 =
    (* same client, later transaction, but its snapshot excludes t1 *)
    record ~tid:2 ~lc:2 ~snap:(vec [ 5; 0; 0 ] 0)
      ~commit:(vec [ 20; 0; 0 ] 0)
      ()
  in
  let r = check [ t1; t2 ] in
  Alcotest.(check bool) "violation found" false (U.Checker.ok r)

let test_detects_stale_read () =
  let t1 =
    record ~tid:1
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 10; 0; 0 ] 0)
      ~writes:[ write 5 42 ] ~ops:[ wop 5 ] ()
  in
  let t2 =
    record ~client:1 ~tid:1 ~lc:2
      ~snap:(vec [ 15; 0; 0 ] 0)  (* snapshot contains t1 *)
      ~commit:(vec [ 20; 0; 0 ] 0)
      ~reads:[ (5, Crdt.V_none) ]  (* ...but the read missed it *)
      ~ops:[ rop 5 ] ()
  in
  let r = check [ t1; t2 ] in
  Alcotest.(check bool) "stale read found" false (U.Checker.ok r)

let test_detects_conflict_ordering_violation () =
  let t1 =
    record ~tid:1 ~strong:true
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 0; 0; 0 ] 100)
      ~writes:[ write 5 1 ] ~ops:[ wop 5 ] ()
  in
  let t2 =
    (* conflicting strong txn with a later strong ts whose snapshot does
       not include t1 *)
    record ~client:1 ~tid:1 ~strong:true ~lc:2
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 0; 0; 0 ] 200)
      ~writes:[ write 5 2 ] ~ops:[ wop 5 ] ()
  in
  let r = check [ t1; t2 ] in
  Alcotest.(check bool) "conflict ordering violation found" false
    (U.Checker.ok r)

let test_detects_duplicate_strong_ts () =
  let t1 =
    record ~tid:1 ~strong:true
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 0; 0; 0 ] 100)
      ~writes:[ write 5 1 ] ~ops:[ wop 5 ] ()
  in
  let t2 =
    record ~client:1 ~tid:1 ~strong:true ~lc:2
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 0; 0; 0 ] 100)
      ~writes:[ write 5 2 ] ~ops:[ wop 5 ] ()
  in
  let r = check [ t1; t2 ] in
  Alcotest.(check bool) "duplicate strong ts found" false (U.Checker.ok r)

let test_preloads_seed_reads () =
  let t1 =
    record ~tid:1
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 10; 0; 0 ] 0)
      ~reads:[ (9, Crdt.V_int 7) ]
      ~ops:[ rop 9 ] ()
  in
  let r_without = check [ t1 ] in
  Alcotest.(check bool) "read of unknown value rejected" false
    (U.Checker.ok r_without);
  let r_with = check ~preloads:[ write 9 7 ] [ t1 ] in
  Alcotest.(check bool) "preload explains the read" true (U.Checker.ok r_with)

let test_own_write_overlay () =
  (* internal reads see the transaction's own earlier writes *)
  let t1 =
    record ~tid:1
      ~snap:(vec [ 0; 0; 0 ] 0)
      ~commit:(vec [ 10; 0; 0 ] 0)
      ~writes:[ write 5 1 ]
      ~reads:[ (5, Crdt.V_int 1) ]
      ~ops:[ wop 5; rop 5 ] ()
  in
  let r = check [ t1 ] in
  Alcotest.(check bool) (Fmt.str "%a" U.Checker.pp_result r) true
    (U.Checker.ok r)

let suite =
  [
    Alcotest.test_case "accepts a legal history" `Quick test_accepts_legal;
    Alcotest.test_case "detects session-order violations" `Quick
      test_detects_session_violation;
    Alcotest.test_case "detects stale reads" `Quick test_detects_stale_read;
    Alcotest.test_case "detects conflict-ordering violations" `Quick
      test_detects_conflict_ordering_violation;
    Alcotest.test_case "detects duplicate strong timestamps" `Quick
      test_detects_duplicate_strong_ts;
    Alcotest.test_case "preloads seed the read check" `Quick
      test_preloads_seed_reads;
    Alcotest.test_case "own writes overlay internal reads" `Quick
      test_own_write_overlay;
  ]
