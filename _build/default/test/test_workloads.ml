(* Workload generators: the microbenchmark and RUBiS. *)

module U = Unistore
module Rubis = Workload.Rubis
module Micro = Workload.Micro

let test_rubis_mix_fractions () =
  (* §8.1: the bidding mix has 15% update transactions, 10% strong *)
  Alcotest.(check (float 0.005)) "strong fraction" 0.10
    (Rubis.strong_fraction ());
  Alcotest.(check (float 0.005)) "update fraction" 0.15
    (Rubis.update_fraction ())

let test_rubis_mix_shape () =
  let names = Array.to_list (Array.map (fun t -> t.Rubis.name) Rubis.mix) in
  Alcotest.(check int) "17 transaction types (11 read-only + 5 update + \
                        closeAuction)"
    17 (List.length names);
  List.iter
    (fun must ->
      Alcotest.(check bool) (must ^ " present") true (List.mem must names))
    [ "registerUser"; "storeBid"; "storeBuyNow"; "closeAuction" ];
  (* exactly the four §8.1 strong types *)
  let strong =
    Array.to_list Rubis.mix
    |> List.filter (fun t -> t.Rubis.strong)
    |> List.map (fun t -> t.Rubis.name)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "strong types"
    [ "closeAuction"; "registerUser"; "storeBid"; "storeBuyNow" ]
    strong

let test_rubis_conflicts () =
  let spec = Rubis.conflict_spec in
  let od key cls write = { U.Types.key; cls; write } in
  let item_maxbid = Rubis.item_key ~iid:1 ~field:2 in
  let conflict a b = U.Config.ops_conflict spec a b in
  Alcotest.(check bool) "storeBid vs closeAuction on the same item" true
    (conflict
       (od item_maxbid Rubis.cls_store_bid true)
       (od item_maxbid Rubis.cls_close_auction false));
  Alcotest.(check bool) "storeBid vs storeBid does NOT conflict" false
    (conflict
       (od item_maxbid Rubis.cls_store_bid true)
       (od item_maxbid Rubis.cls_store_bid true));
  Alcotest.(check bool) "different items never conflict" false
    (conflict
       (od item_maxbid Rubis.cls_store_bid true)
       (od (Rubis.item_key ~iid:2 ~field:2) Rubis.cls_close_auction false))

let test_rubis_small_run () =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:4
      ~conflict:Rubis.conflict_spec ~record_history:true ()
  in
  let sys = U.System.create cfg in
  let spec =
    { Rubis.default_spec with n_items = 200; n_users = 500; think_time_us = 5_000 }
  in
  Rubis.populate sys spec;
  let stop () = U.System.now sys >= 1_500_000 in
  for i = 0 to 8 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 3) (fun c ->
           Rubis.client_body spec ~stop c))
  done;
  U.System.run sys ~until:4_000_000;
  let h = U.System.history sys in
  Alcotest.(check bool) "transactions committed" true
    (U.History.committed_total h > 50);
  Alcotest.(check bool) "both kinds of transactions ran" true
    (U.History.committed_strong h > 0 && U.History.committed_causal h > 0);
  let result =
    U.Checker.check ~preloads:(U.History.preloads h) cfg (U.History.txns h)
  in
  if not (U.Checker.ok result) then
    Alcotest.failf "%a" U.Checker.pp_result result;
  match U.System.check_convergence sys with
  | [] -> ()
  | errs -> Alcotest.failf "divergence: %s" (String.concat "; " errs)

let test_micro_key_targeting () =
  (* the contended variant must aim strong transactions at the designated
     partition *)
  let partitions = 8 in
  let spec =
    {
      (Micro.default_spec ~partitions) with
      strong_ratio = 1.0;
      hot_partition = Some (3, 1.0);
    }
  in
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions
      ~record_history:true ()
  in
  let sys = U.System.create cfg in
  let stop () = U.System.now sys >= 600_000 in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Micro.client_body spec ~stop c));
  U.System.run sys ~until:2_000_000;
  let h = U.System.history sys in
  let txns = U.History.txns h in
  Alcotest.(check bool) "ran" true (List.length txns > 0);
  List.iter
    (fun (r : U.History.txn_record) ->
      List.iter
        (fun (w : U.Types.write) ->
          Alcotest.(check int) "write on designated partition" 3
            (Store.Keyspace.partition ~partitions w.wkey))
        r.h_writes)
    txns

let test_micro_mix_ratios () =
  let partitions = 4 in
  let spec =
    {
      (Micro.default_spec ~partitions) with
      update_ratio = 0.5;
      strong_ratio = 0.0;
      keys = 1_000;
    }
  in
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions
      ~record_history:true ()
  in
  let sys = U.System.create cfg in
  let stop () = U.System.now sys >= 2_000_000 in
  for i = 0 to 5 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 3) (fun c ->
           Micro.client_body spec ~stop c))
  done;
  U.System.run sys ~until:3_000_000;
  let txns = U.History.txns (U.System.history sys) in
  let updates =
    List.length
      (List.filter (fun (r : U.History.txn_record) -> r.h_writes <> []) txns)
  in
  let frac = float_of_int updates /. float_of_int (List.length txns) in
  Alcotest.(check bool)
    (Fmt.str "update fraction %.2f near 0.5" frac)
    true
    (abs_float (frac -. 0.5) < 0.1)

let suite =
  [
    Alcotest.test_case "RUBiS mix fractions (15% update, 10% strong)" `Quick
      test_rubis_mix_fractions;
    Alcotest.test_case "RUBiS mix shape (17 types, 4 strong)" `Quick
      test_rubis_mix_shape;
    Alcotest.test_case "RUBiS conflict relation (3 declared conflicts)"
      `Quick test_rubis_conflicts;
    Alcotest.test_case "RUBiS end-to-end run passes the checker" `Slow
      test_rubis_small_run;
    Alcotest.test_case "microbenchmark contended targeting" `Quick
      test_micro_key_targeting;
    Alcotest.test_case "microbenchmark update ratio" `Quick
      test_micro_mix_ratios;
  ]
