(* Causal-transaction protocol: session guarantees, causal visibility,
   atomic visibility, snapshots, barriers and migration. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let test_read_your_writes () =
  let sys = Util.make_system () in
  let seen = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         Client.update c 10 (Crdt.Reg_write 7);
         ignore (Client.commit c);
         Client.start c;
         seen := Client.read_int c 10;
         ignore (Client.commit c)));
  Util.run sys ~until:1_000_000;
  Alcotest.(check int) "reads own write" 7 !seen;
  Util.assert_por sys

let test_read_your_writes_within_txn () =
  let sys = Util.make_system () in
  let seen = ref (-1) and seen_ctr = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         Client.update c 10 (Crdt.Reg_write 1);
         Client.update c 10 (Crdt.Reg_write 2);
         seen := Client.read_int c 10;
         Client.update c 11 (Crdt.Ctr_add 5);
         Client.update c 11 (Crdt.Ctr_add 6);
         seen_ctr := Client.read_int c 11;
         ignore (Client.commit c)));
  Util.run sys ~until:1_000_000;
  Alcotest.(check int) "latest own write" 2 !seen;
  Alcotest.(check int) "own counter increments" 11 !seen_ctr;
  Util.assert_por sys

let test_monotonic_reads_across_txns () =
  let sys = Util.make_system () in
  let values = ref [] in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         for i = 1 to 5 do
           Client.start c;
           Client.update c 20 (Crdt.Reg_write i);
           ignore (Client.commit c)
         done));
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         for _ = 1 to 10 do
           Client.start c;
           values := Client.read_int c 20 :: !values;
           ignore (Client.commit c);
           Fiber.sleep 10_000
         done));
  Util.run sys ~until:2_000_000;
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "reads never go back in time" true
    (monotone (List.rev !values));
  Util.assert_por sys

(* The banking anomaly of §1: Alice deposits (u1) then posts (u2); if Bob
   sees the post (u3) he must see the deposit (u4). *)
let test_causality_banking_anomaly () =
  let sys = Util.make_system () in
  let balance_key = 1 and inbox_key = 2 in
  U.System.preload sys balance_key (Crdt.Reg_write 0);
  U.System.preload sys inbox_key (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:0 (fun alice ->
         Client.start alice;
         Client.update alice balance_key (Crdt.Reg_write 100);
         ignore (Client.commit alice);
         Client.start alice;
         Client.update alice inbox_key (Crdt.Reg_write 1);
         ignore (Client.commit alice)));
  let violations = ref 0 and saw_notification = ref false in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun bob ->
         (* poll from Frankfurt: whenever the notification is visible,
            the deposit must be too *)
         for _ = 1 to 100 do
           Client.start bob;
           let note = Client.read_int bob inbox_key in
           let balance = Client.read_int bob balance_key in
           ignore (Client.commit bob);
           if note = 1 then begin
             saw_notification := true;
             if balance <> 100 then incr violations
           end;
           Fiber.sleep 5_000
         done));
  Util.run sys ~until:3_000_000;
  Alcotest.(check bool) "notification eventually visible" true
    !saw_notification;
  Alcotest.(check int) "no causality violation" 0 !violations;
  Util.assert_por sys;
  Util.assert_convergence sys

let test_atomic_visibility () =
  (* both keys of a transaction become visible together *)
  let sys = Util.make_system () in
  U.System.preload sys 30 (Crdt.Reg_write 0);
  U.System.preload sys 31 (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         for i = 1 to 20 do
           Client.start c;
           Client.update c 30 (Crdt.Reg_write i);
           Client.update c 31 (Crdt.Reg_write i);
           ignore (Client.commit c);
           Fiber.sleep 20_000
         done));
  let violations = ref 0 in
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         for _ = 1 to 200 do
           Client.start c;
           let a = Client.read_int c 30 in
           let b = Client.read_int c 31 in
           ignore (Client.commit c);
           if a <> b then incr violations;
           Fiber.sleep 2_000
         done));
  Util.run sys ~until:2_000_000;
  Alcotest.(check int) "no torn transaction" 0 !violations;
  Util.assert_por sys

let test_uniform_barrier_durability () =
  (* after a uniform barrier, the origin DC may fail and the transaction
     must still reach every correct DC *)
  let sys = Util.make_system () in
  let barrier_done = ref false in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         Client.update c 40 (Crdt.Reg_write 99);
         ignore (Client.commit c);
         Client.uniform_barrier c;
         barrier_done := true));
  (* fail Virginia shortly after the barrier completes *)
  Sim.Fiber.spawn (U.System.engine sys) (fun () ->
      let rec wait () =
        if not !barrier_done then begin
          Fiber.sleep 10_000;
          wait ()
        end
      in
      wait ();
      U.System.fail_dc sys 0);
  let value_at_fra = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Fiber.sleep 4_000_000;
         Client.start c;
         value_at_fra := Client.read_int c 40;
         ignore (Client.commit c)));
  Util.run sys ~until:6_000_000;
  Alcotest.(check bool) "barrier returned" true !barrier_done;
  Alcotest.(check int) "write survives origin failure" 99 !value_at_fra;
  Util.assert_convergence sys

let test_client_migration () =
  (* migrate a client from Virginia to Frankfurt; its session must see
     everything it wrote at the origin *)
  let sys = Util.make_system () in
  let after_migration = ref (-1) and final_dc = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         Client.update c 50 (Crdt.Reg_write 123);
         ignore (Client.commit c);
         Client.migrate c ~dc:2;
         final_dc := Client.dc c;
         Client.start c;
         after_migration := Client.read_int c 50;
         ignore (Client.commit c)));
  Util.run sys ~until:3_000_000;
  Alcotest.(check int) "attached to Frankfurt" 2 !final_dc;
  Alcotest.(check int) "session reads its own past" 123 !after_migration;
  Util.assert_por sys

let test_counter_concurrent_merge () =
  (* §3: two concurrent causal deposits of 100 and 200 converge to 300 at
     every replica thanks to the counter CRDT *)
  let sys = Util.make_system () in
  U.System.preload sys 60 (Crdt.Ctr_add 0);
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         Client.update c 60 (Crdt.Ctr_add 100);
         ignore (Client.commit c)));
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         Client.start c;
         Client.update c 60 (Crdt.Ctr_add 200);
         ignore (Client.commit c)));
  let results = Array.make 3 (-1) in
  for dc = 0 to 2 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           Fiber.sleep 2_000_000;
           Client.start c;
           results.(dc) <- Client.read_int c 60;
           ignore (Client.commit c)))
  done;
  Util.run sys ~until:3_000_000;
  Array.iteri
    (fun dc v ->
      Alcotest.(check int) (Fmt.str "balance at dc%d" dc) 300 v)
    results;
  Util.assert_convergence sys

let test_remote_visibility_needs_uniformity () =
  (* UniStore exposes a remote transaction only once it is uniform; with
     f = 1 and three DCs this takes roughly one WAN exchange longer than
     raw replication but must still happen promptly *)
  let sys = Util.make_system () in
  U.System.preload sys 70 (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         Client.start c;
         Client.update c 70 (Crdt.Reg_write 5);
         ignore (Client.commit c)));
  let seen_at = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         let rec poll () =
           Client.start c;
           let v = Client.read_int c 70 in
           ignore (Client.commit c);
           if v = 5 then seen_at := Sim.Engine.now (U.System.engine sys)
           else begin
             Fiber.sleep 5_000;
             poll ()
           end
         in
         poll ()));
  Util.run sys ~until:2_000_000;
  Alcotest.(check bool) "eventually visible" true (!seen_at > 0);
  (* California→Virginia one way is 30.5 ms; uniformity needs the
     stableVec exchange on top, so visibility lands between 30 ms and a
     few hundred ms *)
  Alcotest.(check bool)
    (Fmt.str "visible at %dus" !seen_at)
    true
    (!seen_at > 30_000 && !seen_at < 500_000);
  Util.assert_por sys

let test_deterministic_histories () =
  let run seed =
    let sys = Util.make_system ~seed () in
    for dc = 0 to 2 do
      ignore
        (U.System.spawn_client sys ~dc (fun c ->
             for i = 1 to 20 do
               Client.start c;
               ignore (Client.read_int c (i mod 7));
               Client.update c (i mod 7) (Crdt.Reg_write i);
               ignore (Client.commit c)
             done))
    done;
    Util.run sys ~until:2_000_000;
    List.map
      (fun (r : U.History.txn_record) ->
        (r.h_tid, Vclock.Vc.to_string r.h_vec, r.h_commit_us))
      (U.History.txns (U.System.history sys))
  in
  let h1 = run 7 and h2 = run 7 and h3 = run 8 in
  Alcotest.(check int) "same seed, same history length" (List.length h1)
    (List.length h2);
  Alcotest.(check bool) "same seed, identical histories" true (h1 = h2);
  Alcotest.(check bool) "different seed, different timings" true (h1 <> h3)

let suite =
  [
    Alcotest.test_case "read your writes across transactions" `Quick
      test_read_your_writes;
    Alcotest.test_case "read your writes within a transaction" `Quick
      test_read_your_writes_within_txn;
    Alcotest.test_case "monotonic reads" `Quick test_monotonic_reads_across_txns;
    Alcotest.test_case "banking anomaly impossible (§1)" `Quick
      test_causality_banking_anomaly;
    Alcotest.test_case "atomic visibility" `Quick test_atomic_visibility;
    Alcotest.test_case "uniform barrier makes writes durable" `Quick
      test_uniform_barrier_durability;
    Alcotest.test_case "client migration keeps the session" `Quick
      test_client_migration;
    Alcotest.test_case "concurrent counter updates merge (§3)" `Quick
      test_counter_concurrent_merge;
    Alcotest.test_case "remote transactions visible when uniform" `Quick
      test_remote_visibility_needs_uniformity;
    Alcotest.test_case "histories are deterministic per seed" `Quick
      test_deterministic_histories;
  ]
