(* Network substrate: latency, FIFO channels, CPU serialization, DC
   failures. *)

let mk ?(jitter = 0) () =
  let eng = Sim.Engine.create () in
  let topo =
    Net.Topology.create ~intra_dc_us:100 ~jitter_us:jitter
      [| Net.Topology.Virginia; Net.Topology.California; Net.Topology.Frankfurt |]
  in
  (eng, Net.Network.create eng topo)

let test_latency () =
  let eng, net = mk () in
  let got = ref (-1) in
  let a = Net.Network.register net ~dc:0 ~cost:(fun _ -> 0) (fun _ -> ()) in
  let b =
    Net.Network.register net ~dc:1
      ~cost:(fun _ -> 0)
      (fun (_ : int) -> got := Sim.Engine.now eng)
  in
  Net.Network.send net ~src:a ~dst:b 1;
  Sim.Engine.run eng;
  (* Virginia–California RTT is 61 ms, one way 30.5 ms *)
  Alcotest.(check int) "one-way latency" 30_500 !got

let test_intra_dc_latency () =
  let eng, net = mk () in
  let got = ref (-1) in
  let a = Net.Network.register net ~dc:0 ~cost:(fun _ -> 0) (fun _ -> ()) in
  let b =
    Net.Network.register net ~dc:0
      ~cost:(fun _ -> 0)
      (fun (_ : int) -> got := Sim.Engine.now eng)
  in
  Net.Network.send net ~src:a ~dst:b 1;
  Sim.Engine.run eng;
  Alcotest.(check int) "intra-DC latency" 100 !got

let test_fifo_order () =
  let eng, net = mk ~jitter:5_000 () in
  let received = ref [] in
  let a = Net.Network.register net ~dc:0 ~cost:(fun _ -> 0) (fun _ -> ()) in
  let b =
    Net.Network.register net ~dc:1
      ~cost:(fun _ -> 0)
      (fun m -> received := m :: !received)
  in
  for i = 1 to 50 do
    Net.Network.send net ~src:a ~dst:b i
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int))
    "messages delivered in send order despite jitter"
    (List.init 50 (fun i -> i + 1))
    (List.rev !received)

let test_cpu_serialization () =
  let eng, net = mk () in
  let times = ref [] in
  let a = Net.Network.register net ~dc:0 ~cost:(fun _ -> 0) (fun _ -> ()) in
  let b =
    Net.Network.register net ~dc:0
      ~cost:(fun _ -> 1_000)
      (fun (_ : int) -> times := Sim.Engine.now eng :: !times)
  in
  (* three messages arrive together; each costs 1 ms of CPU, so handlers
     complete 1 ms apart *)
  for _ = 1 to 3 do
    Net.Network.send net ~src:a ~dst:b 0
  done;
  Sim.Engine.run eng;
  (match List.rev !times with
  | [ t1; t2; t3 ] ->
      Alcotest.(check int) "first after service" 1_100 t1;
      Alcotest.(check int) "second queued" 2_100 t2;
      Alcotest.(check int) "third queued" 3_100 t3
  | _ -> Alcotest.fail "expected three deliveries");
  Alcotest.(check int) "busy time accounted" 3_000 (Net.Network.node_busy_us net b);
  Alcotest.(check int) "processed count" 3 (Net.Network.node_processed net b)

let test_send_self_no_latency () =
  let eng, net = mk () in
  let got = ref (-1) in
  let rec_addr = ref (-1) in
  let a =
    Net.Network.register net ~dc:0
      ~cost:(fun _ -> 42)
      (fun (_ : int) -> got := Sim.Engine.now eng)
  in
  rec_addr := a;
  Net.Network.send_self net ~node:a 0;
  Sim.Engine.run eng;
  Alcotest.(check int) "only service time, no network" 42 !got

let test_failed_dc_drops () =
  let eng, net = mk () in
  let received = ref 0 in
  let a = Net.Network.register net ~dc:0 ~cost:(fun _ -> 0) (fun _ -> ()) in
  let b =
    Net.Network.register net ~dc:1 ~cost:(fun _ -> 0) (fun (_ : int) -> incr received)
  in
  Net.Network.send net ~src:a ~dst:b 0;
  Sim.Engine.run eng;
  Net.Network.fail_dc net 1;
  Alcotest.(check bool) "marked failed" true (Net.Network.dc_failed net 1);
  Net.Network.send net ~src:a ~dst:b 0;
  Net.Network.send net ~src:b ~dst:a 0;
  Sim.Engine.run eng;
  Alcotest.(check int) "no delivery to or from a failed DC" 1 !received;
  Alcotest.(check int) "drops counted" 2 (Net.Network.messages_dropped net)

let test_inflight_to_failed_dc_dropped () =
  let eng, net = mk () in
  let received = ref 0 in
  let a = Net.Network.register net ~dc:0 ~cost:(fun _ -> 0) (fun _ -> ()) in
  let b =
    Net.Network.register net ~dc:1 ~cost:(fun _ -> 0) (fun (_ : int) -> incr received)
  in
  Net.Network.send net ~src:a ~dst:b 0;
  (* the DC fails while the message is still in flight *)
  Sim.Engine.schedule eng ~delay:1_000 (fun () -> Net.Network.fail_dc net 1);
  Sim.Engine.run eng;
  Alcotest.(check int) "in-flight message dropped" 0 !received

let test_topology_paper_rtts () =
  let topo = Net.Topology.five_dcs () in
  (* §8: RTT between regions ranges from 26 ms to 202 ms *)
  let max_rtt = ref 0 and min_rtt = ref max_int in
  for i = 0 to 4 do
    for j = 0 to 4 do
      if i <> j then begin
        let rtt =
          Net.Topology.one_way topo ~src:i ~dst:j
          + Net.Topology.one_way topo ~src:j ~dst:i
        in
        if rtt > !max_rtt then max_rtt := rtt;
        if rtt < !min_rtt then min_rtt := rtt
      end
    done
  done;
  Alcotest.(check int) "min RTT 26ms" 26_000 !min_rtt;
  Alcotest.(check int) "max RTT 202ms" 202_000 !max_rtt;
  (* Virginia–California: 61 ms, the latency that dominates strong
     transactions in §8.1 *)
  Alcotest.(check int) "Va-Ca RTT" 61_000
    (Net.Topology.one_way topo ~src:0 ~dst:1
    + Net.Topology.one_way topo ~src:1 ~dst:0)

let test_topology_growth_order () =
  (* §8.3 grows the deployment: 3 DCs, then Ireland, then Brazil *)
  let t4 = Net.Topology.n_dcs 4 in
  Alcotest.(check string) "fourth DC is Ireland" "ireland"
    (Net.Topology.region_of_dc t4 3);
  let t5 = Net.Topology.n_dcs 5 in
  Alcotest.(check string) "fifth DC is Brazil" "brazil"
    (Net.Topology.region_of_dc t5 4)

let suite =
  [
    Alcotest.test_case "WAN latency from the topology" `Quick test_latency;
    Alcotest.test_case "intra-DC latency" `Quick test_intra_dc_latency;
    Alcotest.test_case "channels are FIFO under jitter" `Quick test_fifo_order;
    Alcotest.test_case "node CPU serializes processing" `Quick
      test_cpu_serialization;
    Alcotest.test_case "self-send skips the network" `Quick
      test_send_self_no_latency;
    Alcotest.test_case "failed DC sends and receives nothing" `Quick
      test_failed_dc_drops;
    Alcotest.test_case "in-flight messages to a failed DC drop" `Quick
      test_inflight_to_failed_dc_dropped;
    Alcotest.test_case "topology matches the paper's RTTs" `Quick
      test_topology_paper_rtts;
    Alcotest.test_case "deployment growth order (§8.3)" `Quick
      test_topology_growth_order;
  ]
