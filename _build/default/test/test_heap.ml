(* Event-queue heap: ordering, tie-breaking, growth. *)

let check = Alcotest.(check int)

let test_empty () =
  let h = Sim.Heap.create 0 in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Sim.Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Sim.Heap.peek h = None)

let test_ordering () =
  let h = Sim.Heap.create 0 in
  List.iteri
    (fun i t -> Sim.Heap.push h ~time:t ~seq:i i)
    [ 5; 3; 9; 1; 7; 3; 0 ];
  let order = ref [] in
  let rec drain () =
    match Sim.Heap.pop h with
    | None -> ()
    | Some e ->
        order := e.Sim.Heap.time :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3; 3; 5; 7; 9 ] (List.rev !order)

let test_fifo_ties () =
  let h = Sim.Heap.create (-1) in
  for i = 0 to 9 do
    Sim.Heap.push h ~time:42 ~seq:i i
  done;
  for i = 0 to 9 do
    match Sim.Heap.pop h with
    | Some e -> check (Fmt.str "tie %d" i) i e.Sim.Heap.value
    | None -> Alcotest.fail "heap exhausted early"
  done

let test_growth () =
  let h = Sim.Heap.create 0 in
  let n = 10_000 in
  for i = n downto 1 do
    Sim.Heap.push h ~time:i ~seq:i i
  done;
  check "size" n (Sim.Heap.size h);
  let prev = ref 0 in
  let rec drain () =
    match Sim.Heap.pop h with
    | None -> ()
    | Some e ->
        Alcotest.(check bool) "monotone" true (e.Sim.Heap.time > !prev);
        prev := e.Sim.Heap.time;
        drain ()
  in
  drain ();
  check "drained" 0 (Sim.Heap.size h)

let test_clear () =
  let h = Sim.Heap.create 0 in
  for i = 1 to 100 do
    Sim.Heap.push h ~time:i ~seq:i i
  done;
  Sim.Heap.clear h;
  check "cleared" 0 (Sim.Heap.size h);
  Alcotest.(check bool) "pop after clear" true (Sim.Heap.pop h = None)

let test_interleaved () =
  let h = Sim.Heap.create 0 in
  Sim.Heap.push h ~time:10 ~seq:0 10;
  Sim.Heap.push h ~time:5 ~seq:1 5;
  (match Sim.Heap.pop h with
  | Some e -> check "first" 5 e.Sim.Heap.value
  | None -> Alcotest.fail "empty");
  Sim.Heap.push h ~time:1 ~seq:2 1;
  (match Sim.Heap.pop h with
  | Some e -> check "second" 1 e.Sim.Heap.value
  | None -> Alcotest.fail "empty");
  match Sim.Heap.pop h with
  | Some e -> check "third" 10 e.Sim.Heap.value
  | None -> Alcotest.fail "empty"

let qcheck_heapsort =
  QCheck.Test.make ~name:"heap pops form a sorted permutation" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Sim.Heap.create 0 in
      List.iteri (fun i t -> Sim.Heap.push h ~time:t ~seq:i t) times;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some e -> drain (e.Sim.Heap.time :: acc)
      in
      drain [] = List.sort compare times)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pops in time order" `Quick test_ordering;
    Alcotest.test_case "ties break by sequence" `Quick test_fifo_ties;
    Alcotest.test_case "grows past initial capacity" `Quick test_growth;
    Alcotest.test_case "clear empties the heap" `Quick test_clear;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest qcheck_heapsort;
  ]
