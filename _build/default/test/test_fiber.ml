(* Cooperative fibers and ivars over the simulation engine. *)

module Fiber = Sim.Fiber
module Ivar = Sim.Fiber.Ivar

let test_sleep () =
  let eng = Sim.Engine.create () in
  let woke = ref (-1) in
  Fiber.spawn eng (fun () ->
      Fiber.sleep 1234;
      woke := Sim.Engine.now eng);
  Sim.Engine.run eng;
  Alcotest.(check int) "woke at the right instant" 1234 !woke

let test_await_filled_later () =
  let eng = Sim.Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  Fiber.spawn eng (fun () -> got := Fiber.await iv);
  Sim.Engine.schedule eng ~delay:100 (fun () -> Ivar.fill eng iv 99);
  Sim.Engine.run eng;
  Alcotest.(check int) "received the value" 99 !got

let test_await_already_filled () =
  let eng = Sim.Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill eng iv 7;
  let got = ref 0 in
  Fiber.spawn eng (fun () -> got := Fiber.await iv);
  Sim.Engine.run eng;
  Alcotest.(check int) "immediate value" 7 !got

let test_multiple_waiters () =
  let eng = Sim.Engine.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 5 do
    Fiber.spawn eng (fun () -> sum := !sum + Fiber.await iv)
  done;
  Sim.Engine.schedule eng ~delay:10 (fun () -> Ivar.fill eng iv 3);
  Sim.Engine.run eng;
  Alcotest.(check int) "all waiters woke" 15 !sum

let test_double_fill_raises () =
  let eng = Sim.Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill eng iv 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Ivar.fill eng iv 2)

let test_peek_is_filled () =
  let eng = Sim.Engine.create () in
  let iv = Ivar.create () in
  Alcotest.(check bool) "unfilled" false (Ivar.is_filled iv);
  Alcotest.(check (option int)) "no peek" None (Ivar.peek iv);
  Ivar.fill eng iv 5;
  Alcotest.(check bool) "filled" true (Ivar.is_filled iv);
  Alcotest.(check (option int)) "peek" (Some 5) (Ivar.peek iv)

let test_ping_pong () =
  let eng = Sim.Engine.create () in
  let a = ref (Ivar.create ()) and b = ref (Ivar.create ()) in
  let log = ref [] in
  Fiber.spawn eng (fun () ->
      for i = 1 to 3 do
        let x = Fiber.await !a in
        log := ("pong " ^ string_of_int x) :: !log;
        let next = Ivar.create () in
        let cur_b = !b in
        b := Ivar.create ();
        let fresh_b = !b in
        ignore next;
        Ivar.fill eng cur_b i;
        ignore fresh_b
      done);
  Fiber.spawn eng (fun () ->
      for i = 1 to 3 do
        Fiber.sleep 10;
        let cur_a = !a in
        a := Ivar.create ();
        Ivar.fill eng cur_a i;
        let x = Fiber.await !b in
        log := ("ping got " ^ string_of_int x) :: !log
      done);
  Sim.Engine.run eng;
  Alcotest.(check int) "six exchanges" 6 (List.length !log)

let test_sequential_composition () =
  (* a fiber that awaits several ivars in sequence keeps direct style *)
  let eng = Sim.Engine.create () in
  let ivs = List.init 5 (fun _ -> Ivar.create ()) in
  let order = ref [] in
  Fiber.spawn eng (fun () ->
      List.iteri (fun i iv -> order := (i, Fiber.await iv) :: !order) ivs);
  List.iteri
    (fun i iv ->
      Sim.Engine.schedule eng ~delay:((5 - i) * 10) (fun () ->
          Ivar.fill eng iv (i * 2)))
    ivs;
  Sim.Engine.run eng;
  (* fills arrive in reverse time order, but the fiber consumes in list
     order, resuming only when the next ivar it awaits is filled *)
  Alcotest.(check (list (pair int int)))
    "sequence respected"
    [ (0, 0); (1, 2); (2, 4); (3, 6); (4, 8) ]
    (List.rev !order)

let test_await_all () =
  let eng = Sim.Engine.create () in
  let ivs = List.init 4 (fun _ -> Ivar.create ()) in
  let got = ref [] in
  Fiber.spawn eng (fun () -> got := Fiber.await_all ivs);
  List.iteri
    (fun i iv ->
      Sim.Engine.schedule eng ~delay:(10 * (i + 1)) (fun () ->
          Ivar.fill eng iv i))
    ivs;
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "values in list order" [ 0; 1; 2; 3 ] !got

let test_exception_propagates () =
  let eng = Sim.Engine.create () in
  Fiber.spawn eng (fun () -> failwith "boom");
  Alcotest.check_raises "fiber exception surfaces" (Failure "boom")
    (fun () -> Sim.Engine.run eng)

let test_spawn_inside_fiber () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Fiber.spawn eng (fun () ->
      log := "outer" :: !log;
      Fiber.spawn eng (fun () ->
          Fiber.sleep 5;
          log := "inner" :: !log);
      Fiber.sleep 10;
      log := "outer-done" :: !log);
  Sim.Engine.run eng;
  Alcotest.(check (list string))
    "nested spawn interleaves"
    [ "outer"; "inner"; "outer-done" ]
    (List.rev !log)

let suite =
  [
    Alcotest.test_case "sleep wakes at the right time" `Quick test_sleep;
    Alcotest.test_case "await blocks until fill" `Quick test_await_filled_later;
    Alcotest.test_case "await on a filled ivar" `Quick
      test_await_already_filled;
    Alcotest.test_case "multiple waiters all wake" `Quick test_multiple_waiters;
    Alcotest.test_case "double fill rejected" `Quick test_double_fill_raises;
    Alcotest.test_case "peek and is_filled" `Quick test_peek_is_filled;
    Alcotest.test_case "two fibers exchange messages" `Quick test_ping_pong;
    Alcotest.test_case "sequential awaits stay ordered" `Quick
      test_sequential_composition;
    Alcotest.test_case "await_all returns in list order" `Quick test_await_all;
    Alcotest.test_case "exceptions propagate out of fibers" `Quick
      test_exception_propagates;
    Alcotest.test_case "fibers can spawn fibers" `Quick test_spawn_inside_fiber;
  ]
