(* Key space: partitioning and packed table/field/row keys. *)

let test_partition_modulo () =
  Alcotest.(check int) "mod" 3 (Store.Keyspace.partition ~partitions:8 11);
  Alcotest.(check int) "zero" 0 (Store.Keyspace.partition ~partitions:8 16)

let test_key_on () =
  for p = 0 to 7 do
    for k = 0 to 20 do
      let key = Store.Keyspace.key_on ~partitions:8 ~p k in
      Alcotest.(check int)
        (Fmt.str "key %d lands on partition %d" key p)
        p
        (Store.Keyspace.partition ~partitions:8 key)
    done
  done

let test_pack_roundtrip () =
  let key = Store.Keyspace.make ~table:7 ~field:3 ~row:123456 in
  Alcotest.(check int) "table" 7 (Store.Keyspace.table_of key);
  Alcotest.(check int) "field" 3 (Store.Keyspace.field_of key);
  Alcotest.(check int) "row" 123456 (Store.Keyspace.row_of key)

let test_pack_distinct () =
  let keys =
    List.concat_map
      (fun table ->
        List.concat_map
          (fun field ->
            List.map
              (fun row -> Store.Keyspace.make ~table ~field ~row)
              [ 0; 1; 77 ])
          [ 0; 5 ])
      [ 1; 2 ]
  in
  Alcotest.(check int) "all distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_pack_bounds () =
  Alcotest.(check bool) "table too large" true
    (try
       ignore (Store.Keyspace.make ~table:Store.Keyspace.max_tables ~field:0 ~row:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative row" true
    (try
       ignore (Store.Keyspace.make ~table:0 ~field:0 ~row:(-1));
       false
     with Invalid_argument _ -> true)

let test_balanced_placement () =
  (* regression: packed keys must spread across partitions by row; field
     and table must not bias placement (a field-0 hotspot once put every
     RUBiS base row on partition 0) *)
  let partitions = 16 in
  let counts = Array.make partitions 0 in
  for row = 0 to 4_000 do
    List.iter
      (fun (table, field) ->
        let key = Store.Keyspace.make ~table ~field ~row in
        let p = Store.Keyspace.partition ~partitions key in
        counts.(p) <- counts.(p) + 1)
      [ (1, 0); (2, 0); (2, 2); (7, 0) ]
  done;
  let total = Array.fold_left ( + ) 0 counts in
  let expected = float_of_int total /. float_of_int partitions in
  Array.iteri
    (fun p c ->
      let ratio = float_of_int c /. expected in
      Alcotest.(check bool)
        (Fmt.str "partition %d within 2x of fair share (%.2f)" p ratio)
        true
        (ratio > 0.5 && ratio < 2.0))
    counts

let qcheck_pack_roundtrip =
  QCheck.Test.make ~name:"pack/unpack roundtrip" ~count:500
    QCheck.(triple (int_bound 15) (int_bound 15) (int_bound 1_000_000))
    (fun (table, field, row) ->
      let key = Store.Keyspace.make ~table ~field ~row in
      Store.Keyspace.table_of key = table
      && Store.Keyspace.field_of key = field
      && Store.Keyspace.row_of key = row)

let suite =
  [
    Alcotest.test_case "modulo partitioning" `Quick test_partition_modulo;
    Alcotest.test_case "key_on targets a partition" `Quick test_key_on;
    Alcotest.test_case "pack/unpack roundtrip" `Quick test_pack_roundtrip;
    Alcotest.test_case "packed keys distinct" `Quick test_pack_distinct;
    Alcotest.test_case "pack bounds checked" `Quick test_pack_bounds;
    Alcotest.test_case "packed keys balance across partitions" `Quick
      test_balanced_placement;
    QCheck_alcotest.to_alcotest qcheck_pack_roundtrip;
  ]
