(* History/measurement bookkeeping. *)

module U = Unistore
module Vc = Vclock.Vc

let record ?(strong = false) ?(label = "t") ?(client = 0) ?(dc = 0) n =
  {
    U.History.h_tid = { U.Types.cl = client; sq = n };
    h_client = client;
    h_dc = dc;
    h_strong = strong;
    h_label = label;
    h_snap = Vc.create ~dcs:3;
    h_vec = Vc.create ~dcs:3;
    h_lc = n;
    h_reads = [];
    h_writes = [];
    h_ops = [];
    h_start_us = 0;
    h_commit_us = n;
  }

let test_counts () =
  let h = U.History.create () in
  U.History.set_clock h (fun () -> 0);
  U.History.committed h ~record:(record 1) ~latency_us:1000;
  U.History.committed h ~record:(record ~strong:true 2) ~latency_us:50_000;
  U.History.aborted h;
  Alcotest.(check int) "causal" 1 (U.History.committed_causal h);
  Alcotest.(check int) "strong" 1 (U.History.committed_strong h);
  Alcotest.(check int) "total" 2 (U.History.committed_total h);
  Alcotest.(check int) "aborts" 1 (U.History.aborted_strong h);
  Alcotest.(check (float 0.001)) "abort rate" 0.5 (U.History.abort_rate h)

let test_window_filters_samples () =
  let now = ref 0 in
  let h = U.History.create () in
  U.History.set_clock h (fun () -> !now);
  U.History.set_window h ~start:100 ~stop:200;
  now := 50;
  U.History.committed h ~record:(record 1) ~latency_us:10;
  now := 150;
  U.History.committed h ~record:(record 2) ~latency_us:20;
  now := 250;
  U.History.committed h ~record:(record 3) ~latency_us:30;
  Alcotest.(check int) "only the in-window latency sampled" 1
    (Sim.Stats.count (U.History.latency_all h));
  Alcotest.(check (option int)) "window commits" (Some 1)
    (U.History.window_commits h);
  (* counts are unconditional *)
  Alcotest.(check int) "all commits counted" 3 (U.History.committed_total h)

let test_labels () =
  let h = U.History.create () in
  U.History.set_clock h (fun () -> 0);
  U.History.committed h ~record:(record ~label:"storeBid" 1) ~latency_us:10;
  U.History.committed h ~record:(record ~label:"viewItem" 2) ~latency_us:20;
  U.History.committed h ~record:(record ~label:"viewItem" 3) ~latency_us:30;
  Alcotest.(check (list string)) "labels sorted" [ "storeBid"; "viewItem" ]
    (U.History.labels h);
  match U.History.latency_by_label h "viewItem" with
  | Some s -> Alcotest.(check int) "two samples" 2 (Sim.Stats.count s)
  | None -> Alcotest.fail "label missing"

let test_record_full () =
  let h = U.History.create ~record_full:true () in
  U.History.set_clock h (fun () -> 0);
  U.History.committed h ~record:(record 1) ~latency_us:10;
  U.History.committed h ~record:(record 2) ~latency_us:10;
  let txns = U.History.txns h in
  Alcotest.(check int) "both recorded" 2 (List.length txns);
  Alcotest.(check int) "commit order preserved" 1
    (List.hd txns).U.History.h_tid.U.Types.sq

let test_visibility_samples () =
  let h = U.History.create () in
  U.History.visibility_delay h ~observer:0 ~origin:1 ~delay_us:5_000;
  U.History.visibility_delay h ~observer:0 ~origin:1 ~delay_us:7_000;
  (match U.History.visibility_samples h ~observer:0 ~origin:1 with
  | Some s ->
      Alcotest.(check int) "two samples" 2 (Sim.Stats.count s);
      Alcotest.(check (float 0.01)) "mean" 6_000.0 (Sim.Stats.mean s)
  | None -> Alcotest.fail "missing samples");
  Alcotest.(check bool) "other pair empty" true
    (U.History.visibility_samples h ~observer:1 ~origin:0 = None)

let suite =
  [
    Alcotest.test_case "commit and abort counters" `Quick test_counts;
    Alcotest.test_case "measurement window filters samples" `Quick
      test_window_filters_samples;
    Alcotest.test_case "per-label latencies" `Quick test_labels;
    Alcotest.test_case "full recording preserves order" `Quick
      test_record_full;
    Alcotest.test_case "visibility delay samples" `Quick
      test_visibility_samples;
  ]
