(* Fault tolerance: the paper's Figure 1 and Figure 2 scenarios, Paxos
   leader recovery, and liveness after a data-center failure. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

(* Figure 1: transaction forwarding preserves Eventual Visibility.
   t1 commits at d1 and reaches only d2 before d1 fails; d2 must forward
   t1 so it eventually becomes visible at d3. *)
let test_fig1_forwarding () =
  let sys = Util.make_system () in
  let d1 = 1 (* California *) and d3 = 2 (* Frankfurt *) in
  U.System.preload sys 100 (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:d1 (fun c ->
         Client.start c;
         Client.update c 100 (Crdt.Reg_write 77);
         ignore (Client.commit c)));
  (* Ca→Va is 30.5 ms one way and Ca→Fra 72.5 ms: failing California at
     45 ms lets Virginia receive t1 while Frankfurt never does directly *)
  Sim.Engine.schedule (U.System.engine sys) ~delay:45_000 (fun () ->
      U.System.fail_dc sys d1);
  let seen = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:d3 (fun c ->
         Fiber.sleep 5_000_000;
         Client.start c;
         seen := Client.read_int c 100;
         ignore (Client.commit c)));
  Util.run sys ~until:8_000_000;
  Alcotest.(check int) "t1 forwarded to Frankfurt despite d1's crash" 77 !seen;
  Util.assert_convergence sys

(* Control for Figure 1: the replication window. If the origin fails
   before replicating anywhere, the transaction is lost — causal
   transactions are not durable until uniform (§4). *)
let test_fig1_lost_when_unreplicated () =
  let sys = Util.make_system () in
  U.System.preload sys 100 (Crdt.Reg_write 0);
  let committed = ref false in
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         Client.start c;
         Client.update c 100 (Crdt.Reg_write 77);
         ignore (Client.commit c);
         committed := true));
  (* fail California before the 5 ms propagation timer can run *)
  Sim.Engine.schedule (U.System.engine sys) ~delay:2_000 (fun () ->
      U.System.fail_dc sys 1);
  let seen = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Fiber.sleep 3_000_000;
         Client.start c;
         seen := Client.read_int c 100;
         ignore (Client.commit c)));
  Util.run sys ~until:5_000_000;
  Alcotest.(check bool) "client saw its commit" true !committed;
  Alcotest.(check int) "unreplicated causal transaction lost" 0 !seen;
  Util.assert_convergence sys

(* Figure 2: a strong transaction only commits once its causal
   dependencies are uniform, so conflicting strong transactions stay
   live even if the origin DC fails right after the strong commit. *)
let test_fig2_strong_liveness () =
  let sys = Util.make_system ~partitions:4 () in
  let k_dep = 200 and k_strong = 201 in
  U.System.preload sys k_dep (Crdt.Reg_write 0);
  U.System.preload sys k_strong (Crdt.Reg_write 0);
  let t2_committed = ref false in
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         (* t1: causal transaction *)
         Client.start c;
         Client.update c k_dep (Crdt.Reg_write 1);
         ignore (Client.commit c);
         (* t2: strong transaction depending on t1 *)
         Client.start c ~strong:true;
         ignore (Client.read_int c k_dep);
         Client.update c k_strong (Crdt.Reg_write 2);
         (match Client.commit c with
         | `Committed _ ->
             t2_committed := true;
             (* the origin fails right after the strong commit returns *)
             U.System.fail_dc sys 1
         | `Aborted -> ())));
  (* t3 at Frankfurt conflicts with t2; it must eventually commit *)
  let t3_committed = ref false and t3_read = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Fiber.sleep 3_000_000;
         let rec attempt n =
           Client.start c ~strong:true;
           t3_read := Client.read_int c k_strong;
           Client.update c k_strong (Crdt.Reg_write 3);
           match Client.commit c with
           | `Committed _ -> t3_committed := true
           | `Aborted ->
               if n < 30 then begin
                 Fiber.sleep 200_000;
                 attempt (n + 1)
               end
         in
         attempt 0));
  Util.run sys ~until:15_000_000;
  Alcotest.(check bool) "t2 committed" true !t2_committed;
  Alcotest.(check bool) "t3 commits after the failure (liveness)" true
    !t3_committed;
  Alcotest.(check int) "t3 observed t2 (conflict ordering)" 2 !t3_read;
  Util.assert_convergence sys

(* Leader failure: the Paxos groups elect a new leader and strong
   transactions keep committing. *)
let test_leader_recovery () =
  let sys = Util.make_system ~partitions:4 () in
  U.System.preload sys 300 (Crdt.Reg_write 0);
  let before = ref 0 and after = ref 0 in
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         (* commit strong transactions, then keep going after the leader
            DC (Virginia, dc 0) fails *)
         for _ = 1 to 3 do
           Client.start c ~strong:true;
           let v = Client.read_int c 300 in
           Client.update c 300 (Crdt.Reg_write (v + 1));
           match Client.commit c with
           | `Committed _ -> incr before
           | `Aborted -> ()
         done;
         Fiber.sleep 1_000_000;
         (* Virginia fails here (scheduled below) *)
         Fiber.sleep 4_000_000;
         let rec attempts n =
           if n > 0 then begin
             Client.start c ~strong:true;
             let v = Client.read_int c 300 in
             Client.update c 300 (Crdt.Reg_write (v + 1));
             (match Client.commit c with
             | `Committed _ -> incr after
             | `Aborted -> ());
             attempts (n - 1)
           end
         in
         attempts 3));
  Sim.Engine.schedule (U.System.engine sys) ~delay:1_500_000 (fun () ->
      U.System.fail_dc sys 0);
  Util.run sys ~until:20_000_000;
  Alcotest.(check int) "strong commits before the failure" 3 !before;
  Alcotest.(check bool)
    (Fmt.str "strong commits after leader failover (%d)" !after)
    true (!after >= 2);
  Util.assert_convergence sys

(* Causal transactions stay available during a remote DC failure: the
   paper's availability claim — no WAN coordination on the critical
   path. *)
let test_causal_availability_under_failure () =
  let sys = Util.make_system () in
  U.System.fail_dc sys 2;
  let commits = ref 0 in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         for i = 1 to 50 do
           Client.start c;
           Client.update c (400 + (i mod 5)) (Crdt.Reg_write i);
           match Client.commit c with
           | `Committed _ -> incr commits
           | `Aborted -> ()
         done));
  Util.run sys ~until:5_000_000;
  Alcotest.(check int) "all causal transactions committed" 50 !commits;
  Util.assert_convergence sys

(* Strong transactions also survive a non-leader DC failure: the quorum
   of f+1 = 2 (Virginia + Frankfurt) still certifies. *)
let test_strong_availability_non_leader_failure () =
  let sys = Util.make_system ~partitions:4 () in
  U.System.preload sys 500 (Crdt.Reg_write 0);
  Sim.Engine.schedule (U.System.engine sys) ~delay:500_000 (fun () ->
      U.System.fail_dc sys 1);
  let commits = ref 0 in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Fiber.sleep 2_000_000;
         for _ = 1 to 5 do
           Client.start c ~strong:true;
           let v = Client.read_int c 500 in
           Client.update c 500 (Crdt.Reg_write (v + 1));
           match Client.commit c with
           | `Committed _ -> incr commits
           | `Aborted -> ()
         done));
  Util.run sys ~until:10_000_000;
  Alcotest.(check int) "strong commits with 2 of 3 DCs" 5 !commits;
  Util.assert_convergence sys

let suite =
  [
    Alcotest.test_case "Fig. 1: forwarding after origin failure" `Slow
      test_fig1_forwarding;
    Alcotest.test_case "Fig. 1 control: unreplicated txn is lost" `Quick
      test_fig1_lost_when_unreplicated;
    Alcotest.test_case "Fig. 2: strong commit waits for uniformity" `Slow
      test_fig2_strong_liveness;
    Alcotest.test_case "Paxos leader recovery" `Slow test_leader_recovery;
    Alcotest.test_case "causal availability under remote failure" `Quick
      test_causal_availability_under_failure;
    Alcotest.test_case "strong txns survive a non-leader failure" `Slow
      test_strong_availability_non_leader_failure;
  ]
