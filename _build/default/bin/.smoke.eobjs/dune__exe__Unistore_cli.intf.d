bin/unistore_cli.mli:
