bin/smoke.ml: Crdt Fmt List Sim Unistore Vclock
