bin/smoke.mli:
