bin/probe_utilization.mli:
