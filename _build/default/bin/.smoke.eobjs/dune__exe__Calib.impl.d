bin/calib.ml: Fmt Net Sim Unistore Unix Workload
