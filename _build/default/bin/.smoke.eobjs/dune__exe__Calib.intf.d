bin/calib.mli:
