bin/unistore_cli.ml: Arg Cmd Cmdliner Crdt Fmt List Net Sim Term Unistore Workload
