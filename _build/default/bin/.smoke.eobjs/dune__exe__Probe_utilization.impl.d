bin/probe_utilization.ml: Fmt Net Unistore Workload
