(* Calibration driver: small sweeps used while developing the bench
   harness; prints throughput and latency for a given mode. *)

module U = Unistore

let run ~mode ~clients ~partitions ~strong_ratio ~dur_us =
  let topo = Net.Topology.three_dcs () in
  let cfg = U.Config.default ~topo ~partitions ~mode () in
  let sys = U.System.create cfg in
  let spec =
    { (Workload.Micro.default_spec ~partitions) with strong_ratio }
  in
  let warmup = 500_000 in
  U.System.set_window sys ~start:warmup ~stop:(warmup + dur_us);
  let stop () = U.System.now sys >= warmup + dur_us in
  let dcs = Net.Topology.dcs topo in
  for i = 0 to clients - 1 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod dcs) (fun c ->
           Workload.Micro.client_body spec ~stop c))
  done;
  U.System.run sys ~until:(warmup + dur_us + 100_000);
  let h = U.System.history sys in
  let thr = match U.History.throughput h with Some x -> x | None -> 0.0 in
  let lat s =
    if Sim.Stats.count s = 0 then 0.0 else Sim.Stats.mean s /. 1000.0
  in
  Fmt.pr
    "%-10s clients=%4d parts=%2d strong=%.2f  thr=%8.0f tx/s  lat(all)=%6.2fms  lat(causal)=%6.2fms lat(strong)=%7.2fms aborts=%.4f%% events=%d@."
    (U.Config.mode_name mode) clients partitions strong_ratio thr
    (lat (U.History.latency_all h))
    (lat (U.History.latency_causal h))
    (lat (U.History.latency_strong h))
    (100.0 *. U.History.abort_rate h)
    (Sim.Engine.executed_events (U.System.engine sys))

let () =
  let t0 = Unix.gettimeofday () in
  run ~mode:U.Config.Unistore ~clients:200 ~partitions:8 ~strong_ratio:0.1
    ~dur_us:1_000_000;
  Fmt.pr "wall: %.1fs@." (Unix.gettimeofday () -. t0);
  run ~mode:U.Config.Unistore ~clients:800 ~partitions:8 ~strong_ratio:0.1
    ~dur_us:1_000_000;
  Fmt.pr "wall: %.1fs@." (Unix.gettimeofday () -. t0);
  run ~mode:U.Config.Causal_only ~clients:800 ~partitions:8 ~strong_ratio:0.0
    ~dur_us:1_000_000;
  run ~mode:U.Config.Strong ~clients:800 ~partitions:8 ~strong_ratio:1.0
    ~dur_us:1_000_000;
  run ~mode:U.Config.Red_blue ~clients:800 ~partitions:8 ~strong_ratio:0.1
    ~dur_us:1_000_000;
  Fmt.pr "wall: %.1fs@." (Unix.gettimeofday () -. t0)
