(* Utilization probe: run a saturating STRONG-mode RUBiS load and print
   per-replica CPU utilization — the tool that exposed the partition-0
   placement hotspot (see Keyspace). Kept as a diagnosis aid. *)

module U = Unistore
let () =
  let topo = Net.Topology.three_dcs () in
  let cfg = U.Config.default ~topo ~partitions:16 ~mode:U.Config.Strong ~conflict:U.Config.Serializable () in
  let sys = U.System.create cfg in
  let spec = { Workload.Rubis.default_spec with think_time_us = 20_000 } in
  Workload.Rubis.populate sys spec;
  U.System.set_window sys ~start:400_000 ~stop:1_400_000;
  let stop () = U.System.now sys >= 1_400_000 in
  for i = 0 to 799 do
    ignore (U.System.spawn_client sys ~dc:(i mod 3) (fun c -> Workload.Rubis.client_body spec ~stop c))
  done;
  U.System.run sys ~until:1_450_000;
  let net = U.System.network sys in
  let h = U.System.history sys in
  Fmt.pr "thr=%.0f aborts=%.2f%%@."
    (match U.History.throughput h with Some t -> t | None -> 0.)
    (100. *. U.History.abort_rate h);
  for dc = 0 to 2 do
    Fmt.pr "dc%d utilization:" dc;
    for p = 0 to 15 do
      let r = U.System.replica sys ~dc ~part:p in
      Fmt.pr " %.2f" (Net.Network.node_utilization net (U.Replica.addr r))
    done;
    Fmt.pr "@."
  done
