(* Command-line driver: run a configurable workload against a simulated
   UniStore deployment and report throughput, latency and consistency.

     dune exec bin/unistore_cli.exe -- run --mode unistore --dcs 3 \
       --partitions 8 --clients 200 --duration 2 --strong-ratio 0.1
     dune exec bin/unistore_cli.exe -- check --seed 7
     dune exec bin/unistore_cli.exe -- failover *)

module U = Unistore

let mode_conv =
  let parse = function
    | "unistore" -> Ok U.Config.Unistore
    | "causal" -> Ok U.Config.Causal_only
    | "strong" -> Ok U.Config.Strong
    | "redblue" -> Ok U.Config.Red_blue
    | "cureft" -> Ok U.Config.Cure_ft
    | "uniform" -> Ok U.Config.Uniform_only
    | s -> Error (`Msg (Fmt.str "unknown mode %S" s))
  in
  let print ppf m = Fmt.string ppf (U.Config.mode_name m) in
  Cmdliner.Arg.conv (parse, print)

open Cmdliner

let mode_t =
  Arg.(value & opt mode_conv U.Config.Unistore & info [ "mode" ] ~doc:"System: unistore, causal, strong, redblue, cureft or uniform.")

let dcs_t =
  Arg.(value & opt int 3 & info [ "dcs" ] ~doc:"Data centers (3-5; paper regions in growth order).")

let partitions_t =
  Arg.(value & opt int 8 & info [ "partitions" ] ~doc:"Logical partitions per data center.")

let clients_t =
  Arg.(value & opt int 200 & info [ "clients" ] ~doc:"Closed-loop clients, spread round-robin across DCs.")

let duration_t =
  Arg.(value & opt float 2.0 & info [ "duration" ] ~doc:"Simulated seconds of measured load.")

let strong_t =
  Arg.(value & opt float 0.1 & info [ "strong-ratio" ] ~doc:"Fraction of strong transactions in the microbenchmark.")

let update_t =
  Arg.(value & opt float 1.0 & info [ "update-ratio" ] ~doc:"Fraction of update transactions.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.")

let rubis_t =
  Arg.(value & flag & info [ "rubis" ] ~doc:"Run the RUBiS bidding mix instead of the microbenchmark.")

let report sys =
  let h = U.System.history sys in
  let thr = match U.History.throughput h with Some t -> t | None -> 0.0 in
  let ms s = if Sim.Stats.count s = 0 then 0.0 else Sim.Stats.mean s /. 1000.0 in
  Fmt.pr "committed:  %d causal, %d strong (%d aborted, %.3f%%)@."
    (U.History.committed_causal h)
    (U.History.committed_strong h)
    (U.History.aborted_strong h)
    (100.0 *. U.History.abort_rate h);
  Fmt.pr "throughput: %.0f tx/s@." thr;
  Fmt.pr "latency:    all %.2f ms | causal %.2f ms | strong %.2f ms@."
    (ms (U.History.latency_all h))
    (ms (U.History.latency_causal h))
    (ms (U.History.latency_strong h));
  Fmt.pr "events:     %d simulated@."
    (Sim.Engine.executed_events (U.System.engine sys))

let run_cmd mode dcs partitions clients duration strong_ratio update_ratio
    seed rubis =
  let topo = Net.Topology.n_dcs dcs in
  let warmup = 400_000 in
  let window = int_of_float (duration *. 1_000_000.0) in
  let conflict =
    if rubis then
      match mode with
      | U.Config.Strong -> U.Config.Serializable
      | _ -> Workload.Rubis.conflict_spec
    else U.Config.Serializable
  in
  let cfg = U.Config.default ~topo ~partitions ~mode ~conflict ~seed () in
  let sys = U.System.create cfg in
  U.System.set_window sys ~start:warmup ~stop:(warmup + window);
  let stop () = U.System.now sys >= warmup + window in
  if rubis then begin
    let spec = { Workload.Rubis.default_spec with think_time_us = 20_000 } in
    Workload.Rubis.populate sys spec;
    for i = 0 to clients - 1 do
      ignore
        (U.System.spawn_client sys ~dc:(i mod dcs) (fun c ->
             Workload.Rubis.client_body spec ~stop c))
    done
  end
  else begin
    let spec =
      {
        (Workload.Micro.default_spec ~partitions) with
        strong_ratio;
        update_ratio;
      }
    in
    for i = 0 to clients - 1 do
      ignore
        (U.System.spawn_client sys ~dc:(i mod dcs) (fun c ->
             Workload.Micro.client_body spec ~stop c))
    done
  end;
  Fmt.pr "running %s: %d DCs x %d partitions, %d clients, %.1fs simulated@."
    (U.Config.mode_name mode) dcs partitions clients duration;
  U.System.run sys ~until:(warmup + window + 100_000);
  report sys

let check_cmd seed =
  (* a verified run: record the full history and check PoR consistency *)
  let topo = Net.Topology.three_dcs () in
  let cfg =
    U.Config.default ~topo ~partitions:4 ~seed ~record_history:true ()
  in
  let sys = U.System.create cfg in
  for k = 0 to 19 do
    U.System.preload sys k (Crdt.Reg_write 0)
  done;
  for i = 0 to 8 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 3) (fun c ->
           let rng = Sim.Rng.create (seed + i) in
           for _ = 1 to 30 do
             let strong = Sim.Rng.int rng 10 = 0 in
             let rec attempt n =
               U.Client.start c ~strong;
               for _ = 1 to 1 + Sim.Rng.int rng 3 do
                 let key = Sim.Rng.int rng 20 in
                 if Sim.Rng.bool rng then ignore (U.Client.read c key)
                 else U.Client.update c key (Crdt.Reg_write (Sim.Rng.int rng 100))
               done;
               match U.Client.commit c with
               | `Committed _ -> ()
               | `Aborted -> if n < 5 then attempt (n + 1)
             in
             attempt 0
           done))
  done;
  U.System.run sys ~until:20_000_000;
  let h = U.System.history sys in
  let result =
    U.Checker.check ~preloads:(U.History.preloads h) cfg (U.History.txns h)
  in
  Fmt.pr "%a@." U.Checker.pp_result result;
  (match U.System.check_convergence sys with
  | [] -> Fmt.pr "all data centers converged.@."
  | errs ->
      List.iter (Fmt.pr "divergence: %s@.") errs;
      exit 1);
  if not (U.Checker.ok result) then exit 1

let failover_cmd () =
  (* demonstrate liveness across a leader-DC failure *)
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:4 ()
  in
  let sys = U.System.create cfg in
  U.System.preload sys 1 (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         for i = 1 to 10 do
           let rec attempt n =
             U.Client.start c ~strong:true;
             let v = U.Client.read_int c 1 in
             U.Client.update c 1 (Crdt.Reg_write (v + 1));
             match U.Client.commit c with
             | `Committed _ ->
                 Fmt.pr "[%7d us] strong increment %d committed (value %d)@."
                   (U.System.now sys) i (v + 1)
             | `Aborted ->
                 if n < 20 then begin
                   Sim.Fiber.sleep 100_000;
                   attempt (n + 1)
                 end
           in
           attempt 0;
           Sim.Fiber.sleep 400_000
         done));
  Sim.Engine.schedule (U.System.engine sys) ~delay:1_700_000 (fun () ->
      Fmt.pr "[%7d us] *** leader data center (virginia) fails ***@."
        (U.System.now sys);
      U.System.fail_dc sys 0);
  U.System.run sys ~until:20_000_000;
  match U.System.check_convergence sys with
  | [] -> Fmt.pr "surviving data centers converged.@."
  | errs -> List.iter (Fmt.pr "divergence: %s@.") errs

let run_term =
  Term.(
    const run_cmd $ mode_t $ dcs_t $ partitions_t $ clients_t $ duration_t
    $ strong_t $ update_t $ seed_t $ rubis_t)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a workload and report performance.")
      run_term;
    Cmd.v
      (Cmd.info "check" ~doc:"Run a recorded workload and verify PoR consistency.")
      Term.(const check_cmd $ seed_t);
    Cmd.v
      (Cmd.info "failover" ~doc:"Demonstrate strong-transaction liveness across a leader DC failure.")
      Term.(const failover_cmd $ const ());
  ]

let () =
  let info =
    Cmd.info "unistore" ~version:"1.0"
      ~doc:"UniStore: fault-tolerant causal + strong consistency (simulated)"
  in
  exit (Cmd.eval (Cmd.group info cmds))
