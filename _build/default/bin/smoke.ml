(* Quick end-to-end smoke check used during development; superseded by the
   test suite but kept as a minimal driver example. *)

module U = Unistore

let () =
  let cfg = U.Config.default ~partitions:4 ~mode:U.Config.Unistore () in
  let sys = U.System.create cfg in
  let done_count = ref 0 in
  (* Client 0 in Virginia: write then read back (read your writes). *)
  let _ =
    U.System.spawn_client sys ~dc:0 (fun c ->
        U.Client.start c ~label:"writer";
        U.Client.update c 100 (Crdt.Reg_write 42);
        (match U.Client.commit c with
        | `Committed vec -> Fmt.pr "writer committed @ %a@." Vclock.Vc.pp vec
        | `Aborted -> Fmt.pr "writer aborted?!@.");
        U.Client.start c;
        let v = U.Client.read_int c 100 in
        Fmt.pr "writer reads back %d@." v;
        ignore (U.Client.commit c);
        assert (v = 42);
        (* strong transaction *)
        U.Client.start c ~strong:true ~label:"strong";
        let v = U.Client.read_int c 100 in
        U.Client.update c 100 (Crdt.Reg_write (v + 1));
        (match U.Client.commit c with
        | `Committed vec -> Fmt.pr "strong committed @ %a@." Vclock.Vc.pp vec
        | `Aborted -> Fmt.pr "strong aborted@.");
        incr done_count)
  in
  (* Client in Frankfurt: eventually sees the writes. *)
  let _ =
    U.System.spawn_client sys ~dc:2 (fun c ->
        Sim.Fiber.sleep 2_000_000;
        U.Client.start c;
        let v = U.Client.read_int c 100 in
        Fmt.pr "frankfurt reads %d at t=%dus@." v (U.System.now sys);
        ignore (U.Client.commit c);
        assert (v = 43);
        incr done_count)
  in
  U.System.run sys ~until:4_000_000;
  Fmt.pr "done: %d/2 clients finished; events=%d@." !done_count
    (Sim.Engine.executed_events (U.System.engine sys));
  let errs = U.System.check_convergence sys in
  List.iter (Fmt.pr "convergence error: %s@.") errs;
  assert (errs = []);
  assert (!done_count = 2);
  Fmt.pr "smoke OK@."
