(* Adversarial schedule explorer CLI.

     explore --trials N --seed S [--out DIR] [--horizon-us H]
     explore --replay FILE [--replay FILE ...]

   Exploration mode runs the swarm loop (lib/explore): each trial draws
   a fault-mix profile and a seed, runs a bounded scenario and checks
   the four always-on oracles. Novel trials (fresh coverage
   fingerprint) are written to DIR/corpus/<fingerprint>.json. Failing
   trials are delta-debugged to a minimal schedule and written to
   DIR/REPRO_<hash>.json with a replay command; the exit status is 1
   when any trial failed.

   Replay mode re-runs a corpus entry or repro document and prints the
   verdicts; exit 0 iff every oracle passes (a repro is expected to
   exit 1 — that is the reproduction).

   --plant-unsafe-ack (development / self-test) enables the WAL's
   planted ack-before-fsync bug so the pipeline can be demonstrated
   end to end. *)

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Sim.Json.of_string_opt s with
  | Some j -> j
  | None ->
      Fmt.epr "explore: %s is not valid JSON@." path;
      exit 2

let write_json path j =
  let oc = open_out path in
  output_string oc (Sim.Json.to_string_pretty j);
  output_char oc '\n';
  close_out oc

let rec mkdirs path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let replay_file path =
  let j = read_json path in
  match Explore.Explorer.case_of_json j with
  | Error e ->
      Fmt.epr "explore: %s: %s@." path e;
      exit 2
  | Ok case ->
      let verdicts, _ = Explore.Explorer.replay case in
      Fmt.pr "%s:@." path;
      List.iter (Fmt.pr "  %a@." Explore.Oracle.pp_verdict) verdicts;
      Explore.Oracle.ok verdicts

let usage () =
  Fmt.epr
    "usage: explore --trials N --seed S [--out DIR] [--horizon-us H] \
     [--plant-unsafe-ack]@.       explore --replay FILE [--replay FILE ...]@.";
  exit 2

let main () =
  let trials = ref 20
  and seed = ref 1
  and out = ref "explore-out"
  and horizon_us = ref 8_000_000
  and replays = ref []
  and plant = ref false in
  let rec parse = function
    | [] -> ()
    | "--trials" :: v :: rest ->
        trials := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--horizon-us" :: v :: rest ->
        horizon_us := int_of_string v;
        parse rest
    | "--replay" :: v :: rest ->
        replays := v :: !replays;
        parse rest
    | "--plant-unsafe-ack" :: rest ->
        plant := true;
        parse rest
    | _ -> usage ()
  in
  (try parse (List.tl (Array.to_list Sys.argv))
   with Failure _ -> usage ());
  if !plant then Store.Wal.unsafe_ack := true;
  if !replays <> [] then begin
    let results = List.rev_map replay_file !replays in
    exit (if List.for_all Fun.id results then 0 else 1)
  end;
  let module E = Explore.Explorer in
  mkdirs (Filename.concat !out "corpus");
  let on_trial (t : E.trial) =
    Fmt.pr "trial %3d  seed %-10d  %s%s  fp %s@." t.t_index t.t_seed
      (if Explore.Oracle.ok t.t_verdicts then "pass" else "FAIL")
      (if t.t_novel then " novel" else "      ")
      t.t_fingerprint
  in
  let outcome =
    E.explore ~horizon_us:!horizon_us ~on_trial ~trials:!trials ~seed:!seed ()
  in
  List.iter
    (fun (t : E.trial) ->
      let file =
        Filename.concat
          (Filename.concat !out "corpus")
          (t.t_fingerprint ^ ".json")
      in
      write_json file (E.trial_to_json t))
    outcome.o_corpus;
  Fmt.pr "explored %d trials: %d novel (corpus), %d failing@."
    (List.length outcome.o_trials)
    (List.length outcome.o_corpus)
    (List.length outcome.o_failures);
  List.iter
    (fun (t : E.trial) ->
      match Explore.Oracle.first_failure t.t_verdicts with
      | None -> ()
      | Some v ->
          Fmt.pr "shrinking trial %d (oracle %s)...@." t.t_index
            v.Explore.Oracle.oracle;
          let case = E.case_of_trial t in
          let fails = E.schedule_fails case ~oracle:v.Explore.Oracle.oracle in
          let minimal = Explore.Shrink.minimize ~fails t.t_schedule in
          let case = { case with E.c_schedule = minimal } in
          let verdicts, _ = E.replay case in
          let failing =
            match Explore.Oracle.first_failure verdicts with
            | Some v' -> v'
            | None -> v
          in
          let doc = E.repro_to_json case ~failing in
          let hash = E.fingerprint [ Sim.Json.to_string doc ] in
          let file = Filename.concat !out ("REPRO_" ^ hash ^ ".json") in
          write_json file doc;
          Fmt.pr "  %d -> %d steps; wrote %s@."
            (List.length t.t_schedule)
            (List.length minimal) file;
          Fmt.pr "  replay: dune exec bin/explore.exe -- --replay %s@." file)
    outcome.o_failures;
  exit (if outcome.o_failures = [] then 0 else 1)
