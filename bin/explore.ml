(* Entry point only; the CLI lives in Explore_cli so this unit's name
   does not shadow the [explore] library. *)
let () = Explore_cli.main ()
