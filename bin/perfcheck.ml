(* CI perf-regression gate over profiled bench artifacts.

     perfcheck BASELINE ARTIFACT          gate ARTIFACT against BASELINE
     perfcheck --init BASELINE ARTIFACT   regenerate BASELINE from ARTIFACT

   ARTIFACT is a BENCH_profile.json (or any bench document with a
   "profile" section). Gate semantics live in [Sim.Perfgate]: per-label
   words/event budgets, budgeted-label presence and attribution
   coverage fail hard (exit 1); wall-clock throughput and unbudgeted
   new labels only warn. [--init] writes a fresh baseline derived from
   the artifact's measured values with headroom — run it after a
   deliberate change to the hot path, and commit the result. *)

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Sim.Json.of_string_opt s with
  | Some j -> j
  | None ->
      Fmt.epr "perfcheck: %s is not valid JSON@." path;
      exit 2

let usage () =
  Fmt.epr "usage: perfcheck [--init] BASELINE ARTIFACT@.";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | [ _; "--init"; baseline_path; artifact_path ] ->
      let artifact = read_json artifact_path in
      let baseline = Sim.Perfgate.baseline_of_artifact artifact in
      let oc = open_out baseline_path in
      output_string oc (Sim.Json.to_string_pretty baseline);
      output_char oc '\n';
      close_out oc;
      Fmt.pr "perfcheck: wrote %s from %s@." baseline_path artifact_path
  | [ _; baseline_path; artifact_path ] ->
      let baseline = read_json baseline_path in
      let artifact = read_json artifact_path in
      let result = Sim.Perfgate.check ~baseline ~artifact in
      Fmt.pr "%a" Sim.Perfgate.pp_result result;
      if not (Sim.Perfgate.ok result) then exit 1
  | _ -> usage ()
