(* Simulator self-profiling: label attribution, allocation accounting,
   folded-stack export, and the perfcheck gate. *)

module Prof = Sim.Prof
module Engine = Sim.Engine
module Json = Sim.Json

let mk_engine ?(profile = true) ?sample_every () =
  let eng = Engine.create ~seed:7 () in
  if profile then Prof.enable ?sample_every (Engine.prof eng);
  eng

(* Disabled profiling is zero-cost: no interning, no accounting. *)
let test_disabled_zero_cost () =
  let eng = mk_engine ~profile:false () in
  let p = Engine.prof eng in
  let l = Prof.label p "should/not/intern" in
  Alcotest.(check int) "label is none" Prof.none l;
  Alcotest.(check int) "nothing interned" 0 (Prof.interned p);
  Engine.schedule eng ~delay:10 (fun () -> ());
  Engine.schedule eng ~delay:20 ~label:l (fun () -> ());
  Engine.run eng;
  Alcotest.(check int) "no events accounted" 0 (Prof.total_events p);
  Alcotest.(check (list reject)) "no entries" [] (Prof.entries p)

(* Unlabelled events inherit the label of the event that scheduled
   them, so labelling a root attributes its whole cascade. *)
let test_label_inheritance () =
  let eng = mk_engine () in
  let p = Engine.prof eng in
  let root = Prof.label p "root/task" in
  let leaf = ref 0 in
  Engine.schedule eng ~delay:1 ~label:root (fun () ->
      (* two unlabelled children, one of which re-schedules again *)
      Engine.schedule eng ~delay:1 (fun () -> incr leaf);
      Engine.schedule eng ~delay:2 (fun () ->
          Engine.schedule eng ~delay:1 (fun () -> incr leaf)));
  (* an unlabelled root lands under "other" *)
  Engine.schedule eng ~delay:1 (fun () -> ());
  Engine.run eng;
  Alcotest.(check int) "cascade ran" 2 !leaf;
  Alcotest.(check int) "all events accounted" 5 (Prof.total_events p);
  Alcotest.(check int) "cascade attributed" 4 (Prof.attributed_events p);
  Alcotest.(check (float 0.01)) "coverage" 80.0 (Prof.coverage_pct p);
  match Prof.entries p with
  | [ a; b ] ->
      Alcotest.(check string) "busiest first" "root/task" a.Prof.e_label;
      Alcotest.(check int) "cascade size" 4 a.Prof.e_events;
      Alcotest.(check string) "unattributed kept" "other" b.Prof.e_label;
      Alcotest.(check int) "other size" 1 b.Prof.e_events
  | es -> Alcotest.failf "expected two entries, got %d" (List.length es)

(* [every] timers keep their label across re-arms; [current_label]
   reflects the executing event. *)
let test_timer_and_current_label () =
  let eng = mk_engine () in
  let p = Engine.prof eng in
  let tick = Prof.label p "timer/tick" in
  let seen = ref [] in
  let n = ref 0 in
  Engine.every eng ~label:tick ~period:10 (fun () ->
      seen := Engine.current_label eng :: !seen;
      incr n;
      !n < 3);
  Engine.run eng;
  Alcotest.(check int) "three firings" 3 !n;
  Alcotest.(check bool) "label visible while executing" true
    (List.for_all (Int.equal tick) !seen);
  Alcotest.(check int) "outside the loop" Prof.none
    (Engine.current_label eng);
  match Prof.entries p with
  | [ e ] ->
      Alcotest.(check string) "timer label" "timer/tick" e.Prof.e_label;
      Alcotest.(check int) "all firings counted" 3 e.Prof.e_events
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

(* Wall-clock is sampled every [sample_every]-th event using the
   injected clock; [run_wall_seconds] covers the whole run window. *)
let test_sampled_wall_and_run_window () =
  let eng = mk_engine ~sample_every:2 () in
  let p = Engine.prof eng in
  let now = ref 0.0 in
  Prof.set_clock p (fun () ->
      (* each reading advances the fake clock 1 ms *)
      let t = !now in
      now := t +. 0.001;
      t);
  let l = Prof.label p "work" in
  for i = 1 to 6 do
    Engine.schedule eng ~delay:i ~label:l (fun () -> ())
  done;
  Engine.run eng;
  Alcotest.(check bool) "run window measured" true
    (Engine.run_wall_seconds eng > 0.0);
  match Prof.entries p with
  | [ e ] ->
      Alcotest.(check int) "every 2nd event sampled" 3 e.Prof.e_wall_samples;
      (* each sample brackets the handler with two readings: 1 ms each *)
      Alcotest.(check (float 1e-9)) "sampled seconds" 0.003 e.Prof.e_wall_s
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

(* A profiled protocol run under a fixed seed is fully deterministic:
   identical per-label event counts and allocation deltas across
   reruns. This is the property the CI hard gate rests on. *)
let run_profiled_system () =
  let module U = Unistore in
  let cfg =
    U.Config.default ~partitions:2 ~seed:11 ~profile:true
      ~profile_sample_every:16 ()
  in
  let sys = U.System.create cfg in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         for i = 1 to 20 do
           U.Client.start c;
           U.Client.update c i (Crdt.Reg_write i);
           ignore (U.Client.commit c)
         done));
  U.System.run sys ~until:2_000_000;
  let p = Engine.prof (U.System.engine sys) in
  (Prof.total_events p, Prof.entries p)

let test_determinism_across_reruns () =
  let t1, e1 = run_profiled_system () in
  let t2, e2 = run_profiled_system () in
  Alcotest.(check int) "same total" t1 t2;
  Alcotest.(check int) "same label count" (List.length e1) (List.length e2);
  Alcotest.(check bool) "profile is non-trivial" true (List.length e1 > 5);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "label" a.Prof.e_label b.Prof.e_label;
      Alcotest.(check int) a.Prof.e_label a.Prof.e_events b.Prof.e_events;
      (* words match to within one discarded GC-noise event's real
         allocation (a few hundred words; see Prof.noise_events) *)
      let close x y =
        Alcotest.(check bool)
          (Fmt.str "words stable for %s (%.0f vs %.0f)" a.Prof.e_label x y)
          true
          (Float.abs (x -. y) <= 2048.0)
      in
      close a.Prof.e_minor_words b.Prof.e_minor_words;
      close a.Prof.e_major_words b.Prof.e_major_words)
    e1 e2

(* A physically-implausible per-event allocation delta (>= 64 Ki words)
   is discarded as runtime GC-boundary noise instead of skewing the
   label's words/event. *)
let test_gc_noise_clamped () =
  let eng = mk_engine () in
  let p = Engine.prof eng in
  let l = Prof.label p "work" in
  let sink = ref [||] in
  Engine.schedule eng ~delay:1 ~label:l (fun () -> ());
  Engine.schedule eng ~delay:2 ~label:l (fun () ->
      (* one huge allocation: indistinguishable from runtime
         misaccounting, so it must land in the noise bucket *)
      sink := Array.make 100_000 0.0);
  Engine.run eng;
  ignore !sink;
  Alcotest.(check int) "noise event counted" 1 (Prof.noise_events p);
  Alcotest.(check bool) "noise words recorded" true
    (Prof.noise_words p >= 100_000.0);
  match Prof.entries p with
  | [ e ] ->
      Alcotest.(check int) "both events kept" 2 e.Prof.e_events;
      Alcotest.(check bool) "label words not skewed" true
        (e.Prof.e_minor_words +. e.Prof.e_major_words < 65536.0)
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

(* The protocol stack attributes ~everything: handlers, timers, fibers,
   network internals all carry labels, and nothing is dropped. *)
let test_stack_coverage () =
  let _, entries = run_profiled_system () in
  let labels = List.map (fun e -> e.Prof.e_label) entries in
  let has prefix =
    List.exists
      (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      labels
  in
  Alcotest.(check bool) "replica handlers" true (has "dc0/replica/handle:");
  Alcotest.(check bool) "replica timers" true (has "dc0/replica/propagate");
  Alcotest.(check bool) "network deliver" true (has "net/deliver");
  Alcotest.(check bool) "client fiber" true (has "fiber/client");
  let total = List.fold_left (fun a e -> a + e.Prof.e_events) 0 entries in
  let other =
    match List.find_opt (fun e -> e.Prof.e_label = "other") entries with
    | Some e -> e.Prof.e_events
    | None -> 0
  in
  Alcotest.(check bool) "coverage >= 95%" true
    (float_of_int (total - other) /. float_of_int total >= 0.95)

(* Folded-stack export: one "frame;frame;... weight" line per label,
   weights positive integers, '/' segments turned into ';' frames. *)
let test_folded_well_formed () =
  let _, entries = run_profiled_system () in
  let folded = Prof.folded_of_entries ~sample_every:16 entries in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' folded)
  in
  (* zero-weight labels (no wall samples) are omitted by design *)
  Alcotest.(check bool) "non-empty" true (List.length lines > 0);
  Alcotest.(check bool) "at most one line per label" true
    (List.length lines <= List.length entries);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "no weight separator in %S" line
      | Some i ->
          let frames = String.sub line 0 i in
          let weight =
            String.sub line (i + 1) (String.length line - i - 1)
          in
          Alcotest.(check bool)
            (Fmt.str "weight positive in %S" line)
            true
            (match int_of_string_opt weight with
            | Some w -> w > 0
            | None -> false);
          Alcotest.(check bool)
            (Fmt.str "no '/' left in frames of %S" line)
            false
            (String.contains frames '/'))
    lines

(* The profile JSON document carries the gated fields. *)
let test_profile_json_shape () =
  let total, entries = run_profiled_system () in
  let j = Prof.entries_to_json ~sample_every:16 ~total_events:total entries in
  let int_field n =
    Option.bind (Json.member n j) Json.to_int_opt |> Option.get
  in
  Alcotest.(check int) "total_events" total (int_field "total_events");
  Alcotest.(check int) "sample_every" 16 (int_field "sample_every");
  Alcotest.(check bool) "coverage present" true
    (Option.is_some (Json.member "coverage_pct" j));
  let rows =
    Option.bind (Json.member "labels" j) Json.to_list_opt |> Option.get
  in
  Alcotest.(check int) "one row per entry" (List.length entries)
    (List.length rows);
  List.iter
    (fun row ->
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " present") true
            (Option.is_some (Json.member f row)))
        [ "label"; "events"; "words_per_event"; "minor_words" ])
    rows

(* --- the perfcheck gate ------------------------------------------- *)

let artifact ?(coverage = 99.0) ?(rate = 200_000.0) rows =
  Json.Obj
    [
      ("sim_events_per_sec", Json.Float rate);
      ( "profile",
        Json.Obj
          [
            ("coverage_pct", Json.Float coverage);
            ( "labels",
              Json.List
                (List.map
                   (fun (label, wpe, events) ->
                     Json.Obj
                       [
                         ("label", Json.String label);
                         ("events", Json.Int events);
                         ("words_per_event", Json.Float wpe);
                       ])
                   rows) );
          ] );
    ]

let test_perfgate_pass () =
  let a = artifact [ ("net/deliver", 100.0, 5000); ("wal/fsync", 40.0, 800) ] in
  let baseline = Sim.Perfgate.baseline_of_artifact a in
  let r = Sim.Perfgate.check ~baseline ~artifact:a in
  Alcotest.(check bool) "fresh baseline passes" true (Sim.Perfgate.ok r);
  Alcotest.(check (list string)) "no warnings" [] r.Sim.Perfgate.warnings

let test_perfgate_budget_exceeded () =
  let base = artifact [ ("net/deliver", 100.0, 5000) ] in
  let baseline = Sim.Perfgate.baseline_of_artifact base in
  (* 5% headroom + 10% tolerance ≈ 15.5% ceiling: +30% must fail *)
  let bloated = artifact [ ("net/deliver", 130.0, 5000) ] in
  let r = Sim.Perfgate.check ~baseline ~artifact:bloated in
  Alcotest.(check bool) "regression caught" false (Sim.Perfgate.ok r);
  Alcotest.(check int) "one failure" 1 (List.length r.Sim.Perfgate.failures);
  (* +12% sits inside headroom+tolerance: still fine *)
  let mild = artifact [ ("net/deliver", 112.0, 5000) ] in
  Alcotest.(check bool) "within tolerance passes" true
    (Sim.Perfgate.ok (Sim.Perfgate.check ~baseline ~artifact:mild))

let test_perfgate_missing_label () =
  let base =
    artifact [ ("net/deliver", 100.0, 5000); ("wal/fsync", 40.0, 800) ]
  in
  let baseline = Sim.Perfgate.baseline_of_artifact base in
  (* instrumentation silently lost a budgeted label *)
  let partial = artifact [ ("net/deliver", 100.0, 5000) ] in
  let r = Sim.Perfgate.check ~baseline ~artifact:partial in
  Alcotest.(check bool) "missing label fails" false (Sim.Perfgate.ok r)

let test_perfgate_coverage_floor () =
  let a = artifact [ ("net/deliver", 100.0, 5000) ] in
  let baseline = Sim.Perfgate.baseline_of_artifact a in
  let degraded = artifact ~coverage:80.0 [ ("net/deliver", 100.0, 5000) ] in
  let r = Sim.Perfgate.check ~baseline ~artifact:degraded in
  Alcotest.(check bool) "coverage drop fails" false (Sim.Perfgate.ok r)

let test_perfgate_advisory_only_warns () =
  let a = artifact [ ("net/deliver", 100.0, 5000) ] in
  let baseline = Sim.Perfgate.baseline_of_artifact a in
  (* slow run + a busy unbudgeted label + a tiny unbudgeted label *)
  let noisy =
    artifact ~rate:1000.0
      [
        ("net/deliver", 100.0, 5000);
        ("new/subsystem", 999.0, 5000);
        ("tiny/label", 999.0, 3);
      ]
  in
  let r = Sim.Perfgate.check ~baseline ~artifact:noisy in
  Alcotest.(check bool) "advisory issues do not gate" true
    (Sim.Perfgate.ok r);
  (* throughput floor + busy unbudgeted label; the tiny one is ignored *)
  Alcotest.(check int) "two warnings" 2
    (List.length r.Sim.Perfgate.warnings)

let test_perfgate_no_profile_section () =
  let a = artifact [ ("net/deliver", 100.0, 5000) ] in
  let baseline = Sim.Perfgate.baseline_of_artifact a in
  let r =
    Sim.Perfgate.check ~baseline ~artifact:(Json.Obj [ ("x", Json.Int 1) ])
  in
  Alcotest.(check bool) "profile-less artifact fails" false
    (Sim.Perfgate.ok r)

let test_perfgate_baseline_floor () =
  (* labels below min_events get no budget — too noisy to gate on *)
  let a = artifact [ ("busy", 10.0, 5000); ("quiet", 10.0, 12) ] in
  let baseline = Sim.Perfgate.baseline_of_artifact a in
  let budgets =
    Option.bind (Json.member "budgets" baseline) Json.to_list_opt
    |> Option.get
    |> List.filter_map (fun b ->
           Option.bind (Json.member "label" b) Json.to_string_opt)
  in
  Alcotest.(check (list string)) "only busy labels budgeted" [ "busy" ]
    budgets

(* [Config.trace_capacity] reaches the system's trace ring. *)
let test_trace_capacity_wired () =
  let module U = Unistore in
  let cfg =
    U.Config.default ~partitions:2 ~seed:3 ~trace_enabled:true
      ~trace_capacity:50 ()
  in
  let sys = U.System.create cfg in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         for i = 1 to 40 do
           U.Client.start c;
           U.Client.update c i (Crdt.Reg_write i);
           ignore (U.Client.commit c)
         done));
  U.System.run sys ~until:2_000_000;
  let tr = U.System.trace sys in
  Alcotest.(check int) "buffer bounded" 50 (Sim.Trace.length tr);
  Alcotest.(check bool) "overflow counted" true (Sim.Trace.dropped tr > 0)

let suite =
  [
    Alcotest.test_case "disabled profiling is zero-cost" `Quick
      test_disabled_zero_cost;
    Alcotest.test_case "unlabelled events inherit the scheduler's label"
      `Quick test_label_inheritance;
    Alcotest.test_case "timer labels and current_label" `Quick
      test_timer_and_current_label;
    Alcotest.test_case "sampled wall-clock and run window" `Quick
      test_sampled_wall_and_run_window;
    Alcotest.test_case "profiled runs are deterministic" `Quick
      test_determinism_across_reruns;
    Alcotest.test_case "GC-boundary noise is discarded" `Quick
      test_gc_noise_clamped;
    Alcotest.test_case "protocol stack is >= 95% attributed" `Quick
      test_stack_coverage;
    Alcotest.test_case "folded-stack export is well-formed" `Quick
      test_folded_well_formed;
    Alcotest.test_case "profile JSON carries the gated fields" `Quick
      test_profile_json_shape;
    Alcotest.test_case "perfcheck: fresh baseline passes" `Quick
      test_perfgate_pass;
    Alcotest.test_case "perfcheck: budget regression fails" `Quick
      test_perfgate_budget_exceeded;
    Alcotest.test_case "perfcheck: missing budgeted label fails" `Quick
      test_perfgate_missing_label;
    Alcotest.test_case "perfcheck: coverage floor fails" `Quick
      test_perfgate_coverage_floor;
    Alcotest.test_case "perfcheck: advisory issues only warn" `Quick
      test_perfgate_advisory_only_warns;
    Alcotest.test_case "perfcheck: artifact without profile fails" `Quick
      test_perfgate_no_profile_section;
    Alcotest.test_case "perfcheck: tiny labels are not budgeted" `Quick
      test_perfgate_baseline_floor;
    Alcotest.test_case "trace capacity is wired through config" `Quick
      test_trace_capacity_wired;
  ]
