(* Metrics registry: counters, gauges, log-bucketed histograms, snapshot
   JSON. *)

module M = Sim.Metrics

let test_counters () =
  let reg = M.create () in
  let c = M.counter reg "requests_total" in
  M.incr c;
  M.incr ~by:4 c;
  Alcotest.(check int) "value" 5 (M.counter_value c);
  (* same (name, labels) interns to the same counter *)
  let c' = M.counter reg "requests_total" in
  M.incr c';
  Alcotest.(check int) "interned" 6 (M.counter_value c);
  (* different labels are a different counter; label order is canonical *)
  let a = M.counter reg ~labels:[ ("k", "1"); ("j", "2") ] "requests_total" in
  let b = M.counter reg ~labels:[ ("j", "2"); ("k", "1") ] "requests_total" in
  M.incr a;
  Alcotest.(check int) "label order canonical" 1 (M.counter_value b);
  Alcotest.(check int) "unlabelled unaffected" 6 (M.counter_value c)

let test_gauges () =
  let reg = M.create () in
  let g = M.gauge reg "depth" in
  M.set g 3.0;
  M.set g 7.0;
  M.set g 2.0;
  Alcotest.(check (float 0.001)) "value" 2.0 (M.gauge_value g);
  Alcotest.(check (float 0.001)) "max" 7.0 (M.gauge_max g);
  M.gauge_add g 10.0;
  M.gauge_add g (-4.0);
  Alcotest.(check (float 0.001)) "delta updates" 8.0 (M.gauge_value g);
  Alcotest.(check (float 0.001)) "max tracks deltas" 12.0 (M.gauge_max g);
  (* a gauge first set to a negative value records it as the max too *)
  let n = M.gauge reg "neg" in
  M.set n (-5.0);
  Alcotest.(check (float 0.001)) "negative first max" (-5.0) (M.gauge_max n)

let test_bucket_boundaries () =
  (* bucket i covers [2^(i/8), 2^((i+1)/8)): adjacent buckets tile the
     positive axis and every observation lands in the bucket whose
     bounds contain it *)
  for i = 0 to 40 do
    let lower, upper = M.bucket_bounds i in
    let lower', _ = M.bucket_bounds (i + 1) in
    Alcotest.(check (float 1e-9)) "buckets tile" upper lower';
    Alcotest.(check bool) "octave width" true
      (upper /. lower > 1.0 && upper /. lower < 1.10)
  done;
  let reg = M.create () in
  let h = M.histogram reg "h" in
  List.iter (M.observe h) [ 1; 2; 3; 100; 1000; 1_000_000 ];
  List.iter
    (fun (i, lower, upper, count) ->
      Alcotest.(check bool) "bucket non-empty" true (count > 0);
      if i >= 0 then begin
        let l, u = M.bucket_bounds i in
        Alcotest.(check (float 1e-9)) "reported lower" l lower;
        Alcotest.(check (float 1e-9)) "reported upper" u upper
      end)
    (M.h_buckets h);
  (* each observed value is inside some reported bucket *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%d covered" v)
        true
        (List.exists
           (fun (_, lower, upper, _) ->
             float_of_int v >= lower && float_of_int v < upper)
           (M.h_buckets h)))
    [ 1; 2; 3; 100; 1000; 1_000_000 ]

let test_histogram_stats () =
  let reg = M.create () in
  let h = M.histogram reg "lat" in
  Alcotest.(check (option (float 0.0))) "empty mean" None (M.h_mean h);
  Alcotest.(check (option (float 0.0))) "empty pct" None (M.h_percentile h 50.0);
  for v = 1 to 1000 do
    M.observe h v
  done;
  Alcotest.(check int) "count" 1000 (M.h_count h);
  Alcotest.(check (option int)) "min exact" (Some 1) (M.h_min h);
  Alcotest.(check (option int)) "max exact" (Some 1000) (M.h_max h);
  Alcotest.(check (float 0.001)) "sum" 500500.0 (M.h_sum h);
  (* p0/p100 clamp to the exact tracked extremes *)
  Alcotest.(check (option (float 0.001))) "p0" (Some 1.0) (M.h_percentile h 0.0);
  Alcotest.(check (option (float 0.001)))
    "p100" (Some 1000.0)
    (M.h_percentile h 100.0)

(* Bucketed percentiles stay within one bucket width (~9%) of the exact
   percentile computed by Stats on the same samples. *)
let test_percentile_vs_exact () =
  let reg = M.create () in
  let h = M.histogram reg "cmp" in
  let s = Sim.Stats.create_samples () in
  let rng = Sim.Rng.create 7 in
  for _ = 1 to 5_000 do
    let v = 1 + Sim.Rng.int rng 100_000 in
    M.observe h v;
    Sim.Stats.add s v
  done;
  List.iter
    (fun p ->
      let exact = Sim.Stats.percentile s p in
      match M.h_percentile h p with
      | None -> Alcotest.fail "estimate missing"
      | Some est ->
          let rel = Float.abs (est -. exact) /. exact in
          Alcotest.(check bool)
            (Printf.sprintf "p%.0f within a bucket (exact %.0f, est %.0f)" p
               exact est)
            true (rel < 0.095))
    [ 10.0; 50.0; 90.0; 99.0 ]

let test_nonpositive_bucket () =
  let reg = M.create () in
  let h = M.histogram reg "z" in
  M.observe h 0;
  M.observe h (-3);
  M.observe h 5;
  (match M.h_buckets h with
  | (-1, _, _, n) :: _ -> Alcotest.(check int) "zero bucket" 2 n
  | _ -> Alcotest.fail "expected the non-positive bucket first");
  Alcotest.(check (option int)) "min is negative" (Some (-3)) (M.h_min h);
  (* the median falls in the non-positive bucket: reported as min clamped
     to 0 *)
  Alcotest.(check (option (float 0.001)))
    "median in zero bucket" (Some 0.0)
    (M.h_percentile h 50.0)

let test_matching_sorted () =
  let reg = M.create () in
  ignore (M.histogram reg ~labels:[ ("phase", "certify") ] "strong_phase_us");
  ignore (M.histogram reg ~labels:[ ("phase", "execute") ] "strong_phase_us");
  ignore (M.histogram reg "other");
  let labels =
    List.map (fun (l, _) -> List.assoc "phase" l)
      (M.histograms_matching reg "strong_phase_us")
  in
  Alcotest.(check (list string)) "sorted by labels"
    [ "certify"; "execute" ] labels

let test_snapshot_json () =
  let reg = M.create () in
  M.incr (M.counter reg ~labels:[ ("kind", "prepare") ] "net_sent_total");
  M.set (M.gauge reg "backlog") 4.0;
  M.observe (M.histogram reg "lat") 100;
  let rendered = Sim.Json.to_string (M.to_json reg) in
  match Sim.Json.of_string_opt rendered with
  | None -> Alcotest.fail "snapshot JSON does not parse"
  | Some j ->
      let section name =
        match Option.bind (Sim.Json.member name j) Sim.Json.to_list_opt with
        | Some l -> l
        | None -> Alcotest.fail (name ^ " missing")
      in
      Alcotest.(check int) "one counter" 1 (List.length (section "counters"));
      Alcotest.(check int) "one gauge" 1 (List.length (section "gauges"));
      Alcotest.(check int) "one histogram" 1
        (List.length (section "histograms"));
      let c = List.hd (section "counters") in
      Alcotest.(check (option string))
        "counter name" (Some "net_sent_total")
        (Option.bind (Sim.Json.member "name" c) Sim.Json.to_string_opt);
      Alcotest.(check (option string))
        "counter labels" (Some "prepare")
        (Option.bind (Sim.Json.member "labels" c) (fun l ->
             Option.bind (Sim.Json.member "kind" l) Sim.Json.to_string_opt))

let suite =
  [
    Alcotest.test_case "counters intern and count" `Quick test_counters;
    Alcotest.test_case "gauges track value and max" `Quick test_gauges;
    Alcotest.test_case "bucket boundaries tile the axis" `Quick
      test_bucket_boundaries;
    Alcotest.test_case "histogram stats and exact tails" `Quick
      test_histogram_stats;
    Alcotest.test_case "bucketed percentiles near exact" `Quick
      test_percentile_vs_exact;
    Alcotest.test_case "non-positive observations" `Quick
      test_nonpositive_bucket;
    Alcotest.test_case "matching is label-sorted" `Quick test_matching_sorted;
    Alcotest.test_case "snapshot renders valid JSON" `Quick test_snapshot_json;
  ]
