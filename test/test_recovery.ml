(* DC crash-recovery end to end: a crashed data center rejoins through
   the snapshot + causal-log catch-up protocol and converges with the
   survivors; clients fail over to live DCs carrying their causal past;
   in-flight strong transactions are re-submitted idempotently; and the
   GC floors hold the catch-up logs for exactly the grace period. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let counter_total reg name =
  List.fold_left
    (fun acc (_, c) -> acc + Sim.Metrics.counter_value c)
    0
    (Sim.Metrics.counters_matching reg name)

(* Crash dc2 mid-workload, recover it, and check that it catches up
   completely: the rejoined store converges with the survivors, every
   increment committed anywhere (including while dc2 was down) reads
   back exactly once at dc2 itself, and the recovery metrics record the
   catch-up. *)
let test_crash_recover_convergence () =
  let sys = Util.make_system ~partitions:3 ~seed:11 () in
  let keys = [| 100; 101 |] in
  let strong_key = 200 in
  Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
  U.System.preload sys strong_key (Crdt.Ctr_add 0);
  U.Nemesis.inject sys
    [
      { U.Nemesis.at_us = 1_500_000; ev = U.Nemesis.Crash_dc 2 };
      { at_us = 3_000_000; ev = U.Nemesis.Recover_dc 2 };
    ];
  let commits = Array.make 2 0 in
  let strong_commits = ref 0 in
  for dc = 0 to 1 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           while U.System.now sys < 6_000_000 do
             Client.start c;
             Client.update c keys.(dc) (Crdt.Ctr_add 1);
             (match Client.commit c with
             | `Committed _ -> commits.(dc) <- commits.(dc) + 1
             | `Aborted -> ());
             Fiber.sleep 90_000
           done))
  done;
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         while U.System.now sys < 6_000_000 do
           Client.start c ~strong:true;
           Client.update c strong_key (Crdt.Ctr_add 1);
           (match Client.commit c with
           | `Committed _ -> incr strong_commits
           | `Aborted -> ());
           Fiber.sleep 140_000
         done));
  Util.run sys ~until:10_000_000;
  Alcotest.(check bool) "dc2 finished catching up" false
    (U.System.dc_syncing sys 2);
  Util.assert_por sys;
  Util.assert_convergence sys;
  Alcotest.(check int) "no strong transaction left pending" 0
    (U.System.pending_strong sys);
  Alcotest.(check bool) "workload committed during the outage" true
    (commits.(0) > 10 && commits.(1) > 10 && !strong_commits > 5);
  (* read everything back at the recovered DC itself: every commit —
     including those from the outage, delivered through the snapshot,
     the pull rounds or the replayed deferred stream — applied there
     exactly once *)
  let final = Array.make 2 (-1) and final_strong = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Client.start c;
         Array.iteri (fun i k -> final.(i) <- Client.read_int c k) keys;
         final_strong := Client.read_int c strong_key;
         ignore (Client.commit c)));
  Util.run sys ~until:10_500_000;
  for dc = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "dc%d's causal increments visible exactly once" dc)
      commits.(dc)
      final.(dc)
  done;
  Alcotest.(check int) "strong increments visible exactly once"
    !strong_commits !final_strong;
  let reg = U.System.metrics sys in
  (match Sim.Metrics.histograms_matching reg "dc_catchup_us" with
  | [ (_, h) ] ->
      Alcotest.(check int) "every partition replica caught up" 3
        (Sim.Metrics.h_count h)
  | _ -> Alcotest.fail "dc_catchup_us histogram missing");
  Alcotest.(check bool) "snapshot bytes accounted" true
    (counter_total reg "sync_snapshot_bytes_total" > 0);
  Alcotest.(check bool) "log catch-up bytes accounted" true
    (counter_total reg "sync_log_bytes_total" > 0)

(* A client attached to the DC that crashes: its next transaction times
   out, the session migrates to a live DC blocking until the causal past
   is covered there, and read-your-writes holds across the switch. *)
let test_failover_causality () =
  let sys =
    Util.make_system ~partitions:2 ~seed:5 ~client_failover_us:300_000 ()
  in
  let key = 42 in
  U.System.preload sys key (Crdt.Ctr_add 0);
  U.Nemesis.inject sys
    [ { U.Nemesis.at_us = 1_000_000; ev = U.Nemesis.Crash_dc 2 } ];
  let writes = ref 0 and observed = ref (-1) and final_dc = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         (* two causal writes before the crash, with time to replicate *)
         Client.run_txn c (fun c -> Client.update c key (Crdt.Ctr_add 1));
         incr writes;
         Client.run_txn c (fun c -> Client.update c key (Crdt.Ctr_add 1));
         incr writes;
         Fiber.sleep 1_500_000;
         (* the session DC is dead by now: this transaction fails over
            and re-executes at a surviving DC *)
         observed := Client.run_txn c (fun c -> Client.read_int c key);
         final_dc := Client.dc c));
  Util.run sys ~until:5_000_000;
  Alcotest.(check int) "read-your-writes across the failover" !writes
    !observed;
  Alcotest.(check bool) "the session migrated off the crashed DC" true
    (!final_dc >= 0 && !final_dc <> 2);
  Alcotest.(check bool) "the failover was counted" true
    (counter_total (U.System.metrics sys) "client_failovers_total" >= 1);
  Util.assert_por sys

(* Strong transactions under failover take effect at most once: the
   client re-submits an in-flight commit under the same tid at the
   failover DC, certification dedups, and the counter's final value
   equals exactly the number of commits the client observed. *)
let test_strong_resubmission_exactly_once () =
  let sys =
    Util.make_system ~partitions:2 ~seed:9 ~client_failover_us:250_000 ()
  in
  let key = 7 in
  U.System.preload sys key (Crdt.Ctr_add 0);
  U.Nemesis.inject sys
    [ { U.Nemesis.at_us = 1_000_000; ev = U.Nemesis.Crash_dc 2 } ];
  let commits = ref 0 in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         while U.System.now sys < 3_000_000 do
           (try
              Client.start c ~strong:true;
              Client.update c key (Crdt.Ctr_add 1);
              match Client.commit c with
              | `Committed _ -> incr commits
              | `Aborted -> ()
            with Client.Aborted -> ());
           Fiber.sleep 20_000
         done));
  Util.run sys ~until:6_000_000;
  Alcotest.(check int) "no strong transaction left pending" 0
    (U.System.pending_strong sys);
  Alcotest.(check bool) "the crash forced a failover" true
    (counter_total (U.System.metrics sys) "client_failovers_total" >= 1);
  Util.assert_por sys;
  let final = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         final := Client.read_int c key;
         ignore (Client.commit c)));
  Util.run sys ~until:6_500_000;
  Alcotest.(check int) "strong increments applied exactly once" !commits
    !final

(* The GC floors of a crashed DC: the catch-up logs (both the remote
   forwarded buffers and the origin's own propagated log) are retained
   while the crashed DC is within its rejoin grace period, and pruned
   once the grace expires. *)
let test_gc_grace_floors () =
  let sys = Util.make_system ~partitions:1 ~seed:3 ~gc_grace_us:2_000_000 () in
  let key = 5 in
  U.System.preload sys key (Crdt.Ctr_add 0);
  U.Nemesis.inject sys
    [ { U.Nemesis.at_us = 300_000; ev = U.Nemesis.Crash_dc 2 } ];
  (* a causal commit at dc0 after the crash: dc2 cannot cover it, so the
     other replicas must hold it for a potential rejoin *)
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Fiber.sleep 800_000;
         Client.start c;
         Client.update c key (Crdt.Ctr_add 1);
         ignore (Client.commit c)));
  let r0 = U.System.replica sys ~dc:0 ~part:0 in
  let r1 = U.System.replica sys ~dc:1 ~part:0 in
  let own_during = ref (-1) and fwd_during = ref (-1) in
  Sim.Engine.schedule (U.System.engine sys) ~delay:1_800_000 (fun () ->
      own_during := U.Replica.committed_backlog r0 ~origin:0;
      fwd_during := U.Replica.committed_backlog r1 ~origin:0);
  (* grace expires at 2.3s; the floors release and the broadcast-driven
     prune empties the logs well before 4.5s *)
  Util.run sys ~until:4_500_000;
  Alcotest.(check bool) "origin retains its propagated log during grace"
    true (!own_during > 0);
  Alcotest.(check bool) "peers retain the forwarded buffer during grace"
    true (!fwd_during > 0);
  Alcotest.(check int) "propagated log pruned after grace" 0
    (U.Replica.committed_backlog r0 ~origin:0);
  Alcotest.(check int) "forwarded buffer pruned after grace" 0
    (U.Replica.committed_backlog r1 ~origin:0)

(* Seeded schedules: by default no recovery is drawn (existing seeds
   keep their schedules); with a recovery budget, a crashed DC recovers
   after its crash and before the final heal. *)
let test_random_schedule_recovery () =
  let horizon = 8_000_000 in
  let base = U.Nemesis.random_schedule ~seed:7 ~dcs:5 ~horizon_us:horizon () in
  Alcotest.(check bool) "no recovery by default" true
    (List.for_all
       (fun s ->
         match s.U.Nemesis.ev with U.Nemesis.Recover_dc _ -> false | _ -> true)
       base);
  (* find a seed whose schedule crashes a DC *)
  let is_crash s =
    match s.U.Nemesis.ev with U.Nemesis.Crash_dc _ -> true | _ -> false
  in
  let rec find seed =
    if seed > 64 then Alcotest.fail "no crashing seed below 64"
    else
      let sched =
        U.Nemesis.random_schedule ~seed ~dcs:5 ~horizon_us:horizon
          ~max_recoveries:1 ()
      in
      match List.find_opt is_crash sched with
      | Some crash -> (seed, sched, crash)
      | None -> find (seed + 1)
  in
  let seed, sched, crash = find 0 in
  let dc =
    match crash.U.Nemesis.ev with U.Nemesis.Crash_dc dc -> dc | _ -> -1
  in
  (match
     List.find_opt (fun s -> s.U.Nemesis.ev = U.Nemesis.Recover_dc dc) sched
   with
  | None -> Alcotest.fail "crash without a paired recovery"
  | Some r ->
      Alcotest.(check bool) "recovery strictly after the crash" true
        (r.U.Nemesis.at_us > crash.U.Nemesis.at_us);
      Alcotest.(check bool) "recovery no later than the final heal" true
        (r.U.Nemesis.at_us <= 3 * horizon / 4));
  (* the recovery budget only appends steps: the same seed without it
     yields exactly the schedule minus the recoveries *)
  let without =
    U.Nemesis.random_schedule ~seed ~dcs:5 ~horizon_us:horizon ()
  in
  let strip =
    List.filter
      (fun s ->
        match s.U.Nemesis.ev with U.Nemesis.Recover_dc _ -> false | _ -> true)
      sched
  in
  Alcotest.(check bool) "recoveries only append to the base schedule" true
    (List.sort compare strip = List.sort compare without)

(* {1 Replication continuity after node restart} *)

(* Provisional tail adoption: a node that restarts while its partition's
   origin DC is unreachable must adopt the surviving tails' claim for
   that origin only provisionally — the claim can lag strictly below a
   write the origin already acked (the claimant missed batches behind
   the same partition), and trusting it outright would let the origin's
   next direct batch jump clean over the window, silently dropping the
   acked write. With the provisional floor, the first post-restart
   continuity check detects the jump and repairs the window first-hand:
   every acked increment reads back exactly once everywhere. *)
let test_provisional_adoption_repairs_lagging_claim () =
  let sys =
    Util.make_system ~partitions:1 ~seed:17 ~persistence:true
      ~disk_fsync_us:500 ~snapshot_interval_us:1_500_000
      ~client_failover_us:300_000
      ~link_faults:Net.Faults.default_spec ()
  in
  let keys = [| 100; 101; 102 |] in
  Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
  U.Nemesis.inject sys
    [
      (* cut dc1 off from dc0, then crash dc0's node: when it restarts,
         dc1 is exempt from its pull round and its frontier for dc1 is a
         third-party claim via dc2's tail *)
      { U.Nemesis.at_us = 2_000_000; ev = U.Nemesis.Partition (1, 0) };
      { at_us = 2_000_000; ev = Crash_node { dc = 0; part = 0 } };
      { at_us = 3_000_000; ev = Restart_node { dc = 0; part = 0 } };
      { at_us = 3_500_000; ev = Heal (1, 0) };
      { at_us = 4_000_000; ev = Heal_all };
    ];
  (* [maybe] counts commits interrupted by a failover: the client saw an
     abort, but the transaction may still have applied server-side (the
     history records it as an unacked writer) *)
  let commits = Array.make 3 0 and maybe = Array.make 3 0 in
  for dc = 0 to 2 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           while U.System.now sys < 4_500_000 do
             (try
                Client.start c;
                Client.update c keys.(dc) (Crdt.Ctr_add 1);
                match Client.commit c with
                | `Committed _ -> commits.(dc) <- commits.(dc) + 1
                | `Aborted -> ()
              with Client.Aborted -> maybe.(dc) <- maybe.(dc) + 1);
             Fiber.sleep 70_000
           done))
  done;
  Util.run sys ~until:9_000_000;
  Alcotest.(check bool) "node is back" false
    (U.System.node_down sys ~dc:0 ~part:0);
  Util.assert_por sys;
  Util.assert_convergence sys;
  (* nothing may rest on an unverified claim once quiescent *)
  for dc = 0 to 2 do
    let r = U.System.replica sys ~dc ~part:0 in
    for origin = 0 to 2 do
      Alcotest.(check int)
        (Printf.sprintf "no provisional residue at dc%d for dc%d" dc origin)
        (-1)
        (U.Replica.provisional_floor r ~origin);
      Alcotest.(check bool)
        (Printf.sprintf "no repair in flight at dc%d for dc%d" dc origin)
        false
        (U.Replica.repair_active r ~origin)
    done
  done;
  (* acked increments survive the adoption window and apply exactly
     once; an interrupted commit may legitimately have landed too *)
  for dc = 0 to 2 do
    let final = Array.make 3 (-1) in
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           Client.start c;
           Array.iteri (fun i k -> final.(i) <- Client.read_int c k) keys;
           ignore (Client.commit c)));
    Util.run sys ~until:(9_200_000 + (100_000 * dc));
    Array.iteri
      (fun i _ ->
        Alcotest.(check bool)
          (Printf.sprintf "dc%d's acked increments read back at dc%d" i dc)
          true
          (final.(i) >= commits.(i)
          && final.(i) <= commits.(i) + maybe.(i)))
      keys
  done

(* Seeded lossy-link x node-restart durability sweep: under lossy
   inter-DC links, a DC partition and a node crash/restart, every acked
   increment is present exactly once at every DC after the dust
   settles, across several seeds. This is the schedule family the
   explorer minimized REPRO_4ce8396d6d636cc3 from. *)
let test_lossy_restart_durability_sweep () =
  List.iter
    (fun seed ->
      let sys =
        Util.make_system ~partitions:2 ~seed ~persistence:true
          ~disk_fsync_us:500 ~snapshot_interval_us:1_500_000
          ~client_failover_us:300_000
          ~link_faults:Net.Faults.default_spec ()
      in
      let keys = [| 100; 101; 102 |] in
      Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
      let part = seed mod 2 in
      U.Nemesis.inject sys
        [
          { U.Nemesis.at_us = 2_000_000; ev = U.Nemesis.Partition (1, 0) };
          { at_us = 2_000_000; ev = Crash_node { dc = 1; part } };
          { at_us = 3_000_000; ev = Restart_node { dc = 1; part } };
          { at_us = 3_200_000; ev = Heal (1, 0) };
          { at_us = 4_000_000; ev = Heal_all };
        ];
      let commits = Array.make 3 0 and maybe = Array.make 3 0 in
      for dc = 0 to 2 do
        ignore
          (U.System.spawn_client sys ~dc (fun c ->
               while U.System.now sys < 4_500_000 do
                 (try
                    Client.start c;
                    Client.update c keys.(dc) (Crdt.Ctr_add 1);
                    match Client.commit c with
                    | `Committed _ -> commits.(dc) <- commits.(dc) + 1
                    | `Aborted -> ()
                  with Client.Aborted -> maybe.(dc) <- maybe.(dc) + 1);
                 Fiber.sleep 90_000
               done))
      done;
      Util.run sys ~until:9_000_000;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: node is back" seed)
        false
        (U.System.node_down sys ~dc:1 ~part);
      Util.assert_por sys;
      Util.assert_convergence sys;
      let final = Array.make 3 (-1) in
      ignore
        (U.System.spawn_client sys ~dc:0 (fun c ->
             Client.start c;
             Array.iteri (fun i k -> final.(i) <- Client.read_int c k) keys;
             ignore (Client.commit c)));
      Util.run sys ~until:9_300_000;
      Array.iteri
        (fun i _ ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: dc%d's increments durable exactly once"
               seed i)
            true
            (final.(i) >= commits.(i)
            && final.(i) <= commits.(i) + maybe.(i)))
        keys)
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case
      "a crashed DC rejoins, catches up and converges exactly once" `Slow
      test_crash_recover_convergence;
    Alcotest.test_case "client failover preserves read-your-writes" `Slow
      test_failover_causality;
    Alcotest.test_case "in-flight strong commits re-submit exactly once"
      `Slow test_strong_resubmission_exactly_once;
    Alcotest.test_case "GC floors hold for the grace period, then release"
      `Slow test_gc_grace_floors;
    Alcotest.test_case "seeded schedules pair recoveries with crashes"
      `Quick test_random_schedule_recovery;
    Alcotest.test_case
      "provisional adoption repairs a claim lagging an acked write" `Slow
      test_provisional_adoption_repairs_lagging_claim;
    Alcotest.test_case "lossy-link x node-restart durability sweep" `Slow
      test_lossy_restart_durability_sweep;
  ]
