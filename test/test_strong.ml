(* Strong transactions: conflict ordering, aborts, the overdraft example,
   serializability and REDBLUE modes. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

(* The overdraft anomaly of §1: two concurrent withdrawals of the full
   balance. Under causal consistency both succeed; with strong
   withdrawals one observes the other and fails. *)
let overdraft_run ~strong =
  let sys = Util.make_system ~conflict:U.Config.Serializable () in
  let account = 5 in
  U.System.preload sys account (Crdt.Reg_write 100);
  let successes = ref 0 in
  let withdraw c =
    let rec attempt n =
      Client.start c ~label:"withdraw" ~strong;
      let balance = Client.read_int c account in
      if balance >= 100 then begin
        Client.update c account (Crdt.Reg_write (balance - 100));
        match Client.commit c with
        | `Committed _ -> incr successes
        | `Aborted -> if n < 5 then attempt (n + 1)
      end
      else ignore (Client.commit c)
    in
    attempt 0
  in
  ignore (U.System.spawn_client sys ~dc:0 withdraw);
  ignore (U.System.spawn_client sys ~dc:1 withdraw);
  Util.run sys ~until:3_000_000;
  Util.assert_convergence sys;
  (sys, !successes)

let test_overdraft_with_causal () =
  (* demonstrates the anomaly: both causal withdrawals succeed *)
  let _, successes = overdraft_run ~strong:false in
  Alcotest.(check int) "both causal withdrawals succeed (anomaly)" 2 successes

let test_overdraft_with_strong () =
  let sys, successes = overdraft_run ~strong:true in
  Alcotest.(check int) "exactly one strong withdrawal succeeds" 1 successes;
  Util.assert_por sys

let test_conflicting_strong_ordered () =
  let sys = Util.make_system () in
  U.System.preload sys 8 (Crdt.Reg_write 0);
  for dc = 0 to 2 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           for i = 1 to 5 do
             let rec attempt n =
               Client.start c ~strong:true;
               let v = Client.read_int c 8 in
               Client.update c 8 (Crdt.Reg_write (v + 1));
               match Client.commit c with
               | `Committed _ -> ()
               | `Aborted -> if n < 20 then attempt (n + 1)
             in
             attempt 0;
             ignore i
           done))
  done;
  Util.run sys ~until:20_000_000;
  (* all increments on one key through strong transactions act like a
     counter under serializability: the final value equals the number of
     committed increments *)
  let h = U.System.history sys in
  let committed = U.History.committed_strong h in
  let final = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         final := Client.read_int c 8;
         ignore (Client.commit c)));
  Util.run sys ~until:21_000_000;
  Alcotest.(check int) "no lost updates" committed !final;
  Alcotest.(check bool) "some aborts happened under contention" true
    (U.History.aborted_strong h > 0);
  Util.assert_por sys;
  Util.assert_convergence sys

let test_nonconflicting_strong_commit () =
  (* PoR: strong transactions on different keys never abort each other *)
  let sys = Util.make_system () in
  for dc = 0 to 2 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           for i = 0 to 9 do
             Client.start c ~strong:true;
             Client.update c ((100 * (dc + 1)) + i) (Crdt.Reg_write i);
             ignore (Client.commit c)
           done))
  done;
  Util.run sys ~until:10_000_000;
  let h = U.System.history sys in
  Alcotest.(check int) "all committed" 30 (U.History.committed_strong h);
  Alcotest.(check int) "no aborts" 0 (U.History.aborted_strong h);
  Util.assert_por sys

let test_por_class_conflicts () =
  (* only declared class pairs conflict: class-1 writers conflict with
     each other, class-2 writers do not conflict with anyone *)
  let conflict = U.Config.Classes [ (1, 1) ] in
  let sys = Util.make_system ~conflict () in
  U.System.preload sys 9 (Crdt.Reg_write 0);
  let c1_commits = ref 0 and c2_commits = ref 0 in
  for dc = 0 to 1 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           Client.start c ~strong:true;
           ignore (Client.read ~cls:1 c 9);
           Client.update ~cls:1 c 9 (Crdt.Reg_write dc);
           (match Client.commit c with
           | `Committed _ -> incr c1_commits
           | `Aborted -> ())));
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           Client.start c ~strong:true;
           ignore (Client.read ~cls:2 c 9);
           Client.update ~cls:2 c 9 (Crdt.Reg_write (10 + dc));
           match Client.commit c with
           | `Committed _ -> incr c2_commits
           | `Aborted -> ()))
  done;
  Util.run sys ~until:3_000_000;
  Alcotest.(check int) "class-2 transactions never conflict" 2 !c2_commits;
  Alcotest.(check bool) "class-1 transactions conflicted" true
    (!c1_commits >= 1);
  Util.assert_por sys

let test_serializable_mode_read_only_strong () =
  (* in STRONG mode even read-only transactions certify *)
  let sys = Util.make_system ~mode:U.Config.Strong () in
  U.System.preload sys 3 (Crdt.Reg_write 42);
  let v = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         v := Client.read_int c 3;
         ignore (Client.commit c)));
  Util.run sys ~until:2_000_000;
  Alcotest.(check int) "read committed" 42 !v;
  let h = U.System.history sys in
  Alcotest.(check int) "the transaction counted as strong" 1
    (U.History.committed_strong h);
  Util.assert_por sys

let test_redblue_mode () =
  let sys =
    Util.make_system ~mode:U.Config.Red_blue ~conflict:U.Config.All_strong ()
  in
  U.System.preload sys 4 (Crdt.Reg_write 0);
  let commits = ref 0 in
  for dc = 0 to 2 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           for i = 1 to 3 do
             let rec attempt n =
               Client.start c ~strong:true;
               let v = Client.read_int c 4 in
               Client.update c 4 (Crdt.Reg_write (v + 1));
               match Client.commit c with
               | `Committed _ -> incr commits
               | `Aborted -> if n < 20 then attempt (n + 1)
             in
             attempt 0;
             ignore i
           done))
  done;
  Util.run sys ~until:20_000_000;
  let final = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         Client.start c;
         final := Client.read_int c 4;
         ignore (Client.commit c)));
  Util.run sys ~until:21_000_000;
  Alcotest.(check int) "updates serialized by the central service" !commits
    !final;
  Alcotest.(check bool) "all clients progressed" true (!commits >= 3);
  Util.assert_convergence sys

let test_strong_lamport_order_matches_certification () =
  (* Property 5: conflicting strong transactions are ordered by strong
     timestamp, and the earlier is in the later's snapshot — exercised
     via the checker on a contended run *)
  let sys = Util.make_system () in
  U.System.preload sys 11 (Crdt.Reg_write 0);
  for dc = 0 to 2 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           for _ = 1 to 4 do
             let rec attempt n =
               Client.start c ~strong:true;
               ignore (Client.read_int c 11);
               Client.update c 11 (Crdt.Reg_write dc);
               match Client.commit c with
               | `Committed _ -> ()
               | `Aborted -> if n < 20 then attempt (n + 1)
             in
             attempt 0
           done))
  done;
  Util.run sys ~until:20_000_000;
  let txns = U.History.txns (U.System.history sys) in
  let strong_ts =
    List.filter_map
      (fun (r : U.History.txn_record) ->
        if r.h_strong then Some (Vclock.Vc.strong r.h_vec) else None)
      txns
  in
  Alcotest.(check int) "strong timestamps all distinct"
    (List.length strong_ts)
    (List.length (List.sort_uniq compare strong_ts));
  Util.assert_por sys

let test_strong_survives_mixed_causal_traffic () =
  (* causal transactions keep flowing while strong ones certify; strong
     snapshots must wait for causal dependencies to become uniform *)
  let sys = Util.make_system () in
  U.System.preload sys 12 (Crdt.Reg_write 0);
  let strong_ok = ref false in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         Client.update c 12 (Crdt.Reg_write 1);
         ignore (Client.commit c);
         (* immediately commit a strong transaction depending on it *)
         Client.start c ~strong:true;
         let v = Client.read_int c 12 in
         Client.update c 13 (Crdt.Reg_write (v * 10));
         (match Client.commit c with
         | `Committed _ -> strong_ok := true
         | `Aborted -> ())));
  let remote = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Fiber.sleep 2_000_000;
         Client.start c;
         remote := Client.read_int c 13;
         ignore (Client.commit c)));
  Util.run sys ~until:4_000_000;
  Alcotest.(check bool) "strong committed" true !strong_ok;
  Alcotest.(check int) "strong write visible remotely with its deps" 10
    !remote;
  Util.assert_por sys;
  Util.assert_convergence sys

(* Crash the Paxos leader DC while a strong transaction's 2PC is in
   flight. Whatever the crash timing relative to the PREPARE / ACCEPT /
   DECISION legs, the increment must be exactly-once: the coordinator's
   verdict matches the state every surviving DC converges to, and a
   transaction never both commits and aborts. The detector notices the
   crash, dc1 takes over the certification groups (Algorithm A10), and
   the coordinator's retry drives the transaction to a decision. *)
let leader_crash_run ~crash_offset_us =
  let sys = Util.make_system ~topo:(Net.Topology.n_dcs 5) ~partitions:3 () in
  U.System.preload sys 9 (Crdt.Ctr_add 0);
  let verdict = ref `Pending in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Fiber.sleep 20_000;
         Client.start c ~strong:true;
         Client.update c 9 (Crdt.Ctr_add 1);
         match Client.commit c with
         | `Committed _ -> verdict := `Committed
         | `Aborted -> verdict := `Aborted));
  Sim.Engine.schedule (U.System.engine sys)
    ~delay:(20_000 + crash_offset_us) (fun () -> U.System.fail_dc sys 0);
  Util.run sys ~until:15_000_000;
  (* read the counter back at every surviving DC *)
  let finals = ref [] in
  for dc = 1 to 4 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           Client.start c;
           finals := (dc, Client.read_int c 9) :: !finals;
           ignore (Client.commit c)))
  done;
  Util.run sys ~until:16_000_000;
  (!verdict, !finals)

let test_leader_crash_mid_certification () =
  (* offsets chosen to land the crash on different legs of the 2PC:
     before the PREPARE reaches Virginia, during certification, during
     the ACCEPT round, and around the DECISION *)
  List.iter
    (fun crash_offset_us ->
      let verdict, finals = leader_crash_run ~crash_offset_us in
      let expected =
        match verdict with
        | `Committed -> 1
        | `Aborted -> 0
        | `Pending ->
            Alcotest.failf "offset %dus: strong commit never resolved"
              crash_offset_us
      in
      List.iter
        (fun (dc, v) ->
          Alcotest.(check int)
            (Fmt.str "offset %dus: dc%d agrees with the %s verdict"
               crash_offset_us dc
               (if expected = 1 then "commit" else "abort"))
            expected v)
        finals)
    [ 0; 30_000; 60_000; 90_000; 120_000 ]

let suite =
  [
    Alcotest.test_case "overdraft anomaly under causal (§1)" `Quick
      test_overdraft_with_causal;
    Alcotest.test_case "overdraft prevented by strong txns (§1)" `Quick
      test_overdraft_with_strong;
    Alcotest.test_case "conflicting strong txns are serialized" `Slow
      test_conflicting_strong_ordered;
    Alcotest.test_case "non-conflicting strong txns all commit" `Quick
      test_nonconflicting_strong_commit;
    Alcotest.test_case "PoR class conflicts are selective" `Quick
      test_por_class_conflicts;
    Alcotest.test_case "STRONG mode certifies read-only txns" `Quick
      test_serializable_mode_read_only_strong;
    Alcotest.test_case "REDBLUE centralized certification" `Slow
      test_redblue_mode;
    Alcotest.test_case "strong timestamps distinct (Property 5)" `Slow
      test_strong_lamport_order_matches_certification;
    Alcotest.test_case "leader crash mid-certification is exactly-once"
      `Slow test_leader_crash_mid_certification;
    Alcotest.test_case "strong txns wait for uniform dependencies" `Quick
      test_strong_survives_mixed_causal_traffic;
  ]
