(* The exploration harness: schedule validation, the corpus/repro
   interchange format, oracle verdicts on a clean run, byte-determinism
   of the swarm loop, and the planted-bug self-test — flip
   [Store.Wal.unsafe_ack] (ack before fsync), let the explorer's own
   trial path catch the lost write with the durability oracle, shrink
   the failing schedule to a 1-minimal repro, and prove the repro
   document replays to the same failure. *)

module U = Unistore
module E = Explore.Explorer
module Oracle = Explore.Oracle

let cfg ?(persistence = false) () =
  U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:2 ~f:1
    ~persistence ()

let ok = Alcotest.(check bool) "validates" true
let rejected = Alcotest.(check bool) "rejected" false

let valid c s = Result.is_ok (U.Nemesis.validate c s)

(* --- Nemesis.validate: the documented schedule footguns ------------- *)

let test_validate_rules () =
  let crash_restart ?(dc = 1) ?(at = 1_000) () =
    [
      { U.Nemesis.at_us = at; ev = U.Nemesis.Crash_node { dc; part = 0 } };
      { at_us = at + 500; ev = U.Nemesis.Restart_node { dc; part = 0 } };
    ]
  in
  ok (valid (cfg ~persistence:true ()) (crash_restart ()));
  (* out of time order *)
  rejected
    (valid
       (cfg ~persistence:true ())
       [
         { U.Nemesis.at_us = 2_000; ev = U.Nemesis.Heal_all };
         { at_us = 1_000; ev = U.Nemesis.Crash_dc 1 };
       ]);
  (* node events need a disk to restart from *)
  rejected (valid (cfg ()) (crash_restart ()));
  (* node and DC failure domains must not mix on one DC *)
  rejected
    (valid
       (cfg ~persistence:true ())
       (crash_restart ()
       @ [ { U.Nemesis.at_us = 3_000; ev = U.Nemesis.Crash_dc 1 } ]));
  (* a restart must restart something *)
  rejected
    (valid
       (cfg ~persistence:true ())
       [
         {
           U.Nemesis.at_us = 1_000;
           ev = U.Nemesis.Restart_node { dc = 1; part = 0 };
         };
       ]);
  (* ... and interleaved cycles on one node leave the second restart
     with nothing to restart *)
  rejected
    (valid
       (cfg ~persistence:true ())
       [
         {
           U.Nemesis.at_us = 1_000;
           ev = U.Nemesis.Crash_node { dc = 1; part = 0 };
         };
         { at_us = 1_200; ev = U.Nemesis.Crash_node { dc = 1; part = 0 } };
         { at_us = 1_400; ev = U.Nemesis.Restart_node { dc = 1; part = 0 } };
         { at_us = 1_600; ev = U.Nemesis.Restart_node { dc = 1; part = 0 } };
       ]);
  (* sequential cycles on one node are fine *)
  ok
    (valid
       (cfg ~persistence:true ())
       (crash_restart ~at:1_000 () @ crash_restart ~at:5_000 ()))

(* Random schedules satisfy validate by construction — including
   multiple node-crash cycles, which may draw the same node twice and
   must not interleave its down windows. *)
let test_random_schedule_validates () =
  let c = cfg ~persistence:true () in
  for seed = 1 to 100 do
    let sched =
      U.Nemesis.random_schedule ~seed ~dcs:3 ~horizon_us:4_000_000
        ~max_crashes:0 ~max_node_crashes:3 ~node_partitions:2 ()
    in
    match U.Nemesis.validate c sched with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d generated an invalid schedule: %s" seed e
  done

(* --- interchange ---------------------------------------------------- *)

let test_schedule_json_roundtrip () =
  let sched =
    [
      { U.Nemesis.at_us = 100; ev = U.Nemesis.Crash_dc 1 };
      { at_us = 200; ev = U.Nemesis.Recover_dc 1 };
      { at_us = 300; ev = U.Nemesis.Partition (0, 2) };
      { at_us = 400; ev = U.Nemesis.Heal (0, 2) };
      { at_us = 500; ev = U.Nemesis.Degrade { src = 0; dst = 1; extra_us = 7 } };
      { at_us = 600; ev = U.Nemesis.Restore { src = 0; dst = 1 } };
      { at_us = 700; ev = U.Nemesis.Set_drop 0.05 };
      { at_us = 800; ev = U.Nemesis.Crash_node { dc = 2; part = 1 } };
      { at_us = 900; ev = U.Nemesis.Restart_node { dc = 2; part = 1 } };
      { at_us = 1_000; ev = U.Nemesis.Slow_disk { dc = 2; part = 1; factor = 8 } };
      { at_us = 1_100; ev = U.Nemesis.Restore_disk { dc = 2; part = 1 } };
      { at_us = 1_200; ev = U.Nemesis.Heal_all };
    ]
  in
  match U.Nemesis.schedule_of_json (U.Nemesis.schedule_to_json sched) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok back ->
      Alcotest.(check bool) "schedule survives JSON round-trip" true (back = sched)

(* A fault-free profile for oracle sanity and the planted-bug test. *)
let quiet_profile ?(max_node_crashes = 0) () =
  {
    E.p_dcs = 3;
    p_f = 1;
    p_partitions = 2;
    p_persistence = true;
    p_admission = 0;
    p_lossy = false;
    p_open_rate = None;
    p_clients = 3;
    p_strong_ratio = 0.1;
    p_keys = 100;
    p_max_crashes = 0;
    p_max_recoveries = 0;
    p_max_partitions = 0;
    p_max_degrades = 0;
    p_max_sync_partitions = 0;
    p_max_sync_degrades = 0;
    p_max_node_crashes = max_node_crashes;
    p_horizon_us = 4_000_000;
  }

let test_profile_json_roundtrip () =
  let p = quiet_profile ~max_node_crashes:2 () in
  match E.profile_of_json (E.profile_to_json p) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok back ->
      Alcotest.(check bool) "profile survives JSON round-trip" true (back = p)

(* --- oracles on a clean run ----------------------------------------- *)

let test_clean_run_oracles_pass () =
  let p = quiet_profile () in
  let seed = 11 in
  let sched = E.schedule_of p ~seed in
  let verdicts, _sys = E.run_with p ~seed ~sched in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Fmt.str "oracle %s passes on a clean run (%s)" v.Oracle.oracle
           v.Oracle.detail)
        true v.Oracle.pass)
    verdicts

(* --- determinism of the swarm loop ---------------------------------- *)

let test_explore_deterministic () =
  let run () =
    let o = E.explore ~horizon_us:3_000_000 ~trials:2 ~seed:5 () in
    List.map
      (fun t -> (t.E.t_seed, t.E.t_fingerprint, t.E.t_novel))
      o.E.o_trials
  in
  let a = run () and b = run () in
  Alcotest.(check bool)
    "two explorations from one seed produce identical fingerprints" true
    (a = b && List.length a = 2)

(* --- the planted bug ------------------------------------------------- *)

(* Acking a write before its WAL record is fsynced is exactly the bug
   the durability oracle exists to catch: a node crash in the
   ack-to-fsync window silently discards a PREPARE whose coordinator
   goes on to commit — the client saw the ack, no replica ever applies
   the write. Flip the hook, let the explorer's trial path find it,
   shrink the schedule, and replay the repro document. *)
let test_planted_bug_found_shrunk_replayed () =
  let p = quiet_profile ~max_node_crashes:2 () in
  let seed = 5 in
  let sched = E.schedule_of p ~seed in
  (* sanity: the same trial is green without the bug *)
  let clean, _ = E.run_with p ~seed ~sched in
  Alcotest.(check bool) "trial passes without the planted bug" true
    (Oracle.ok clean);
  Fun.protect
    ~finally:(fun () -> Store.Wal.unsafe_ack := false)
    (fun () ->
      Store.Wal.unsafe_ack := true;
      (* the explorer's own trial path flags the violation *)
      let trial = E.run_trial ~index:0 p ~seed in
      let failing =
        match Oracle.first_failure trial.E.t_verdicts with
        | Some v -> v
        | None -> Alcotest.fail "planted bug not caught by any oracle"
      in
      Alcotest.(check string)
        "the durability oracle catches the unsafe ack" "durability"
        failing.Oracle.oracle;
      let case = E.case_of_trial trial in
      let fails = E.schedule_fails case ~oracle:"durability" in
      let minimal = Explore.Shrink.minimize ~fails trial.E.t_schedule in
      Alcotest.(check bool) "minimal schedule still fails" true (fails minimal);
      Alcotest.(check bool) "shrinking made it no larger" true
        (List.length minimal <= List.length trial.E.t_schedule);
      (* 1-minimality at the atom level: dropping any remaining fault
         atom — a crash grouped with its closing restart — makes it
         pass (Heal_all is structural, the shrinker always keeps it).
         Dropping only the restart is NOT required to defuse it: the
         unsafe-acked write is lost at crash time. *)
      let atom_of i (s : U.Nemesis.step) =
        match s.ev with
        | U.Nemesis.Crash_node { dc; part } | U.Nemesis.Restart_node { dc; part }
          ->
            Some (`Node (dc, part))
        | U.Nemesis.Heal_all -> None
        | _ -> Some (`Step i)
      in
      let atoms =
        List.sort_uniq compare
          (List.concat
             (List.mapi (fun i s -> Option.to_list (atom_of i s)) minimal))
      in
      List.iter
        (fun atom ->
          let without =
            List.filteri (fun i s -> atom_of i s <> Some atom) minimal
          in
          Alcotest.(check bool)
            "dropping any remaining fault atom defuses the repro" false
            (fails without))
        atoms;
      (* the repro document replays to the same failure *)
      let repro =
        E.repro_to_json { case with E.c_schedule = minimal } ~failing
      in
      match E.case_of_json repro with
      | Error e -> Alcotest.failf "repro document does not parse: %s" e
      | Ok back -> (
          let verdicts, _ = E.replay back in
          match Oracle.first_failure verdicts with
          | Some v ->
              Alcotest.(check string) "replayed repro fails the same oracle"
                "durability" v.Oracle.oracle
          | None -> Alcotest.fail "replayed repro did not fail"))

let suite =
  [
    Alcotest.test_case "validate rejects the documented footguns" `Quick
      test_validate_rules;
    Alcotest.test_case "random schedules validate by construction" `Quick
      test_random_schedule_validates;
    Alcotest.test_case "schedule JSON round-trips" `Quick
      test_schedule_json_roundtrip;
    Alcotest.test_case "profile JSON round-trips" `Quick
      test_profile_json_roundtrip;
    Alcotest.test_case "all oracles pass on a clean run" `Quick
      test_clean_run_oracles_pass;
    Alcotest.test_case "exploration is deterministic under its seed" `Slow
      test_explore_deterministic;
    Alcotest.test_case "planted unsafe-ack bug: found, shrunk, replayed" `Slow
      test_planted_bug_found_shrunk_replayed;
  ]
