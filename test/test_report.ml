(* Machine-readable run reports: schema, determinism (golden fixed-seed
   stability), phase instrumentation, Chrome-trace export. *)

module U = Unistore
module Client = U.Client
module Json = Sim.Json

(* A small fixed-seed run mixing causal and strong transactions. *)
let workload_run ?(seed = 42) () =
  let sys = Util.make_system ~seed ~trace_enabled:true () in
  U.System.set_window sys ~start:0 ~stop:5_000_000;
  for k = 1 to 4 do
    U.System.preload sys k (Crdt.Reg_write 0)
  done;
  for dc = 0 to 2 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           for i = 1 to 8 do
             let strong = i mod 4 = 0 in
             let rec attempt n =
               Client.start c ~strong;
               let k = 1 + ((i + dc) mod 4) in
               let v = Client.read_int c k in
               Client.update c k (Crdt.Reg_write (v + 1));
               match Client.commit c with
               | `Committed _ -> ()
               | `Aborted -> if n < 10 then attempt (n + 1)
             in
             attempt 0
           done))
  done;
  Util.run sys ~until:5_000_000;
  sys

let mem name j = Option.value ~default:Json.Null (Json.member name j)

let member_exn name j =
  match Json.member name j with
  | None | Some Json.Null -> Alcotest.failf "field %s missing" name
  | Some v -> v

let test_schema () =
  let sys = workload_run () in
  let j = U.Report.of_system ~name:"unit" sys in
  Alcotest.(check (option string))
    "name" (Some "unit")
    (Json.to_string_opt (member_exn "name" j));
  Alcotest.(check (option string))
    "mode" (Some "unistore")
    (Json.to_string_opt (member_exn "mode" j));
  Alcotest.(check (option int)) "seed" (Some 42)
    (Json.to_int_opt (member_exn "seed" j));
  List.iter
    (fun field -> ignore (member_exn field j))
    [
      "simulated_us"; "throughput_tx_s"; "committed"; "committed_strong";
      "aborted_strong"; "abort_rate_pct"; "latency"; "strong_phases";
      "metrics";
    ];
  let lat = member_exn "latency" j in
  List.iter
    (fun cls ->
      let l = member_exn cls lat in
      List.iter
        (fun f -> ignore (member_exn f l))
        [ "count"; "mean_ms"; "p50_ms"; "p90_ms"; "p99_ms" ])
    [ "all"; "causal"; "strong" ];
  (* the document round-trips through the JSON printer and parser *)
  match Json.of_string_opt (Json.to_string_pretty j) with
  | None -> Alcotest.fail "report does not parse back"
  | Some _ -> ()

(* The acceptance property of the observability layer: with a fixed seed
   the artifact is byte-identical across runs. *)
let test_fixed_seed_stable () =
  let render () =
    Json.to_string_pretty (U.Report.of_system ~name:"golden" (workload_run ()))
  in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical artifact" a b

let test_seed_changes_artifact () =
  let render seed =
    Json.to_string_pretty
      (U.Report.of_system ~name:"golden" (workload_run ~seed ()))
  in
  Alcotest.(check bool) "different seed, different run" false
    (String.equal (render 42) (render 43))

let test_phase_breakdown_present () =
  let sys = workload_run () in
  let j = U.Report.of_system sys in
  let phases =
    match Json.to_list_opt (member_exn "strong_phases" j) with
    | Some l -> l
    | None -> Alcotest.fail "strong_phases not a list"
  in
  let names =
    List.filter_map (fun p -> Json.to_string_opt (mem "phase" p)) phases
  in
  Alcotest.(check (list string))
    "lifecycle order" [ "execute"; "uniform_wait"; "certify" ] names;
  List.iter
    (fun p ->
      match Json.to_int_opt (mem "count" p) with
      | Some n -> Alcotest.(check bool) "phase observed" true (n > 0)
      | None -> Alcotest.fail "count missing")
    phases;
  (* the text reporters print something for the same run *)
  Alcotest.(check bool) "breakdown prints" true
    (String.length (Fmt.str "%a" U.Report.pp_phase_breakdown sys) > 0);
  Alcotest.(check bool) "uniformity lag prints" true
    (String.length (Fmt.str "%a" U.Report.pp_uniformity_lag sys) > 0)

let test_lifecycle_metrics () =
  let sys = workload_run () in
  let reg = U.System.metrics sys in
  let counter name =
    Sim.Metrics.counter_value (Sim.Metrics.counter reg name)
  in
  let h = U.System.history sys in
  Alcotest.(check int) "txn_committed_total matches history"
    (U.History.committed_total h)
    (counter "txn_committed_total");
  Alcotest.(check int) "strong_committed_total matches history"
    (U.History.committed_strong h)
    (counter "strong_committed_total");
  (* network counters saw traffic *)
  let sent =
    List.fold_left
      (fun acc (_, c) -> acc + Sim.Metrics.counter_value c)
      0
      (Sim.Metrics.counters_matching reg "net_sent_total")
  in
  Alcotest.(check bool) "messages counted" true (sent > 0)

let test_chrome_trace_valid () =
  let sys = workload_run () in
  let j = Sim.Trace.chrome_json (U.System.trace sys) in
  match Json.of_string_opt (Json.to_string j) with
  | None -> Alcotest.fail "chrome trace does not parse"
  | Some parsed -> (
      match Json.to_list_opt (mem "traceEvents" parsed) with
      | None -> Alcotest.fail "traceEvents missing"
      | Some events ->
          Alcotest.(check bool) "events present" true (List.length events > 0);
          (* every event has the required trace-event fields; duration
             events carry a dur *)
          List.iter
            (fun e ->
              match Json.to_string_opt (mem "ph" e) with
              | None -> Alcotest.fail "ph missing"
              | Some "M" -> ()
              | Some "X" ->
                  Alcotest.(check bool) "dur present" true
                    (Json.to_int_opt (mem "dur" e) <> None)
              | Some _ ->
                  Alcotest.(check bool) "ts present" true
                    (Json.to_int_opt (mem "ts" e) <> None))
            events;
          (* transaction lifecycle spans made it into the trace *)
          let has_kind k =
            List.exists
              (fun e ->
                match Json.to_string_opt (mem "name" e) with
                | Some n -> n = k
                | None -> false)
              events
          in
          Alcotest.(check bool) "certify spans" true (has_kind "certify");
          Alcotest.(check bool) "execute spans" true (has_kind "execute"))

let suite =
  [
    Alcotest.test_case "report schema" `Quick test_schema;
    Alcotest.test_case "fixed seed is byte-stable" `Quick
      test_fixed_seed_stable;
    Alcotest.test_case "seed changes the artifact" `Quick
      test_seed_changes_artifact;
    Alcotest.test_case "strong phase breakdown" `Quick
      test_phase_breakdown_present;
    Alcotest.test_case "lifecycle counters match history" `Quick
      test_lifecycle_metrics;
    Alcotest.test_case "chrome trace export is valid" `Quick
      test_chrome_trace_valid;
  ]
