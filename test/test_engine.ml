(* Discrete-event engine: ordering, time limits, periodic tasks,
   determinism. *)

let test_time_ordering () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule eng ~delay:30 (fun () -> log := 30 :: !log);
  Sim.Engine.schedule eng ~delay:10 (fun () -> log := 10 :: !log);
  Sim.Engine.schedule eng ~delay:20 (fun () -> log := 20 :: !log);
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Sim.Engine.now eng)

let test_same_time_fifo () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.Engine.schedule eng ~delay:5 (fun () -> log := i :: !log)
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int))
    "insertion order at same instant"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_nested_scheduling () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule eng ~delay:10 (fun () ->
      log := "a" :: !log;
      Sim.Engine.schedule eng ~delay:5 (fun () -> log := "c" :: !log);
      Sim.Engine.schedule eng ~delay:0 (fun () -> log := "b" :: !log));
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "nested" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "final time" 15 (Sim.Engine.now eng)

let test_until_limit () =
  let eng = Sim.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Sim.Engine.schedule eng ~delay:d (fun () -> fired := d :: !fired))
    [ 10; 20; 30; 40 ];
  Sim.Engine.run eng ~until:25;
  Alcotest.(check (list int)) "events within limit" [ 10; 20 ] (List.rev !fired);
  Alcotest.(check int) "clock clamped to limit" 25 (Sim.Engine.now eng)

let test_until_preserves_future_events () =
  (* Regression: [run ~until] used to pop-and-drop the first event past
     the limit, so sliced runs silently killed retransmission timers and
     self-rescheduling periodic loops. *)
  let eng = Sim.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Sim.Engine.schedule eng ~delay:d (fun () -> fired := d :: !fired))
    [ 10; 20; 30; 40 ];
  Sim.Engine.run eng ~until:25;
  Sim.Engine.run eng ~until:35;
  Alcotest.(check (list int)) "30 survives the slice boundary" [ 10; 20; 30 ]
    (List.rev !fired);
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "all fire across slices" [ 10; 20; 30; 40 ]
    (List.rev !fired);
  let ticks = ref 0 in
  let eng2 = Sim.Engine.create () in
  Sim.Engine.every eng2 ~period:10 (fun () ->
      incr ticks;
      !ticks < 100);
  (* many slice boundaries, none aligned with the ticks *)
  for i = 1 to 100 do
    Sim.Engine.run eng2 ~until:(i * 11)
  done;
  Alcotest.(check int) "periodic loop survives 100 slices" 100 !ticks

let test_stop () =
  let eng = Sim.Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Sim.Engine.schedule eng ~delay:1 (fun () ->
        incr count;
        if !count = 3 then Sim.Engine.stop eng)
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "stopped after third event" 3 !count

let test_every () =
  let eng = Sim.Engine.create () in
  let ticks = ref 0 in
  Sim.Engine.every eng ~period:100 (fun () ->
      incr ticks;
      !ticks < 5);
  Sim.Engine.run eng;
  Alcotest.(check int) "five ticks" 5 !ticks;
  Alcotest.(check int) "stopped at t=500" 500 (Sim.Engine.now eng)

let test_every_phase () =
  let eng = Sim.Engine.create () in
  let first = ref (-1) in
  Sim.Engine.every eng ~period:100 ~phase:37 (fun () ->
      if !first < 0 then first := Sim.Engine.now eng;
      false);
  Sim.Engine.run eng;
  Alcotest.(check int) "first firing honours phase" 37 !first

let test_negative_delay_rejected () =
  let eng = Sim.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Sim.Engine.schedule eng ~delay:(-1) (fun () -> ()))

let test_determinism () =
  let run seed =
    let eng = Sim.Engine.create ~seed () in
    let rng = Sim.Engine.rng eng in
    let log = ref [] in
    let rec chain n =
      if n > 0 then
        Sim.Engine.schedule eng ~delay:(1 + Sim.Rng.int rng 100) (fun () ->
            log := Sim.Engine.now eng :: !log;
            chain (n - 1))
    in
    chain 50;
    Sim.Engine.run eng;
    !log
  in
  Alcotest.(check (list int)) "same seed, same trace" (run 42) (run 42);
  Alcotest.(check bool) "different seed, different trace" true
    (run 42 <> run 43)

let test_counters () =
  let eng = Sim.Engine.create () in
  Sim.Engine.schedule eng ~delay:1 (fun () -> ());
  Sim.Engine.schedule eng ~delay:2 (fun () -> ());
  Alcotest.(check int) "pending before run" 2 (Sim.Engine.pending_events eng);
  Sim.Engine.run eng;
  Alcotest.(check int) "executed after run" 2 (Sim.Engine.executed_events eng);
  Alcotest.(check int) "queue drained" 0 (Sim.Engine.pending_events eng)

let test_schedule_at_past_clamps () =
  let eng = Sim.Engine.create () in
  let fired = ref (-1) in
  Sim.Engine.schedule eng ~delay:100 (fun () ->
      (* scheduling into the past clamps to now *)
      Sim.Engine.schedule_at eng ~time:10 (fun () -> fired := Sim.Engine.now eng));
  Sim.Engine.run eng;
  Alcotest.(check int) "clamped to now" 100 !fired

let suite =
  [
    Alcotest.test_case "events fire in time order" `Quick test_time_ordering;
    Alcotest.test_case "same-instant events keep FIFO order" `Quick
      test_same_time_fifo;
    Alcotest.test_case "handlers can schedule" `Quick test_nested_scheduling;
    Alcotest.test_case "run ~until stops the clock" `Quick test_until_limit;
    Alcotest.test_case "run ~until keeps future events queued" `Quick
      test_until_preserves_future_events;
    Alcotest.test_case "stop halts the loop" `Quick test_stop;
    Alcotest.test_case "periodic task runs while true" `Quick test_every;
    Alcotest.test_case "periodic task honours phase" `Quick test_every_phase;
    Alcotest.test_case "negative delays rejected" `Quick
      test_negative_delay_rejected;
    Alcotest.test_case "runs are deterministic" `Quick test_determinism;
    Alcotest.test_case "event counters" `Quick test_counters;
    Alcotest.test_case "past schedule_at clamps to now" `Quick
      test_schedule_at_past_clamps;
  ]
