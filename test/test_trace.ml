(* Structured event tracing. *)

let mk ?(capacity = 100) ?(enabled = true) clock =
  Sim.Trace.create ~capacity ~clock ~enabled ()

let test_emit_and_read () =
  let now = ref 0 in
  let tr = mk (fun () -> !now) in
  Sim.Trace.emit tr ~source:"a" ~kind:"x" "first";
  now := 10;
  Sim.Trace.emit tr ~source:"b" ~kind:"y" "second";
  Alcotest.(check int) "length" 2 (Sim.Trace.length tr);
  match Sim.Trace.events tr with
  | [ e1; e2 ] ->
      Alcotest.(check int) "timestamps" 0 e1.Sim.Trace.ev_time;
      Alcotest.(check int) "timestamps" 10 e2.Sim.Trace.ev_time;
      Alcotest.(check string) "detail" "second" e2.Sim.Trace.ev_detail
  | _ -> Alcotest.fail "expected two events"

let test_filters () =
  let tr = mk (fun () -> 0) in
  Sim.Trace.emit tr ~source:"r1" ~kind:"commit" "a";
  Sim.Trace.emit tr ~source:"r1" ~kind:"replicate" "b";
  Sim.Trace.emit tr ~source:"r2" ~kind:"commit" "c";
  Alcotest.(check int) "by kind" 2 (Sim.Trace.count ~kind:"commit" tr);
  Alcotest.(check int) "by source" 2 (Sim.Trace.count ~source:"r1" tr);
  Alcotest.(check int) "by both" 1
    (Sim.Trace.count ~source:"r1" ~kind:"commit" tr)

let test_disabled_is_noop () =
  let tr = Sim.Trace.disabled in
  Sim.Trace.emit tr ~source:"a" ~kind:"x" "ignored";
  Alcotest.(check int) "nothing recorded" 0 (Sim.Trace.length tr);
  Alcotest.(check bool) "disabled" false (Sim.Trace.enabled tr)

let test_capacity_drops () =
  let tr = mk ~capacity:3 (fun () -> 0) in
  for i = 1 to 5 do
    Sim.Trace.emit tr ~source:"a" ~kind:"x" (string_of_int i)
  done;
  Alcotest.(check int) "capped" 3 (Sim.Trace.length tr);
  Alcotest.(check int) "drops counted" 2 (Sim.Trace.dropped tr)

let test_between () =
  let now = ref 0 in
  let tr = mk (fun () -> !now) in
  List.iter
    (fun t ->
      now := t;
      Sim.Trace.emit tr ~source:"a" ~kind:"x" "e")
    [ 5; 15; 25; 35 ];
  Alcotest.(check int) "interval" 2
    (List.length (Sim.Trace.between tr ~start:10 ~stop:30))

let test_summary () =
  let tr = mk (fun () -> 0) in
  for _ = 1 to 3 do
    Sim.Trace.emit tr ~source:"a" ~kind:"commit" ""
  done;
  Sim.Trace.emit tr ~source:"a" ~kind:"deliver" "";
  Alcotest.(check (list (pair string int)))
    "histogram sorted"
    [ ("commit", 3); ("deliver", 1) ]
    (Sim.Trace.summary tr)

let test_growth_boundary () =
  (* the backing array starts at 4096 and doubles up to capacity: filling
     straight through the growth boundary loses nothing and keeps order *)
  let tr = mk ~capacity:6000 (fun () -> 0) in
  for i = 1 to 6000 do
    Sim.Trace.emit tr ~source:"a" ~kind:"x" (string_of_int i)
  done;
  Alcotest.(check int) "all kept" 6000 (Sim.Trace.length tr);
  Alcotest.(check int) "no drops" 0 (Sim.Trace.dropped tr);
  (match Sim.Trace.events tr with
  | first :: _ -> Alcotest.(check string) "order kept" "1" first.Sim.Trace.ev_detail
  | [] -> Alcotest.fail "no events");
  Sim.Trace.emit tr ~source:"a" ~kind:"x" "overflow";
  Alcotest.(check int) "capped at capacity" 6000 (Sim.Trace.length tr);
  Alcotest.(check int) "overflow dropped" 1 (Sim.Trace.dropped tr)

let test_spans () =
  let now = ref 50 in
  let tr = mk (fun () -> !now) in
  Sim.Trace.emit_span tr ~source:"c" ~kind:"certify" ~start:20 "tx";
  (* a span whose clock ran backwards clamps to zero duration *)
  Sim.Trace.emit_span tr ~source:"c" ~kind:"weird" ~start:90 "tx";
  match Sim.Trace.events tr with
  | [ s1; s2 ] ->
      Alcotest.(check int) "span start" 20 s1.Sim.Trace.ev_time;
      Alcotest.(check int) "span duration" 30 s1.Sim.Trace.ev_dur;
      Alcotest.(check int) "clamped duration" 0 s2.Sim.Trace.ev_dur
  | _ -> Alcotest.fail "expected two spans"

let test_chrome_export () =
  let now = ref 0 in
  let tr = mk (fun () -> !now) in
  Sim.Trace.emit tr ~source:"replica 0.0" ~kind:"commit" "t1";
  now := 40;
  Sim.Trace.emit_span tr ~source:"client 1" ~kind:"execute" ~start:10 "t2";
  let j = Sim.Trace.chrome_json tr in
  match Sim.Json.of_string_opt (Sim.Json.to_string j) with
  | None -> Alcotest.fail "chrome export does not parse"
  | Some parsed -> (
      match
        Option.bind (Sim.Json.member "traceEvents" parsed) Sim.Json.to_list_opt
      with
      | None -> Alcotest.fail "traceEvents missing"
      | Some events ->
          let phs =
            List.filter_map
              (fun e ->
                Option.bind (Sim.Json.member "ph" e) Sim.Json.to_string_opt)
              events
          in
          (* two thread-name metadata records, one instant, one span *)
          Alcotest.(check int) "metadata per source" 2
            (List.length (List.filter (String.equal "M") phs));
          Alcotest.(check int) "one instant" 1
            (List.length (List.filter (String.equal "i") phs));
          Alcotest.(check int) "one duration event" 1
            (List.length (List.filter (String.equal "X") phs)))

(* End-to-end: a traced protocol run produces commit and replication
   events with plausible structure. *)
let test_protocol_trace () =
  let module U = Unistore in
  let cfg =
    U.Config.default ~partitions:2 ~trace_enabled:true ()
  in
  let sys = U.System.create cfg in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         for i = 1 to 5 do
           U.Client.start c;
           U.Client.update c i (Crdt.Reg_write i);
           ignore (U.Client.commit c)
         done));
  U.System.run sys ~until:1_000_000;
  let tr = U.System.trace sys in
  Alcotest.(check bool) "commits traced" true
    (Sim.Trace.count ~kind:"commit" tr >= 5);
  Alcotest.(check bool) "replication traced" true
    (Sim.Trace.count ~kind:"replicate" tr > 0);
  (* commit events appear at the origin DC's replicas *)
  Alcotest.(check bool) "origin source labelled" true
    (List.for_all
       (fun e ->
         String.length e.Sim.Trace.ev_source > 0
         && String.sub e.Sim.Trace.ev_source 0 9 = "replica 0")
       (Sim.Trace.events ~kind:"commit" tr))

let suite =
  [
    Alcotest.test_case "emit and read back" `Quick test_emit_and_read;
    Alcotest.test_case "source/kind filters" `Quick test_filters;
    Alcotest.test_case "disabled trace is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "capacity bounds the log" `Quick test_capacity_drops;
    Alcotest.test_case "time-interval filter" `Quick test_between;
    Alcotest.test_case "growth through the doubling boundary" `Quick
      test_growth_boundary;
    Alcotest.test_case "duration spans" `Quick test_spans;
    Alcotest.test_case "chrome trace-event export" `Quick test_chrome_export;
    Alcotest.test_case "per-kind summary" `Quick test_summary;
    Alcotest.test_case "protocol runs leave a readable trace" `Quick
      test_protocol_trace;
  ]
