(* Entry point: every suite registered here runs under `dune runtest`. *)

let () =
  Alcotest.run "unistore"
    [
      ("heap", Test_heap.suite);
      ("rng", Test_rng.suite);
      ("zipf", Test_zipf.suite);
      ("stats", Test_stats.suite);
      ("metrics", Test_metrics.suite);
      ("engine", Test_engine.suite);
      ("fiber", Test_fiber.suite);
      ("vc", Test_vc.suite);
      ("crdt", Test_crdt.suite);
      ("oplog", Test_oplog.suite);
      ("keyspace", Test_keyspace.suite);
      ("network", Test_network.suite);
      ("trace", Test_trace.suite);
      ("prof", Test_prof.suite);
      ("protocol", Test_protocol_basic.suite);
      ("protocol-edge", Test_protocol_edge.suite);
      ("strong", Test_strong.suite);
      ("cert", Test_cert.suite);
      ("failures", Test_failures.suite);
      ("config", Test_config.suite);
      ("history", Test_history.suite);
      ("checker", Test_checker.suite);
      ("abstract-exec", Test_abstract_exec.suite);
      ("workloads", Test_workloads.suite);
      ("openloop", Test_openloop.suite);
      ("admission", Test_admission.suite);
      ("nemesis", Test_nemesis.suite);
      ("recovery", Test_recovery.suite);
      ("persistence", Test_persistence.suite);
      ("adversity", Test_adversity.suite);
      ("report", Test_report.suite);
      ("explore", Test_explore.suite);
      ("properties", Test_properties.suite);
    ]
