(* CRDTs: semantics of each type and convergence under permuted
   delivery. *)

module Vc = Vclock.Vc

let tag lc origin = { Crdt.lc; origin }

let vec entries =
  let v = Vc.create ~dcs:2 in
  List.iteri (fun i x -> Vc.set v i x) entries;
  v

let apply ops =
  List.fold_left
    (fun st (op, t, v) -> Crdt.apply st op ~tag:t ~vec:v)
    Crdt.empty ops

let value_t = Alcotest.testable Crdt.value_pp ( = )

let test_lww_register () =
  let st =
    apply
      [
        (Crdt.Reg_write 1, tag 1 0, vec [ 1; 0 ]);
        (Crdt.Reg_write 2, tag 3 0, vec [ 2; 0 ]);
        (Crdt.Reg_write 3, tag 2 0, vec [ 0; 1 ]);
      ]
  in
  Alcotest.check value_t "highest tag wins" (Crdt.V_int 2) (Crdt.read st)

let test_lww_tie_break_by_origin () =
  let st =
    apply
      [
        (Crdt.Reg_write 1, tag 5 1, vec [ 1; 0 ]);
        (Crdt.Reg_write 2, tag 5 2, vec [ 0; 1 ]);
      ]
  in
  Alcotest.check value_t "higher origin wins ties" (Crdt.V_int 2)
    (Crdt.read st)

let test_counter () =
  let st =
    apply
      [
        (Crdt.Ctr_add 5, tag 1 0, vec [ 1; 0 ]);
        (Crdt.Ctr_add (-2), tag 2 0, vec [ 2; 0 ]);
        (Crdt.Ctr_add 10, tag 1 1, vec [ 0; 1 ]);
      ]
  in
  Alcotest.check value_t "sums all increments" (Crdt.V_int 13) (Crdt.read st)

let test_set_add_remove () =
  let st =
    apply
      [
        (Crdt.Set_add 1, tag 1 0, vec [ 1; 0 ]);
        (Crdt.Set_add 2, tag 2 0, vec [ 2; 0 ]);
        (Crdt.Set_remove 1, tag 3 0, vec [ 3; 0 ]);
        (Crdt.Set_add 3, tag 4 0, vec [ 4; 0 ]);
      ]
  in
  Alcotest.check value_t "remove wins by tag" (Crdt.V_set [ 2; 3 ])
    (Crdt.read st)

let test_set_concurrent_add_remove () =
  (* concurrent add (higher tag) beats remove (lower tag) *)
  let st =
    apply
      [
        (Crdt.Set_add 7, tag 1 0, vec [ 1; 0 ]);
        (Crdt.Set_remove 7, tag 2 0, vec [ 2; 0 ]);
        (Crdt.Set_add 7, tag 3 1, vec [ 0; 1 ]);
      ]
  in
  Alcotest.check value_t "later add survives" (Crdt.V_set [ 7 ]) (Crdt.read st)

let test_mv_register_concurrent () =
  let st =
    apply
      [
        (Crdt.Mv_write 1, tag 1 0, vec [ 1; 0 ]);
        (Crdt.Mv_write 2, tag 1 1, vec [ 0; 1 ]);
      ]
  in
  Alcotest.check value_t "concurrent writes both kept"
    (Crdt.V_multi [ 1; 2 ]) (Crdt.read st)

let test_mv_register_dominated () =
  let st =
    apply
      [
        (Crdt.Mv_write 1, tag 1 0, vec [ 1; 0 ]);
        (Crdt.Mv_write 2, tag 2 0, vec [ 2; 1 ]);
      ]
  in
  Alcotest.check value_t "dominated write dropped" (Crdt.V_multi [ 2 ])
    (Crdt.read st)

let test_type_confusion_rejected () =
  let st = apply [ (Crdt.Reg_write 1, tag 1 0, vec [ 1; 0 ]) ] in
  Alcotest.(check bool) "counter op on register raises" true
    (try
       ignore (Crdt.apply st (Crdt.Ctr_add 1) ~tag:(tag 2 0) ~vec:(vec [ 2; 0 ]));
       false
     with Invalid_argument _ -> true)

let test_apply_to_value () =
  Alcotest.check value_t "reg overlay" (Crdt.V_int 9)
    (Crdt.apply_to_value (Crdt.V_int 1) (Crdt.Reg_write 9));
  Alcotest.check value_t "ctr overlay" (Crdt.V_int 4)
    (Crdt.apply_to_value (Crdt.V_int 1) (Crdt.Ctr_add 3));
  Alcotest.check value_t "ctr overlay on none" (Crdt.V_int 3)
    (Crdt.apply_to_value Crdt.V_none (Crdt.Ctr_add 3));
  Alcotest.check value_t "set add overlay" (Crdt.V_set [ 1; 2 ])
    (Crdt.apply_to_value (Crdt.V_set [ 1 ]) (Crdt.Set_add 2));
  Alcotest.check value_t "set remove overlay" (Crdt.V_set [ 1 ])
    (Crdt.apply_to_value (Crdt.V_set [ 1; 2 ]) (Crdt.Set_remove 2))

(* --- convergence: same operation set, any order, same value --------- *)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun v -> Crdt.Reg_write v) (int_bound 100));
        (0, return (Crdt.Reg_write 0));
      ])

let gen_tagged which =
  QCheck.Gen.(
    map
      (fun (lc, origin, payload) ->
        let op =
          match which with
          | `Reg -> Crdt.Reg_write payload
          | `Ctr -> Crdt.Ctr_add (payload - 50)
          | `Set ->
              if payload mod 3 = 0 then Crdt.Set_remove (payload mod 10)
              else Crdt.Set_add (payload mod 10)
        in
        (op, tag lc origin, vec [ lc; origin ]))
      (triple (int_bound 1000) (int_bound 5) (int_bound 100)))

let convergence_test name which =
  QCheck.Test.make ~name ~count:200
    QCheck.(
      make
        Gen.(
          pair (list_size (int_range 0 20) (gen_tagged which)) (int_bound 1000)))
    (fun (ops, seed) ->
      ignore gen_op;
      (* tags are unique in the real system ((origin, lc) names one op);
         the generator can repeat a tag with a different payload, which no
         deterministic tie-break can order — drop such duplicates *)
      let ops =
        List.sort_uniq (fun (_, t1, _) (_, t2, _) -> compare t1 t2) ops
      in
      let shuffled =
        let arr = Array.of_list ops in
        Sim.Rng.shuffle (Sim.Rng.create seed) arr;
        Array.to_list arr
      in
      Crdt.read (apply ops) = Crdt.read (apply shuffled))

let qcheck_reg_convergence =
  convergence_test "LWW register converges under permutation" `Reg

let qcheck_ctr_convergence =
  convergence_test "counter converges under permutation" `Ctr

let qcheck_set_convergence =
  convergence_test "LWW-element set converges under permutation" `Set

let suite =
  [
    Alcotest.test_case "LWW register: last writer wins" `Quick
      test_lww_register;
    Alcotest.test_case "LWW register: ties break by origin" `Quick
      test_lww_tie_break_by_origin;
    Alcotest.test_case "PN-counter sums" `Quick test_counter;
    Alcotest.test_case "set add/remove by tag order" `Quick
      test_set_add_remove;
    Alcotest.test_case "set concurrent add beats older remove" `Quick
      test_set_concurrent_add_remove;
    Alcotest.test_case "MV-register keeps concurrent writes" `Quick
      test_mv_register_concurrent;
    Alcotest.test_case "MV-register drops dominated writes" `Quick
      test_mv_register_dominated;
    Alcotest.test_case "type confusion rejected" `Quick
      test_type_confusion_rejected;
    Alcotest.test_case "value-level overlay (read your writes)" `Quick
      test_apply_to_value;
    QCheck_alcotest.to_alcotest qcheck_reg_convergence;
    QCheck_alcotest.to_alcotest qcheck_ctr_convergence;
    QCheck_alcotest.to_alcotest qcheck_set_convergence;
  ]
