(* Protocol edge cases beyond the basic suite: multi-partition atomicity
   under strong transactions, repeated migrations, mixed sessions,
   hybrid clocks, read-only strong transactions, LWW arbitration. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let test_strong_multipartition_atomicity () =
  (* a strong transaction spanning several partitions becomes visible
     atomically everywhere *)
  let sys = Util.make_system ~partitions:4 () in
  (* keys 0..3 land on partitions 0..3 *)
  for k = 0 to 3 do
    U.System.preload sys k (Crdt.Reg_write 0)
  done;
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         for i = 1 to 10 do
           Client.start c ~strong:true;
           for k = 0 to 3 do
             Client.update c k (Crdt.Reg_write i)
           done;
           ignore (Client.commit c);
           Fiber.sleep 50_000;
           ignore i
         done));
  let violations = ref 0 in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         for _ = 1 to 150 do
           Client.start c;
           let v0 = Client.read_int c 0 in
           let v1 = Client.read_int c 1 in
           let v2 = Client.read_int c 2 in
           let v3 = Client.read_int c 3 in
           ignore (Client.commit c);
           if not (v0 = v1 && v1 = v2 && v2 = v3) then incr violations;
           Fiber.sleep 4_000
         done));
  Util.run sys ~until:5_000_000;
  Alcotest.(check int) "no torn strong transaction" 0 !violations;
  Util.assert_por sys

let test_read_only_strong_in_unistore () =
  (* a read-only strong transaction certifies its reads: it aborts if a
     conflicting write committed outside its snapshot *)
  let sys = Util.make_system () in
  U.System.preload sys 7 (Crdt.Reg_write 1);
  let ok = ref false in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c ~strong:true;
         let v = Client.read_int c 7 in
         (match Client.commit c with
         | `Committed _ -> ok := v = 1
         | `Aborted -> ())));
  Util.run sys ~until:2_000_000;
  Alcotest.(check bool) "read-only strong commits quietly" true !ok;
  Util.assert_por sys

let test_repeated_migration () =
  (* a client hops Virginia -> California -> Frankfurt -> Virginia and
     always sees its whole session *)
  let sys = Util.make_system () in
  let hops = [ 1; 2; 0 ] in
  let final = ref (-1) in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         List.iteri
           (fun i dc ->
             Client.start c;
             Client.update c 42 (Crdt.Reg_write (i + 1));
             ignore (Client.commit c);
             Client.migrate c ~dc;
             (* after attaching, the session must read its last write *)
             Client.start c;
             let v = Client.read_int c 42 in
             ignore (Client.commit c);
             if v <> i + 1 then failwith "session lost during migration")
           hops;
         Client.start c;
         final := Client.read_int c 42;
         ignore (Client.commit c)));
  Util.run sys ~until:5_000_000;
  Alcotest.(check int) "session intact after three migrations" 3 !final;
  Util.assert_por sys

let test_hlc_mode_consistency () =
  (* hybrid clocks with extreme skew: the protocol stays consistent *)
  let topo = Net.Topology.three_dcs () in
  let cfg =
    U.Config.default ~topo ~partitions:4 ~clock_skew_us:50_000 ~use_hlc:true
      ~record_history:true ()
  in
  let sys = U.System.create cfg in
  for k = 0 to 9 do
    U.System.preload sys k (Crdt.Reg_write 0)
  done;
  for i = 0 to 5 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 3) (fun c ->
           let rng = Sim.Rng.create (500 + i) in
           for _ = 1 to 20 do
             let rec attempt n =
               Client.start c ~strong:(Sim.Rng.int rng 5 = 0);
               let key = Sim.Rng.int rng 10 in
               ignore (Client.read c key);
               Client.update c key (Crdt.Reg_write (Sim.Rng.int rng 100));
               match Client.commit c with
               | `Committed _ -> ()
               | `Aborted -> if n < 10 then attempt (n + 1)
             in
             attempt 0
           done))
  done;
  U.System.run sys ~until:25_000_000;
  let h = U.System.history sys in
  let result =
    U.Checker.check ~preloads:(U.History.preloads h) cfg (U.History.txns h)
  in
  if not (U.Checker.ok result) then
    Alcotest.failf "%a" U.Checker.pp_result result;
  match U.System.check_convergence sys with
  | [] -> ()
  | errs -> Alcotest.failf "divergence: %s" (String.concat "; " errs)

let test_hlc_commit_faster_than_physical_wait () =
  (* with a large positive coordinator skew, physical clocks force the
     commit record to wait; hybrid clocks do not *)
  let latency mode_hlc =
    let cfg =
      U.Config.default ~partitions:2 ~clock_skew_us:30_000 ~use_hlc:mode_hlc
        ~seed:99 ()
    in
    let sys = U.System.create cfg in
    let done_at = ref 0 in
    ignore
      (U.System.spawn_client sys ~dc:0 (fun c ->
           for i = 1 to 5 do
             Client.start c;
             Client.update c i (Crdt.Reg_write i);
             ignore (Client.commit c);
             (* read back from another partition of the same txn chain *)
             Client.start c;
             ignore (Client.read_int c i);
             ignore (Client.commit c)
           done;
           done_at := U.System.now sys));
    U.System.run sys ~until:10_000_000;
    !done_at
  in
  let physical = latency false and hybrid = latency true in
  Alcotest.(check bool)
    (Fmt.str "hybrid (%dus) at least as fast as physical (%dus)" hybrid
       physical)
    true (hybrid <= physical)

let test_lww_cross_dc_arbitration () =
  (* two causally-ordered writes from different DCs: the later session
     always wins at every replica *)
  let sys = Util.make_system () in
  U.System.preload sys 9 (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         Client.update c 9 (Crdt.Reg_write 1);
         ignore (Client.commit c)));
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         (* wait until the first write is visible, then overwrite *)
         let rec poll () =
           Client.start c;
           let v = Client.read_int c 9 in
           ignore (Client.commit c);
           if v = 1 then begin
             Client.start c;
             Client.update c 9 (Crdt.Reg_write 2);
             ignore (Client.commit c)
           end
           else begin
             Fiber.sleep 10_000;
             poll ()
           end
         in
         poll ()));
  Util.run sys ~until:4_000_000;
  let finals = Array.make 3 (-1) in
  for dc = 0 to 2 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           Client.start c;
           finals.(dc) <- Client.read_int c 9;
           ignore (Client.commit c)))
  done;
  Util.run sys ~until:6_000_000;
  Array.iteri
    (fun dc v ->
      Alcotest.(check int) (Fmt.str "causally-later write wins at dc%d" dc) 2 v)
    finals;
  Util.assert_por sys;
  Util.assert_convergence sys

let test_empty_transaction () =
  let sys = Util.make_system () in
  let committed = ref false in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         Client.start c;
         (match Client.commit c with
         | `Committed _ -> committed := true
         | `Aborted -> ());
         (* and an empty strong transaction *)
         Client.start c ~strong:true;
         match Client.commit c with
         | `Committed _ -> ()
         | `Aborted -> committed := false));
  Util.run sys ~until:2_000_000;
  Alcotest.(check bool) "empty transactions commit" true !committed

let test_interleaved_sessions_share_coordinators () =
  (* many clients through the same replicas: sessions stay isolated *)
  let sys = Util.make_system ~partitions:2 () in
  let ok = ref 0 in
  for i = 0 to 19 do
    ignore
      (U.System.spawn_client sys ~dc:0 (fun c ->
           let key = 1000 + Client.id c in
           Client.start c;
           Client.update c key (Crdt.Reg_write (Client.id c));
           ignore (Client.commit c);
           Client.start c;
           if Client.read_int c key = Client.id c then incr ok;
           ignore (Client.commit c)));
    ignore i
  done;
  Util.run sys ~until:3_000_000;
  Alcotest.(check int) "every session reads its own write" 20 !ok;
  Util.assert_por sys

(* {1 Replication-stream continuity (gap detection and repair)} *)

let counter_total reg name =
  List.fold_left
    (fun acc (_, c) -> acc + Sim.Metrics.counter_value c)
    0
    (Sim.Metrics.counters_matching reg name)

(* A committed transaction of [origin]'s stream as replication carries
   it: one register write with the origin's stream timestamp. *)
let stream_tx ~origin ~ts ~key ~v =
  let vec = Vclock.Vc.create ~dcs:3 in
  Vclock.Vc.set vec origin ts;
  {
    U.Types.tx_tid = { cl = 7_000 + origin; sq = ts };
    tx_writes =
      [ { U.Types.wkey = key; wop = Crdt.Reg_write v; wcls = U.Types.cls_default } ];
    tx_vec = vec;
    tx_lc = ts;
    tx_origin = 7_000 + origin;
  }

(* Heartbeats jump frontiers exactly like batches do: a heartbeat whose
   continuity boundary ([from_ts]) exceeds the receiver's floor claims a
   window the receiver never saw, and must be refused — or a heartbeat
   racing ahead of a lost batch would paper over the gap. *)
let test_heartbeat_continuity () =
  let sys = Util.make_system () in
  let r = U.System.replica sys ~dc:0 ~part:0 in
  let reg = U.System.metrics sys in
  let origin = 1 in
  let frontier () = Vclock.Vc.get (U.Replica.known_vec r) origin in
  U.Replica.handle r (U.Msg.Heartbeat { origin; ts = 500; from_ts = 0 });
  Alcotest.(check int) "contiguous heartbeat adopts the frontier" 500
    (frontier ());
  U.Replica.handle r (U.Msg.Heartbeat { origin; ts = 2_000; from_ts = 1_000 });
  Alcotest.(check int) "gapped heartbeat does not jump the frontier" 500
    (frontier ());
  Alcotest.(check int) "the gap is detected and counted" 1
    (counter_total reg "replicate_gap_detected_total");
  Alcotest.(check bool) "a repair pull is in flight" true
    (U.Replica.repair_active r ~origin);
  (* further gapped claims while the repair runs raise its target but do
     not stack rounds *)
  U.Replica.handle r (U.Msg.Heartbeat { origin; ts = 2_500; from_ts = 2_000 });
  Alcotest.(check int) "the repeat offender is counted" 2
    (counter_total reg "replicate_gap_detected_total");
  Alcotest.(check int) "but starts no second round" 1
    (counter_total reg "repair_pull_rounds_total");
  Alcotest.(check int) "the frontier stays pinned" 500 (frontier ())

(* The full continuity discipline in order: a contiguous batch applies;
   a batch above a lost window is refused wholesale (gap detect); the
   frontier jumps only when the repair backfill covers the window; the
   stream then chains cleanly off the repaired frontier. *)
let test_gap_repair_frontier_order () =
  let sys = Util.make_system () in
  let r = U.System.replica sys ~dc:0 ~part:0 in
  let reg = U.System.metrics sys in
  let origin = 1 in
  let key = 0 (* partition 0 under the 4-partition test deployment *) in
  let frontier () = Vclock.Vc.get (U.Replica.known_vec r) origin in
  let replicate ~ts ~v ~from_ts =
    U.Replica.handle r
      (U.Msg.Replicate
         { origin; txs = [ stream_tx ~origin ~ts ~key ~v ]; from_ts })
  in
  replicate ~ts:100 ~v:1 ~from_ts:0;
  Alcotest.(check int) "contiguous batch applies" 100 (frontier ());
  (* the batch covering (100, 200] was lost in transit: the next one
     must not apply, or the window's writes would be silently skipped *)
  replicate ~ts:300 ~v:3 ~from_ts:200;
  Alcotest.(check int) "gapped batch refused wholesale" 100 (frontier ());
  Alcotest.(check int) "gap detected" 1
    (counter_total reg "replicate_gap_detected_total");
  Alcotest.(check bool) "repair pull in flight" true
    (U.Replica.repair_active r ~origin);
  (* the stream keeps moving while the repair runs: still refused *)
  replicate ~ts:400 ~v:4 ~from_ts:300;
  Alcotest.(check int) "refused until repaired" 100 (frontier ());
  Alcotest.(check int) "one round serves both detections" 1
    (counter_total reg "repair_pull_rounds_total");
  (* the repair reply backfills (100, 400] and vouches for 400 ([sq] is
     deterministic: the first round this deployment starts) *)
  U.Replica.handle r
    (U.Msg.Repair_log
       {
         origin;
         txs =
           [
             stream_tx ~origin ~ts:150 ~key ~v:2;
             stream_tx ~origin ~ts:300 ~key ~v:3;
             stream_tx ~origin ~ts:400 ~key ~v:4;
           ];
         from_ts = 100;
         covered = 400;
         last = true;
         sq = 1;
       });
  Alcotest.(check int) "the frontier jumps only with the repair" 400
    (frontier ());
  Alcotest.(check bool) "repair completed" false
    (U.Replica.repair_active r ~origin);
  Alcotest.(check int) "no provisional residue" (-1)
    (U.Replica.provisional_floor r ~origin);
  (* a duplicate of the reply is discarded by its stale round tag *)
  U.Replica.handle r
    (U.Msg.Repair_log
       {
         origin;
         txs = [ stream_tx ~origin ~ts:150 ~key ~v:2 ];
         from_ts = 100;
         covered = 400;
         last = true;
         sq = 1;
       });
  Alcotest.(check int) "duplicate reply ignored" 400 (frontier ());
  (* the stream resumes from the repaired boundary *)
  replicate ~ts:500 ~v:5 ~from_ts:400;
  Alcotest.(check int) "stream chains off the repaired frontier" 500
    (frontier ());
  Alcotest.(check int) "no further gaps" 2
    (counter_total reg "replicate_gap_detected_total")

let suite =
  [
    Alcotest.test_case "strong multi-partition atomicity" `Slow
      test_strong_multipartition_atomicity;
    Alcotest.test_case "read-only strong transaction" `Quick
      test_read_only_strong_in_unistore;
    Alcotest.test_case "repeated migration keeps the session" `Slow
      test_repeated_migration;
    Alcotest.test_case "hybrid clocks stay consistent at 50ms skew" `Slow
      test_hlc_mode_consistency;
    Alcotest.test_case "hybrid clocks avoid physical waits" `Quick
      test_hlc_commit_faster_than_physical_wait;
    Alcotest.test_case "LWW arbitration across DCs" `Quick
      test_lww_cross_dc_arbitration;
    Alcotest.test_case "empty transactions" `Quick test_empty_transaction;
    Alcotest.test_case "interleaved sessions stay isolated" `Quick
      test_interleaved_sessions_share_coordinators;
    Alcotest.test_case "heartbeat frontier jumps obey stream continuity"
      `Quick test_heartbeat_continuity;
    Alcotest.test_case "gap detect, then repair, then frontier jump" `Quick
      test_gap_repair_frontier_order;
  ]
