(* Per-node persistence: the simulated disk's crash-consistency
   contract (acked records survive, recovery is prefix-closed, torn
   tails truncate), and node-level crash/restart end to end — a clean
   restart recovers snapshot + WAL locally and pulls only the missed
   suffix (zero WAN snapshot bytes), a scrubbed disk falls back to the
   whole-DC WAN rejoin, and gray disks / restart loops keep liveness. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber
module Wal = Store.Wal

let counter_total reg name =
  List.fold_left
    (fun acc (_, c) -> acc + Sim.Metrics.counter_value c)
    0
    (Sim.Metrics.counters_matching reg name)

(* {1 WAL unit and property tests} *)

let make_wal eng =
  Wal.create ~eng ~fsync_us:500 ~mb_per_s:200 ~size:(fun _ -> 64)
    ~snap_size:(fun _ -> 256) ()

(* Acked records survive a crash and read back in order; the ~k
   continuation is exactly the durability barrier. *)
let test_wal_roundtrip () =
  let eng = Sim.Engine.create () in
  let w = make_wal eng in
  let acked = ref [] in
  for i = 1 to 20 do
    ignore (Wal.append w ~k:(fun () -> acked := i :: !acked) i)
  done;
  Sim.Engine.run eng ~until:1_000_000;
  Alcotest.(check bool) "group commit drained" true (Wal.quiescent w);
  Alcotest.(check int) "every append acked" 20 (List.length !acked);
  Wal.crash w;
  let snap, tail = Wal.recover w in
  Alcotest.(check bool) "no snapshot yet" true (snap = None);
  Alcotest.(check (list int)) "records replay oldest-first, no dup/skip"
    (List.init 20 (fun i -> i + 1))
    tail

(* Crash-consistency sweep: power-cut the disk at every instant around
   the fsync boundaries. Whatever the cut point, recovery must return a
   contiguous prefix of the appended sequence (no holes, no
   reordering), and that prefix must contain every record whose ack ran
   before the cut — durability promises survive, unacked tails may
   vanish. *)
let test_wal_crash_every_boundary () =
  let n = 12 in
  (* appends arrive every 300us against a 500us fsync: cut points walk
     across group-commit batches of varying size *)
  for cut = 0 to 60 do
    let cut_us = cut * 100 in
    let eng = Sim.Engine.create () in
    let w = make_wal eng in
    let acked = ref [] in
    for i = 1 to n do
      Sim.Engine.schedule eng ~delay:(i * 300) (fun () ->
          ignore (Wal.append w ~k:(fun () -> acked := i :: !acked) i))
    done;
    Sim.Engine.run eng ~until:cut_us;
    Wal.crash w;
    let _, tail = Wal.recover w in
    let prefix_len = List.length tail in
    Alcotest.(check (list int))
      (Printf.sprintf "cut at %dus: recovery is prefix-closed" cut_us)
      (List.init prefix_len (fun i -> i + 1))
      tail;
    List.iter
      (fun i ->
        if not (List.mem i tail) then
          Alcotest.failf "cut at %dus: acked record %d lost" cut_us i)
      !acked
  done

(* A torn final record — the half-written sector a power cut leaves —
   is truncated on recovery, and everything after it with it. *)
let test_wal_torn_tail () =
  let eng = Sim.Engine.create () in
  let w = make_wal eng in
  for i = 1 to 10 do
    ignore (Wal.append w i)
  done;
  Sim.Engine.run eng ~until:1_000_000;
  Wal.tear_next w;
  Wal.crash w;
  let _, tail = Wal.recover w in
  let len = List.length tail in
  Alcotest.(check bool) "torn tail truncated" true (len < 10);
  Alcotest.(check (list int)) "surviving prefix still contiguous"
    (List.init len (fun i -> i + 1))
    tail;
  (* the disk keeps working after recovery: sequence numbers resume *)
  ignore (Wal.append w 99);
  Sim.Engine.run eng ~until:2_000_000;
  Wal.crash w;
  let _, tail' = Wal.recover w in
  Alcotest.(check (list int)) "appends resume after truncation"
    (List.init len (fun i -> i + 1) @ [ 99 ])
    tail'

(* Snapshots bound replay: once installed, recovery returns the
   snapshot plus only the log suffix above its boundary. *)
let test_wal_snapshot_bounds_replay () =
  let eng = Sim.Engine.create () in
  let w = make_wal eng in
  for i = 1 to 8 do
    ignore (Wal.append w i)
  done;
  Sim.Engine.run eng ~until:100_000;
  Wal.snapshot w ~seq:(Wal.next_seq w - 1) "snap@8";
  Sim.Engine.run eng ~until:200_000;
  for i = 9 to 12 do
    ignore (Wal.append w i)
  done;
  Sim.Engine.run eng ~until:300_000;
  Wal.crash w;
  let snap, tail = Wal.recover w in
  Alcotest.(check (option string)) "snapshot recovered" (Some "snap@8") snap;
  Alcotest.(check (list int)) "only the suffix above the boundary replays"
    [ 9; 10; 11; 12 ] tail

(* {1 Node-level crash/restart, end to end} *)

let persistent_system ?(partitions = 2) ?(seed = 17) () =
  let sys =
    Util.make_system ~partitions ~seed ~persistence:true
      ~snapshot_interval_us:1_500_000 ~client_failover_us:150_000 ()
  in
  sys

let run_workload sys ~until ~keys =
  let commits = Array.make (Array.length keys) 0 in
  Array.iteri
    (fun i k ->
      let dc = i mod 2 in
      ignore
        (U.System.spawn_client sys ~dc (fun c ->
             while U.System.now sys < until do
               Client.start c;
               Client.update c k (Crdt.Ctr_add 1);
               (match Client.commit c with
               | `Committed _ -> commits.(i) <- commits.(i) + 1
               | `Aborted -> ());
               Fiber.sleep 80_000
             done)))
    keys;
  commits

let read_back sys ~dc ~keys =
  let final = Array.make (Array.length keys) (-1) in
  ignore
    (U.System.spawn_client sys ~dc (fun c ->
         Client.start c;
         Array.iteri (fun i k -> final.(i) <- Client.read_int c k) keys;
         ignore (Client.commit c)));
  final

(* Clean node restart: dc2/part0 dies mid-workload and comes back from
   its own disk. The restart replays locally, pulls only the suffix it
   missed, and never transfers a WAN snapshot; the recovered node
   converges and serves every commit exactly once. *)
let test_clean_node_restart () =
  let sys = persistent_system () in
  let keys = [| 100; 101 |] in
  Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
  U.Nemesis.inject sys
    [
      { U.Nemesis.at_us = 2_000_000; ev = Crash_node { dc = 2; part = 0 } };
      { at_us = 3_000_000; ev = Restart_node { dc = 2; part = 0 } };
    ];
  let commits = run_workload sys ~until:5_000_000 ~keys in
  let strong_commits = ref 0 in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         while U.System.now sys < 5_000_000 do
           Client.start c ~strong:true;
           Client.update c 200 (Crdt.Ctr_add 1);
           (match Client.commit c with
           | `Committed _ -> incr strong_commits
           | `Aborted -> ());
           Fiber.sleep 150_000
         done));
  U.System.preload sys 200 (Crdt.Ctr_add 0);
  Util.run sys ~until:9_000_000;
  Alcotest.(check bool) "node is back" false
    (U.System.node_down sys ~dc:2 ~part:0);
  Util.assert_por sys;
  Util.assert_convergence sys;
  Alcotest.(check int) "no strong transaction left pending" 0
    (U.System.pending_strong sys);
  Alcotest.(check bool) "workload committed through the restart" true
    (commits.(0) > 10 && commits.(1) > 10 && !strong_commits > 5);
  let final = read_back sys ~dc:2 ~keys in
  Util.run sys ~until:9_500_000;
  Array.iteri
    (fun i k ->
      Alcotest.(check int)
        (Printf.sprintf "key %d visible exactly once at the restarted node" k)
        commits.(i) final.(i))
    keys;
  let reg = U.System.metrics sys in
  Alcotest.(check int) "one node restart" 1
    (counter_total reg "node_restarts_total");
  Alcotest.(check bool) "local replay did the heavy lifting" true
    (counter_total reg "replay_entries_total" > 0
    && counter_total reg "local_catchup_bytes_total" > 0);
  Alcotest.(check int) "zero WAN snapshot bytes for a clean restart" 0
    (counter_total reg "sync_snapshot_bytes_total");
  Alcotest.(check bool) "the WAL was exercised" true
    (counter_total reg "wal_appended_bytes_total" > 0)

(* Torn-tail restart: the crash corrupts the disk's final record. The
   restart truncates it, replays the surviving prefix and re-pulls the
   difference from a live sibling — still no WAN snapshot — and the run
   is deterministic under its seed. *)
let test_torn_tail_restart () =
  let run_once () =
    let sys = persistent_system ~seed:23 () in
    let keys = [| 100; 101 |] in
    Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
    Sim.Engine.schedule (U.System.engine sys) ~delay:1_999_000 (fun () ->
        U.Replica.tear_disk_next (U.System.replica sys ~dc:2 ~part:0));
    U.Nemesis.inject sys
      [
        { U.Nemesis.at_us = 2_000_000; ev = Crash_node { dc = 2; part = 0 } };
        { at_us = 3_000_000; ev = Restart_node { dc = 2; part = 0 } };
      ];
    let commits = run_workload sys ~until:4_500_000 ~keys in
    Util.run sys ~until:8_000_000;
    Util.assert_convergence sys;
    let final = read_back sys ~dc:2 ~keys in
    Util.run sys ~until:8_500_000;
    Array.iteri
      (fun i _ ->
        Alcotest.(check int) "exactly once despite the torn tail"
          commits.(i) final.(i))
      keys;
    let reg = U.System.metrics sys in
    Alcotest.(check bool) "the torn record was truncated" true
      (counter_total reg "wal_torn_truncations_total" >= 1);
    Alcotest.(check int) "still no WAN snapshot" 0
      (counter_total reg "sync_snapshot_bytes_total");
    (Array.to_list commits, Array.to_list final)
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check (pair (list int) (list int)))
    "torn-tail recovery replays deterministically under the seed" a b

(* A scrubbed disk (unrecoverable local state) falls back to the
   whole-DC WAN rejoin: snapshot transfer plus pull rounds. *)
let test_scrubbed_disk_falls_back () =
  let sys = persistent_system ~seed:31 () in
  let keys = [| 100; 101 |] in
  Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
  Sim.Engine.schedule (U.System.engine sys) ~delay:2_000_000 (fun () ->
      U.System.fail_node sys ~dc:2 ~part:0;
      U.Replica.scrub_disk (U.System.replica sys ~dc:2 ~part:0));
  Sim.Engine.schedule (U.System.engine sys) ~delay:3_000_000 (fun () ->
      U.System.restart_node sys ~dc:2 ~part:0);
  let commits = run_workload sys ~until:4_500_000 ~keys in
  Util.run sys ~until:8_000_000;
  Util.assert_convergence sys;
  let final = read_back sys ~dc:2 ~keys in
  Util.run sys ~until:8_500_000;
  Array.iteri
    (fun i _ ->
      Alcotest.(check int) "exactly once after the WAN rejoin" commits.(i)
        final.(i))
    keys;
  let reg = U.System.metrics sys in
  Alcotest.(check bool) "the empty disk forced a WAN snapshot" true
    (counter_total reg "sync_snapshot_bytes_total" > 0)

(* Gray disk: a 20x-slow fsync stretches commit latency but breaks
   nothing — the workload keeps committing and the DCs converge once
   the disk is restored. *)
let test_gray_disk () =
  let sys = persistent_system ~seed:41 () in
  let keys = [| 100; 101 |] in
  Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
  U.Nemesis.inject sys
    (U.Nemesis.gray_disk ~dc:0 ~part:0 ~factor:20 ~from_us:1_500_000
       ~until_us:3_500_000);
  let commits = run_workload sys ~until:5_000_000 ~keys in
  Util.run sys ~until:8_000_000;
  Util.assert_por sys;
  Util.assert_convergence sys;
  Alcotest.(check bool) "commits continued under the gray disk" true
    (commits.(0) > 10 && commits.(1) > 10);
  match
    Sim.Metrics.histograms_matching (U.System.metrics sys) "wal_fsync_us"
  with
  | [] -> Alcotest.fail "wal_fsync_us histogram missing"
  | hs ->
      let worst =
        List.fold_left
          (fun acc (_, h) ->
            match Sim.Metrics.h_max h with
            | Some m -> max acc m
            | None -> acc)
          0 hs
      in
      Alcotest.(check bool) "the slow fsyncs were observed" true
        (worst >= 20 * 500)

(* Supervisor restart loop: the same node crash/restarts repeatedly
   under live traffic and the system converges with every restart
   recovered locally. *)
let test_restart_loop () =
  let sys = persistent_system ~seed:53 () in
  let keys = [| 100; 101 |] in
  Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
  U.Nemesis.inject sys
    (U.Nemesis.restart_loop ~dc:2 ~part:1 ~start_us:1_500_000 ~cycles:3
       ~down_us:400_000 ~period_us:1_200_000);
  let commits = run_workload sys ~until:5_500_000 ~keys in
  Util.run sys ~until:9_500_000;
  Util.assert_convergence sys;
  Alcotest.(check bool) "commits continued through the loop" true
    (commits.(0) > 10 && commits.(1) > 10);
  let reg = U.System.metrics sys in
  Alcotest.(check int) "every cycle restarted the node" 3
    (counter_total reg "node_restarts_total");
  Alcotest.(check int) "every restart recovered locally" 0
    (counter_total reg "sync_snapshot_bytes_total")

(* Seeded schedules: node crashes draw nothing by default (existing
   seeds keep their schedules) and pair each crash with a restart. *)
let test_random_schedule_node_crashes () =
  let horizon = 8_000_000 in
  let base =
    U.Nemesis.random_schedule ~seed:7 ~dcs:3 ~horizon_us:horizon ()
  in
  let with_nodes =
    U.Nemesis.random_schedule ~seed:7 ~dcs:3 ~horizon_us:horizon
      ~max_node_crashes:2 ~node_partitions:4 ()
  in
  let is_node s =
    match s.U.Nemesis.ev with
    | U.Nemesis.Crash_node _ | U.Nemesis.Restart_node _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "no node events by default" true
    (not (List.exists is_node base));
  Alcotest.(check bool) "node budget only appends to the base schedule" true
    (List.sort compare (List.filter (fun s -> not (is_node s)) with_nodes)
    = List.sort compare base);
  let crashes =
    List.filter_map
      (fun s ->
        match s.U.Nemesis.ev with
        | U.Nemesis.Crash_node { dc; part } -> Some (s.U.Nemesis.at_us, dc, part)
        | _ -> None)
      with_nodes
  in
  Alcotest.(check int) "the full crash budget was drawn" 2
    (List.length crashes);
  List.iter
    (fun (at, dc, part) ->
      match
        List.find_opt
          (fun s ->
            match s.U.Nemesis.ev with
            | U.Nemesis.Restart_node r ->
                r.dc = dc && r.part = part && s.U.Nemesis.at_us > at
            | _ -> false)
          with_nodes
      with
      | Some _ -> ()
      | None -> Alcotest.fail "node crash without a paired restart")
    crashes

let suite =
  [
    Alcotest.test_case "acked WAL records survive a crash in order" `Quick
      test_wal_roundtrip;
    Alcotest.test_case "recovery is prefix-closed at every cut point" `Quick
      test_wal_crash_every_boundary;
    Alcotest.test_case "a torn tail truncates and the log resumes" `Quick
      test_wal_torn_tail;
    Alcotest.test_case "snapshots bound replay to the suffix" `Quick
      test_wal_snapshot_bounds_replay;
    Alcotest.test_case "clean node restart recovers locally, zero WAN bytes"
      `Slow test_clean_node_restart;
    Alcotest.test_case "torn-tail restart truncates, replays, rejoins" `Slow
      test_torn_tail_restart;
    Alcotest.test_case "scrubbed disk falls back to the WAN rejoin" `Slow
      test_scrubbed_disk_falls_back;
    Alcotest.test_case "gray disk slows commits but breaks nothing" `Slow
      test_gray_disk;
    Alcotest.test_case "supervisor restart loop converges" `Slow
      test_restart_loop;
    Alcotest.test_case "seeded schedules pair node crashes with restarts"
      `Quick test_random_schedule_node_crashes;
  ]
