(* Open-loop arrival driver: the statistical shape of the generated
   processes (Poisson mean/variance, schedule envelopes), their
   determinism under a fixed seed, and the driver itself spawning one
   fiber per arrival over a live deployment. *)

module U = Unistore
module Openloop = Workload.Openloop

let gen ?(seed = 7) ~rate ~until_us () =
  Openloop.arrivals ~rng:(Sim.Rng.create seed) ~rate ~until_us

(* A homogeneous 1000 tx/s process over 20 s: the count, the
   inter-arrival mean, and the exponential gap variance (CV ≈ 1 — what
   separates Poisson from a jittered uniform schedule) must match within
   sampling tolerance. *)
let test_poisson_moments () =
  let rate = 1000.0 and until_us = 20_000_000 in
  let times = gen ~rate:(Openloop.constant rate) ~until_us () in
  let n = List.length times in
  let expect = rate *. float_of_int until_us /. 1_000_000.0 in
  (* 5 sigma of a Poisson count *)
  let slack = 5.0 *. sqrt expect in
  Alcotest.(check bool)
    (Fmt.str "count %d within %.0f of %.0f" n slack expect)
    true
    (Float.abs (float_of_int n -. expect) <= slack);
  let gaps =
    let rec go prev = function
      | [] -> []
      | t :: rest -> float_of_int (t - prev) :: go t rest
    in
    go 0 times
  in
  let ng = float_of_int (List.length gaps) in
  let mean = List.fold_left ( +. ) 0.0 gaps /. ng in
  let var =
    List.fold_left (fun acc g -> acc +. ((g -. mean) ** 2.0)) 0.0 gaps /. ng
  in
  let cv = sqrt var /. mean in
  Alcotest.(check bool)
    (Fmt.str "gap mean %.1f us within 5%% of 1000" mean)
    true
    (Float.abs (mean -. 1000.0) <= 50.0);
  Alcotest.(check bool)
    (Fmt.str "gap coefficient of variation %.3f near 1 (exponential)" cv)
    true
    (cv > 0.9 && cv < 1.1)

(* Fixed seed, fixed schedule: byte-identical arrival instants — the
   property the overload artifact's determinism rests on. *)
let test_deterministic_under_seed () =
  let mk seed = gen ~seed ~rate:(Openloop.constant 500.0) ~until_us:5_000_000 () in
  Alcotest.(check (list int)) "same seed, same instants" (mk 7) (mk 7);
  Alcotest.(check bool) "different seed, different instants" true
    (mk 7 <> mk 8)

let count_in times ~from_us ~until_us =
  List.length (List.filter (fun t -> t >= from_us && t < until_us) times)

(* Flash crowd: the rate inside the burst window and on both flanks must
   match the schedule within Poisson tolerance. *)
let test_flash_crowd_envelope () =
  let rate =
    Openloop.flash_crowd ~base:200.0 ~peak:2000.0 ~at_us:4_000_000
      ~duration_us:2_000_000
  in
  let times = gen ~rate ~until_us:10_000_000 () in
  let check name expect n =
    let slack = 5.0 *. sqrt expect in
    Alcotest.(check bool)
      (Fmt.str "%s: %d within %.0f of %.0f" name n slack expect)
      true
      (Float.abs (float_of_int n -. expect) <= slack)
  in
  check "pre-burst flank" (200.0 *. 4.0)
    (count_in times ~from_us:0 ~until_us:4_000_000);
  check "burst window" (2000.0 *. 2.0)
    (count_in times ~from_us:4_000_000 ~until_us:6_000_000);
  check "post-burst flank" (200.0 *. 4.0)
    (count_in times ~from_us:6_000_000 ~until_us:10_000_000)

(* Diurnal curve over one full period: the crest half-period must carry
   the amplitude surplus and the trough half-period the deficit. *)
let test_diurnal_envelope () =
  let period_us = 8_000_000 in
  let rate = Openloop.diurnal ~base:500.0 ~amplitude:400.0 ~period_us in
  let times = gen ~rate ~until_us:period_us () in
  let crest = count_in times ~from_us:0 ~until_us:(period_us / 2) in
  let trough = count_in times ~from_us:(period_us / 2) ~until_us:period_us in
  (* mean rate over a half period: base ± amplitude * 2/pi *)
  let expect_crest = (500.0 +. (400.0 *. 2.0 /. Float.pi)) *. 4.0 in
  let expect_trough = (500.0 -. (400.0 *. 2.0 /. Float.pi)) *. 4.0 in
  let check name expect n =
    let slack = 5.0 *. sqrt expect in
    Alcotest.(check bool)
      (Fmt.str "%s: %d within %.0f of %.0f" name n slack expect)
      true
      (Float.abs (float_of_int n -. expect) <= slack)
  in
  check "crest half-period" expect_crest crest;
  check "trough half-period" expect_trough trough;
  Alcotest.(check bool) "crest clearly above trough" true
    (crest > trough + ((crest - trough) / 4))

(* Mid-run shift: no arrivals follow the old schedule after the switch
   point. *)
let test_shift_schedule () =
  let rate =
    Openloop.shift ~at_us:3_000_000 (Openloop.constant 1000.0)
      (Openloop.constant 100.0)
  in
  let times = gen ~rate ~until_us:6_000_000 () in
  let before = count_in times ~from_us:0 ~until_us:3_000_000 in
  let after = count_in times ~from_us:3_000_000 ~until_us:6_000_000 in
  Alcotest.(check bool)
    (Fmt.str "before %d ~ 3000, after %d ~ 300" before after)
    true
    (before > 2700 && before < 3300 && after > 210 && after < 390)

let test_trace_validation () =
  Alcotest.(check (list int)) "ascending trace accepted" [ 10; 20; 20; 40 ]
    (Openloop.of_trace [ 10; 20; 20; 40 ]);
  Alcotest.(check bool) "descending trace rejected" true
    (try
       ignore (Openloop.of_trace [ 10; 5 ]);
       false
     with Invalid_argument _ -> true)

(* The driver over a live deployment: every arrival spawns, every
   arrival is accounted for exactly once, the arrivals counter matches,
   and a deterministic rerun reproduces the outcome counts. *)
let run_driver ~seed =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:2 ~f:1
      ~seed ()
  in
  let sys = U.System.create cfg in
  let rng = Sim.Rng.split (Sim.Engine.rng (U.System.engine sys)) ~id:0xa221 in
  let times =
    Openloop.arrivals ~rng ~rate:(Openloop.constant 400.0)
      ~until_us:1_000_000
  in
  let spec =
    {
      (Workload.Micro.default_spec ~partitions:2) with
      Workload.Micro.strong_ratio = 0.5;
      max_retries = 0;
    }
  in
  let stats =
    Openloop.install sys ~arrivals:times ~body:(Openloop.micro_body spec)
  in
  U.System.run sys ~until:2_000_000;
  (List.length times, stats, U.System.metrics sys, U.System.pending_strong sys)

let test_driver_accounting () =
  let n_times, stats, metrics, pending = run_driver ~seed:42 in
  Alcotest.(check int) "every instant arrived" n_times
    stats.Openloop.arrivals;
  Alcotest.(check int) "arrivals counter matches"
    stats.Openloop.arrivals
    (Sim.Metrics.counter_value
       (Sim.Metrics.counter metrics "open_loop_arrivals_total"));
  Alcotest.(check int) "every arrival classified exactly once"
    stats.Openloop.arrivals
    (stats.Openloop.committed + stats.Openloop.aborted + stats.Openloop.shed);
  Alcotest.(check int) "all fibers drained" 0 stats.Openloop.in_flight;
  Alcotest.(check bool) "sessions are pooled, not per-arrival" true
    (stats.Openloop.sessions < stats.Openloop.arrivals / 2);
  Alcotest.(check int) "no pending certifications at quiescence" 0 pending;
  Alcotest.(check bool) "work actually committed" true
    (stats.Openloop.committed > 0)

let test_driver_deterministic () =
  let _, s1, _, _ = run_driver ~seed:42 in
  let _, s2, _, _ = run_driver ~seed:42 in
  Alcotest.(check int) "same arrivals" s1.Openloop.arrivals s2.Openloop.arrivals;
  Alcotest.(check int) "same commits" s1.Openloop.committed s2.Openloop.committed;
  Alcotest.(check int) "same aborts" s1.Openloop.aborted s2.Openloop.aborted;
  Alcotest.(check int) "same peak in-flight" s1.Openloop.peak_in_flight
    s2.Openloop.peak_in_flight

let suite =
  [
    Alcotest.test_case "Poisson count and gap moments" `Quick
      test_poisson_moments;
    Alcotest.test_case "arrival sequences are seed-deterministic" `Quick
      test_deterministic_under_seed;
    Alcotest.test_case "flash-crowd rate envelope" `Quick
      test_flash_crowd_envelope;
    Alcotest.test_case "diurnal rate envelope" `Quick test_diurnal_envelope;
    Alcotest.test_case "mid-run schedule shift" `Quick test_shift_schedule;
    Alcotest.test_case "trace-driven arrival validation" `Quick
      test_trace_validation;
    Alcotest.test_case "driver accounts for every arrival" `Slow
      test_driver_accounting;
    Alcotest.test_case "driver replays deterministically" `Slow
      test_driver_deterministic;
  ]
