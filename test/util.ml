(* Shared helpers for the protocol-level tests. *)

module U = Unistore

let default_topo () =
  Net.Topology.three_dcs ()

(* A small deployment suitable for protocol tests: full history recording
   so the PoR checker can run afterwards. *)
let make_system ?(topo = default_topo ()) ?(partitions = 4) ?(f = 1)
    ?(mode = U.Config.Unistore) ?(conflict = U.Config.Serializable)
    ?(seed = 42) ?(clock_skew_us = 1_000) ?leader_dc ?link_faults
    ?detection_delay_us ?fd_period_us ?gc_grace_us ?sync_pull_deadline_us
    ?client_failover_us ?persistence ?disk_fsync_us ?snapshot_interval_us
    ?(trace_enabled = false) () =
  let cfg =
    U.Config.default ~topo ~partitions ~f ~mode ~conflict ~seed ~clock_skew_us
      ?leader_dc ?link_faults ?detection_delay_us ?fd_period_us ?gc_grace_us
      ?sync_pull_deadline_us ?client_failover_us ?persistence ?disk_fsync_us
      ?snapshot_interval_us ~trace_enabled ~record_history:true ()
  in
  U.System.create cfg

(* Run the system until [until]; fail the test if fibers are stuck. *)
let run sys ~until = U.System.run sys ~until

(* Run the PoR checker over the recorded history and assert it passes. *)
let assert_por sys =
  let h = U.System.history sys in
  let result =
    U.Checker.check ~preloads:(U.History.preloads h)
      ~unacked:(U.History.unacked_writers h) (U.System.cfg sys)
      (U.History.txns h)
  in
  if not (U.Checker.ok result) then
    Alcotest.failf "%a" U.Checker.pp_result result

(* Assert convergence of all correct DCs (Eventual Visibility). *)
let assert_convergence sys =
  match U.System.check_convergence sys with
  | [] -> ()
  | errs -> Alcotest.failf "divergence:@.%s" (String.concat "\n" errs)

let int_value = Crdt.int_value
