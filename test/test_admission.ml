(* Admission control and pending-certification accounting.

   The [pending_certifications] gauge samples live coordinator state
   ([Replica.pending_strong]), so a non-zero reading at quiescence is a
   real protocol leak — an entry that survived its transaction. These
   tests drive every non-commit exit path (certification aborts,
   admission sheds, the empty-footprint corner, coordinator crash and
   client failover) and assert the count returns to zero. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let counter_total reg name =
  List.fold_left
    (fun acc (_, c) -> acc + Sim.Metrics.counter_value c)
    0
    (Sim.Metrics.counters_matching reg name)

(* A strong transaction with an empty footprint (no reads, no writes)
   certifies against no partition group at all. It must still commit —
   and, the regression, must not leave its pending-certification entry
   behind (it used to wait forever for ACCEPT_ACKs that no group would
   ever send, wedging the client and leaking the entry). *)
let test_empty_footprint_strong () =
  let sys = Util.make_system ~partitions:2 () in
  let committed = ref false in
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         Client.start c ~strong:true;
         match Client.commit c with
         | `Committed _ -> committed := true
         | `Aborted -> ()));
  U.System.run sys ~until:2_000_000;
  Alcotest.(check bool) "empty strong transaction commits" true !committed;
  Alcotest.(check int) "no pending certification leaked" 0
    (U.System.pending_strong sys)

(* Certification aborts: conflicting strong writers hammer one key; the
   losers' pending entries must drain along with the winners'. *)
let test_aborts_drain () =
  let sys = Util.make_system ~partitions:2 () in
  U.System.preload sys 700 (Crdt.Reg_write 0);
  let aborts = ref 0 in
  for dc = 0 to 2 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           for _ = 1 to 10 do
             Client.start c ~strong:true;
             let v = Client.read_int c 700 in
             Client.update c 700 (Crdt.Reg_write (v + 1));
             (match Client.commit c with
             | `Committed _ -> ()
             | `Aborted -> incr aborts);
             Fiber.sleep 20_000
           done))
  done;
  U.System.run sys ~until:8_000_000;
  Alcotest.(check bool) "conflicts actually aborted" true (!aborts > 0);
  Alcotest.(check int) "aborted certifications drained" 0
    (U.System.pending_strong sys);
  Util.assert_por sys;
  Util.assert_convergence sys

(* Admission control: with a one-entry bound, a burst of concurrent
   strong commits must shed all but the queue's worth with R_overloaded
   — surfaced to the client as [Overloaded], counted on both sides of
   the wire — and the shed entries must leave nothing behind. *)
let test_shed_and_drain () =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:2 ~f:1
      ~admission_max_pending:1 ~seed:42 ~record_history:true ()
  in
  let sys = U.System.create cfg in
  U.System.preload sys 710 (Crdt.Reg_write 0);
  let committed = ref 0 and shed = ref 0 in
  for i = 0 to 11 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 3) (fun c ->
           Client.start c ~strong:true;
           Client.update c (711 + i) (Crdt.Reg_write 1);
           match Client.commit c with
           | `Committed _ -> incr committed
           | `Aborted -> ()
           | exception Client.Overloaded -> incr shed))
  done;
  U.System.run sys ~until:3_000_000;
  let reg = U.System.metrics sys in
  Alcotest.(check bool) "some commits admitted" true (!committed > 0);
  Alcotest.(check bool) "some commits shed" true (!shed > 0);
  Alcotest.(check int) "every burst client answered" 12 (!committed + !shed);
  Alcotest.(check int) "replica and client shed counts agree" !shed
    (counter_total reg "admission_rejects_total");
  Alcotest.(check int) "client counter matches" !shed
    (counter_total reg "txn_overloaded_total");
  Alcotest.(check int) "no pending certification leaked" 0
    (U.System.pending_strong sys);
  Util.assert_convergence sys

(* Unbounded runs never shed and never intern the admission metrics:
   the gauge accounting must stay clean through an ordinary strong
   workload too. *)
let test_disabled_admission_untouched () =
  let sys = Util.make_system ~partitions:2 () in
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         for i = 0 to 9 do
           Client.start c ~strong:true;
           Client.update c (720 + i) (Crdt.Reg_write 1);
           ignore (Client.commit c)
         done));
  U.System.run sys ~until:3_000_000;
  let reg = U.System.metrics sys in
  Alcotest.(check int) "no rejects counted" 0
    (counter_total reg "admission_rejects_total");
  Alcotest.(check bool) "admission metrics never interned" true
    (Sim.Metrics.counters_matching reg "admission_rejects_total" = []);
  Alcotest.(check int) "nothing pending" 0 (U.System.pending_strong sys)

(* Coordinator crash with strong commits in flight: the client fails
   over, the transaction re-certifies elsewhere, and the crashed DC's
   pending entries must not count once it rejoins — quiescence again
   means zero. *)
let test_failover_drains () =
  let sys =
    Util.make_system ~partitions:2 ~client_failover_us:400_000 ~seed:17 ()
  in
  U.System.preload sys 730 (Crdt.Ctr_add 0);
  let committed = ref 0 in
  for i = 0 to 3 do
    ignore
      (U.System.spawn_client sys ~dc:1 (fun c ->
           Fiber.sleep (i * 40_000);
           try
             Client.start c ~strong:true;
             Client.update c 730 (Crdt.Ctr_add 1);
             match Client.commit c with
             | `Committed _ -> incr committed
             | `Aborted -> ()
           with Client.Aborted -> ()))
  done;
  (* crash the clients' DC while the burst is in flight, then recover *)
  Sim.Engine.schedule_at (U.System.engine sys) ~time:150_000 (fun () ->
      U.System.fail_dc sys 1);
  Sim.Engine.schedule_at (U.System.engine sys) ~time:4_000_000 (fun () ->
      U.System.recover_dc sys 1);
  U.System.run sys ~until:12_000_000;
  Alcotest.(check bool) "strong commits survived the failover" true
    (!committed > 0);
  Alcotest.(check int) "no pending certification leaked anywhere" 0
    (U.System.pending_strong sys);
  Util.assert_convergence sys

let suite =
  [
    Alcotest.test_case "empty-footprint strong transaction" `Quick
      test_empty_footprint_strong;
    Alcotest.test_case "aborted certifications drain" `Slow test_aborts_drain;
    Alcotest.test_case "admission sheds and drains" `Quick test_shed_and_drain;
    Alcotest.test_case "disabled admission stays invisible" `Quick
      test_disabled_admission_untouched;
    Alcotest.test_case "failover drains pending certifications" `Slow
      test_failover_drains;
  ]
