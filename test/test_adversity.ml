(* Adversity *during* recovery: the rejoin state machine must survive
   partitions, gray links and sibling crashes that land in the middle of
   its own sync rounds. These tests script the exact interleavings the
   seeded combined-adversity soak (bench `adversity`) explores randomly:
   the snapshot source going unreachable mid-SYNC_STORE, a polled
   sibling partitioned away mid-SYNC_PULL, a polled sibling crashing
   mid-round — plus the seeded acceptance scenario and the recovery
   guard rails. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let counter_total reg name =
  List.fold_left
    (fun acc (_, c) -> acc + Sim.Metrics.counter_value c)
    0
    (Sim.Metrics.counters_matching reg name)

(* A causal writer at [dc] bumping [key] until [until]; returns the
   commit counter so the test can read the value back elsewhere. *)
let spawn_writer sys ~dc ~key ~until ~period =
  let commits = ref 0 in
  ignore
    (U.System.spawn_client sys ~dc (fun c ->
         while U.System.now sys < until do
           (try
              Client.start c;
              Client.update c key (Crdt.Ctr_add 1);
              match Client.commit c with
              | `Committed _ -> incr commits
              | `Aborted -> ()
            with Client.Aborted -> ());
           Fiber.sleep period
         done));
  commits

(* Read [keys] back at [dc] once the run is over; returns the values. *)
let read_back sys ~dc ~keys ~at =
  let vals = Array.make (Array.length keys) (-1) in
  ignore
    (U.System.spawn_client sys ~dc (fun c ->
         Client.start c;
         Array.iteri (fun i k -> vals.(i) <- Client.read_int c k) keys;
         ignore (Client.commit c)));
  U.System.run sys ~until:at;
  vals

(* (1) The snapshot source is partitioned away mid-SYNC_STORE: dc2's
   first snapshot request goes to dc1 (peer rotation starts there), but
   the dc1 <-> dc2 link is cut across the whole window. The no-progress
   retry must drop dc1 from the round, fail the snapshot over to dc0 and
   finish the rejoin with the partition still up. *)
let test_partition_snapshot_source () =
  let sys = Util.make_system ~partitions:3 ~seed:21 () in
  let keys = [| 100; 101 |] in
  Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
  U.Nemesis.inject sys
    (U.Nemesis.merge
       [
         [
           { U.Nemesis.at_us = 1_500_000; ev = U.Nemesis.Crash_dc 2 };
           { at_us = 3_000_000; ev = U.Nemesis.Recover_dc 2 };
         ];
         U.Nemesis.partition_during_sync ~rejoiner:2 ~peer:1
           ~from_us:2_900_000 ~until_us:5_500_000;
       ]);
  let c0 = spawn_writer sys ~dc:0 ~key:keys.(0) ~until:6_000_000
      ~period:90_000
  and c1 = spawn_writer sys ~dc:1 ~key:keys.(1) ~until:6_000_000
      ~period:90_000
  in
  (* probe while the partition is still up: the rejoin must not wait for
     the heal *)
  let done_during_partition = ref false in
  Sim.Engine.schedule_at (U.System.engine sys) ~time:5_400_000 (fun () ->
      done_during_partition := not (U.System.dc_syncing sys 2));
  U.System.run sys ~until:8_000_000;
  Alcotest.(check bool) "rejoin finished with the partition still up" true
    !done_during_partition;
  Alcotest.(check bool) "the unreachable source was dropped" true
    (counter_total (U.System.metrics sys) "sync_peer_drops_total" >= 1);
  Util.assert_por sys;
  Util.assert_convergence sys;
  let vals = read_back sys ~dc:2 ~keys ~at:8_500_000 in
  Alcotest.(check int) "dc0's increments visible at dc2 exactly once" !c0
    vals.(0);
  Alcotest.(check int) "dc1's increments visible at dc2 exactly once" !c1
    vals.(1)

(* (2) A polled sibling is partitioned away mid-SYNC_PULL: the snapshot
   comes from dc1, but dc0 — polled in the pull round — sits behind a
   cut link. The per-round deadline must drop dc0, restart the round
   without it and finish against dc1 alone, before the heal. The cert
   leaders live at dc1 here so the partitioned sibling is a plain
   follower: a rejoiner cut off from the live *leader* legitimately
   cannot finish its strong-side catch-up until the heal. *)
let test_partition_polled_sibling () =
  let sys = Util.make_system ~partitions:3 ~seed:23 ~leader_dc:1 () in
  let keys = [| 110; 111 |] in
  Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
  U.Nemesis.inject sys
    (U.Nemesis.merge
       [
         [
           { U.Nemesis.at_us = 1_500_000; ev = U.Nemesis.Crash_dc 2 };
           { at_us = 3_000_000; ev = U.Nemesis.Recover_dc 2 };
         ];
         U.Nemesis.partition_during_sync ~rejoiner:2 ~peer:0
           ~from_us:2_950_000 ~until_us:6_000_000;
       ]);
  let c0 = spawn_writer sys ~dc:0 ~key:keys.(0) ~until:6_500_000
      ~period:90_000
  and c1 = spawn_writer sys ~dc:1 ~key:keys.(1) ~until:6_500_000
      ~period:90_000
  in
  let done_during_partition = ref false in
  Sim.Engine.schedule_at (U.System.engine sys) ~time:5_400_000 (fun () ->
      done_during_partition := not (U.System.dc_syncing sys 2));
  U.System.run sys ~until:8_500_000;
  Alcotest.(check bool) "rejoin finished with the partition still up" true
    !done_during_partition;
  Alcotest.(check bool) "the laggard sibling was dropped from the round"
    true
    (counter_total (U.System.metrics sys) "sync_peer_drops_total" >= 1);
  Util.assert_por sys;
  Util.assert_convergence sys;
  let vals = read_back sys ~dc:2 ~keys ~at:9_000_000 in
  Alcotest.(check int) "dc0's increments visible at dc2 exactly once" !c0
    vals.(0);
  Alcotest.(check int) "dc1's increments visible at dc2 exactly once" !c1
    vals.(1)

(* (3) A polled sibling crashes mid-round and stays dead: dc2 rejoins
   via dc1's snapshot while dc0 dies permanently around the first pull
   round. The rejoin must conclude against the one surviving sibling,
   and the correct DCs converge. *)
let test_crash_polled_sibling () =
  let sys = Util.make_system ~partitions:3 ~seed:25 () in
  let key = 120 in
  U.System.preload sys key (Crdt.Ctr_add 0);
  U.Nemesis.inject sys
    (U.Nemesis.merge
       [
         [
           { U.Nemesis.at_us = 1_500_000; ev = U.Nemesis.Crash_dc 2 };
           { at_us = 3_000_000; ev = U.Nemesis.Recover_dc 2 };
         ];
         U.Nemesis.crash_during_sync ~peer:0 ~at_us:3_120_000;
       ]);
  (* the only counted writer sits at dc1: dc0's last pre-crash commits
     may die with it, dc1's are durable *)
  let c1 = spawn_writer sys ~dc:1 ~key ~until:5_000_000 ~period:90_000 in
  U.System.run sys ~until:7_000_000;
  Alcotest.(check bool) "dc2 finished catching up" false
    (U.System.dc_syncing sys 2);
  Util.assert_convergence sys;
  let vals = read_back sys ~dc:2 ~keys:[| key |] ~at:7_500_000 in
  Alcotest.(check int) "dc1's increments visible at dc2 exactly once" !c1
    vals.(0)

(* The ISSUE acceptance scenario: a seeded random schedule with one
   crash/recover cycle plus a partition and a gray link aimed at the
   recovering DC's sync peers (healed only by the final Heal_all) must
   still complete the rejoin before Heal_all + horizon/4, leave no DC
   stuck syncing and no strong transaction pending. *)
let test_seeded_combined_adversity () =
  let dcs = 3 and horizon = 8_000_000 in
  let heal_at = 3 * horizon / 4 in
  let schedule_of seed =
    U.Nemesis.random_schedule ~seed ~dcs ~horizon_us:horizon ~max_crashes:1
      ~max_partitions:1 ~max_degrades:1 ~max_recoveries:1
      ~max_sync_partitions:1 ~max_sync_degrades:1 ()
  in
  let recovery_of sched =
    List.find_map
      (fun s ->
        match s.U.Nemesis.ev with
        | U.Nemesis.Recover_dc dc -> Some dc
        | _ -> None)
      sched
  in
  let rec find seed =
    if seed > 564 then Alcotest.fail "no recovering seed below 564"
    else
      match recovery_of (schedule_of seed) with
      | Some dc -> (seed, dc)
      | None -> find (seed + 1)
  in
  let seed, rec_dc = find 501 in
  let sys =
    Util.make_system ~partitions:3 ~seed ~client_failover_us:400_000 ()
  in
  let key = 130 in
  U.System.preload sys key (Crdt.Ctr_add 0);
  U.Nemesis.inject sys (schedule_of seed);
  for dc = 0 to dcs - 1 do
    ignore (spawn_writer sys ~dc ~key ~until:heal_at ~period:120_000)
  done;
  ignore
    (U.System.spawn_client sys ~dc:0 (fun c ->
         while U.System.now sys < heal_at do
           (try
              Client.start c ~strong:true;
              Client.update c key (Crdt.Ctr_add 1);
              ignore (Client.commit c)
            with Client.Aborted -> ());
           Fiber.sleep 200_000
         done));
  let rejoined_in_time = ref false in
  Sim.Engine.schedule_at (U.System.engine sys)
    ~time:(heal_at + (horizon / 4))
    (fun () -> rejoined_in_time := not (U.System.dc_syncing sys rec_dc));
  U.System.run sys ~until:(horizon + 2_000_000);
  Alcotest.(check bool) "rejoined before Heal_all + horizon/4" true
    !rejoined_in_time;
  Alcotest.(check
      (float 0.0))
    "dcs_syncing gauge drained" 0.0
    (Sim.Metrics.gauge_value
       (Sim.Metrics.gauge (U.System.metrics sys) "dcs_syncing"));
  Alcotest.(check int) "no strong transaction left pending" 0
    (U.System.pending_strong sys);
  Util.assert_convergence sys

(* Recovery guard rails: a duplicate RECOVER_DC mid-sync and a
   RECOVER_DC for a DC that never crashed are warned no-ops — the
   system neither raises nor wedges, and the real recovery still
   completes. *)
let test_recover_guards () =
  let sys = Util.make_system ~partitions:2 ~seed:27 () in
  let key = 140 in
  U.System.preload sys key (Crdt.Ctr_add 0);
  U.Nemesis.inject sys
    [
      { U.Nemesis.at_us = 1_000_000; ev = U.Nemesis.Crash_dc 2 };
      { at_us = 2_000_000; ev = U.Nemesis.Recover_dc 2 };
      (* overlapping schedules fire a second recovery mid-sync ... *)
      { at_us = 2_050_000; ev = U.Nemesis.Recover_dc 2 };
      (* ... and one for a DC that never crashed *)
      { at_us = 2_500_000; ev = U.Nemesis.Recover_dc 1 };
    ];
  let c0 = spawn_writer sys ~dc:0 ~key ~until:4_000_000 ~period:90_000 in
  U.System.run sys ~until:6_000_000;
  Alcotest.(check bool) "dc2 finished catching up" false
    (U.System.dc_syncing sys 2);
  Alcotest.(check bool) "dc1 was never dragged into a sync" false
    (U.System.dc_syncing sys 1);
  Util.assert_convergence sys;
  let vals = read_back sys ~dc:2 ~keys:[| key |] ~at:6_500_000 in
  Alcotest.(check int) "increments visible at dc2 exactly once" !c0 vals.(0)

(* The overlap budgets are schedule-compatible: defaults draw nothing
   (explicit zeros reproduce the default schedule exactly), and enabling
   them only appends partitions / gray links that involve the recovering
   DC inside its crash -> recover window. *)
let test_overlap_schedule_determinism () =
  let dcs = 3 and horizon = 8_000_000 in
  let base_of seed =
    U.Nemesis.random_schedule ~seed ~dcs ~horizon_us:horizon ~max_crashes:1
      ~max_partitions:0 ~max_degrades:0 ~max_recoveries:1 ()
  in
  let overlap_of seed =
    U.Nemesis.random_schedule ~seed ~dcs ~horizon_us:horizon ~max_crashes:1
      ~max_partitions:0 ~max_degrades:0 ~max_recoveries:1
      ~max_sync_partitions:1 ~max_sync_degrades:1 ()
  in
  let recovery_of sched =
    List.find_map
      (fun s ->
        match s.U.Nemesis.ev with
        | U.Nemesis.Recover_dc dc -> Some (dc, s.U.Nemesis.at_us)
        | _ -> None)
      sched
  in
  let rec find seed =
    if seed > 128 then Alcotest.fail "no recovering seed below 128"
    else
      match recovery_of (base_of seed) with
      | Some r -> (seed, r)
      | None -> find (seed + 1)
  in
  let seed, (rec_dc, recover_at) = find 0 in
  let base = base_of seed in
  (* explicit zeros must not perturb the Rng stream *)
  let zeros =
    U.Nemesis.random_schedule ~seed ~dcs ~horizon_us:horizon ~max_crashes:1
      ~max_partitions:0 ~max_degrades:0 ~max_recoveries:1
      ~max_sync_partitions:0 ~max_sync_degrades:0 ()
  in
  Alcotest.(check bool) "zero overlap budgets draw nothing" true
    (base = zeros);
  let sched = overlap_of seed in
  let crash_at =
    match
      List.find_opt
        (fun s -> s.U.Nemesis.ev = U.Nemesis.Crash_dc rec_dc)
        sched
    with
    | Some s -> s.U.Nemesis.at_us
    | None -> Alcotest.fail "recovery without a crash"
  in
  let added =
    List.filter
      (fun s ->
        match s.U.Nemesis.ev with
        | U.Nemesis.Partition _ | U.Nemesis.Degrade _ -> true
        | _ -> false)
      sched
  in
  Alcotest.(check bool) "overlap budgets added adversity" true
    (added <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "overlap targets the recovering DC" true
        (match s.U.Nemesis.ev with
        | U.Nemesis.Partition (a, b) -> a = rec_dc || b = rec_dc
        | U.Nemesis.Degrade { src; dst; _ } -> src = rec_dc || dst = rec_dc
        | _ -> false);
      Alcotest.(check bool) "overlap is cut inside the crash window" true
        (s.U.Nemesis.at_us >= crash_at && s.U.Nemesis.at_us <= recover_at))
    added;
  let stripped =
    List.filter
      (fun s ->
        match s.U.Nemesis.ev with
        | U.Nemesis.Partition _ | U.Nemesis.Degrade _ -> false
        | _ -> true)
      sched
  in
  Alcotest.(check bool) "overlap budgets only append to the base schedule"
    true
    (List.sort compare stripped = List.sort compare base)

(* The RETRY-rule leadership-bid debounce is derived from the deployment
   ([Config.reclaim_debounce_us]: one Ω reaction period plus the
   worst-case RTT) instead of the former fixed 1 s. Assert the tighter
   bound on the adversity deployment, and that a crashed leader's groups
   are actually reclaimed within the budget the derivation implies:
   detection delay + two debounce periods + an election round's slack. *)
let test_reclaim_debounce_bound () =
  let sys = Util.make_system ~partitions:2 ~seed:29 () in
  let cfg = U.System.cfg sys in
  let debounce = U.Config.reclaim_debounce_us cfg in
  Alcotest.(check bool) "derived debounce tighter than the old fixed 1 s"
    true (debounce < 1_000_000);
  let crash_at = 1_500_000 in
  Sim.Engine.schedule_at (U.System.engine sys) ~time:crash_at (fun () ->
      U.System.fail_dc sys 0);
  (* strong writer at a surviving DC: stalls while the crashed leader's
     groups are headless, resumes once the bids reclaim them *)
  let first_after = ref max_int in
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         while U.System.now sys < 5_500_000 do
           (try
              Client.start c ~strong:true;
              Client.update c 500 (Crdt.Ctr_add 1);
              match Client.commit c with
              | `Committed _ ->
                  let t = U.System.now sys in
                  if t > crash_at && t < !first_after then first_after := t
              | `Aborted -> ()
            with Client.Aborted -> ());
           Fiber.sleep 50_000
         done));
  U.System.run sys ~until:6_000_000;
  let deadline =
    crash_at + cfg.U.Config.detection_delay_us + (2 * debounce) + 500_000
  in
  Alcotest.(check bool)
    (Fmt.str "strong commits resume by %d us (first: %d us)" deadline
       !first_after)
    true
    (!first_after <= deadline);
  Util.assert_convergence sys

let suite =
  [
    Alcotest.test_case
      "snapshot source partitioned mid-SYNC_STORE fails over" `Slow
      test_partition_snapshot_source;
    Alcotest.test_case
      "polled sibling partitioned mid-SYNC_PULL is dropped" `Slow
      test_partition_polled_sibling;
    Alcotest.test_case "polled sibling crashing mid-round is tolerated"
      `Slow test_crash_polled_sibling;
    Alcotest.test_case
      "seeded combined adversity still rejoins before the deadline" `Slow
      test_seeded_combined_adversity;
    Alcotest.test_case "duplicate and spurious RECOVER_DC are warned no-ops"
      `Slow test_recover_guards;
    Alcotest.test_case "overlap budgets keep seeded schedules deterministic"
      `Quick test_overlap_schedule_determinism;
    Alcotest.test_case "leadership reclaim honours the derived debounce"
      `Slow test_reclaim_debounce_bound;
  ]
