(* Latency sample sets, percentiles, CDFs, throughput counters. *)

let test_percentiles () =
  let s = Sim.Stats.create_samples () in
  for i = 1 to 100 do
    Sim.Stats.add s i
  done;
  Alcotest.(check int) "count" 100 (Sim.Stats.count s);
  Alcotest.(check (float 0.001)) "p0" 1.0 (Sim.Stats.percentile s 0.0);
  Alcotest.(check (float 0.001)) "p100" 100.0 (Sim.Stats.percentile s 100.0);
  Alcotest.(check (float 0.001)) "median" 50.5 (Sim.Stats.median s);
  Alcotest.(check (float 0.01)) "p90" 90.1 (Sim.Stats.percentile s 90.0)

let test_percentile_interpolation () =
  let s = Sim.Stats.create_samples () in
  Sim.Stats.add s 10;
  Sim.Stats.add s 20;
  Alcotest.(check (float 0.001)) "p50 interpolates" 15.0 (Sim.Stats.median s)

let test_mean_min_max () =
  let s = Sim.Stats.create_samples () in
  List.iter (Sim.Stats.add s) [ 4; 8; 15; 16; 23; 42 ];
  Alcotest.(check (float 0.001)) "mean" 18.0 (Sim.Stats.mean s);
  Alcotest.(check int) "min" 4 (Sim.Stats.min_value s);
  Alcotest.(check int) "max" 42 (Sim.Stats.max_value s)

let test_unsorted_insertion () =
  let s = Sim.Stats.create_samples () in
  List.iter (Sim.Stats.add s) [ 9; 1; 5 ];
  Alcotest.(check (float 0.001)) "median of unsorted" 5.0 (Sim.Stats.median s);
  (* adding after sorting must keep results correct *)
  Sim.Stats.add s 0;
  Alcotest.(check int) "new min" 0 (Sim.Stats.min_value s)

let test_empty_raises () =
  let s = Sim.Stats.create_samples () in
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Stats.mean: empty sample set") (fun () ->
      ignore (Sim.Stats.mean s))

let test_opt_helpers () =
  let s = Sim.Stats.create_samples () in
  Alcotest.(check (option (float 0.001))) "empty mean" None
    (Sim.Stats.mean_opt s);
  Alcotest.(check (option (float 0.001))) "empty percentile" None
    (Sim.Stats.percentile_opt s 50.0);
  List.iter (Sim.Stats.add s) [ 10; 20; 30 ];
  Alcotest.(check (option (float 0.001))) "mean" (Some 20.0)
    (Sim.Stats.mean_opt s);
  Alcotest.(check (option (float 0.001)))
    "percentile agrees with exact"
    (Some (Sim.Stats.percentile s 90.0))
    (Sim.Stats.percentile_opt s 90.0)

let test_cdf () =
  let s = Sim.Stats.create_samples () in
  for i = 1 to 1000 do
    Sim.Stats.add s i
  done;
  let cdf = Sim.Stats.cdf s ~points:11 in
  Alcotest.(check int) "points" 11 (List.length cdf);
  let v0, f0 = List.hd cdf in
  Alcotest.(check int) "starts at min" 1 v0;
  Alcotest.(check (float 0.001)) "starts at 0" 0.0 f0;
  let vn, fn = List.nth cdf 10 in
  Alcotest.(check int) "ends at max" 1000 vn;
  Alcotest.(check (float 0.001)) "ends at 1" 1.0 fn;
  (* fractions increase *)
  let rec mono = function
    | (_, f1) :: ((_, f2) :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (f1 <= f2);
        mono rest
    | _ -> ()
  in
  mono cdf

let test_counter_window () =
  let c = Sim.Stats.create_counter ~window_start:100 ~window_end:200 in
  Sim.Stats.incr_counter c ~now:50;
  Sim.Stats.incr_counter c ~now:100;
  Sim.Stats.incr_counter c ~now:150;
  Sim.Stats.incr_counter c ~now:199;
  Sim.Stats.incr_counter c ~now:200;
  Sim.Stats.incr_counter c ~now:300;
  Alcotest.(check int) "only in-window events" 3 (Sim.Stats.counter_events c);
  Alcotest.(check bool) "in_window" true (Sim.Stats.in_window c ~now:150);
  Alcotest.(check bool) "out of window" false (Sim.Stats.in_window c ~now:200)

let test_throughput () =
  (* 500 events in a 0.5-second window = 1000 events/s *)
  let c = Sim.Stats.create_counter ~window_start:0 ~window_end:500_000 in
  for i = 0 to 499 do
    Sim.Stats.incr_counter c ~now:(i * 1000)
  done;
  Alcotest.(check (float 0.001)) "throughput" 1000.0 (Sim.Stats.throughput c)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentiles stay within min/max" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 50) (int_bound 10_000)) (int_bound 100))
    (fun (samples, p) ->
      QCheck.assume (samples <> []);
      let s = Sim.Stats.create_samples () in
      List.iter (Sim.Stats.add s) samples;
      let v = Sim.Stats.percentile s (float_of_int p) in
      v >= float_of_int (Sim.Stats.min_value s)
      && v <= float_of_int (Sim.Stats.max_value s))

let suite =
  [
    Alcotest.test_case "exact percentiles" `Quick test_percentiles;
    Alcotest.test_case "percentile interpolation" `Quick
      test_percentile_interpolation;
    Alcotest.test_case "mean/min/max" `Quick test_mean_min_max;
    Alcotest.test_case "insertion after sorting" `Quick test_unsorted_insertion;
    Alcotest.test_case "empty set raises" `Quick test_empty_raises;
    Alcotest.test_case "total (option) variants" `Quick test_opt_helpers;
    Alcotest.test_case "empirical CDF" `Quick test_cdf;
    Alcotest.test_case "counter honours its window" `Quick test_counter_window;
    Alcotest.test_case "throughput computation" `Quick test_throughput;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
  ]
