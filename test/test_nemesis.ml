(* Nemesis end-to-end: a RUBiS workload survives a seeded adversity
   schedule — steady packet loss and duplication, a transient partition
   (long enough to cause a false suspicion and a rehabilitation), and a
   whole-DC crash — and the run still satisfies PoR, converges across
   the surviving DCs after the final heal, and leaves no strong
   transaction pending. The whole scenario is reproducible from its
   seed: two runs produce identical histories. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber
module Rubis = Workload.Rubis
module Network = Net.Network

let seed = 2021

(* The scripted adversity schedule. The dc1<->dc2 cut lasts 1.4s, far
   beyond the 500ms detection delay, so both sides falsely suspect each
   other and rehabilitate after the heal. dc4 crashes for good. *)
let schedule : U.Nemesis.schedule =
  [
    { U.Nemesis.at_us = 800_000; ev = U.Nemesis.Partition (1, 2) };
    { at_us = 1_600_000; ev = U.Nemesis.Crash_dc 4 };
    { at_us = 2_200_000; ev = U.Nemesis.Heal (1, 2) };
    { at_us = 4_000_000; ev = U.Nemesis.Heal_all };
  ]

type outcome = {
  o_txns : (int * int * int * int) list;  (* cl, sq, strong ts, commit *)
  o_committed : int;
  o_strong : int;
  o_false_susp : int;
  o_restorations : int;
  o_dropped_loss : int;
  o_dropped_partition : int;
  o_dropped_crash : int;
  o_retransmissions : int;
  o_dups : int;
  o_pending_strong : int;
}

let run_scenario () =
  let sys =
    Util.make_system
      ~topo:(Net.Topology.n_dcs 5)
      ~partitions:3 ~f:2 ~conflict:Rubis.conflict_spec ~seed
      ~link_faults:Net.Faults.default_spec ()
  in
  let spec =
    {
      Rubis.default_spec with
      n_items = 300;
      n_users = 1_000;
      n_regions = 10;
      n_categories = 5;
      think_time_us = 60_000;
    }
  in
  Rubis.populate sys spec;
  U.Nemesis.inject sys schedule;
  let stop () = U.System.now sys >= 6_000_000 in
  for i = 0 to 5 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 5) (fun c ->
           Rubis.client_body spec ~stop c))
  done;
  Util.run sys ~until:8_000_000;
  Util.assert_por sys;
  Util.assert_convergence sys;
  let h = U.System.history sys in
  let det = U.System.detector sys in
  let net = U.System.network sys in
  {
    o_txns =
      List.sort compare
        (List.map
           (fun (r : U.History.txn_record) ->
             ( r.h_tid.U.Types.cl,
               r.h_tid.U.Types.sq,
               Vclock.Vc.strong r.h_vec,
               r.h_commit_us ))
           (U.History.txns h));
    o_committed = U.History.committed_total h;
    o_strong = U.History.committed_strong h;
    o_false_susp = U.Detector.false_suspicions det;
    o_restorations = U.Detector.restorations det;
    o_dropped_loss = Network.dropped_loss net;
    o_dropped_partition = Network.dropped_partition net;
    o_dropped_crash = Network.dropped_crash net;
    o_retransmissions = Network.retransmissions net;
    o_dups = Network.duplicates_suppressed net;
    o_pending_strong = U.System.pending_strong sys;
  }

let test_nemesis_rubis () =
  let o = run_scenario () in
  Alcotest.(check bool) "a real workload ran" true (o.o_committed > 50);
  Alcotest.(check bool) "strong transactions committed" true (o.o_strong > 0);
  Alcotest.(check int) "no strong transaction left pending" 0
    o.o_pending_strong;
  Alcotest.(check bool) "the partition caused a false suspicion" true
    (o.o_false_susp >= 1);
  Alcotest.(check bool) "the heal caused a rehabilitation" true
    (o.o_restorations >= 1);
  Alcotest.(check bool) "lossy links dropped messages" true
    (o.o_dropped_loss > 0);
  Alcotest.(check bool) "the partition cut messages" true
    (o.o_dropped_partition > 0);
  Alcotest.(check bool) "the crash dropped messages" true
    (o.o_dropped_crash > 0);
  Alcotest.(check bool) "losses were retransmitted" true
    (o.o_retransmissions > 0);
  Alcotest.(check bool) "duplicates were suppressed" true (o.o_dups > 0)

let test_nemesis_deterministic () =
  let o1 = run_scenario () and o2 = run_scenario () in
  Alcotest.(check bool) "identical histories" true (o1.o_txns = o2.o_txns);
  Alcotest.(check int) "identical drop counts" o1.o_dropped_loss
    o2.o_dropped_loss;
  Alcotest.(check int) "identical retransmission counts"
    o1.o_retransmissions o2.o_retransmissions;
  Alcotest.(check int) "identical suspicion stats" o1.o_false_susp
    o2.o_false_susp

(* Spurious re-election (Algorithm A10 under a false suspicion): a
   partition separates the leader DC from a quorum of followers, so the
   preferred successor dc1 falsely suspects dc0 and claims the group
   through a contested ballot while dc0 still believes it leads. The
   stale leader can no longer gather an accept quorum, so no decision is
   ever taken at two ballots. After the heal, rehabilitation points Ω
   back at dc0, whose member reclaims the group at a yet higher ballot
   (Nack / recover), and every strong transaction that stalled during
   the partition resolves exactly once. *)
let test_spurious_reelection () =
  let dcs = 5 in
  let sys =
    Util.make_system ~topo:(Net.Topology.n_dcs dcs) ~partitions:1 ~f:2
      ~seed:7 ()
  in
  let keys = Array.init dcs (fun dc -> 300 + dc) in
  Array.iter (fun k -> U.System.preload sys k (Crdt.Ctr_add 0)) keys;
  U.Nemesis.inject sys
    [
      { U.Nemesis.at_us = 600_000; ev = U.Nemesis.Partition (0, 1) };
      { at_us = 600_000; ev = U.Nemesis.Partition (0, 2) };
      { at_us = 600_000; ev = U.Nemesis.Partition (0, 3) };
      { at_us = 2_600_000; ev = U.Nemesis.Heal_all };
    ];
  let commits = Array.make dcs 0 in
  for dc = 0 to dcs - 1 do
    ignore
      (U.System.spawn_client sys ~dc (fun c ->
           while U.System.now sys < 5_000_000 do
             Client.start c ~strong:true;
             Client.update c keys.(dc) (Crdt.Ctr_add 1);
             (match Client.commit c with
             | `Committed _ -> commits.(dc) <- commits.(dc) + 1
             | `Aborted -> ());
             Fiber.sleep 150_000
           done))
  done;
  let cert_of dc =
    match U.Replica.cert (U.System.replica sys ~dc ~part:0) with
    | Some c -> c
    | None -> Alcotest.fail "replica has no certification member"
  in
  (* probe the usurper while the partition is still up *)
  let mid = ref None in
  Sim.Engine.schedule (U.System.engine sys) ~delay:2_400_000 (fun () ->
      let c1 = cert_of 1 in
      mid := Some (U.Cert.status c1, U.Cert.ballot c1));
  Util.run sys ~until:12_000_000;
  Util.assert_por sys;
  Util.assert_convergence sys;
  (match !mid with
  | None -> Alcotest.fail "mid-partition probe did not run"
  | Some (st, b) ->
      Alcotest.(check bool) "dc1 contested the group (ballot advanced)" true
        (b >= 1);
      Alcotest.(check string) "dc1 led at the contested ballot" "leader"
        (U.Cert.status_name st));
  let det = U.System.detector sys in
  Alcotest.(check bool) "the suspicion was false" true
    (U.Detector.false_suspicions det >= 1);
  Alcotest.(check bool) "dc0 was rehabilitated after the heal" true
    (U.Detector.restorations det >= 1);
  Alcotest.(check bool) "dc0 reclaimed leadership" true
    (U.Cert.is_leader (cert_of 0));
  Alcotest.(check bool) "at a ballot above the contested one" true
    (U.Cert.ballot (cert_of 0) > 1);
  Alcotest.(check int) "no strong transaction left pending" 0
    (U.System.pending_strong sys);
  for dc = 0 to dcs - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "dc%d committed strong transactions" dc)
      true
      (commits.(dc) >= 1)
  done;
  (* exactly-once: read every counter back and compare with the number
     of commits its owner observed *)
  let final = Array.make dcs (-1) in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Client.start c;
         Array.iteri (fun i k -> final.(i) <- Client.read_int c k) keys;
         ignore (Client.commit c)));
  Util.run sys ~until:13_000_000;
  for dc = 0 to dcs - 1 do
    Alcotest.(check int)
      (Printf.sprintf "dc%d's increments were applied exactly once" dc)
      commits.(dc)
      final.(dc)
  done

let test_random_schedule () =
  let s1 = U.Nemesis.random_schedule ~seed:7 ~dcs:5 ~horizon_us:8_000_000 ()
  and s2 = U.Nemesis.random_schedule ~seed:7 ~dcs:5 ~horizon_us:8_000_000 () in
  Alcotest.(check bool) "same seed, same schedule" true (s1 = s2);
  let s3 = U.Nemesis.random_schedule ~seed:8 ~dcs:5 ~horizon_us:8_000_000 () in
  Alcotest.(check bool) "different seed, different schedule" true (s1 <> s3);
  (* sorted by time, ends with a heal_all inside the horizon *)
  let times = List.map (fun s -> s.U.Nemesis.at_us) s1 in
  Alcotest.(check bool) "sorted" true (times = List.sort compare times);
  Alcotest.(check bool) "ends healed" true
    (List.exists (fun s -> s.U.Nemesis.ev = U.Nemesis.Heal_all) s1);
  let crashes =
    List.length
      (List.filter
         (fun s ->
           match s.U.Nemesis.ev with U.Nemesis.Crash_dc _ -> true | _ -> false)
         s1)
  in
  Alcotest.(check bool) "at most one crash by default" true (crashes <= 1)

let suite =
  [
    Alcotest.test_case
      "RUBiS survives loss, a partition, a false suspicion and a DC crash"
      `Slow test_nemesis_rubis;
    Alcotest.test_case "nemesis runs replay deterministically from the seed"
      `Slow test_nemesis_deterministic;
    Alcotest.test_case
      "false suspicion of the leader forces a contested ballot" `Slow
      test_spurious_reelection;
    Alcotest.test_case "random schedules are seeded and well-formed" `Quick
      test_random_schedule;
  ]
