(* Configuration: conflict relations, mode predicates, validation. *)

module U = Unistore

let od key cls write = { U.Types.key; cls; write }

let test_serializable_conflicts () =
  let c = U.Config.ops_conflict U.Config.Serializable in
  Alcotest.(check bool) "w-w same key" true (c (od 1 0 true) (od 1 0 true));
  Alcotest.(check bool) "r-w same key" true (c (od 1 0 false) (od 1 0 true));
  Alcotest.(check bool) "w-r same key" true (c (od 1 0 true) (od 1 0 false));
  Alcotest.(check bool) "r-r same key" false (c (od 1 0 false) (od 1 0 false));
  Alcotest.(check bool) "different keys" false (c (od 1 0 true) (od 2 0 true))

let test_write_write_conflicts () =
  let c = U.Config.ops_conflict U.Config.Write_write in
  Alcotest.(check bool) "w-w" true (c (od 1 0 true) (od 1 0 true));
  Alcotest.(check bool) "r-w" false (c (od 1 0 false) (od 1 0 true))

let test_class_conflicts_symmetric () =
  let c = U.Config.ops_conflict (U.Config.Classes [ (1, 2) ]) in
  Alcotest.(check bool) "declared pair" true (c (od 1 1 true) (od 1 2 false));
  Alcotest.(check bool) "symmetric" true (c (od 1 2 false) (od 1 1 true));
  Alcotest.(check bool) "undeclared pair" false (c (od 1 1 true) (od 1 3 true));
  Alcotest.(check bool) "different keys" false (c (od 1 1 true) (od 2 2 true))

let test_all_strong_dummies () =
  (* dummy strong heartbeats (no operations) conflict with nothing *)
  Alcotest.(check bool) "two non-empty" true
    (U.Config.txs_conflict U.Config.All_strong [ od 1 0 true ] [ od 2 0 true ]);
  Alcotest.(check bool) "empty left" false
    (U.Config.txs_conflict U.Config.All_strong [] [ od 2 0 true ]);
  Alcotest.(check bool) "empty right" false
    (U.Config.txs_conflict U.Config.All_strong [ od 1 0 true ] [])

let test_mode_predicates () =
  let mk mode = U.Config.default ~mode () in
  Alcotest.(check bool) "unistore tracks uniformity" true
    (U.Config.tracks_uniformity (mk U.Config.Unistore));
  Alcotest.(check bool) "cureft does not" false
    (U.Config.tracks_uniformity (mk U.Config.Cure_ft));
  Alcotest.(check bool) "causal has no strong" false
    (U.Config.has_strong (mk U.Config.Causal_only));
  Alcotest.(check bool) "redblue centralized" true
    (U.Config.centralized_cert (mk U.Config.Red_blue));
  Alcotest.(check bool) "unistore distributed" false
    (U.Config.centralized_cert (mk U.Config.Unistore))

let test_effective_strong () =
  let mk mode = U.Config.default ~mode () in
  Alcotest.(check bool) "STRONG forces strong" true
    (U.Config.effective_strong (mk U.Config.Strong) ~requested:false);
  Alcotest.(check bool) "CAUSAL forces causal" false
    (U.Config.effective_strong (mk U.Config.Causal_only) ~requested:true);
  Alcotest.(check bool) "UNISTORE honours the request" true
    (U.Config.effective_strong (mk U.Config.Unistore) ~requested:true)

let test_validation () =
  Alcotest.(check bool) "bad partitions rejected" true
    (try
       ignore (U.Config.default ~partitions:0 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad leader rejected" true
    (try
       ignore (U.Config.default ~leader_dc:7 ());
       false
     with Invalid_argument _ -> true)

let test_quorum () =
  let cfg = U.Config.default ~f:1 () in
  Alcotest.(check int) "f+1" 2 (U.Config.quorum cfg);
  let cfg = U.Config.default ~topo:(Net.Topology.five_dcs ()) ~f:2 () in
  Alcotest.(check int) "f+1 of 5" 3 (U.Config.quorum cfg)

(* The retransmission-backoff cap is derived from the deployment, not a
   hard-coded 500 ms: suspicion timeout plus the topology's worst-case
   round trip. Pinned against the three-DC defaults (Virginia–Frankfurt
   145 ms RTT, ±50 µs jitter → 145.1 ms worst case) and checked to move
   with the detector configuration. *)
let test_rto_cap_derivation () =
  let topo = Net.Topology.three_dcs () in
  Alcotest.(check int) "worst-case RTT of three DCs" 145_100
    (Net.Topology.max_rtt_us topo);
  let cfg = U.Config.default ~topo () in
  Alcotest.(check int) "default cap = detection delay + max RTT"
    (cfg.U.Config.detection_delay_us + 145_100)
    (U.Config.rto_cap_us cfg);
  let tight = U.Config.default ~topo ~detection_delay_us:200_000 () in
  Alcotest.(check int) "cap tightens with the detector" (200_000 + 145_100)
    (U.Config.rto_cap_us tight);
  (* System.create installs the derived cap into the network *)
  let sys = U.System.create tight in
  Alcotest.(check int) "installed into the network" (200_000 + 145_100)
    (Net.Network.rto_cap (U.System.network sys))

(* The RETRY-rule leadership-bid debounce is likewise derived — one Ω
   reaction period plus the worst-case RTT — and strictly tighter than
   the former fixed 1 s on the paper's deployments. *)
let test_reclaim_debounce_derivation () =
  let check_topo name topo =
    let cfg = U.Config.default ~topo () in
    Alcotest.(check int)
      (name ^ ": debounce = fd period + max RTT")
      (cfg.U.Config.fd_period_us + Net.Topology.max_rtt_us topo)
      (U.Config.reclaim_debounce_us cfg);
    Alcotest.(check bool)
      (name ^ ": tighter than the old fixed 1 s")
      true
      (U.Config.reclaim_debounce_us cfg < 1_000_000)
  in
  check_topo "three DCs" (Net.Topology.three_dcs ());
  check_topo "five DCs" (Net.Topology.five_dcs ())

(* The sync-round drop backoff is derived, not the former fixed 4x
   multiplier: a dropped peer stays barred for the Ω detection window
   (rounded up to whole pull rounds) plus two rounds of slack, which at
   the defaults (500 ms detection, 300 ms deadline) reproduces the
   seed's 1.2 s exactly and scales with both knobs. *)
let test_sync_drop_backoff_derivation () =
  let cfg = U.Config.default () in
  Alcotest.(check int) "defaults reproduce the former 4x (1.2 s)" 1_200_000
    (U.Config.sync_drop_backoff_us cfg);
  Alcotest.(check int) "defaults = 4 rounds"
    (4 * cfg.U.Config.sync_pull_deadline_us)
    (U.Config.sync_drop_backoff_us cfg);
  let tight = U.Config.default ~detection_delay_us:200_000 () in
  Alcotest.(check int) "tighter detector shrinks the bar"
    ((1 + 2) * 300_000)
    (U.Config.sync_drop_backoff_us tight);
  let slow = U.Config.default ~sync_pull_deadline_us:500_000 () in
  Alcotest.(check int) "longer rounds stretch it"
    ((1 + 2) * 500_000)
    (U.Config.sync_drop_backoff_us slow)

(* The admission-shed retry backoff is likewise derived: two broadcast
   periods of queue drain, to which the client adds uniform jitter of
   the same magnitude — the 10-20 ms retry window at the default 5 ms
   broadcast period. *)
let test_overload_backoff_derivation () =
  let cfg = U.Config.default () in
  Alcotest.(check int) "base = two broadcast periods (10 ms)" 10_000
    (U.Config.overload_backoff_us cfg);
  let fast = U.Config.default ~broadcast_period_us:2_000 () in
  Alcotest.(check int) "faster gossip shrinks the window" 4_000
    (U.Config.overload_backoff_us fast)

let suite =
  [
    Alcotest.test_case "serializable conflict relation" `Quick
      test_serializable_conflicts;
    Alcotest.test_case "write-write conflict relation" `Quick
      test_write_write_conflicts;
    Alcotest.test_case "class conflicts are symmetric and keyed" `Quick
      test_class_conflicts_symmetric;
    Alcotest.test_case "all-strong ignores empty transactions" `Quick
      test_all_strong_dummies;
    Alcotest.test_case "mode predicates" `Quick test_mode_predicates;
    Alcotest.test_case "effective strength per mode" `Quick
      test_effective_strong;
    Alcotest.test_case "configuration validation" `Quick test_validation;
    Alcotest.test_case "quorum sizes" `Quick test_quorum;
    Alcotest.test_case "derived RTO cap" `Quick test_rto_cap_derivation;
    Alcotest.test_case "derived reclaim debounce" `Quick
      test_reclaim_debounce_derivation;
    Alcotest.test_case "derived sync-drop backoff" `Quick
      test_sync_drop_backoff_derivation;
    Alcotest.test_case "derived overload retry backoff" `Quick
      test_overload_backoff_derivation;
  ]
