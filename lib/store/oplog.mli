(** Per-key operation logs with snapshot reads (opLog of §5.1).

    Each entry records an update operation together with the commit
    vector of its transaction and its CRDT tag; a read materialises the
    key's state within a snapshot vector. *)

type entry = { op : Crdt.op; vec : Vclock.Vc.t; tag : Crdt.tag }

type t

val create : unit -> t
val append : t -> Keyspace.key -> op:Crdt.op -> vec:Vclock.Vc.t -> tag:Crdt.tag -> unit

(** Entries for a key, newest (highest tag) first. *)
val entries : t -> Keyspace.key -> entry list

(** Discard every version (crash-recovery wipe before a snapshot
    install); the lifetime {!appended} counter is preserved. *)
val clear : t -> unit

val version_count : t -> Keyspace.key -> int
val keys : t -> Keyspace.key list

(** Total number of appends over the log's lifetime. *)
val appended : t -> int

(** [read t key ~snap] returns the key's value within the snapshot and
    the highest Lamport clock among contributing operations (None when
    the key has no visible version). *)
val read : t -> Keyspace.key -> snap:Vclock.Vc.t -> Crdt.value * int option

(** Collapse history below a horizon vector that every future snapshot is
    guaranteed to include (register keys keep only their last writer). *)
val compact : t -> horizon:Vclock.Vc.t -> unit
