(* Simulated per-node disk: group-commit WAL + atomic snapshot.
   See wal.mli for the model. *)

type 'a record = {
  seq : int;
  crc : int;  (* Hashtbl.hash (seq, payload); a bad crc marks a tear *)
  bytes : int;
  payload : 'a;
}

type 's snap = { snap_seq : int; state : 's }

type ('a, 's) t = {
  eng : Sim.Engine.t;
  fsync_us : int;
  mb_per_s : int;  (* 1 MB/s = 1 byte/us, so this is also bytes/us *)
  size : 'a -> int;
  snap_size : 's -> int;
  mutable slow : int;  (* gray-disk multiplier, 1 = healthy *)
  mutable gen : int;  (* bumped on crash/scrub; stale completions no-op *)
  mutable next : int;  (* next sequence number *)
  mutable buffered : 'a record list;  (* newest first, awaiting submit *)
  mutable inflight : 'a record list;  (* oldest first, fsync under way *)
  mutable durable : 'a record list;  (* newest first *)
  mutable busy : bool;  (* an fsync is in flight *)
  mutable waiters : (int * int * (unit -> unit)) list;  (* gen, seq, k *)
  mutable snapshot : 's snap option;  (* installed (durable) snapshot *)
  mutable snap_req : int;  (* snapshot write generation: latest wins *)
  mutable snap_writing : bool;
  mutable tear_armed : bool;
  m_fsync : Sim.Metrics.histogram option;
  m_bytes : Sim.Metrics.counter option;
  m_torn : Sim.Metrics.counter option;
  (* profiling labels for disk-completion events, interned lazily so
     the profiler may be enabled after the WAL is built *)
  mutable lab_fsync : Sim.Prof.label;
  mutable lab_snapshot : Sim.Prof.label;
}

let crc_of ~seq payload = Hashtbl.hash (seq, payload)

(* Planted-bug hook (test-only): when set, [append] runs the [?k]
   durability continuation immediately instead of after the fsync —
   the classic ack-before-fsync bug. The exploration harness's
   self-test enables it to prove the durability oracle catches it. *)
let unsafe_ack = ref false

let create ~eng ?metrics ~fsync_us ~mb_per_s ~size ~snap_size () =
  let m f =
    Option.map (fun (m, labels) -> f m ~labels) metrics
  in
  {
    eng;
    fsync_us;
    mb_per_s = max 1 mb_per_s;
    size;
    snap_size;
    slow = 1;
    gen = 0;
    next = 1;
    buffered = [];
    inflight = [];
    durable = [];
    busy = false;
    waiters = [];
    snapshot = None;
    snap_req = 0;
    snap_writing = false;
    tear_armed = false;
    m_fsync = m (fun mt ~labels -> Sim.Metrics.histogram mt ~labels "wal_fsync_us");
    m_bytes =
      m (fun mt ~labels ->
          Sim.Metrics.counter mt ~labels "wal_appended_bytes_total");
    m_torn =
      m (fun mt ~labels ->
          Sim.Metrics.counter mt ~labels "wal_torn_truncations_total");
    lab_fsync = Sim.Prof.none;
    lab_snapshot = Sim.Prof.none;
  }

let lab_fsync t =
  if t.lab_fsync <> Sim.Prof.none then t.lab_fsync
  else begin
    let l = Sim.Prof.label (Sim.Engine.prof t.eng) "wal/fsync" in
    t.lab_fsync <- l;
    l
  end

let lab_snapshot t =
  if t.lab_snapshot <> Sim.Prof.none then t.lab_snapshot
  else begin
    let l = Sim.Prof.label (Sim.Engine.prof t.eng) "wal/snapshot" in
    t.lab_snapshot <- l;
    l
  end

(* Write-time charge for [bytes]: one fsync plus the bandwidth cost,
   both inflated by the gray-disk factor. *)
let write_delay t bytes =
  t.slow * (t.fsync_us + (bytes / t.mb_per_s)) |> max 1

let durable_seq t =
  match t.durable with [] -> 0 | r :: _ -> r.seq

let run_waiters t =
  let floor = durable_seq t in
  let ready, rest =
    List.partition (fun (g, s, _) -> g = t.gen && s <= floor) t.waiters
  in
  t.waiters <- rest;
  List.iter
    (fun (_, _, k) -> k ())
    (List.sort (fun (_, a, _) (_, b, _) -> compare a b) ready)

(* Group commit: one fsync covers everything buffered when it starts;
   appends landing during the write ride the next one. *)
let rec maybe_fsync t =
  if (not t.busy) && t.buffered <> [] then begin
    let batch = List.rev t.buffered in
    t.buffered <- [];
    t.inflight <- batch;
    t.busy <- true;
    let bytes = List.fold_left (fun a r -> a + r.bytes) 0 batch in
    let delay = write_delay t bytes in
    let gen = t.gen in
    Sim.Engine.schedule t.eng ~label:(lab_fsync t) ~delay (fun () ->
        if t.gen = gen then begin
          t.durable <- List.rev_append t.inflight t.durable;
          t.inflight <- [];
          t.busy <- false;
          Option.iter (fun h -> Sim.Metrics.observe h delay) t.m_fsync;
          Option.iter (fun c -> Sim.Metrics.incr ~by:bytes c) t.m_bytes;
          run_waiters t;
          maybe_fsync t
        end)
  end

let append t ?k payload =
  let seq = t.next in
  t.next <- seq + 1;
  let r =
    { seq; crc = crc_of ~seq payload; bytes = max 1 (t.size payload); payload }
  in
  t.buffered <- r :: t.buffered;
  (match k with
  | Some k when !unsafe_ack -> Sim.Engine.schedule t.eng ~delay:0 k
  | Some k -> t.waiters <- (t.gen, seq, k) :: t.waiters
  | None -> ());
  maybe_fsync t;
  seq

let snapshot t ~seq state =
  t.snap_req <- t.snap_req + 1;
  let req = t.snap_req and gen = t.gen in
  t.snap_writing <- true;
  let bytes = max 1 (t.snap_size state) in
  let delay = write_delay t bytes in
  Sim.Engine.schedule t.eng ~label:(lab_snapshot t) ~delay (fun () ->
      if t.gen = gen && t.snap_req = req then begin
        (* atomic rename: the new snapshot and the truncation appear
           together *)
        t.snapshot <- Some { snap_seq = seq; state };
        t.durable <- List.filter (fun r -> r.seq > seq) t.durable;
        t.snap_writing <- false;
        Option.iter (fun c -> Sim.Metrics.incr ~by:bytes c) t.m_bytes
      end)

let tear_next t = t.tear_armed <- true

let crash t =
  t.gen <- t.gen + 1;
  t.waiters <- [];
  t.buffered <- [];
  t.busy <- false;
  t.snap_writing <- false;
  (match t.inflight with
  | first :: _ ->
      (* the sector being written when the power cut: present on disk
         but checksum-invalid *)
      t.durable <- { first with crc = first.crc + 1 } :: t.durable;
      t.tear_armed <- false
  | [] ->
      if t.tear_armed then begin
        t.tear_armed <- false;
        match t.durable with
        | last :: rest -> t.durable <- { last with crc = last.crc + 1 } :: rest
        | [] -> ()
      end);
  t.inflight <- []

let recover t =
  let expected_first =
    match t.snapshot with Some s -> s.snap_seq + 1 | None -> 1
  in
  (* records at or below the boundary are superseded duplicates, not
     tears: an fsync racing the snapshot install can land after the
     truncation and re-expose a covered record *)
  let ascending =
    List.filter (fun r -> r.seq >= expected_first) (List.rev t.durable)
  in
  let rec take expected acc = function
    | [] -> (List.rev acc, false)
    | r :: rest ->
        if r.seq = expected && r.crc = crc_of ~seq:r.seq r.payload then
          take (expected + 1) (r :: acc) rest
        else (List.rev acc, true)
  in
  let valid, truncated = take expected_first [] ascending in
  if truncated then
    Option.iter (fun c -> Sim.Metrics.incr c) t.m_torn;
  t.durable <- List.rev valid;
  t.buffered <- [];
  t.inflight <- [];
  t.busy <- false;
  t.waiters <- [];
  t.next <-
    (match t.durable with
    | r :: _ -> r.seq + 1
    | [] -> expected_first);
  ( Option.map (fun s -> s.state) t.snapshot,
    List.map (fun r -> r.payload) valid )

let scrub t =
  t.gen <- t.gen + 1;
  t.waiters <- [];
  t.buffered <- [];
  t.inflight <- [];
  t.durable <- [];
  t.busy <- false;
  t.snapshot <- None;
  t.snap_writing <- false;
  t.tear_armed <- false;
  t.next <- 1

let set_slow t ~factor = t.slow <- max 1 factor
let durable_count t = List.length t.durable
let snapshot_seq t = Option.map (fun s -> s.snap_seq) t.snapshot
let next_seq t = t.next
let quiescent t = (not t.busy) && t.buffered = [] && not t.snap_writing
