(* Per-key operation logs (opLog in the pseudocode, §5.1).

   Each replica keeps, for every key it stores, the log of update
   operations performed on the key, tagged with the commit vector of the
   transaction that performed each one. Reads materialise the version of
   a key within a causally consistent snapshot: the state obtained by
   applying exactly the logged operations whose commit vector is below
   the snapshot vector.

   Entries are kept sorted by descending CRDT tag (Lamport clock order).
   For LWW registers — the type the paper's proof specialises to (§A) —
   this makes a snapshot read O(distance from the newest version), since
   the first in-snapshot entry is the last writer. *)

type entry = { op : Crdt.op; vec : Vclock.Vc.t; tag : Crdt.tag }

type t = {
  table : (Keyspace.key, entry list ref) Hashtbl.t;
  mutable appended : int;
}

let create () = { table = Hashtbl.create 1024; appended = 0 }

let append t key ~op ~vec ~tag =
  t.appended <- t.appended + 1;
  let e = { op; vec; tag } in
  match Hashtbl.find_opt t.table key with
  | None -> Hashtbl.replace t.table key (ref [ e ])
  | Some entries ->
      (* Common case: the new entry has the highest tag and goes first. *)
      let rec insert = function
        | [] -> [ e ]
        | e0 :: _ as rest when Crdt.tag_compare e.tag e0.tag >= 0 -> e :: rest
        | e0 :: rest -> e0 :: insert rest
      in
      entries := insert !entries

let entries t key =
  match Hashtbl.find_opt t.table key with None -> [] | Some l -> !l

(* Discard every version (crash-recovery wipe before a snapshot install).
   The lifetime [appended] counter is kept: it counts work done, not
   state held. *)
let clear t = Hashtbl.reset t.table

let version_count t key = List.length (entries t key)
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table []
let appended t = t.appended

(* Materialise [key] within [snap]: value plus the highest Lamport clock
   among contributing operations (returned to the client to advance its
   Lamport clock, Algorithm A3 line 5). *)
let read t key ~snap =
  let rec scan state max_lc = function
    | [] -> (state, max_lc)
    | e :: rest ->
        if Vclock.Vc.leq e.vec snap then begin
          let max_lc = max max_lc e.tag.Crdt.lc in
          match e.op with
          | Crdt.Reg_write _ when state == Crdt.empty ->
              (* Entries are in descending tag order, so for a register
                 the first in-snapshot entry is the last writer. *)
              (Crdt.apply state e.op ~tag:e.tag ~vec:e.vec, max_lc)
          | _ ->
              scan (Crdt.apply state e.op ~tag:e.tag ~vec:e.vec) max_lc rest
        end
        else scan state max_lc rest
  in
  let state, max_lc = scan Crdt.empty (-1) (entries t key) in
  let lc = if max_lc < 0 then None else Some max_lc in
  (Crdt.read state, lc)

(* Drop entries dominated by [horizon] for keys whose newest entry already
   lies below it, folding them into nothing for registers (the newest one
   is kept as the base). Only sound when no future snapshot can exclude
   [horizon]; the replica passes a sufficiently old uniform vector. *)
let compact t ~horizon =
  let compact_key _ entries =
    match !entries with
    | [] -> ()
    | newest :: _ ->
        if Vclock.Vc.leq newest.vec horizon then
          (* Everything below the horizon collapses; keep the full list
             only for non-register types whose value is a fold. *)
          match newest.op with
          | Crdt.Reg_write _ -> entries := [ newest ]
          | Crdt.Ctr_add _ | Crdt.Set_add _ | Crdt.Set_remove _
          | Crdt.Mv_write _ ->
              ()
  in
  Hashtbl.iter compact_key t.table
