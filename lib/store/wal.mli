(** Simulated per-node disk: a checksummed, sequence-numbered
    write-ahead log plus an atomically-installed snapshot.

    The disk is a timing model, not an I/O layer: appends buffer in
    memory and a group-commit fsync loop makes them durable after a
    configurable fsync latency plus a write-bandwidth charge, all on the
    simulation engine (so persistence is deterministic under the run
    seed). A record is {e durable} — and its [~k] continuation runs —
    only once its fsync completes; a crash before that loses it.

    Failure model (after TigerBeetle's journal: distrust the tail):
    {ul
    {- [crash] drops buffered and in-flight records, except that the
       first in-flight record is kept {e torn} (written with a bad
       checksum) — the partially-written sector a real power cut
       leaves. Torn records were never acknowledged, so truncating them
       on recovery cannot lose acked state.}
    {- [recover] replays the durable prefix: records must be
       checksum-valid and contiguous from the snapshot boundary; the
       first bad or out-of-sequence record truncates the rest of the
       tail ([wal_torn_truncations_total]).}
    {- [scrub] destroys the disk entirely (the DC-level failure domain:
       machines are lost, not restarted).}}

    Snapshots capture a caller-provided value (pass an immutable copy)
    and install with atomic-rename semantics: until the write completes,
    recovery sees the previous snapshot and the full log; afterwards the
    log is truncated at the snapshot boundary, bounding replay. *)

type ('a, 's) t
(** A disk holding records of type ['a] and snapshots of type ['s]. *)

val create :
  eng:Sim.Engine.t ->
  ?metrics:Sim.Metrics.t * Sim.Metrics.labels ->
  fsync_us:int ->
  mb_per_s:int ->
  size:('a -> int) ->
  snap_size:('s -> int) ->
  unit ->
  ('a, 's) t
(** [size]/[snap_size] give payload sizes in bytes, charged against the
    [mb_per_s] write bandwidth. When [metrics] is given, the disk
    interns [wal_fsync_us], [wal_appended_bytes_total] and
    [wal_torn_truncations_total] under the given labels. *)

val append : ('a, 's) t -> ?k:(unit -> unit) -> 'a -> int
(** Append a record; returns its sequence number. [k] (if any) runs once
    the record is durable — gate externally-visible acks on it. [k] is
    dropped (never called) if the node crashes first. *)

val snapshot : ('a, 's) t -> seq:int -> 's -> unit
(** Start writing a snapshot covering the log prefix up to and including
    [seq]. On completion the log is truncated at [seq]. A newer
    [snapshot] call supersedes an in-flight one; a crash discards it. *)

val crash : ('a, 's) t -> unit
(** Power-cut the node: see the failure model above. Pending [~k]
    continuations are dropped. *)

val tear_next : ('a, 's) t -> unit
(** Arm a deterministic torn tail for the next [crash]: if no record is
    in flight at crash time, the last durable record is corrupted
    instead (tests and the torn-tail bench use this to make the
    truncation path fire regardless of fsync phase). *)

val recover : ('a, 's) t -> 's option * 'a list
(** Read the disk back after a [crash]: the latest durable snapshot (if
    any) and the valid log tail above it, oldest first. Truncates any
    torn/corrupt suffix. Resets the disk so appends resume at the next
    sequence number after the recovered prefix. *)

val scrub : ('a, 's) t -> unit
(** Destroy the disk: no snapshot, no records, sequence numbers reset. *)

val set_slow : ('a, 's) t -> factor:int -> unit
(** Gray-disk fault: multiply fsync latency (and divide bandwidth) by
    [factor] until reset with [factor:1]. *)

val durable_count : ('a, 's) t -> int
(** Number of durable (replayable) records currently on disk. *)

val snapshot_seq : ('a, 's) t -> int option
(** Boundary of the installed snapshot, if any. *)

val next_seq : ('a, 's) t -> int
(** The sequence number the next append will get. *)

val quiescent : ('a, 's) t -> bool
(** No buffered or in-flight records, no snapshot write under way. *)

val unsafe_ack : bool ref
(** Planted-bug hook, test-only. When set, [append] runs its [?k]
    continuation immediately (next engine step) instead of after the
    fsync — acknowledging before durability. The exploration harness's
    self-test flips this to prove the durability oracle catches the
    resulting lost-ack on a node crash. Leave [false] everywhere else. *)
