(** Per-run metrics registry: labelled counters, gauges and log-bucketed
    streaming histograms with a deterministic snapshot and JSON
    rendering.

    Histograms hold geometric buckets (8 per octave), so memory is
    bounded regardless of observation count and percentile estimates are
    within one bucket width (~9%) of exact; tracked min/max make the
    tails exact. Handle lookups intern on (name, labels): the same pair
    always returns the same object, so components cache handles and the
    hot path is a plain increment. *)

type t

type labels = (string * string) list

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> ?labels:labels -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> ?labels:labels -> string -> gauge

(** Set the current level; the all-time maximum is tracked. *)
val set : gauge -> float -> unit

(** Delta update for gauges tracking a level (queue depths). *)
val gauge_add : gauge -> float -> unit

val gauge_value : gauge -> float
val gauge_max : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : t -> ?labels:labels -> string -> histogram

(** Record one observation (values [<= 0] share a dedicated bucket). *)
val observe : histogram -> int -> unit

val h_count : histogram -> int
val h_sum : histogram -> float
val h_mean : histogram -> float option
val h_min : histogram -> int option
val h_max : histogram -> int option

(** Estimated percentile ([p] in [0, 100]); [None] when empty. p0 and
    p100 are the exact tracked min/max. *)
val h_percentile : histogram -> float -> float option

(** Non-empty buckets as [(index, lower, upper, count)]; index [-1] is
    the bucket of non-positive observations. *)
val h_buckets : histogram -> (int * float * float * int) list

(** Bounds of bucket [i]: values in [\[lower, upper)] land in it. *)
val bucket_bounds : int -> float * float

(** {1 Lookup and export} *)

(** All label sets registered under a metric name, sorted. *)
val histograms_matching : t -> string -> (labels * histogram) list

val counters_matching : t -> string -> (labels * counter) list
val gauges_matching : t -> string -> (labels * gauge) list

type snapshot_entry =
  | S_counter of { name : string; labels : labels; value : int }
  | S_gauge of { name : string; labels : labels; value : float; max : float }
  | S_histogram of {
      name : string;
      labels : labels;
      count : int;
      mean : float;
      p50 : float;
      p90 : float;
      p99 : float;
      min : int;
      max : int;
    }

(** Deterministic (sorted by name, then labels) view of the registry. *)
val snapshot : t -> snapshot_entry list

(** The snapshot as [{"counters": [...], "gauges": [...],
    "histograms": [...]}]. *)
val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
