(* Measurement helpers for the experiment harness: latency samples with
   percentiles, CDFs, and windowed throughput counters.

   Samples are stored raw (int microseconds); evaluation runs are short
   enough that memory is not a concern and raw storage gives exact
   percentiles, unlike bucketed histograms. *)

type sample_set = {
  mutable data : int array;
  mutable len : int;
  mutable sorted : bool;
}

let create_samples () = { data = Array.make 1024 0; len = 0; sorted = true }

let add s v =
  if s.len = Array.length s.data then begin
    let data = Array.make (2 * s.len) 0 in
    Array.blit s.data 0 data 0 s.len;
    s.data <- data
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1;
  s.sorted <- false

let count s = s.len

let ensure_sorted s =
  if not s.sorted then begin
    let sub = Array.sub s.data 0 s.len in
    Array.sort compare sub;
    Array.blit sub 0 s.data 0 s.len;
    s.sorted <- true
  end

let percentile s p =
  if s.len = 0 then invalid_arg "Stats.percentile: empty sample set";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  ensure_sorted s;
  let rank = p /. 100.0 *. float_of_int (s.len - 1) in
  let lo = int_of_float rank in
  let hi = if lo + 1 < s.len then lo + 1 else lo in
  let frac = rank -. float_of_int lo in
  let a = float_of_int s.data.(lo) and b = float_of_int s.data.(hi) in
  a +. (frac *. (b -. a))

let median s = percentile s 50.0

let mean s =
  if s.len = 0 then invalid_arg "Stats.mean: empty sample set";
  let sum = ref 0.0 in
  for i = 0 to s.len - 1 do
    sum := !sum +. float_of_int s.data.(i)
  done;
  !sum /. float_of_int s.len

(* Total variants: harness code reporting possibly-empty sample sets
   uses these instead of guarding every call site with a count check. *)
let percentile_opt s p = if s.len = 0 then None else Some (percentile s p)
let mean_opt s = if s.len = 0 then None else Some (mean s)

let min_value s =
  if s.len = 0 then invalid_arg "Stats.min_value: empty sample set";
  ensure_sorted s;
  s.data.(0)

let max_value s =
  if s.len = 0 then invalid_arg "Stats.max_value: empty sample set";
  ensure_sorted s;
  s.data.(s.len - 1)

(* Points of the empirical CDF at the given number of steps, as
   (value, cumulative fraction) pairs. *)
let cdf s ~points =
  if s.len = 0 then []
  else begin
    ensure_sorted s;
    let pts = max points 2 in
    List.init pts (fun i ->
        let frac = float_of_int i /. float_of_int (pts - 1) in
        let idx =
          int_of_float (frac *. float_of_int (s.len - 1) +. 0.5)
        in
        (s.data.(idx), frac))
  end

let to_list s =
  ensure_sorted s;
  Array.to_list (Array.sub s.data 0 s.len)

(* A plain event counter restricted to a measurement window; used for
   throughput (committed transactions per second of simulated time). *)
type counter = {
  mutable events : int;
  mutable window_start : int;
  mutable window_end : int;
}

let create_counter ~window_start ~window_end =
  if window_end <= window_start then
    invalid_arg "Stats.create_counter: empty window";
  { events = 0; window_start; window_end }

let in_window c ~now = now >= c.window_start && now < c.window_end

let incr_counter c ~now =
  if in_window c ~now then c.events <- c.events + 1

let counter_events c = c.events

(* Events per second of simulated time. *)
let throughput c =
  let span_us = c.window_end - c.window_start in
  float_of_int c.events /. (float_of_int span_us /. 1_000_000.0)
