(** Cooperative fibers over the simulation engine (OCaml 5 effects).

    Fibers let workload code block in direct style on simulated events:
    a fiber performing {!await} or {!sleep} suspends, the engine keeps
    running other events, and the fiber resumes when the ivar is filled
    or the delay elapses. *)

module Ivar : sig
  (** Single-assignment cell. *)
  type 'a t

  val create : unit -> 'a t

  (** Fill the cell and wake all waiters (as fresh engine events at the
      current simulated instant). Raises if already filled. *)
  val fill : Engine.t -> 'a t -> 'a -> unit

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option

  (** [upon eng iv k] runs [k v] once [iv] holds [v] (immediately, as an
      event, if already filled). [label] attributes the wakeup event for
      profiling; the default inherits the *filler*'s label. *)
  val upon : ?label:Prof.label -> Engine.t -> 'a t -> ('a -> unit) -> unit
end

(** Block the current fiber until the ivar is filled. Must be called from
    inside a fiber. *)
val await : 'a Ivar.t -> 'a

(** Suspend the current fiber for the given simulated microseconds. *)
val sleep : int -> unit

(** Start a fiber. The body may use {!await} and {!sleep}. [label]
    attributes the fiber's start and every later wakeup for profiling
    (default: inherited from the spawning event, resolved at spawn). *)
val spawn : Engine.t -> ?label:Prof.label -> (unit -> unit) -> unit

(** Await every ivar in the list, returning values in list order. *)
val await_all : 'a Ivar.t list -> 'a list
