(** CI perf-regression gate over profiled bench artifacts.

    Compares a bench artifact carrying a ["profile"] section (or a bare
    profile object) against a checked-in baseline. Per-label
    words-per-event budgets, budgeted-label presence and attribution
    coverage are hard failures — they are deterministic under the fixed
    simulation seed. Wall-clock throughput and unbudgeted new labels are
    advisory warnings only. *)

type result = { failures : string list; warnings : string list }

(** [true] iff there are no hard failures (warnings allowed). *)
val ok : result -> bool

(** [check ~baseline ~artifact] evaluates every gate; order of messages
    follows baseline/artifact order and is deterministic. *)
val check : baseline:Json.t -> artifact:Json.t -> result

(** Derive a fresh baseline from a measured artifact: each measured
    words-per-event of a label carrying at least [min_events] events
    (default 500) becomes a budget inflated by [headroom_pct] (default
    5%), and the advisory events/sec floor is half the measured rate.
    Labels below the floor are neither budgeted nor warned about — with
    a handful of events, words/event swings wildly on unrelated changes
    and carries no regression signal. *)
val baseline_of_artifact :
  ?headroom_pct:float ->
  ?tolerance_pct:float ->
  ?min_coverage_pct:float ->
  ?min_events:int ->
  Json.t ->
  Json.t

(** Human-readable rendering: warnings, then failures, then a verdict
    line. *)
val pp_result : Format.formatter -> result -> unit
