(* Discrete-event simulation engine.

   Simulated time is [int] microseconds. The run loop pops the earliest
   event and executes its thunk; thunks schedule further events. Ties on
   time break on scheduling order, so runs are fully deterministic.

   Self-profiling ([Sim.Prof]): every event carries an attribution
   label. An event scheduled without an explicit label inherits the
   label of the event currently executing, so labelling the roots
   (periodic timers, network deliveries, fiber spawns, disk
   completions) attributes the whole downstream cascade. With the
   profiler disabled — the default — the cost is one integer compare
   per schedule and one branch per executed event, and labels are all
   [Prof.none]; event ordering is identical either way, so enabling
   profiling never changes a run's simulated behaviour.

   [run] also accrues the wall-clock time spent inside the event loop
   ([run_wall_seconds]); the bench harness divides executed events by
   it for the [sim_events_per_sec] artifact line, excluding setup and
   artifact-writing time from the denominator. *)

type t = {
  queue : (unit -> unit) Heap.t;
  mutable now : int;
  mutable seq : int;
  mutable stopped : bool;
  rng : Rng.t;
  mutable executed : int;
  prof : Prof.t;
  mutable cur_label : Prof.label;  (* label of the executing event *)
  mutable run_wall : float;  (* wall seconds spent inside [run] *)
}

let create ?(seed = 42) () =
  {
    queue = Heap.create (fun () -> ());
    now = 0;
    seq = 0;
    stopped = false;
    rng = Rng.create seed;
    executed = 0;
    prof = Prof.create ();
    cur_label = Prof.none;
    run_wall = 0.0;
  }

let now t = t.now
let rng t = t.rng
let executed_events t = t.executed
let pending_events t = Heap.size t.queue
let prof t = t.prof
let current_label t = t.cur_label
let run_wall_seconds t = t.run_wall

let schedule_at t ?(label = Prof.none) ~time f =
  let time = if time < t.now then t.now else time in
  t.seq <- t.seq + 1;
  let tag = if label <> Prof.none then label else t.cur_label in
  Heap.push t.queue ~time ~seq:t.seq ~tag f

let schedule t ?(label = Prof.none) ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~label ~time:(t.now + delay) f

let stop t = t.stopped <- true

let run ?until t =
  t.stopped <- false;
  let limit = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if t.stopped then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some { time; _ } when time > limit ->
          (* Leave the clock at the limit and the event in the queue: a
             later [run] slice must see it — dropping it here kills
             self-rescheduling loops (periodic tasks, retransmission
             timers) for the rest of the simulation. *)
          t.now <- max t.now limit
      | Some _ ->
          let { Heap.time; value = f; tag; _ } =
            Option.get (Heap.pop t.queue)
          in
          t.now <- time;
          t.executed <- t.executed + 1;
          if Prof.is_on t.prof then begin
            t.cur_label <- tag;
            Prof.account t.prof tag f;
            t.cur_label <- Prof.none
          end
          else f ();
          loop ()
  in
  let t0 = Prof.wall t.prof in
  Fun.protect
    ~finally:(fun () -> t.run_wall <- t.run_wall +. (Prof.wall t.prof -. t0))
    loop

(* Periodic task: reschedules itself every [period] while [f] returns
   [true]. [phase] offsets the first firing, which the network layer uses
   to avoid lock-step broadcasts across replicas. *)
let every t ?(label = Prof.none) ~period ?phase f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let phase = match phase with Some p -> p | None -> period in
  let rec tick () = if f () then schedule t ~label ~delay:period tick in
  schedule t ~label ~delay:phase tick
