(** Measurement helpers: raw latency sample sets with exact percentiles and
    CDFs, plus windowed throughput counters. *)

type sample_set

val create_samples : unit -> sample_set
val add : sample_set -> int -> unit
val count : sample_set -> int

(** Exact percentile by linear interpolation; [p] in [\[0, 100\]].
    Raises on an empty set. *)
val percentile : sample_set -> float -> float

val median : sample_set -> float
val mean : sample_set -> float

(** Total variants of {!percentile} and {!mean}: [None] on an empty
    sample set instead of raising. *)
val percentile_opt : sample_set -> float -> float option

val mean_opt : sample_set -> float option
val min_value : sample_set -> int
val max_value : sample_set -> int

(** [(value, fraction)] points of the empirical CDF. *)
val cdf : sample_set -> points:int -> (int * float) list

val to_list : sample_set -> int list

type counter

(** Counter that only counts events falling inside
    [\[window_start, window_end)] (simulated microseconds). *)
val create_counter : window_start:int -> window_end:int -> counter

val in_window : counter -> now:int -> bool
val incr_counter : counter -> now:int -> unit
val counter_events : counter -> int

(** Events per simulated second over the window. *)
val throughput : counter -> float
