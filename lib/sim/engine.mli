(** Deterministic discrete-event simulation engine.

    Simulated time is [int] microseconds starting at 0. Events scheduled
    for the same instant fire in scheduling order.

    Every event carries a {!Prof.label} for self-profiling; an event
    scheduled without one inherits the label of the event currently
    executing (so labelling roots attributes whole cascades). Labels
    never affect event ordering. *)

type t

val create : ?seed:int -> unit -> t

(** Current simulated time in microseconds. *)
val now : t -> int

(** The engine's root RNG; derive per-component streams with
    {!Rng.split}. *)
val rng : t -> Rng.t

val executed_events : t -> int
val pending_events : t -> int

(** The engine's profiler (one per engine, disabled by default). *)
val prof : t -> Prof.t

(** Label of the event currently executing ([Prof.none] outside the
    run loop). *)
val current_label : t -> Prof.label

(** Wall-clock seconds spent inside {!run} so far — the engine-only
    window the [sim_events_per_sec] artifact line divides by. *)
val run_wall_seconds : t -> float

(** Schedule a thunk [delay] microseconds from now. [label] attributes
    the event for profiling; [Prof.none] (the default) inherits the
    scheduling event's label. *)
val schedule : t -> ?label:Prof.label -> delay:int -> (unit -> unit) -> unit

(** Schedule a thunk at an absolute time (clamped to now if in the past). *)
val schedule_at :
  t -> ?label:Prof.label -> time:int -> (unit -> unit) -> unit

(** Stop the run loop after the current event. *)
val stop : t -> unit

(** Execute events until the queue drains, [stop] is called, or the next
    event is past [until]. *)
val run : ?until:int -> t -> unit

(** [every t ~period ?phase f] runs [f] every [period] microseconds
    (first run after [phase]) for as long as [f] returns [true]. *)
val every :
  t -> ?label:Prof.label -> period:int -> ?phase:int -> (unit -> bool) -> unit
