(* Structured event tracing for simulations.

   A trace is an in-memory ring of typed events with simulated
   timestamps. Components emit events through a [t]; the harness decides
   whether tracing is enabled (disabled tracing costs one branch per
   emit). Traces can be filtered, counted, and rendered as a text
   timeline — the debugging workflow the examples and tests rely on when
   a run misbehaves.

   Two event shapes share the ring: instants ([emit], duration 0) and
   spans ([emit_span], a start time plus a duration). Spans carry the
   transaction-lifecycle phases of the protocol instrumentation and
   render as duration events in the Chrome trace-event export
   ([to_chrome]), which Perfetto and chrome://tracing load directly. *)

type event = {
  ev_time : int;  (* simulated microseconds (span: start time) *)
  ev_dur : int;  (* span duration; 0 for instant events *)
  ev_source : string;  (* component, e.g. "replica 0.3" *)
  ev_kind : string;  (* event class, e.g. "commit" *)
  ev_detail : string;
}

type t = {
  mutable events : event array;
  mutable len : int;
  mutable dropped : int;
  capacity : int;
  enabled : bool;
  clock : unit -> int;
}

let dummy =
  { ev_time = 0; ev_dur = 0; ev_source = ""; ev_kind = ""; ev_detail = "" }

let create ?(capacity = 100_000) ~clock ~enabled () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    events = (if enabled then Array.make (min capacity 4096) dummy else [||]);
    len = 0;
    dropped = 0;
    capacity;
    enabled;
    clock;
  }

let disabled = create ~capacity:1 ~clock:(fun () -> 0) ~enabled:false ()
let enabled t = t.enabled

let push t ev =
  if t.len = t.capacity then t.dropped <- t.dropped + 1
  else begin
    if t.len = Array.length t.events then begin
      let bigger =
        Array.make (min t.capacity (2 * Array.length t.events)) dummy
      in
      Array.blit t.events 0 bigger 0 t.len;
      t.events <- bigger
    end;
    t.events.(t.len) <- ev;
    t.len <- t.len + 1
  end

let emit t ~source ~kind detail =
  if t.enabled then
    push t
      {
        ev_time = t.clock ();
        ev_dur = 0;
        ev_source = source;
        ev_kind = kind;
        ev_detail = detail;
      }

(* A span that started at [start] (simulated us) and ends now. *)
let emit_span t ~source ~kind ~start detail =
  if t.enabled then
    push t
      {
        ev_time = start;
        ev_dur = max 0 (t.clock () - start);
        ev_source = source;
        ev_kind = kind;
        ev_detail = detail;
      }

let emitf t ~source ~kind fmt = Fmt.kstr (emit t ~source ~kind) fmt

let length t = t.len
let dropped t = t.dropped

let matches ?source ?kind e =
  (match source with Some s -> e.ev_source = s | None -> true)
  && match kind with Some k -> e.ev_kind = k | None -> true

let events ?source ?kind t =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    if matches ?source ?kind t.events.(i) then out := t.events.(i) :: !out
  done;
  !out

let count ?source ?kind t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if matches ?source ?kind t.events.(i) then incr n
  done;
  !n

(* Events within a simulated-time interval. *)
let between t ~start ~stop =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    let e = t.events.(i) in
    if e.ev_time >= start && e.ev_time < stop then out := e :: !out
  done;
  !out

let pp_event ppf e =
  if e.ev_dur > 0 then
    Fmt.pf ppf "%8dus %-14s %-12s %s [%dus]" e.ev_time e.ev_source e.ev_kind
      e.ev_detail e.ev_dur
  else
    Fmt.pf ppf "%8dus %-14s %-12s %s" e.ev_time e.ev_source e.ev_kind
      e.ev_detail

(* Render the trace (or a filtered view) as a timeline. *)
let dump ?source ?kind ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) (events ?source ?kind t);
  if t.dropped > 0 then Fmt.pf ppf "... %d events dropped (capacity)@." t.dropped

(* Per-kind histogram, largest first. *)
let summary t =
  let tbl = Hashtbl.create 16 in
  for i = 0 to t.len - 1 do
    let k = t.events.(i).ev_kind in
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (Perfetto / chrome://tracing).

   Every distinct [ev_source] becomes a named thread (track) of one
   process; spans render as complete duration events (ph "X") and
   instants as thread-scoped instant events (ph "i"). Timestamps are
   already microseconds, the unit the format expects. *)

let chrome_json t =
  (* stable track ids: sources sorted, so the export is deterministic
     regardless of emission interleaving *)
  let sources = Hashtbl.create 16 in
  for i = 0 to t.len - 1 do
    Hashtbl.replace sources t.events.(i).ev_source ()
  done;
  let tids = Hashtbl.create 16 in
  let names =
    Hashtbl.fold (fun s () acc -> s :: acc) sources [] |> List.sort compare
  in
  List.iteri (fun i s -> Hashtbl.replace tids s i) names;
  let meta =
    List.mapi
      (fun i s ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int i);
            ("args", Json.Obj [ ("name", Json.String s) ]);
          ])
      names
  in
  let evs = ref [] in
  for i = t.len - 1 downto 0 do
    let e = t.events.(i) in
    let tid = Hashtbl.find tids e.ev_source in
    let base =
      [
        ("name", Json.String e.ev_kind);
        ("cat", Json.String e.ev_kind);
        ("ts", Json.Int e.ev_time);
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("detail", Json.String e.ev_detail) ]);
      ]
    in
    let ev =
      if e.ev_dur > 0 then
        Json.Obj (base @ [ ("ph", Json.String "X"); ("dur", Json.Int e.ev_dur) ])
      else
        Json.Obj (base @ [ ("ph", Json.String "i"); ("s", Json.String "t") ])
    in
    evs := ev :: !evs
  done;
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ !evs));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome ppf t = Format.pp_print_string ppf (Json.to_string (chrome_json t))
