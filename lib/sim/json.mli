(** Minimal JSON values: deterministic printing for machine-readable
    artefacts (metrics snapshots, bench outputs, Chrome traces) and a
    strict parser used by tests to validate generated documents. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering. NaN/infinite floats render as
    [null]. *)
val to_string : t -> string

(** Indented rendering with a trailing newline (artefact files). *)
val to_string_pretty : t -> string

val pp : Format.formatter -> t -> unit

exception Parse_error of string

(** Strict parse of a complete document; raises {!Parse_error}. *)
val of_string : string -> t

val of_string_opt : string -> t option

(** Object field lookup ([None] on non-objects and missing keys). *)
val member : string -> t -> t option

val to_list_opt : t -> t list option

(** Numeric projection: accepts both [Int] and [Float]. *)
val to_float_opt : t -> float option

val to_int_opt : t -> int option
val to_string_opt : t -> string option
