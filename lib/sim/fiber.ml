(* Cooperative fibers over the simulation engine, built on OCaml 5
   effects. A fiber is straight-line code that can block on an [Ivar]
   (single-assignment cell) or sleep for simulated time; while it is
   blocked, other simulation events run. Clients of the data store are
   written as fibers, which keeps workload code direct-style while all
   protocol handlers remain plain event handlers.

   Profiling: a fiber resolves its attribution label once at spawn
   (explicit [?label], else inherited from the spawner) and pins every
   wakeup — sleep expiries and ivar resumptions — to it. The pinning
   matters for ivar wakeups: the fill happens inside some other
   handler's event, and without an explicit label the resumption would
   inherit the *filler's* label instead of the fiber's. *)

module Ivar = struct
  type 'a state = Empty of (Prof.label * ('a -> unit)) list | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let fill eng iv v =
    match iv.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
        iv.state <- Full v;
        (* Run waiters as fresh events at the current instant so a fill
           inside a handler cannot reentrantly grow the handler's stack.
           Each waiter carries the label it registered under. *)
        List.iter
          (fun (label, k) ->
            Engine.schedule eng ~label ~delay:0 (fun () -> k v))
          (List.rev waiters)

  let is_filled iv = match iv.state with Full _ -> true | Empty _ -> false
  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None

  let upon ?(label = Prof.none) eng iv k =
    match iv.state with
    | Full v -> Engine.schedule eng ~label ~delay:0 (fun () -> k v)
    | Empty waiters -> iv.state <- Empty ((label, k) :: waiters)
end

type _ Effect.t +=
  | Await : 'a Ivar.t -> 'a Effect.t
  | Sleep : int -> unit Effect.t

let await iv = Effect.perform (Await iv)
let sleep delay = Effect.perform (Sleep delay)

let spawn eng ?(label = Prof.none) f =
  let open Effect.Deep in
  (* Resolve inheritance now: wakeups fire from other contexts later,
     where the scheduler's current label is not this fiber's. *)
  let label =
    if label <> Prof.none then label else Engine.current_label eng
  in
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Await iv ->
              Some
                (fun (k : (b, unit) continuation) ->
                  Ivar.upon ~label eng iv (fun v -> continue k v))
          | Sleep delay ->
              Some
                (fun (k : (b, unit) continuation) ->
                  Engine.schedule eng ~label ~delay (fun () -> continue k ()))
          | _ -> None);
    }
  in
  (* Start the fiber as an event so spawning inside a fiber is safe. *)
  Engine.schedule eng ~label ~delay:0 (fun () -> match_with f () handler)

(* Convenience: await n ivars of the same type, in order. *)
let await_all ivs = List.map await ivs
