(* Per-run metrics registry: labelled counters, gauges and log-bucketed
   streaming histograms.

   Unlike [Stats.sample_set] (raw storage, exact percentiles, unbounded
   memory), a [histogram] holds a fixed number of geometric buckets —
   8 sub-buckets per octave, so any estimate is within ~9% of the exact
   value — which lets long runs record millions of observations in a few
   hundred words. Components hold handles ([counter]/[gauge]/[histogram]
   return the same object for the same name + labels), so the hot path
   is an increment, not a table lookup.

   A snapshot is deterministic (sorted by name, then labels) and renders
   to JSON for the bench harness's machine-readable artefacts. *)

type labels = (string * string) list

type counter = { mutable c_value : int }

type gauge = {
  mutable g_value : float;
  mutable g_max : float;
  mutable g_set : bool;  (* distinguishes "never set" from 0 *)
}

(* Sub-buckets per octave: bucket i covers [2^(i/8), 2^((i+1)/8)). *)
let subs = 8

type histogram = {
  mutable buckets : int array;  (* grows on demand, bounded by 8*62 *)
  mutable h_zero : int;  (* observations <= 0 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : int;
  mutable h_max : int;
}

type t = {
  counters : (string * labels, counter) Hashtbl.t;
  gauges : (string * labels, gauge) Hashtbl.t;
  histograms : (string * labels, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 32;
    histograms = Hashtbl.create 32;
  }

(* Canonical label order makes (name, labels) a stable identity. *)
let canon labels = List.sort compare labels

let intern tbl make ?(labels = []) name =
  let key = (name, canon labels) in
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace tbl key v;
      v

(* --- counters ------------------------------------------------------ *)

let counter t ?labels name =
  intern t.counters (fun () -> { c_value = 0 }) ?labels name

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value

(* --- gauges -------------------------------------------------------- *)

let gauge t ?labels name =
  intern t.gauges
    (fun () -> { g_value = 0.0; g_max = 0.0; g_set = false })
    ?labels name

let set g v =
  g.g_value <- v;
  if (not g.g_set) || v > g.g_max then g.g_max <- v;
  g.g_set <- true

(* Delta update for gauges tracking a level (queue depths, backlogs). *)
let gauge_add g d = set g (g.g_value +. d)

let gauge_value g = g.g_value
let gauge_max g = g.g_max

(* --- histograms ---------------------------------------------------- *)

let histogram t ?labels name =
  intern t.histograms
    (fun () ->
      {
        buckets = Array.make 64 0;
        h_zero = 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = max_int;
        h_max = min_int;
      })
    ?labels name

let bucket_of v =
  (* v >= 1 *)
  int_of_float (float_of_int subs *. Float.log2 (float_of_int v))

(* Bucket bounds, exposed for tests: bucket i covers [lower, upper). *)
let bucket_bounds i =
  let lower = Float.pow 2.0 (float_of_int i /. float_of_int subs) in
  let upper = Float.pow 2.0 (float_of_int (i + 1) /. float_of_int subs) in
  (lower, upper)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. float_of_int v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  if v <= 0 then h.h_zero <- h.h_zero + 1
  else begin
    let i = bucket_of v in
    if i >= Array.length h.buckets then begin
      let bigger = Array.make (max (i + 1) (2 * Array.length h.buckets)) 0 in
      Array.blit h.buckets 0 bigger 0 (Array.length h.buckets);
      h.buckets <- bigger
    end;
    h.buckets.(i) <- h.buckets.(i) + 1
  end

let h_count h = h.h_count
let h_sum h = h.h_sum
let h_mean h = if h.h_count = 0 then None else Some (h.h_sum /. float_of_int h.h_count)
let h_min h = if h.h_count = 0 then None else Some h.h_min
let h_max h = if h.h_count = 0 then None else Some h.h_max

(* Percentile estimate: find the bucket holding the target rank and
   interpolate geometrically inside it; exact tracked min/max clamp the
   tails, so p0/p100 are exact and interior estimates are within one
   bucket width (~9%). *)
let h_percentile h p =
  if h.h_count = 0 then None
  else if p <= 0.0 then Some (float_of_int h.h_min)
  else if p >= 100.0 then Some (float_of_int h.h_max)
  else begin
    let target = p /. 100.0 *. float_of_int h.h_count in
    if float_of_int h.h_zero >= target then Some (float_of_int (max 0 h.h_min))
    else begin
      let cum = ref (float_of_int h.h_zero) in
      let result = ref (float_of_int h.h_max) in
      (try
         for i = 0 to Array.length h.buckets - 1 do
           let c = h.buckets.(i) in
           if c > 0 then begin
             if !cum +. float_of_int c >= target then begin
               let frac = (target -. !cum) /. float_of_int c in
               let lower, upper = bucket_bounds i in
               result := lower *. Float.pow (upper /. lower) frac;
               raise Exit
             end;
             cum := !cum +. float_of_int c
           end
         done
       with Exit -> ());
      Some
        (Float.min (float_of_int h.h_max)
           (Float.max (float_of_int h.h_min) !result))
    end
  end

(* Non-empty buckets as (index, lower bound, upper bound, count). *)
let h_buckets h =
  let out = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then begin
      let lower, upper = bucket_bounds i in
      out := (i, lower, upper, h.buckets.(i)) :: !out
    end
  done;
  if h.h_zero > 0 then (-1, 0.0, 1.0, h.h_zero) :: !out else !out

(* --- lookup across label sets -------------------------------------- *)

let sorted_fold tbl name =
  Hashtbl.fold
    (fun (n, labels) v acc -> if n = name then (labels, v) :: acc else acc)
    tbl []
  |> List.sort compare

let histograms_matching t name = sorted_fold t.histograms name
let counters_matching t name = sorted_fold t.counters name
let gauges_matching t name = sorted_fold t.gauges name

(* --- snapshot ------------------------------------------------------ *)

type snapshot_entry =
  | S_counter of { name : string; labels : labels; value : int }
  | S_gauge of { name : string; labels : labels; value : float; max : float }
  | S_histogram of {
      name : string;
      labels : labels;
      count : int;
      mean : float;
      p50 : float;
      p90 : float;
      p99 : float;
      min : int;
      max : int;
    }

let snapshot t =
  let sorted tbl f =
    Hashtbl.fold (fun (name, labels) v acc -> (name, labels, v) :: acc) tbl []
    |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))
    |> List.map f
  in
  let counters =
    sorted t.counters (fun (name, labels, c) ->
        S_counter { name; labels; value = c.c_value })
  in
  let gauges =
    sorted t.gauges (fun (name, labels, g) ->
        S_gauge { name; labels; value = g.g_value; max = g.g_max })
  in
  let histograms =
    sorted t.histograms (fun (name, labels, h) ->
        let pick f = Option.value ~default:0.0 f in
        S_histogram
          {
            name;
            labels;
            count = h.h_count;
            mean = pick (h_mean h);
            p50 = pick (h_percentile h 50.0);
            p90 = pick (h_percentile h 90.0);
            p99 = pick (h_percentile h 99.0);
            min = (if h.h_count = 0 then 0 else h.h_min);
            max = (if h.h_count = 0 then 0 else h.h_max);
          })
  in
  counters @ gauges @ histograms

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let entry_json = function
  | S_counter { name; labels; value } ->
      Json.Obj
        [
          ("name", Json.String name);
          ("labels", labels_json labels);
          ("value", Json.Int value);
        ]
  | S_gauge { name; labels; value; max } ->
      Json.Obj
        [
          ("name", Json.String name);
          ("labels", labels_json labels);
          ("value", Json.Float value);
          ("max", Json.Float max);
        ]
  | S_histogram { name; labels; count; mean; p50; p90; p99; min; max } ->
      Json.Obj
        [
          ("name", Json.String name);
          ("labels", labels_json labels);
          ("count", Json.Int count);
          ("mean", Json.Float mean);
          ("p50", Json.Float p50);
          ("p90", Json.Float p90);
          ("p99", Json.Float p99);
          ("min", Json.Int min);
          ("max", Json.Int max);
        ]

let to_json t =
  let part f =
    List.filter_map (fun e -> if f e then Some (entry_json e) else None)
      (snapshot t)
  in
  Json.Obj
    [
      ("counters", Json.List (part (function S_counter _ -> true | _ -> false)));
      ("gauges", Json.List (part (function S_gauge _ -> true | _ -> false)));
      ( "histograms",
        Json.List (part (function S_histogram _ -> true | _ -> false)) );
    ]

let pp_labels ppf labels =
  if labels <> [] then
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:comma (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
      labels

let pp ppf t =
  List.iter
    (function
      | S_counter { name; labels; value } ->
          Fmt.pf ppf "%s%a %d@." name pp_labels labels value
      | S_gauge { name; labels; value; max } ->
          Fmt.pf ppf "%s%a %.1f (max %.1f)@." name pp_labels labels value max
      | S_histogram { name; labels; count; mean; p50; p90; p99; _ } ->
          Fmt.pf ppf "%s%a n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f@." name
            pp_labels labels count mean p50 p90 p99)
    (snapshot t)
