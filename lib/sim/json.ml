(* Minimal JSON values for the harness's machine-readable outputs
   (metrics snapshots, bench artefacts, Chrome trace exports).

   The printer emits deterministic, standards-conformant JSON (escaped
   strings, no NaN/Infinity — those render as null). The parser exists
   for tests that validate well-formedness of generated documents; it is
   a strict recursive-descent parser, not a streaming one, which is fine
   for artefact-sized inputs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats print with enough digits to round-trip, but never as "nan",
   "inf" or exponent-less garbage JSON consumers reject. *)
let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | _ ->
      let s = Printf.sprintf "%.12g" f in
      Buffer.add_string buf s;
      (* "1e3" and "13" are valid JSON numbers, but keep a marker that
         this was a float so round-trips stay typed sensibly *)
      if
        String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s
      then Buffer.add_string buf ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_string buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 4096 in
  write buf j;
  Buffer.contents buf

(* Indented rendering for artefact files meant to be read by humans too. *)
let rec write_pretty buf ~indent = function
  | List ([] : t list) -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List xs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          write_pretty buf ~indent:(indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj fields ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          escape_string buf k;
          Buffer.add_string buf ": ";
          write_pretty buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'
  | j -> write buf j

let to_string_pretty j =
  let buf = Buffer.create 4096 in
  write_pretty buf ~indent:0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing (validation in tests).                                       *)

exception Parse_error of string

type parser_state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st lit value =
  if
    st.pos + String.length lit <= String.length st.input
    && String.sub st.input st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    value
  end
  else fail st (Printf.sprintf "expected %s" lit)

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.input then
              fail st "truncated \\u escape";
            let hex = String.sub st.input st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* artefacts are ASCII; escapes decode to a replacement byte
               when outside the Latin-1 range, enough for validation *)
            Buffer.add_char buf
              (if code < 256 then Char.chr code else '?');
            go ()
        | _ -> fail st "bad escape")
    | Some c when Char.code c < 0x20 -> fail st "raw control character"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9')
    || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek st with Some c when is_num_char c -> advance st; go () | _ -> ()
  in
  go ();
  let s = String.sub st.input start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string_raw st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; items (v :: acc)
          | Some ']' -> advance st; List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string_raw st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; fields ((k, v) :: acc)
          | Some '}' -> advance st; List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let of_string s =
  let st = { input = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors (tests assert on schema fields).                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
