(* The CI perf-regression gate: compare a profiled bench artifact
   (BENCH_profile.json) against a checked-in baseline
   (bench/PERF_BASELINE.json).

   Two classes of checks:

   - hard failures, deterministic under the fixed seed and therefore
     safe to gate CI on: per-label allocation budgets (words/event must
     not exceed the budget by more than [tolerance_pct]), a budgeted
     label going missing from the artifact (the instrumentation or the
     workload silently broke), and attribution coverage dropping below
     [min_coverage_pct];
   - advisory warnings, noisy on shared CI hardware: wall-clock
     [sim_events_per_sec] below [events_per_sec_floor], and artifact
     labels that have no budget yet (new instrumentation — update the
     baseline).

   Baseline document shape:

     { "tolerance_pct": 10.0,
       "min_coverage_pct": 95.0,
       "min_events": 500,                     // budget/warn floor
       "events_per_sec_floor": 100000.0,      // optional, advisory
       "budgets": [ { "label": "...", "words_per_event": 123.4 }, ... ] }

   Only labels carrying at least [min_events] events are budgeted or
   warned about: a label with a handful of events swings its words/event
   wildly on unrelated changes to shared helpers, which would make the
   hard gate brittle exactly where it carries no signal.

   The artifact is either a whole bench document carrying a "profile"
   member or a bare profile object ({!Prof.entries_to_json} shape). *)

type result = { failures : string list; warnings : string list }

let ok r = r.failures = []

let num j = Json.to_float_opt j

let field name j = Option.bind (Json.member name j) num

(* The profile object inside [artifact] (or [artifact] itself). *)
let profile_of artifact =
  match Json.member "profile" artifact with
  | Some p -> Some p
  | None ->
      if Json.member "labels" artifact <> None then Some artifact else None

(* label -> (words_per_event, events) from a profile object. *)
let artifact_labels profile =
  match Option.bind (Json.member "labels" profile) Json.to_list_opt with
  | None -> []
  | Some rows ->
      List.filter_map
        (fun row ->
          match
            ( Option.bind (Json.member "label" row) Json.to_string_opt,
              field "words_per_event" row )
          with
          | Some l, Some w ->
              let events =
                match
                  Option.bind (Json.member "events" row) Json.to_int_opt
                with
                | Some e -> e
                | None -> 0
              in
              Some (l, (w, events))
          | _ -> None)
        rows

let budgets_of baseline =
  match Option.bind (Json.member "budgets" baseline) Json.to_list_opt with
  | None -> []
  | Some rows ->
      List.filter_map
        (fun row ->
          match
            ( Option.bind (Json.member "label" row) Json.to_string_opt,
              field "words_per_event" row )
          with
          | Some l, Some w -> Some (l, w)
          | _ -> None)
        rows

let check ~baseline ~artifact =
  let failures = ref [] and warnings = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let warn fmt = Fmt.kstr (fun s -> warnings := s :: !warnings) fmt in
  let tolerance =
    match field "tolerance_pct" baseline with Some t -> t | None -> 10.0
  in
  let min_events =
    match Option.bind (Json.member "min_events" baseline) Json.to_int_opt with
    | Some n -> n
    | None -> 500
  in
  (match profile_of artifact with
  | None -> fail "artifact has no profile section"
  | Some profile ->
      let labels = artifact_labels profile in
      let budgets = budgets_of baseline in
      if budgets = [] then warn "baseline declares no budgets";
      (* hard gate: per-label words/event against its budget *)
      List.iter
        (fun (label, budget) ->
          match List.assoc_opt label labels with
          | None ->
              fail
                "label %S has a budget (%.1f w/ev) but is missing from the \
                 artifact"
                label budget
          | Some (wpe, _) ->
              let limit = budget *. (1.0 +. (tolerance /. 100.0)) in
              if wpe > limit then
                fail
                  "label %S allocates %.1f words/event, over its budget %.1f \
                   by %.1f%% (> %.0f%% tolerance)"
                  label wpe budget
                  (100.0 *. ((wpe /. budget) -. 1.0))
                  tolerance)
        budgets;
      (* advisory: busy labels without a budget (new instrumentation) *)
      List.iter
        (fun (label, (wpe, events)) ->
          if events >= min_events && not (List.mem_assoc label budgets) then
            warn "label %S (%d events, %.1f words/event) has no budget; \
                  update the baseline" label events wpe)
        labels;
      (* hard gate: attribution coverage *)
      (match (field "min_coverage_pct" baseline, field "coverage_pct" profile)
       with
      | Some floor, Some cov ->
          if cov < floor then
            fail "attribution coverage %.1f%% below the %.1f%% floor" cov
              floor
      | Some _, None -> fail "artifact reports no coverage_pct"
      | None, _ -> ()));
  (* advisory: wall-clock throughput (noisy in CI) *)
  (match (field "events_per_sec_floor" baseline,
          field "sim_events_per_sec" artifact)
   with
  | Some floor, Some rate ->
      if rate < floor then
        warn "sim_events_per_sec %.0f below the advisory floor %.0f \
              (wall-clock; not gated)" rate floor
  | Some _, None ->
      warn "artifact carries no sim_events_per_sec (advisory check skipped)"
  | None, _ -> ());
  { failures = List.rev !failures; warnings = List.rev !warnings }

(* Derive a baseline from a measured artifact: budgets are the measured
   words/event inflated by [headroom_pct] (absorbing compiler/runtime
   drift below the gate's own tolerance), the advisory events/sec floor
   is half the measured rate. [bin/perfcheck.exe --init] writes this. *)
let baseline_of_artifact ?(headroom_pct = 5.0) ?(tolerance_pct = 10.0)
    ?(min_coverage_pct = 95.0) ?(min_events = 500) artifact =
  let budgets =
    match profile_of artifact with
    | None -> []
    | Some profile ->
        List.filter_map
          (fun (label, (wpe, events)) ->
            if events < min_events then None
            else
              Some
                (Json.Obj
                   [
                     ("label", Json.String label);
                     ( "words_per_event",
                       Json.Float
                         (Float.round
                            (wpe *. (1.0 +. (headroom_pct /. 100.0)) *. 10.0)
                         /. 10.0) );
                   ]))
          (artifact_labels profile)
  in
  let floor =
    match field "sim_events_per_sec" artifact with
    | Some rate -> [ ("events_per_sec_floor", Json.Float (rate /. 2.0)) ]
    | None -> []
  in
  Json.Obj
    ([
       ("tolerance_pct", Json.Float tolerance_pct);
       ("min_coverage_pct", Json.Float min_coverage_pct);
       ("min_events", Json.Int min_events);
     ]
    @ floor
    @ [ ("budgets", Json.List budgets) ])

let pp_result ppf r =
  List.iter (fun w -> Fmt.pf ppf "warning: %s@." w) r.warnings;
  List.iter (fun f -> Fmt.pf ppf "FAIL: %s@." f) r.failures;
  if ok r then
    Fmt.pf ppf "perfcheck: OK (%d warning%s)@." (List.length r.warnings)
      (if List.length r.warnings = 1 then "" else "s")
  else Fmt.pf ppf "perfcheck: %d failure(s)@." (List.length r.failures)
