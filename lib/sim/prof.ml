(* Simulator self-profiling: per-label event attribution.

   Every engine event carries an attribution label — a slash-separated
   hierarchical path such as "dc1/replica/handle:Replicate" or
   "wal/fsync". Labels are interned to small integers; an event
   scheduled without an explicit label inherits the label of the event
   that scheduled it, so labelling the roots (timers, network
   deliveries, fiber spawns, disk completions) attributes the whole
   event cascade. Label 0 is reserved for "other": events scheduled
   before any labelled ancestor existed. They are counted, never
   dropped, so per-label counts always sum to the executed total.

   When enabled, the engine routes every event through [account], which
   accrues per label:

   - exact event counts;
   - exact allocation deltas ([Gc.counters] around the handler), the
     deterministic hot-path metric: words/event is identical across
     reruns under a fixed seed, so it can be gated hard in CI;
   - sampled wall-clock time: every [sample_every]-th event is timed
     with the (injectable) wall clock and the measurement scaled by the
     sampling period, bounding profiling's syscall overhead.

   Measured allocation includes a small constant profiler overhead per
   event (the boxed floats of the two [Gc.counters] reads, ~26 words).
   It is identical for baseline and candidate artifacts, so budget
   comparisons cancel it out.

   The OCaml 5.1 runtime occasionally misaccounts [Gc.counters] at a
   minor-collection boundary: a spurious jump of a fixed fraction of
   the minor heap (hundreds of thousands of words) lands on whichever
   event triggered the collection, and where it lands depends on the
   whole process's GC history, not on the simulated run. A handler in
   this codebase allocates a few hundred words; an event delta of
   [noise_threshold_words] (64 Ki words, 512 KiB) or more is therefore
   physically implausible and is discarded as GC noise — counted under
   [noise_events]/[noise_words] rather than the label, so per-label
   words/event stays reproducible and safe to gate CI on. One-off
   capacity doublings of large internal arrays land in the same bucket,
   which is the right call for a per-event hot-path metric.

   Disabled profiling costs one branch per event in the engine loop and
   nothing else: [label] interns nothing and returns [none], and no Gc
   or clock calls are made. *)

type label = int

let none : label = 0

type t = {
  mutable on : bool;
  mutable sample_every : int;
  mutable clock : unit -> float;  (* wall clock, seconds; injectable *)
  ids : (string, int) Hashtbl.t;
  mutable names : string array;  (* id -> name; index 0 = "other" *)
  mutable n : int;  (* interned labels, 0 until first enable *)
  mutable counts : int array;
  mutable minor : float array;  (* minor words allocated under the label *)
  mutable major : float array;  (* major (incl. promoted) words *)
  mutable wall_s : float array;  (* raw (unscaled) sampled seconds *)
  mutable samples : int array;
  mutable total : int;  (* events accounted while enabled *)
  mutable noise_events : int;  (* events whose Gc delta was discarded *)
  mutable noise_words : float;  (* total discarded words *)
}

(* Per-event allocation deltas at or above this are runtime GC-boundary
   misaccounting (or one-off capacity doublings), not handler cost. *)
let noise_threshold_words = 65536.0

let create () =
  {
    on = false;
    sample_every = 64;
    clock = Unix.gettimeofday;
    ids = Hashtbl.create 64;
    names = [||];
    n = 0;
    counts = [||];
    minor = [||];
    major = [||];
    wall_s = [||];
    samples = [||];
    total = 0;
    noise_events = 0;
    noise_words = 0.0;
  }

let is_on t = t.on
let set_clock t clock = t.clock <- clock
let wall t = t.clock ()
let sample_every t = t.sample_every
let interned t = t.n
let total_events t = t.total
let noise_events t = t.noise_events
let noise_words t = t.noise_words

let grow t =
  let cap = max 16 (2 * Array.length t.names) in
  let copy a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  in
  t.names <- copy t.names "";
  t.counts <- copy t.counts 0;
  t.minor <- copy t.minor 0.0;
  t.major <- copy t.major 0.0;
  t.wall_s <- copy t.wall_s 0.0;
  t.samples <- copy t.samples 0

let intern t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.names then grow t;
      t.names.(id) <- name;
      Hashtbl.replace t.ids name id;
      t.n <- id + 1;
      id

let enable ?(sample_every = 64) t =
  if sample_every < 1 then
    invalid_arg "Prof.enable: sample_every must be >= 1";
  t.sample_every <- sample_every;
  if t.n = 0 then ignore (intern t "other");
  t.on <- true

let disable t = t.on <- false

(* Intern [name]; a disabled profiler interns nothing and returns
   [none], so instrumentation sites can call this unconditionally. *)
let label t name = if t.on then intern t name else none

(* Execute one engine event under [lab]'s account. Hot path: called for
   every event while profiling is on. *)
let account t lab f =
  let lab = if lab >= 0 && lab < t.n then lab else 0 in
  t.total <- t.total + 1;
  t.counts.(lab) <- t.counts.(lab) + 1;
  let sampled = t.total mod t.sample_every = 0 in
  let t0 = if sampled then t.clock () else 0.0 in
  let minor0, _, major0 = Gc.counters () in
  f ();
  let minor1, _, major1 = Gc.counters () in
  let dm = minor1 -. minor0 and dj = major1 -. major0 in
  if dm +. dj >= noise_threshold_words then begin
    t.noise_events <- t.noise_events + 1;
    t.noise_words <- t.noise_words +. dm +. dj
  end
  else begin
    t.minor.(lab) <- t.minor.(lab) +. dm;
    t.major.(lab) <- t.major.(lab) +. dj
  end;
  if sampled then begin
    t.samples.(lab) <- t.samples.(lab) + 1;
    t.wall_s.(lab) <- t.wall_s.(lab) +. (t.clock () -. t0)
  end

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                           *)

type entry = {
  e_label : string;
  e_events : int;
  e_minor_words : float;
  e_major_words : float;
  e_wall_samples : int;
  e_wall_s : float;  (* raw sampled seconds (multiply by the sampling
                        period for the wall-clock estimate) *)
}

let words_per_event e =
  if e.e_events = 0 then 0.0
  else (e.e_minor_words +. e.e_major_words) /. float_of_int e.e_events

(* Labels with at least one event, busiest first (ties on the label
   string, so the order is deterministic). *)
let entries t =
  let out = ref [] in
  for id = t.n - 1 downto 0 do
    if t.counts.(id) > 0 then
      out :=
        {
          e_label = t.names.(id);
          e_events = t.counts.(id);
          e_minor_words = t.minor.(id);
          e_major_words = t.major.(id);
          e_wall_samples = t.samples.(id);
          e_wall_s = t.wall_s.(id);
        }
        :: !out
  done;
  List.sort
    (fun a b ->
      match compare b.e_events a.e_events with
      | 0 -> compare a.e_label b.e_label
      | c -> c)
    !out

let attributed_events t = if t.n = 0 then 0 else t.total - t.counts.(0)

let coverage_pct t =
  if t.total = 0 then 100.0
  else 100.0 *. float_of_int (attributed_events t) /. float_of_int t.total

(* Merge per-system entry lists (one profiled engine each) into one
   table, summing by label. *)
let merge lists =
  let tbl = Hashtbl.create 64 in
  List.iter
    (List.iter (fun e ->
         match Hashtbl.find_opt tbl e.e_label with
         | None -> Hashtbl.replace tbl e.e_label e
         | Some prev ->
             Hashtbl.replace tbl e.e_label
               {
                 e with
                 e_events = prev.e_events + e.e_events;
                 e_minor_words = prev.e_minor_words +. e.e_minor_words;
                 e_major_words = prev.e_major_words +. e.e_major_words;
                 e_wall_samples = prev.e_wall_samples + e.e_wall_samples;
                 e_wall_s = prev.e_wall_s +. e.e_wall_s;
               }))
    lists;
  Hashtbl.fold (fun _ e acc -> e :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.e_events a.e_events with
         | 0 -> compare a.e_label b.e_label
         | c -> c)

(* ------------------------------------------------------------------ *)
(* JSON export.                                                         *)

let entry_json ~sample_every e =
  Json.Obj
    [
      ("label", Json.String e.e_label);
      ("events", Json.Int e.e_events);
      ("minor_words", Json.Float e.e_minor_words);
      ("major_words", Json.Float e.e_major_words);
      ("words_per_event", Json.Float (words_per_event e));
      ("wall_samples", Json.Int e.e_wall_samples);
      ( "wall_est_us",
        Json.Float (e.e_wall_s *. float_of_int sample_every *. 1e6) );
    ]

let entries_to_json ?(noise_events = 0) ?(noise_words = 0.0) ~sample_every
    ~total_events es =
  let attributed =
    List.fold_left
      (fun acc e -> if e.e_label = "other" then acc else acc + e.e_events)
      0 es
  in
  let coverage =
    if total_events = 0 then 100.0
    else 100.0 *. float_of_int attributed /. float_of_int total_events
  in
  Json.Obj
    [
      ("sample_every", Json.Int sample_every);
      ("total_events", Json.Int total_events);
      ("attributed_events", Json.Int attributed);
      ("coverage_pct", Json.Float coverage);
      ("gc_noise_events", Json.Int noise_events);
      ("gc_noise_words", Json.Float noise_words);
      ("labels", Json.List (List.map (entry_json ~sample_every) es));
    ]

let to_json t =
  entries_to_json ~noise_events:t.noise_events ~noise_words:t.noise_words
    ~sample_every:t.sample_every ~total_events:t.total (entries t)

(* ------------------------------------------------------------------ *)
(* Folded-stack export (Brendan Gregg's flamegraph format): one line
   per label, frames separated by ';', then a space and an integer
   weight — loadable by speedscope and flamegraph.pl. Weights are the
   scaled wall-clock estimate in microseconds when any wall samples
   exist, else exact event counts (short runs where no event hit the
   sampling grid still produce a meaningful graph). Zero-weight lines
   are omitted; lines are sorted by label so the output is stable. *)

let folded_of_entries ~sample_every es =
  let have_wall = List.exists (fun e -> e.e_wall_samples > 0) es in
  let weight e =
    if have_wall then
      int_of_float (e.e_wall_s *. float_of_int sample_every *. 1e6)
    else e.e_events
  in
  let lines =
    List.filter_map
      (fun e ->
        let w = weight e in
        if w <= 0 then None
        else
          Some
            (Fmt.str "%s %d"
               (String.concat ";" (String.split_on_char '/' e.e_label))
               w))
      es
  in
  String.concat "\n" (List.sort compare lines) ^ "\n"

let folded t = folded_of_entries ~sample_every:t.sample_every (entries t)

(* ------------------------------------------------------------------ *)
(* Text reporter: the top-N hot-path table.                             *)

let pp_top ?(n = 12) ppf t =
  match entries t with
  | [] -> ()
  | es ->
      let shown = List.filteri (fun i _ -> i < n) es in
      Fmt.pf ppf "  hot paths (top %d of %d labels, %d events, %.1f%% attributed):@."
        (List.length shown) (List.length es) t.total (coverage_pct t);
      Fmt.pf ppf "    %-44s %10s %10s %9s %11s@." "label" "events"
        "words/ev" "samples" "wall_est_ms";
      List.iter
        (fun e ->
          Fmt.pf ppf "    %-44s %10d %10.1f %9d %11.2f@." e.e_label
            e.e_events (words_per_event e) e.e_wall_samples
            (e.e_wall_s *. float_of_int t.sample_every *. 1e3))
        shown
