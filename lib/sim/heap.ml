(* Binary min-heap specialised for the event queue: entries are keyed by
   (time, seq) so that events scheduled for the same instant fire in
   insertion order, which keeps simulations deterministic. *)

(* [tag] is an opaque client annotation riding the entry (the engine
   stores the event's attribution label there); it plays no part in the
   ordering. *)
type 'a entry = { time : int; seq : int; tag : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  dummy : 'a entry;
}

let create dummy_value =
  let dummy = { time = 0; seq = 0; tag = 0; value = dummy_value } in
  { data = Array.make 64 dummy; size = 0; dummy }

let size h = h.size
let is_empty h = h.size = 0

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let data = Array.make (2 * Array.length h.data) h.dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let push h ~time ~seq ?(tag = 0) value =
  if h.size = Array.length h.data then grow h;
  let e = { time; seq; tag; value } in
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less h.data.(i) h.data.(parent) then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- h.dummy;
    (* sift down *)
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest <> i then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(!smallest);
        h.data.(!smallest) <- tmp;
        down !smallest
      end
    in
    down 0;
    Some top
  end

let clear h =
  for i = 0 to h.size - 1 do
    h.data.(i) <- h.dummy
  done;
  h.size <- 0
