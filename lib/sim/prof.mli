(** Simulator self-profiling: per-label event attribution.

    Every engine event carries a hierarchical attribution label (e.g.
    ["dc1/replica/handle:Replicate"], ["wal/fsync"]); events scheduled
    without one inherit the scheduling event's label. When enabled, the
    engine accrues per label: exact event counts, exact allocation
    deltas ([Gc.counters] around each handler — deterministic under a
    fixed seed, so words/event can be gated hard in CI), and sampled
    wall-clock time (every [sample_every]-th event, bounding overhead).

    Disabled profiling costs one branch per event: {!label} interns
    nothing and returns {!none}, and no Gc or clock calls are made. *)

type t

(** Interned label handle. [none] (= "other") inherits the scheduler's
    label; events that never meet a labelled ancestor are counted under
    ["other"], not dropped. *)
type label = int

val none : label

(** A fresh, disabled profiler ([Engine.create] makes one per engine). *)
val create : unit -> t

(** Start accounting. [sample_every] is the wall-clock sampling period
    in events (default 64; must be >= 1). *)
val enable : ?sample_every:int -> t -> unit

val disable : t -> unit
val is_on : t -> bool

(** Replace the wall clock (default [Unix.gettimeofday]); tests inject
    a deterministic one. Also read by [Engine.run]'s window timing. *)
val set_clock : t -> (unit -> float) -> unit

(** Current wall-clock reading (seconds). *)
val wall : t -> float

val sample_every : t -> int

(** Intern a label. Returns {!none} (interning nothing) while the
    profiler is disabled, so instrumentation sites call it
    unconditionally. *)
val label : t -> string -> label

(** Number of interned labels (0 until first enabled). *)
val interned : t -> int

(** Engine hook: run one event handler under [label]'s account. *)
val account : t -> label -> (unit -> unit) -> unit

(** Events accounted while enabled. *)
val total_events : t -> int

(** Events whose allocation delta was discarded as GC noise: the OCaml
    5.1 runtime occasionally misaccounts [Gc.counters] at a
    minor-collection boundary by a fixed fraction of the minor heap,
    landing on whichever event triggered the collection. Deltas of 64 Ki
    words or more per event are physically implausible for this
    codebase's handlers and are counted here instead of under the label,
    keeping per-label words/event reproducible and safe to gate. *)
val noise_events : t -> int

(** Total words discarded as GC noise. *)
val noise_words : t -> float

(** Events carrying a label other than ["other"]. *)
val attributed_events : t -> int

(** [100 * attributed / total] (100 when no events ran). *)
val coverage_pct : t -> float

type entry = {
  e_label : string;
  e_events : int;
  e_minor_words : float;
  e_major_words : float;
  e_wall_samples : int;
  e_wall_s : float;
      (** raw sampled seconds; multiply by [sample_every] for the
          wall-clock estimate *)
}

(** Allocated words (minor + major) per event under this label. *)
val words_per_event : entry -> float

(** Labels with at least one event, busiest first (deterministic). *)
val entries : t -> entry list

(** Merge per-system entry lists, summing by label. *)
val merge : entry list list -> entry list

val entry_json : sample_every:int -> entry -> Json.t

(** The profile document gated by [bin/perfcheck.exe]: sampling period,
    totals, coverage, GC-noise counters, and the per-label table. *)
val entries_to_json :
  ?noise_events:int ->
  ?noise_words:float ->
  sample_every:int ->
  total_events:int ->
  entry list ->
  Json.t

val to_json : t -> Json.t

(** Brendan-Gregg folded-stack rendering ('/' label segments become ';'
    frames): one "[frames] [weight]" line per label, loadable by
    speedscope / flamegraph.pl. Weights are scaled wall-clock estimates
    (microseconds) when wall samples exist, exact event counts
    otherwise. *)
val folded_of_entries : sample_every:int -> entry list -> string

val folded : t -> string

(** Top-[n] hot-path table (default 12). *)
val pp_top : ?n:int -> Format.formatter -> t -> unit
