(** Binary min-heap keyed by [(time, seq)].

    Used as the simulator event queue. Ties on [time] break on [seq]
    (insertion order), which makes runs deterministic. *)

type 'a entry = { time : int; seq : int; tag : int; value : 'a }

type 'a t

(** [create dummy] makes an empty heap. [dummy] is only used to fill unused
    array slots and is never returned. *)
val create : 'a -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [push h ~time ~seq ?tag v] inserts [v] with key [(time, seq)].
    [tag] (default 0) is an opaque annotation returned with the entry;
    the engine stores the event's attribution label there. *)
val push : 'a t -> time:int -> seq:int -> ?tag:int -> 'a -> unit

(** Smallest entry, without removing it. *)
val peek : 'a t -> 'a entry option

(** Remove and return the smallest entry. *)
val pop : 'a t -> 'a entry option

val clear : 'a t -> unit
