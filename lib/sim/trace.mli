(** Structured event tracing for simulations: a bounded in-memory event
    log with simulated timestamps, filters, and a text timeline. *)

type event = {
  ev_time : int;  (** simulated microseconds; a span's start time *)
  ev_dur : int;  (** span duration; 0 for instant events *)
  ev_source : string;
  ev_kind : string;
  ev_detail : string;
}

type t

(** [create ~clock ~enabled ()] makes a trace reading timestamps from
    [clock]. A disabled trace ignores every emit. *)
val create : ?capacity:int -> clock:(unit -> int) -> enabled:bool -> unit -> t

(** A shared always-off trace. *)
val disabled : t

val enabled : t -> bool
val emit : t -> source:string -> kind:string -> string -> unit

(** Record a duration event covering [\[start, now\]] (transaction
    phases, certification waits). *)
val emit_span : t -> source:string -> kind:string -> start:int -> string -> unit

val emitf : t -> source:string -> kind:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val length : t -> int

(** Events discarded after reaching capacity. *)
val dropped : t -> int

(** Events in emission order, optionally filtered. *)
val events : ?source:string -> ?kind:string -> t -> event list

val count : ?source:string -> ?kind:string -> t -> int
val between : t -> start:int -> stop:int -> event list
val pp_event : event Fmt.t
val dump : ?source:string -> ?kind:string -> Format.formatter -> t -> unit

(** Event counts per kind, most frequent first. *)
val summary : t -> (string * int) list

(** The trace as a Chrome trace-event document (Perfetto-loadable): one
    named track per distinct [ev_source]; spans as duration events,
    instants as instant events. *)
val chrome_json : t -> Json.t

(** Write {!chrome_json} compactly to a formatter. *)
val to_chrome : Format.formatter -> t -> unit
