(* RUBiS benchmark (§8.1): an online auction site in the style of eBay.

   The paper's setup: 11 read-only and 5 update transaction types plus an
   extra update transaction closeAuction; the bidding mix has 15% update
   transactions, of which strong transactions are 10% of the total. Four
   transaction types are strong — registerUser, storeBuyNow, storeBid and
   closeAuction — with three declared conflicts:

     registerUser  ⋈ registerUser   (same nickname: unique usernames)
     storeBid      ⋈ closeAuction   (same item: the winner is the
                                     highest bidder)
     storeBuyNow   ⋈ closeAuction   (same item: no buy-now on a closed
                                     auction)

   The database is populated with items for sale and registered users;
   client think time is 500 ms, as in the RUBiS specification. *)

module Client = Unistore.Client
module Types = Unistore.Types
module System = Unistore.System
module Config = Unistore.Config
module Keyspace = Store.Keyspace

(* Tables. *)
let t_user = 1
let t_item = 2
let t_bid = 3
let t_buynow = 4
let t_comment = 5
let t_region = 6
let t_category = 7

(* Fields. *)
let f_base = 0
let f_rating = 1  (* counter *)
let f_maxbid = 2
let f_bidcount = 3  (* counter *)
let f_closed = 4
let f_winner = 5
let f_stock = 6
let f_lastbid = 7

(* Operation classes for the conflict relation. *)
let cls_register_user = 1
let cls_store_bid = 2
let cls_close_auction = 3
let cls_store_buynow = 4

(* The PoR conflict relation of §8.1. *)
let conflict_spec =
  Config.Classes
    [
      (cls_register_user, cls_register_user);
      (cls_store_bid, cls_close_auction);
      (cls_store_buynow, cls_close_auction);
    ]

let user_key ~uid ~field = Keyspace.make ~table:t_user ~field ~row:uid
let item_key ~iid ~field = Keyspace.make ~table:t_item ~field ~row:iid
let bid_key ~bid = Keyspace.make ~table:t_bid ~field:0 ~row:bid
let buynow_key ~bn = Keyspace.make ~table:t_buynow ~field:0 ~row:bn
let comment_key ~cid = Keyspace.make ~table:t_comment ~field:0 ~row:cid
let region_key ~rid = Keyspace.make ~table:t_region ~field:0 ~row:rid
let category_key ~cid = Keyspace.make ~table:t_category ~field:0 ~row:cid

type spec = {
  n_items : int;
  n_users : int;
  n_regions : int;
  n_categories : int;
  think_time_us : int;
  max_retries : int;
}

(* The paper populates 33,000 items and 1M users (the RUBiS spec); user
   count only shapes key dispersion, so the default scales it down to
   keep simulator memory reasonable. *)
let default_spec =
  {
    n_items = 33_000;
    n_users = 50_000;
    n_regions = 62;
    n_categories = 20;
    think_time_us = 500_000;
    max_retries = 5;
  }

let populate sys spec =
  for iid = 0 to spec.n_items - 1 do
    System.preload sys (item_key ~iid ~field:f_base) (Crdt.Reg_write 1);
    System.preload sys (item_key ~iid ~field:f_maxbid) (Crdt.Reg_write 0);
    System.preload sys (item_key ~iid ~field:f_stock) (Crdt.Reg_write 10)
  done;
  for rid = 0 to spec.n_regions - 1 do
    System.preload sys (region_key ~rid) (Crdt.Reg_write 1)
  done;
  for cid = 0 to spec.n_categories - 1 do
    System.preload sys (category_key ~cid) (Crdt.Reg_write 1)
  done

(* ------------------------------------------------------------------ *)
(* Transaction implementations. Each takes the client and an RNG.       *)

let rand_item spec rng = Sim.Rng.int rng spec.n_items
let rand_user spec rng = Sim.Rng.int rng spec.n_users

let home spec client rng =
  ignore (Client.read client (category_key ~cid:(Sim.Rng.int rng spec.n_categories)));
  ignore (Client.read client (region_key ~rid:(Sim.Rng.int rng spec.n_regions)))

let browse_categories spec client rng =
  for _ = 1 to 3 do
    ignore
      (Client.read client (category_key ~cid:(Sim.Rng.int rng spec.n_categories)))
  done

let search_items_in_category spec client rng =
  for _ = 1 to 5 do
    ignore (Client.read client (item_key ~iid:(rand_item spec rng) ~field:f_base))
  done

let browse_regions spec client rng =
  for _ = 1 to 3 do
    ignore (Client.read client (region_key ~rid:(Sim.Rng.int rng spec.n_regions)))
  done

let search_items_in_region spec client rng =
  for _ = 1 to 5 do
    ignore (Client.read client (item_key ~iid:(rand_item spec rng) ~field:f_base))
  done

let view_item spec client rng =
  let iid = rand_item spec rng in
  ignore (Client.read client (item_key ~iid ~field:f_base));
  ignore (Client.read client (item_key ~iid ~field:f_maxbid));
  ignore (Client.read client (item_key ~iid ~field:f_bidcount))

let view_user_info spec client rng =
  let uid = rand_user spec rng in
  ignore (Client.read client (user_key ~uid ~field:f_base));
  ignore (Client.read client (user_key ~uid ~field:f_rating))

let view_bid_history spec client rng =
  let iid = rand_item spec rng in
  ignore (Client.read client (item_key ~iid ~field:f_lastbid));
  ignore (Client.read client (item_key ~iid ~field:f_bidcount));
  ignore (Client.read client (user_key ~uid:(rand_user spec rng) ~field:f_base))

let buy_now_auth spec client rng =
  let uid = rand_user spec rng in
  ignore (Client.read client (user_key ~uid ~field:f_base))

let about_me spec client rng =
  ignore (Client.read client (user_key ~uid:(rand_user spec rng) ~field:f_base));
  for _ = 1 to 3 do
    ignore (Client.read client (item_key ~iid:(rand_item spec rng) ~field:f_base))
  done

let view_comments spec client rng =
  for _ = 1 to 3 do
    ignore
      (Client.read client (comment_key ~cid:(Sim.Rng.int rng (10 * spec.n_items))))
  done

(* --- update transactions -------------------------------------------- *)

let register_user spec client rng =
  (* fresh nicknames land above the populated range; the strong conflict
     guarantees uniqueness even for simultaneous registrations *)
  let uid = spec.n_users + Sim.Rng.int rng (10 * spec.n_users) in
  let key = user_key ~uid ~field:f_base in
  let existing = Client.read ~cls:cls_register_user client key in
  if Crdt.int_value existing = 0 then begin
    Client.update ~cls:cls_register_user client key (Crdt.Reg_write 1);
    Client.update client (user_key ~uid ~field:f_rating) (Crdt.Ctr_add 0)
  end

let register_item spec client rng =
  let iid = spec.n_items + Sim.Rng.int rng (10 * spec.n_items) in
  Client.update client (item_key ~iid ~field:f_base) (Crdt.Reg_write 1);
  Client.update client (item_key ~iid ~field:f_maxbid) (Crdt.Reg_write 0);
  Client.update client (item_key ~iid ~field:f_stock) (Crdt.Reg_write 10)

let store_comment spec client rng =
  let cid = Sim.Rng.int rng (100 * spec.n_items) in
  Client.update client (comment_key ~cid) (Crdt.Reg_write 1);
  Client.update client
    (user_key ~uid:(rand_user spec rng) ~field:f_rating)
    (Crdt.Ctr_add 1)

let store_bid spec client rng =
  let iid = rand_item spec rng in
  ignore (Client.read client (item_key ~iid ~field:f_base));
  let maxbid =
    Crdt.int_value (Client.read ~cls:cls_store_bid client (item_key ~iid ~field:f_maxbid))
  in
  let bid = maxbid + 1 + Sim.Rng.int rng 10 in
  Client.update ~cls:cls_store_bid client (item_key ~iid ~field:f_maxbid)
    (Crdt.Reg_write bid);
  Client.update client (item_key ~iid ~field:f_bidcount) (Crdt.Ctr_add 1);
  Client.update client (item_key ~iid ~field:f_lastbid)
    (Crdt.Reg_write (Client.id client));
  Client.update client
    (bid_key ~bid:((iid * 1000) + Sim.Rng.int rng 1000))
    (Crdt.Reg_write bid)

let store_buy_now spec client rng =
  let iid = rand_item spec rng in
  let closed =
    Crdt.int_value
      (Client.read ~cls:cls_store_buynow client (item_key ~iid ~field:f_closed))
  in
  if closed = 0 then begin
    let stock =
      Crdt.int_value (Client.read client (item_key ~iid ~field:f_stock))
    in
    if stock > 0 then begin
      Client.update client (item_key ~iid ~field:f_stock)
        (Crdt.Reg_write (stock - 1));
      Client.update client
        (buynow_key ~bn:((iid * 1000) + Sim.Rng.int rng 1000))
        (Crdt.Reg_write (Client.id client))
    end
  end

let close_auction spec client rng =
  let iid = rand_item spec rng in
  let maxbid =
    Crdt.int_value
      (Client.read ~cls:cls_close_auction client (item_key ~iid ~field:f_maxbid))
  in
  Client.update ~cls:cls_close_auction client (item_key ~iid ~field:f_closed)
    (Crdt.Reg_write 1);
  Client.update client (item_key ~iid ~field:f_winner) (Crdt.Reg_write maxbid)

(* ------------------------------------------------------------------ *)
(* The bidding mix: weights chosen to match §8.1 — 15% update
   transactions overall, of which strong transactions are 10% of the
   total workload.                                                      *)

type txn = {
  name : string;
  strong : bool;
  weight : float;
  body : spec -> Client.t -> Sim.Rng.t -> unit;
}

let mix =
  [|
    { name = "home"; strong = false; weight = 8.0; body = home };
    {
      name = "browseCategories";
      strong = false;
      weight = 8.0;
      body = browse_categories;
    };
    {
      name = "searchItemsInCategory";
      strong = false;
      weight = 16.0;
      body = search_items_in_category;
    };
    {
      name = "browseRegions";
      strong = false;
      weight = 6.0;
      body = browse_regions;
    };
    {
      name = "searchItemsInRegion";
      strong = false;
      weight = 10.0;
      body = search_items_in_region;
    };
    { name = "viewItem"; strong = false; weight = 18.0; body = view_item };
    {
      name = "viewUserInfo";
      strong = false;
      weight = 7.0;
      body = view_user_info;
    };
    {
      name = "viewBidHistory";
      strong = false;
      weight = 5.0;
      body = view_bid_history;
    };
    { name = "buyNowAuth"; strong = false; weight = 2.0; body = buy_now_auth };
    { name = "aboutMe"; strong = false; weight = 2.0; body = about_me };
    {
      name = "viewComments";
      strong = false;
      weight = 3.0;
      body = view_comments;
    };
    (* update transactions: 15% of the mix *)
    {
      name = "registerUser";
      strong = true;
      weight = 1.0;
      body = register_user;
    };
    {
      name = "registerItem";
      strong = false;
      weight = 2.0;
      body = register_item;
    };
    {
      name = "storeComment";
      strong = false;
      weight = 3.0;
      body = store_comment;
    };
    { name = "storeBid"; strong = true; weight = 6.0; body = store_bid };
    {
      name = "storeBuyNow";
      strong = true;
      weight = 1.5;
      body = store_buy_now;
    };
    {
      name = "closeAuction";
      strong = true;
      weight = 1.5;
      body = close_auction;
    };
  |]

let weights = Array.map (fun t -> t.weight) mix

(* Fraction of strong transactions in the mix (sanity: ~0.10). *)
let strong_fraction () =
  let total = Array.fold_left (fun acc t -> acc +. t.weight) 0.0 mix in
  let strong =
    Array.fold_left
      (fun acc t -> if t.strong then acc +. t.weight else acc)
      0.0 mix
  in
  strong /. total

(* Fraction of update transactions in the mix (sanity: ~0.15). *)
let update_fraction () =
  let updates =
    [ "registerUser"; "registerItem"; "storeComment"; "storeBid";
      "storeBuyNow"; "closeAuction" ]
  in
  let total = Array.fold_left (fun acc t -> acc +. t.weight) 0.0 mix in
  let upd =
    Array.fold_left
      (fun acc t -> if List.mem t.name updates then acc +. t.weight else acc)
      0.0 mix
  in
  upd /. total

(* Closed-loop client body running the bidding mix until [stop ()]. *)
let client_body spec ~stop client =
  let rng = Sim.Rng.create ((Client.id client * 6271) + 5) in
  let rec loop () =
    if not (stop ()) then begin
      let txn = mix.(Sim.Rng.weighted rng weights) in
      (* run_txn re-executes on certification abort and on mid-txn DC
         failover alike; past max_retries the transaction is dropped *)
      (try
         Client.run_txn ~label:txn.name ~strong:txn.strong
           ~max_retries:spec.max_retries client (fun c -> txn.body spec c rng)
       with Client.Aborted -> ());
      if spec.think_time_us > 0 then Sim.Fiber.sleep spec.think_time_us;
      loop ()
    end
  in
  loop ()
