(* Open-loop arrival driver (overload experiments).

   The closed-loop bodies in [Micro]/[Rubis] tie the offered load to the
   store's latency: each client waits for its previous transaction, so a
   slow store is offered less work and a saturation knee never shows.
   Here requests arrive on their own schedule — a Poisson or
   trace-driven process drawn from [Sim.Rng], deterministic under the
   deployment seed — and each arrival spawns a fiber at its arrival
   time, drawing a session from a reusable per-DC pool that grows when
   every session is busy. Under overload the pool (and the in-flight
   count) diverges instead of the arrival rate sagging, which is exactly
   the open-loop behaviour admission control is measured against.

   Rates are functions of simulated time, so flash crowds, diurnal
   curves and mid-run shifts are ordinary combinators; arrival sequences
   are materialized up front by thinning against the peak rate, so the
   same seed yields the same arrival instants regardless of how the
   store behaves. *)

module Client = Unistore.Client
module System = Unistore.System
module Config = Unistore.Config

(* Offered load as a function of simulated time: [rate t] is the arrival
   rate in transactions per second at time [t] (µs). *)
type rate = int -> float

let constant r : rate = fun _ -> r

(* [base] everywhere except a burst window of [peak] starting at
   [at_us]. *)
let flash_crowd ~base ~peak ~at_us ~duration_us : rate =
 fun t -> if t >= at_us && t < at_us + duration_us then peak else base

(* Sinusoidal day/night curve: [base + amplitude * sin(2πt/period)],
   clamped at zero. *)
let diurnal ~base ~amplitude ~period_us : rate =
 fun t ->
  let phase = 2.0 *. Float.pi *. float_of_int t /. float_of_int period_us in
  Float.max 0.0 (base +. (amplitude *. Float.sin phase))

(* Switch from one schedule to another at [at_us] (rate analogue of the
   hot-key shift below). *)
let shift ~at_us before after : rate =
 fun t -> if t < at_us then before t else after t

(* Materialize a Poisson arrival sequence for [rate] on [0, until_us]
   by thinning: candidates are drawn from a homogeneous process at the
   peak rate (sampled on a 1 ms grid) and kept with probability
   [rate t / peak]. Pure in [rng] — a split of the deployment RNG gives
   byte-identical sequences under a fixed seed. *)
let arrivals ~rng ~rate ~until_us =
  if until_us <= 0 then invalid_arg "Openloop.arrivals: until_us must be > 0";
  let peak = ref 1e-9 in
  let t = ref 0 in
  while !t <= until_us do
    peak := Float.max !peak (rate !t);
    t := !t + 1_000
  done;
  let peak = !peak in
  let mean_gap_us = 1_000_000.0 /. peak in
  let rec gen acc t =
    let gap =
      max 1 (int_of_float (Sim.Rng.exponential rng ~mean:mean_gap_us))
    in
    let t = t + gap in
    if t > until_us then List.rev acc
    else if Sim.Rng.float rng 1.0 < rate t /. peak then gen (t :: acc) t
    else gen acc t
  in
  gen [] 0

(* Trace-driven arrivals: explicit instants (µs, ascending). *)
let of_trace times =
  let rec check last = function
    | [] -> ()
    | t :: rest ->
        if t < last then invalid_arg "Openloop.of_trace: times must ascend";
        check t rest
  in
  check 0 times;
  times

(* ------------------------------------------------------------------ *)
(* The driver.                                                          *)

type outcome = [ `Committed | `Aborted | `Shed ]

(* A transaction body: runs one transaction on [client] in direct style
   and classifies the result. [at_us] is the arrival instant, letting
   bodies change behaviour mid-run (hot-key shifts). *)
type body = at_us:int -> Client.t -> Sim.Rng.t -> outcome

(* Hot-key shift and friends: behave as [before] until [at_us], then as
   [after]. *)
let switch_body ~at_us (before : body) (after : body) : body =
 fun ~at_us:t client rng ->
  if t < at_us then before ~at_us:t client rng else after ~at_us:t client rng

type stats = {
  mutable arrivals : int;
  mutable committed : int;
  mutable aborted : int;
  mutable shed : int;
  mutable in_flight : int;
  mutable peak_in_flight : int;
  mutable sessions : int;  (* pool size: sessions ever created *)
}

let shed_fraction s =
  if s.arrivals = 0 then 0.0 else float_of_int s.shed /. float_of_int s.arrivals

(* Install the arrival schedule on [sys]: each instant schedules an
   engine event that takes a session from its DC's pool (growing the
   pool when all sessions are in flight — the open-loop divergence) and
   spawns a fiber running [body]. Arrivals round-robin over the live
   DCs' indices at install time; each gets its own RNG split so the
   transaction mix is independent of interleaving. Returns the mutable
   [stats] the fibers update; drive the engine (e.g. [System.run]) past
   the last arrival plus a drain period before reading them. *)
let install sys ~arrivals:times ~body =
  let eng = System.engine sys in
  let metrics = System.metrics sys in
  let dcs = Config.dcs (System.cfg sys) in
  let pools = Array.init dcs (fun _ -> Queue.create ()) in
  let base_rng = Sim.Rng.split (Sim.Engine.rng eng) ~id:0x09e7 in
  let stats =
    {
      arrivals = 0;
      committed = 0;
      aborted = 0;
      shed = 0;
      in_flight = 0;
      peak_in_flight = 0;
      sessions = 0;
    }
  in
  let label = Sim.Prof.label (Sim.Engine.prof eng) "fiber/openloop" in
  List.iteri
    (fun i at ->
      let dc = i mod dcs in
      let rng = Sim.Rng.split base_rng ~id:i in
      Sim.Engine.schedule_at eng ~label ~time:at (fun () ->
          stats.arrivals <- stats.arrivals + 1;
          (* interned on first arrival only: closed-loop runs keep
             byte-identical metric snapshots *)
          Sim.Metrics.incr (Sim.Metrics.counter metrics "open_loop_arrivals_total");
          let client =
            match Queue.take_opt pools.(dc) with
            | Some c -> c
            | None ->
                stats.sessions <- stats.sessions + 1;
                System.new_client sys ~dc
          in
          stats.in_flight <- stats.in_flight + 1;
          if stats.in_flight > stats.peak_in_flight then
            stats.peak_in_flight <- stats.in_flight;
          Sim.Fiber.spawn eng ~label (fun () ->
              (match body ~at_us:at client rng with
              | `Committed -> stats.committed <- stats.committed + 1
              | `Aborted -> stats.aborted <- stats.aborted + 1
              | `Shed -> stats.shed <- stats.shed + 1);
              stats.in_flight <- stats.in_flight - 1;
              Queue.push client pools.(dc))))
    times;
  stats

(* ------------------------------------------------------------------ *)
(* Bodies over the existing workloads.                                  *)

(* One microbenchmark transaction per arrival. Admission sheds surface
   as [`Shed] (no retry — the open-loop driver counts them as lost
   goodput); a mid-transaction failover abort counts as [`Aborted]. *)
let micro_body (spec : Micro.spec) : body =
  let zipf = Sim.Zipf.create ~n:spec.Micro.keys ~theta:spec.Micro.theta in
  fun ~at_us:_ client rng ->
    match Micro.run_txn spec zipf rng client with
    | true -> `Committed
    | false -> `Aborted
    | exception Client.Overloaded -> `Shed
    | exception Client.Aborted -> `Aborted

(* One transaction of the RUBiS bidding mix per arrival. *)
let rubis_body (spec : Rubis.spec) : body =
 fun ~at_us:_ client rng ->
  let txn = Rubis.mix.(Sim.Rng.weighted rng Rubis.weights) in
  let rec attempt n =
    Client.start client ~label:txn.Rubis.name ~strong:txn.Rubis.strong;
    txn.Rubis.body spec client rng;
    match Client.commit client with
    | `Committed _ -> `Committed
    | `Aborted ->
        if n >= spec.Rubis.max_retries then `Aborted else attempt (n + 1)
  in
  try attempt 0 with
  | Client.Overloaded -> `Shed
  | Client.Aborted -> `Aborted
