(* Microbenchmark workload (§8.2, §8.3).

   Closed-loop clients issue transactions over a register key space:
   - each transaction accesses [ops_per_txn] distinct data items (3 in
     the paper);
   - a configurable fraction of transactions are updates (100% in the
     scalability experiments of §8.2; 15% in the uniformity-cost
     experiments of §8.3);
   - a configurable fraction are strong (§8.2 sweeps 0–100%);
   - for the contention experiment (§8.2 bottom), a fraction of strong
     transactions aim all accesses at a designated partition. *)

module Client = Unistore.Client
module Types = Unistore.Types

type spec = {
  keys : int;  (* key-space size *)
  theta : float;  (* Zipf skew; 0 = uniform as in the paper *)
  ops_per_txn : int;
  update_ratio : float;  (* fraction of update transactions *)
  strong_ratio : float;  (* fraction of strong transactions *)
  partitions : int;
  (* (designated partition, fraction of strong transactions aimed at it) *)
  hot_partition : (int * float) option;
  think_time_us : int;
  max_retries : int;  (* strong transactions re-execute on abort *)
}

let default_spec ~partitions =
  {
    keys = 100_000;
    theta = 0.0;
    ops_per_txn = 3;
    update_ratio = 1.0;
    strong_ratio = 0.1;
    partitions;
    hot_partition = None;
    think_time_us = 0;
    max_retries = 3;
  }

(* Distinct keys for one transaction. *)
let pick_keys spec zipf rng ~hot =
  let rec pick acc n =
    if n = 0 then acc
    else
      let key =
        match hot with
        | Some p ->
            (* a key guaranteed to live on the designated partition *)
            let k = Sim.Rng.int rng (spec.keys / spec.partitions) in
            Store.Keyspace.key_on ~partitions:spec.partitions ~p k
        | None -> Sim.Zipf.sample zipf rng
      in
      if List.mem key acc then pick acc n else pick (key :: acc) (n - 1)
  in
  pick [] spec.ops_per_txn

(* Execute one transaction; returns [true] if it committed. *)
let run_txn spec zipf rng client =
  let strong = Sim.Rng.float rng 1.0 < spec.strong_ratio in
  let update = Sim.Rng.float rng 1.0 < spec.update_ratio in
  let hot =
    match spec.hot_partition with
    | Some (p, frac) when strong && Sim.Rng.float rng 1.0 < frac -> Some p
    | _ -> None
  in
  let keys = pick_keys spec zipf rng ~hot in
  let label =
    match (strong, update) with
    | true, _ -> "micro-strong"
    | false, true -> "micro-update"
    | false, false -> "micro-read"
  in
  let rec attempt n =
    Client.start client ~label ~strong;
    List.iter
      (fun key ->
        if update then
          Client.update client key (Crdt.Reg_write (Sim.Rng.int rng 1_000_000))
        else ignore (Client.read client key))
      keys;
    match Client.commit client with
    | `Committed _ -> true
    | `Aborted -> if n >= spec.max_retries then false else attempt (n + 1)
  in
  attempt 0

(* Closed-loop client body: run transactions until [stop ()]. *)
let client_body spec ~stop client =
  let rng =
    Sim.Rng.create ((Client.id client * 7919) + 13)
  in
  let zipf = Sim.Zipf.create ~n:spec.keys ~theta:spec.theta in
  let rec loop () =
    if not (stop ()) then begin
      (* a DC failover mid-call raises Aborted (the session has already
         migrated — drop the attempt and go on); admission control
         raises Overloaded (shed — back off before retrying) *)
      (try ignore (run_txn spec zipf rng client) with
      | Client.Aborted -> ()
      | Client.Overloaded -> Sim.Fiber.sleep (10_000 + Sim.Rng.int rng 10_000));
      if spec.think_time_us > 0 then Sim.Fiber.sleep spec.think_time_us;
      loop ()
    end
  in
  loop ()
