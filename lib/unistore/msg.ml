(* Protocol messages. One variant covers the whole system: client/
   coordinator RPCs, the causal protocol (Algorithms A1–A5), and the
   transaction certification service (Algorithms A7–A10). *)

module Vc = Vclock.Vc

type addr = int (* Network.addr *)

(* Prepared strong transaction at a partition replica (preparedStrong).
   Carries the full write buffer and operation map so leader recovery can
   re-certify the transaction across all its partitions. *)
type prepared_strong = {
  ps_tid : Types.tid;
  ps_coord : addr;
  ps_origin : int;  (* issuing client *)
  ps_wbuff : Types.wbuff;
  ps_ops : Types.opsmap;
  ps_snap : Vc.t;
  ps_vote : bool;  (* leader's certification vote: commit? *)
  ps_ts : int;  (* proposed strong timestamp *)
  ps_lc : int;
}

(* Decided strong transaction (decidedStrong). *)
type decided_strong = {
  ds_tid : Types.tid;
  ds_origin : int;
  ds_wbuff : Types.wbuff;
  ds_ops : Types.opsmap;
  ds_dec : bool;  (* committed? *)
  ds_vec : Vc.t;  (* commit vector (meaningful when committed) *)
  ds_lc : int;
}

type cert_caller = Normal | Restoring

type t =
  (* ---- client -> coordinator -------------------------------------- *)
  | C_start of {
      client : addr;
      client_id : int;
      req : int;
      tid : Types.tid;  (* allocated by the client: (client id, seq) *)
      past : Vc.t;
    }
  | C_read of { client : addr; req : int; tid : Types.tid; key : Store.Keyspace.key; cls : int }
  | C_update of {
      client : addr;
      req : int;
      tid : Types.tid;
      key : Store.Keyspace.key;
      op : Crdt.op;
      cls : int;
    }
  | C_commit_causal of { client : addr; req : int; tid : Types.tid; lc : int }
  | C_commit_strong of { client : addr; req : int; tid : Types.tid; lc : int }
  | C_uniform_barrier of { client : addr; req : int; past : Vc.t }
  | C_attach of { client : addr; req : int; past : Vc.t }
  (* DC failover (§5.6 / crash recovery): attach carrying the session's
     causal past after the previous DC was suspected... *)
  | C_failover of { client : addr; req : int; past : Vc.t }
  (* ...and idempotent re-submission of an in-flight strong transaction
     at the new DC: same tid, so certification deduplicates. *)
  | C_resubmit_strong of {
      client : addr;
      client_id : int;
      req : int;
      tid : Types.tid;
      wbuff : Types.wbuff;
      ops : Types.opsmap;
      snap : Vc.t;
      lc : int;
    }
  (* ---- coordinator -> client -------------------------------------- *)
  | R_started of { req : int; tid : Types.tid; snap : Vc.t }
  | R_value of { req : int; value : Crdt.value; lc : int option }
  | R_committed of { req : int; vec : Vc.t }
  | R_strong of { req : int; dec : bool; vec : Vc.t; lc : int }
  | R_ok of { req : int }
  (* admission control shed the commit before certification: the
     transaction took no effect and the client may retry it *)
  | R_overloaded of { req : int }
  (* ---- causal protocol, within a data center (Algorithms A2–A3) --- *)
  | Get_version of { from : addr; tid : Types.tid; key : Store.Keyspace.key; snap : Vc.t }
  | Version of { tid : Types.tid; key : Store.Keyspace.key; value : Crdt.value; lc : int option }
  | Prepare of { from : addr; tid : Types.tid; writes : Types.write list; snap : Vc.t }
  | Prepare_ack of { tid : Types.tid; part : int; ts : int }
  | Commit of { tid : Types.tid; vec : Vc.t; lc : int; origin : int }
  (* Presumed-abort resolution of causal-2PC orphans (persistence mode):
     a restarted participant that replayed a prepared-but-uncommitted
     entry from its WAL asks the coordinator what became of [tid]. A
     coordinator holding a durable decision re-sends [Commit]; one with
     no record of the transaction answers [Commit_abort] (presumed
     abort), and the participant discards the prepared entry. *)
  | Commit_query of { from : addr; tid : Types.tid; part : int }
  | Commit_abort of { tid : Types.tid }
  (* ---- replication and forwarding (Algorithm A4) ------------------- *)
  (* [from_ts] is the stream-continuity boundary: the sender claims the
     message carries every transaction of [origin]'s stream with
     timestamp in (from_ts, last]. A receiver whose frontier for
     [origin] is below [from_ts] has a gap and must not jump — it
     repairs instead (see Replica.handle_replicate). Overstating
     [from_ts] is safe (spurious repair); understating it would hide a
     gap, so senders derive it from what they actually shipped/retained,
     never from a belief about the receiver. *)
  | Replicate of { origin : int; txs : Types.tx_rec list; from_ts : int }
  | Heartbeat of { origin : int; ts : int; from_ts : int }
  (* Origin-scoped repair pull: backfill exactly the window
     (vec_from, upto] of [origin]'s stream from whoever holds it (the
     origin itself or any sibling — GC floors guarantee retention, see
     Replica.prune_committed). [sq] tags the attempt so replies from an
     abandoned target are discarded after deadline failover. *)
  | Repair_request of {
      from : addr;
      origin : int;
      vec_from : int;
      upto : int;
      sq : int;
    }
  (* Repair reply chunk: [from_ts] chains chunks ([covered] on the final
     chunk is how far the server's own frontier vouches for the window —
     the requester may jump its frontier to [covered] even if the window
     was empty of transactions). *)
  | Repair_log of {
      origin : int;
      txs : Types.tx_rec list;
      from_ts : int;
      covered : int;
      last : bool;
      sq : int;
    }
  (* ---- metadata exchange (Algorithm A5) ---------------------------- *)
  (* In-DC dissemination tree for stableVec: minima flow up to partition
     0, the computed stableVec flows back down. *)
  | Kv_up of { part : int; vec : Vc.t }
  | Stable_down of { vec : Vc.t }
  | Stablevec of { dc : int; vec : Vc.t }
  | Knownvec_global of { dc : int; vec : Vc.t }
  (* ---- certification service (Algorithms A7–A10) ------------------- *)
  | Prepare_strong of {
      rid : int;
      caller : cert_caller;
      coord : addr;
      tid : Types.tid;
      origin : int;
      wbuff : Types.wbuff;
      ops : Types.opsmap;
      snap : Vc.t;
      lc : int;
    }
  | Already_decided of { rid : int; tid : Types.tid; dec : bool; vec : Vc.t; lc : int }
  | Accept of {
      b : int;
      tid : Types.tid;
      coord : addr;
      rid : int;
      origin : int;
      wbuff : Types.wbuff;
      ops : Types.opsmap;
      snap : Vc.t;
      vote : bool;
      ts : int;
      lc : int;
    }
  | Accept_ack of {
      part : int;
      b : int;
      rid : int;
      tid : Types.tid;
      vote : bool;
      ts : int;
      lc : int;
      from_dc : int;
    }
  | Unknown_tx of { b : int; rid : int; tid : Types.tid; coord : addr }
  | Unknown_tx_ack of { part : int; rid : int; tid : Types.tid; from_dc : int }
  | Decision of { b : int; tid : Types.tid; dec : bool; vec : Vc.t; lc : int }
  | Learn_decision of { b : int; tid : Types.tid; dec : bool; vec : Vc.t; lc : int }
  | Deliver of { b : int; ts : int }
  (* Centralized certification (REDBLUE) pushes decided updates from the
     per-DC certification replica to the data partitions of its DC. *)
  | Push_updates of { txs : Types.tx_rec list; strong_ts : int }
  (* ---- leader recovery (Algorithm A10) ------------------------------ *)
  | Nack of { b : int; from : addr }
  | New_leader of { b : int; from : addr }
  | New_leader_ack of {
      b : int;
      cballot : int;
      prepared : prepared_strong list;
      decided : decided_strong list;
      from : addr;
    }
  | New_state of {
      b : int;
      prepared : prepared_strong list;
      decided : decided_strong list;
      from : addr;
    }
  | New_state_ack of { b : int; from : addr }
  (* ---- DC rejoin: snapshot + causal-log catch-up -------------------- *)
  (* A recovering replica asks a live sibling of its partition for a
     snapshot of the materialized store. [sq] tags the attempt so chunks
     from an abandoned peer are discarded after a rotation. *)
  | Sync_request of { from : addr; part : int; sq : int }
  (* Snapshot chunk: raw oplog entries (bounded count per message). The
     final chunk carries [last = true] and the cut vector — the peer's
     knownVec at snapshot time; entries above it (the peer's own not yet
     propagated commits) are excluded and reach the rejoiner through
     ordinary replication. *)
  | Sync_store of {
      sq : int;
      entries : (Store.Keyspace.key * Crdt.op * Vc.t * Crdt.tag) list;
      last : bool;
      cut : Vc.t;
    }
  (* Log catch-up round: ask a sibling for committed causal transactions
     above [vec]; it answers with [Sync_log] batches followed by a
     [Sync_tail] carrying its knownVec (FIFO channels order them).
     [Sync_log] is deliberately distinct from [Replicate]: the rejoiner
     defers the direct replication stream until it has caught up, and
     must not defer the pull responses that let it catch up. A tail with
     [syncing = true] comes from a peer that is itself rejoining and
     cannot serve the round. *)
  | Sync_pull of { from : addr; vec : Vc.t; sq : int }
  | Sync_log of {
      origin : int;
      txs : Types.tx_rec list;
      from_ts : int;
      sq : int;
    }
  | Sync_tail of { from_dc : int; known : Vc.t; syncing : bool; sq : int }
  (* A Restoring certification member asks the group leader to re-send
     the decided/prepared state ([New_state]). [ballot] is the
     requester's durable ballot promise: the leader must answer at a
     ballot at least this high (re-electing itself above it first if
     need be), or the reply fails the requester's [b >= ballot] check. *)
  | State_request of { from : addr; ballot : int }
  (* ---- Ω failure detector ------------------------------------------- *)
  | Fd_ping of { from_dc : int }

(* Service cost of a message (CPU microseconds at the processing node). *)
let cost (c : Config.costs) = function
  | C_start _ | C_read _ | C_update _ | C_commit_causal _ | C_commit_strong _
  | C_uniform_barrier _ | C_attach _ | C_failover _ ->
      c.c_base
  | C_resubmit_strong _ -> c.c_prepare
  | R_started _ | R_value _ | R_committed _ | R_strong _ | R_ok _
  | R_overloaded _ ->
      c.c_client
  | Get_version _ -> c.c_get_version
  | Version _ -> c.c_base
  | Prepare _ -> c.c_prepare
  | Prepare_ack _ -> c.c_base
  | Commit _ -> c.c_commit
  | Commit_query _ -> c.c_base
  | Commit_abort _ -> c.c_commit
  | Replicate { txs; _ } -> c.c_base + (c.c_replicate_tx * List.length txs)
  | Heartbeat _ -> c.c_vec
  | Repair_request _ -> c.c_base
  | Repair_log { txs; _ } -> c.c_base + (c.c_replicate_tx * List.length txs)
  | Kv_up _ | Stable_down _ | Knownvec_global _ -> c.c_vec
  | Stablevec _ -> c.c_stablevec
  | Prepare_strong { wbuff; _ } ->
      if List.for_all (fun (_, ws) -> ws = []) wbuff then c.c_cert_ro
      else c.c_cert
  | Already_decided _ -> c.c_base
  | Accept _ -> c.c_accept
  | Accept_ack _ -> c.c_base
  | Unknown_tx _ | Unknown_tx_ack _ -> c.c_base
  | Decision _ -> c.c_base
  | Learn_decision _ -> c.c_base
  | Deliver _ -> c.c_base
  | Push_updates { txs; _ } -> c.c_base + (c.c_deliver_tx * List.length txs)
  | Nack _ | New_leader _ | New_leader_ack _ | New_state _ | New_state_ack _
    ->
      c.c_base
  | Sync_request _ | Sync_pull _ | Sync_tail _ | State_request _ -> c.c_base
  | Sync_store { entries; _ } ->
      c.c_base + (c.c_replicate_tx * List.length entries)
  | Sync_log { txs; _ } -> c.c_base + (c.c_replicate_tx * List.length txs)
  | Fd_ping _ -> c.c_vec

(* Cost profile of the REDBLUE centralized service nodes: certification
   there runs against every concurrent strong transaction in the system,
   not one partition's slice. *)
let cost_centralized (c : Config.costs) = function
  | Prepare_strong _ -> c.c_cert_centralized
  | m -> cost c m

(* Estimated wire size in bytes, for the network meter's traffic
   accounting. Scalars count 8 bytes, vector entries 8 each, list
   elements a fixed per-record weight, plus a 16-byte envelope — the
   sizes a compact binary codec would produce, so Replicate and
   certification payloads dominate exactly as in the real system. *)
let header_bytes = 16

let vc_bytes (v : Vc.t) = 8 * Array.length v
let writes_bytes ws = 8 + (24 * List.length ws)
let opsmap_entry_bytes os = 8 + (16 * List.length os)

let wbuff_bytes (w : Types.wbuff) =
  List.fold_left (fun acc (_, ws) -> acc + 8 + writes_bytes ws) 8 w

let opsmap_bytes (o : Types.opsmap) =
  List.fold_left (fun acc (_, os) -> acc + 8 + opsmap_entry_bytes os) 8 o

let tx_bytes (tx : Types.tx_rec) =
  16 + writes_bytes tx.tx_writes + vc_bytes tx.tx_vec + 16

let prepared_bytes (p : prepared_strong) =
  48 + wbuff_bytes p.ps_wbuff + opsmap_bytes p.ps_ops + vc_bytes p.ps_snap

let decided_bytes (d : decided_strong) =
  40 + wbuff_bytes d.ds_wbuff + opsmap_bytes d.ds_ops + vc_bytes d.ds_vec

let size_bytes = function
  | C_start { past; _ } -> header_bytes + 24 + vc_bytes past
  | C_read _ -> header_bytes + 32
  | C_update _ -> header_bytes + 40
  | C_commit_causal _ | C_commit_strong _ -> header_bytes + 24
  | C_uniform_barrier { past; _ } | C_attach { past; _ }
  | C_failover { past; _ } ->
      header_bytes + 16 + vc_bytes past
  | C_resubmit_strong { wbuff; ops; snap; _ } ->
      header_bytes + 40 + wbuff_bytes wbuff + opsmap_bytes ops + vc_bytes snap
  | R_started { snap; _ } -> header_bytes + 24 + vc_bytes snap
  | R_value _ -> header_bytes + 24
  | R_committed { vec; _ } -> header_bytes + 8 + vc_bytes vec
  | R_strong { vec; _ } -> header_bytes + 24 + vc_bytes vec
  | R_ok _ -> header_bytes + 8
  | R_overloaded _ -> header_bytes + 8
  | Get_version { snap; _ } -> header_bytes + 32 + vc_bytes snap
  | Version _ -> header_bytes + 32
  | Prepare { writes; snap; _ } ->
      header_bytes + 16 + writes_bytes writes + vc_bytes snap
  | Prepare_ack _ -> header_bytes + 24
  | Commit { vec; _ } -> header_bytes + 24 + vc_bytes vec
  | Commit_query _ -> header_bytes + 24
  | Commit_abort _ -> header_bytes + 8
  | Replicate { txs; _ } ->
      List.fold_left (fun acc tx -> acc + tx_bytes tx) (header_bytes + 16) txs
  | Heartbeat _ -> header_bytes + 24
  | Repair_request _ -> header_bytes + 40
  | Repair_log { txs; _ } ->
      List.fold_left (fun acc tx -> acc + tx_bytes tx) (header_bytes + 40) txs
  | Kv_up { vec; _ } | Stablevec { vec; _ } | Knownvec_global { vec; _ } ->
      header_bytes + 8 + vc_bytes vec
  | Stable_down { vec } -> header_bytes + vc_bytes vec
  | Prepare_strong { wbuff; ops; snap; _ } ->
      header_bytes + 40 + wbuff_bytes wbuff + opsmap_bytes ops + vc_bytes snap
  | Already_decided { vec; _ } -> header_bytes + 32 + vc_bytes vec
  | Accept { wbuff; ops; snap; _ } ->
      header_bytes + 56 + wbuff_bytes wbuff + opsmap_bytes ops + vc_bytes snap
  | Accept_ack _ -> header_bytes + 56
  | Unknown_tx _ -> header_bytes + 32
  | Unknown_tx_ack _ -> header_bytes + 32
  | Decision { vec; _ } | Learn_decision { vec; _ } ->
      header_bytes + 32 + vc_bytes vec
  | Deliver _ -> header_bytes + 16
  | Push_updates { txs; _ } ->
      List.fold_left (fun acc tx -> acc + tx_bytes tx) (header_bytes + 16) txs
  | Nack _ | New_leader _ -> header_bytes + 16
  | New_leader_ack { prepared; decided; _ } | New_state { prepared; decided; _ }
    ->
      List.fold_left
        (fun acc p -> acc + prepared_bytes p)
        (List.fold_left
           (fun acc d -> acc + decided_bytes d)
           (header_bytes + 24) decided)
        prepared
  | New_state_ack _ -> header_bytes + 16
  | Sync_request _ -> header_bytes + 16
  | Sync_store { entries; cut; _ } ->
      List.fold_left
        (fun acc (_, _, vec, _) -> acc + 24 + vc_bytes vec)
        (header_bytes + 8 + vc_bytes cut)
        entries
  | Sync_pull { vec; _ } -> header_bytes + 8 + vc_bytes vec
  | Sync_log { txs; _ } ->
      List.fold_left (fun acc tx -> acc + tx_bytes tx) (header_bytes + 24) txs
  | Sync_tail { known; _ } -> header_bytes + 16 + vc_bytes known
  | State_request _ -> header_bytes + 16
  | Fd_ping _ -> header_bytes + 8

let kind = function
  | C_start _ -> "c_start"
  | C_read _ -> "c_read"
  | C_update _ -> "c_update"
  | C_commit_causal _ -> "c_commit_causal"
  | C_commit_strong _ -> "c_commit_strong"
  | C_uniform_barrier _ -> "c_uniform_barrier"
  | C_attach _ -> "c_attach"
  | C_failover _ -> "c_failover"
  | C_resubmit_strong _ -> "c_resubmit_strong"
  | R_started _ -> "r_started"
  | R_value _ -> "r_value"
  | R_committed _ -> "r_committed"
  | R_strong _ -> "r_strong"
  | R_ok _ -> "r_ok"
  | R_overloaded _ -> "r_overloaded"
  | Get_version _ -> "get_version"
  | Version _ -> "version"
  | Prepare _ -> "prepare"
  | Prepare_ack _ -> "prepare_ack"
  | Commit _ -> "commit"
  | Commit_query _ -> "commit_query"
  | Commit_abort _ -> "commit_abort"
  | Replicate _ -> "replicate"
  | Heartbeat _ -> "heartbeat"
  | Repair_request _ -> "repair_request"
  | Repair_log _ -> "repair_log"
  | Kv_up _ -> "kv_up"
  | Stable_down _ -> "stable_down"
  | Stablevec _ -> "stablevec"
  | Knownvec_global _ -> "knownvec_global"
  | Prepare_strong _ -> "prepare_strong"
  | Already_decided _ -> "already_decided"
  | Accept _ -> "accept"
  | Accept_ack _ -> "accept_ack"
  | Unknown_tx _ -> "unknown_tx"
  | Unknown_tx_ack _ -> "unknown_tx_ack"
  | Decision _ -> "decision"
  | Learn_decision _ -> "learn_decision"
  | Deliver _ -> "deliver"
  | Push_updates _ -> "push_updates"
  | Nack _ -> "nack"
  | New_leader _ -> "new_leader"
  | New_leader_ack _ -> "new_leader_ack"
  | New_state _ -> "new_state"
  | New_state_ack _ -> "new_state_ack"
  | Sync_request _ -> "sync_request"
  | Sync_store _ -> "sync_store"
  | Sync_pull _ -> "sync_pull"
  | Sync_log _ -> "sync_log"
  | Sync_tail _ -> "sync_tail"
  | State_request _ -> "state_request"
  | Fd_ping _ -> "fd_ping"
