(** Deployment assembly: build the data store described by a
    {!Config.t} on the simulated network — partition replicas at every
    data center, certification groups, the REDBLUE centralized service
    when configured, periodic protocol tasks, clients, and failure
    injection with the Ω failure detector. *)

type t

(** The coordinator-side certification entry point, re-exported for the
    REDBLUE service plumbing. *)
type certify_fn =
  caller:Msg.cert_caller ->
  tid:Types.tid ->
  origin:int ->
  wbuff:Types.wbuff ->
  ops:Types.opsmap ->
  snap:Vclock.Vc.t ->
  lc:int ->
  k:(Cert.cert_result -> unit) ->
  unit

(** Build a deployment. Nothing runs until {!run}. *)
val create : Config.t -> t

val cfg : t -> Config.t
val engine : t -> Sim.Engine.t
val network : t -> Msg.t Net.Network.t
val history : t -> History.t

(** The deployment's event trace (a disabled no-op trace unless
    [Config.trace_enabled] is set). *)
val trace : t -> Sim.Trace.t

(** The deployment's metrics registry: network traffic by kind and
    link, retransmission-layer counters, strong-transaction phase
    histograms ([strong_phase_us] with phases [execute],
    [uniform_wait], [certify]), transaction latency/outcome metrics,
    the uniformity-lag and pending-certification probes, and the Ω
    detector's transition counters. *)
val metrics : t -> Sim.Metrics.t

(** Current simulated time (microseconds). *)
val now : t -> int

val replica : t -> dc:int -> part:int -> Replica.t
val clients : t -> Client.t list

(** Number of client sessions with a call still outstanding — 0 at
    quiescence. The exploration harness's liveness oracle asserts this
    together with {!pending_strong} and {!dc_syncing}. *)
val clients_in_flight : t -> int

(** Install an initial version of a key at every data center, below
    every possible snapshot (the paper's initial transaction t0). Must
    be called before {!run}. *)
val preload : t -> Store.Keyspace.key -> Crdt.op -> unit

(** Create a client session attached to [dc] (no fiber). *)
val new_client : t -> dc:int -> Client.t

(** Create a client and run [body] in a fiber; the body may block on
    the store's replies. *)
val spawn_client : t -> dc:int -> (Client.t -> unit) -> Client.t

(** Crash a whole data center (§2): its nodes stop sending and
    receiving. The heartbeat-based Ω detector notices the silence
    (within [detection_delay_us] plus a ping period) and notifies each
    surviving DC, which re-elects Paxos leaders and starts forwarding
    the failed DC's transactions. *)
val fail_dc : t -> int -> unit

(** Recover a crashed data center (the tentpole of the recovery PR):
    revive its network nodes with empty in-flight state, restart its Ω
    detector node, zero its rows of the peers' gossip matrices (pinning
    the causal-buffer and decided-log GC floors until fresh vectors
    arrive), and drive every partition replica through the rejoin
    protocol — snapshot from a live sibling, causal-log pull rounds and
    certification-state catch-up — until it serves clients again.
    Idempotent: recovering a DC that has not failed — never crashed, or
    already recovered by an overlapping schedule — is a warned no-op.
    Raises [Invalid_argument] under the REDBLUE centralized service
    (whose recovery is an open ROADMAP item). *)
val recover_dc : t -> int -> unit

(** Whether any replica of [dc] is still catching up after
    {!recover_dc}. Client failover skips syncing DCs. *)
val dc_syncing : t -> int -> bool

(** {2 Node-level failures (persistence mode)}

    The machine-granularity failure domain: one replica process dies
    while its DC stays up. Its simulated disk survives, so the restart
    recovers snapshot + WAL locally and pulls only the suffix missed
    while down — zero WAN snapshot bytes — falling back to the whole-DC
    WAN rejoin only when the disk is unrecoverable. *)

(** Crash one replica process: it stops sending/receiving, its timers
    retire, un-fsynced WAL appends are lost (the in-flight head may
    tear). *)
val fail_node : t -> dc:int -> part:int -> unit

(** Restart a crashed node from its own disk (warned no-op if the node
    is not down). *)
val restart_node : t -> dc:int -> part:int -> unit

val node_down : t -> dc:int -> part:int -> bool

(** Gray-disk fault: multiply the node's fsync latency (and divide its
    write bandwidth) by [factor]; restore with [factor:1]. *)
val set_disk_slow : t -> dc:int -> part:int -> factor:int -> unit

(** The deployment's Ω failure detector. *)
val detector : t -> Detector.t

(** The network fault model, when [Config.link_faults] installed one
    (partitions and degradations are injected through it). *)
val faults : t -> Net.Faults.t option

(** Strong transactions awaiting a certification decision at live-DC
    coordinators (dummy heartbeats excluded); 0 after quiescence means
    no strong transaction is stuck. *)
val pending_strong : t -> int

(** Execute the simulation up to the given simulated time. *)
val run : t -> until:int -> unit

(** Restrict measurement (throughput window, latency samples) to
    [start, stop) of simulated time. *)
val set_window : t -> start:int -> stop:int -> unit

(** After quiescence: check that every correct data center stores the
    same keys with the same values (Eventual Visibility + CRDT
    convergence). Returns human-readable divergence descriptions, empty
    when converged. *)
val check_convergence : t -> string list
