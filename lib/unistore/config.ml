(* Deployment and protocol configuration.

   One configuration drives the whole codebase; the evaluation's systems
   (§8.1, §8.3) are modes of the same protocol, exactly as in the paper's
   single 10.3K-SLOC codebase:

   - [Unistore]       the full protocol (causal + strong, uniformity);
   - [Causal_only]    transactional causal consistency only (CAUSAL);
   - [Strong]         serializability: every transaction is strong and all
                      operations on the same key conflict (STRONG);
   - [Red_blue]       causal + strong with a single centralized replicated
                      certification service and all strong pairs
                      conflicting (REDBLUE);
   - [Cure_ft]        Cure plus transaction forwarding: no uniformity
                      tracking, remote transactions visible at stability
                      (CUREFT);
   - [Uniform_only]   UniStore minus strong transactions (UNIFORM). *)

type mode =
  | Unistore
  | Causal_only
  | Strong
  | Red_blue
  | Cure_ft
  | Uniform_only

let mode_name = function
  | Unistore -> "unistore"
  | Causal_only -> "causal"
  | Strong -> "strong"
  | Red_blue -> "redblue"
  | Cure_ft -> "cureft"
  | Uniform_only -> "uniform"

(* The conflict relation ⋈ on operations (§3), lifted to transactions:
   two strong transactions conflict if they perform conflicting
   operations on the same data item (except [All_strong], which makes
   every pair of strong transactions conflict, as REDBLUE does). *)
type conflict_spec =
  | Serializable  (* same key, at least one side writes *)
  | Write_write  (* same key, both sides write *)
  | All_strong
  | Classes of (int * int) list  (* symmetric conflicting class pairs *)

let ops_conflict spec (o1 : Types.opdesc) (o2 : Types.opdesc) =
  match spec with
  | All_strong -> true
  | Serializable -> o1.key = o2.key && (o1.write || o2.write)
  | Write_write -> o1.key = o2.key && o1.write && o2.write
  | Classes pairs ->
      o1.key = o2.key
      && List.exists
           (fun (a, b) ->
             (a = o1.cls && b = o2.cls) || (a = o2.cls && b = o1.cls))
           pairs

(* Lift to transactions: [ops1] are the operations of the transaction
   under certification, [ops2] those of a previously prepared/decided
   one (both restricted to one partition by the caller). *)
let txs_conflict spec ops1 ops2 =
  match spec with
  | All_strong ->
      (* a transaction with no operations (dummy strong heartbeat)
         conflicts with nothing *)
      ops1 <> [] && ops2 <> []
  | _ ->
      List.exists
        (fun o1 -> List.exists (fun o2 -> ops_conflict spec o1 o2) ops2)
        ops1

(* CPU service costs, microseconds per message, charged to the node that
   processes the message. These model the m4.2xlarge cores of §8: they
   determine where each system saturates, hence the shape of every
   throughput curve. *)
type costs = {
  c_base : int;  (* any message not singled out below *)
  c_get_version : int;  (* snapshot read at a partition *)
  c_prepare : int;  (* 2PC prepare of a causal transaction *)
  c_commit : int;  (* 2PC commit record *)
  c_replicate_tx : int;  (* per transaction in a REPLICATE batch *)
  c_vec : int;  (* metadata broadcast handling *)
  c_stablevec : int;  (* sibling STABLEVEC: uniformVec recomputation *)
  c_cert : int;  (* leader certification check (update transactions) *)
  c_cert_ro : int;  (* certifying a read-only transaction: no write
                       propagation, read-set check only *)
  c_cert_centralized : int;  (* REDBLUE: the single service certifies all *)
  c_accept : int;  (* Paxos accept processing *)
  c_deliver_tx : int;  (* applying one delivered strong transaction *)
  c_client : int;  (* client-side processing of a reply *)
}

(* Calibrated so that relative costs match the paper's measurements: a
   strong transaction costs several times a causal one (Â§8.2 reports a
   ~26% throughput drop at 10% strong transactions), uniformity tracking
   costs a few percent of a replica's CPU (Â§8.3: ~8%), and the REDBLUE
   centralized service saturates well before UniStore's distributed one
   (Â§8.1: 72% throughput difference at saturation). *)
let default_costs =
  {
    c_base = 10;
    c_get_version = 25;
    c_prepare = 20;
    c_commit = 15;
    c_replicate_tx = 12;
    c_vec = 6;
    c_stablevec = 100;
    c_cert = 150;
    c_cert_ro = 50;
    c_cert_centralized = 100;
    c_accept = 30;
    c_deliver_tx = 12;
    c_client = 5;
  }

type t = {
  topo : Net.Topology.t;
  partitions : int;  (* logical partitions, replicated at every DC *)
  f : int;  (* tolerated data-center failures *)
  mode : mode;
  conflict : conflict_spec;
  leader_dc : int;  (* initial Paxos leader DC (Virginia in §8) *)
  propagate_period_us : int;  (* PROPAGATE_LOCAL_TXS period (5 ms in §8) *)
  broadcast_period_us : int;  (* BROADCAST_VECS period (5 ms in §8) *)
  strong_heartbeat_us : int;  (* dummy strong transaction period *)
  clock_skew_us : int;  (* max absolute per-replica clock skew *)
  detection_delay_us : int;  (* Ω suspicion timeout: silence before suspect *)
  fd_period_us : int;  (* Ω heartbeat broadcast / check period *)
  link_faults : Net.Faults.spec option;  (* lossy inter-DC links (nemesis) *)
  metrics_probe_us : int;  (* period of the uniformity-lag / queue probes *)
  gc_grace_us : int;  (* how long a crashed DC holds GC floors (rejoin) *)
  sync_chunk : int;  (* max log entries per rejoin sync message *)
  sync_pull_deadline_us : int;  (* rejoin pull round deadline: a polled
                                   sibling silent for this long is dropped
                                   from the round (partition tolerance) *)
  client_failover_us : int;  (* client request timeout before DC failover;
                                0 disables failover (calls block forever) *)
  admission_max_pending : int;  (* per-DC bound on in-flight strong
                                   certifications before coordinators shed
                                   new COMMIT_STRONG requests (R_overloaded);
                                   0 disables admission control *)
  persistence : bool;  (* per-node WAL + snapshot disks: replicas fsync
                          before acking and survive node-level crashes;
                          off = the memory-only model of PRs 1-5 *)
  disk_fsync_us : int;  (* simulated disk fsync latency per node *)
  disk_mb_per_s : int;  (* simulated disk sequential write bandwidth *)
  snapshot_interval_us : int;  (* period of the snapshot+truncate
                                  compaction bounding WAL replay *)
  costs : costs;
  seed : int;
  use_hlc : bool;  (* hybrid logical clocks instead of physical waits (§9) *)
  trace_enabled : bool;  (* record a structured event trace (Sim.Trace) *)
  trace_capacity : int;  (* span-buffer bound; older spans drop past it *)
  record_history : bool;  (* keep full transaction records (checker) *)
  measure_visibility : bool;  (* record remote-visibility delays (Fig 6) *)
  profile : bool;  (* enable the engine's self-profiler (Sim.Prof) *)
  profile_sample_every : int;  (* wall-clock sampling stride (1 = all) *)
}

let default ?(topo = Net.Topology.three_dcs ()) ?(partitions = 8) ?(f = 1)
    ?(mode = Unistore) ?(conflict = Serializable) ?(leader_dc = 0)
    ?(propagate_period_us = 5_000) ?(broadcast_period_us = 5_000)
    ?(strong_heartbeat_us = 10_000) ?(clock_skew_us = 1_000)
    ?(detection_delay_us = 500_000) ?(fd_period_us = 100_000)
    ?link_faults ?(metrics_probe_us = 10_000) ?(gc_grace_us = 10_000_000)
    ?(sync_chunk = 256) ?(sync_pull_deadline_us = 300_000)
    ?(client_failover_us = 0) ?(admission_max_pending = 0)
    ?(persistence = false) ?disk_fsync_us ?disk_mb_per_s
    ?(snapshot_interval_us = 2_000_000)
    ?(costs = default_costs)
    ?(seed = 42)
    ?(use_hlc = false) ?(trace_enabled = false) ?(trace_capacity = 100_000)
    ?(record_history = false) ?(measure_visibility = false)
    ?(profile = false) ?(profile_sample_every = 64) () =
  let dcs = Net.Topology.dcs topo in
  if 2 * f + 1 > dcs && not (f + 1 <= dcs && f > 0) then
    invalid_arg "Config.default: need at least f+1 data centers";
  if f < 0 || f >= dcs then invalid_arg "Config.default: bad f";
  (* Certification quorums are f+1 members. Two quorums intersect only
     when dcs <= 2f+1; without intersection, a false suspicion can
     install a second leader whose quorum is disjoint from the old one,
     and the two decide independently (split brain). Crash-only runs
     never contest a live leader's ballot, so the tighter bound is
     required only when links can lie. *)
  if link_faults <> None && dcs > (2 * f) + 1 then
    invalid_arg
      "Config.default: with link faults, need dcs <= 2f+1 so that \
       certification quorums intersect under false suspicion";
  if leader_dc < 0 || leader_dc >= dcs then
    invalid_arg "Config.default: bad leader";
  if partitions <= 0 then invalid_arg "Config.default: bad partitions";
  if gc_grace_us < 0 then invalid_arg "Config.default: bad gc_grace_us";
  if sync_chunk <= 0 then invalid_arg "Config.default: bad sync_chunk";
  if sync_pull_deadline_us <= 0 then
    invalid_arg "Config.default: bad sync_pull_deadline_us";
  if client_failover_us < 0 then
    invalid_arg "Config.default: bad client_failover_us";
  if admission_max_pending < 0 then
    invalid_arg "Config.default: bad admission_max_pending";
  (* Disk characteristics default from the topology so one deployment
     description carries both network and storage; per-run overrides
     remain possible for disk-speed sweeps. *)
  let disk_fsync_us =
    match disk_fsync_us with
    | Some v -> v
    | None -> Net.Topology.disk_fsync_us topo
  in
  let disk_mb_per_s =
    match disk_mb_per_s with
    | Some v -> v
    | None -> Net.Topology.disk_mb_per_s topo
  in
  if disk_fsync_us < 0 then invalid_arg "Config.default: bad disk_fsync_us";
  if disk_mb_per_s <= 0 then invalid_arg "Config.default: bad disk_mb_per_s";
  if snapshot_interval_us <= 0 then
    invalid_arg "Config.default: bad snapshot_interval_us";
  if trace_capacity <= 0 then
    invalid_arg "Config.default: bad trace_capacity";
  if profile_sample_every <= 0 then
    invalid_arg "Config.default: bad profile_sample_every";
  {
    topo;
    partitions;
    f;
    mode;
    conflict;
    leader_dc;
    propagate_period_us;
    broadcast_period_us;
    strong_heartbeat_us;
    clock_skew_us;
    detection_delay_us;
    fd_period_us;
    link_faults;
    metrics_probe_us;
    gc_grace_us;
    sync_chunk;
    sync_pull_deadline_us;
    client_failover_us;
    admission_max_pending;
    persistence;
    disk_fsync_us;
    disk_mb_per_s;
    snapshot_interval_us;
    costs;
    seed;
    use_hlc;
    trace_enabled;
    trace_capacity;
    record_history;
    measure_visibility;
    profile;
    profile_sample_every;
  }

let dcs t = Net.Topology.dcs t.topo
let quorum t = t.f + 1

(* Ceiling of the reliable transport's retransmission backoff, derived
   from the deployment: the Ω suspicion timeout (the detector's check
   period times its silence threshold, configured here directly as
   [detection_delay_us]) plus the worst-case link RTT. A healed link's
   backlog then starts flowing again within one suspicion window however
   far the backoff had climbed, so a tightened detector configuration
   (small [detection_delay_us]) tightens the cap with it instead of
   being silently undercut by a hard-coded constant. *)
let rto_cap_us t = t.detection_delay_us + Net.Topology.max_rtt_us t.topo

(* Debounce of the leadership-reclaim bids a rejoined leader-home group
   member issues while trust has converged back to it ([Cert.reclaim]):
   one Ω reaction period for the trust signal to settle plus a
   worst-case RTT for an in-flight election round to finish. Derived so
   the worst-case strong-commit stall after a leader-home rejoin scales
   with the deployment rather than a fixed 1 s. *)
let reclaim_debounce_us t = t.fd_period_us + Net.Topology.max_rtt_us t.topo

(* Backoff a rejoining replica holds against a sync peer it dropped for
   missing a pull-round deadline. A peer that went silent for a whole
   round is either dead or badly degraded: bar it for one full Ω
   suspicion window — so that a genuinely dead peer is confirmed by the
   detector (whose rehabilitation clears the bar early on recovery)
   before we would repoll it — rounded up to whole deadline rounds,
   plus two further rounds of quarantine so a merely-slow peer sits out
   at least that long even under an aggressive detector. At the
   defaults (500 ms detection, 300 ms deadline) this is
   ceil(500/300) + 2 = 4 rounds = 1.2 s — exactly the hand-tuned 4x
   multiplier of PR 4, now scaling with the detector and the deadline
   instead of being a magic constant. *)
let sync_drop_backoff_us t =
  let d = t.sync_pull_deadline_us in
  let detect_rounds = (t.detection_delay_us + d - 1) / d in
  (detect_rounds + 2) * d

(* Base of the randomized backoff a client sleeps after an R_overloaded
   shed before resubmitting. The shed means the DC's
   pending-certification queue is at its admission bound; the queue
   drains at broadcast granularity (decisions and DELIVER advance with
   the metadata exchange), so wait two broadcast periods for meaningful
   drain before retrying. The client adds uniform jitter of the same
   magnitude to desynchronize retry storms, giving the 10-20 ms window
   of PR 5 at the default 5 ms broadcast period. *)
let overload_backoff_us t = 2 * t.broadcast_period_us

(* Deadline of one origin-scoped repair pull round (gap repair after a
   detected replication-continuity break) before rotating to another
   source. The repair target faces exactly the adversity a rejoin pull
   peer does — lossy links, partitions, suspicion — so the repair
   machinery reuses the rejoin round deadline rather than introducing a
   second knob to tune. *)
let repair_deadline_us t = t.sync_pull_deadline_us

(* Does this mode track uniformity (exchange STABLEVEC between siblings
   and expose remote transactions only when uniform)? *)
let tracks_uniformity t =
  match t.mode with
  | Unistore | Causal_only | Strong | Red_blue | Uniform_only -> true
  | Cure_ft -> false

(* Does this mode run the strong-transaction machinery at all? *)
let has_strong t =
  match t.mode with
  | Unistore | Strong | Red_blue -> true
  | Causal_only | Cure_ft | Uniform_only -> false

(* Centralized certification (REDBLUE): one logical service for all
   partitions instead of per-partition groups. *)
let centralized_cert t = t.mode = Red_blue

(* Under STRONG every transaction is strong; under pure-causal modes none
   is. [requested] is what the workload asked for. *)
let effective_strong t ~requested =
  match t.mode with
  | Strong -> true
  | Causal_only | Cure_ft | Uniform_only -> false
  | Unistore | Red_blue -> requested
