(* Partition replica p_d^m: the heart of UniStore.

   This module implements:
   - transaction coordination and the causal commit path (Algorithms
     A1–A3): snapshot computation, version reads, the intra-DC 2PC for
     causal transactions;
   - replication, heartbeats and transaction forwarding (Algorithm A4);
   - the metadata protocol computing stableVec and uniformVec
     (Algorithm A5), with the in-DC dissemination tree the paper
     mentions in §5.4;
   - uniform barriers and client attachment (§5.6);
   - the coordinator side of strong-transaction certification
     (Algorithms A6–A7); the group-member side lives in [Cert].

   Handlers execute atomically at a simulated timestamp, as the paper
   assumes. The pseudocode's "wait until" statements become either
   clock-waits (scheduled at the exact future instant) or state-waits
   (predicates re-checked whenever replica state changes). *)

module Vc = Vclock.Vc
module Network = Net.Network
module Engine = Sim.Engine

let src = Logs.Src.create "unistore.replica"

module Log = (val Logs.src_log src : Logs.LOG)

(* Causal transaction prepared at this replica (preparedCausal). *)
type prepared_causal = {
  pc_tid : Types.tid;
  pc_writes : Types.write list;
  pc_ts : int;
  pc_from : Msg.addr;  (* coordinator, queried if the 2PC is orphaned *)
  pc_at : int;  (* when prepared; drives the orphan-query timer *)
}

(* State of a transaction this replica coordinates. *)
type coord_tx = {
  ct_tid : Types.tid;
  ct_client : Msg.addr;
  ct_client_id : int;
  ct_snap : Vc.t;
  ct_wbuff : (int, Types.write list ref) Hashtbl.t;  (* partition -> writes *)
  mutable ct_ops : Types.opdesc list;  (* read set incl. written keys *)
  mutable ct_read : (int * Store.Keyspace.key) option;  (* outstanding read: req, key *)
  mutable ct_pending : int;  (* outstanding PREPARE_ACKs *)
  mutable ct_acked : int list;  (* partitions whose ack arrived (dedup) *)
  mutable ct_max_ts : int;
  mutable ct_commit_req : int;
  mutable ct_lc : int;
  mutable ct_started : int;  (* when the 2PC began (PREPARE retry timer) *)
  mutable ct_deciding : bool;  (* decision logged, COMMITs not yet sent *)
}

(* ------------------------------------------------------------------ *)
(* Node-level persistence (Config.persistence): what the replica's
   write-ahead log records, and what its periodic snapshots capture.

   Externally visible promises gate on the fsync of their record
   (memory state runs ahead of the disk; a crash rebuilds it by
   replay): a PREPARE_ACK on [W_prepare], the coordinator's COMMITs and
   client reply on [W_decide], certification acks on [W_cert] (the Raft
   persistent-state contract — see [Cert.event]). Applied state is
   logged asynchronously ([W_commit]/[W_replicate]/[W_strong]): losing
   the un-fsynced suffix of those only loses state some peer still
   holds, which the post-restart catch-up pull re-fetches. *)
type wal_record =
  | W_genesis
      (* first record of a from-empty log: its presence proves the WAL
         covers the node's whole history. A log without it (and without
         a snapshot) started mid-life — after a scrub or during a WAN
         rejoin whose re-seeding snapshot never installed — and cannot
         rebuild the state alone; restart falls back to the WAN rejoin. *)
  | W_prepare of prepared_causal
  | W_commit of Types.tx_rec  (* own-origin causal commit applied *)
  | W_replicate of int * Types.tx_rec list * int
      (* origin, applied remote txs, stream-continuity [from_ts] of the
         batch (wire metadata; replay re-checks continuity with it) *)
  | W_strong of Types.tx_rec list * int  (* delivered strong batch, ts *)
  | W_decide of Types.tid * Vclock.Vc.t * int * int
      (* commit decision of a 2PC this replica coordinates: vec, lc,
         origin. Aborts are never logged (presumed abort). *)
  | W_cert of Cert.event

(* A snapshot bounds replay: everything the WAL records, materialized.
   Vectors other than knownVec are gossip-rebuilt; coordinator [txns]
   state is volatile (clients re-drive via failover, participants via
   COMMIT_QUERY against the durable decisions). *)
type node_snapshot = {
  ns_oplog : (Store.Keyspace.key * Store.Oplog.entry list) list;
  ns_known : Vclock.Vc.t;
  ns_prepared : prepared_causal list;
  ns_committed : Types.tx_rec list array;  (* per origin, newest first *)
  ns_propagated : Types.tx_rec list;
  ns_last_prep : int;
  ns_frontier_tids : Types.tid list array;
  ns_frontier_ts : int array;
  ns_decisions : (Types.tid * (Vclock.Vc.t * int * int)) list;
  ns_provisional : int array;
      (* per-origin provisional-adoption floor (see [t.provisional_from]):
         frontier entries above it rest on third-party claims and must be
         re-verified (repaired) after a restart, not trusted *)
  ns_cert : (int * int * Msg.prepared_strong list) option;
      (* ballot, cballot, accepted log — [Cert.persistent_state] *)
}

(* On-disk record sizes (the disk's bandwidth charge), with the same
   per-element weights as the wire estimator in [Msg]. *)
let wal_record_bytes = function
  | W_genesis -> 8
  | W_prepare p -> 24 + Msg.writes_bytes p.pc_writes
  | W_commit tx -> 8 + Msg.tx_bytes tx
  | W_replicate (_, txs, _) ->
      List.fold_left (fun acc tx -> acc + Msg.tx_bytes tx) 24 txs
  | W_strong (txs, _) ->
      List.fold_left (fun acc tx -> acc + Msg.tx_bytes tx) 16 txs
  | W_decide (_, vec, _, _) -> 32 + Msg.vc_bytes vec
  | W_cert (Cert.E_ballot _) -> 24
  | W_cert (Cert.E_accept p) -> 8 + Msg.prepared_bytes p

let node_snapshot_bytes ns =
  let txs_bytes l = List.fold_left (fun acc tx -> acc + Msg.tx_bytes tx) 8 l in
  List.fold_left
    (fun acc (_, es) ->
      List.fold_left
        (fun acc (e : Store.Oplog.entry) -> acc + 24 + Msg.vc_bytes e.vec)
        (acc + 8) es)
    8 ns.ns_oplog
  + Msg.vc_bytes ns.ns_known
  + List.fold_left
      (fun acc p -> acc + 32 + Msg.writes_bytes p.pc_writes)
      8 ns.ns_prepared
  + Array.fold_left (fun acc l -> acc + txs_bytes l) 8 ns.ns_committed
  + txs_bytes ns.ns_propagated
  + Array.fold_left
      (fun acc l -> acc + 8 + (16 * List.length l))
      8 ns.ns_frontier_tids
  + (8 * Array.length ns.ns_frontier_ts)
  + 8
  + List.fold_left
      (fun acc (_, (vec, _, _)) -> acc + 32 + Msg.vc_bytes vec)
      8 ns.ns_decisions
  + (8 * Array.length ns.ns_provisional)
  + (match ns.ns_cert with
    | None -> 8
    | Some (_, _, ps) ->
        List.fold_left (fun acc p -> acc + Msg.prepared_bytes p) 24 ps)

(* Per-group progress of an outstanding certification request. *)
type cert_group = {
  mutable g_acks : int list;  (* member DCs that sent ACCEPT_ACK *)
  mutable g_unknown : int list;  (* member DCs that sent UNKNOWN_TX_ACK *)
  mutable g_ballot : int;
  mutable g_vote : bool;
  mutable g_ts : int;
  mutable g_lc : int;
  mutable g_done : bool;
}

type pending_cert = {
  p_rid : int;
  p_caller : Msg.cert_caller;
  p_tid : Types.tid;
  p_origin : int;
  p_wbuff : Types.wbuff;
  p_ops : Types.opsmap;
  p_snap : Vc.t;
  p_lc : int;
  p_groups : (int * cert_group) list;
  p_k : Cert.cert_result -> unit;
  p_submitted : int;  (* when CERTIFY registered it (queue-delay metric) *)
  mutable p_done : bool;
}

type waiter = { w_pred : unit -> bool; w_action : unit -> unit }

(* Per-origin repair pull (gap repair of the causal replication stream).
   A detected continuity break records the claimed frontier in [r_upto]
   and drives rounds of [Repair_request]s — origin first, then rotating
   over live siblings — each armed with a deadline reusing the rejoin
   pull-round machinery ([Config.repair_deadline_us]). [r_sq] tags the
   current round so replies from an abandoned target are discarded;
   [r_stalled] counts consecutive fruitless rounds, after which the
   repair parks ([r_active = false], [r_upto] retained) until the next
   gap detection re-arms it — an origin that crashed for good cannot be
   repaired past what its survivors hold, and parking keeps the system
   quiescent instead of polling a void. *)
type repair_state = {
  mutable r_active : bool;
  mutable r_sq : int;  (* round tag echoed by [Repair_log] *)
  mutable r_upto : int;  (* highest claimed frontier seen for the origin *)
  mutable r_attempt : int;  (* rotates the source across rounds *)
  mutable r_stalled : int;  (* consecutive rounds without progress *)
  mutable r_mark : int;  (* our frontier when the current round started *)
}

(* DC rejoin state machine. A replica of a freshly recovered data center
   rebuilds from a live sibling of its partition: first a snapshot of the
   materialized store below the peer's knownVec (the cut), then rounds of
   causal-log catch-up pulls, until its own knownVec covers every live
   sibling's and its certification member has re-entered the group. Only
   then does it resume its periodic tasks and serve clients. *)
type sync_phase = Sync_snapshot | Sync_pull

type sync_state = {
  mutable s_phase : sync_phase;
  mutable s_sq : int;  (* attempt / round tag echoed by sync replies *)
  mutable s_peer : int;  (* DC currently serving the snapshot *)
  mutable s_progress : bool;  (* snapshot chunk seen since last tick *)
  mutable s_tails : (int * Vclock.Vc.t) list;  (* round: dc -> its knownVec *)
  mutable s_polled : int list;  (* DCs polled in the current round *)
  mutable s_weak : int list;  (* polled DCs that answered "also syncing" *)
  (* Peers dropped from the sync for missing a deadline (pull-round
     silence, snapshot refusal): dc -> the time from which they may be
     polled again. A partitioned or gray-degraded sibling lands here so
     the round can restart without it instead of stalling; Ω
     rehabilitation or an answered poll removes the entry early. *)
  mutable s_dropped : (int * int) list;
  mutable s_round_started : int;  (* when the current pull round began *)
  (* knownVec snapshot taken when the current pull round was issued: the
     continuity boundary of the round's [Sync_log]/[Sync_tail] answers
     (a peer ships everything it holds above this vector). *)
  mutable s_round_vec : Vclock.Vc.t;
  (* Late-bound reactions into the running round (set by [begin_rejoin];
     they close over functions defined below the handlers that fire
     them): the Ω suspicion feed, and "finish the sync if complete,
     otherwise restart the round". *)
  mutable s_on_suspect : int -> unit;
  mutable s_try_complete : unit -> unit;
  (* The direct replication stream ([Replicate]/[Heartbeat]) deferred
     while syncing, newest first. It cannot simply be dropped: each
     transaction is propagated exactly once and the receiving frontier
     advances by jumps, so a lost batch would be a permanent gap. It is
     replayed in arrival (FIFO) order once the catch-up completes. *)
  mutable s_deferred : Msg.t list;
  s_started : int;
  s_done : unit -> unit;  (* System's completion callback *)
}

(* Addresses the replica needs but cannot know at construction time;
   provided by [System] before the simulation starts. *)
type env = {
  e_lookup : int -> int -> Msg.addr;  (* dc, partition -> replica *)
  e_rb_cert : (int -> Msg.addr) option;  (* dc -> REDBLUE service node *)
  (* DC-wide in-flight strong certifications (the level behind the
     pending_certifications gauge); drives admission control *)
  e_dc_pending : (int -> int) option;
}

type t = {
  cfg : Config.t;
  eng : Engine.t;
  net : Msg.t Network.t;
  dc : int;
  part : int;
  uid : int;  (* globally unique replica number *)
  skew : int;  (* clock skew, microseconds *)
  mutable hlc : int;  (* hybrid logical clock (when Config.use_hlc) *)
  mutable addr : Msg.addr;
  mutable env : env;
  history : History.t;
  trace : Sim.Trace.t;
  trace_src : string;
  (* cached metrics handles: strong-transaction phase breakdown and
     remote-visibility delay (interned in the system-wide registry) *)
  metrics : Sim.Metrics.t;
  h_phase_uniform : Sim.Metrics.histogram;
  h_phase_certify : Sim.Metrics.histogram;
  h_visibility : Sim.Metrics.histogram;
  c_strong_commit : Sim.Metrics.counter;
  c_strong_abort : Sim.Metrics.counter;
  oplog : Store.Oplog.t;
  (* --- §5.1 metadata ------------------------------------------------ *)
  known_vec : Vc.t;
  (* Durable subset of [known_vec]: advanced only when the WAL record
     carrying the corresponding entries has fsynced. The GC-driving
     cross-DC gossip sends this vector in persistence mode — peers must
     never prune log entries this node could still lose in a crash
     (memory runs ahead of disk; promises to others must not). *)
  durable_known : Vc.t;
  stable_vec : Vc.t;
  uniform_vec : Vc.t;
  local_agg : Vc.t array;  (* dissemination tree: child partition aggregates *)
  stable_matrix : Vc.t array;  (* per DC *)
  global_matrix : Vc.t array;  (* per DC *)
  (* --- causal transactions ------------------------------------------ *)
  mutable prepared_causal : prepared_causal list;
  committed_causal : Types.tx_rec list ref array;  (* per origin DC, newest first *)
  (* Own transactions already shipped by [propagate_local_txs], newest
     first, retained under the same GC floors as the remote queues. A
     DC is the only holder of its own history above its peers' view of
     it, so rejoiners pull this log; without it a recovered DC could
     never cover a live origin's frontier (the pending queue drops
     transactions as soon as they are propagated). *)
  propagated_log : Types.tx_rec list ref;
  mutable last_prep_ts : int;
  (* Stream position of our own replication stream as receivers see it:
     the continuity boundary ([from_ts]) of the next outgoing batch. A
     [Replicate] batch advances a receiver to its last transaction's
     timestamp — not to our (clock-driven) frontier — and a heartbeat
     advances it to the claimed frontier, so this trails [known_vec]'s
     own entry accordingly. Always a timestamp we have shipped
     everything up to (never understated: a too-low value would let a
     receiver jump a window the batch does not cover). *)
  mutable propagated_upto : int;
  (* --- coordination -------------------------------------------------- *)
  txns : (Types.tid, coord_tx) Hashtbl.t;
  (* "wait until" queues, keyed by the threshold waited for, flushed when
     the corresponding vector entry advances; a generic list remains for
     the rare multi-entry waits (attach) *)
  wait_known_local : (unit -> unit) Sim.Heap.t;
  wait_known_strong : (unit -> unit) Sim.Heap.t;
  wait_uniform_local : (unit -> unit) Sim.Heap.t;
  mutable wait_seq : int;
  mutable waiters : waiter list;
  mutable checking : bool;
  (* --- strong transactions ------------------------------------------- *)
  mutable cert : Cert.t option;  (* per-partition group member (not REDBLUE) *)
  trusted_view : int array;  (* group -> trusted leader DC (Ω view) *)
  pending_cert : (int, pending_cert) Hashtbl.t;
  mutable rid_ctr : int;
  mutable hb_ctr : int;
  (* --- failure handling ---------------------------------------------- *)
  mutable suspected : int list;  (* DCs believed to have failed *)
  mutable sync : sync_state option;  (* Some while rejoining after a crash *)
  mutable timer_gen : int;  (* invalidates periodic tasks across a rejoin *)
  (* Replication-frontier dedup: transactions of different partitions can
     share a local timestamp (commit vectors take maxima over
     per-partition prepare times), so the frontier timestamp alone cannot
     distinguish "already applied" from "new"; we remember the tids
     applied at the current frontier timestamp. *)
  frontier_tids : Types.tid list array;  (* per origin DC *)
  frontier_ts : int array;
  (* Stream-continuity state (gap-detecting replication). For origin [o],
     [provisional_from.(o) = f >= 0] means the frontier window (f,
     knownVec[o]] rests on third-party claims adopted by [finish_sync]
     (tail maxima for origins that could not answer the pulls) and has
     not been verified first-hand: the replica never vouches for it to
     others ([vouched]) and the first continuity check against [o]'s
     stream repairs it instead of trusting it. -1 = fully verified. *)
  provisional_from : int array;
  repair : repair_state array;  (* per origin *)
  mutable repair_ctr : int;  (* replica-level monotone round tag source *)
  (* --- Fig. 6 measurement --------------------------------------------- *)
  pending_vis : (int * int) list ref array;  (* per origin: (local ts, arrival) *)
  (* --- node-level persistence ----------------------------------------- *)
  mutable disk : (wal_record, node_snapshot) Store.Wal.t option;
  (* committed decisions of 2PCs this replica coordinated, durable via
     [W_decide] and retained for presumed-abort resolution of orphaned
     prepares: tid -> (decided-at, vec, lc, origin); pruned by
     [resolve_orphans] once participants had ample time to query *)
  coord_decisions : (Types.tid, int * Vc.t * int * int) Hashtbl.t;
  mutable replaying : bool;  (* WAL replay in progress: do not re-log *)
}

let dcs t = Config.dcs t.cfg
let partitions t = t.cfg.Config.partitions

(* The REDBLUE pseudo-group sits after all real partitions. *)
let rb_group t = partitions t

(* Dead if the whole DC crashed or this one node did: either way the
   process is gone, so deferred continuations and timers must not run. *)
let alive t =
  (not (Network.dc_failed t.net t.dc))
  && (t.addr < 0 || not (Network.node_down t.net t.addr))

(* Local clock: physical (NTP-style, skewed) or hybrid — the hybrid
   clock is the physical clock merged with every timestamp the replica
   has had to respect, so "wait until clock >= ts" becomes a merge
   instead of a physical wait (Kulkarni et al. [35], suggested for
   UniStore in §9). *)
let clock t =
  let physical = Engine.now t.eng + t.skew in
  if t.cfg.Config.use_hlc then max physical t.hlc else physical

let observe_clock t ts =
  if t.cfg.Config.use_hlc && ts > t.hlc then t.hlc <- ts

let now t = Engine.now t.eng

let create cfg eng net ~dc ~part ~uid ~skew ~history ~trace ~metrics =
  let d = Config.dcs cfg in
  {
    cfg;
    eng;
    net;
    dc;
    part;
    uid;
    skew;
    hlc = 0;
    addr = -1;
    env = { e_lookup = (fun _ _ -> -1); e_rb_cert = None; e_dc_pending = None };
    history;
    trace;
    trace_src = Fmt.str "replica %d.%d" dc part;
    metrics;
    h_phase_uniform =
      Sim.Metrics.histogram metrics
        ~labels:[ ("phase", "uniform_wait") ]
        "strong_phase_us";
    h_phase_certify =
      Sim.Metrics.histogram metrics
        ~labels:[ ("phase", "certify") ]
        "strong_phase_us";
    h_visibility = Sim.Metrics.histogram metrics "visibility_delay_us";
    c_strong_commit = Sim.Metrics.counter metrics "strong_committed_total";
    c_strong_abort = Sim.Metrics.counter metrics "strong_aborted_total";
    oplog = Store.Oplog.create ();
    known_vec = Vc.create ~dcs:d;
    durable_known = Vc.create ~dcs:d;
    stable_vec = Vc.create ~dcs:d;
    uniform_vec = Vc.create ~dcs:d;
    local_agg = Array.init cfg.Config.partitions (fun _ -> Vc.create ~dcs:d);
    stable_matrix = Array.init d (fun _ -> Vc.create ~dcs:d);
    global_matrix = Array.init d (fun _ -> Vc.create ~dcs:d);
    prepared_causal = [];
    committed_causal = Array.init d (fun _ -> ref []);
    propagated_log = ref [];
    last_prep_ts = 0;
    propagated_upto = 0;
    txns = Hashtbl.create 64;
    wait_known_local = Sim.Heap.create (fun () -> ());
    wait_known_strong = Sim.Heap.create (fun () -> ());
    wait_uniform_local = Sim.Heap.create (fun () -> ());
    wait_seq = 0;
    waiters = [];
    checking = false;
    cert = None;
    trusted_view = Array.make (cfg.Config.partitions + 1) cfg.Config.leader_dc;
    pending_cert = Hashtbl.create 16;
    rid_ctr = 0;
    hb_ctr = 0;
    suspected = [];
    sync = None;
    timer_gen = 0;
    frontier_tids = Array.make d [];
    frontier_ts = Array.make d (-1);
    provisional_from = Array.make d (-1);
    repair =
      Array.init d (fun _ ->
          {
            r_active = false;
            r_sq = 0;
            r_upto = 0;
            r_attempt = 0;
            r_stalled = 0;
            r_mark = 0;
          });
    repair_ctr = 0;
    pending_vis = Array.init d (fun _ -> ref []);
    disk = None;
    coord_decisions = Hashtbl.create 16;
    replaying = false;
  }

let dc_of t = t.dc
let part_of t = t.part
let set_addr t addr = t.addr <- addr
let set_env t env = t.env <- env
let addr t = t.addr
let oplog t = t.oplog
let known_vec t = t.known_vec

(* Coordinator-side strong certifications still awaiting a decision,
   dummy strong heartbeats (origin = -1) excluded. *)
let pending_strong t =
  Hashtbl.fold
    (fun _ pc acc -> if pc.p_done || pc.p_origin = -1 then acc else acc + 1)
    t.pending_cert 0
let stable_vec t = t.stable_vec
let stable_matrix_dbg t = t.stable_matrix
let uniform_vec t = t.uniform_vec

let send t dst msg =
  if dst = t.addr then Network.send_self t.net ~node:dst msg
  else Network.send t.net ~src:t.addr ~dst msg

let sibling t dc = t.env.e_lookup dc t.part
let local_replica t part = t.env.e_lookup t.dc part

(* --- durable-append helpers (no-ops without a disk) ------------------- *)

let persistent t = t.disk <> None

(* Append [r] and run [k] once it is fsynced; inline in memory-only
   mode. Replay never re-logs what it is replaying. *)
let log_durably t r k =
  match t.disk with
  | Some w when not t.replaying -> ignore (Store.Wal.append w ~k r)
  | _ -> k ()

(* Applied-state records (replication, deliveries, local commits) need
   no ack gate, but they do carry [known_vec] advances: capture the
   vector at append time and fold it into [durable_known] at fsync, so
   the GC gossip only ever vouches for recoverable state. *)
let log_async t r =
  match t.disk with
  | Some w when not t.replaying ->
      let at_append = Vc.copy t.known_vec in
      ignore
        (Store.Wal.append w
           ~k:(fun () -> Vc.merge_into t.durable_known at_append)
           r)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Waits. Threshold waits go into per-vector heaps popped when the
   vector advances; predicate waits (attach) stay in a small list.       *)

let check_waiters t =
  if not t.checking then begin
    t.checking <- true;
    let progressed = ref true in
    while !progressed do
      let ready, rest = List.partition (fun w -> w.w_pred ()) t.waiters in
      t.waiters <- rest;
      progressed := ready <> [];
      List.iter (fun w -> w.w_action ()) ready
    done;
    t.checking <- false
  end

let wait_until t pred action =
  if pred () then action ()
  else t.waiters <- { w_pred = pred; w_action = action } :: t.waiters

let push_wait t heap ~threshold k =
  t.wait_seq <- t.wait_seq + 1;
  Sim.Heap.push heap ~time:threshold ~seq:t.wait_seq k

let rec flush_wait heap ~frontier =
  match Sim.Heap.peek heap with
  | Some e when e.Sim.Heap.time <= frontier ->
      ignore (Sim.Heap.pop heap);
      e.Sim.Heap.value ();
      flush_wait heap ~frontier
  | _ -> ()

(* Run [k] once knownVec[d] >= local and knownVec[strong] >= strong
   (Algorithm A3 line 4). *)
let wait_known t ~local ~strong k =
  let rec stage_strong () =
    if Vc.strong t.known_vec >= strong then k ()
    else push_wait t t.wait_known_strong ~threshold:strong stage_strong
  in
  if Vc.get t.known_vec t.dc >= local then stage_strong ()
  else push_wait t t.wait_known_local ~threshold:local stage_strong

(* Run [k] once uniformVec[d] >= threshold (uniform barrier). *)
let wait_uniform_local t ~threshold k =
  if Vc.get t.uniform_vec t.dc >= threshold then k ()
  else push_wait t t.wait_uniform_local ~threshold k

let flush_known_local t =
  flush_wait t.wait_known_local ~frontier:(Vc.get t.known_vec t.dc)

let flush_known_strong t =
  flush_wait t.wait_known_strong ~frontier:(Vc.strong t.known_vec)

let flush_uniform_local t =
  flush_wait t.wait_uniform_local ~frontier:(Vc.get t.uniform_vec t.dc);
  check_waiters t

(* Run [k] once the local clock reaches [ts]: a physical wait with real
   clocks, an instantaneous merge with hybrid clocks. *)
let at_clock t ts k =
  if t.cfg.Config.use_hlc then begin
    observe_clock t ts;
    k ()
  end
  else if clock t >= ts then k ()
  else
    Engine.schedule_at t.eng ~time:(ts - t.skew) (fun () ->
        if alive t then k ())

(* ------------------------------------------------------------------ *)
(* uniformVec / stableVec bookkeeping.                                  *)

(* Visibility of a remote transaction for clients of this DC depends on
   the mode: uniformity (UniStore) or stability (Cure). *)
let remote_snapshot_vec t =
  if Config.tracks_uniformity t.cfg then t.uniform_vec else t.stable_vec

(* Record Fig. 6 samples: remote transactions become visible when the
   mode's snapshot vector covers them. *)
let flush_visibility t =
  if t.cfg.Config.measure_visibility && t.part = 0 then begin
    let vis = remote_snapshot_vec t in
    for origin = 0 to dcs t - 1 do
      if origin <> t.dc then begin
        let pending = t.pending_vis.(origin) in
        let visible, waiting =
          List.partition (fun (ts, _) -> ts <= Vc.get vis origin) !pending
        in
        pending := waiting;
        List.iter
          (fun (_, arrival) ->
            let delay_us = now t - arrival in
            Sim.Metrics.observe t.h_visibility delay_us;
            History.visibility_delay t.history ~observer:t.dc ~origin
              ~delay_us)
          visible
      end
    done
  end

(* uniformVec[j] := max over groups of f+1 DCs containing d of the
   minimum stableVec[j] within the group (Algorithm A5 lines 10–15).
   The best group keeps d and the f other DCs with the largest values. *)
let recompute_uniform t =
  let d = dcs t and f = t.cfg.Config.f in
  for j = 0 to d - 1 do
    let own = Vc.get t.stable_matrix.(t.dc) j in
    let cand =
      if f = 0 then own
      else begin
        let others = ref [] in
        for h = 0 to d - 1 do
          if h <> t.dc then others := Vc.get t.stable_matrix.(h) j :: !others
        done;
        let sorted = List.sort (fun a b -> compare b a) !others in
        let fth = List.nth sorted (f - 1) in
        min own fth
      end
    in
    Vc.bump t.uniform_vec j cand
  done;
  flush_visibility t

let bump_uniform_remote t vec =
  for i = 0 to dcs t - 1 do
    if i <> t.dc then Vc.bump t.uniform_vec i (Vc.get vec i)
  done;
  flush_visibility t;
  check_waiters t

(* In Cure mode client pasts reference stable rather than uniform remote
   transactions; the analogous bump keeps snapshots monotone. *)
let bump_snapshot_source t vec =
  if Config.tracks_uniformity t.cfg then bump_uniform_remote t vec
  else begin
    for i = 0 to dcs t - 1 do
      if i <> t.dc then Vc.bump t.stable_vec i (Vc.get vec i)
    done;
    flush_visibility t
  end

(* ------------------------------------------------------------------ *)
(* Transaction coordination (Algorithm A2).                             *)

(* START_TX (Algorithm A2 lines 1–8). The client allocates the tid. *)
let start_tx t ~client ~client_id ~req ~tid ~past =
  bump_snapshot_source t past;
  let base = remote_snapshot_vec t in
  let snap = Vc.copy base in
  Vc.set snap t.dc (max (Vc.get past t.dc) (Vc.get base t.dc));
  Vc.set_strong snap (max (Vc.strong past) (Vc.strong t.stable_vec));
  let ct =
    {
      ct_tid = tid;
      ct_client = client;
      ct_client_id = client_id;
      ct_snap = snap;
      ct_wbuff = Hashtbl.create 4;
      ct_ops = [];
      ct_read = None;
      ct_pending = 0;
      ct_acked = [];
      ct_max_ts = 0;
      ct_commit_req = -1;
      ct_lc = 0;
      ct_started = 0;
      ct_deciding = false;
    }
  in
  Hashtbl.replace t.txns tid ct;
  send t client (Msg.R_started { req; tid; snap })

let own_writes ct key =
  Hashtbl.fold
    (fun _ ws acc ->
      List.fold_left
        (fun acc w -> if w.Types.wkey = key then w :: acc else acc)
        acc (List.rev !ws))
    ct.ct_wbuff []
  |> List.rev

let handle_read t ~client ~req ~tid ~key ~cls =
  match Hashtbl.find_opt t.txns tid with
  | None -> send t client (Msg.R_value { req; value = Crdt.V_none; lc = None })
  | Some ct ->
      ct.ct_ops <- { Types.key; cls; write = false } :: ct.ct_ops;
      ct.ct_read <- Some (req, key);
      let l = Store.Keyspace.partition ~partitions:(partitions t) key in
      send t (local_replica t l)
        (Msg.Get_version { from = t.addr; tid; key; snap = ct.ct_snap })

let handle_version t ~tid ~key ~value ~lc =
  match Hashtbl.find_opt t.txns tid with
  | None -> ()
  | Some ct -> (
      match ct.ct_read with
      | Some (req, k) when k = key ->
          ct.ct_read <- None;
          (* overlay the transaction's own writes (read your writes) *)
          let value =
            List.fold_left
              (fun v w -> Crdt.apply_to_value v w.Types.wop)
              value (own_writes ct key)
          in
          send t ct.ct_client (Msg.R_value { req; value; lc })
      | _ -> ())

let handle_update t ~client ~req ~tid ~key ~op ~cls =
  match Hashtbl.find_opt t.txns tid with
  | None -> send t client (Msg.R_ok { req })
  | Some ct ->
      let l = Store.Keyspace.partition ~partitions:(partitions t) key in
      let ws =
        match Hashtbl.find_opt ct.ct_wbuff l with
        | Some ws -> ws
        | None ->
            let ws = ref [] in
            Hashtbl.replace ct.ct_wbuff l ws;
            ws
      in
      ws := { Types.wkey = key; wop = op; wcls = cls } :: !ws;
      ct.ct_ops <- { Types.key; cls; write = true } :: ct.ct_ops;
      send t client (Msg.R_ok { req })

(* COMMIT_CAUSAL (Algorithm A2 lines 21–31). *)
let handle_commit_causal t ~client ~req ~tid ~lc =
  match Hashtbl.find_opt t.txns tid with
  | None -> ()
  | Some ct ->
      let parts = Hashtbl.fold (fun l _ acc -> l :: acc) ct.ct_wbuff [] in
      if parts = [] then begin
        Hashtbl.remove t.txns tid;
        send t client (Msg.R_committed { req; vec = ct.ct_snap })
      end
      else begin
        ct.ct_pending <- List.length parts;
        ct.ct_commit_req <- req;
        ct.ct_lc <- lc;
        ct.ct_started <- now t;
        List.iter
          (fun l ->
            let writes = List.rev !(Hashtbl.find ct.ct_wbuff l) in
            send t (local_replica t l)
              (Msg.Prepare { from = t.addr; tid; writes; snap = ct.ct_snap }))
          parts
      end

let handle_prepare_ack t ~tid ~part ~ts =
  match Hashtbl.find_opt t.txns tid with
  | None -> ()
  | Some ct when ct.ct_deciding || List.mem part ct.ct_acked ->
      ()  (* duplicate ack (PREPARE retried after a participant restart) *)
  | Some ct ->
      ct.ct_acked <- part :: ct.ct_acked;
      ct.ct_max_ts <- max ct.ct_max_ts ts;
      ct.ct_pending <- ct.ct_pending - 1;
      if ct.ct_pending = 0 then begin
        ct.ct_deciding <- true;
        let vec = Vc.copy ct.ct_snap in
        Vc.set vec t.dc (max (Vc.get vec t.dc) ct.ct_max_ts);
        let parts = Hashtbl.fold (fun l _ acc -> l :: acc) ct.ct_wbuff [] in
        (* Persistence: the commit decision must be on disk before any
           COMMIT leaves — otherwise a coordinator crash between the
           sends would presume abort for a transaction some participant
           already applied. While the fsync is in flight the entry stays
           in [txns], so a COMMIT_QUERY gets no answer and retries. *)
        log_durably t
          (W_decide (tid, vec, ct.ct_lc, ct.ct_client_id))
          (fun () ->
            if persistent t then
              Hashtbl.replace t.coord_decisions tid
                (now t, vec, ct.ct_lc, ct.ct_client_id);
            List.iter
              (fun l ->
                send t (local_replica t l)
                  (Msg.Commit
                     { tid; vec; lc = ct.ct_lc; origin = ct.ct_client_id }))
              parts;
            Hashtbl.remove t.txns tid;
            send t ct.ct_client (Msg.R_committed { req = ct.ct_commit_req; vec }))
      end

(* ------------------------------------------------------------------ *)
(* Partition-side causal handlers (Algorithm A3).                       *)

let handle_get_version t ~from ~tid ~key ~snap =
  bump_uniform_remote t snap;
  wait_known t ~local:(Vc.get snap t.dc) ~strong:(Vc.strong snap) (fun () ->
      let value, lc = Store.Oplog.read t.oplog key ~snap in
      send t from (Msg.Version { tid; key; value; lc }))

let handle_prepare t ~from ~tid ~writes ~snap =
  bump_uniform_remote t snap;
  match
    List.find_opt (fun p -> Types.tid_equal p.pc_tid tid) t.prepared_causal
  with
  | Some p ->
      (* duplicate PREPARE (the coordinator retried after a restart or a
         lost ack): re-ack at the recorded — already durable — timestamp
         instead of preparing twice *)
      send t from (Msg.Prepare_ack { tid; part = t.part; ts = p.pc_ts })
  | None ->
      (* The prepare time exceeds the clock (as in the paper), this
         replica's replication frontier (preserving Property 1),
         previously issued prepare times (distinct local timestamps per
         partition), and the snapshot's local entry (so a commit vector
         strictly dominates its snapshot and per-client local timestamps
         strictly increase). *)
      let ts =
        max (clock t)
          (max (Vc.get snap t.dc)
             (max (Vc.get t.known_vec t.dc) t.last_prep_ts)
          + 1)
      in
      t.last_prep_ts <- ts;
      observe_clock t ts;
      let p =
        { pc_tid = tid; pc_writes = writes; pc_ts = ts; pc_from = from;
          pc_at = now t }
      in
      t.prepared_causal <- p :: t.prepared_causal;
      (* the ack promises the entry survives a node crash: fsync first *)
      log_durably t (W_prepare p) (fun () ->
          send t from (Msg.Prepare_ack { tid; part = t.part; ts }))

let handle_commit t ~tid ~vec ~lc ~origin =
  at_clock t (Vc.get vec t.dc) (fun () ->
      match
        List.find_opt
          (fun p -> Types.tid_equal p.pc_tid tid)
          t.prepared_causal
      with
      | None -> ()
      | Some p ->
          t.prepared_causal <-
            List.filter
              (fun q -> not (Types.tid_equal q.pc_tid tid))
              t.prepared_causal;
          let tag = { Crdt.lc; origin } in
          List.iter
            (fun w -> Store.Oplog.append t.oplog w.Types.wkey ~op:w.Types.wop ~vec ~tag)
            p.pc_writes;
          let tx =
            {
              Types.tx_tid = tid;
              tx_writes = p.pc_writes;
              tx_vec = vec;
              tx_lc = lc;
              tx_origin = origin;
            }
          in
          let q = t.committed_causal.(t.dc) in
          q := tx :: !q;
          log_async t (W_commit tx);
          History.system_commit t.history ~tid ~writes:p.pc_writes ~vec ~lc
            ~origin ~accumulate:true;
          Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"commit"
            "%a local-ts=%d writes=%d" Types.tid_pp tid (Vc.get vec t.dc)
            (List.length p.pc_writes))

(* ------------------------------------------------------------------ *)
(* Presumed-abort resolution of orphaned causal 2PCs (persistence
   mode). A node crash can strand either side of the intra-DC 2PC: a
   participant holding a durable prepared entry whose coordinator died
   (the entry's timestamp blocks the replication frontier forever), or
   a coordinator whose participant died before acking. The participant
   asks the coordinator for the outcome; the coordinator answers from
   its durable decision log. "No record" means abort — safe, because no
   COMMIT ever leaves before the decision is fsynced ([W_decide]). *)

let handle_commit_query t ~from ~tid =
  if Hashtbl.mem t.txns tid then ()  (* still deciding; asked again later *)
  else
    match Hashtbl.find_opt t.coord_decisions tid with
    | Some (_, vec, lc, origin) ->
        send t from (Msg.Commit { tid; vec; lc; origin })
    | None -> send t from (Msg.Commit_abort { tid })

let handle_commit_abort t ~tid =
  if List.exists (fun p -> Types.tid_equal p.pc_tid tid) t.prepared_causal
  then begin
    Sim.Metrics.incr
      (Sim.Metrics.counter t.metrics "causal_presumed_aborts_total");
    Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"presumed-abort"
      "%a dropped (coordinator holds no decision)" Types.tid_pp tid;
    t.prepared_causal <-
      List.filter
        (fun p -> not (Types.tid_equal p.pc_tid tid))
        t.prepared_causal
  end

(* ------------------------------------------------------------------ *)
(* Replication, heartbeats, forwarding (Algorithm A4), and the
   stream-continuity machinery that makes them gap-detecting: every
   frontier-advancing message carries [from_ts], the boundary its sender
   vouches contiguity from, and a receiver whose trusted floor sits
   below the boundary refuses the jump and pulls the missing window
   through [Repair_request]/[Repair_log] instead.                       *)

let is_syncing t = match t.sync with Some _ -> true | None -> false

let live_peers t =
  let rec go i acc =
    if i < 0 then acc
    else if i <> t.dc && not (Network.dc_failed t.net i) then go (i - 1) (i :: acc)
    else go (i - 1) acc
  in
  go (dcs t - 1) []

(* The highest timestamp of [origin]'s stream this replica can vouch for
   first-hand: its frontier, capped at the provisional floor while the
   window above it rests on adopted third-party claims. Everything the
   replica asserts to others about [origin]'s stream — GC gossip,
   forwarded batches, sync answers — is capped here, so a provisional
   adoption can never launder an unverified claim into a peer's trusted
   frontier (and peers keep retaining the repair window). *)
let vouched t origin =
  let f = Vc.get t.known_vec origin in
  let p = t.provisional_from.(origin) in
  if p >= 0 && p < f then p else f

(* [known_vec] with every provisional window capped away (strong entry
   untouched) — the vector this replica may assert to others. *)
let vouched_vec t =
  let v = Vc.copy t.known_vec in
  for o = 0 to dcs t - 1 do
    let p = t.provisional_from.(o) in
    if p >= 0 && p < Vc.get v o then Vc.set v o p
  done;
  v

(* The floor a continuity claim is checked against. While syncing or
   replaying the WAL the stream is either the replica's own durable past
   or chained pull chunks — both first-hand — so the plain frontier
   applies; in normal operation a provisional window must not count as
   covered, so the trusted (vouched) floor applies instead — which is
   what turns the first post-adoption message from the origin into a
   verification repair. *)
let continuity_floor t origin =
  if is_syncing t || t.replaying then Vc.get t.known_vec origin
  else vouched t origin

(* A first-hand contiguous claim covering (f, last] with f at or below
   the provisional floor verifies the provisional window up to [last]:
   clear it if the whole window is covered, raise the floor otherwise.
   Callers guarantee contiguity from at or below the floor. Runs during
   WAL replay too — replay re-applies the same records that raised the
   floor live, and the floor doubles as the backfill-dedup boundary
   ([apply_replicate_txs]), so it must rise in lock-step with the data
   both live and on replay. *)
let confirm_provisional t ~origin ~last =
  let p = t.provisional_from.(origin) in
  if p >= 0 && not (is_syncing t) then
    if last >= Vc.get t.known_vec origin then
      t.provisional_from.(origin) <- -1
    else if last > p then t.provisional_from.(origin) <- last

(* Start (or rotate) a repair pull round for [origin]'s stream: ask the
   origin itself first — it always holds its own history — then rotate
   over live siblings (GC floors pin retention above our own gossiped
   claim, so any sibling holds the window it vouches for). *)
let rec start_repair_round t origin =
  let r = t.repair.(origin) in
  let eligible =
    let live = live_peers t in
    match List.filter (fun i -> not (List.mem i t.suspected)) live with
    | [] -> live
    | l -> l
  in
  let candidates =
    if List.mem origin eligible then
      origin :: List.filter (fun i -> i <> origin) eligible
    else eligible
  in
  match candidates with
  | [] -> r.r_active <- false  (* nobody to ask; re-armed on the next gap *)
  | cs ->
      r.r_active <- true;
      t.repair_ctr <- t.repair_ctr + 1;
      r.r_sq <- t.repair_ctr;
      r.r_attempt <- r.r_attempt + 1;
      r.r_mark <- Vc.get t.known_vec origin;
      Sim.Metrics.incr
        (Sim.Metrics.counter t.metrics "repair_pull_rounds_total");
      let target = List.nth cs ((r.r_attempt - 1) mod List.length cs) in
      let vec_from = vouched t origin in
      Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"repair-round"
        "pull dc%d's stream (%d, %d] from dc%d (round %d)" origin vec_from
        r.r_upto target r.r_sq;
      send t (sibling t target)
        (Msg.Repair_request
           { from = t.addr; origin; vec_from; upto = r.r_upto; sq = r.r_sq });
      let sq = r.r_sq in
      Engine.schedule t.eng ~delay:(Config.repair_deadline_us t.cfg)
        (fun () ->
          (* round still open at the deadline: the target is lossy,
             partitioned or gone — count a stall and rotate, or park
             after every candidate had a fair shot *)
          if alive t && (not (is_syncing t)) && r.r_active && r.r_sq = sq
          then begin
            r.r_stalled <- r.r_stalled + 1;
            if r.r_stalled > 2 * max 1 (List.length (live_peers t)) then begin
              r.r_active <- false;
              Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"repair-park"
                "repair of dc%d's stream parked at %d (upto %d): no source \
                 can serve the window"
                origin
                (Vc.get t.known_vec origin)
                r.r_upto
            end
            else start_repair_round t origin
          end)

(* A continuity break in [origin]'s stream: refuse the jump, account it,
   remember the claimed frontier and (outside sync/replay) start the
   repair. Detections while a repair is already in flight only raise the
   target. *)
let note_gap t ~origin ~floor ~from_ts ~claimed =
  Sim.Metrics.incr
    (Sim.Metrics.counter t.metrics "replicate_gap_detected_total");
  Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"replicate-gap"
    "dc%d's stream jumps (%d, %d] but our floor is %d: repairing instead \
     of trusting"
    origin from_ts claimed floor;
  let r = t.repair.(origin) in
  if claimed > r.r_upto then r.r_upto <- claimed;
  if (not r.r_active) && (not (is_syncing t)) && (not t.replaying) && alive t
  then begin
    r.r_attempt <- 0;
    r.r_stalled <- 0;
    start_repair_round t origin
  end

let propagate_local_txs t =
  (* the batch below carries exactly our stream window
     (propagated_upto, new]: every queued commit's timestamp exceeds the
     position shipped last tick (prepare timestamps exceed the frontier
     at prepare time and earlier propagations shipped everything at or
     below it), so [propagated_upto] is an honest continuity boundary
     for every destination — and it is also exactly the frontier a
     receiver of the previous message holds (last batch timestamp after
     a [Replicate], claimed frontier after a [Heartbeat]), so a
     contiguous stream never trips the gap check *)
  let prev = t.propagated_upto in
  (match t.prepared_causal with
  | [] -> Vc.bump t.known_vec t.dc (clock t)
  | ps ->
      let min_ts =
        List.fold_left (fun acc p -> min acc p.pc_ts) max_int ps
      in
      Vc.bump t.known_vec t.dc (min_ts - 1));
  let q = t.committed_causal.(t.dc) in
  let ready, keep =
    List.partition
      (fun tx -> Vc.get tx.Types.tx_vec t.dc <= Vc.get t.known_vec t.dc)
      !q
  in
  q := keep;
  let ready =
    List.sort
      (fun a b ->
        compare (Vc.get a.Types.tx_vec t.dc) (Vc.get b.Types.tx_vec t.dc))
      ready
  in
  for i = 0 to dcs t - 1 do
    if i <> t.dc then
      if ready <> [] then
        send t (sibling t i)
          (Msg.Replicate { origin = t.dc; txs = ready; from_ts = prev })
      else
        send t (sibling t i)
          (Msg.Heartbeat
             { origin = t.dc; ts = Vc.get t.known_vec t.dc; from_ts = prev })
  done;
  (* advance the stream position to what receivers will now hold — and
     never move it back: WAL replay re-queues every tail commit, even
     ones the previous incarnation already propagated (peers prune fully
     covered entries from their relay buffers, so the rejoin pull cannot
     redeliver and dequeue them), and re-shipping such a batch must not
     regress the boundary below commits the receivers provably hold, or
     the next heartbeat claims their window empty and receivers jump
     clean over them *)
  t.propagated_upto <-
    max t.propagated_upto
      (match List.rev ready with
      | last :: _ -> Vc.get last.Types.tx_vec t.dc
      | [] -> Vc.get t.known_vec t.dc);
  (* retain what was just shipped: rejoiners catch up on our history
     from this log (nobody else may hold our full frontier) *)
  if ready <> [] then
    t.propagated_log := List.rev_append ready !(t.propagated_log);
  flush_known_local t

(* Apply a sorted batch of [origin]'s stream: dedup against the
   frontier, materialize the writes, queue for forwarding (or re-retain
   own history), advance the frontier. Shared by the direct stream
   ([handle_replicate]), the rejoin pulls ([handle_sync_log]) and the
   repair path ([handle_repair_log]) — idempotence comes from the
   tid-at-frontier dedup, so overlapping deliveries are safe. *)
let apply_replicate_txs t ~origin txs =
  List.iter
    (fun tx ->
      let ts = Vc.get tx.Types.tx_vec origin in
      (* Dedup against the vouched floor, not the raw frontier: with no
         provisional window the two coincide and this is the classic
         "below the frontier = duplicate" check, but when the frontier
         rests on an adopted claim the window (floor, frontier] is
         data-free by construction (claims jump the frontier, only
         applications fill it, and every apply is followed by a floor
         update covering what it filled) — so a transaction inside it is
         backfill to apply, not a duplicate to drop. Equal-timestamp
         siblings of the last applied transaction dedup by tid. *)
      let floor_v = vouched t origin in
      (* An own-origin transaction still sitting in the pending
         propagation queue was restored there by WAL replay
         ([W_commit]) — already applied to the store, but below nothing
         the frontier records, because replay cannot know how far the
         previous incarnation propagated. A rejoin pull redelivering it
         proves a peer holds it: move it to the propagated log (it must
         be servable to repair pulls) instead of applying it twice. *)
      let restored_own =
        origin = t.dc
        &&
        let q = t.committed_causal.(t.dc) in
        match
          List.partition
            (fun r -> Types.tid_equal r.Types.tx_tid tx.Types.tx_tid)
            !q
        with
        | [], _ -> false
        | _, rest ->
            q := rest;
            true
      in
      let fresh =
        (not restored_own)
        && (ts > floor_v
           || (ts = t.frontier_ts.(origin)
              && not
                   (List.exists
                      (Types.tid_equal tx.Types.tx_tid)
                      t.frontier_tids.(origin))))
      in
      if restored_own then begin
        t.propagated_log := tx :: !(t.propagated_log);
        t.last_prep_ts <- max t.last_prep_ts ts;
        observe_clock t ts;
        if ts > t.frontier_ts.(origin) then begin
          t.frontier_ts.(origin) <- ts;
          t.frontier_tids.(origin) <- []
        end;
        if ts >= t.frontier_ts.(origin) then
          t.frontier_tids.(origin) <-
            tx.Types.tx_tid :: t.frontier_tids.(origin);
        if ts > Vc.get t.known_vec origin then Vc.set t.known_vec origin ts
      end;
      if fresh then begin
        (* [frontier_ts]/[frontier_tids] track the highest applied
           timestamp; backfill below it must not clobber the tracking *)
        if ts > t.frontier_ts.(origin) then begin
          t.frontier_ts.(origin) <- ts;
          t.frontier_tids.(origin) <- []
        end;
        if ts >= t.frontier_ts.(origin) then
          t.frontier_tids.(origin) <-
            tx.Types.tx_tid :: t.frontier_tids.(origin);
        let tag = Types.tx_tag tx in
        List.iter
          (fun w ->
            Store.Oplog.append t.oplog w.Types.wkey ~op:w.Types.wop
              ~vec:tx.Types.tx_vec ~tag)
          tx.Types.tx_writes;
        (* own-origin transactions only arrive here through a rejoin
           pull: they are our pre-crash history, already propagated by
           our previous incarnation — retain them without re-propagating,
           and keep new prepare timestamps above them (Property 1) *)
        if origin = t.dc then begin
          t.propagated_log := tx :: !(t.propagated_log);
          t.last_prep_ts <- max t.last_prep_ts ts;
          observe_clock t ts
        end
        else begin
          let q = t.committed_causal.(origin) in
          q := tx :: !q
        end;
        (* backfill below the frontier must not regress it *)
        if ts > Vc.get t.known_vec origin then Vc.set t.known_vec origin ts;
        if
          t.cfg.Config.measure_visibility && t.part = 0 && origin <> t.dc
          && not t.replaying
        then begin
          let pv = t.pending_vis.(origin) in
          pv := (ts, now t) :: !pv
        end
      end)
    txs

let handle_replicate t ~origin ~txs ~from_ts =
  Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"replicate"
    "from dc%d: %d txs" origin (List.length txs);
  let txs =
    List.sort
      (fun a b ->
        compare (Vc.get a.Types.tx_vec origin) (Vc.get b.Types.tx_vec origin))
      txs
  in
  let last =
    List.fold_left
      (fun acc tx -> max acc (Vc.get tx.Types.tx_vec origin))
      from_ts txs
  in
  let floor = continuity_floor t origin in
  if from_ts > floor && not t.replaying then
    (* the batch starts above what we trust: applying it would jump the
       frontier over entries we never saw (or never verified). Refuse it
       wholesale — the repair pull re-fetches the whole window including
       this batch, and applying without advancing would double-apply on
       the overlap. Replay is exempt: every record was gap-checked when
       it was accepted live, and heartbeat frontier jumps between
       records are deliberately not logged, so the replayed frontier
       legitimately trails the logged [from_ts] chain across windows
       that were verified empty at acceptance time. *)
    note_gap t ~origin ~floor ~from_ts ~claimed:last
  else begin
    apply_replicate_txs t ~origin txs;
    if txs <> [] then log_async t (W_replicate (origin, txs, from_ts));
    confirm_provisional t ~origin ~last
  end

let handle_heartbeat t ~origin ~ts ~from_ts =
  let floor = continuity_floor t origin in
  if from_ts > floor then
    (* heartbeats jump frontiers exactly like batches do (claiming the
       window (from_ts, ts] holds no transactions): the same continuity
       check applies, or a heartbeat racing ahead of a lost batch would
       paper over the gap *)
    note_gap t ~origin ~floor ~from_ts ~claimed:ts
  else begin
    if ts > Vc.get t.known_vec origin then Vc.set t.known_vec origin ts;
    confirm_provisional t ~origin ~last:ts
  end

(* Serve an origin-scoped repair pull: the retained transactions of
   [origin]'s stream in (vec_from, upto], chunked with chained [from_ts]
   boundaries, then a final chunk whose [covered] says how far our own
   first-hand frontier vouches the window (the requester may jump there
   even if the window held no transactions). GC floors guarantee
   completeness: nothing above the requester's own gossiped claim — and
   [vec_from] never exceeds it — is ever pruned. A replica that is
   itself syncing must not serve (its log is still partial); the
   requester's deadline rotates past us. *)
let handle_repair_request t ~from ~origin ~vec_from ~upto ~sq =
  ignore upto;
  if not (is_syncing t) then begin
    let source =
      if origin = t.dc then !(t.propagated_log) else !(t.committed_causal.(origin))
    in
    let vouch = vouched t origin in
    (* Serve everything we can vouch for above [vec_from] — deliberately
       NOT capped at the requester's [upto]. The claim behind [upto] is
       stale by at least the request's flight time, and while the origin
       keeps producing, a repair capped there lands [covered] behind the
       [from_ts] of the next in-FIFO stream message: the requester
       refuses it, detects a fresh gap and pulls again — a perpetual
       chase one round-trip behind the live edge. Serving to our current
       vouched position instead puts [covered] at or ahead of every
       stream boundary the origin stamped before we served (its
       [propagated_upto] never exceeds its frontier), so the next stream
       message behind the reply on the same FIFO channel chains cleanly
       and the stream re-links. [upto] still matters to the requester
       (its done-check target); here it is only a hint. *)
    let txs =
      List.filter
        (fun tx ->
          let ts = Vc.get tx.Types.tx_vec origin in
          ts > vec_from && ts <= vouch)
        source
    in
    let txs =
      List.sort
        (fun a b ->
          compare (Vc.get a.Types.tx_vec origin) (Vc.get b.Types.tx_vec origin))
        txs
    in
    let covered = if vouch >= vec_from then vouch else vec_from in
    let rec split n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | tx :: rest -> split (n - 1) (tx :: acc) rest
    in
    let rec ship from_ts = function
      | [] ->
          send t from
            (Msg.Repair_log
               { origin; txs = []; from_ts; covered; last = true; sq })
      | txs ->
          let batch, rest = split t.cfg.Config.sync_chunk [] txs in
          let batch_last =
            List.fold_left
              (fun acc tx -> max acc (Vc.get tx.Types.tx_vec origin))
              from_ts batch
          in
          if rest = [] then
            send t from
              (Msg.Repair_log
                 { origin; txs = batch; from_ts; covered; last = true; sq })
          else begin
            send t from
              (Msg.Repair_log
                 {
                   origin;
                   txs = batch;
                   from_ts;
                   covered = batch_last;
                   last = false;
                   sq;
                 });
            ship batch_last rest
          end
    in
    ship vec_from txs
  end

(* Apply a repair reply chunk. This is the below-frontier entry point
   [handle_replicate] deliberately refuses to be: chunks chain
   contiguously from the [vec_from] we asked for (at or below our
   frontier), so applying them can only fill, never jump — and the
   tid-at-frontier dedup makes re-delivered overlap idempotent. The
   final chunk's [covered] is a first-hand assertion by the server, so
   the frontier may jump there and the provisional floor rises with
   it. *)
let handle_repair_log t ~origin ~txs ~from_ts ~covered ~last ~sq =
  let r = t.repair.(origin) in
  if r.r_active && r.r_sq = sq && not (is_syncing t) then begin
    let before = Vc.get t.known_vec origin in
    if from_ts <= before then begin
      let txs =
        List.sort
          (fun a b ->
            compare (Vc.get a.Types.tx_vec origin) (Vc.get b.Types.tx_vec origin))
          txs
      in
      apply_replicate_txs t ~origin txs;
      if txs <> [] then log_async t (W_replicate (origin, txs, from_ts));
      (* the covered jump stays volatile (not WAL-logged): recovering
         with a lower frontier is always safe — the stream or a fresh
         repair re-covers it *)
      if last && covered > Vc.get t.known_vec origin then
        Vc.set t.known_vec origin covered;
      (* every chunk raises the provisional floor over the window it
         filled (non-final chunks' [covered] is their last transaction):
         the floor is also the backfill-dedup boundary, so it must track
         the fill chunk by chunk or an interleaved accepted stream batch
         could re-apply what a chunk just wrote *)
      confirm_provisional t ~origin ~last:covered
    end;
    if last then begin
      let after = Vc.get t.known_vec origin in
      if after >= r.r_upto && t.provisional_from.(origin) < 0 then begin
        r.r_active <- false;
        r.r_attempt <- 0;
        r.r_stalled <- 0;
        Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"repair-done"
          "dc%d's stream repaired to %d" origin after
      end
      else if after > r.r_mark then begin
        (* progress but not done (the server's own frontier stopped short
           of the claim, or a provisional window remains): next round
           immediately — rotation finds a source that can go further *)
        r.r_stalled <- 0;
        start_repair_round t origin
      end
      (* no progress: leave the armed deadline to rotate/park, so a
         useless source is not re-polled in a hot loop *)
    end
  end

(* FORWARD_REMOTE_TXS(i, j): forward transactions that originated at the
   (suspected) DC j to DC i, skipping what i already stores according to
   globalMatrix (Algorithm A4 lines 22–27). *)
let forward_remote_txs t ~dst ~origin =
  (* include transactions at the threshold itself: distinct transactions
     may share the frontier timestamp and the receiver dedups by tid.
     [threshold] is an honest continuity boundary: it is [dst]'s own
     gossiped claim (never above its frontier, so no false gap there)
     and the GC floor pins our retention above it (so we hold — and ship
     — everything in between). Both the shipped window and the claimed
     frontier are capped at [vouched]: we never forward the part of our
     own view that rests on unverified third-party adoption. *)
  let threshold = Vc.get t.global_matrix.(dst) origin in
  let vouch = vouched t origin in
  let txs =
    List.filter
      (fun tx ->
        let ts = Vc.get tx.Types.tx_vec origin in
        ts >= threshold && ts <= vouch)
      !(t.committed_causal.(origin))
  in
  if txs <> [] then
    send t (sibling t dst) (Msg.Replicate { origin; txs; from_ts = threshold })
  else if vouch > threshold then
    send t (sibling t dst)
      (Msg.Heartbeat { origin; ts = vouch; from_ts = threshold })

let run_forwarding t =
  List.iter
    (fun j ->
      if j <> t.dc then
        for i = 0 to dcs t - 1 do
          if i <> t.dc && i <> j && not (Network.dc_failed t.net i) then
            forward_remote_txs t ~dst:i ~origin:j
        done)
    t.suspected

(* Does DC [i] still hold the garbage-collection floors? Live DCs always
   do. A crashed DC keeps holding them — frozen at its last gossiped
   coverage — for [gc_grace_us], so that it can rejoin and catch up from
   the retained logs; past the grace period the floors advance and a late
   rejoiner relies on the full snapshot transfer instead. *)
let holds_floor t i =
  match Network.dc_failed_at t.net i with
  | None -> true
  | Some at -> now t - at < t.cfg.Config.gc_grace_us

(* Drop forwarded buffers — and our own propagated log — once every live
   DC and every crashed DC still within its rejoin grace period stores
   them (§5.5). *)
let prune_committed t =
  for j = 0 to dcs t - 1 do
    let covered ts =
      let ok = ref true in
      for i = 0 to dcs t - 1 do
        if i <> j && i <> t.dc && holds_floor t i then
          if Vc.get t.global_matrix.(i) j < ts then ok := false
      done;
      !ok
    in
    let q = if j = t.dc then t.propagated_log else t.committed_causal.(j) in
    q := List.filter (fun tx -> not (covered (Vc.get tx.Types.tx_vec j))) !q
  done

(* ------------------------------------------------------------------ *)
(* Metadata exchange (Algorithm A5) with an in-DC dissemination tree.   *)

let tree_parent part = (part - 1) / 2
let tree_children t part =
  let c1 = (2 * part) + 1 and c2 = (2 * part) + 2 in
  List.filter (fun c -> c < partitions t) [ c1; c2 ]

let subtree_agg t =
  (* stability (and through it uniformity) must count only first-hand
     storage: a provisional window is a claim about data this replica
     does not hold, and letting it into stableVec would let an
     under-replicated transaction pass the f+1 uniformity bar *)
  let agg = vouched_vec t in
  List.iter
    (fun c ->
      let v = t.local_agg.(c) in
      for i = 0 to Array.length agg - 1 do
        if Vc.get v i < Vc.get agg i then Vc.set agg i (Vc.get v i)
      done)
    (tree_children t t.part);
  agg

let update_stable t vec =
  Vc.merge_into t.stable_vec vec;
  Vc.merge_into t.stable_matrix.(t.dc) t.stable_vec;
  recompute_uniform t;
  flush_uniform_local t

(* Messages must carry value snapshots, not live references: the
   simulation is shared-memory and a receiver processes a message later,
   when the sender's vector has already advanced. *)
let broadcast_vecs t =
  let agg = subtree_agg t in
  if t.part = 0 then begin
    (* root of the dissemination tree: agg is the DC-wide minimum; the
       result is pushed directly to every partition (aggregation is a
       tree, dissemination one hop, keeping stabilisation latency low) *)
    update_stable t agg;
    for p = 1 to partitions t - 1 do
      send t (local_replica t p)
        (Msg.Stable_down { vec = Vc.copy t.stable_vec })
    done
  end
  else
    send t
      (local_replica t (tree_parent t.part))
      (Msg.Kv_up { part = t.part; vec = agg });
  (* sibling exchange across DCs *)
  for i = 0 to dcs t - 1 do
    if i <> t.dc then begin
      if Config.tracks_uniformity t.cfg && dcs t > 1 then
        send t (sibling t i)
          (Msg.Stablevec { dc = t.dc; vec = Vc.copy t.stable_vec });
      (* peers prune their catch-up logs below this claim: in
         persistence mode only vouch for what a node-level crash cannot
         lose, and never for a provisional window — peers must retain
         the repair window until we verified it first-hand *)
      let gc_vec = vouched_vec t in
      if persistent t then begin
        for o = 0 to dcs t - 1 do
          if Vc.get t.durable_known o < Vc.get gc_vec o then
            Vc.set gc_vec o (Vc.get t.durable_known o)
        done;
        if Vc.strong t.durable_known < Vc.strong gc_vec then
          Vc.set_strong gc_vec (Vc.strong t.durable_known)
      end;
      send t (sibling t i) (Msg.Knownvec_global { dc = t.dc; vec = gc_vec })
    end
  done;
  prune_committed t

let handle_kv_up t ~part ~vec =
  (* partial minima only grow; keep the freshest report per child *)
  Vc.merge_into t.local_agg.(part) vec

let handle_stable_down t ~vec = update_stable t vec

let handle_stablevec t ~dc ~vec =
  Vc.merge_into t.stable_matrix.(dc) vec;
  recompute_uniform t;
  flush_uniform_local t

let handle_knownvec_global t ~dc ~vec =
  Vc.merge_into t.global_matrix.(dc) vec

(* ------------------------------------------------------------------ *)
(* Uniform barrier and attach (§5.6).                                   *)

let handle_uniform_barrier t ~client ~req ~past =
  wait_uniform_local t ~threshold:(Vc.get past t.dc) (fun () ->
      send t client (Msg.R_ok { req }))

let handle_attach t ~client ~req ~past =
  wait_until t
    (fun () ->
      let ok = ref true in
      for i = 0 to dcs t - 1 do
        if i <> t.dc && Vc.get t.uniform_vec i < Vc.get past i then
          ok := false
      done;
      !ok)
    (fun () -> send t client (Msg.R_ok { req }))

(* ------------------------------------------------------------------ *)
(* Strong transactions: coordinator side (Algorithms A6–A7).            *)

let group_leader_addr t g =
  let leader = t.trusted_view.(g) in
  if g = rb_group t then
    match t.env.e_rb_cert with
    | Some f -> f leader
    | None -> invalid_arg "Replica: REDBLUE group without service nodes"
  else t.env.e_lookup leader g

let groups_of t ~wbuff ~ops =
  if Config.centralized_cert t.cfg then [ rb_group t ]
  else
    List.sort_uniq compare
      (Types.wbuff_partitions wbuff @ Types.opsmap_partitions ops)

(* Re-send PREPARE_STRONG if certification has not concluded: covers
   leader failures. Far above worst-case queueing delays so an overloaded
   (but live) service is not hit with duplicate certification work. *)
let cert_retry_us = 2_000_000

let send_prepare_strong t pc =
  List.iter
    (fun (g, _) ->
      send t (group_leader_addr t g)
        (Msg.Prepare_strong
           {
             rid = pc.p_rid;
             caller = pc.p_caller;
             coord = t.addr;
             tid = pc.p_tid;
             origin = pc.p_origin;
             wbuff = pc.p_wbuff;
             ops = pc.p_ops;
             snap = pc.p_snap;
             lc = pc.p_lc;
           }))
    (List.filter (fun (_, g) -> not g.g_done) pc.p_groups)

let rec schedule_cert_retry t pc =
  Engine.schedule t.eng ~delay:cert_retry_us (fun () ->
      if alive t && (not pc.p_done) && Hashtbl.mem t.pending_cert pc.p_rid
      then begin
        send_prepare_strong t pc;
        schedule_cert_retry t pc
      end)

(* CERTIFY (Algorithm A7): submit to every involved group's leader and
   collect quorums of ACCEPT_ACKs. *)
let rec certify t ~caller ~tid ~origin ~wbuff ~ops ~snap ~lc ~k =
  t.rid_ctr <- t.rid_ctr + 1;
  let rid = (t.uid * 1_000_000) + t.rid_ctr in
  let groups = groups_of t ~wbuff ~ops in
  let groups =
    List.map
      (fun g ->
        ( g,
          {
            g_acks = [];
            g_unknown = [];
            g_ballot = -1;
            g_vote = true;
            g_ts = 0;
            g_lc = 0;
            g_done = false;
          } ))
      groups
  in
  let pc =
    {
      p_rid = rid;
      p_caller = caller;
      p_tid = tid;
      p_origin = origin;
      p_wbuff = wbuff;
      p_ops = ops;
      p_snap = snap;
      p_lc = lc;
      p_groups = groups;
      p_k = k;
      p_submitted = now t;
      p_done = false;
    }
  in
  Hashtbl.replace t.pending_cert rid pc;
  send_prepare_strong t pc;
  schedule_cert_retry t pc;
  (* A strong transaction with an empty footprint (no reads, no writes)
     involves no certification group at all: nothing conflicts with it
     and no ACCEPT_ACK will ever arrive, so deciding it here is the only
     exit. Without this, the pending_cert entry leaked forever — the
     pending_certifications gauge never drained and the retry timer
     spun — which admission control would turn into a permanent wedge. *)
  if pc.p_groups = [] then complete_cert_if_ready t pc

and finish_cert t pc result =
  if not pc.p_done then begin
    pc.p_done <- true;
    Hashtbl.remove t.pending_cert pc.p_rid;
    (* submission-to-decision delay of real certifications (the queue
       behind the pending_certifications gauge); interned on the first
       strong decision so runs without strong transactions keep their
       metric snapshots unchanged *)
    if pc.p_origin <> -1 then
      Sim.Metrics.observe
        (Sim.Metrics.histogram t.metrics "cert_queue_delay_us")
        (now t - pc.p_submitted);
    pc.p_k result
  end

and complete_cert_if_ready t pc =
  if (not pc.p_done) && List.for_all (fun (_, g) -> g.g_done) pc.p_groups
  then begin
    let dec = List.for_all (fun (_, g) -> g.g_vote) pc.p_groups in
    let vec = Vc.copy pc.p_snap in
    (* seeded at the snapshot's strong entry so a group-less (empty
       footprint) decision cannot move the commit vector backwards *)
    let ts =
      List.fold_left
        (fun acc (_, g) -> max acc g.g_ts)
        (Vc.strong pc.p_snap) pc.p_groups
    in
    Vc.set_strong vec ts;
    let lc =
      List.fold_left (fun acc (_, g) -> max acc g.g_lc) pc.p_lc pc.p_groups
    in
    List.iter
      (fun (g, gs) ->
        send t (group_leader_addr t g)
          (Msg.Decision { b = gs.g_ballot; tid = pc.p_tid; dec; vec; lc }))
      pc.p_groups;
    if dec then
      History.system_commit t.history ~tid:pc.p_tid
        ~writes:(List.concat_map snd pc.p_wbuff)
        ~vec ~lc ~origin:pc.p_origin ~accumulate:false;
    finish_cert t pc (Cert.Decided (dec, vec, lc))
  end

let handle_accept_ack t ~part ~b ~rid ~tid ~vote ~ts ~lc ~from_dc =
  match Hashtbl.find_opt t.pending_cert rid with
  | None -> ()
  | Some pc -> (
      if Types.tid_equal pc.p_tid tid then
        match List.assoc_opt part pc.p_groups with
        | None -> ()
        | Some g ->
            if not g.g_done then begin
              if b > g.g_ballot then begin
                (* a new ballot supersedes acks from older ones *)
                g.g_ballot <- b;
                g.g_acks <- []
              end;
              if b = g.g_ballot && not (List.mem from_dc g.g_acks) then begin
                g.g_acks <- from_dc :: g.g_acks;
                g.g_vote <- vote;
                g.g_ts <- ts;
                g.g_lc <- lc;
                if List.length g.g_acks >= Config.quorum t.cfg then begin
                  g.g_done <- true;
                  complete_cert_if_ready t pc
                end
              end
            end)

let handle_already_decided t ~rid ~tid ~dec ~vec ~lc =
  match Hashtbl.find_opt t.pending_cert rid with
  | None -> ()
  | Some pc ->
      if Types.tid_equal pc.p_tid tid then begin
        (* Propagate the decision to every involved group — including
           those that never acked us (ballot still unknown): a Restoring
           leader re-certifying its prepared table depends on this reply
           to clear the entry, and its own RETRY task is off while it
           restores. Leaders accept decisions from any older ballot, so
           0 is a safe stand-in when none was learned. *)
        List.iter
          (fun (g, gs) ->
            send t (group_leader_addr t g)
              (Msg.Decision { b = max gs.g_ballot 0; tid; dec; vec; lc }))
          pc.p_groups;
        finish_cert t pc (Cert.Decided (dec, vec, lc))
      end

let handle_unknown_tx_ack t ~part ~rid ~tid ~from_dc =
  match Hashtbl.find_opt t.pending_cert rid with
  | None -> ()
  | Some pc -> (
      if Types.tid_equal pc.p_tid tid then
        match List.assoc_opt part pc.p_groups with
        | None -> ()
        | Some g ->
            if not (List.mem from_dc g.g_unknown) then begin
              g.g_unknown <- from_dc :: g.g_unknown;
              if List.length g.g_unknown >= Config.quorum t.cfg then
                finish_cert t pc Cert.Unknown
            end)

(* Admission control: when the DC's in-flight strong certifications have
   reached the configured bound, new COMMIT_STRONG requests are shed with
   a retryable R_overloaded instead of joining the queue, so queueing
   delay at the certification path stays bounded under open-loop
   overload. Only fresh commits are shed: C_resubmit_strong carries a
   possibly already-decided tid whose exactly-once recovery depends on
   re-entering certification, and dummy heartbeats keep the strong
   frontier moving. *)
let admission_shed t =
  let bound = t.cfg.Config.admission_max_pending in
  bound > 0
  &&
  match t.env.e_dc_pending with
  | Some pending_of_dc -> pending_of_dc t.dc >= bound
  | None -> false

let shed_commit t ~client ~req ~tid =
  (* interned on the first shed so runs that never overload keep their
     metric snapshots (and golden artifacts) unchanged *)
  Sim.Metrics.incr
    (Sim.Metrics.counter t.metrics
       ~labels:[ ("dc", string_of_int t.dc) ]
       "admission_rejects_total");
  Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"shed" "%a"
    Types.tid_pp tid;
  send t client (Msg.R_overloaded { req })

(* COMMIT_STRONG (Algorithm A6): make the snapshot uniform, then certify. *)
let handle_commit_strong t ~client ~req ~tid ~lc =
  match Hashtbl.find_opt t.txns tid with
  | None -> ()
  | Some _ when admission_shed t ->
      Hashtbl.remove t.txns tid;
      shed_commit t ~client ~req ~tid
  | Some ct ->
      let wbuff =
        Hashtbl.fold
          (fun l ws acc -> (l, List.rev !ws) :: acc)
          ct.ct_wbuff []
      in
      let ops_by_part = Hashtbl.create 4 in
      List.iter
        (fun (o : Types.opdesc) ->
          let l = Store.Keyspace.partition ~partitions:(partitions t) o.key in
          let cur =
            match Hashtbl.find_opt ops_by_part l with
            | Some os -> os
            | None -> []
          in
          Hashtbl.replace ops_by_part l (o :: cur))
        ct.ct_ops;
      let ops = Hashtbl.fold (fun l os acc -> (l, os) :: acc) ops_by_part [] in
      Hashtbl.remove t.txns tid;
      (* phase instrumentation: uniformity wait (arrival of the commit
         request until the local snapshot is uniform), then certification
         (submission until the decision lands back here) *)
      let arrived_us = now t in
      wait_uniform_local t ~threshold:(Vc.get ct.ct_snap t.dc) (fun () ->
          let uniform_us = now t in
          Sim.Metrics.observe t.h_phase_uniform (uniform_us - arrived_us);
          if Sim.Trace.enabled t.trace then
            Sim.Trace.emit_span t.trace ~source:t.trace_src
              ~kind:"uniform-wait" ~start:arrived_us
              (Fmt.str "%a" Types.tid_pp tid);
          certify t ~caller:Msg.Normal ~tid ~origin:ct.ct_client_id ~wbuff
            ~ops ~snap:ct.ct_snap ~lc ~k:(fun result ->
              Sim.Metrics.observe t.h_phase_certify (now t - uniform_us);
              if Sim.Trace.enabled t.trace then
                Sim.Trace.emit_span t.trace ~source:t.trace_src
                  ~kind:"certify" ~start:uniform_us
                  (Fmt.str "%a" Types.tid_pp tid);
              match result with
              | Cert.Decided (dec, vec, lc) ->
                  Sim.Metrics.incr
                    (if dec then t.c_strong_commit else t.c_strong_abort);
                  send t client (Msg.R_strong { req; dec; vec; lc })
              | Cert.Unknown ->
                  (* cannot happen for NORMAL callers; fail the commit *)
                  Sim.Metrics.incr t.c_strong_abort;
                  send t client
                    (Msg.R_strong
                       { req; dec = false; vec = ct.ct_snap; lc })))

(* DELIVER_UPDATES (Algorithm A6 lines 5–9): apply this partition's slice
   of each committed strong transaction, in strong-timestamp order. *)
let deliver_strong t txs ~strong_ts =
  List.iter
    (fun tx ->
      let tag = Types.tx_tag tx in
      List.iter
        (fun w ->
          if
            Store.Keyspace.partition ~partitions:(partitions t) w.Types.wkey
            = t.part
          then
            Store.Oplog.append t.oplog w.Types.wkey ~op:w.Types.wop
              ~vec:tx.Types.tx_vec ~tag)
        tx.Types.tx_writes)
    txs;
  (* logged including empty (heartbeat) batches: the replayed strong
     frontier seeds [Cert.restart ~delivered], and an understated
     frontier would re-deliver — and re-apply — decided transactions *)
  log_async t (W_strong (txs, strong_ts));
  if strong_ts > Vc.strong t.known_vec then Vc.set_strong t.known_vec strong_ts;
  (* dummy heartbeats deliver empty write sets; only real updates are
     worth tracing *)
  if List.exists (fun tx -> tx.Types.tx_writes <> []) txs then
    Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"deliver-strong"
      "ts=%d txs=%d" strong_ts (List.length txs);
  flush_known_strong t

(* REDBLUE: updates pushed by the DC's certification service node. *)
let handle_push_updates t ~txs ~strong_ts = deliver_strong t txs ~strong_ts

(* Dummy strong transaction acting as a heartbeat (Algorithm A6 line 10). *)
let strong_heartbeat t =
  t.hb_ctr <- t.hb_ctr + 1;
  let tid = { Types.cl = -(t.uid + 2); sq = t.hb_ctr } in
  let g = if Config.centralized_cert t.cfg then rb_group t else t.part in
  certify t ~caller:Msg.Normal ~tid ~origin:(-1) ~wbuff:[ (g, []) ]
    ~ops:[ (g, []) ]
    ~snap:(Vc.create ~dcs:(dcs t))
    ~lc:0
    ~k:(fun _ -> ())

(* ------------------------------------------------------------------ *)
(* Failure handling: Ω updates and forwarding activation.               *)

(* Ω's leader choice: the first non-suspected DC in the fixed order
   starting from the configured home leader. Every replica applies the
   same rule, so once suspicions agree, trust agrees — and when a falsely
   suspected preferred DC is rehabilitated, everyone re-trusts it, which
   (via Nack / recover at a higher ballot) converges leadership back. *)
let preferred_leader t =
  let n = dcs t in
  let home = t.cfg.Config.leader_dc in
  let rec go k =
    if k >= n then home  (* everything suspected: keep Ω pointed home *)
    else
      let dc = (home + k) mod n in
      if List.mem dc t.suspected then go (k + 1) else dc
  in
  go 0

let retarget_trust t =
  let preferred = preferred_leader t in
  Array.fill t.trusted_view 0 (Array.length t.trusted_view) preferred;
  match t.cert with
  | Some c when Cert.trusted c <> preferred -> Cert.set_trusted c preferred
  | _ -> ()

let suspect t failed_dc =
  if failed_dc <> t.dc && not (List.mem failed_dc t.suspected) then begin
    t.suspected <- failed_dc :: t.suspected;
    Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"suspect"
      "dc%d suspected; forwarding its transactions" failed_dc;
    (* While rebuilding after a crash, feed Ω's verdict into the running
       sync round (a suspected snapshot source fails over, a suspected
       polled sibling is dropped) and still retarget certification trust
       — when the crashed leader DC is the one being suspected, the
       group's election needs this member's ack, and deferring the
       retarget until the catch-up completes deadlocks against
       [cert_caught_up]. The one thing a half-synced member must never
       do is bid for leadership itself (electing on stale state could
       lose decisions), so the retarget is skipped exactly when Ω would
       point at our own DC; [finish_sync] recomputes trust in full. *)
    match t.sync with
    | Some s ->
        s.s_on_suspect failed_dc;
        if preferred_leader t <> t.dc then retarget_trust t
    | None -> (
        retarget_trust t;
        (* eagerly finish 2PCs the suspected DC was coordinating: an
           orphaned accepted-but-undecided transaction blocks delivery of
           every later strong timestamp in its group *)
        match t.cert with
        | Some c when Cert.is_leader c -> Cert.retry_suspected c ~dc:failed_dc
        | _ -> ())
  end

(* Rehabilitation: Ω stopped suspecting [dc] (heartbeats resumed after a
   partition heal or a false suspicion). Forwarding on its behalf stops
   and trust is recomputed, possibly handing leadership back. *)
let unsuspect t dc =
  if List.mem dc t.suspected then begin
    t.suspected <- List.filter (fun d -> d <> dc) t.suspected;
    Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"unsuspect"
      "dc%d rehabilitated" dc;
    match t.sync with
    | Some s ->
        (* a rehabilitated peer may serve the sync again right away; the
           trust retarget follows the same no-self-bid rule as above *)
        s.s_dropped <- List.remove_assoc dc s.s_dropped;
        if preferred_leader t <> t.dc then retarget_trust t
    | None -> retarget_trust t
  end

(* ------------------------------------------------------------------ *)
(* Assembly: cert context and message dispatch.                         *)

let make_cert t =
  let ctx =
    {
      Cert.x_dc = t.dc;
      x_group = t.part;
      x_dcs = dcs t;
      x_quorum = Config.quorum t.cfg;
      x_conflict_ops = Config.ops_conflict t.cfg.Config.conflict;
      x_all_conflict = (t.cfg.Config.conflict = Config.All_strong);
      x_ops_slice = (fun ops -> Types.opsmap_find ops t.part);
      x_clock = (fun () -> clock t);
      x_now = (fun () -> now t);
      x_send = (fun dst msg -> send t dst msg);
      x_self = (fun () -> t.addr);
      x_member = (fun dc -> sibling t dc);
      x_dc_of = (fun a -> Network.dc_of t.net a);
      x_deliver = (fun txs ~strong_ts -> deliver_strong t txs ~strong_ts);
      x_at_clock = (fun ts k -> at_clock t ts k);
      x_certify =
        (fun ~caller ~tid ~origin ~wbuff ~ops ~snap ~lc ~k ->
          certify t ~caller ~tid ~origin ~wbuff ~ops ~snap ~lc ~k);
      x_alive = (fun () -> alive t);
    }
  in
  t.cert <-
    Some
      (Cert.create
         ~bid_interval_us:(Config.reclaim_debounce_us t.cfg)
         ctx ~leader_dc:t.cfg.Config.leader_dc)

let cert t = t.cert

(* ------------------------------------------------------------------ *)
(* Node-level persistence: the simulated disk, periodic snapshots, and
   orphan resolution (see DESIGN.md §4g).                               *)

(* Attach the simulated disk and route certification's durable events
   ([Cert.set_log]) into it. [System] calls this — after [make_cert] —
   when [Config.persistence] is set. *)
let enable_persistence t =
  let w =
    Store.Wal.create ~eng:t.eng
      ~metrics:
        ( t.metrics,
          [ ("dc", string_of_int t.dc); ("part", string_of_int t.part) ] )
      ~fsync_us:t.cfg.Config.disk_fsync_us
      ~mb_per_s:t.cfg.Config.disk_mb_per_s ~size:wal_record_bytes
      ~snap_size:node_snapshot_bytes ()
  in
  t.disk <- Some w;
  (* the node boots with empty state, so a from-scratch log is complete *)
  ignore (Store.Wal.append w W_genesis);
  match t.cert with
  | Some c ->
      Cert.set_log c (fun ev ~k -> ignore (Store.Wal.append w ~k (W_cert ev)))
  | None -> ()

let set_disk_slow t ~factor =
  match t.disk with Some w -> Store.Wal.set_slow w ~factor | None -> ()

let scrub_disk t =
  match t.disk with Some w -> Store.Wal.scrub w | None -> ()

let tear_disk_next t =
  match t.disk with Some w -> Store.Wal.tear_next w | None -> ()

(* Copy-out of everything a restart needs. Shared immutable structure
   (tx records, oplog entries and their commit vectors) is retained by
   reference — in particular a transaction's oplog entries keep sharing
   its record's vector array, which [handle_sync_request] relies on to
   recognise unpropagated commits physically. *)
let snapshot_of t =
  {
    ns_oplog =
      List.map
        (fun key -> (key, Store.Oplog.entries t.oplog key))
        (Store.Oplog.keys t.oplog);
    ns_known = Vc.copy t.known_vec;
    ns_prepared = t.prepared_causal;
    ns_committed = Array.map (fun q -> !q) t.committed_causal;
    ns_propagated = !(t.propagated_log);
    ns_last_prep = t.last_prep_ts;
    ns_frontier_tids = Array.copy t.frontier_tids;
    ns_frontier_ts = Array.copy t.frontier_ts;
    ns_decisions =
      Hashtbl.fold
        (fun tid (_, vec, lc, origin) acc -> (tid, (vec, lc, origin)) :: acc)
        t.coord_decisions [];
    ns_provisional = Array.copy t.provisional_from;
    ns_cert =
      (match t.cert with Some c -> Some (Cert.persistent_state c) | None -> None);
  }

(* Snapshot the state as of every append issued so far: memory runs
   ahead of the disk, so the image covers all records below the current
   sequence — the WAL truncates there once the write lands. *)
let take_snapshot t =
  match t.disk with
  | None -> ()
  | Some w -> Store.Wal.snapshot w ~seq:(Store.Wal.next_seq w - 1) (snapshot_of t)

(* How long either side of the intra-DC 2PC stays quiet before probing:
   well above a prepare round trip plus an fsync, well below a rolling
   restart's dwell time, so orphans resolve while the roll proceeds. *)
let orphan_age_us = 1_000_000

(* Periodic persistence housekeeping: participants query the outcome of
   stale prepares (presumed abort), coordinators re-send PREPAREs that a
   participant crash swallowed (participants dedup by tid), and old
   decisions are pruned once every participant had ample time to ask. *)
let resolve_orphans t =
  let cutoff = now t - orphan_age_us in
  List.iter
    (fun p ->
      if p.pc_at <= cutoff then
        send t p.pc_from
          (Msg.Commit_query { from = t.addr; tid = p.pc_tid; part = t.part }))
    t.prepared_causal;
  Hashtbl.iter
    (fun tid ct ->
      if ct.ct_pending > 0 && not ct.ct_deciding && ct.ct_started <= cutoff
      then begin
        ct.ct_started <- now t;
        Hashtbl.iter
          (fun l ws ->
            if not (List.mem l ct.ct_acked) then
              send t (local_replica t l)
                (Msg.Prepare
                   { from = t.addr; tid; writes = List.rev !ws;
                     snap = ct.ct_snap }))
          ct.ct_wbuff
      end)
    t.txns;
  let prune_below = now t - (10 * orphan_age_us) in
  Hashtbl.filter_map_inplace
    (fun _ ((at, _, _, _) as d) -> if at < prune_below then None else Some d)
    t.coord_decisions

(* Start the periodic tasks (Algorithm A4 line 1, Algorithm A5 line 1,
   heartbeats for strong transactions). [phase] staggers replicas.
   The generation check retires a previous incarnation's tasks across a
   crash/rejoin cycle: a task from before the crash must not resume just
   because the DC is alive again (the rejoin arms fresh ones). *)
let start_timers t ~phase =
  let cfg = t.cfg in
  t.timer_gen <- t.timer_gen + 1;
  let gen = t.timer_gen in
  let live () = t.timer_gen = gen && alive t in
  (* timer labels are per-DC (not per-partition): partitions of one DC
     do identical periodic work, and per-partition labels would explode
     the profile's cardinality without adding signal *)
  let lab task =
    if Sim.Prof.is_on (Engine.prof t.eng) then
      Sim.Prof.label (Engine.prof t.eng) (Fmt.str "dc%d/replica/%s" t.dc task)
    else Sim.Prof.none
  in
  Engine.every t.eng
    ~label:(lab "propagate")
    ~period:cfg.Config.propagate_period_us ~phase (fun () ->
      if live () then begin
        propagate_local_txs t;
        run_forwarding t;
        true
      end
      else false);
  Engine.every t.eng
    ~label:(lab "broadcast")
    ~period:cfg.Config.broadcast_period_us
    ~phase:(phase + 1) (fun () ->
      if live () then begin
        broadcast_vecs t;
        true
      end
      else false);
  if Config.has_strong cfg && not (Config.centralized_cert cfg) then begin
    Engine.every t.eng
      ~label:(lab "strong_heartbeat")
      ~period:cfg.Config.strong_heartbeat_us
      ~phase:(phase + 2) (fun () ->
        if live () then begin
          (match t.cert with
          | Some c ->
              if
                Cert.is_leader c
                && now t - Cert.idle_since c >= cfg.Config.strong_heartbeat_us
              then strong_heartbeat t
          | None -> ());
          true
        end
        else false);
    (* housekeeping runs far less often than heartbeats: it walks the
       whole decided table *)
    Engine.every t.eng
      ~label:(lab "housekeeping")
      ~period:500_000 ~phase:(phase + 3) (fun () ->
        if live () then begin
          (match t.cert with
          | Some c ->
              Cert.retry_stale c ~older_than_us:(4 * cert_retry_us);
              (* Prune only below every sibling's delivered strong
                 frontier (the strong slot of its gossiped knownVec): a
                 member cut off by a partition — even one falsely
                 suspected — must still find the decisions it missed in
                 the group's decided logs when it rejoins, and NEW_STATE
                 cannot resurrect a pruned entry. A crashed DC holds the
                 floor too while its rejoin grace period lasts — frozen
                 at its pre-crash frontier until it recovers, then pinned
                 at zero by [reset_peer_view] until its member has caught
                 up — and releases it only once the grace period expires
                 without a rejoin. *)
              let floor = ref (Cert.last_delivered c) in
              for i = 0 to dcs t - 1 do
                if i <> t.dc && holds_floor t i then
                  floor := min !floor (Vc.strong t.global_matrix.(i))
              done;
              Cert.prune_decided c ~keep_after:(!floor - 1_500_000)
          | None -> ());
          true
        end
        else false)
  end;
  if persistent t then begin
    (* periodic snapshot + truncate bounds WAL replay after a crash *)
    Engine.every t.eng
      ~label:(lab "snapshot")
      ~period:cfg.Config.snapshot_interval_us
      ~phase:(phase + 4) (fun () ->
        if live () then begin
          take_snapshot t;
          true
        end
        else false);
    Engine.every t.eng
      ~label:(lab "orphans")
      ~period:500_000 ~phase:(phase + 5) (fun () ->
        if live () then begin
          resolve_orphans t;
          true
        end
        else false)
  end

(* ------------------------------------------------------------------ *)
(* Client DC failover (crash recovery satellite of §5.6).               *)

(* A client whose session DC crashed migrates here carrying its causal
   past; like ATTACH, the reply is held until this DC's uniformVec covers
   the past's remote entries, so the first snapshot started afterwards
   includes everything the client has observed. *)
let handle_failover t ~client ~req ~past =
  Sim.Metrics.incr (Sim.Metrics.counter t.metrics "client_failovers_total");
  Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"failover"
    "client %d attached after failover" client;
  handle_attach t ~client ~req ~past

(* Idempotent re-submission of a strong transaction whose coordinator
   crashed before replying. The client re-sends the same tid with the
   write buffer and read set it accumulated; certification deduplicates
   by tid (an already-decided transaction yields its original decision
   via ALREADY_DECIDED; a prepared one re-accepts at its recorded
   timestamp), so the transaction takes effect exactly once no matter
   where the old coordinator stopped. *)
let handle_resubmit_strong t ~client ~client_id ~req ~tid ~wbuff ~ops ~snap
    ~lc =
  (* the snapshot was computed at the old session DC, so its "local"
     entry references that DC: bump the remote uniform entries from the
     client's evidence as START_TX does, then apply the usual
     COMMIT_STRONG precondition against our own local entry *)
  bump_snapshot_source t snap;
  let arrived_us = now t in
  wait_uniform_local t ~threshold:(Vc.get snap t.dc) (fun () ->
      let uniform_us = now t in
      Sim.Metrics.observe t.h_phase_uniform (uniform_us - arrived_us);
      certify t ~caller:Msg.Normal ~tid ~origin:client_id ~wbuff ~ops ~snap
        ~lc ~k:(fun result ->
          Sim.Metrics.observe t.h_phase_certify (now t - uniform_us);
          match result with
          | Cert.Decided (dec, vec, lc) ->
              Sim.Metrics.incr
                (if dec then t.c_strong_commit else t.c_strong_abort);
              send t client (Msg.R_strong { req; dec; vec; lc })
          | Cert.Unknown ->
              Sim.Metrics.incr t.c_strong_abort;
              send t client (Msg.R_strong { req; dec = false; vec = snap; lc })))

(* ------------------------------------------------------------------ *)
(* DC rejoin: snapshot transfer and causal-log catch-up (tentpole of
   the crash-recovery subsystem; see DESIGN.md "DC recovery & rejoin"). *)

(* Causal-log backlog retained for [origin] (GC grace-window tests):
   the forwarded buffer for remote origins, the propagated log for our
   own. *)
let committed_backlog t ~origin =
  if origin = t.dc then List.length !(t.propagated_log)
  else List.length !(t.committed_causal.(origin))

let provisional_floor t ~origin = t.provisional_from.(origin)
let repair_active t ~origin = t.repair.(origin).r_active
let propagated_upto t = t.propagated_upto

(* A peer DC rejoined with empty state: forget everything its pre-crash
   gossip claimed it stored, so the causal buffers and decided logs are
   retained for it until its fresh vectors arrive. *)
let reset_peer_view t ~dc =
  if dc <> t.dc then begin
    let zero v =
      for i = 0 to dcs t - 1 do
        Vc.set v i 0
      done;
      Vc.set_strong v 0
    in
    zero t.global_matrix.(dc);
    zero t.stable_matrix.(dc)
  end

(* Everything a crash destroys. The clocks, rid/heartbeat counters and
   the lifetime metrics survive (restarted processes keep their identity);
   everything else restarts empty and is rebuilt by the sync protocol. *)
let wipe_state t =
  Store.Oplog.clear t.oplog;
  let zero v =
    for i = 0 to dcs t - 1 do
      Vc.set v i 0
    done;
    Vc.set_strong v 0
  in
  zero t.known_vec;
  zero t.durable_known;
  zero t.stable_vec;
  zero t.uniform_vec;
  Array.iter zero t.local_agg;
  Array.iter zero t.stable_matrix;
  Array.iter zero t.global_matrix;
  t.prepared_causal <- [];
  t.propagated_log := [];
  t.last_prep_ts <- 0;
  t.propagated_upto <- 0;
  for i = 0 to dcs t - 1 do
    t.committed_causal.(i) := [];
    t.frontier_tids.(i) <- [];
    t.frontier_ts.(i) <- -1;
    t.pending_vis.(i) := [];
    t.provisional_from.(i) <- -1;
    (let r = t.repair.(i) in
     r.r_active <- false;
     r.r_upto <- 0;
     r.r_attempt <- 0;
     r.r_stalled <- 0;
     r.r_mark <- 0)
  done;
  Hashtbl.reset t.txns;
  Hashtbl.reset t.pending_cert;
  Sim.Heap.clear t.wait_known_local;
  Sim.Heap.clear t.wait_known_strong;
  Sim.Heap.clear t.wait_uniform_local;
  t.waiters <- [];
  t.suspected <- []

(* Is [dc] currently barred from serving this sync? Ω-suspected peers
   and peers that recently missed a deadline (pull-round silence or a
   refused/stalled snapshot) are skipped until their backoff expires or
   Ω rehabilitates them — a partitioned sibling is otherwise re-picked
   forever, stalling the rejoin for as long as the adversity lasts. *)
let sync_barred t s dc =
  List.mem dc t.suspected
  ||
  match List.assoc_opt dc s.s_dropped with
  | Some retry_at -> now t < retry_at
  | None -> false

(* Peers eligible to serve the sync. When adversity has barred every
   live sibling (total partition of the rejoiner), fall back to all of
   them rather than going dark: the periodic restarts keep probing, and
   whichever peer heals first answers. *)
let sync_peers t s =
  let live = live_peers t in
  match List.filter (fun i -> not (sync_barred t s i)) live with
  | [] -> live
  | eligible -> eligible

let sync_drop_backoff_us t = Config.sync_drop_backoff_us t.cfg

(* Drop [dc] from the current round: it missed the pull deadline, never
   produced a snapshot chunk, or became Ω-suspected before answering.
   It keeps any tail it already delivered (an answered poll is not a
   laggard) and is barred from the next rounds until the backoff
   expires. *)
let sync_drop_peer t s dc =
  Sim.Metrics.incr (Sim.Metrics.counter t.metrics "sync_peer_drops_total");
  Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"sync-drop"
    "dc%d dropped from the sync round (deadline/suspicion)" dc;
  s.s_dropped <-
    (dc, now t + sync_drop_backoff_us t) :: List.remove_assoc dc s.s_dropped;
  s.s_polled <- List.filter (fun i -> i <> dc) s.s_polled

(* Ask an eligible sibling for the snapshot, rotating the peer across
   attempts. Any partially applied chunks from an abandoned attempt are
   discarded by re-wiping; stale chunks still in flight are dropped by
   the [sq] check. *)
let request_snapshot t s =
  s.s_sq <- s.s_sq + 1;
  s.s_phase <- Sync_snapshot;
  s.s_progress <- false;
  s.s_peer <- -1;
  wipe_state t;
  match sync_peers t s with
  | [] -> ()  (* nobody to sync from; the retry tick keeps looking *)
  | peers ->
      let peer = List.nth peers (s.s_sq mod List.length peers) in
      s.s_peer <- peer;
      Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"sync-request"
        "snapshot from dc%d (attempt %d)" peer s.s_sq;
      send t (sibling t peer)
        (Msg.Sync_request { from = t.addr; part = t.part; sq = s.s_sq })

let request_cert_state t =
  match t.cert with
  | None -> ()
  | Some c ->
      (* broadcast: only the group leader answers, and a stale trust view
         cannot say who that is right now. Carry our durable ballot so a
         leader still working below it (we crashed mid-election and our
         WAL kept the higher promise) knows to re-elect above it rather
         than answer with a [New_state] we are bound to refuse. *)
      let ballot = Cert.ballot c in
      List.iter
        (fun i ->
          send t (sibling t i) (Msg.State_request { from = t.addr; ballot }))
        (live_peers t)

(* Start a catch-up pull round over the eligible peers, and arm its
   deadline: a polled sibling that has not answered with its tail when
   the deadline fires is dropped (with a backoff before it is polled
   again) and the round restarts without it — mirroring the co-syncing
   exclusion, but driven by time and Ω instead of an explicit weak
   tail. Without the deadline, a sibling partitioned or gray-degraded
   mid-round can neither answer nor be exempted (it has not crashed),
   and the rejoin stalls for as long as the adversity lasts. *)
let start_pull_round t s =
  s.s_sq <- s.s_sq + 1;
  s.s_tails <- [];
  s.s_polled <- [];
  s.s_weak <- [];
  s.s_round_started <- now t;
  (* freeze the round's continuity boundary: peers answer with
     everything above this vector, so their [Sync_log] chunks chain from
     its entries and their tails' own-entry claims are contiguous from
     it *)
  let round_vec = Vc.copy t.known_vec in
  s.s_round_vec <- round_vec;
  List.iter
    (fun i ->
      s.s_polled <- i :: s.s_polled;
      send t (sibling t i)
        (Msg.Sync_pull { from = t.addr; vec = round_vec; sq = s.s_sq }))
    (sync_peers t s);
  let sq = s.s_sq in
  Engine.schedule t.eng ~delay:t.cfg.Config.sync_pull_deadline_us (fun () ->
      match t.sync with
      | Some s' when s' == s && s.s_phase = Sync_pull && s.s_sq = sq && alive t
        ->
          let laggards =
            List.filter
              (fun i -> not (List.mem_assoc i s.s_tails))
              s.s_polled
          in
          if laggards <> [] then begin
            List.iter (fun i -> sync_drop_peer t s i) laggards;
            s.s_try_complete ()
          end
      | _ -> ())

let cert_caught_up t =
  match t.cert with
  | None -> true
  | Some c -> (
      match Cert.status c with
      | Cert.Leader | Cert.Follower -> true
      | Cert.Recovering | Cert.Restoring -> false)

(* Origins whose entries the completion predicate cannot wait for:
   crashed DCs, co-syncing peers, Ω-suspected peers, and peers dropped
   from the round for missing a deadline (a partitioned or gray sibling
   lands there). What a tail claims for such an origin may exceed any
   data a pull can deliver — heartbeats advance frontiers past the last
   transaction, and the origin itself cannot answer — so [finish_sync]
   adopts the tails' claims instead; see there for why that is
   gap-free. *)
let sync_exempt t s o =
  Network.dc_failed t.net o
  || List.mem o s.s_weak
  || List.mem o t.suspected
  || List.mem_assoc o s.s_dropped

(* Caught up once every polled sibling sent its tail and our knownVec
   covers each answering origin's OWN tail claim — it arrived as a tail
   heartbeat, so this holds as soon as the round's chunks drained.
   Deliberately NOT required: covering what tail senders claim about
   *third parties*. Those claims ride the 5 ms heartbeat exchange, so
   in every round some peer's view of origin [o] is one heartbeat
   fresher than [o]'s own directly-received tail — and with frontiers
   advancing on heartbeats even at quiescence, waiting for cross-peer
   coverage livelocks the sync forever (seen as a stuck [dcs_syncing]
   under 5-DC explorer schedules). The window between [o]'s tail claim
   and fresher third-party views is exactly what the stream-continuity
   scheme (§4j) guards: the deferred live stream replays with
   [from_ts] chaining from the tail claim, and any real gap trips the
   continuity check and is backfilled by the repair pull instead of
   being prevented by conservative waiting. The strong entry is driven
   by the certification member's deliveries, which the rejoiner
   receives like everyone else once its member re-entered. *)
let sync_complete t s =
  let exempt o = sync_exempt t s o in
  s.s_phase = Sync_pull
  && s.s_polled <> []
  && List.for_all (fun i -> List.mem_assoc i s.s_tails) s.s_polled
  && List.for_all
       (fun (j, known) ->
         Vc.strong known <= Vc.strong t.known_vec
         && (exempt j || Vc.get known j <= Vc.get t.known_vec j))
       s.s_tails
  && cert_caught_up t

(* Leave the sync state machine and resume normal operation. Returns the
   deferred replication stream; the caller ([complete_sync]) replays it
   through the ordinary dispatch once [t.sync] is cleared. *)
let finish_sync t s =
  t.sync <- None;
  (* Adopt the tails' entries for origins that could not answer the
     pulls themselves — crashed, co-syncing, suspected or dropped — but
     only PROVISIONALLY. The maximum of the tails is a third-party
     claim: the answering peers shipped all they held above our vector,
     but a tail can lag the dropped origin's true frontier (the claimant
     itself missed batches behind the same adversity), and trusting it
     outright lets the origin's next direct batch jump clean over the
     window between the lagging claim and its true boundary — acked
     writes silently gone. Marking the adoption provisional (floor = the
     pre-adoption frontier) makes the first post-sync continuity check
     for the origin repair the window first-hand instead of trusting
     it. *)
  for o = 0 to dcs t - 1 do
    if o <> t.dc && sync_exempt t s o then begin
      let claim =
        List.fold_left
          (fun acc (_, known) -> max acc (Vc.get known o))
          (-1) s.s_tails
      in
      let before = Vc.get t.known_vec o in
      if claim > before then begin
        Vc.set t.known_vec o claim;
        t.provisional_from.(o) <-
          (if t.provisional_from.(o) >= 0 then min t.provisional_from.(o) before
           else before);
        Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"sync-adopt"
          "adopted dc%d's frontier %d from tail claims, provisional from %d"
          o claim
          t.provisional_from.(o)
      end
    end
  done;
  let took = now t - s.s_started in
  Sim.Metrics.observe (Sim.Metrics.histogram t.metrics "dc_catchup_us") took;
  Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"sync-done"
    "caught up in %d us (replaying %d deferred)" took
    (List.length s.s_deferred);
  (* re-seed the disk: a full snapshot makes the log replayable again
     (the WAN-installed base never hit the WAL), resumes state logging,
     and marks everything recovered as durable *)
  if persistent t then begin
    t.replaying <- false;
    take_snapshot t;
    Vc.merge_into t.durable_known t.known_vec
  end;
  (* Re-seed the outgoing stream position at the recovered frontier:
     everything at or below it is held first-hand (snapshot, WAL replay
     or pulled into [propagated_log]), and every commit above it is
     still queued, so the first post-recovery batch honestly covers
     (frontier, batch-last]. Receivers ahead of the boundary dedup;
     receivers behind it trip the gap check and repair — exactly the
     post-restart verification the continuity scheme wants. *)
  t.propagated_upto <- Vc.get t.known_vec t.dc;
  (* resume normal operation: fresh periodic tasks, immediate metadata
     broadcast so siblings unpin the GC floors, and trust recomputed from
     the suspicions recorded while syncing (possibly reclaiming
     leadership through the ordinary recovery protocol) *)
  start_timers t ~phase:(t.uid * 7 mod 1_000);
  broadcast_vecs t;
  retarget_trust t;
  s.s_done ();
  let deferred = List.rev s.s_deferred in
  s.s_deferred <- [];
  deferred

(* Serve a snapshot to a rejoining sibling: every oplog entry except the
   writes of our own not-yet-propagated commits, which sit above the cut
   (our knownVec) and reach the rejoiner through ordinary replication.
   Those entries are recognised physically: a pending transaction's oplog
   entries share its record's commit-vector array. *)
let handle_sync_request t ~from ~part ~sq =
  if part = t.part && not (is_syncing t) then begin
    let cut = Vc.copy t.known_vec in
    let pending = !(t.committed_causal.(t.dc)) in
    let unpropagated vec =
      List.exists (fun tx -> tx.Types.tx_vec == vec) pending
    in
    let chunk = ref [] and n = ref 0 in
    let flush ~last =
      send t from
        (Msg.Sync_store
           { sq; entries = List.rev !chunk; last; cut = Vc.copy cut });
      chunk := [];
      n := 0
    in
    List.iter
      (fun key ->
        List.iter
          (fun (e : Store.Oplog.entry) ->
            if not (unpropagated e.vec) then begin
              chunk := (key, e.op, e.vec, e.tag) :: !chunk;
              incr n;
              if !n >= t.cfg.Config.sync_chunk then flush ~last:false
            end)
          (Store.Oplog.entries t.oplog key))
      (Store.Oplog.keys t.oplog);
    flush ~last:true
  end

let handle_sync_store t ~sq ~entries ~last ~cut =
  match t.sync with
  | Some s when s.s_phase = Sync_snapshot && s.s_sq = sq ->
      s.s_progress <- true;
      List.iter
        (fun (key, op, vec, tag) -> Store.Oplog.append t.oplog key ~op ~vec ~tag)
        entries;
      if last then begin
        (* install the cut: the store now materialises everything below
           it, so it becomes the replication frontier, the floor for new
           prepare timestamps and the delivery frontier of the
           certification member *)
        Vc.merge_into t.known_vec cut;
        t.last_prep_ts <- Vc.get cut t.dc;
        observe_clock t (Vc.get cut t.dc);
        observe_clock t (Vc.strong cut);
        (match t.cert with
        | Some c -> Cert.begin_rejoin c ~delivered:(Vc.strong cut)
        | None -> ());
        s.s_phase <- Sync_pull;
        Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"sync-snapshot"
          "installed cut %a" Vc.pp cut;
        request_cert_state t;
        start_pull_round t s
      end
  | _ -> ()  (* stale chunk from an abandoned attempt *)

(* Answer a catch-up pull: for every origin — our own propagated log
   included, since nobody else may hold our history up to our frontier —
   the retained committed transactions above the requester's vector, in
   ascending local-timestamp order (gap-free relative to our frontier),
   chunked, then a tail carrying our knownVec over the same FIFO
   channel. Our own pending commits sit above the shipped log and above
   the tail's own entry, so Property 1 is preserved. A replica that is
   itself syncing answers with just a weak ([syncing = true]) tail. *)
let handle_sync_pull t ~from ~vec ~sq =
  (if not (is_syncing t) then
     for o = 0 to dcs t - 1 do
       let source =
         if o = t.dc then !(t.propagated_log) else !(t.committed_causal.(o))
       in
       (* ship only what we vouch for first-hand: above a provisional
          floor our own view of [o]'s stream may have the very hole the
          requester is trying to close, and chained chunks must never
          claim contiguity across it *)
       let vouch = vouched t o in
       let txs =
         List.filter
           (fun tx ->
             let ts = Vc.get tx.Types.tx_vec o in
             ts > Vc.get vec o && ts <= vouch)
           source
       in
       let txs =
         List.sort
           (fun a b ->
             compare (Vc.get a.Types.tx_vec o) (Vc.get b.Types.tx_vec o))
           txs
       in
       let rec ship from_ts = function
         | [] -> ()
         | txs ->
             let rec split n acc = function
               | rest when n = 0 -> (List.rev acc, rest)
               | [] -> (List.rev acc, [])
               | tx :: rest -> split (n - 1) (tx :: acc) rest
             in
             let batch, rest = split t.cfg.Config.sync_chunk [] txs in
             let batch_last =
               List.fold_left
                 (fun acc tx -> max acc (Vc.get tx.Types.tx_vec o))
                 from_ts batch
             in
             send t from (Msg.Sync_log { origin = o; txs = batch; from_ts; sq });
             ship batch_last rest
       in
       ship (Vc.get vec o) txs
     done);
  (* the tail, too, asserts only the vouched view: sync_complete and the
     finish-time adoption both read these claims *)
  send t from
    (Msg.Sync_tail
       { from_dc = t.dc; known = vouched_vec t; syncing = is_syncing t; sq })

let handle_sync_log t ~origin ~txs ~from_ts ~sq =
  match t.sync with
  | Some s when s.s_phase = Sync_pull && s.s_sq = sq ->
      handle_replicate t ~origin ~txs ~from_ts
  | _ -> ()  (* stale batch from an earlier round *)

let handle_sync_tail t ~from_dc ~known ~syncing ~sq =
  match t.sync with
  | Some s when s.s_phase = Sync_pull && s.s_sq = sq ->
      if syncing then begin
        (* a co-rejoining peer cannot serve the round: stop waiting for
           it, and never trust its partial frontier *)
        s.s_weak <- from_dc :: List.filter (fun i -> i <> from_dc) s.s_weak;
        s.s_polled <- List.filter (fun i -> i <> from_dc) s.s_polled;
        s.s_tails <- List.remove_assoc from_dc s.s_tails;
        s.s_dropped <- List.remove_assoc from_dc s.s_dropped
      end
      else begin
        (* FIFO channels order every [Sync_log] batch of the response
           before its tail, so the tail's own entry is a heartbeat
           contiguous from the round's pull vector: the peer holds
           nothing of its own stream below [known] that it has not
           already shipped to us in this round *)
        handle_heartbeat t ~origin:from_dc ~ts:(Vc.get known from_dc)
          ~from_ts:(Vc.get s.s_round_vec from_dc);
        s.s_tails <- (from_dc, known) :: List.remove_assoc from_dc s.s_tails;
        (* an answer — even a late one — proves the link works again *)
        s.s_dropped <- List.remove_assoc from_dc s.s_dropped
      end
  | _ -> ()

(* While syncing, traffic other than the deferred replication stream
   (handled before this filter) is mostly refused: during the snapshot
   phase anything but snapshot chunks; during the pull phase everything
   needed to converge — catch-up batches and tails, gossip,
   certification — but no client requests (the client's failover handles
   those) and no snapshot service to other rejoiners. [Sync_pull] itself
   is admitted so that co-rejoining peers receive a weak tail instead of
   deadlocking on each other's silence. *)
let sync_admits s msg =
  match (s.s_phase, msg) with
  | Sync_snapshot, Msg.Sync_store _ -> true
  | Sync_snapshot, _ -> false
  | ( Sync_pull,
      ( Msg.C_start _ | Msg.C_read _ | Msg.C_update _ | Msg.C_commit_causal _
      | Msg.C_commit_strong _ | Msg.C_uniform_barrier _ | Msg.C_attach _
      | Msg.C_failover _ | Msg.C_resubmit_strong _ | Msg.Sync_request _
      | Msg.Sync_store _ | Msg.Get_version _ | Msg.Version _ | Msg.Prepare _
      | Msg.Prepare_ack _ | Msg.Commit _ | Msg.Repair_request _ ) ) ->
      (* Repair_request included: a syncing replica's log is partial and
         must not serve repair windows (the handler re-checks, but
         refusing here keeps the accounting honest) *)
      false
  | Sync_pull, _ -> true

let dispatch t msg =
  (match msg with
  | Msg.C_start { client; client_id; req; tid; past } ->
      start_tx t ~client ~client_id ~req ~tid ~past
  | Msg.C_read { client; req; tid; key; cls } ->
      handle_read t ~client ~req ~tid ~key ~cls
  | Msg.C_update { client; req; tid; key; op; cls } ->
      handle_update t ~client ~req ~tid ~key ~op ~cls
  | Msg.C_commit_causal { client; req; tid; lc } ->
      handle_commit_causal t ~client ~req ~tid ~lc
  | Msg.C_commit_strong { client; req; tid; lc } ->
      handle_commit_strong t ~client ~req ~tid ~lc
  | Msg.C_uniform_barrier { client; req; past } ->
      handle_uniform_barrier t ~client ~req ~past
  | Msg.C_attach { client; req; past } -> handle_attach t ~client ~req ~past
  | Msg.C_failover { client; req; past } -> handle_failover t ~client ~req ~past
  | Msg.C_resubmit_strong { client; client_id; req; tid; wbuff; ops; snap; lc }
    ->
      handle_resubmit_strong t ~client ~client_id ~req ~tid ~wbuff ~ops ~snap
        ~lc
  | Msg.Sync_request { from; part; sq } -> handle_sync_request t ~from ~part ~sq
  | Msg.Sync_store { sq; entries; last; cut } ->
      handle_sync_store t ~sq ~entries ~last ~cut
  | Msg.Sync_pull { from; vec; sq } -> handle_sync_pull t ~from ~vec ~sq
  | Msg.Sync_log { origin; txs; from_ts; sq } ->
      handle_sync_log t ~origin ~txs ~from_ts ~sq
  | Msg.Sync_tail { from_dc; known; syncing; sq } ->
      handle_sync_tail t ~from_dc ~known ~syncing ~sq
  | Msg.Get_version { from; tid; key; snap } ->
      handle_get_version t ~from ~tid ~key ~snap
  | Msg.Version { tid; key; value; lc } -> handle_version t ~tid ~key ~value ~lc
  | Msg.Prepare { from; tid; writes; snap } ->
      handle_prepare t ~from ~tid ~writes ~snap
  | Msg.Prepare_ack { tid; part; ts } -> handle_prepare_ack t ~tid ~part ~ts
  | Msg.Commit { tid; vec; lc; origin } -> handle_commit t ~tid ~vec ~lc ~origin
  | Msg.Commit_query { from; tid; part = _ } -> handle_commit_query t ~from ~tid
  | Msg.Commit_abort { tid } -> handle_commit_abort t ~tid
  | Msg.Replicate { origin; txs; from_ts } ->
      handle_replicate t ~origin ~txs ~from_ts
  | Msg.Heartbeat { origin; ts; from_ts } ->
      handle_heartbeat t ~origin ~ts ~from_ts
  | Msg.Repair_request { from; origin; vec_from; upto; sq } ->
      handle_repair_request t ~from ~origin ~vec_from ~upto ~sq
  | Msg.Repair_log { origin; txs; from_ts; covered; last; sq } as m ->
      Sim.Metrics.incr
        ~by:(Msg.size_bytes m)
        (Sim.Metrics.counter t.metrics "repair_log_bytes_total");
      handle_repair_log t ~origin ~txs ~from_ts ~covered ~last ~sq
  | Msg.Kv_up { part; vec } -> handle_kv_up t ~part ~vec
  | Msg.Stable_down { vec } -> handle_stable_down t ~vec
  | Msg.Stablevec { dc; vec } -> handle_stablevec t ~dc ~vec
  | Msg.Knownvec_global { dc; vec } -> handle_knownvec_global t ~dc ~vec
  | Msg.Accept_ack { part; b; rid; tid; vote; ts; lc; from_dc } ->
      handle_accept_ack t ~part ~b ~rid ~tid ~vote ~ts ~lc ~from_dc
  | Msg.Already_decided { rid; tid; dec; vec; lc } ->
      handle_already_decided t ~rid ~tid ~dec ~vec ~lc
  | Msg.Unknown_tx_ack { part; rid; tid; from_dc } ->
      handle_unknown_tx_ack t ~part ~rid ~tid ~from_dc
  | Msg.Push_updates { txs; strong_ts } ->
      handle_push_updates t ~txs ~strong_ts
  | Msg.R_started _ | Msg.R_value _ | Msg.R_committed _ | Msg.R_strong _
  | Msg.R_ok _ | Msg.R_overloaded _ ->
      ()  (* client-bound replies never reach replicas *)
  | Msg.Fd_ping _ -> ()  (* heartbeats are handled by Detector nodes *)
  | ( Msg.Prepare_strong _ | Msg.Accept _ | Msg.Decision _
    | Msg.Learn_decision _ | Msg.Deliver _ | Msg.Unknown_tx _ | Msg.Nack _
    | Msg.New_leader _ | Msg.New_leader_ack _ | Msg.New_state _
    | Msg.New_state_ack _ | Msg.State_request _ ) as m -> (
      match t.cert with
      | Some c -> ignore (Cert.handle c m)
      | None ->
          Log.debug (fun k ->
              k "replica %d.%d dropped %s (no certification group)" t.dc
                t.part (Msg.kind m))))

(* Finish the catch-up and replay the deferred replication stream in
   arrival order: entries at or below the frontier dedup away, entries
   above continue each origin's FIFO exactly where the pulls stopped,
   and heartbeats replay after the data they vouch for. *)
let complete_sync t s = List.iter (dispatch t) (finish_sync t s)

(* Build the sync state machine and wire its late-bound reactions. *)
let make_sync t ~on_done =
  let s =
    {
      s_phase = Sync_snapshot;
      s_sq = 0;
      s_peer = -1;
      s_progress = false;
      s_tails = [];
      s_polled = [];
      s_weak = [];
      s_dropped = [];
      s_round_started = now t;
      s_round_vec = Vc.create ~dcs:(dcs t);
      s_on_suspect = (fun _ -> ());
      s_try_complete = (fun () -> ());
      s_deferred = [];
      s_started = now t;
      s_done = on_done;
    }
  in
  t.sync <- Some s;
  s.s_try_complete <-
    (fun () -> if sync_complete t s then complete_sync t s else start_pull_round t s);
  (* The Ω feed: a suspected sibling is treated like a missed deadline
     immediately — snapshot source failover, or a pull round restarted
     without the suspect — instead of waiting for the timer. *)
  s.s_on_suspect <-
    (fun dc ->
      match s.s_phase with
      | Sync_snapshot ->
          if dc = s.s_peer then begin
            sync_drop_peer t s dc;
            request_snapshot t s
          end
      | Sync_pull ->
          if List.mem dc s.s_polled && not (List.mem_assoc dc s.s_tails)
          then begin
            sync_drop_peer t s dc;
            s.s_try_complete ()
          end);
  s

(* The retry tick driving the sync until it completes. *)
let arm_sync_retry t s =
  let period = 500_000 in
  let label =
    if Sim.Prof.is_on (Engine.prof t.eng) then
      Sim.Prof.label (Engine.prof t.eng) (Fmt.str "dc%d/replica/sync" t.dc)
    else Sim.Prof.none
  in
  Engine.every t.eng ~label ~period ~phase:(t.uid * 13 mod period) (fun () ->
      match t.sync with
      | Some s' when s' == s && alive t -> (
          (match s.s_phase with
          | Sync_snapshot ->
              (* no chunk since the last tick: the peer died, refused, or
                 sits behind a partition; bar it for a backoff and rotate
                 to the next eligible one *)
              if s.s_progress then s.s_progress <- false
              else begin
                if s.s_peer >= 0 then sync_drop_peer t s s.s_peer;
                request_snapshot t s
              end
          | Sync_pull ->
              if sync_complete t s then complete_sync t s
              else begin
                if not (cert_caught_up t) then request_cert_state t;
                start_pull_round t s
              end);
          match t.sync with Some s' when s' == s -> true | _ -> false)
      | _ -> false)

(* Re-enter the system after the DC recovered: wipe what the crash
   destroyed, park the certification member in Recovering, and drive the
   snapshot/pull state machine off a retry tick until caught up. The
   periodic tasks stay down throughout — [finish_sync] re-arms them. *)
let begin_rejoin t ~on_done =
  t.timer_gen <- t.timer_gen + 1;
  (* During a WAN rejoin the disk holds no base (it was scrubbed with
     the machine): suppress state logging until [finish_sync] re-seeds
     it with a full snapshot, so a crash mid-rejoin never leaves a
     base-less log that looks replayable. *)
  if persistent t then t.replaying <- true;
  let s = make_sync t ~on_done in
  (match t.cert with
  | Some c -> Cert.begin_rejoin c ~delivered:0
  | None -> ());
  request_snapshot t s;
  arm_sync_retry t s

(* ------------------------------------------------------------------ *)
(* Node-level crash/restart: recover from the replica's own disk and
   catch up the missed suffix from a peer (tentpole of the persistence
   subsystem; DESIGN.md §4g). Distinct from the whole-DC path above:
   the disk survives, so no WAN snapshot transfer is needed.            *)

(* The process dies: timers retire, a running sync is abandoned, and
   un-fsynced WAL appends are lost (the in-flight head may tear). The
   network side ([Network.fail_node]) is driven by [System].            *)
let crash_node t =
  t.timer_gen <- t.timer_gen + 1;
  t.sync <- None;
  Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"node-crash" "process down";
  match t.disk with Some w -> Store.Wal.crash w | None -> ()

let install_snapshot t ns =
  List.iter
    (fun (key, es) ->
      (* [Oplog.entries] lists newest first; re-append oldest first *)
      List.iter
        (fun (e : Store.Oplog.entry) ->
          Store.Oplog.append t.oplog key ~op:e.op ~vec:e.vec ~tag:e.tag)
        (List.rev es))
    ns.ns_oplog;
  Vc.merge_into t.known_vec ns.ns_known;
  t.prepared_causal <-
    List.map (fun p -> { p with pc_at = now t }) ns.ns_prepared;
  Array.iteri (fun i l -> t.committed_causal.(i) := l) ns.ns_committed;
  t.propagated_log := ns.ns_propagated;
  t.last_prep_ts <- ns.ns_last_prep;
  Array.iteri (fun i l -> t.frontier_tids.(i) <- l) ns.ns_frontier_tids;
  Array.iteri (fun i v -> t.frontier_ts.(i) <- v) ns.ns_frontier_ts;
  (* a provisional window survives the crash: the restart must repair
     it, not rediscover it the hard way *)
  Array.iteri (fun i v -> t.provisional_from.(i) <- v) ns.ns_provisional;
  List.iter
    (fun (tid, (vec, lc, origin)) ->
      Hashtbl.replace t.coord_decisions tid (now t, vec, lc, origin))
    ns.ns_decisions

(* Replay one WAL record on top of the snapshot. Applied-state records
   re-run the ordinary apply paths (their dedup makes replay idempotent
   against the snapshot); certification events fold into [cert_acc] for
   a single [Cert.restart] at the end. History is not re-recorded — the
   checker's log survives the process. *)
let replay_record t cert_acc = function
  | W_genesis -> ()
  | W_prepare p ->
      t.prepared_causal <- { p with pc_at = now t } :: t.prepared_causal;
      t.last_prep_ts <- max t.last_prep_ts p.pc_ts;
      observe_clock t p.pc_ts
  | W_commit tx ->
      t.prepared_causal <-
        List.filter
          (fun q -> not (Types.tid_equal q.pc_tid tx.Types.tx_tid))
          t.prepared_causal;
      let tag = Types.tx_tag tx in
      List.iter
        (fun w ->
          Store.Oplog.append t.oplog w.Types.wkey ~op:w.Types.wop
            ~vec:tx.Types.tx_vec ~tag)
        tx.Types.tx_writes;
      let q = t.committed_causal.(t.dc) in
      q := tx :: !q
  | W_replicate (origin, txs, from_ts) -> handle_replicate t ~origin ~txs ~from_ts
  | W_strong (txs, strong_ts) -> deliver_strong t txs ~strong_ts
  | W_decide (tid, vec, lc, origin) ->
      Hashtbl.replace t.coord_decisions tid (now t, vec, lc, origin)
  | W_cert (Cert.E_ballot { b; cb }) ->
      let bal, cbal, prepared = !cert_acc in
      cert_acc := (max bal b, max cbal cb, prepared)
  | W_cert (Cert.E_accept p) ->
      let bal, cbal, prepared = !cert_acc in
      let prepared =
        p
        :: List.filter
             (fun (q : Msg.prepared_strong) ->
               not (Types.tid_equal q.Msg.ps_tid p.Msg.ps_tid))
             prepared
      in
      cert_acc := (bal, cbal, prepared)

(* Restart from the node's own disk: replay snapshot + WAL tail, hand
   certification its durable promises back, then catch up the suffix
   missed while down by entering the sync machine directly at the pull
   phase — a clean node restart ships zero WAN snapshot bytes. Falls
   back to the whole-DC WAN rejoin when the disk holds nothing (first
   boot after a scrub). *)
let restart_from_disk t ~on_done =
  Sim.Metrics.incr (Sim.Metrics.counter t.metrics "node_restarts_total");
  match t.disk with
  | None -> begin_rejoin t ~on_done
  | Some w -> (
      match Store.Wal.recover w with
      | None, [] ->
          Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"node-restart"
            "disk empty; falling back to WAN rejoin";
          begin_rejoin t ~on_done
      | None, tail when not (List.exists (function W_genesis -> true | _ -> false) tail) ->
          (* a base-less log: the re-seeding snapshot after a scrub or
             WAN rejoin never installed, so the tail alone cannot
             rebuild the state *)
          Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"node-restart"
            "disk has no recoverable base; falling back to WAN rejoin";
          Store.Wal.scrub w;
          begin_rejoin t ~on_done
      | snap, tail ->
          t.timer_gen <- t.timer_gen + 1;
          wipe_state t;
          Hashtbl.reset t.coord_decisions;
          t.replaying <- true;
          let local_bytes = ref 0 in
          (match snap with
          | Some ns ->
              local_bytes := node_snapshot_bytes ns;
              install_snapshot t ns
          | None -> ());
          let cert_acc =
            ref
              (match snap with
              | Some { ns_cert = Some st; _ } -> st
              | _ -> (0, 0, []))
          in
          List.iter
            (fun r ->
              local_bytes := !local_bytes + wal_record_bytes r;
              replay_record t cert_acc r)
            tail;
          t.replaying <- false;
          (* everything recovered is on disk by definition *)
          Vc.merge_into t.durable_known t.known_vec;
          Sim.Metrics.incr
            ~by:(List.length tail)
            (Sim.Metrics.counter t.metrics "replay_entries_total");
          Sim.Metrics.incr ~by:!local_bytes
            (Sim.Metrics.counter t.metrics "local_catchup_bytes_total");
          observe_clock t (Vc.get t.known_vec t.dc);
          observe_clock t (Vc.strong t.known_vec);
          Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"node-restart"
            "replayed %d entries on top of %s; pulling the missed suffix"
            (List.length tail)
            (match snap with Some _ -> "a snapshot" | None -> "an empty disk");
          (match t.cert with
          | Some c ->
              let ballot, cballot, prepared = !cert_acc in
              Cert.restart c ~ballot ~cballot ~prepared
                ~delivered:(Vc.strong t.known_vec)
          | None -> ());
          let s = make_sync t ~on_done in
          s.s_phase <- Sync_pull;
          request_cert_state t;
          start_pull_round t s;
          arm_sync_retry t s)

let handle t msg =
  match t.sync with
  | None -> dispatch t msg
  | Some s -> (
      match msg with
      | Msg.Replicate _ | Msg.Heartbeat _ ->
          (* The direct replication stream cannot be refused — each
             transaction is shipped exactly once and the frontier jumps,
             so a dropped batch would be a permanent gap that a later
             heartbeat papers over. Defer it for replay at the finish. *)
          Sim.Metrics.incr
            ~by:(Msg.size_bytes msg)
            (Sim.Metrics.counter t.metrics "sync_log_bytes_total");
          s.s_deferred <- msg :: s.s_deferred
      | _ ->
          if sync_admits s msg then begin
            (* account catch-up traffic: snapshot chunks vs log replay *)
            (match msg with
            | Msg.Sync_store _ ->
                Sim.Metrics.incr
                  ~by:(Msg.size_bytes msg)
                  (Sim.Metrics.counter t.metrics "sync_snapshot_bytes_total")
            | Msg.Sync_log _ | Msg.Sync_tail _ ->
                Sim.Metrics.incr
                  ~by:(Msg.size_bytes msg)
                  (Sim.Metrics.counter t.metrics "sync_log_bytes_total")
            | _ -> ());
            dispatch t msg;
            (* the message may have been the one completing the catch-up *)
            match t.sync with
            | Some s' when s' == s && sync_complete t s -> complete_sync t s
            | _ -> ()
          end)
