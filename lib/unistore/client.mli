(** Client sessions (Algorithm A1 of the paper).

    A client runs inside a simulation fiber: every call below blocks in
    direct style on the store's replies while the rest of the simulated
    system makes progress. The session maintains the client's causal
    past ([pastVec]) and Lamport clock, giving read-your-writes and
    monotonic snapshots across transactions. Create clients through
    {!System.spawn_client} or {!System.new_client}. *)

type t

(** Raised by {!commit_exn} and {!run_txn} when a strong transaction
    aborts during certification. Also raised by any session call after
    a DC failover ([Config.client_failover_us] > 0, the session DC
    stopped answering): the session has already migrated to a live DC
    carrying its causal past, and the interrupted transaction must be
    re-executed there ({!run_txn} does so automatically). In-flight
    strong commits are not aborted but re-submitted under the same
    transaction id, which certification dedups — exactly-once. *)
exception Aborted

(** Raised by {!commit} (and hence {!commit_exn}) when the coordinator
    shed the strong commit under admission control
    ([Config.admission_max_pending]): the transaction took no effect and
    is retryable. {!run_txn} retries it after a short randomized
    backoff; open-loop drivers instead count it as shed load. *)
exception Overloaded

(** Used by [System]; not part of the public workflow. *)
val create :
  id:int ->
  eng:Sim.Engine.t ->
  net:Msg.t Net.Network.t ->
  cfg:Config.t ->
  history:History.t ->
  trace:Sim.Trace.t ->
  metrics:Sim.Metrics.t ->
  dc:int ->
  replicas_of_dc:(int -> Msg.addr array) ->
  t

val id : t -> int

(** Whether the session has a call outstanding (awaiting a reply or a
    failover timeout). At quiescence every session should be idle — the
    liveness oracle of [lib/explore] checks exactly that. *)
val in_flight : t -> bool

(** Install the deployment's view of which DCs a failover may target
    (live and done resyncing). Set by {!System.new_client}; only
    consulted when [Config.client_failover_us] > 0. *)
val set_dc_live : t -> (int -> bool) -> unit

(** Data center the session is currently attached to. *)
val dc : t -> int

(** The client's causal past (its [pastVec]). *)
val past : t -> Vclock.Vc.t

val lamport : t -> int
val addr : t -> Msg.addr

(** Begin a transaction at a coordinator of the current DC. [strong]
    requests certification at commit (the configuration's mode may
    override it, see {!Config.effective_strong}); [label] tags the
    transaction for per-type latency measurement. *)
val start : ?label:string -> ?strong:bool -> t -> unit

(** Read a key within the current transaction. [cls] is the operation
    class used by the conflict relation. Blocks the fiber for the
    simulated round trips. *)
val read : ?cls:int -> t -> Store.Keyspace.key -> Crdt.value

(** {!read} projected to an integer (registers/counters; absent reads
    as 0). *)
val read_int : ?cls:int -> t -> Store.Keyspace.key -> int

(** {!read} projected to a set. *)
val read_set : ?cls:int -> t -> Store.Keyspace.key -> int list

(** Buffer an update within the current transaction. *)
val update : ?cls:int -> t -> Store.Keyspace.key -> Crdt.op -> unit

(** Commit the current transaction: causal transactions always commit;
    strong transactions may abort on a conflict. On commit, the
    client's causal past advances to the commit vector. Raises
    {!Overloaded} when admission control shed a strong commit. *)
val commit : t -> [ `Committed of Vclock.Vc.t | `Aborted ]

(** {!commit}, raising {!Aborted} instead of returning [`Aborted]. *)
val commit_exn : t -> Vclock.Vc.t

(** On-demand durability (§5.6): returns once every transaction this
    session has observed is uniform, hence durable under up to [f]
    data-center failures. Requires a mode that tracks uniformity — under
    [Cure_ft] (which has no uniformity mechanism, the very gap §4 points
    out in Cure) this call never returns. *)
val uniform_barrier : t -> unit

(** Attach the session to another data center; blocks until that DC's
    state contains the session's causal past. *)
val attach : t -> dc:int -> unit

(** Consistent migration (§4): {!uniform_barrier} at the origin, then
    {!attach} at the destination. *)
val migrate : t -> dc:int -> unit

(** Run a whole transaction function, re-executing it when a strong
    commit aborts (as the paper's clients do, §6.2). Raises {!Aborted}
    after [max_retries]. *)
val run_txn :
  ?label:string -> ?strong:bool -> ?max_retries:int -> t -> (t -> 'a) -> 'a
