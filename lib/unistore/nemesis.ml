(* Nemesis: scheduled fault injection against a running deployment.

   A schedule is a list of (time, event) pairs — crash a DC, cut or heal
   a partition, degrade or restore a link, change the loss rate — that
   the driver injects while the workload runs. Schedules are either
   scripted (tests pin exact adversities) or generated from a seed
   ([random_schedule]), so every nemesis run replays deterministically.

   The adversary is bounded the way the paper's model demands: at most
   [f] DCs crash, and a [Heal_all] event ends the schedule, after which
   the network is reliable again — the regime in which UniStore promises
   that pending strong transactions decide and all correct DCs
   converge. *)

module Network = Net.Network
module Engine = Sim.Engine
module Rng = Sim.Rng

type event =
  | Crash_dc of int  (* whole-DC failure (permanent unless recovered) *)
  | Recover_dc of int  (* restart a crashed DC through the rejoin protocol *)
  | Partition of int * int  (* cut the bidirectional link between DCs *)
  | Heal of int * int
  | Heal_all  (* heal every partition and restore every degraded link *)
  | Degrade of { src : int; dst : int; extra_us : int }  (* gray link *)
  | Restore of { src : int; dst : int }
  | Set_drop of float  (* change the steady-state loss rate *)
  (* Node-level failure domain (persistence deployments): one replica
     process crashes and restarts from its own disk while its DC stays
     up. Do not mix with a [Crash_dc] of the same DC in one schedule —
     a node restarted into a crashed DC cannot catch up. *)
  | Crash_node of { dc : int; part : int }
  | Restart_node of { dc : int; part : int }
  | Slow_disk of { dc : int; part : int; factor : int }  (* gray disk *)
  | Restore_disk of { dc : int; part : int }

type step = { at_us : int; ev : event }

type schedule = step list

let pp_event ppf = function
  | Crash_dc dc -> Fmt.pf ppf "crash dc%d" dc
  | Recover_dc dc -> Fmt.pf ppf "recover dc%d" dc
  | Partition (a, b) -> Fmt.pf ppf "partition dc%d <-> dc%d" a b
  | Heal (a, b) -> Fmt.pf ppf "heal dc%d <-> dc%d" a b
  | Heal_all -> Fmt.pf ppf "heal all"
  | Degrade { src; dst; extra_us } ->
      Fmt.pf ppf "degrade dc%d -> dc%d (+%dus)" src dst extra_us
  | Restore { src; dst } -> Fmt.pf ppf "restore dc%d -> dc%d" src dst
  | Set_drop p -> Fmt.pf ppf "set drop %.3f" p
  | Crash_node { dc; part } -> Fmt.pf ppf "crash node %d.%d" dc part
  | Restart_node { dc; part } -> Fmt.pf ppf "restart node %d.%d" dc part
  | Slow_disk { dc; part; factor } ->
      Fmt.pf ppf "slow disk %d.%d (x%d)" dc part factor
  | Restore_disk { dc; part } -> Fmt.pf ppf "restore disk %d.%d" dc part

let pp_step ppf { at_us; ev } = Fmt.pf ppf "%8dus %a" at_us pp_event ev

(* ------------------------------------------------------------------ *)
(* Schedule (de)serialization: the corpus / repro interchange format of
   the exploration harness. One JSON object per step, the event encoded
   by an ["ev"] discriminator plus its fields, so schedules replay
   byte-deterministically from a checked-in file. *)

module Json = Sim.Json

let event_to_json = function
  | Crash_dc dc -> [ ("ev", Json.String "crash_dc"); ("dc", Json.Int dc) ]
  | Recover_dc dc -> [ ("ev", Json.String "recover_dc"); ("dc", Json.Int dc) ]
  | Partition (a, b) ->
      [ ("ev", Json.String "partition"); ("a", Json.Int a); ("b", Json.Int b) ]
  | Heal (a, b) ->
      [ ("ev", Json.String "heal"); ("a", Json.Int a); ("b", Json.Int b) ]
  | Heal_all -> [ ("ev", Json.String "heal_all") ]
  | Degrade { src; dst; extra_us } ->
      [
        ("ev", Json.String "degrade");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("extra_us", Json.Int extra_us);
      ]
  | Restore { src; dst } ->
      [
        ("ev", Json.String "restore");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
      ]
  | Set_drop p -> [ ("ev", Json.String "set_drop"); ("p", Json.Float p) ]
  | Crash_node { dc; part } ->
      [
        ("ev", Json.String "crash_node");
        ("dc", Json.Int dc);
        ("part", Json.Int part);
      ]
  | Restart_node { dc; part } ->
      [
        ("ev", Json.String "restart_node");
        ("dc", Json.Int dc);
        ("part", Json.Int part);
      ]
  | Slow_disk { dc; part; factor } ->
      [
        ("ev", Json.String "slow_disk");
        ("dc", Json.Int dc);
        ("part", Json.Int part);
        ("factor", Json.Int factor);
      ]
  | Restore_disk { dc; part } ->
      [
        ("ev", Json.String "restore_disk");
        ("dc", Json.Int dc);
        ("part", Json.Int part);
      ]

let step_to_json { at_us; ev } =
  Json.Obj (("at_us", Json.Int at_us) :: event_to_json ev)

let schedule_to_json sched = Json.List (List.map step_to_json sched)

let step_of_json j =
  let int k =
    match Option.bind (Json.member k j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Fmt.str "step: missing or non-integer %S" k)
  in
  let float k =
    match Option.bind (Json.member k j) Json.to_float_opt with
    | Some v -> Ok v
    | None -> Error (Fmt.str "step: missing or non-numeric %S" k)
  in
  let ( let* ) = Result.bind in
  let* at_us = int "at_us" in
  let* ev =
    match Option.bind (Json.member "ev" j) Json.to_string_opt with
    | None -> Error "step: missing \"ev\" discriminator"
    | Some "crash_dc" ->
        let* dc = int "dc" in
        Ok (Crash_dc dc)
    | Some "recover_dc" ->
        let* dc = int "dc" in
        Ok (Recover_dc dc)
    | Some "partition" ->
        let* a = int "a" in
        let* b = int "b" in
        Ok (Partition (a, b))
    | Some "heal" ->
        let* a = int "a" in
        let* b = int "b" in
        Ok (Heal (a, b))
    | Some "heal_all" -> Ok Heal_all
    | Some "degrade" ->
        let* src = int "src" in
        let* dst = int "dst" in
        let* extra_us = int "extra_us" in
        Ok (Degrade { src; dst; extra_us })
    | Some "restore" ->
        let* src = int "src" in
        let* dst = int "dst" in
        Ok (Restore { src; dst })
    | Some "set_drop" ->
        let* p = float "p" in
        Ok (Set_drop p)
    | Some "crash_node" ->
        let* dc = int "dc" in
        let* part = int "part" in
        Ok (Crash_node { dc; part })
    | Some "restart_node" ->
        let* dc = int "dc" in
        let* part = int "part" in
        Ok (Restart_node { dc; part })
    | Some "slow_disk" ->
        let* dc = int "dc" in
        let* part = int "part" in
        let* factor = int "factor" in
        Ok (Slow_disk { dc; part; factor })
    | Some "restore_disk" ->
        let* dc = int "dc" in
        let* part = int "part" in
        Ok (Restore_disk { dc; part })
    | Some other -> Error (Fmt.str "step: unknown event %S" other)
  in
  Ok { at_us; ev }

let schedule_of_json j =
  match Json.to_list_opt j with
  | None -> Error "schedule: expected a JSON list of steps"
  | Some steps ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest -> (
            match step_of_json s with
            | Ok step -> go (step :: acc) rest
            | Error e -> Error e)
      in
      go [] steps

(* ------------------------------------------------------------------ *)
(* Schedule validation: the footguns that used to be doc warnings are
   rejected as errors before anything is scheduled.                     *)

let is_node_event = function
  | Crash_node _ | Restart_node _ | Slow_disk _ | Restore_disk _ -> true
  | _ -> false

let validate cfg (sched : schedule) =
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  let rec sorted = function
    | s1 :: (s2 :: _ as rest) ->
        if s1.at_us > s2.at_us then
          err "steps out of order: %a scheduled after %a" pp_step s1 pp_step s2
        else sorted rest
    | _ -> Ok ()
  in
  let ( let* ) = Result.bind in
  let* () =
    match List.find_opt (fun s -> s.at_us < 0) sched with
    | Some s -> err "negative step time: %a" pp_step s
    | None -> Ok ()
  in
  let* () = sorted sched in
  (* a partition can make a live leader falsely suspected, so the
     contested-ballot safety bound applies (see Config.default): two
     f+1 certification quorums must intersect *)
  let* () =
    if
      List.exists
        (fun { ev; _ } -> match ev with Partition _ -> true | _ -> false)
        sched
      && Config.dcs cfg > (2 * cfg.Config.f) + 1
    then
      Error
        "partitions with dcs > 2f+1 allow split-brain certification; raise f \
         or shrink the topology"
    else Ok ()
  in
  (* node-level events need a disk to survive on *)
  let* () =
    if (not cfg.Config.persistence) && List.exists (fun s -> is_node_event s.ev) sched
    then
      err "node-level events need Config.persistence (a node without a disk \
           cannot restart locally)"
    else Ok ()
  in
  (* the DC failure domain destroys disks: a node restarted into a
     crashed DC cannot catch up, so the two domains must not mix on one
     DC in one schedule *)
  let crashed_dcs =
    List.filter_map
      (fun s -> match s.ev with Crash_dc dc -> Some dc | _ -> None)
      sched
  in
  let* () =
    match
      List.find_opt
        (fun s ->
          match s.ev with
          | Crash_node { dc; _ } | Restart_node { dc; _ } ->
              List.mem dc crashed_dcs
          | _ -> false)
        sched
    with
    | Some s ->
        err "%a mixes the node and DC failure domains: the same schedule \
             crashes its whole DC, which destroys the disks"
          pp_step s
    | None -> Ok ()
  in
  (* every restart must restart something: a Restart_node with no prior
     Crash_node of the same node is a schedule bug, not a no-op *)
  let rec restarts down = function
    | [] -> Ok ()
    | { ev = Crash_node { dc; part }; _ } :: rest ->
        restarts ((dc, part) :: down) rest
    | ({ ev = Restart_node { dc; part }; _ } as s) :: rest ->
        if List.mem (dc, part) down then
          restarts (List.filter (( <> ) (dc, part)) down) rest
        else err "%a has no prior crash of node %d.%d" pp_step s dc part
    | _ :: rest -> restarts down rest
  in
  restarts [] sched

(* Inject one event now. *)
let inject_event sys ev =
  let net = System.network sys in
  let trace = System.trace sys in
  (* lazily: a node-only schedule must not flip inter-DC links onto the
     lossy transport just by being injected *)
  let faults () =
    match System.faults sys with
    | Some f -> f
    | None -> Network.enable_faults net
  in
  Sim.Trace.emitf trace ~source:"nemesis" ~kind:"inject" "%a" pp_event ev;
  match ev with
  | Crash_dc dc ->
      ignore (faults ());
      System.fail_dc sys dc
  | Recover_dc dc ->
      ignore (faults ());
      System.recover_dc sys dc
  | Partition (a, b) -> Net.Faults.partition (faults ()) a b
  | Heal (a, b) -> Net.Faults.heal (faults ()) a b
  | Heal_all ->
      let faults = faults () in
      Net.Faults.heal_all faults;
      let dcs = Net.Topology.dcs (Network.topology net) in
      for src = 0 to dcs - 1 do
        for dst = 0 to dcs - 1 do
          Net.Faults.clear_degrade faults ~src ~dst
        done
      done
  | Degrade { src; dst; extra_us } ->
      Net.Faults.degrade_link (faults ()) ~src ~dst ~extra_us
  | Restore { src; dst } -> Net.Faults.clear_degrade (faults ()) ~src ~dst
  | Set_drop p -> Net.Faults.set_drop (faults ()) p
  | Crash_node { dc; part } -> System.fail_node sys ~dc ~part
  | Restart_node { dc; part } -> System.restart_node sys ~dc ~part
  | Slow_disk { dc; part; factor } -> System.set_disk_slow sys ~dc ~part ~factor
  | Restore_disk { dc; part } -> System.set_disk_slow sys ~dc ~part ~factor:1

(* Schedule every step of [sched] onto the system's engine. Call before
   [System.run]. *)
let inject sys (sched : schedule) =
  (match validate (System.cfg sys) sched with
  | Ok () -> ()
  | Error e -> invalid_arg ("Nemesis.inject: " ^ e));
  let eng = System.engine sys in
  let label = Sim.Prof.label (Engine.prof eng) "nemesis/inject" in
  List.iter
    (fun { at_us; ev } ->
      Engine.schedule_at eng ~label ~time:at_us (fun () ->
          inject_event sys ev))
    sched

(* ------------------------------------------------------------------ *)
(* Scripted adversity-during-recovery fragments.                        *)

(* Combine scripted fragments into one time-ordered schedule. *)
let merge scheds =
  List.sort (fun s1 s2 -> compare s1.at_us s2.at_us) (List.concat scheds)

(* Cut the rejoiner off from one of its sync peers for a window — the
   peer cannot answer snapshot requests or pulls, so the rejoin must
   drop it from the round and finish with the others. *)
let partition_during_sync ~rejoiner ~peer ~from_us ~until_us =
  [
    { at_us = from_us; ev = Partition (rejoiner, peer) };
    { at_us = until_us; ev = Heal (rejoiner, peer) };
  ]

(* Gray out both directions of the rejoiner <-> peer link: a one-way
   degradation would stall either the pull or its reply, and the sync
   must treat sustained silence the same either way. *)
let degrade_during_sync ~rejoiner ~peer ~extra_us ~from_us ~until_us =
  [
    { at_us = from_us; ev = Degrade { src = peer; dst = rejoiner; extra_us } };
    { at_us = from_us; ev = Degrade { src = rejoiner; dst = peer; extra_us } };
    { at_us = until_us; ev = Restore { src = peer; dst = rejoiner } };
    { at_us = until_us; ev = Restore { src = rejoiner; dst = peer } };
  ]

(* Crash a polled sibling mid-round; pair with the caller's own
   recovery step if the sibling should come back. *)
let crash_during_sync ~peer ~at_us = [ { at_us; ev = Crash_dc peer } ]

(* ------------------------------------------------------------------ *)
(* Scripted node-level fragments (persistence deployments).             *)

(* Rolling restart of a whole DC: node [0..partitions-1] in turn
   crashes at [start_us + i*stagger_us] and restarts [down_us] later.
   With [stagger_us > down_us] at most one node is down at a time — the
   ops-procedure roll the rolling bench drives under live traffic. *)
let rolling_restart ~dc ~partitions ~start_us ~down_us ~stagger_us =
  List.concat
    (List.init partitions (fun part ->
         let at = start_us + (part * stagger_us) in
         [
           { at_us = at; ev = Crash_node { dc; part } };
           { at_us = at + down_us; ev = Restart_node { dc; part } };
         ]))

(* Supervisor-style restart loop: the same node crash/restarts [cycles]
   times, [period_us] apart — the flapping process a broken supervisor
   produces. Each cycle must recover from whatever the previous one
   left on disk. *)
let restart_loop ~dc ~part ~start_us ~cycles ~down_us ~period_us =
  List.concat
    (List.init cycles (fun i ->
         let at = start_us + (i * period_us) in
         [
           { at_us = at; ev = Crash_node { dc; part } };
           { at_us = at + down_us; ev = Restart_node { dc; part } };
         ]))

(* Gray disk: one node's fsyncs run [factor] times slower for a window
   (firmware stall, dying SSD). The node stays up — acks gated on
   fsync simply slow down. *)
let gray_disk ~dc ~part ~factor ~from_us ~until_us =
  [
    { at_us = from_us; ev = Slow_disk { dc; part; factor } };
    { at_us = until_us; ev = Restore_disk { dc; part } };
  ]

(* ------------------------------------------------------------------ *)
(* Seeded random schedules.                                             *)

(* Crash at most [max_crashes] DCs (never the majority — the paper's
   bound is f), cut and heal a few transient partitions, degrade a few
   links, and finish with [Heal_all] before [horizon_us] so liveness
   assertions apply. The same seed always yields the same schedule. *)
let random_schedule ~seed ~dcs ~horizon_us ?(max_crashes = 1)
    ?(max_partitions = 2) ?(max_degrades = 2) ?(max_recoveries = 0)
    ?(max_sync_partitions = 0) ?(max_sync_degrades = 0)
    ?(max_node_crashes = 0) ?(node_partitions = 1) () =
  if dcs < 2 then invalid_arg "Nemesis.random_schedule: need at least 2 DCs";
  if horizon_us <= 0 then invalid_arg "Nemesis.random_schedule: bad horizon";
  let rng = Rng.create (seed lxor 0x4e454d) in
  (* faults start in the second quarter-to-5/8ths of the run: the system
     warms up first, nothing new begins after the final heal, and
     everything settles before the horizon *)
  let lo = horizon_us / 4 and hi = 3 * horizon_us / 8 in
  let t () = lo + Rng.int rng (max 1 hi) in
  let steps = ref [] in
  let push at_us ev = steps := { at_us; ev } :: !steps in
  (* transient partitions, each healing after a bounded interval *)
  let n_parts = if max_partitions <= 0 then 0 else Rng.int rng (max_partitions + 1) in
  for _ = 1 to n_parts do
    let a = Rng.int rng dcs in
    let b = (a + 1 + Rng.int rng (dcs - 1)) mod dcs in
    let start = t () in
    let len = horizon_us / 16 + Rng.int rng (max 1 (horizon_us / 8)) in
    push start (Partition (a, b));
    push (start + len) (Heal (a, b))
  done;
  (* gray links *)
  let n_deg = if max_degrades <= 0 then 0 else Rng.int rng (max_degrades + 1) in
  for _ = 1 to n_deg do
    let src = Rng.int rng dcs in
    let dst = (src + 1 + Rng.int rng (dcs - 1)) mod dcs in
    let start = t () in
    let len = horizon_us / 16 + Rng.int rng (max 1 (horizon_us / 8)) in
    push start (Degrade { src; dst; extra_us = 5_000 + Rng.int rng 45_000 });
    push (start + len) (Restore { src; dst })
  done;
  (* crashes: distinct DCs, at most max_crashes, never all *)
  let n_crash = min max_crashes (dcs - 1) in
  let n_crash = if n_crash <= 0 then 0 else Rng.int rng (n_crash + 1) in
  let crashed = Array.make dcs false in
  let crash_times = ref [] in
  for _ = 1 to n_crash do
    let dc = Rng.int rng dcs in
    if not crashed.(dc) then begin
      crashed.(dc) <- true;
      let at = t () in
      crash_times := (dc, at) :: !crash_times;
      push at (Crash_dc dc)
    end
  done;
  (* crash/recover cycles: the first [max_recoveries] crashed DCs come
     back through the rejoin protocol, a bounded interval after the
     crash and no later than the final heal, leaving the last quarter
     of the run for catch-up and convergence. The default of 0 draws
     nothing from the Rng, preserving the schedules of existing seeds. *)
  let recoveries = ref [] in
  if max_recoveries > 0 then begin
    let budget = ref max_recoveries in
    List.iter
      (fun (dc, at) ->
        if !budget > 0 then begin
          decr budget;
          let delay =
            (horizon_us / 16) + Rng.int rng (max 1 (horizon_us / 16))
          in
          recoveries := (dc, at + delay) :: !recoveries;
          push (at + delay) (Recover_dc dc)
        end)
      (List.rev !crash_times)
  end;
  (* Overlap modes: adversity aimed at the *recovery itself*. For each
     crash/recover cycle, cut partitions ([max_sync_partitions]) and
     inject gray links ([max_sync_degrades]) between the recovering DC
     and its sync peers, starting inside the crash→recover window so the
     fault spans the snapshot/pull rounds, and lasting until the final
     [Heal_all] — the whole pull window. The defaults of 0 draw nothing
     from the Rng, preserving every existing seed's schedule (all new
     draws also come after every pre-existing one). *)
  if (max_sync_partitions > 0 || max_sync_degrades > 0) && dcs > 1 then
    List.iter
      (fun (dc, recover_at) ->
        let overlap_start crash_at =
          let window = max 1 (recover_at - crash_at) in
          crash_at + Rng.int rng window
        in
        let crash_at =
          match List.assoc_opt dc !crash_times with
          | Some at -> at
          | None -> recover_at
        in
        let peer () = (dc + 1 + Rng.int rng (dcs - 1)) mod dcs in
        for _ = 1 to max_sync_partitions do
          push (overlap_start crash_at) (Partition (dc, peer ()))
          (* healed by the final Heal_all *)
        done;
        for _ = 1 to max_sync_degrades do
          let p = peer () in
          let extra_us = 100_000 + Rng.int rng 400_000 in
          let at = overlap_start crash_at in
          push at (Degrade { src = p; dst = dc; extra_us });
          push at (Degrade { src = dc; dst = p; extra_us })
          (* restored by the final Heal_all *)
        done)
      (List.rev !recoveries);
  (* Node-level crash/restart cycles (persistence deployments; pass
     [max_crashes:0] — node restarts into a crashed DC cannot catch
     up). Drawn after every pre-existing draw so older seeds keep their
     schedules; each node restarts well before the final heal. *)
  if max_node_crashes > 0 then begin
    (* two cycles may hit the same node, but their down windows must not
       interleave — a restart of an already-restarted node is the
       schedule bug [validate] rejects. A clashing draw is skipped (not
       redrawn, keeping every other seed's schedule byte-identical). *)
    let busy = ref [] in
    for _ = 1 to max_node_crashes do
      let dc = Rng.int rng dcs in
      let part = Rng.int rng (max 1 node_partitions) in
      let at = t () in
      let down = (horizon_us / 32) + Rng.int rng (max 1 (horizon_us / 16)) in
      let clashes =
        List.exists
          (fun (n, s, e) -> n = (dc, part) && at <= e && s <= at + down)
          !busy
      in
      if not clashes then begin
        busy := ((dc, part), at, at + down) :: !busy;
        push at (Crash_node { dc; part });
        push (at + down) (Restart_node { dc; part })
      end
    done
  end;
  (* final heal, comfortably before the horizon *)
  push (3 * horizon_us / 4) Heal_all;
  List.sort (fun s1 s2 -> compare s1.at_us s2.at_us) !steps
