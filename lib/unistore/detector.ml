(* Heartbeat-based Ω failure detector (one instance per deployment, one
   detector node per data center).

   Replaces the oracle that previously wired [System.fail_dc] straight to
   [Replica.suspect]: each DC now runs a detector node that broadcasts
   [Msg.Fd_ping] to its peers every [fd_period_us] and suspects any DC it
   has not heard from for [detection_delay_us]. Suspicion is a *local,
   fallible* judgement — a transient partition or a gray link produces
   false suspicions, which is precisely the regime Ω permits: eventually,
   once the network stabilises, correct DCs stop being suspected
   ([unsuspect] fires when their pings resume) and all observers converge
   on trusting the same leader.

   The detector only observes and notifies; what trust means is the
   replicas' business ([Replica.suspect] / [Replica.unsuspect] and the
   certification ballot machinery). *)

module Network = Net.Network
module Engine = Sim.Engine

(* One observer's view of the world. *)
type view = {
  last_heard : int array;  (* dc -> time of the last ping received *)
  suspected : bool array;
}

type t = {
  cfg : Config.t;
  eng : Engine.t;
  net : Msg.t Network.t;
  addrs : Msg.addr array;  (* detector node of each DC *)
  views : view array;  (* indexed by observer DC *)
  gens : int array;  (* per-DC loop generation (crash/recover cycles) *)
  trace : Sim.Trace.t;
  on_suspect : observer:int -> dc:int -> unit;
  on_restore : observer:int -> dc:int -> unit;
  mutable suspicions : int;
  mutable false_suspicions : int;  (* suspected a DC that had not crashed *)
  mutable restorations : int;
  (* the same transitions, in the metrics registry *)
  m_suspicions : Sim.Metrics.counter;
  m_false_suspicions : Sim.Metrics.counter;
  m_restorations : Sim.Metrics.counter;
}

let suspected t ~observer ~dc = t.views.(observer).suspected.(dc)

(* The leader this observer's Ω outputs: first non-suspected DC starting
   from the configured home leader (same rule as [Replica.preferred_leader],
   evaluated on the detector's view). *)
let preferred t ~observer =
  let n = Config.dcs t.cfg in
  let home = t.cfg.Config.leader_dc in
  let v = t.views.(observer) in
  let rec go k =
    if k >= n then home
    else
      let dc = (home + k) mod n in
      if v.suspected.(dc) then go (k + 1) else dc
  in
  go 0

let suspicions t = t.suspicions
let false_suspicions t = t.false_suspicions
let restorations t = t.restorations

let mark_suspected t ~observer ~dc =
  let v = t.views.(observer) in
  if not v.suspected.(dc) then begin
    v.suspected.(dc) <- true;
    t.suspicions <- t.suspicions + 1;
    Sim.Metrics.incr t.m_suspicions;
    if not (Network.dc_failed t.net dc) then begin
      t.false_suspicions <- t.false_suspicions + 1;
      Sim.Metrics.incr t.m_false_suspicions
    end;
    Sim.Trace.emitf t.trace ~source:"fd" ~kind:"suspect"
      "dc%d suspects dc%d%s" observer dc
      (if Network.dc_failed t.net dc then "" else " (falsely)");
    t.on_suspect ~observer ~dc
  end

let heard_from t ~observer ~dc =
  let v = t.views.(observer) in
  v.last_heard.(dc) <- Engine.now t.eng;
  if v.suspected.(dc) then begin
    v.suspected.(dc) <- false;
    t.restorations <- t.restorations + 1;
    Sim.Metrics.incr t.m_restorations;
    Sim.Trace.emitf t.trace ~source:"fd" ~kind:"unsuspect"
      "dc%d rehabilitates dc%d" observer dc;
    t.on_restore ~observer ~dc
  end

let handle t ~observer msg =
  match msg with
  | Msg.Fd_ping { from_dc } -> heard_from t ~observer ~dc:from_dc
  | _ -> ()  (* detector nodes receive only pings *)

(* Arm one DC's detector loops: the ping broadcast and the silence check.
   Both die when the DC crashes; [revive] re-arms them under a fresh
   generation (the generation check retires a pre-crash loop that never
   got to observe the crash because recovery was quicker than its
   period). *)
let arm t dc =
  let period = t.cfg.Config.fd_period_us in
  let timeout = t.cfg.Config.detection_delay_us in
  let dcs = Config.dcs t.cfg in
  t.gens.(dc) <- t.gens.(dc) + 1;
  let gen = t.gens.(dc) in
  let live () = t.gens.(dc) = gen && not (Network.dc_failed t.net dc) in
  (* stagger DCs so pings do not cross the WAN in lock-step *)
  let phase = 1 + (dc * period / dcs) in
  let lab name =
    if Sim.Prof.is_on (Engine.prof t.eng) then
      Sim.Prof.label (Engine.prof t.eng) name
    else Sim.Prof.none
  in
  Engine.every t.eng ~label:(lab "detector/ping") ~period ~phase (fun () ->
      if not (live ()) then false
      else begin
        for peer = 0 to dcs - 1 do
          if peer <> dc then
            Network.send t.net ~src:t.addrs.(dc) ~dst:t.addrs.(peer)
              (Msg.Fd_ping { from_dc = dc })
        done;
        true
      end);
  Engine.every t.eng ~label:(lab "detector/check") ~period
    ~phase:(phase + (period / 2)) (fun () ->
      if not (live ()) then false
      else begin
        let v = t.views.(dc) in
        let now = Engine.now t.eng in
        for peer = 0 to dcs - 1 do
          if
            peer <> dc
            && (not v.suspected.(peer))
            && now - v.last_heard.(peer) > timeout
          then mark_suspected t ~observer:dc ~dc:peer
        done;
        true
      end)

(* The DC crashed: retire its ping/check loops *eagerly* by bumping the
   generation, instead of waiting for a loop's next firing to notice
   [dc_failed]. Without the bump, a pre-crash check loop scheduled just
   before the crash can survive a fast crash→recover cycle and fire
   against the recovered incarnation with the stale pre-crash view —
   producing suspicions the new incarnation never observed grounds for.
   The view itself is left in place; [revive] clears it. *)
let crash t ~dc = t.gens.(dc) <- t.gens.(dc) + 1

(* The DC recovered from a crash: its detector node restarts with an
   all-clear view (crashes lose memory; real failures elsewhere are
   re-detected within the detection delay) and resumed ping loops. Peers
   need no call — their Ω rehabilitates the DC when its pings resume. *)
let revive t ~dc =
  let v = t.views.(dc) in
  let now = Engine.now t.eng in
  for peer = 0 to Config.dcs t.cfg - 1 do
    v.last_heard.(peer) <- now;
    v.suspected.(peer) <- false
  done;
  arm t dc

let create cfg eng net ~trace ~metrics ~on_suspect ~on_restore =
  let dcs = Config.dcs cfg in
  let t =
    {
      cfg;
      eng;
      net;
      addrs = Array.make dcs (-1);
      views =
        Array.init dcs (fun _ ->
            {
              last_heard = Array.make dcs 0;
              suspected = Array.make dcs false;
            });
      gens = Array.make dcs 0;
      trace;
      on_suspect;
      on_restore;
      suspicions = 0;
      false_suspicions = 0;
      restorations = 0;
      m_suspicions = Sim.Metrics.counter metrics "fd_suspicions_total";
      m_false_suspicions =
        Sim.Metrics.counter metrics "fd_false_suspicions_total";
      m_restorations = Sim.Metrics.counter metrics "fd_restorations_total";
    }
  in
  for dc = 0 to dcs - 1 do
    t.addrs.(dc) <-
      Network.register net ~dc ~name:"detector"
        ~cost:(Msg.cost cfg.Config.costs)
        (fun msg -> handle t ~observer:dc msg)
  done;
  for dc = 0 to dcs - 1 do
    arm t dc
  done;
  t
