(* Client sessions (Algorithm A1).

   A client runs as a simulation fiber: its calls block in direct style
   on replies from its coordinator while the rest of the simulation
   proceeds. The client maintains its causal past [pastVec] and a Lamport
   clock, provides read-your-writes across transactions through the
   snapshot computation, and supports on-demand durability
   (uniform_barrier) and migration (attach). *)

module Vc = Vclock.Vc
module Network = Net.Network
module Engine = Sim.Engine
module Fiber = Sim.Fiber
module Ivar = Sim.Fiber.Ivar

type t = {
  id : int;
  eng : Engine.t;
  net : Msg.t Network.t;
  cfg : Config.t;
  history : History.t;
  trace : Sim.Trace.t;
  trace_src : string;
  metrics : Sim.Metrics.t;
  (* cached metrics handles (shared, interned in the system registry) *)
  h_phase_execute : Sim.Metrics.histogram;
  h_lat_causal : Sim.Metrics.histogram;
  h_lat_strong : Sim.Metrics.histogram;
  c_committed : Sim.Metrics.counter;
  c_aborted : Sim.Metrics.counter;
  rng : Sim.Rng.t;
  mutable dc : int;
  mutable addr : Msg.addr;
  mutable replicas_of_dc : int -> Msg.addr array;
  mutable past : Vc.t;
  mutable lc : int;
  mutable req : int;
  mutable sq : int;
  (* which DCs a failover may target; installed by [System.new_client] *)
  mutable dc_live : int -> bool;
  (* a pending entry resolves to [Some reply], or [None] when failover
     is enabled and the request timed out (its DC presumed crashed) *)
  pending : (int, Msg.t option Ivar.t) Hashtbl.t;
  (* current transaction *)
  mutable cur : cur option;
}

and cur = {
  c_tid : Types.tid;
  c_coord : Msg.addr;
  c_snap : Vc.t;
  c_label : string;
  c_strong : bool;
  c_start_us : int;
  mutable c_reads : (Store.Keyspace.key * Crdt.value) list;
  mutable c_writes : Types.write list;
  mutable c_ops : Types.opdesc list;
}

exception Aborted

(* The coordinator shed the strong commit before certification
   (admission control): the transaction took no effect and may be
   retried. Distinct from [Aborted] so open-loop drivers can count shed
   load instead of re-executing. *)
exception Overloaded

let create ~id ~eng ~net ~cfg ~history ~trace ~metrics ~dc ~replicas_of_dc =
  let t =
    {
      id;
      eng;
      net;
      cfg;
      history;
      trace;
      trace_src = Fmt.str "client %d" id;
      metrics;
      h_phase_execute =
        Sim.Metrics.histogram metrics
          ~labels:[ ("phase", "execute") ]
          "strong_phase_us";
      h_lat_causal =
        Sim.Metrics.histogram metrics
          ~labels:[ ("class", "causal") ]
          "txn_latency_us";
      h_lat_strong =
        Sim.Metrics.histogram metrics
          ~labels:[ ("class", "strong") ]
          "txn_latency_us";
      c_committed = Sim.Metrics.counter metrics "txn_committed_total";
      c_aborted = Sim.Metrics.counter metrics "txn_aborted_total";
      rng = Sim.Rng.split (Engine.rng eng) ~id:(id + 1_000_000);
      dc;
      addr = -1;
      replicas_of_dc;
      past = Vc.create ~dcs:(Config.dcs cfg);
      lc = 0;
      req = 0;
      sq = 0;
      dc_live = (fun _ -> true);
      pending = Hashtbl.create 8;
      cur = None;
    }
  in
  let handler msg =
    let req =
      match msg with
      | Msg.R_started { req; _ }
      | Msg.R_value { req; _ }
      | Msg.R_committed { req; _ }
      | Msg.R_strong { req; _ }
      | Msg.R_ok { req }
      | Msg.R_overloaded { req } ->
          Some req
      | _ -> None
    in
    match req with
    | None -> ()
    | Some req -> (
        match Hashtbl.find_opt t.pending req with
        | None -> ()
        | Some iv ->
            Hashtbl.remove t.pending req;
            Ivar.fill eng iv (Some msg))
  in
  (* ~client:true — the session lives *near* the DC, not *in* it: a DC
     crash must not kill the client, or it could never fail over *)
  t.addr <-
    Network.register net ~client:true ~name:"client" ~dc
      ~cost:(Msg.cost cfg.Config.costs)
      handler;
  t

let id t = t.id
let in_flight t = Hashtbl.length t.pending > 0
let dc t = t.dc
let past t = t.past
let lamport t = t.lc
let addr t = t.addr

let set_dc_live t f = t.dc_live <- f

let pick_coordinator t =
  let replicas = t.replicas_of_dc t.dc in
  replicas.(Sim.Rng.int t.rng (Array.length replicas))

(* One round trip, without failover: blocks the calling fiber until the
   reply, or — when failover is enabled ([client_failover_us] > 0) —
   until the timeout, returning [None] (the request or its reply died
   with a crashed DC; a reply arriving after the timeout is dropped). *)
let call_raw t dst msg_of_req =
  t.req <- t.req + 1;
  let req = t.req in
  let iv = Ivar.create () in
  Hashtbl.replace t.pending req iv;
  Network.send t.net ~src:t.addr ~dst (msg_of_req req);
  let timeout = t.cfg.Config.client_failover_us in
  if timeout > 0 then
    Engine.schedule t.eng ~delay:timeout (fun () ->
        if Hashtbl.mem t.pending req then begin
          Hashtbl.remove t.pending req;
          Ivar.fill t.eng iv None
        end);
  Fiber.await iv

let sleep t us =
  let iv = Ivar.create () in
  Engine.schedule t.eng ~delay:us (fun () -> Ivar.fill t.eng iv ());
  Fiber.await iv

(* DC failover: the session DC stopped answering, so presume it crashed
   and migrate to a live DC that carries the causal past. The new
   coordinator blocks the R_ok until its knownVec covers [pastVec]
   (the CL_ATTACH wait), so causality holds across the switch. Caveat:
   if the past references transactions the crashed DC never replicated,
   that wait never completes — the sacrifice whole-DC crashes force. *)
let rec failover t =
  let dcs = Config.dcs t.cfg in
  let rec pick k =
    if k >= dcs then None
    else
      let dc = (t.dc + k) mod dcs in
      if t.dc_live dc then Some dc else pick (k + 1)
  in
  match pick 1 with
  | None ->
      (* every other DC is down or still catching up: wait and retry *)
      sleep t t.cfg.Config.client_failover_us;
      failover t
  | Some dc ->
      Sim.Trace.emitf t.trace ~source:t.trace_src ~kind:"failover"
        "dc%d -> dc%d" t.dc dc;
      (* interned on first failover only, keeping crash-free runs'
         metric snapshots (and golden artifacts) unchanged *)
      Sim.Metrics.incr
        (Sim.Metrics.counter t.metrics "client_failovers_total");
      t.dc <- dc;
      let dst = pick_coordinator t in
      (match
         call_raw t dst (fun req ->
             Msg.C_failover { client = t.addr; req; past = t.past })
       with
      | Some (Msg.R_ok _) -> t.lc <- t.lc + 1
      | Some m ->
          invalid_arg ("Client.failover: unexpected reply " ^ Msg.kind m)
      | None -> failover t)

(* Round-trip to a replica; blocks the calling fiber. With failover
   enabled, a timed-out request migrates the session to a live DC and
   aborts the surrounding transaction ([run_txn] re-executes it there);
   in-flight strong commits are instead re-submitted under the same tid
   (see [commit]). *)
let call t dst msg_of_req =
  match call_raw t dst msg_of_req with
  | Some m -> m
  | None ->
      failover t;
      t.cur <- None;
      raise Aborted

(* START (Algorithm A1 lines 1–4). *)
let start ?(label = "txn") ?(strong = false) t =
  if t.cur <> None then invalid_arg "Client.start: transaction in progress";
  let strong = Config.effective_strong t.cfg ~requested:strong in
  t.sq <- t.sq + 1;
  let tid = { Types.cl = t.id; sq = t.sq } in
  let coord = pick_coordinator t in
  let start_us = Engine.now t.eng in
  match
    call t coord (fun req ->
        Msg.C_start { client = t.addr; client_id = t.id; req; tid; past = t.past })
  with
  | Msg.R_started { snap; _ } ->
      t.cur <-
        Some
          {
            c_tid = tid;
            c_coord = coord;
            c_snap = snap;
            c_label = label;
            c_strong = strong;
            c_start_us = start_us;
            c_reads = [];
            c_writes = [];
            c_ops = [];
          }
  | m -> invalid_arg ("Client.start: unexpected reply " ^ Msg.kind m)

let cur t =
  match t.cur with
  | Some c -> c
  | None -> invalid_arg "Client: no transaction in progress"

(* READ (Algorithm A1 lines 5–9). *)
let read ?(cls = Types.cls_default) t key =
  let c = cur t in
  match
    call t c.c_coord (fun req ->
        Msg.C_read { client = t.addr; req; tid = c.c_tid; key; cls })
  with
  | Msg.R_value { value; lc; _ } ->
      (match lc with Some lc -> t.lc <- max t.lc lc | None -> ());
      c.c_reads <- (key, value) :: c.c_reads;
      c.c_ops <- { Types.key; cls; write = false } :: c.c_ops;
      value
  | m -> invalid_arg ("Client.read: unexpected reply " ^ Msg.kind m)

let read_int ?cls t key = Crdt.int_value (read ?cls t key)
let read_set ?cls t key = Crdt.set_value (read ?cls t key)

(* UPDATE (Algorithm A1 lines 10–12). *)
let update ?(cls = Types.cls_default) t key op =
  let c = cur t in
  match
    call t c.c_coord (fun req ->
        Msg.C_update { client = t.addr; req; tid = c.c_tid; key; op; cls })
  with
  | Msg.R_ok _ ->
      c.c_writes <- { Types.wkey = key; wop = op; wcls = cls } :: c.c_writes;
      c.c_ops <- { Types.key; cls; write = true } :: c.c_ops
  | m -> invalid_arg ("Client.update: unexpected reply " ^ Msg.kind m)

let record t c ~vec ~lc =
  let commit_us = Engine.now t.eng in
  History.committed t.history
    ~record:
      {
        History.h_tid = c.c_tid;
        h_client = t.id;
        h_dc = t.dc;
        h_strong = c.c_strong;
        h_label = c.c_label;
        h_snap = c.c_snap;
        h_vec = vec;
        h_lc = lc;
        h_reads = List.rev c.c_reads;
        h_writes = List.rev c.c_writes;
        h_ops = List.rev c.c_ops;
        h_start_us = c.c_start_us;
        h_commit_us = commit_us;
      }
    ~latency_us:(commit_us - c.c_start_us)

let finish_strong t c ~dec ~vec ~lc =
  Sim.Metrics.observe t.h_lat_strong (Engine.now t.eng - c.c_start_us);
  if Sim.Trace.enabled t.trace then
    Sim.Trace.emit_span t.trace ~source:t.trace_src
      ~kind:(if dec then "txn-strong" else "txn-aborted")
      ~start:c.c_start_us
      (Fmt.str "%a %s" Types.tid_pp c.c_tid c.c_label);
  if dec then begin
    Sim.Metrics.incr t.c_committed;
    t.past <- vec;
    t.lc <- max t.lc lc;
    record t c ~vec ~lc;
    `Committed vec
  end
  else begin
    Sim.Metrics.incr t.c_aborted;
    History.aborted t.history;
    `Aborted
  end

(* Chronological per-partition buckets, re-creating the coordinator's
   wbuff/ops shape for re-submission. *)
let bucket ~part_of xs =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun x ->
      let p = part_of x in
      let l = try Hashtbl.find tbl p with Not_found -> [] in
      Hashtbl.replace tbl p (x :: l))
    xs;
  Hashtbl.fold (fun p l acc -> (p, List.rev l) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* The coordinator DC crashed with a strong commit in flight and the
   decision unknown: re-submit the same [tid] at the failover DC.
   Certification dedups by tid — an already-decided transaction answers
   with its recorded decision, a prepared one re-enters at its recorded
   timestamp — so the transaction takes effect at most once. *)
let rec resubmit_strong t c =
  let partitions = t.cfg.Config.partitions in
  let wbuff =
    bucket
      ~part_of:(fun w -> Store.Keyspace.partition ~partitions w.Types.wkey)
      (List.rev c.c_writes)
  in
  let ops =
    bucket
      ~part_of:(fun (o : Types.opdesc) ->
        Store.Keyspace.partition ~partitions o.Types.key)
      (List.rev c.c_ops)
  in
  let dst = pick_coordinator t in
  match
    call_raw t dst (fun req ->
        Msg.C_resubmit_strong
          {
            client = t.addr;
            client_id = t.id;
            req;
            tid = c.c_tid;
            wbuff;
            ops;
            snap = c.c_snap;
            lc = t.lc;
          })
  with
  | Some (Msg.R_strong { dec; vec; lc; _ }) -> finish_strong t c ~dec ~vec ~lc
  | Some m -> invalid_arg ("Client.commit: unexpected reply " ^ Msg.kind m)
  | None ->
      failover t;
      resubmit_strong t c

(* COMMIT_CAUSAL_TX / COMMIT_STRONG_TX (Algorithm A1 lines 13–24). *)
let commit t =
  let c = cur t in
  t.cur <- None;
  if c.c_strong then begin
    t.lc <- t.lc + 1;
    (* execute phase of the lifecycle: START until the commit request
       leaves the client (reads, updates, coordinator round trips) *)
    let commit_req_us = Engine.now t.eng in
    Sim.Metrics.observe t.h_phase_execute (commit_req_us - c.c_start_us);
    if Sim.Trace.enabled t.trace then
      Sim.Trace.emit_span t.trace ~source:t.trace_src ~kind:"execute"
        ~start:c.c_start_us
        (Fmt.str "%a %s" Types.tid_pp c.c_tid c.c_label);
    match
      call_raw t c.c_coord (fun req ->
          Msg.C_commit_strong { client = t.addr; req; tid = c.c_tid; lc = t.lc })
    with
    | Some (Msg.R_strong { dec; vec; lc; _ }) ->
        finish_strong t c ~dec ~vec ~lc
    | Some (Msg.R_overloaded _) ->
        (* admission control shed the commit: the transaction took no
           effect; surface it as a retryable outcome distinct from an
           abort (interned on first shed, keeping overload-free runs'
           metric snapshots unchanged) *)
        Sim.Metrics.incr
          (Sim.Metrics.counter t.metrics "txn_overloaded_total");
        if Sim.Trace.enabled t.trace then
          Sim.Trace.emit_span t.trace ~source:t.trace_src ~kind:"txn-shed"
            ~start:c.c_start_us
            (Fmt.str "%a %s" Types.tid_pp c.c_tid c.c_label);
        raise Overloaded
    | Some m -> invalid_arg ("Client.commit: unexpected reply " ^ Msg.kind m)
    | None ->
        failover t;
        resubmit_strong t c
  end
  else begin
    t.lc <- t.lc + 1;
    match
      call t c.c_coord (fun req ->
          Msg.C_commit_causal { client = t.addr; req; tid = c.c_tid; lc = t.lc })
    with
    | Msg.R_committed { vec; _ } ->
        Sim.Metrics.observe t.h_lat_causal (Engine.now t.eng - c.c_start_us);
        Sim.Metrics.incr t.c_committed;
        if Sim.Trace.enabled t.trace then
          Sim.Trace.emit_span t.trace ~source:t.trace_src ~kind:"txn-causal"
            ~start:c.c_start_us
            (Fmt.str "%a %s" Types.tid_pp c.c_tid c.c_label);
        t.past <- vec;
        record t c ~vec ~lc:t.lc;
        `Committed vec
    | m -> invalid_arg ("Client.commit: unexpected reply " ^ Msg.kind m)
  end

(* Commit, raising [Aborted] on a strong-transaction abort. *)
let commit_exn t = match commit t with `Committed vec -> vec | `Aborted -> raise Aborted

(* CL_UNIFORM_BARRIER (§5.6): returns once everything the client has
   observed is durable. *)
let uniform_barrier t =
  if t.cur <> None then
    invalid_arg "Client.uniform_barrier: transaction in progress";
  let coord = pick_coordinator t in
  match
    call t coord (fun req ->
        Msg.C_uniform_barrier { client = t.addr; req; past = t.past })
  with
  | Msg.R_ok _ -> t.lc <- t.lc + 1
  | m -> invalid_arg ("Client.uniform_barrier: unexpected reply " ^ Msg.kind m)

(* CL_ATTACH (§5.6): complete a migration started with uniform_barrier. *)
let attach t ~dc =
  if t.cur <> None then invalid_arg "Client.attach: transaction in progress";
  let replicas = t.replicas_of_dc dc in
  let dst = replicas.(Sim.Rng.int t.rng (Array.length replicas)) in
  match
    call t dst (fun req -> Msg.C_attach { client = t.addr; req; past = t.past })
  with
  | Msg.R_ok _ ->
      t.lc <- t.lc + 1;
      t.dc <- dc
  | m -> invalid_arg ("Client.attach: unexpected reply " ^ Msg.kind m)

(* Consistent migration (§4): barrier at the origin, attach at the
   destination. *)
let migrate t ~dc =
  uniform_barrier t;
  attach t ~dc

(* Run a whole transaction, retrying strong aborts like the paper's
   clients do (§6.2: "otherwise, it re-executes the transaction"). A
   mid-transaction failover (the session DC crashed) also re-executes,
   at the DC the session migrated to; a shed commit (admission control)
   re-executes after a short randomized backoff so retries from many
   clients do not resynchronize against the admission bound. *)
let run_txn ?label ?(strong = false) ?(max_retries = max_int) t body =
  let rec go attempts =
    let outcome =
      try
        start ?label ~strong t;
        let v = body t in
        match commit t with `Committed _ -> Some v | `Aborted -> None
      with
      | Aborted when t.cfg.Config.client_failover_us > 0 ->
          t.cur <- None;
          None
      | Overloaded ->
          let backoff = Config.overload_backoff_us t.cfg in
          sleep t (backoff + Sim.Rng.int t.rng backoff);
          None
    in
    match outcome with
    | Some v -> v
    | None ->
        if attempts >= max_retries then raise Aborted else go (attempts + 1)
  in
  go 0
