(** Transaction certification service, group-member side (Algorithms
    A9–A10; the fault-tolerant commit of Chockler & Gotsman integrated
    with the causal protocol, §6.3).

    Each partition's certification group is formed by its sibling
    replicas across data centers (REDBLUE instead runs one group of
    per-DC service nodes). One member leads; the leader certifies
    transactions against prepared and decided state, members accept under
    a ballot, committed updates are delivered in strong-timestamp order
    with no gaps, and leadership recovers across data-center failures.

    The module is parameterised by a [ctx] of closures so it has no
    dependency on the replica that embeds it. The coordinator side of
    certification (CERTIFY, Algorithm A7) lives in [Replica]. *)

type cert_result =
  | Decided of bool * Vclock.Vc.t * int
      (** decision, commit vector, Lamport clock *)
  | Unknown  (** a quorum does not know the transaction (recovery only) *)

type ctx = {
  x_dc : int;
  x_group : int;  (** partition id, or the REDBLUE pseudo-group id *)
  x_dcs : int;
  x_quorum : int;
  x_conflict_ops : Types.opdesc -> Types.opdesc -> bool;
  x_all_conflict : bool;  (** every non-empty pair conflicts (REDBLUE) *)
  x_ops_slice : Types.opsmap -> Types.opdesc list;
      (** a transaction's operations relevant to this group *)
  x_clock : unit -> int;
  x_now : unit -> int;
  x_send : Msg.addr -> Msg.t -> unit;
  x_self : unit -> Msg.addr;
  x_member : int -> Msg.addr;  (** dc -> this group's member *)
  x_dc_of : Msg.addr -> int;
  x_deliver : Types.tx_rec list -> strong_ts:int -> unit;
      (** DELIVER_UPDATES upcall, in strong-timestamp order *)
  x_at_clock : int -> (unit -> unit) -> unit;
  x_certify :
    caller:Msg.cert_caller ->
    tid:Types.tid ->
    origin:int ->
    wbuff:Types.wbuff ->
    ops:Types.opsmap ->
    snap:Vclock.Vc.t ->
    lc:int ->
    k:(cert_result -> unit) ->
    unit;
      (** re-run coordinator certification (RETRY / recovery) *)
  x_alive : unit -> bool;
}

type status = Leader | Follower | Recovering | Restoring

(** Durable certification events (the Raft persistent-state contract):
    an [E_ballot] is appended to the node's WAL before any ack promising
    that ballot leaves the member, an [E_accept] before the ACCEPT_ACK
    for that transaction. Decisions and the delivery frontier are not
    logged — decided state is group-recoverable via NEW_STATE, and the
    frontier is re-derived from the replica's own delivered-strong
    records at replay. *)
type event =
  | E_ballot of { b : int; cb : int }
  | E_accept of Msg.prepared_strong

val status_name : status -> string

type t

(** [bid_interval_us] debounces {!reclaim} leadership bids (at most one
    election per interval). Deployments pass the derived
    [Config.reclaim_debounce_us]; the default is a conservative 1 s. *)
val create : ?bid_interval_us:int -> ctx -> leader_dc:int -> t
val is_leader : t -> bool
val status : t -> status

(** The data center this member's Ω failure detector currently trusts. *)
val trusted : t -> int

(** Current ballot; advances past its initial value only when leadership
    has been contested (Algorithm A10). *)
val ballot : t -> int

val prepared_count : t -> int
val decided_count : t -> int

(** Highest strong timestamp delivered at this member. *)
val last_delivered : t -> int

(** Time of the last delivery (drives dummy strong heartbeats). *)
val idle_since : t -> int

(** Ω notification: trust [dc]; if it is this member's own DC, start
    leader recovery (Algorithm A10). *)
val set_trusted : t -> int -> unit

(** RETRY (Algorithm A9 line 37): re-certify prepared transactions whose
    coordinator went silent. *)
val retry_stale : t -> older_than_us:int -> unit

(** Eager RETRY on Ω suspicion: re-certify every prepared transaction
    originating at the suspected DC, so an orphaned 2PC cannot block
    delivery until the staleness timer fires. Safe under false
    suspicion (decisions are unique per transaction). *)
val retry_suspected : t -> dc:int -> unit

(** Garbage-collect decided transactions below the delivery frontier
    that every live snapshot already contains. *)
val prune_decided : t -> keep_after:int -> unit

(** DC rejoin after a crash: re-enter the group in [Recovering] with the
    delivery frontier seeded at [delivered] (the strong entry of the
    snapshot cut the rejoiner installed). The member then requests the
    group state ({!Msg.State_request}); the leader's [New_state] reply
    installs the decided/prepared log — queuing for delivery only
    transactions above the snapshot — and moves the member to
    [Follower], after which it votes again. *)
val begin_rejoin : t -> delivered:int -> unit

(** {1 Node-level persistence} *)

(** Install the durable-append hook (persistence mode): [log ev ~k]
    must append [ev] to stable storage and call [k] exactly once the
    write is fsynced — or never, if the node crashes first. Without a
    hook, continuations run inline (memory-only mode). *)
val set_log : t -> (event -> k:(unit -> unit) -> unit) -> unit

(** What a node snapshot captures of this member:
    [(ballot, cballot, prepared)] — the durable promises and the
    accepted-but-undecided log. Everything else is group-recoverable. *)
val persistent_state : t -> int * int * Msg.prepared_strong list

(** Node-level restart from the member's own disk: like {!begin_rejoin},
    but the ballots and accepted log survived (snapshot + WAL replay),
    so every pre-crash ACCEPT_ACK / NEW_LEADER_ACK promise still holds.
    [delivered] is the strong frontier the replica re-derived from its
    replayed delivered-strong records. The member stays [Recovering]
    until NEW_STATE restores the decided log. *)
val restart :
  t ->
  ballot:int ->
  cballot:int ->
  prepared:Msg.prepared_strong list ->
  delivered:int ->
  unit

(** Dispatch a group message; [false] if the message is not for the
    certification service. *)
val handle : t -> Msg.t -> bool
