(* Offline PoR-consistency checker (§B of the paper).

   Takes the full history recorded by [History] (every committed
   transaction with its snapshot vector, commit vector, reads and writes)
   and verifies the axioms of Partial Order-Restrictions consistency:

   - CausalityPreservation: commit vectors respect the session order and
     dominate snapshot vectors;
   - ReturnValueConsistency: every read returns exactly the value obtained
     by applying the writes of the transactions contained in the reader's
     snapshot (plus the reader's own earlier writes);
   - ConflictOrdering: any two conflicting committed strong transactions
     are ordered — the earlier one (by strong timestamp) is contained in
     the later one's snapshot;
   - strong-timestamp uniqueness for conflicting strong transactions
     (Property 5).

   Eventual Visibility is a liveness property over replica state and is
   checked separately by [System.check_convergence]. *)

module Vc = Vclock.Vc

type result = {
  violations : string list;
  transactions : int;
  reads_checked : int;
  conflicts_checked : int;
}

let ok r = r.violations = []

(* ------------------------------------------------------------------ *)
(* Session guarantees.                                                   *)

let check_sessions txns errors =
  let by_client = Hashtbl.create 64 in
  List.iter
    (fun (t : History.txn_record) ->
      let cur =
        match Hashtbl.find_opt by_client t.h_client with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_client t.h_client (t :: cur))
    txns;
  Hashtbl.iter
    (fun client txns_rev ->
      (* records were appended in commit order; restore it *)
      let in_order = List.rev txns_rev in
      let rec go = function
        | t1 :: (t2 :: _ as rest) ->
            if not (Vc.leq t1.History.h_snap t1.History.h_vec) then
              errors :=
                Fmt.str "txn %a: commit vector below snapshot" Types.tid_pp
                  t1.History.h_tid
                :: !errors;
            if not (Vc.leq t1.History.h_vec t2.History.h_snap) then
              errors :=
                Fmt.str
                  "client %d: session order violated between %a and %a \
                   (previous commit %a not within next snapshot %a)"
                  client Types.tid_pp t1.History.h_tid Types.tid_pp
                  t2.History.h_tid Vc.pp t1.History.h_vec Vc.pp
                  t2.History.h_snap
                :: !errors;
            go rest
        | [ t1 ] ->
            if not (Vc.leq t1.History.h_snap t1.History.h_vec) then
              errors :=
                Fmt.str "txn %a: commit vector below snapshot" Types.tid_pp
                  t1.History.h_tid
                :: !errors
        | [] -> ()
      in
      go in_order)
    by_client

(* ------------------------------------------------------------------ *)
(* Return-value consistency.                                            *)

(* All writes in the history, indexed by key, seeded with the preloaded
   initial database state (the paper's initial transaction t0: commit
   vector 0, below every snapshot). *)
let write_index ?(preloads = []) ?(unacked = []) txns =
  let idx = Hashtbl.create 1024 in
  List.iter
    (fun (w : Types.write) ->
      let zero_dcs =
        match txns with
        | (t : History.txn_record) :: _ -> Vc.dcs t.h_snap
        | [] -> 1
      in
      let vec = Vc.create ~dcs:zero_dcs in
      let tag = { Crdt.lc = 0; origin = -1 } in
      let cur =
        match Hashtbl.find_opt idx w.wkey with Some l -> l | None -> []
      in
      Hashtbl.replace idx w.wkey ((vec, tag, w.wop) :: cur))
    preloads;
  List.iter
    (fun ((writes : Types.write list), vec, tag) ->
      List.iter
        (fun (w : Types.write) ->
          let cur =
            match Hashtbl.find_opt idx w.wkey with Some l -> l | None -> []
          in
          Hashtbl.replace idx w.wkey ((vec, tag, w.wop) :: cur))
        writes)
    unacked;
  List.iter
    (fun (t : History.txn_record) ->
      List.iter
        (fun (w : Types.write) ->
          let tag = { Crdt.lc = t.h_lc; origin = t.h_client } in
          let cur =
            match Hashtbl.find_opt idx w.wkey with Some l -> l | None -> []
          in
          Hashtbl.replace idx w.wkey ((t.h_vec, tag, w.wop) :: cur))
        t.h_writes)
    txns;
  idx

(* Expected value of [key] in snapshot [snap], before own writes. *)
let snapshot_value idx key ~snap =
  let writes =
    match Hashtbl.find_opt idx key with Some l -> l | None -> []
  in
  List.fold_left
    (fun state (vec, tag, op) ->
      if Vc.leq vec snap then Crdt.apply state op ~tag ~vec else state)
    Crdt.empty writes
  |> Crdt.read

(* Reconstruct the interleaving of a transaction's reads and writes from
   its ordered operation descriptors and replay it. *)
let check_reads idx (t : History.txn_record) errors reads_checked =
  let reads = ref t.h_reads and writes = ref t.h_writes in
  let own = Hashtbl.create 4 in
  List.iter
    (fun (o : Types.opdesc) ->
      if o.write then begin
        match !writes with
        | w :: rest ->
            writes := rest;
            let cur =
              match Hashtbl.find_opt own w.Types.wkey with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace own w.Types.wkey (w.Types.wop :: cur)
        | [] -> ()
      end
      else
        match !reads with
        | (key, value) :: rest ->
            reads := rest;
            incr reads_checked;
            let base = snapshot_value idx key ~snap:t.h_snap in
            let expected =
              List.fold_left Crdt.apply_to_value base
                (List.rev
                   (match Hashtbl.find_opt own key with
                   | Some l -> l
                   | None -> []))
            in
            if value <> expected then
              errors :=
                Fmt.str
                  "txn %a (client %d): read of key %d returned %a, snapshot \
                   %a expects %a"
                  Types.tid_pp t.h_tid t.h_client key Crdt.value_pp value
                  Vc.pp t.h_snap Crdt.value_pp expected
                :: !errors
        | [] -> ())
    t.h_ops

(* ------------------------------------------------------------------ *)
(* Conflict ordering.                                                    *)

let txn_conflict spec (t1 : History.txn_record) (t2 : History.txn_record) =
  Config.txs_conflict spec t1.h_ops t2.h_ops

let check_conflicts cfg txns errors conflicts_checked =
  let strong =
    List.filter (fun (t : History.txn_record) -> t.h_strong) txns
  in
  let arr = Array.of_list strong in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let t1 = arr.(i) and t2 = arr.(j) in
      if txn_conflict cfg.Config.conflict t1 t2 then begin
        incr conflicts_checked;
        let s1 = Vc.strong t1.History.h_vec
        and s2 = Vc.strong t2.History.h_vec in
        if s1 = s2 then
          errors :=
            Fmt.str
              "conflicting strong txns %a and %a share strong timestamp %d"
              Types.tid_pp t1.History.h_tid Types.tid_pp t2.History.h_tid s1
            :: !errors
        else begin
          let earlier, later = if s1 < s2 then (t1, t2) else (t2, t1) in
          if
            not (Vc.leq earlier.History.h_vec later.History.h_snap)
          then
            errors :=
              Fmt.str
                "conflict ordering violated: strong txn %a (ts %d) not \
                 visible to conflicting strong txn %a (ts %d)"
                Types.tid_pp earlier.History.h_tid
                (Vc.strong earlier.History.h_vec)
                Types.tid_pp later.History.h_tid
                (Vc.strong later.History.h_vec)
              :: !errors
        end
      end
    done
  done

(* ------------------------------------------------------------------ *)

let check ?preloads ?unacked cfg txns =
  let errors = ref [] in
  let reads_checked = ref 0 and conflicts_checked = ref 0 in
  check_sessions txns errors;
  let idx = write_index ?preloads ?unacked txns in
  List.iter (fun t -> check_reads idx t errors reads_checked) txns;
  check_conflicts cfg txns errors conflicts_checked;
  {
    violations = List.rev !errors;
    transactions = List.length txns;
    reads_checked = !reads_checked;
    conflicts_checked = !conflicts_checked;
  }

let pp_result ppf r =
  if ok r then
    Fmt.pf ppf
      "PoR check passed: %d transactions, %d reads, %d conflicting pairs"
      r.transactions r.reads_checked r.conflicts_checked
  else
    Fmt.pf ppf "PoR check FAILED:@,%a"
      Fmt.(list ~sep:cut string)
      r.violations

let result_to_json r =
  Sim.Json.Obj
    [
      ("ok", Sim.Json.Bool (ok r));
      ("transactions", Sim.Json.Int r.transactions);
      ("reads_checked", Sim.Json.Int r.reads_checked);
      ("conflicts_checked", Sim.Json.Int r.conflicts_checked);
      ( "violations",
        Sim.Json.List (List.map (fun v -> Sim.Json.String v) r.violations) );
    ]
