(** Offline checker for Partial Order-Restrictions consistency (§B).

    Verifies, over a fully recorded history:
    - CausalityPreservation: commit vectors respect the session order
      and dominate snapshot vectors;
    - ReturnValueConsistency: every read returns the value determined
      by the reader's snapshot (plus its own earlier writes);
    - ConflictOrdering: conflicting committed strong transactions are
      ordered, the earlier contained in the later's snapshot, with
      distinct strong timestamps (Property 5).

    Eventual Visibility is a liveness property over replica state and
    is checked by {!System.check_convergence}. *)

type result = {
  violations : string list;
  transactions : int;
  reads_checked : int;
  conflicts_checked : int;
}

val ok : result -> bool

(** [check ?preloads cfg txns] verifies the PoR axioms. [preloads] is
    the initial database state (below every snapshot). *)
val check :
  ?preloads:Types.write list ->
  ?unacked:(Types.write list * Vclock.Vc.t * Crdt.tag) list ->
  Config.t ->
  History.txn_record list ->
  result

val pp_result : result Fmt.t

(** JSON verdict for bench/explore artifacts:
    [{"ok", "transactions", "reads_checked", "conflicts_checked",
    "violations"}]. *)
val result_to_json : result -> Sim.Json.t
