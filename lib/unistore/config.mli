(** Deployment and protocol configuration.

    One configuration drives the whole code base; the systems evaluated
    in the paper (§8) are modes of the same protocol. *)

(** The evaluated systems: [Unistore] (full protocol), [Causal_only]
    (CAUSAL), [Strong] (serializability: all transactions strong, reads
    conflict with writes), [Red_blue] (centralized certification with
    every pair of strong transactions conflicting), [Cure_ft] (Cure plus
    transaction forwarding, no uniformity tracking), [Uniform_only]
    (UniStore minus strong transactions). *)
type mode =
  | Unistore
  | Causal_only
  | Strong
  | Red_blue
  | Cure_ft
  | Uniform_only

val mode_name : mode -> string

(** The conflict relation ⋈ on operations (§3), lifted to transactions:
    two strong transactions conflict iff they perform conflicting
    operations on the same data item ([All_strong] ignores items and
    makes every pair of non-empty strong transactions conflict). *)
type conflict_spec =
  | Serializable  (** same key, at least one side writes *)
  | Write_write  (** same key, both sides write *)
  | All_strong
  | Classes of (int * int) list
      (** symmetric pairs of conflicting operation classes *)

(** Conflict between two operation descriptors. *)
val ops_conflict : conflict_spec -> Types.opdesc -> Types.opdesc -> bool

(** Conflict between two transactions' operation lists. *)
val txs_conflict :
  conflict_spec -> Types.opdesc list -> Types.opdesc list -> bool

(** CPU service costs (microseconds per message) charged to the node
    processing each message; they determine where each system saturates
    and hence the shape of every throughput curve. *)
type costs = {
  c_base : int;
  c_get_version : int;
  c_prepare : int;
  c_commit : int;
  c_replicate_tx : int;
  c_vec : int;
  c_stablevec : int;
  c_cert : int;
  c_cert_ro : int;
  c_cert_centralized : int;
  c_accept : int;
  c_deliver_tx : int;
  c_client : int;
}

(** Calibrated against the paper's measured ratios; see DESIGN.md. *)
val default_costs : costs

type t = {
  topo : Net.Topology.t;
  partitions : int;  (** logical partitions, replicated at every DC *)
  f : int;  (** tolerated data-center failures *)
  mode : mode;
  conflict : conflict_spec;
  leader_dc : int;  (** initial Paxos leader DC (Virginia in §8) *)
  propagate_period_us : int;  (** PROPAGATE_LOCAL_TXS period (5 ms in §8) *)
  broadcast_period_us : int;  (** BROADCAST_VECS period (5 ms in §8) *)
  strong_heartbeat_us : int;  (** dummy strong transaction period *)
  clock_skew_us : int;  (** max absolute per-replica clock skew *)
  detection_delay_us : int;
      (** Ω suspicion timeout: a DC silent for this long is suspected *)
  fd_period_us : int;  (** Ω heartbeat broadcast / check period *)
  link_faults : Net.Faults.spec option;
      (** install lossy inter-DC links with these rates (nemesis runs);
          [None] keeps the network perfectly reliable *)
  metrics_probe_us : int;
      (** period of the periodic metrics probes (uniformity lag,
          pending-certification queue depth); [0] disables them *)
  gc_grace_us : int;
      (** how long a crashed DC keeps holding the causal-log and
          decided-log GC floors, so it can rejoin by log catch-up; after
          expiry the floors advance and a rejoiner needs a full snapshot *)
  sync_chunk : int;
      (** maximum log entries per rejoin sync message (bounds message
          size during snapshot transfer and log replay) *)
  sync_pull_deadline_us : int;
      (** rejoin pull-round deadline: a polled sibling that has not
          answered with its tail within this budget is dropped from the
          round and the round restarts without it, so a partitioned or
          gray-degraded peer cannot stall the rejoin; dropped peers are
          retried after a backoff and on Ω rehabilitation *)
  client_failover_us : int;
      (** client-side request timeout before the session fails over to
          another live DC; [0] disables failover (calls block forever on
          a crashed DC, the pre-recovery behaviour) *)
  admission_max_pending : int;
      (** admission control: when a DC's in-flight strong certifications
          (the [pending_certifications] gauge) reach this bound, its
          coordinators shed new COMMIT_STRONG requests with a retryable
          {!Msg.t.R_overloaded} reply instead of queueing them; [0]
          disables shedding (the pre-overload-harness behaviour) *)
  persistence : bool;
      (** give every replica node a simulated disk (WAL + snapshots,
          {!Store.Wal}): acks wait for fsync, nodes survive node-level
          crash/restart by local replay; [false] keeps the memory-only
          model where any crash is total state loss *)
  disk_fsync_us : int;  (** per-node disk fsync latency *)
  disk_mb_per_s : int;  (** per-node disk sequential write bandwidth *)
  snapshot_interval_us : int;
      (** period of each node's snapshot+truncate compaction; bounds WAL
          replay after a restart by the snapshot interval's worth of
          traffic instead of the run length *)
  costs : costs;
  seed : int;
  use_hlc : bool;
      (** use hybrid logical clocks: replicas merge received timestamps
          into their clock instead of physically waiting for it to catch
          up, removing the protocol's sensitivity to clock skew (the
          integration §9 suggests) *)
  trace_enabled : bool;
      (** record a structured event trace ({!Sim.Trace}) of commits,
          replication, deliveries and leadership changes *)
  trace_capacity : int;
      (** bound on the trace's in-memory span buffer; once full, the
          oldest spans are dropped and counted ({!Sim.Trace.dropped}) *)
  record_history : bool;  (** keep full transaction records (checker) *)
  measure_visibility : bool;  (** record remote-visibility delays (Fig 6) *)
  profile : bool;
      (** enable the engine's self-profiler ({!Sim.Prof}): per-label
          event counts, allocation deltas and sampled wall time for
          every event the run executes *)
  profile_sample_every : int;
      (** wall-clock sampling stride of the profiler: every Nth event is
          timed with the monotonic clock (1 = every event; counts and
          allocation words are always exact) *)
}

(** Build a configuration; every argument has a sensible default matching
    the paper's setup (3 DCs, f = 1, 5 ms metadata periods, ±1 ms clock
    skew). *)
val default :
  ?topo:Net.Topology.t ->
  ?partitions:int ->
  ?f:int ->
  ?mode:mode ->
  ?conflict:conflict_spec ->
  ?leader_dc:int ->
  ?propagate_period_us:int ->
  ?broadcast_period_us:int ->
  ?strong_heartbeat_us:int ->
  ?clock_skew_us:int ->
  ?detection_delay_us:int ->
  ?fd_period_us:int ->
  ?link_faults:Net.Faults.spec ->
  ?metrics_probe_us:int ->
  ?gc_grace_us:int ->
  ?sync_chunk:int ->
  ?sync_pull_deadline_us:int ->
  ?client_failover_us:int ->
  ?admission_max_pending:int ->
  ?persistence:bool ->
  ?disk_fsync_us:int ->
  ?disk_mb_per_s:int ->
  ?snapshot_interval_us:int ->
  ?costs:costs ->
  ?seed:int ->
  ?use_hlc:bool ->
  ?trace_enabled:bool ->
  ?trace_capacity:int ->
  ?record_history:bool ->
  ?measure_visibility:bool ->
  ?profile:bool ->
  ?profile_sample_every:int ->
  unit ->
  t

val dcs : t -> int

(** [f + 1]: both the uniformity threshold and the Paxos quorum. *)
val quorum : t -> int

(** Derived ceiling of the reliable transport's retransmission backoff:
    the Ω suspicion timeout ([detection_delay_us], i.e. detector period
    × silence threshold) plus the topology's worst-case RTT. Installed
    into the network by {!System.create} so tightened detector
    configurations tighten the cap with them. *)
val rto_cap_us : t -> int

(** Derived debounce of {!Cert.reclaim} leadership bids: one Ω reaction
    period ([fd_period_us]) plus the topology's worst-case RTT — long
    enough for an in-flight election round to settle, and much tighter
    than the former fixed 1 s on typical deployments. *)
val reclaim_debounce_us : t -> int

(** Derived backoff against a sync peer dropped from a rejoin pull round
    ([Replica]): one Ω suspicion window rounded up to whole pull-round
    deadlines, plus two rounds of quarantine. 4× the deadline (1.2 s) at
    the defaults — PR 4's hand-tuned multiplier, now scaling with the
    detector and the deadline. *)
val sync_drop_backoff_us : t -> int

(** Derived base of the randomized client backoff after an
    [R_overloaded] shed: two broadcast periods, enough for the
    pending-certification queue to drain measurably before the retry
    (the client adds equal-magnitude uniform jitter, giving the 10–20 ms
    window at the default 5 ms period). *)
val overload_backoff_us : t -> int

(** Deadline of one origin-scoped repair pull round (replication-gap
    repair, [Replica.handle_replicate]) before the requester rotates to
    another source. Reuses [sync_pull_deadline_us]: the repair target
    faces the same adversity as a rejoin pull peer. *)
val repair_deadline_us : t -> int

(** Whether the mode exchanges STABLEVEC between siblings and exposes
    remote transactions only when uniform (all modes except [Cure_ft]). *)
val tracks_uniformity : t -> bool

(** Whether the strong-transaction machinery runs at all. *)
val has_strong : t -> bool

(** REDBLUE's single logical certification service. *)
val centralized_cert : t -> bool

(** What a transaction requested as [strong] resolves to under this mode
    ([Strong] forces true; pure-causal modes force false). *)
val effective_strong : t -> requested:bool -> bool
