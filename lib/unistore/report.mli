(** Machine-readable run reports.

    Renders one completed experiment run to the JSON document the bench
    harness writes as a [BENCH_*.json] artifact: throughput, latency
    percentiles per transaction class, abort rate, the
    strong-transaction phase breakdown and the full metrics snapshot.
    Every field derives from simulated time and deterministic counters,
    so a fixed seed yields a byte-identical document. *)

(** Latency summary of a raw sample set: [{count, mean_ms, p50_ms,
    p90_ms, p99_ms}] with [null] statistics when the set is empty. *)
val latency_json : Sim.Stats.sample_set -> Sim.Json.t

(** The strong-transaction phase histograms ([strong_phase_us]) in
    lifecycle order (execute, uniform_wait, certify), each as
    [{phase, count, mean_ms, p50_ms, p90_ms, p99_ms}]. *)
val phases_json : Sim.Metrics.t -> Sim.Json.t

(** The full report for a run: name, mode, seed, simulated duration,
    throughput, commit/abort counts, latency summaries ([all] /
    [causal] / [strong]), [strong_phases], and the metrics snapshot.
    When the run was profiled ([Config.profile]) a ["profile"] section
    carries the per-label event/allocation breakdown; when the bounded
    trace buffer overflowed, ["trace_dropped"] counts the lost spans.
    Both are omitted otherwise, keeping non-profiled artifacts
    byte-identical. *)
val of_system : ?name:string -> System.t -> Sim.Json.t

(** Print the strong-transaction phase breakdown (per-phase count and
    mean/p50/p90/p99 milliseconds); prints nothing when no strong
    transaction ran. *)
val pp_phase_breakdown : Format.formatter -> System.t -> unit

(** Print the top-[n] (default 12) hot-path table from the engine's
    self-profiler: per-label event counts, allocation words per event
    and estimated wall share; prints nothing for unprofiled runs. *)
val pp_hot_paths : ?n:int -> Format.formatter -> System.t -> unit

(** Print the uniformity-lag probe summary (knownVec − uniformVec):
    aggregate histogram statistics plus the peak lag per DC; prints
    nothing when the probes were disabled. *)
val pp_uniformity_lag : Format.formatter -> System.t -> unit
