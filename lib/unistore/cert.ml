(* Transaction certification service: group-member side
   (Algorithms A9–A10 of the paper, after Chockler & Gotsman [18]).

   Each logical partition has one certification group formed by its
   sibling replicas across data centers; one member is the Paxos leader.
   REDBLUE instead runs a single group of per-DC service nodes. Members
   hold [prepared] (accepted but undecided) and [decided] transactions;
   the leader certifies new transactions against both, the coordinator
   (replica.ml) collects quorums of ACCEPT_ACKs, and committed updates
   are delivered to replicas in strong-timestamp order with no gaps.

   Certification state is indexed so that the check of Algorithm A8 runs
   in time proportional to the transaction's own footprint, not to the
   history: conflicts against committed transactions go through a per-key
   index (or, for the all-conflict relation of REDBLUE, through a running
   join of commit vectors), and the set of prepared transactions is
   small — it only holds in-flight certifications.

   The module is written against a [ctx] of closures so it stays free of
   a dependency on the replica module that embeds it. *)

module Vc = Vclock.Vc

type cert_result = Decided of bool * Vc.t * int | Unknown

type ctx = {
  x_dc : int;
  x_group : int;  (* partition id, or the REDBLUE pseudo-group id *)
  x_dcs : int;
  x_quorum : int;
  (* conflict between two operation descriptors on the same key *)
  x_conflict_ops : Types.opdesc -> Types.opdesc -> bool;
  (* REDBLUE: every pair of (non-empty) strong transactions conflicts *)
  x_all_conflict : bool;
  (* a transaction's operations relevant to this group *)
  x_ops_slice : Types.opsmap -> Types.opdesc list;
  x_clock : unit -> int;  (* local physical clock *)
  x_now : unit -> int;  (* simulated wall time *)
  x_send : Msg.addr -> Msg.t -> unit;  (* self-sends short-circuit *)
  x_self : unit -> Msg.addr;
  x_member : int -> Msg.addr;  (* dc -> address of this group's member *)
  x_dc_of : Msg.addr -> int;
  (* upcall: committed transactions with this strong timestamp, in order *)
  x_deliver : Types.tx_rec list -> strong_ts:int -> unit;
  x_at_clock : int -> (unit -> unit) -> unit;  (* run when clock >= ts *)
  (* re-run coordinator certification (RETRY / recovery); the coordinator
     logic itself sends the DECISION messages on completion *)
  x_certify :
    caller:Msg.cert_caller ->
    tid:Types.tid ->
    origin:int ->
    wbuff:Types.wbuff ->
    ops:Types.opsmap ->
    snap:Vc.t ->
    lc:int ->
    k:(cert_result -> unit) ->
    unit;
  x_alive : unit -> bool;
}

type status = Leader | Follower | Recovering | Restoring

(* Durable certification events (the Raft persistent-state contract:
   currentTerm/votedFor ≙ ballot/cballot, log entries ≙ accepted
   transactions). Each is appended to the node's WAL *before* the
   message that promises it leaves the member: an [E_ballot] before a
   NEW_LEADER_ACK / NEW_STATE_ACK under that ballot, an [E_accept]
   before the ACCEPT_ACK for that transaction. Decisions and the
   delivery frontier are deliberately not logged — decided state is
   group-recoverable through NEW_STATE, and the frontier is re-derived
   from the replica's own delivered-strong WAL records, so the cert
   member and its store cannot disagree after a replay. *)
type event =
  | E_ballot of { b : int; cb : int }
  | E_accept of Msg.prepared_strong

let status_name = function
  | Leader -> "leader"
  | Follower -> "follower"
  | Recovering -> "recovering"
  | Restoring -> "restoring"

type t = {
  ctx : ctx;
  mutable status : status;
  mutable ballot : int;
  mutable cballot : int;
  mutable trusted : int;  (* Ω: the data center currently trusted *)
  prepared : (Types.tid, Msg.prepared_strong) Hashtbl.t;
  prepared_at : (Types.tid, int) Hashtbl.t;  (* for RETRY *)
  decided : (Types.tid, Msg.decided_strong) Hashtbl.t;
  (* committed transactions indexed by the keys they touched at this
     group, for the per-key conflict check *)
  decided_by_key : (Store.Keyspace.key, Msg.decided_strong list ref) Hashtbl.t;
  (* running join over committed vectors (all-conflict fast path) *)
  mutable decided_join : Vc.t option;
  mutable decided_max_lc : int;
  (* committed but not yet delivered, sorted by ascending strong ts *)
  mutable undelivered : Msg.decided_strong list;
  (* strong timestamp up to which decided transactions may have been
     garbage-collected: snapshots below it can no longer be certified
     soundly *)
  mutable pruned_below : int;
  mutable last_delivered : int;
  mutable last_sent : int;  (* leader: highest DELIVER timestamp issued *)
  mutable last_ts : int;  (* leader: last proposed strong timestamp *)
  mutable do_not_wait : Types.tid list;
  mutable recovery_acks :
    (int * (int * Msg.prepared_strong list * Msg.decided_strong list)) list;
  mutable state_acks : int list;
  mutable last_activity : int;  (* time of last delivery (heartbeating) *)
  mutable last_bid : int;  (* time of the last leadership bid (debounce) *)
  bid_interval_us : int;  (* reclaim debounce (derived from the config) *)
  (* durable-append hook (persistence mode): [log ev ~k] must append
     [ev] to stable storage and call [k] once it is fsynced — or never,
     if the node crashes first. [None] = memory-only: [k] runs inline. *)
  mutable log : (event -> k:(unit -> unit) -> unit) option;
}

(* Ballot [b] is led by data center [b mod dcs]; the initial ballot makes
   the configured leader DC lead every group. *)
let leader_of_ballot ~dcs b = b mod dcs

(* Leadership-reclaim bids are level-triggered (PREPARE_STRONG retries
   every couple of seconds, STATE_REQUEST every retry tick keep landing
   on the same non-leader), so they are debounced to at most one
   election per interval — long enough for an in-flight round to
   settle. The deployment derives the interval from its failure-detector
   period plus the worst-case RTT ([Config.reclaim_debounce_us]); this
   conservative constant is only the default for contexts created
   without one. *)
let default_bid_interval_us = 1_000_000

let create ?(bid_interval_us = default_bid_interval_us) ctx ~leader_dc =
  {
    ctx;
    status = (if ctx.x_dc = leader_dc then Leader else Follower);
    ballot = leader_dc;
    cballot = leader_dc;
    trusted = leader_dc;
    prepared = Hashtbl.create 32;
    prepared_at = Hashtbl.create 32;
    decided = Hashtbl.create 256;
    decided_by_key = Hashtbl.create 256;
    decided_join = None;
    decided_max_lc = 0;
    undelivered = [];
    pruned_below = 0;
    last_delivered = 0;
    last_sent = 0;
    last_ts = 0;
    do_not_wait = [];
    recovery_acks = [];
    state_acks = [];
    last_activity = 0;
    last_bid = -bid_interval_us;
    bid_interval_us;
    log = None;
  }

let set_log t log = t.log <- Some log

let log_durably t ev k =
  match t.log with None -> k () | Some log -> log ev ~k

let is_leader t = t.status = Leader
let status t = t.status
let trusted t = t.trusted
let ballot t = t.ballot
let prepared_count t = Hashtbl.length t.prepared
let decided_count t = Hashtbl.length t.decided
let last_delivered t = t.last_delivered
let idle_since t = t.last_activity

let remove_prepared t tid =
  Hashtbl.remove t.prepared tid;
  Hashtbl.remove t.prepared_at tid

let broadcast t msg =
  for dc = 0 to t.ctx.x_dcs - 1 do
    t.ctx.x_send (t.ctx.x_member dc) msg
  done

(* Register a newly decided transaction in all indexes. *)
let add_decided t (d : Msg.decided_strong) =
  if not (Hashtbl.mem t.decided d.Msg.ds_tid) then begin
    Hashtbl.replace t.decided d.Msg.ds_tid d;
    if d.Msg.ds_dec then begin
      (* conflict indexes *)
      List.iter
        (fun (o : Types.opdesc) ->
          let cell =
            match Hashtbl.find_opt t.decided_by_key o.key with
            | Some cell -> cell
            | None ->
                let cell = ref [] in
                Hashtbl.replace t.decided_by_key o.key cell;
                cell
          in
          if not (List.memq d !cell) then cell := d :: !cell)
        (t.ctx.x_ops_slice d.Msg.ds_ops);
      if t.ctx.x_ops_slice d.Msg.ds_ops <> [] then begin
        (match t.decided_join with
        | None -> t.decided_join <- Some (Vc.copy d.Msg.ds_vec)
        | Some j -> Vc.merge_into j d.Msg.ds_vec);
        t.decided_max_lc <- max t.decided_max_lc d.Msg.ds_lc
      end;
      (* delivery queue, ascending strong timestamp *)
      let ts = Vc.strong d.Msg.ds_vec in
      let rec insert = function
        | [] -> [ d ]
        | d0 :: _ as rest when Vc.strong d0.Msg.ds_vec >= ts -> d :: rest
        | d0 :: rest -> d0 :: insert rest
      in
      if ts > t.last_delivered then t.undelivered <- insert t.undelivered
    end
  end

(* ------------------------------------------------------------------ *)
(* Certification check (Algorithm A8): a transaction commits only if its
   snapshot includes every conflicting committed transaction, and no
   conflicting transaction is concurrently prepared to commit.           *)

let ops_lists_conflict t ops1 ops2 =
  if t.ctx.x_all_conflict then ops1 <> [] && ops2 <> []
  else
    List.exists
      (fun o1 -> List.exists (fun o2 -> t.ctx.x_conflict_ops o1 o2) ops2)
      ops1

let certification_check t ~tid ~ops ~snap ~lc =
  let my_ops = t.ctx.x_ops_slice ops in
  let conflicts_prepared =
    Hashtbl.fold
      (fun ptid (p : Msg.prepared_strong) acc ->
        acc
        || p.Msg.ps_vote
           && (not (Types.tid_equal ptid tid))
           && ops_lists_conflict t my_ops (t.ctx.x_ops_slice p.Msg.ps_ops))
      t.prepared false
  in
  if conflicts_prepared then (false, lc)
  else if t.ctx.x_all_conflict then begin
    if my_ops = [] then (true, lc)
    else
      match t.decided_join with
      | None -> (true, lc)
      | Some j ->
          let vote = Vc.leq j snap in
          let lc = if lc <= t.decided_max_lc then t.decided_max_lc + 1 else lc in
          (vote, lc)
  end
  else begin
    let vote = ref true and lc' = ref lc in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (o : Types.opdesc) ->
        match Hashtbl.find_opt t.decided_by_key o.key with
        | None -> ()
        | Some cell ->
            List.iter
              (fun (d : Msg.decided_strong) ->
                if not (Hashtbl.mem seen d.Msg.ds_tid) then begin
                  let d_ops =
                    List.filter
                      (fun (o' : Types.opdesc) -> o'.key = o.key)
                      (t.ctx.x_ops_slice d.Msg.ds_ops)
                  in
                  if
                    List.exists (fun o' -> t.ctx.x_conflict_ops o o') d_ops
                  then begin
                    Hashtbl.replace seen d.Msg.ds_tid ();
                    if not (Vc.leq d.Msg.ds_vec snap) then vote := false;
                    if !lc' <= d.Msg.ds_lc then lc' := d.Msg.ds_lc + 1
                  end
                end)
              !cell)
      my_ops;
    (!vote, !lc')
  end

(* ------------------------------------------------------------------ *)
(* Delivery (Algorithm A9, upon-clause at line 26): the leader issues
   DELIVER for the next committed strong timestamp once nothing earlier
   can still commit.                                                     *)

let rec try_deliver t =
  if t.status = Leader then begin
    (* entries at or below last_sent have a DELIVER in flight (the queue
       is popped when the leader's own DELIVER loops back); look at the
       first entry beyond them *)
    let rec first_unsent = function
      | [] -> None
      | d :: rest when Vc.strong d.Msg.ds_vec <= t.last_sent ->
          first_unsent rest
      | d :: _ -> Some d
    in
    match first_unsent t.undelivered with
    | None -> ()
    | Some d ->
        let next_ts = Vc.strong d.Msg.ds_vec in
        let blocked =
          Hashtbl.fold
            (fun _ (p : Msg.prepared_strong) acc ->
              acc || (p.Msg.ps_vote && p.Msg.ps_ts <= next_ts))
            t.prepared false
        in
        if not blocked then begin
          t.last_sent <- next_ts;
          broadcast t (Msg.Deliver { b = t.ballot; ts = next_ts });
          try_deliver t
        end
  end

(* A member that sees a group message at a ballot ABOVE its own missed
   an election — e.g. it was Recovering after a restart while the
   NEW_LEADER round ran, so it could neither promise nor adopt the
   outcome, and a quorum of the others completed it without us. The
   exact-ballot checks then refuse every DELIVER and LEARN_DECISION
   from the new leader, and nothing in the protocol revisits the stale
   promise: the member is wedged as a non-delivering Follower forever
   (and a restarting replica's sync, which waits on the strong frontier,
   wedges with it). Chase the group instead: step back to Recovering
   (stop voting, [handle_new_state] accepts again) and re-ask for the
   state; a leader at or above our promise answers with NEW_STATE at
   its ballot. Debounced on the bid clock — deliveries arrive in
   bursts, and a Recovering member retries on later evidence if the
   first request is lost. *)
let chase_ballot t b =
  if
    b > t.ballot
    && (t.status = Leader || t.status = Follower || t.status = Recovering)
    && t.ctx.x_now () - t.last_bid >= t.bid_interval_us
  then begin
    t.last_bid <- t.ctx.x_now ();
    t.status <- Recovering;
    broadcast t
      (Msg.State_request { from = t.ctx.x_self (); ballot = t.ballot })
  end

let handle_deliver t ~b ~ts =
  chase_ballot t b;
  if
    (t.status = Leader || t.status = Follower)
    && t.ballot = b && t.last_delivered < ts
  then begin
    t.last_delivered <- ts;
    t.last_activity <- t.ctx.x_now ();
    let deliverable, rest =
      List.partition (fun d -> Vc.strong d.Msg.ds_vec <= ts) t.undelivered
    in
    t.undelivered <- rest;
    let txs =
      List.map
        (fun (d : Msg.decided_strong) ->
          {
            Types.tx_tid = d.Msg.ds_tid;
            tx_writes = List.concat_map snd d.Msg.ds_wbuff;
            tx_vec = d.Msg.ds_vec;
            tx_lc = d.Msg.ds_lc;
            tx_origin = d.Msg.ds_origin;
          })
        deliverable
    in
    t.ctx.x_deliver txs ~strong_ts:ts;
    if t.status = Leader then try_deliver t
  end

(* ------------------------------------------------------------------ *)
(* PREPARE_STRONG and ACCEPT (Algorithm A9 lines 1–17).                  *)

let handle_accept_local t ~b ~tid ~coord ~rid ~origin ~wbuff ~ops ~snap ~vote ~ts
    ~lc =
  if
    t.ballot = b
    && (t.status = Leader || t.status = Follower || t.status = Restoring)
  then begin
    let p =
      {
        Msg.ps_tid = tid;
        ps_coord = coord;
        ps_origin = origin;
        ps_wbuff = wbuff;
        ps_ops = ops;
        ps_snap = snap;
        ps_vote = vote;
        ps_ts = ts;
        ps_lc = lc;
      }
    in
    if not (Hashtbl.mem t.decided tid) then begin
      Hashtbl.replace t.prepared tid p;
      Hashtbl.replace t.prepared_at tid (t.ctx.x_now ())
    end;
    (* the ACCEPT_ACK is a promise that this accept survives a crash of
       this member: make it durable first (memory state may run ahead of
       the disk — a crash rebuilds it from the disk, so nothing acked is
       ever lost) *)
    log_durably t (E_accept p) (fun () ->
        t.ctx.x_send coord
          (Msg.Accept_ack
             {
               part = t.ctx.x_group;
               b;
               rid;
               tid;
               vote;
               ts;
               lc;
               from_dc = t.ctx.x_dc;
             }))
  end

let handle_prepare_strong t ~rid ~caller ~coord ~tid ~origin ~wbuff ~ops
    ~snap ~lc =
  if t.status = Leader || t.status = Restoring then begin
    match Hashtbl.find_opt t.decided tid with
    | Some d ->
        t.ctx.x_send coord
          (Msg.Already_decided
             {
               rid;
               tid;
               dec = d.Msg.ds_dec;
               vec = d.Msg.ds_vec;
               lc = d.Msg.ds_lc;
             })
    | None -> (
        match Hashtbl.find_opt t.prepared tid with
        | Some p ->
            broadcast t
              (Msg.Accept
                 {
                   b = t.ballot;
                   tid;
                   coord;
                   rid;
                   origin;
                   wbuff = p.Msg.ps_wbuff;
                   ops = p.Msg.ps_ops;
                   snap = p.Msg.ps_snap;
                   vote = p.Msg.ps_vote;
                   ts = p.Msg.ps_ts;
                   lc = p.Msg.ps_lc;
                 })
        | None ->
            if caller = Msg.Restoring then
              broadcast t (Msg.Unknown_tx { b = t.ballot; rid; tid; coord })
            else if t.status = Leader then begin
              (* wait until clock > snap[strong], then certify *)
              let b0 = t.ballot in
              t.ctx.x_at_clock
                (Vc.strong snap + 1)
                (fun () ->
                  if t.status = Leader && t.ballot = b0 && t.ctx.x_alive ()
                  then begin
                    let ts = max (t.ctx.x_clock ()) (t.last_ts + 1) in
                    t.last_ts <- ts;
                    let vote, lc =
                      certification_check t ~tid ~ops ~snap ~lc
                    in
                    (* a snapshot whose strong entry is below the prune
                       floor may miss conflicting committed transactions
                       that were already garbage-collected: refuse it
                       (the coordinator retries with a fresher
                       snapshot). A transaction with no operations at
                       this group (a dummy heartbeat) conflicts with
                       nothing, so any snapshot certifies it. *)
                    let vote =
                      vote
                      && (t.ctx.x_ops_slice ops = []
                         || Vc.strong snap >= t.pruned_below)
                    in
                    (* The check and the leader's own accept must be one
                       atomic step: a self-addressed ACCEPT is delivered
                       asynchronously, and a second conflicting
                       certification slipping in between would miss this
                       transaction and also vote commit — a Conflict
                       Ordering violation. Record locally now; the other
                       members learn by message. *)
                    handle_accept_local t ~b:t.ballot ~tid ~coord ~rid
                      ~origin ~wbuff ~ops ~snap ~vote ~ts ~lc;
                    for dc = 0 to t.ctx.x_dcs - 1 do
                      if dc <> t.ctx.x_dc then
                        t.ctx.x_send (t.ctx.x_member dc)
                          (Msg.Accept
                             {
                               b = t.ballot;
                               tid;
                               coord;
                               rid;
                               origin;
                               wbuff;
                               ops;
                               snap;
                               vote;
                               ts;
                               lc;
                             })
                    done
                  end)
            end)
  end

let handle_accept = handle_accept_local

(* ------------------------------------------------------------------ *)
(* DECISION and LEARN_DECISION (Algorithm A9 lines 18–25).               *)

(* A DECISION is a learned value: a quorum accepted it, so it is chosen
   and immutable regardless of ballots that came after. Accepting
   [b <= ballot] (and re-broadcasting under the current ballot) matters
   after a leader restart: coordinators that latched a group quorum
   before the crash keep sending the old ballot — their group is done,
   so the PREPARE_STRONG retry never refreshes it — and an exact-match
   guard would drop those decisions forever, leaving the restored
   leader's prepared table stuck and [restoring_done] unreachable. *)
let handle_decision t ~b ~tid ~dec ~vec ~lc =
  if (t.status = Leader || t.status = Restoring) && b <= t.ballot then
    t.ctx.x_at_clock (Vc.strong vec) (fun () ->
        if
          b <= t.ballot
          && (t.status = Leader || t.status = Restoring)
          && t.ctx.x_alive ()
        then
          broadcast t (Msg.Learn_decision { b = t.ballot; tid; dec; vec; lc }))

let restoring_done t =
  if
    t.status = Restoring
    && Hashtbl.fold
         (fun tid _ acc ->
           acc && List.exists (Types.tid_equal tid) t.do_not_wait)
         t.prepared true
  then begin
    t.status <- Leader;
    t.do_not_wait <- [];
    t.last_sent <- t.last_delivered;
    try_deliver t
  end

let handle_learn_decision t ~b ~tid ~dec ~vec ~lc =
  chase_ballot t b;
  if
    (t.status = Leader || t.status = Follower || t.status = Restoring)
    && b <= t.ballot  (* chosen values survive ballot changes *)
  then begin
    match Hashtbl.find_opt t.prepared tid with
    | None -> ()  (* already decided or never accepted here *)
    | Some p ->
        remove_prepared t tid;
        add_decided t
          {
            Msg.ds_tid = tid;
            ds_origin = p.Msg.ps_origin;
            ds_wbuff = p.Msg.ps_wbuff;
            ds_ops = p.Msg.ps_ops;
            ds_dec = dec;
            ds_vec = vec;
            ds_lc = lc;
          };
        restoring_done t;
        try_deliver t
  end

let handle_unknown_tx t ~b ~rid ~tid ~coord =
  if
    (t.status = Leader || t.status = Follower || t.status = Restoring)
    && t.ballot = b
  then
    t.ctx.x_send coord
      (Msg.Unknown_tx_ack
         { part = t.ctx.x_group; rid; tid; from_dc = t.ctx.x_dc })

(* ------------------------------------------------------------------ *)
(* Leader recovery (Algorithm A10).                                      *)

let prepared_list t = Hashtbl.fold (fun _ p acc -> p :: acc) t.prepared []
let decided_list t = Hashtbl.fold (fun _ d acc -> d :: acc) t.decided []

let recover t =
  let dcs = t.ctx.x_dcs in
  let rec next b =
    if leader_of_ballot ~dcs b = t.ctx.x_dc then b else next (b + 1)
  in
  let b = next (t.ballot + 1) in
  t.recovery_acks <- [];
  t.state_acks <- [];
  broadcast t (Msg.New_leader { b; from = t.ctx.x_self () })

(* A non-leader that trusts its own DC keeps receiving leader-bound
   traffic: trust has converged back here (typically the leader-home DC
   after a crash/recover cycle) while the current ballot still belongs
   to the interim leader — and a follower drops PREPARE_STRONG and
   STATE_REQUEST silently, so nothing else would ever break the
   deadlock. Bid for leadership through the ordinary recovery protocol,
   debounced so the periodic retries that trigger this cannot stack
   elections on top of one another. *)
let reclaim t =
  if
    t.trusted = t.ctx.x_dc
    && (t.status = Follower || t.status = Recovering)
    && t.ctx.x_now () - t.last_bid >= t.bid_interval_us
  then begin
    t.last_bid <- t.ctx.x_now ();
    recover t
  end

(* Ω notification: the failure detector now trusts [dc] for this group. *)
let set_trusted t dc =
  if t.trusted <> dc then begin
    t.trusted <- dc;
    if dc = t.ctx.x_dc then begin
      t.last_bid <- t.ctx.x_now ();
      recover t
    end
    else
      t.ctx.x_send (t.ctx.x_member dc)
        (Msg.Nack { b = t.ballot; from = t.ctx.x_self () })
  end

let handle_nack t ~b =
  if t.trusted = t.ctx.x_dc && b > t.ballot then begin
    t.ballot <- b;
    t.last_bid <- t.ctx.x_now ();
    recover t
  end
  else if b >= t.ballot then
    (* An equal-ballot NACK cannot raise our bid but still signals that
       the sender does not consider us leader. The [b > t.ballot] check
       alone wedges a rejoined leader-home member that already adopted
       the interim leader's ballot from NEW_STATE: the one-shot
       trust-transition NACK then ties and is dropped, leaving trust
       pointed at a permanent follower. *)
    reclaim t

let handle_new_leader t ~b ~from ~from_dc =
  if t.trusted = from_dc && t.ballot < b then begin
    t.status <- Recovering;
    t.ballot <- b;
    t.do_not_wait <- [];
    let ack =
      Msg.New_leader_ack
        {
          b;
          cballot = t.cballot;
          prepared = prepared_list t;
          decided = decided_list t;
          from = t.ctx.x_self ();
        }
    in
    (* the ack promises never to accept under a smaller ballot again:
       persist the promise before it leaves (Raft's currentTerm) *)
    log_durably t (E_ballot { b; cb = t.cballot }) (fun () ->
        t.ctx.x_send from ack)
  end
  else t.ctx.x_send from (Msg.Nack { b = t.ballot; from = t.ctx.x_self () })

(* Replace this member's certification state (recovery). *)
let install_state t ~prepared ~decided =
  Hashtbl.reset t.prepared;
  Hashtbl.reset t.prepared_at;
  Hashtbl.reset t.decided;
  Hashtbl.reset t.decided_by_key;
  t.decided_join <- None;
  t.decided_max_lc <- 0;
  t.undelivered <- [];
  List.iter (add_decided t) decided;
  List.iter
    (fun (p : Msg.prepared_strong) ->
      if not (Hashtbl.mem t.decided p.Msg.ps_tid) then begin
        Hashtbl.replace t.prepared p.Msg.ps_tid p;
        Hashtbl.replace t.prepared_at p.Msg.ps_tid (t.ctx.x_now ())
      end)
    prepared

let handle_new_leader_ack t ~b ~cballot ~prepared ~decided ~from_dc =
  if t.status = Recovering && t.ballot = b then begin
    (* our election is making progress: push the reclaim debounce out so
       leader-bound traffic cannot restart the election from under us —
       the full round (acks, install, NEW_STATE fsync+acks) takes about
       a debounce interval, so debouncing only from the bid start
       livelocks on back-to-back re-elections *)
    t.last_bid <- t.ctx.x_now ();
    if not (List.mem_assoc from_dc t.recovery_acks) then
      t.recovery_acks <-
        (from_dc, (cballot, prepared, decided)) :: t.recovery_acks;
    if List.length t.recovery_acks >= t.ctx.x_quorum then begin
      let acks = List.map snd t.recovery_acks in
      t.recovery_acks <- [];
      let max_cb =
        List.fold_left (fun acc (cb, _, _) -> max acc cb) (-1) acks
      in
      let from_max = List.filter (fun (cb, _, _) -> cb = max_cb) acks in
      let decided = List.concat_map (fun (_, _, d) -> d) from_max in
      let prepared = List.concat_map (fun (_, p, _) -> p) from_max in
      install_state t ~prepared ~decided;
      let max_prep =
        Hashtbl.fold (fun _ p acc -> max acc p.Msg.ps_ts) t.prepared 0
      in
      let max_dec =
        Hashtbl.fold
          (fun _ (d : Msg.decided_strong) acc ->
            if d.Msg.ds_dec then max acc (Vc.strong d.Msg.ds_vec) else acc)
          t.decided 0
      in
      t.ctx.x_at_clock
        (max max_prep max_dec)
        (fun () ->
          if t.status = Recovering && t.ballot = b && t.ctx.x_alive () then begin
            t.last_bid <- t.ctx.x_now ();
            t.cballot <- b;
            t.last_ts <- max t.last_ts (max max_prep max_dec);
            t.state_acks <- [ t.ctx.x_dc ];
            let state =
              Msg.New_state
                {
                  b;
                  prepared = prepared_list t;
                  decided = decided_list t;
                  from = t.ctx.x_self ();
                }
            in
            log_durably t (E_ballot { b; cb = b }) (fun () ->
                for dc = 0 to t.ctx.x_dcs - 1 do
                  if dc <> t.ctx.x_dc then
                    t.ctx.x_send (t.ctx.x_member dc) state
                done)
          end)
    end
  end

let handle_new_state t ~b ~prepared ~decided ~from =
  if t.status = Recovering && b >= t.ballot then begin
    t.cballot <- b;
    t.ballot <- b;
    install_state t ~prepared ~decided;
    t.status <- Follower;
    log_durably t (E_ballot { b; cb = b }) (fun () ->
        t.ctx.x_send from (Msg.New_state_ack { b; from = t.ctx.x_self () }))
  end

let start_restoring t =
  t.status <- Restoring;
  let to_certify = prepared_list t in
  if to_certify = [] then restoring_done t
  else
    List.iter
      (fun (p : Msg.prepared_strong) ->
        let tid = p.Msg.ps_tid in
        t.ctx.x_certify ~caller:Msg.Restoring ~tid ~origin:p.Msg.ps_origin
          ~wbuff:p.Msg.ps_wbuff ~ops:p.Msg.ps_ops ~snap:p.Msg.ps_snap
          ~lc:p.Msg.ps_lc ~k:(fun result ->
            match result with
            | Unknown ->
                if not (List.exists (Types.tid_equal tid) t.do_not_wait)
                then t.do_not_wait <- tid :: t.do_not_wait;
                restoring_done t
            | Decided _ ->
                (* the DECISION flows through LEARN_DECISION, which
                   removes the transaction from [prepared] *)
                restoring_done t))
      to_certify

(* DC rejoin: re-enter the group after a crash. The member comes back in
   [Recovering] with its delivery frontier seeded from the snapshot it
   received ([delivered] = the cut vector's strong entry): [install_state]
   will then queue only transactions above the snapshot for delivery, so
   nothing in the snapshot is applied twice. The ballot is left alone —
   the group's current ballot is at least the pre-crash one, so the
   leader's [New_state {b}] passes the [b >= ballot] check. Until the
   state arrives the member neither votes nor acks, which is exactly the
   "catch up the decided log before voting" the rejoin needs. *)
let begin_rejoin t ~delivered =
  t.status <- Recovering;
  t.last_delivered <- delivered;
  t.last_sent <- delivered;
  t.last_activity <- t.ctx.x_now ();
  t.pruned_below <- max t.pruned_below delivered;
  t.undelivered <- [];
  t.do_not_wait <- [];
  t.recovery_acks <- [];
  t.state_acks <- [];
  (* the crash destroyed this member's log state; pretending otherwise
     would let a pre-crash entry leak into a recovery ack. What the group
     decided comes back wholesale with [New_state]. *)
  Hashtbl.reset t.prepared;
  Hashtbl.reset t.prepared_at;
  Hashtbl.reset t.decided;
  Hashtbl.reset t.decided_by_key;
  t.decided_join <- None;
  t.decided_max_lc <- 0

(* What a node snapshot must capture of its cert member: the durable
   promises (ballots) and the accepted-but-undecided log. Everything
   else is group-recoverable. *)
let persistent_state t = (t.ballot, t.cballot, prepared_list t)

(* Node-level restart from the member's own disk: like [begin_rejoin],
   but the ballots and the accepted log survived (snapshot + WAL
   replay), so the promises behind every pre-crash NEW_LEADER_ACK and
   ACCEPT_ACK still hold — the member can answer a later leader
   recovery without violating quorum-intersection arguments.
   [delivered] is re-derived by the replica from its own replayed
   delivered-strong records. Decided state still comes back wholesale
   with NEW_STATE (the member stays [Recovering], neither voting nor
   acking, until it lands). *)
let restart t ~ballot ~cballot ~prepared ~delivered =
  t.status <- Recovering;
  t.ballot <- max t.ballot ballot;
  t.cballot <- max t.cballot cballot;
  t.last_delivered <- delivered;
  t.last_sent <- delivered;
  t.last_activity <- t.ctx.x_now ();
  t.pruned_below <- max t.pruned_below delivered;
  t.undelivered <- [];
  t.do_not_wait <- [];
  t.recovery_acks <- [];
  t.state_acks <- [];
  Hashtbl.reset t.prepared;
  Hashtbl.reset t.prepared_at;
  Hashtbl.reset t.decided;
  Hashtbl.reset t.decided_by_key;
  t.decided_join <- None;
  t.decided_max_lc <- 0;
  List.iter
    (fun (p : Msg.prepared_strong) ->
      Hashtbl.replace t.prepared p.Msg.ps_tid p;
      Hashtbl.replace t.prepared_at p.Msg.ps_tid (t.ctx.x_now ()))
    prepared

(* A rejoining member asks for the group state; only the leader answers
   (with a targeted [New_state] under its current ballot — the same
   message leader recovery broadcasts). A non-leader replies with a NACK
   carrying the ballot to beat — or bids itself when it trusts its own
   DC — so a rejoiner whose group currently has no live leader (the
   leader-home DC crashed and recovered before anyone took over) is not
   left retrying into silence forever.

   [ballot] is the requester's durable promise. A leader still working
   below it (the requester crashed after promising a higher ballot the
   rest of the group never completed) cannot answer usefully: its
   [New_state {b}] fails the requester's [b >= ballot] check, and the
   requester's periodic retry re-asks the same leader — a permanent
   wedge. Lowering the requester's ballot would break its promise, so
   the leader instead re-establishes itself above the requester's
   ballot through the ordinary recovery protocol (the [handle_nack]
   adopt-and-recover move), after which its [New_state] broadcast
   reaches the requester at an acceptable ballot. *)
let handle_state_request t ~from ~ballot =
  if t.status = Leader then begin
    if ballot > t.ballot then begin
      t.ballot <- ballot;
      t.last_bid <- t.ctx.x_now ();
      recover t
    end
    else
      t.ctx.x_send from
        (Msg.New_state
           {
             b = t.ballot;
             prepared = prepared_list t;
             decided = decided_list t;
             from = t.ctx.x_self ();
           })
  end
  else begin
    reclaim t;
    t.ctx.x_send from (Msg.Nack { b = t.ballot; from = t.ctx.x_self () })
  end

let handle_new_state_ack t ~b ~from_dc =
  if t.status = Recovering && t.ballot = b then begin
    t.last_bid <- t.ctx.x_now ();
    if not (List.mem from_dc t.state_acks) then
      t.state_acks <- from_dc :: t.state_acks;
    if List.length t.state_acks >= t.ctx.x_quorum then begin
      t.state_acks <- [];
      start_restoring t
    end
  end

(* ------------------------------------------------------------------ *)
(* RETRY (Algorithm A9 line 37): the leader re-certifies prepared
   transactions whose coordinator went silent.                          *)

let retry_stale t ~older_than_us =
  if t.status = Leader then begin
    let now = t.ctx.x_now () in
    Hashtbl.iter
      (fun tid (p : Msg.prepared_strong) ->
        let age =
          match Hashtbl.find_opt t.prepared_at tid with
          | Some since -> now - since
          | None -> max_int
        in
        if age >= older_than_us then begin
          Hashtbl.replace t.prepared_at tid now;
          t.ctx.x_certify ~caller:Msg.Normal ~tid ~origin:p.Msg.ps_origin
            ~wbuff:p.Msg.ps_wbuff ~ops:p.Msg.ps_ops ~snap:p.Msg.ps_snap
            ~lc:p.Msg.ps_lc
            ~k:(fun _ -> ())
        end)
      t.prepared
  end

(* Ω told us [dc] is down: immediately re-certify every prepared
   transaction originating there, instead of waiting for the RETRY
   timer. An accepted-but-undecided transaction whose coordinator
   crashed blocks DELIVER for every later strong timestamp in its
   group, which freezes the data center-wide stable vector and with it
   every new snapshot — re-running the 2PC from here decides it either
   way. Safe under false suspicion: decisions are unique per
   transaction, so a duplicate certification is absorbed. *)
let retry_suspected t ~dc =
  if t.status = Leader then
    Hashtbl.iter
      (fun tid (p : Msg.prepared_strong) ->
        if p.Msg.ps_origin = dc then begin
          Hashtbl.replace t.prepared_at tid (t.ctx.x_now ());
          t.ctx.x_certify ~caller:Msg.Normal ~tid ~origin:p.Msg.ps_origin
            ~wbuff:p.Msg.ps_wbuff ~ops:p.Msg.ps_ops ~snap:p.Msg.ps_snap
            ~lc:p.Msg.ps_lc
            ~k:(fun _ -> ())
        end)
      t.prepared

(* Garbage-collect committed transactions whose strong timestamp is so
   far below the delivery frontier that every live snapshot contains
   them (they can no longer cause an abort or a Lamport bump; snapshots
   lag the frontier by at most the WAN round trip plus a few broadcast
   periods, which [keep_after] must dominate). *)
let prune_decided t ~keep_after =
  if keep_after > 0 then begin
    if keep_after > t.pruned_below then t.pruned_below <- keep_after;
    let stale =
      Hashtbl.fold
        (fun tid (d : Msg.decided_strong) acc ->
          if Vc.strong d.Msg.ds_vec <= keep_after then (tid, d) :: acc
          else acc)
        t.decided []
    in
    List.iter
      (fun (tid, (d : Msg.decided_strong)) ->
        Hashtbl.remove t.decided tid;
        List.iter
          (fun (o : Types.opdesc) ->
            match Hashtbl.find_opt t.decided_by_key o.key with
            | None -> ()
            | Some cell ->
                cell := List.filter (fun d' -> not (d' == d)) !cell;
                if !cell = [] then Hashtbl.remove t.decided_by_key o.key)
          (t.ctx.x_ops_slice d.Msg.ds_ops))
      stale
  end

(* Dispatch group-member messages; returns [true] when handled. *)
let handle t msg =
  match msg with
  | Msg.Prepare_strong { rid; caller; coord; tid; origin; wbuff; ops; snap; lc }
    ->
      (* Leader-bound traffic landing on a non-leader that trusts its own
         DC: reclaim leadership (see [reclaim]) instead of dropping the
         request into a permanent coordinator-retry loop. *)
      reclaim t;
      handle_prepare_strong t ~rid ~caller ~coord ~tid ~origin ~wbuff ~ops
        ~snap ~lc;
      true
  | Msg.Accept { b; tid; coord; rid; origin; wbuff; ops; snap; vote; ts; lc }
    ->
      handle_accept t ~b ~tid ~coord ~rid ~origin ~wbuff ~ops ~snap ~vote ~ts
        ~lc;
      true
  | Msg.Decision { b; tid; dec; vec; lc } ->
      handle_decision t ~b ~tid ~dec ~vec ~lc;
      true
  | Msg.Learn_decision { b; tid; dec; vec; lc } ->
      handle_learn_decision t ~b ~tid ~dec ~vec ~lc;
      true
  | Msg.Deliver { b; ts } ->
      handle_deliver t ~b ~ts;
      true
  | Msg.Unknown_tx { b; rid; tid; coord } ->
      handle_unknown_tx t ~b ~rid ~tid ~coord;
      true
  | Msg.Nack { b; _ } ->
      handle_nack t ~b;
      true
  | Msg.New_leader { b; from } ->
      handle_new_leader t ~b ~from ~from_dc:(t.ctx.x_dc_of from);
      true
  | Msg.New_leader_ack { b; cballot; prepared; decided; from } ->
      handle_new_leader_ack t ~b ~cballot ~prepared ~decided
        ~from_dc:(t.ctx.x_dc_of from);
      true
  | Msg.New_state { b; prepared; decided; from } ->
      handle_new_state t ~b ~prepared ~decided ~from;
      true
  | Msg.New_state_ack { b; from } ->
      handle_new_state_ack t ~b ~from_dc:(t.ctx.x_dc_of from);
      true
  | Msg.State_request { from; ballot } ->
      handle_state_request t ~from ~ballot;
      true
  | _ -> false
