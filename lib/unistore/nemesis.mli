(** Nemesis: scheduled fault injection against a running deployment.

    A schedule is a time-ordered list of adversities — DC crashes,
    heal-able partitions, gray links, loss-rate changes — injected while
    the workload runs. Schedules are scripted or seeded-random, and
    replay deterministically. End schedules with [Heal_all] so the
    liveness assertions (pending strong transactions decide, correct DCs
    converge) apply. *)

type event =
  | Crash_dc of int  (** whole-DC failure (permanent unless recovered) *)
  | Recover_dc of int
      (** restart a crashed DC: {!System.recover_dc} drives its
          replicas through snapshot + log catch-up rejoin *)
  | Partition of int * int  (** cut the bidirectional link between DCs *)
  | Heal of int * int
  | Heal_all  (** heal every partition, restore every degraded link *)
  | Degrade of { src : int; dst : int; extra_us : int }  (** gray link *)
  | Restore of { src : int; dst : int }
  | Set_drop of float  (** change the steady-state loss rate *)
  | Crash_node of { dc : int; part : int }
      (** kill one replica process; its disk survives
          ([Config.persistence] runs only) *)
  | Restart_node of { dc : int; part : int }
      (** restart a crashed node from its own disk: snapshot + WAL
          replay, then suffix pull — no WAN snapshot transfer. Do not
          mix with [Crash_dc] of the same DC in one schedule: the DC
          domain destroys the disks. *)
  | Slow_disk of { dc : int; part : int; factor : int }
      (** gray disk: multiply fsync latency / divide bandwidth *)
  | Restore_disk of { dc : int; part : int }

type step = { at_us : int; ev : event }
type schedule = step list

val pp_event : Format.formatter -> event -> unit
val pp_step : Format.formatter -> step -> unit

(** {2 Serialization}

    The corpus / repro interchange format of the exploration harness
    ([lib/explore]): one JSON object per step with an ["ev"]
    discriminator, replayable byte-deterministically. *)

val step_to_json : step -> Sim.Json.t
val schedule_to_json : schedule -> Sim.Json.t
val step_of_json : Sim.Json.t -> (step, string) result
val schedule_of_json : Sim.Json.t -> (schedule, string) result

(** {2 Validation}

    [validate cfg sched] rejects the documented schedule footguns as
    errors: steps out of time order or at negative times; partitions on
    a topology with [dcs > 2f+1] (split-brain certification);
    node-level events without [Config.persistence]; [Crash_node] /
    [Restart_node] mixed with a [Crash_dc] of the same DC (the DC
    failure domain destroys the disks); and [Restart_node] without a
    prior [Crash_node] of the same node. {!inject} runs it and raises
    [Invalid_argument] on any error. *)
val validate : Config.t -> schedule -> (unit, string) result

(** Inject one event immediately. Enables the network fault model on
    first use if the configuration did not install one. *)
val inject_event : System.t -> event -> unit

(** Schedule every step onto the system's engine (call before
    {!System.run}). Validates the schedule first ({!validate}) and
    raises [Invalid_argument] on a rejected one. *)
val inject : System.t -> schedule -> unit

(** Combine scripted schedule fragments into one time-ordered
    schedule. *)
val merge : schedule list -> schedule

(** Cut the [rejoiner] <-> [peer] link for \[[from_us], [until_us]\]:
    the peer cannot answer snapshot requests or pulls, so the rejoin
    must drop it from the round and finish with the others. *)
val partition_during_sync :
  rejoiner:int -> peer:int -> from_us:int -> until_us:int -> schedule

(** Gray out both directions of the [rejoiner] <-> [peer] link by
    [extra_us] for \[[from_us], [until_us]\]. *)
val degrade_during_sync :
  rejoiner:int ->
  peer:int ->
  extra_us:int ->
  from_us:int ->
  until_us:int ->
  schedule

(** Crash a polled sibling mid-round. *)
val crash_during_sync : peer:int -> at_us:int -> schedule

(** Rolling restart of one whole DC: crash/restart each partition of
    [dc] in turn, [down_us] down per node, [stagger_us] between node
    starts (make it > [down_us] so at most one node of the DC is ever
    down). *)
val rolling_restart :
  dc:int -> partitions:int -> start_us:int -> down_us:int -> stagger_us:int ->
  schedule

(** Supervisor restart loop: crash/restart the same node [cycles]
    times, [down_us] down per cycle, one cycle every [period_us]. *)
val restart_loop :
  dc:int -> part:int -> start_us:int -> cycles:int -> down_us:int ->
  period_us:int ->
  schedule

(** Gray-disk fault on one node for \[[from_us], [until_us]\]. *)
val gray_disk :
  dc:int -> part:int -> factor:int -> from_us:int -> until_us:int -> schedule

(** Deterministic seeded schedule: at most [max_crashes] DC crashes
    (default 1), up to [max_partitions] transient partitions (default 2)
    and [max_degrades] gray links (default 2), all within the middle of
    the run, closed by [Heal_all] at 3/4 of [horizon_us]. With
    [max_recoveries] > 0 (default 0), that many crashed DCs recover a
    bounded interval after their crash — crash/recover cycles for
    rejoin testing. With [max_sync_partitions] / [max_sync_degrades] > 0
    (defaults 0), each crash/recover cycle additionally gets that many
    partitions / gray links between the recovering DC and random sync
    peers, cut inside the crash→recover window and lasting until the
    final [Heal_all] — adversity aimed at the recovery itself. With
    [max_node_crashes] > 0 (default 0; persistence runs only), that
    many node crash/restart cycles hit random replicas (partition drawn
    below [node_partitions], default 1). All defaults draw nothing from
    the Rng (and new draws come after every pre-existing one), so
    existing seeds keep their schedules. *)
val random_schedule :
  seed:int ->
  dcs:int ->
  horizon_us:int ->
  ?max_crashes:int ->
  ?max_partitions:int ->
  ?max_degrades:int ->
  ?max_recoveries:int ->
  ?max_sync_partitions:int ->
  ?max_sync_degrades:int ->
  ?max_node_crashes:int ->
  ?node_partitions:int ->
  unit ->
  schedule
