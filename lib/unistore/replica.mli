(** Partition replica p_d^m: transaction coordination and the causal
    commit path (Algorithms A1–A3), replication/heartbeats/forwarding
    (A4), the stableVec/uniformVec metadata protocol (A5), uniform
    barriers and attach (§5.6), and the coordinator side of strong
    certification (A6–A7). Group-member certification lives in {!Cert}.

    Replicas are built and wired by {!System}; tests and benches reach
    the accessors. *)

type t

(** Late-bound addresses provided by [System]. *)
type env = {
  e_lookup : int -> int -> Msg.addr;  (** dc, partition -> replica *)
  e_rb_cert : (int -> Msg.addr) option;  (** dc -> REDBLUE service node *)
  e_dc_pending : (int -> int) option;
      (** dc -> in-flight strong certifications DC-wide; drives admission
          control ([Config.admission_max_pending]) *)
}

val create :
  Config.t ->
  Sim.Engine.t ->
  Msg.t Net.Network.t ->
  dc:int ->
  part:int ->
  uid:int ->
  skew:int ->
  history:History.t ->
  trace:Sim.Trace.t ->
  metrics:Sim.Metrics.t ->
  t

val dc_of : t -> int
val part_of : t -> int
val set_addr : t -> Msg.addr -> unit
val set_env : t -> env -> unit
val addr : t -> Msg.addr

(** Instantiate this replica's per-partition certification group
    membership (not used under REDBLUE). *)
val make_cert : t -> unit

val cert : t -> Cert.t option

(** Start the periodic protocol tasks: PROPAGATE_LOCAL_TXS,
    BROADCAST_VECS, strong heartbeats and certification housekeeping.
    [phase] staggers replicas. *)
val start_timers : t -> phase:int -> unit

(** Process one protocol message (registered as the network handler). *)
val handle : t -> Msg.t -> unit

(** Ω notification: [failed_dc] is believed to have crashed — re-point
    leaders led by it and start forwarding its transactions (§5.5). *)
val suspect : t -> int -> unit

(** Ω rehabilitation: heartbeats from [dc] resumed (partition heal or
    false suspicion); stop forwarding for it and recompute trust, which
    can hand leadership back to the preferred DC. *)
val unsuspect : t -> int -> unit

(** The DC this replica's Ω currently trusts: the first non-suspected DC
    starting from the configured leader. *)
val preferred_leader : t -> int

(** Coordinator-side certification (Algorithm A7): submit to every
    involved group leader, collect quorums of ACCEPT_ACKs, broadcast the
    decision, pass the result to [k]. *)
val certify :
  t ->
  caller:Msg.cert_caller ->
  tid:Types.tid ->
  origin:int ->
  wbuff:Types.wbuff ->
  ops:Types.opsmap ->
  snap:Vclock.Vc.t ->
  lc:int ->
  k:(Cert.cert_result -> unit) ->
  unit

(** Submit a dummy strong transaction (Algorithm A6 line 10). *)
val strong_heartbeat : t -> unit

(** {2 DC crash recovery} *)

(** Re-enter the system after this replica's DC recovered from a crash:
    wipe the state the crash destroyed, request a snapshot of the
    materialized store from a live sibling of the partition, then pull
    causal-log catch-up rounds (and re-enter the certification group via
    [State_request]/[New_state]) until this replica's knownVec covers
    every live sibling's. Client requests are refused throughout; the
    periodic tasks restart and [on_done] runs once caught up. *)
val begin_rejoin : t -> on_done:(unit -> unit) -> unit

(** Whether this replica is still catching up after a rejoin. *)
val is_syncing : t -> bool

(** A peer DC rejoined with empty state: zero its rows of the gossip
    matrices so the GC floors (causal buffers, decided logs) hold until
    its fresh vectors arrive. *)
val reset_peer_view : t -> dc:int -> unit

(** Retained causal-log backlog for [origin] (grace-window tests). *)
val committed_backlog : t -> origin:int -> int

(** {2 Replication-continuity inspection (tests and debugging)} *)

(** The provisional floor of [origin]'s stream: [-1] when the whole
    frontier is first-hand, otherwise the highest timestamp verified
    first-hand — everything above it up to the frontier rests on adopted
    third-party claims awaiting repair. *)
val provisional_floor : t -> origin:int -> int

(** Whether an origin-scoped repair pull for [origin]'s stream is in
    flight. *)
val repair_active : t -> origin:int -> bool

(** The continuity boundary ([from_ts]) the next outgoing replication
    batch or heartbeat will carry. *)
val propagated_upto : t -> int

(** {2 Node-level persistence ([Config.persistence])}

    Each replica process owns a simulated disk ({!Store.Wal}): a
    checksummed write-ahead log plus periodic snapshots. Externally
    visible promises (PREPARE_ACK, the 2PC commit decision, the
    certification acks) gate on their record's fsync; applied state is
    logged asynchronously and a crash loses only what a peer still
    holds. See DESIGN.md §4g. *)

(** Attach the simulated disk (call after {!make_cert}; [System] does
    this when [Config.persistence] is set). *)
val enable_persistence : t -> unit

(** Node-level process crash: retire the timers, abandon any running
    sync, power-cut the disk (un-fsynced appends lost, the in-flight
    head may tear). Pair with [Net.Network.fail_node]. *)
val crash_node : t -> unit

(** Restart after {!crash_node}: recover snapshot + WAL tail from the
    node's own disk (truncating a torn suffix), restore certification's
    durable promises, then pull only the suffix missed while down from
    a live sibling — no WAN snapshot transfer. Falls back to
    {!begin_rejoin} if the disk is empty. [on_done] runs once caught
    up. *)
val restart_from_disk : t -> on_done:(unit -> unit) -> unit

(** Destroy the disk (whole-DC failure domain: the machine is lost). *)
val scrub_disk : t -> unit

(** Gray-disk fault: multiply fsync latency / divide bandwidth by
    [factor]; restore with [factor:1]. *)
val set_disk_slow : t -> factor:int -> unit

(** Arm a deterministic torn tail for the next crash (tests/benches). *)
val tear_disk_next : t -> unit

(** Force a snapshot + WAL truncate now (tests; normally periodic on
    [Config.snapshot_interval_us]). *)
val take_snapshot : t -> unit

(** {2 State accessors (tests, benches, convergence checks)} *)

val oplog : t -> Store.Oplog.t

(** Strong certifications this replica coordinates that are still
    awaiting a decision (dummy heartbeats excluded). *)
val pending_strong : t -> int

val known_vec : t -> Vclock.Vc.t
val stable_vec : t -> Vclock.Vc.t
val uniform_vec : t -> Vclock.Vc.t
val stable_matrix_dbg : t -> Vclock.Vc.t array

(** The replica's local clock (physical + skew, or hybrid). *)
val clock : t -> int
