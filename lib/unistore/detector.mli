(** Heartbeat-based Ω failure detector.

    One detector node per data center: it broadcasts {!Msg.Fd_ping} to
    its peers every [fd_period_us] and suspects any DC silent for longer
    than [detection_delay_us]. Suspicion is local and fallible (transient
    partitions produce false suspicions); when pings resume the DC is
    rehabilitated. [on_suspect] / [on_restore] fire on each observer's
    transitions — {!System} wires them to {!Replica.suspect} /
    {!Replica.unsuspect}. *)

type t

val create :
  Config.t ->
  Sim.Engine.t ->
  Msg.t Net.Network.t ->
  trace:Sim.Trace.t ->
  metrics:Sim.Metrics.t ->
  on_suspect:(observer:int -> dc:int -> unit) ->
  on_restore:(observer:int -> dc:int -> unit) ->
  t

(** [dc] crashed: eagerly retire its ping/check loops (incarnation-epoch
    bump), so a pre-crash timer cannot fire against a recovered
    incarnation after a fast crash→recover cycle. *)
val crash : t -> dc:int -> unit

(** [dc] recovered from a crash: restart its detector node with an
    all-clear view and re-armed ping/check loops. Peers rehabilitate it
    on their own once its pings resume. *)
val revive : t -> dc:int -> unit

(** Does [observer]'s Ω currently suspect [dc]? *)
val suspected : t -> observer:int -> dc:int -> bool

(** The leader [observer]'s Ω outputs: first non-suspected DC starting
    from the configured home leader. *)
val preferred : t -> observer:int -> int

(** Total suspicion transitions (including re-suspicions). *)
val suspicions : t -> int

(** Suspicions of DCs that had not actually crashed. *)
val false_suspicions : t -> int

(** Rehabilitations (a suspected DC's pings resumed). *)
val restorations : t -> int
