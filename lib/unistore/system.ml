(* Deployment assembly: builds the data store described by a [Config.t]
   on top of the simulated network — replicas for every partition at
   every data center, certification groups, the REDBLUE centralized
   service when configured, periodic protocol tasks, clients, and
   failure injection with the Ω failure detector. *)

module Vc = Vclock.Vc
module Network = Net.Network
module Engine = Sim.Engine
module Rng = Sim.Rng

type certify_fn =
  caller:Msg.cert_caller ->
  tid:Types.tid ->
  origin:int ->
  wbuff:Types.wbuff ->
  ops:Types.opsmap ->
  snap:Vc.t ->
  lc:int ->
  k:(Cert.cert_result -> unit) ->
  unit

type t = {
  cfg : Config.t;
  eng : Engine.t;
  net : Msg.t Network.t;
  history : History.t;
  trace : Sim.Trace.t;
  metrics : Sim.Metrics.t;
  replicas : Replica.t array array;  (* [dc].(partition) *)
  addrs : Msg.addr array array;
  rb_certs : (Cert.t * Msg.addr) array;  (* REDBLUE service nodes, per DC *)
  detector : Detector.t;
  mutable clients : Client.t list;
  mutable next_client : int;
}

let cfg t = t.cfg
let trace t = t.trace
let metrics t = t.metrics
let engine t = t.eng
let network t = t.net
let history t = t.history
let now t = Engine.now t.eng
let replica t ~dc ~part = t.replicas.(dc).(part)
let clients t = List.rev t.clients

(* Sessions with a call still outstanding (liveness-oracle hook). *)
let clients_in_flight t =
  List.length (List.filter Client.in_flight t.clients)

(* Build the REDBLUE certification service: one node per DC forming a
   single Paxos group whose committed updates are pushed to the DC's data
   partitions. RETRY/recovery re-certification is delegated to partition
   0's replica of the DC (patched in once replicas exist). *)
let make_rb_certs cfg eng net ~addrs ~rng ~certify_of_dc =
  let dcs = Config.dcs cfg in
  let partitions = cfg.Config.partitions in
  let rb_addrs = Array.make dcs (-1) in
  let cert_refs = Array.make dcs None in
  for dc = 0 to dcs - 1 do
    let skew =
      let s = cfg.Config.clock_skew_us in
      if s = 0 then 0 else Rng.int rng (2 * s) - s
    in
    let handler msg =
      match cert_refs.(dc) with
      | Some c -> ignore (Cert.handle c msg)
      | None -> ()
    in
    let addr =
      Network.register net ~dc
        ~name:(Fmt.str "dc%d/rbcert" dc)
        ~cost:(Msg.cost_centralized cfg.Config.costs)
        handler
    in
    rb_addrs.(dc) <- addr;
    let deliver txs ~strong_ts =
      (* push each partition its slice; every partition learns the new
         strong timestamp even when it has no writes *)
      for p = 0 to partitions - 1 do
        let sliced =
          List.map
            (fun tx ->
              {
                tx with
                Types.tx_writes =
                  List.filter
                    (fun w ->
                      Store.Keyspace.partition ~partitions w.Types.wkey = p)
                    tx.Types.tx_writes;
              })
            txs
        in
        Network.send net ~src:addr ~dst:addrs.(dc).(p)
          (Msg.Push_updates { txs = sliced; strong_ts })
      done
    in
    let ctx =
      {
        Cert.x_dc = dc;
        x_group = partitions;
        x_dcs = dcs;
        x_quorum = Config.quorum cfg;
        x_conflict_ops = Config.ops_conflict cfg.Config.conflict;
        x_all_conflict = (cfg.Config.conflict = Config.All_strong);
        x_ops_slice = (fun ops -> List.concat_map snd ops);
        x_clock = (fun () -> Engine.now eng + skew);
        x_now = (fun () -> Engine.now eng);
        x_send =
          (fun dst msg ->
            if dst = addr then Network.send_self net ~node:addr msg
            else Network.send net ~src:addr ~dst msg);
        x_self = (fun () -> addr);
        x_member = (fun i -> rb_addrs.(i));
        x_dc_of = (fun a -> Network.dc_of net a);
        x_deliver = deliver;
        x_at_clock =
          (fun ts k ->
            if Engine.now eng + skew >= ts then k ()
            else
              Engine.schedule_at eng ~time:(ts - skew) (fun () ->
                  if not (Network.dc_failed net dc) then k ()));
        x_certify =
          (fun ~caller ~tid ~origin ~wbuff ~ops ~snap ~lc ~k ->
            (certify_of_dc dc) ~caller ~tid ~origin ~wbuff ~ops ~snap ~lc ~k);
        x_alive = (fun () -> not (Network.dc_failed net dc));
      }
    in
    cert_refs.(dc) <-
      Some
        (Cert.create
           ~bid_interval_us:(Config.reclaim_debounce_us cfg)
           ctx ~leader_dc:cfg.Config.leader_dc)
  done;
  Array.init dcs (fun dc ->
      match cert_refs.(dc) with
      | Some c -> (c, rb_addrs.(dc))
      | None ->
          failwith
            (Fmt.str
               "System.make_rb_certs: no certification service built for dc%d"
               dc))

let create cfg =
  let eng = Engine.create ~seed:cfg.Config.seed () in
  (* the profiler must be on before anything is built: nodes and timers
     intern their attribution labels during assembly *)
  if cfg.Config.profile then
    Sim.Prof.enable ~sample_every:cfg.Config.profile_sample_every
      (Engine.prof eng);
  let prof_label name = Sim.Prof.label (Engine.prof eng) name in
  let rng = Rng.split (Engine.rng eng) ~id:0x515 in
  let net = Network.create eng cfg.Config.topo in
  let history = History.create ~record_full:cfg.Config.record_history () in
  History.set_clock history (fun () -> Engine.now eng);
  let trace =
    Sim.Trace.create ~capacity:cfg.Config.trace_capacity
      ~clock:(fun () -> Engine.now eng)
      ~enabled:cfg.Config.trace_enabled ()
  in
  Network.set_trace net trace;
  (* one metrics registry per deployment; the network meter feeds it the
     transport counters, replicas/clients the transaction-lifecycle
     histograms, the detector its transition counters *)
  let metrics = Sim.Metrics.create () in
  Network.set_meter net metrics ~kind_of:Msg.kind ~size_of:Msg.size_bytes;
  (* retransmission backoff cap derived from the deployment instead of a
     hard-coded constant: see [Config.rto_cap_us] *)
  Network.set_rto_cap net (Config.rto_cap_us cfg);
  (* lossy inter-DC links (nemesis runs): installs the fault model and
     switches inter-DC channels to the ack/retransmission transport *)
  (match cfg.Config.link_faults with
  | Some spec ->
      Network.set_faults net
        (Net.Faults.of_spec ~dcs:(Config.dcs cfg) spec)
  | None -> ());
  let dcs = Config.dcs cfg in
  let partitions = cfg.Config.partitions in
  let replicas =
    Array.init dcs (fun dc ->
        Array.init partitions (fun part ->
            let skew =
              let s = cfg.Config.clock_skew_us in
              if s = 0 then 0 else Rng.int rng (2 * s) - s
            in
            Replica.create cfg eng net ~dc ~part
              ~uid:((dc * partitions) + part)
              ~skew ~history ~trace ~metrics))
  in
  let addrs =
    Array.map
      (fun row ->
        Array.map
          (fun r ->
            Network.register net
              ~dc:(Replica.dc_of r)
              ~name:(Fmt.str "dc%d/replica" (Replica.dc_of r))
              ~cost:(Msg.cost cfg.Config.costs)
              (fun msg -> Replica.handle r msg))
          row)
      replicas
  in
  Array.iteri
    (fun dc row ->
      Array.iteri (fun part r -> Replica.set_addr r addrs.(dc).(part)) row)
    replicas;
  let rb_certs =
    if Config.centralized_cert cfg then
      let certify_of_dc dc ~caller ~tid ~origin ~wbuff ~ops ~snap ~lc ~k =
        Replica.certify replicas.(dc).(0) ~caller ~tid ~origin ~wbuff ~ops
          ~snap ~lc ~k
      in
      make_rb_certs cfg eng net ~addrs ~rng ~certify_of_dc
    else [||]
  in
  let env =
    {
      Replica.e_lookup = (fun dc part -> addrs.(dc).(part));
      e_rb_cert =
        (if Config.centralized_cert cfg then
           Some (fun dc -> snd rb_certs.(dc))
         else None);
      (* admission control reads the DC-wide in-flight strong
         certification count — the same level the
         [pending_certifications] gauge samples *)
      e_dc_pending =
        Some
          (fun dc ->
            Array.fold_left
              (fun acc r -> acc + Replica.pending_strong r)
              0 replicas.(dc));
    }
  in
  Array.iter (Array.iter (fun r -> Replica.set_env r env)) replicas;
  if Config.has_strong cfg && not (Config.centralized_cert cfg) then
    Array.iter (Array.iter Replica.make_cert) replicas;
  (* per-replica simulated disks (after make_cert: certification's
     durable events route into the same WAL) *)
  if cfg.Config.persistence then
    Array.iter (Array.iter Replica.enable_persistence) replicas;
  (* start periodic tasks, staggered so replicas do not broadcast in
     lock-step *)
  Array.iter
    (Array.iter (fun r ->
         Replica.start_timers r
           ~phase:(Rng.int rng cfg.Config.propagate_period_us)))
    replicas;
  (* the REDBLUE leader needs dummy strong heartbeats too: partition 0's
     replica of the leader DC submits them *)
  if Config.centralized_cert cfg then
    Engine.every eng
      ~label:(prof_label "rbcert/heartbeat")
      ~period:cfg.Config.strong_heartbeat_us
      ~phase:(Rng.int rng cfg.Config.strong_heartbeat_us) (fun () ->
        let lead, _ = rb_certs.(0) in
        ignore lead;
        let live_leader =
          let rec find dc =
            if dc >= dcs then None
            else if Network.dc_failed net dc then find (dc + 1)
            else Some dc
          in
          (* heartbeat from whichever DC currently leads *)
          let rec leading dc =
            if dc >= dcs then find 0
            else
              let c, _ = rb_certs.(dc) in
              if Cert.is_leader c && not (Network.dc_failed net dc) then
                Some dc
              else leading (dc + 1)
          in
          leading 0
        in
        (match live_leader with
        | Some dc ->
            let c, _ = rb_certs.(dc) in
            if
              Engine.now eng - Cert.idle_since c
              >= cfg.Config.strong_heartbeat_us
            then Replica.strong_heartbeat replicas.(dc).(0)
        | None -> ());
        true);
  if Config.centralized_cert cfg then
    Engine.every eng
      ~label:(prof_label "rbcert/housekeeping")
      ~period:500_000 ~phase:123 (fun () ->
        Array.iteri
          (fun dc (c, _) ->
            if not (Network.dc_failed net dc) then begin
              if Cert.is_leader c then
                Cert.retry_stale c ~older_than_us:2_400_000;
              (* as in Replica: no service may prune a decision some
                 live (possibly partitioned) peer has yet to deliver; a
                 crashed DC holds the floor at its pre-crash delivery
                 point for [gc_grace_us], then releases it (recovery is
                 unsupported under REDBLUE, so the release is final) *)
              let holds_floor dc' =
                match Network.dc_failed_at net dc' with
                | None -> true
                | Some at -> Engine.now eng - at < cfg.Config.gc_grace_us
              in
              let floor = ref (Cert.last_delivered c) in
              Array.iteri
                (fun dc' (c', _) ->
                  if dc' <> dc && holds_floor dc' then
                    floor := min !floor (Cert.last_delivered c'))
                rb_certs;
              Cert.prune_decided c ~keep_after:(!floor - 1_500_000)
            end)
          rb_certs;
        true);
  (* the Ω failure detector: heartbeats + timeout suspicion, notifying
     each observer DC's replicas (and the REDBLUE service) of suspicion
     and rehabilitation transitions *)
  let retarget_rb observer =
    if Config.centralized_cert cfg then begin
      let c, _ = rb_certs.(observer) in
      let pref = Replica.preferred_leader replicas.(observer).(0) in
      if Cert.trusted c <> pref then Cert.set_trusted c pref
    end
  in
  let on_suspect ~observer ~dc =
    if not (Network.dc_failed net observer) then begin
      Array.iter (fun r -> Replica.suspect r dc) replicas.(observer);
      retarget_rb observer;
      if Config.centralized_cert cfg then begin
        let c, _ = rb_certs.(observer) in
        if Cert.is_leader c then Cert.retry_suspected c ~dc
      end
    end
  in
  let on_restore ~observer ~dc =
    if not (Network.dc_failed net observer) then begin
      Array.iter (fun r -> Replica.unsuspect r dc) replicas.(observer);
      retarget_rb observer
    end
  in
  let detector =
    Detector.create cfg eng net ~trace ~metrics ~on_suspect ~on_restore
  in
  (* periodic observability probes: per-partition uniformity lag
     (knownVec minus uniformVec — how far behind the durable frontier
     this replica's knowledge runs) and the depth of the
     pending-certification queue per DC *)
  if cfg.Config.metrics_probe_us > 0 then begin
    let lbl_dc dc = ("dc", string_of_int dc) in
    let lag_gauges =
      Array.init dcs (fun dc ->
          Array.init partitions (fun part ->
              Sim.Metrics.gauge metrics
                ~labels:[ lbl_dc dc; ("part", string_of_int part) ]
                "uniformity_lag_us"))
    in
    let h_lag = Sim.Metrics.histogram metrics "uniformity_lag_probe_us" in
    let pend_gauges =
      Array.init dcs (fun dc ->
          Sim.Metrics.gauge metrics ~labels:[ lbl_dc dc ]
            "pending_certifications")
    in
    let period = cfg.Config.metrics_probe_us in
    Engine.every eng
      ~label:(prof_label "sim/probe")
      ~period ~phase:(period / 2) (fun () ->
        for dc = 0 to dcs - 1 do
          if not (Network.dc_failed net dc) then begin
            let pending = ref 0 in
            for part = 0 to partitions - 1 do
              let r = replicas.(dc).(part) in
              let known = Replica.known_vec r
              and uniform = Replica.uniform_vec r in
              let lag = ref 0 in
              for j = 0 to dcs - 1 do
                lag := max !lag (Vc.get known j - Vc.get uniform j)
              done;
              Sim.Metrics.set lag_gauges.(dc).(part) (float_of_int !lag);
              Sim.Metrics.observe h_lag !lag;
              pending := !pending + Replica.pending_strong r
            done;
            Sim.Metrics.set pend_gauges.(dc) (float_of_int !pending)
          end
        done;
        true)
  end;
  {
    cfg;
    eng;
    net;
    history;
    trace;
    metrics;
    replicas;
    addrs;
    rb_certs;
    detector;
    clients = [];
    next_client = 0;
  }

(* ------------------------------------------------------------------ *)
(* Database population: install an initial version of a key at every
   data center, below every possible snapshot (commit vector 0), the
   moral equivalent of the paper's dedicated initial transaction t0. *)

let preload t key op =
  let partitions = t.cfg.Config.partitions in
  let part = Store.Keyspace.partition ~partitions key in
  let vec = Vc.create ~dcs:(Config.dcs t.cfg) in
  let tag = { Crdt.lc = 0; origin = -1 } in
  Array.iter
    (fun row -> Store.Oplog.append (Replica.oplog row.(part)) key ~op ~vec ~tag)
    t.replicas;
  History.preloaded t.history ~key ~op

(* ------------------------------------------------------------------ *)
(* Whole-DC crash recovery: revive the network nodes, restart the
   detector node, pin the peers' GC floors for the rejoiner, and drive
   every partition replica through the snapshot + log catch-up rejoin
   protocol (DESIGN.md, "DC recovery & rejoin").                        *)

(* Is any replica of [dc] still catching up after a rejoin? Clients do
   not fail over to a syncing DC (it refuses their requests). *)
let dc_syncing t dc = Array.exists Replica.is_syncing t.replicas.(dc)

let rec recover_dc t dc =
  if Config.centralized_cert t.cfg then
    invalid_arg
      "System.recover_dc: unsupported under the REDBLUE centralized \
       service (see ROADMAP)";
  if not (Network.dc_failed t.net dc) then begin
    (* Idempotent: a recovery for a DC that never crashed — or that an
       overlapping schedule already recovered (it is no longer failed,
       possibly still syncing) — is a no-op with a warning, not
       undefined state. Re-running the rejoin machinery over a live DC
       would wipe healthy replicas. *)
    Sim.Trace.emitf t.trace ~source:"system" ~kind:"recover-ignored"
      "ignoring recover for dc%d: not failed%s" dc
      (if dc_syncing t dc then " (still syncing)" else " (never crashed?)")
  end
  else really_recover_dc t dc

and really_recover_dc t dc =
  Network.recover_dc t.net dc;
  (* the DC-level failure domain destroys machines, disks included: a
     recovered DC always rebuilds over the WAN, never from local disks *)
  Array.iter Replica.scrub_disk t.replicas.(dc);
  (* peers must treat the rejoiner as knowing nothing until its fresh
     vectors gossip in: zero its matrix rows so the GC floors pin at 0
     instead of releasing when the grace window closes *)
  Array.iteri
    (fun dc' row ->
      if dc' <> dc && not (Network.dc_failed t.net dc') then
        Array.iter (fun r -> Replica.reset_peer_view r ~dc) row)
    t.replicas;
  Detector.revive t.detector ~dc;
  Sim.Trace.emitf t.trace ~source:"system" ~kind:"recover"
    "dc%d restarting with empty state" dc;
  let g = Sim.Metrics.gauge t.metrics "dcs_syncing" in
  Sim.Metrics.gauge_add g 1.0;
  let remaining = ref t.cfg.Config.partitions in
  Array.iter
    (fun r ->
      Replica.begin_rejoin r ~on_done:(fun () ->
          decr remaining;
          if !remaining = 0 then begin
            Sim.Metrics.gauge_add g (-1.0);
            Sim.Trace.emitf t.trace ~source:"system" ~kind:"recover"
              "dc%d caught up" dc
          end))
    t.replicas.(dc)

(* ------------------------------------------------------------------ *)
(* Clients.                                                             *)

let new_client t ~dc =
  let id = t.next_client in
  t.next_client <- t.next_client + 1;
  let client =
    Client.create ~id ~eng:t.eng ~net:t.net ~cfg:t.cfg ~history:t.history
      ~trace:t.trace ~metrics:t.metrics ~dc
      ~replicas_of_dc:(fun dc -> t.addrs.(dc))
  in
  Client.set_dc_live client (fun dc ->
      (not (Network.dc_failed t.net dc)) && not (dc_syncing t dc));
  t.clients <- client :: t.clients;
  client

(* Spawn a client fiber: [body] runs in direct style, blocking on the
   store's replies. *)
let spawn_client t ~dc body =
  let client = new_client t ~dc in
  Sim.Fiber.spawn t.eng
    ~label:(Sim.Prof.label (Engine.prof t.eng) "fiber/client")
    (fun () -> body client);
  client

(* ------------------------------------------------------------------ *)
(* Failure injection and the Ω failure detector.                        *)

(* Crash a whole DC. Detection is no longer an oracle: the Ω detector
   notices the silence (within detection_delay_us + a ping period) and
   notifies each surviving DC independently. The detector's own loops
   for the crashed DC are retired eagerly so a pre-crash timer cannot
   outlive a fast crash→recover cycle. *)
let fail_dc t dc =
  Network.fail_dc t.net dc;
  Detector.crash t.detector ~dc

(* ------------------------------------------------------------------ *)
(* Node-level failures: one replica process dies while its DC stays up.
   The node's simulated disk survives (persistence mode), so a restart
   recovers locally and pulls only the missed suffix — no WAN snapshot.
   Whole-DC crashes above remain the machine-destroying domain.         *)

let fail_node t ~dc ~part =
  Network.fail_node t.net t.addrs.(dc).(part);
  Replica.crash_node t.replicas.(dc).(part);
  Sim.Trace.emitf t.trace ~source:"system" ~kind:"node-crash"
    "node %d.%d crashed" dc part

let node_down t ~dc ~part = Network.node_down t.net t.addrs.(dc).(part)

let restart_node t ~dc ~part =
  if not (Network.node_down t.net t.addrs.(dc).(part)) then
    Sim.Trace.emitf t.trace ~source:"system" ~kind:"node-recover-ignored"
      "ignoring restart for node %d.%d: not down" dc part
  else begin
    Network.recover_node t.net t.addrs.(dc).(part);
    Sim.Trace.emitf t.trace ~source:"system" ~kind:"node-recover"
      "node %d.%d restarting from its disk" dc part;
    Replica.restart_from_disk t.replicas.(dc).(part) ~on_done:(fun () ->
        Sim.Trace.emitf t.trace ~source:"system" ~kind:"node-recover"
          "node %d.%d caught up" dc part)
  end

let set_disk_slow t ~dc ~part ~factor =
  Replica.set_disk_slow t.replicas.(dc).(part) ~factor

let detector t = t.detector

let faults t = Network.faults t.net

(* Strong transactions still awaiting a certification decision at
   coordinators of live DCs (dummy heartbeats excluded). Zero after
   quiescence = no strong transaction is stuck pending. *)
let pending_strong t =
  let total = ref 0 in
  Array.iteri
    (fun dc row ->
      if not (Network.dc_failed t.net dc) then
        Array.iter (fun r -> total := !total + Replica.pending_strong r) row)
    t.replicas;
  !total

(* ------------------------------------------------------------------ *)
(* Running and measurement.                                             *)

let run t ~until = Engine.run t.eng ~until

let set_window t ~start ~stop = History.set_window t.history ~start ~stop

(* ------------------------------------------------------------------ *)
(* Convergence check (tests): after quiescence, correct data centers
   must agree on every key (Eventual Visibility + CRDT convergence).    *)

let top_snapshot t =
  let v = Vc.create ~dcs:(Config.dcs t.cfg) in
  for i = 0 to Config.dcs t.cfg do
    Vc.set v i max_int
  done;
  v

let check_convergence t =
  let errors = ref [] in
  let snap = top_snapshot t in
  let correct =
    List.filter
      (fun dc -> not (Network.dc_failed t.net dc))
      (List.init (Config.dcs t.cfg) Fun.id)
  in
  (match correct with
  | [] | [ _ ] -> ()
  | ref_dc :: rest ->
      for part = 0 to t.cfg.Config.partitions - 1 do
        let ref_log = Replica.oplog t.replicas.(ref_dc).(part) in
        let ref_keys = List.sort compare (Store.Oplog.keys ref_log) in
        List.iter
          (fun dc ->
            let log = Replica.oplog t.replicas.(dc).(part) in
            let keys = List.sort compare (Store.Oplog.keys log) in
            if keys <> ref_keys then begin
              let missing l l' = List.filter (fun k -> not (List.mem k l')) l in
              errors :=
                Fmt.str "partition %d: dc%d and dc%d store different key sets (dc%d-only: %a; dc%d-only: %a)"
                  part ref_dc dc ref_dc
                  Fmt.(list ~sep:comma int) (missing ref_keys keys)
                  dc Fmt.(list ~sep:comma int) (missing keys ref_keys)
                :: !errors
            end
            else
              List.iter
                (fun key ->
                  let v1, _ = Store.Oplog.read ref_log key ~snap in
                  let v2, _ = Store.Oplog.read log key ~snap in
                  if v1 <> v2 then
                    errors :=
                      Fmt.str
                        "partition %d key %d: dc%d reads %a but dc%d reads %a"
                        part key ref_dc Crdt.value_pp v1 dc Crdt.value_pp v2
                      :: !errors)
                ref_keys)
          rest
      done);
  List.rev !errors
