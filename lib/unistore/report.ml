(* Machine-readable run reports (BENCH_*.json artifacts).

   One experiment run — a [System.t] driven to completion — renders to a
   JSON document with the quantities every figure and table of the
   evaluation is built from: throughput over the measurement window,
   latency percentiles per transaction class, the abort rate, the
   strong-transaction phase breakdown (execute / uniform_wait / certify,
   from the metrics histograms the protocol instrumentation feeds), and
   the full metrics snapshot. Everything in the document derives from
   simulated time and deterministic counters, so a fixed seed produces a
   byte-identical artifact — which is what the golden-file test pins
   down and what makes the artifacts diffable across commits.

   The harness ([bench/]) wraps these documents with per-artifact sweep
   data; the text reporters ([pp_phase_breakdown], [pp_uniformity_lag])
   print the same numbers human-readably. *)

module Json = Sim.Json
module Metrics = Sim.Metrics
module Stats = Sim.Stats

let ms_of_us v = v /. 1000.0

let float_or_null = function
  | None -> Json.Null
  | Some v -> Json.Float v

let ms_or_null o = float_or_null (Option.map ms_of_us o)

(* Latency summary of a raw sample set (exact percentiles): count and
   mean/p50/p90/p99 in milliseconds, null when there are no samples. *)
let latency_json s =
  Json.Obj
    [
      ("count", Json.Int (Stats.count s));
      ("mean_ms", ms_or_null (Stats.mean_opt s));
      ("p50_ms", ms_or_null (Stats.percentile_opt s 50.0));
      ("p90_ms", ms_or_null (Stats.percentile_opt s 90.0));
      ("p99_ms", ms_or_null (Stats.percentile_opt s 99.0));
    ]

(* The same summary for a streaming metrics histogram (bucketed
   percentile estimates). *)
let histogram_json h =
  Json.Obj
    [
      ("count", Json.Int (Metrics.h_count h));
      ("mean_ms", ms_or_null (Metrics.h_mean h));
      ("p50_ms", ms_or_null (Metrics.h_percentile h 50.0));
      ("p90_ms", ms_or_null (Metrics.h_percentile h 90.0));
      ("p99_ms", ms_or_null (Metrics.h_percentile h 99.0));
    ]

(* Strong-transaction lifecycle order, not alphabetical. *)
let phase_order = [ "execute"; "uniform_wait"; "certify" ]

let phases_of reg =
  let all = Metrics.histograms_matching reg "strong_phase_us" in
  let named =
    List.filter_map
      (fun (labels, h) ->
        Option.map (fun p -> (p, h)) (List.assoc_opt "phase" labels))
      all
  in
  let listed =
    List.filter_map
      (fun p -> Option.map (fun h -> (p, h)) (List.assoc_opt p named))
      phase_order
  in
  let rest =
    List.filter (fun (p, _) -> not (List.mem p phase_order)) named
  in
  listed @ rest

let phases_json reg =
  Json.List
    (List.map
       (fun (phase, h) ->
         match histogram_json h with
         | Json.Obj fields ->
             Json.Obj (("phase", Json.String phase) :: fields)
         | j -> j)
       (phases_of reg))

(* DC-recovery section, present only when a recovery ran or a
   replication-stream gap was detected (every metric below is interned
   lazily, so crash-free runs — and their golden artifacts — are
   untouched): catch-up duration, snapshot and log-replay transfer
   volume, client failovers, peak syncing DCs, and the
   stream-continuity repair counters (gaps refused, repair pull rounds,
   repair backfill volume). *)
let recovery_json reg =
  let counter_total name =
    List.fold_left
      (fun acc (_, c) -> acc + Metrics.counter_value c)
      0
      (Metrics.counters_matching reg name)
  in
  let gaps = counter_total "replicate_gap_detected_total" in
  match (Metrics.histograms_matching reg "dc_catchup_us", gaps) with
  | [], 0 -> None
  | catchup, _ ->
      let peak_syncing =
        match Metrics.gauges_matching reg "dcs_syncing" with
        | (_, g) :: _ -> Metrics.gauge_max g
        | [] -> 0.0
      in
      let catchup_field =
        match catchup with
        | (_, h) :: _ -> [ ("dc_catchup", histogram_json h) ]
        | [] -> []
      in
      Some
        (Json.Obj
           (catchup_field
           @ [
               ("snapshot_bytes", Json.Int (counter_total "sync_snapshot_bytes_total"));
               ("log_replay_bytes", Json.Int (counter_total "sync_log_bytes_total"));
               ("client_failovers", Json.Int (counter_total "client_failovers_total"));
               ("dcs_syncing_peak", Json.Float peak_syncing);
               ("replicate_gaps", Json.Int gaps);
               ("repair_pull_rounds", Json.Int (counter_total "repair_pull_rounds_total"));
               ("repair_log_bytes", Json.Int (counter_total "repair_log_bytes_total"));
             ]))

(* Persistence section, present only when per-node disks ran
   ([Config.persistence]; every metric below is interned lazily so
   memory-only runs and their golden artifacts are untouched): WAL
   fsync latency and volume, node restarts, replay sizes, and the
   local-vs-WAN catch-up split that the zero-WAN-restart verdict reads. *)
let persistence_json reg =
  let counter_total name =
    List.fold_left
      (fun acc (_, c) -> acc + Metrics.counter_value c)
      0
      (Metrics.counters_matching reg name)
  in
  match Metrics.histograms_matching reg "wal_fsync_us" with
  | [] -> None
  | fsyncs ->
      (* fsync histograms are per node; merge by reporting the worst and
         the global count/sum through a combined view *)
      let count = List.fold_left (fun a (_, h) -> a + Metrics.h_count h) 0 fsyncs in
      let sum = List.fold_left (fun a (_, h) -> a +. Metrics.h_sum h) 0.0 fsyncs in
      let worst =
        List.fold_left
          (fun a (_, h) -> match Metrics.h_max h with Some m -> max a m | None -> a)
          0 fsyncs
      in
      Some
        (Json.Obj
           [
             ("wal_fsyncs", Json.Int count);
             ( "wal_fsync_mean_us",
               if count = 0 then Json.Null
               else Json.Float (sum /. float_of_int count) );
             ("wal_fsync_max_us", Json.Int worst);
             ("wal_appended_bytes", Json.Int (counter_total "wal_appended_bytes_total"));
             ("wal_torn_truncations", Json.Int (counter_total "wal_torn_truncations_total"));
             ("node_restarts", Json.Int (counter_total "node_restarts_total"));
             ("replay_entries", Json.Int (counter_total "replay_entries_total"));
             ("local_catchup_bytes", Json.Int (counter_total "local_catchup_bytes_total"));
             ("wan_snapshot_bytes", Json.Int (counter_total "sync_snapshot_bytes_total"));
             ("presumed_aborts", Json.Int (counter_total "causal_presumed_aborts_total"));
           ])

(* Overload section, present only when admission control or an open-loop
   driver left traces in the registry (all the metrics below are interned
   lazily, so closed-loop runs and their golden artifacts are
   untouched): certification queue delay, arrivals, sheds on both sides
   of the wire, and the peak pending-certification backlog. *)
let overload_json reg =
  let counter_total name =
    List.fold_left
      (fun acc (_, c) -> acc + Metrics.counter_value c)
      0
      (Metrics.counters_matching reg name)
  in
  let queue_delay = Metrics.histograms_matching reg "cert_queue_delay_us" in
  let rejects = counter_total "admission_rejects_total" in
  let arrivals = counter_total "open_loop_arrivals_total" in
  if queue_delay = [] && rejects = 0 && arrivals = 0 then None
  else
    let pending_peak =
      List.fold_left
        (fun acc (_, g) -> Float.max acc (Metrics.gauge_max g))
        0.0
        (Metrics.gauges_matching reg "pending_certifications")
    in
    Some
      (Json.Obj
         [
           ( "cert_queue_delay",
             match queue_delay with
             | (_, h) :: _ -> histogram_json h
             | [] -> Json.Null );
           ("admission_rejects", Json.Int rejects);
           ("client_overloaded", Json.Int (counter_total "txn_overloaded_total"));
           ("open_loop_arrivals", Json.Int arrivals);
           ("pending_certifications_peak", Json.Float pending_peak);
         ])

let of_system ?(name = "run") sys =
  let cfg = System.cfg sys in
  let h = System.history sys in
  let reg = System.metrics sys in
  Json.Obj
    ([
      ("name", Json.String name);
      ("mode", Json.String (Config.mode_name cfg.Config.mode));
      ("seed", Json.Int cfg.Config.seed);
      ("simulated_us", Json.Int (System.now sys));
      ( "throughput_tx_s",
        float_or_null (History.throughput h) );
      ("committed", Json.Int (History.committed_total h));
      ("committed_strong", Json.Int (History.committed_strong h));
      ("aborted_strong", Json.Int (History.aborted_strong h));
      ("abort_rate_pct", Json.Float (100.0 *. History.abort_rate h));
      ( "latency",
        Json.Obj
          [
            ("all", latency_json (History.latency_all h));
            ("causal", latency_json (History.latency_causal h));
            ("strong", latency_json (History.latency_strong h));
          ] );
      ("strong_phases", phases_json reg);
    ]
    @ (match recovery_json reg with
      | None -> []
      | Some r -> [ ("recovery", r) ])
    @ (match persistence_json reg with
      | None -> []
      | Some p -> [ ("persistence", p) ])
    @ (match overload_json reg with
      | None -> []
      | Some o -> [ ("overload", o) ])
    (* self-profiling section, present only when the engine's profiler
       ran ([Config.profile]); dropped trace spans likewise surface only
       when the bounded span buffer actually overflowed — both gates
       keep non-profiled golden artifacts byte-identical *)
    @ (let p = Sim.Engine.prof (System.engine sys) in
       if Sim.Prof.total_events p > 0 then
         [ ("profile", Sim.Prof.to_json p) ]
       else [])
    @ (let dropped = Sim.Trace.dropped (System.trace sys) in
       if dropped > 0 then [ ("trace_dropped", Json.Int dropped) ] else [])
    @ [ ("metrics", Metrics.to_json reg) ])

(* ------------------------------------------------------------------ *)
(* Text reporters: the artifact's numbers for the harness output.      *)

let pp_opt_ms ppf = function
  | None -> Fmt.pf ppf "%8s" "-"
  | Some v -> Fmt.pf ppf "%8.2f" (ms_of_us v)

let pp_phase_breakdown ppf sys =
  let reg = System.metrics sys in
  match phases_of reg with
  | [] -> ()
  | phases ->
      Fmt.pf ppf "  strong-transaction phase breakdown (ms):@.";
      Fmt.pf ppf "    %-14s %8s %8s %8s %8s %8s@." "phase" "count" "mean"
        "p50" "p90" "p99";
      List.iter
        (fun (phase, h) ->
          Fmt.pf ppf "    %-14s %8d %a %a %a %a@." phase (Metrics.h_count h)
            pp_opt_ms (Metrics.h_mean h) pp_opt_ms
            (Metrics.h_percentile h 50.0)
            pp_opt_ms
            (Metrics.h_percentile h 90.0)
            pp_opt_ms
            (Metrics.h_percentile h 99.0))
        phases

(* Top-N hot paths from the engine's self-profiler; silent when the run
   was not profiled. *)
let pp_hot_paths ?n ppf sys =
  let p = Sim.Engine.prof (System.engine sys) in
  if Sim.Prof.total_events p > 0 then Sim.Prof.pp_top ?n ppf p

let pp_uniformity_lag ppf sys =
  let reg = System.metrics sys in
  (match Metrics.histograms_matching reg "uniformity_lag_probe_us" with
  | [ (_, h) ] when Metrics.h_count h > 0 ->
      Fmt.pf ppf
        "  uniformity lag (knownVec - uniformVec, probed every %d us): mean \
         %a ms, p90 %a ms, max %a ms@."
        (System.cfg sys).Config.metrics_probe_us pp_opt_ms (Metrics.h_mean h)
        pp_opt_ms
        (Metrics.h_percentile h 90.0)
        pp_opt_ms
        (Option.map float_of_int (Metrics.h_max h))
  | _ -> ());
  match Metrics.gauges_matching reg "uniformity_lag_us" with
  | [] -> ()
  | gauges ->
      (* peak lag per DC, maximum over its partitions *)
      let per_dc = Hashtbl.create 8 in
      List.iter
        (fun (labels, g) ->
          match List.assoc_opt "dc" labels with
          | None -> ()
          | Some dc ->
              let cur =
                Option.value ~default:0.0 (Hashtbl.find_opt per_dc dc)
              in
              Hashtbl.replace per_dc dc (Float.max cur (Metrics.gauge_max g)))
        gauges;
      let dcs =
        List.sort compare
          (Hashtbl.fold (fun dc v acc -> (dc, v) :: acc) per_dc [])
      in
      Fmt.pf ppf "    peak lag per DC:%a@."
        (Fmt.list ~sep:Fmt.nop (fun ppf (dc, v) ->
             Fmt.pf ppf "  dc%s %.1f ms" dc (ms_of_us v)))
        dcs
