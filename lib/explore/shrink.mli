(** Delta-debugging minimizer for failing nemesis schedules.

    [minimize ~fails sched] returns a schedule that still satisfies
    [fails] (typically {!Explorer.schedule_fails} pinned to the oracle
    the original run violated) and is {e 1-minimal at the atom level}:
    removing any single remaining atom makes it pass. The passes, in
    order:

    + {b Atomize}: group each fault with its closing event
      (crash/recover, partition/heal, degrade/restore,
      crash-node/restart-node, slow-disk/restore-disk); [Heal_all]
      steps are fixed and always kept (they carry the oracles'
      quiescence assumption).
    + {b ddmin} over atoms: drop complement chunks, halving granularity.
    + {b Singleton sweep} to a fixpoint: try dropping each remaining
      atom, restart on success — this is what guarantees 1-minimality.
    + {b Window shortening}: binary-search each surviving pair's fault
      window toward its opening time (at most 8 halvings per pair).
    + {b Time snapping}: round each step down to a coarse-to-fine grid
      (1 s, 100 ms, 10 ms) when the failure survives.

    [fails] must treat schedules rejected by
    {!Unistore.Nemesis.validate} as not failing
    ({!Explorer.schedule_fails} already does). Every candidate is
    evaluated by a full re-run, so the cost is
    O(atoms · log atoms) runs. *)
val minimize :
  fails:(Unistore.Nemesis.schedule -> bool) ->
  Unistore.Nemesis.schedule ->
  Unistore.Nemesis.schedule
