(* Always-on oracles: see oracle.mli for the semantics of each. *)

module U = Unistore
module Network = Net.Network

type verdict = { oracle : string; pass : bool; detail : string }

let ok vs = List.for_all (fun v -> v.pass) vs
let first_failure vs = List.find_opt (fun v -> not v.pass) vs

let pp_verdict ppf v =
  Fmt.pf ppf "%-11s %s  %s" v.oracle (if v.pass then "ok" else "FAIL") v.detail

let verdict_to_json v =
  Sim.Json.Obj
    [
      ("oracle", Sim.Json.String v.oracle);
      ("pass", Sim.Json.Bool v.pass);
      ("detail", Sim.Json.String v.detail);
    ]

let to_json vs = Sim.Json.List (List.map verdict_to_json vs)

let por sys =
  let h = U.System.history sys in
  let r =
    U.Checker.check
      ~preloads:(U.History.preloads h)
      ~unacked:(U.History.unacked_writers h)
      (U.System.cfg sys) (U.History.txns h)
  in
  { oracle = "por"; pass = U.Checker.ok r; detail = Fmt.str "%a" U.Checker.pp_result r }

let convergence sys =
  match U.System.check_convergence sys with
  | [] -> { oracle = "convergence"; pass = true; detail = "correct DCs converged" }
  | errs ->
      {
        oracle = "convergence";
        pass = false;
        detail =
          Fmt.str "%d divergences; first: %s" (List.length errs)
            (List.hd errs);
      }

(* DCs that took part in the run and can be held to account: up, and
   done resyncing. A DC still syncing at quiescence is a liveness
   failure, not a durability one. *)
let correct_dcs sys =
  let dcs = U.Config.dcs (U.System.cfg sys) in
  let net = U.System.network sys in
  List.filter
    (fun d -> (not (Network.dc_failed net d)) && not (U.System.dc_syncing sys d))
    (List.init dcs Fun.id)

let durability sys ~schedule =
  let cfg = U.System.cfg sys in
  let crashed_dcs =
    List.filter_map
      (fun (s : U.Nemesis.step) ->
        match s.ev with U.Nemesis.Crash_dc d -> Some d | _ -> None)
      schedule
  in
  let correct = correct_dcs sys in
  let checked = ref 0 and exempt = ref 0 in
  (* Presence is counted per (client, key) rather than matched on the
     exact (lc, origin) tag: the tag a store applies belongs to whichever
     certification attempt decided first, and a leader's stale-coordinator
     retry can decide with a different lc than the one the client was
     acked with — same write, same origin, different lc. Counting entries
     by origin is insensitive to that race while still catching a lost
     write (the entry is absent under every lc). *)
  let expected : (int * int, int * U.History.txn_record) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (r : U.History.txn_record) ->
      (* Causal acks do not wait for replication, so a whole-DC crash
         of the acking DC may legitimately lose them (over-approximated
         by DC: any Crash_dc of r.h_dc exempts the record). Strong
         transactions are certified across DCs before the ack and must
         survive up to f DC crashes. *)
      if (not r.h_strong) && List.mem r.h_dc crashed_dcs then
        exempt := !exempt + List.length r.h_writes
      else
        List.iter
          (fun (w : U.Types.write) ->
            incr checked;
            let k = (r.h_client, w.wkey) in
            let n =
              match Hashtbl.find_opt expected k with
              | Some (n, _) -> n
              | None -> 0
            in
            Hashtbl.replace expected k (n + 1, r))
          r.h_writes)
    (U.History.txns (U.System.history sys));
  let lost = ref [] in
  Hashtbl.iter
    (fun (client, key) (n, (r : U.History.txn_record)) ->
      let part =
        Store.Keyspace.partition ~partitions:cfg.U.Config.partitions key
      in
      List.iter
        (fun d ->
          let rep = U.System.replica sys ~dc:d ~part in
          let have =
            List.length
              (List.filter
                 (fun (e : Store.Oplog.entry) -> e.tag.Crdt.origin = client)
                 (Store.Oplog.entries (U.Replica.oplog rep) key))
          in
          if have < n then
            lost :=
              Fmt.str
                "client %d's acked writes to key %d: %d acked (last %s, lc \
                 %d) but only %d applied at dc %d"
                client key n
                (if r.h_strong then "strong" else "causal")
                r.h_lc have d
              :: !lost)
        correct)
    expected;
  match List.sort compare !lost with
  | [] ->
      {
        oracle = "durability";
        pass = true;
        detail =
          Fmt.str "%d acked writes present at %d correct DCs (%d exempt)"
            !checked (List.length correct) !exempt;
      }
  | l ->
      {
        oracle = "durability";
        pass = false;
        detail =
          Fmt.str "%d under-replicated (client, key) pairs; first: %s"
            (List.length l) (List.hd l);
      }

let liveness sys =
  let cfg = U.System.cfg sys in
  let dcs = U.Config.dcs cfg in
  let net = U.System.network sys in
  let pending = U.System.pending_strong sys in
  let syncing =
    List.filter
      (fun d -> (not (Network.dc_failed net d)) && U.System.dc_syncing sys d)
      (List.init dcs Fun.id)
  in
  (* A session whose causal past references transactions a still-crashed
     DC never fully replicated can never re-attach: the failover
     CL_ATTACH wait blocks until the new DC's uniformVec covers the
     past, and an origin's uniform entry is a frontier over its whole
     lamport sequence — it can never pass the least-replicated partition
     stream of the dead DC (and uniformity needs f+1 live copies, so the
     ceiling is the minimum over correct DCs too). Losing such sessions
     is the documented sacrifice whole-DC crashes force (see
     [Client.failover]); they loop in failover forever by design and are
     exempt here. Any other stuck call is a real liveness bug. *)
  let failed = List.filter (Network.dc_failed net) (List.init dcs Fun.id) in
  let correct = correct_dcs sys in
  let uniform_ceiling origin =
    let rec go p acc =
      if p >= cfg.U.Config.partitions then acc
      else
        go (p + 1)
          (List.fold_left
             (fun acc d ->
               min acc
                 (Vclock.Vc.get
                    (U.Replica.known_vec (U.System.replica sys ~dc:d ~part:p))
                    origin))
             acc correct)
    in
    go 0 max_int
  in
  let orphaned c =
    List.exists
      (fun d -> Vclock.Vc.get (U.Client.past c) d > uniform_ceiling d)
      failed
  in
  let stuck, exempt =
    List.partition
      (fun c -> not (orphaned c))
      (List.filter U.Client.in_flight (U.System.clients sys))
  in
  if pending = 0 && syncing = [] && stuck = [] then
    {
      oracle = "liveness";
      pass = true;
      detail =
        (if exempt = [] then "quiescent"
         else
           Fmt.str "quiescent (%d sessions orphaned by DC loss)"
             (List.length exempt));
    }
  else
    {
      oracle = "liveness";
      pass = false;
      detail =
        Fmt.str
          "%d pending strong certifications, %d DCs still syncing, %d \
           clients with a call in flight"
          pending (List.length syncing) (List.length stuck);
    }

let all sys ~schedule =
  [ por sys; convergence sys; durability sys ~schedule; liveness sys ]
