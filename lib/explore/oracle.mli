(** Always-on oracles for the adversarial schedule explorer.

    Every explored scenario ends with the same four verdicts, evaluated
    at quiescence (after the schedule's final [Heal_all] plus a settle
    period):

    - {b por}: the offline PoR checker ({!Unistore.Checker.check}) over
      the full recorded history — causality preservation, return-value
      consistency, conflict ordering.
    - {b convergence}: every correct data center stores the same keys
      with the same values ({!Unistore.System.check_convergence}).
    - {b durability}: every client-acked write is readable at every
      correct, fully-synced data center after all crash/restart cycles
      heal — the generalized power-cut assertion of the persistence
      tests. Causal transactions acked by a DC that the schedule
      whole-DC-crashes are exempt (the DC failure domain destroys the
      disks, and causal acks do not wait for replication); strong
      transactions are never exempt (certification replicates them
      before the ack, and explored schedules crash at most [f] DCs).
    - {b liveness}: quiescence really is quiescence — no strong
      transaction stuck in certification, no data center still syncing,
      no client session with a call outstanding. *)

type verdict = { oracle : string; pass : bool; detail : string }

val ok : verdict list -> bool
val first_failure : verdict list -> verdict option
val verdict_to_json : verdict -> Sim.Json.t
val to_json : verdict list -> Sim.Json.t
val pp_verdict : verdict Fmt.t

val por : Unistore.System.t -> verdict
val convergence : Unistore.System.t -> verdict

(** [durability sys ~schedule] needs the injected schedule to compute
    the whole-DC-crash exemption set. *)
val durability :
  Unistore.System.t -> schedule:Unistore.Nemesis.schedule -> verdict

val liveness : Unistore.System.t -> verdict

(** All four, in the order por, convergence, durability, liveness. *)
val all :
  Unistore.System.t -> schedule:Unistore.Nemesis.schedule -> verdict list
