(** Swarm exploration of the fault space.

    Each trial draws a {e fault-mix profile} — which nemesis event
    kinds are enabled and with what caps, persistence on/off, admission
    control on/off, open- or closed-loop workload — then a seed, runs a
    bounded scenario (workload stops at the schedule's [Heal_all],
    simulation runs a settle quarter past it), and evaluates the four
    {!Oracle} verdicts. Everything derives from the root seed and
    replays byte-deterministically.

    A trial's {e fingerprint} summarizes which code paths and fault
    mechanisms it exercised: the simulator's per-label profile coverage
    (DC prefixes stripped), per-cause network-drop indicators, a
    whitelist of protocol counters, and any failing oracle. A trial is
    {e novel} when it contributes a feature no earlier trial produced;
    novel trials form the corpus. *)

type profile = {
  p_dcs : int;
  p_f : int;
  p_partitions : int;  (** logical store partitions *)
  p_persistence : bool;
  p_admission : int;  (** [admission_max_pending]; 0 = no shedding *)
  p_lossy : bool;  (** steady-state loss/dup/degrade vs clean links *)
  p_open_rate : float option;
      (** open-loop arrival rate (txn/s); [None] = closed loop *)
  p_clients : int;  (** closed-loop clients per DC *)
  p_strong_ratio : float;
  p_keys : int;
  p_max_crashes : int;  (** DC crashes; never exceeds [p_f] *)
  p_max_recoveries : int;
  p_max_partitions : int;
  p_max_degrades : int;
  p_max_sync_partitions : int;
  p_max_sync_degrades : int;
  p_max_node_crashes : int;  (** only with [p_persistence] *)
  p_horizon_us : int;
}

val profile_to_json : profile -> Sim.Json.t
val profile_of_json : Sim.Json.t -> (profile, string) result

(** Draw a profile; all constraints that {!Unistore.Nemesis.validate}
    enforces hold by construction (node crashes imply persistence and
    exclude DC crashes; partitions only on [dcs = 2f+1] topologies; DC
    crashes capped at [f]). *)
val draw : Sim.Rng.t -> horizon_us:int -> profile

(** The profile's seeded schedule
    ({!Unistore.Nemesis.random_schedule}). *)
val schedule_of : profile -> seed:int -> Unistore.Nemesis.schedule

(** Build the system, inject [sched], run the profile's workload to the
    horizon and evaluate all oracles. Raises [Invalid_argument] if
    [sched] fails {!Unistore.Nemesis.validate}. *)
val run_with :
  profile ->
  seed:int ->
  sched:Unistore.Nemesis.schedule ->
  Oracle.verdict list * Unistore.System.t

(** {2 Fingerprints} *)

val features : Unistore.System.t -> Oracle.verdict list -> string list
val fingerprint : string list -> string

(** {2 Trials and exploration} *)

type trial = {
  t_index : int;
  t_seed : int;
  t_profile : profile;
  t_schedule : Unistore.Nemesis.schedule;
  t_verdicts : Oracle.verdict list;
  t_features : string list;
  t_fingerprint : string;
  t_novel : bool;
}

type outcome = {
  o_trials : trial list;
  o_corpus : trial list;  (** novel trials, in discovery order *)
  o_failures : trial list;  (** trials with a failing oracle *)
}

val run_trial : index:int -> profile -> seed:int -> trial

(** [explore ~trials ~seed ()] runs the swarm loop; [on_trial] (if any)
    is called after each trial with novelty already decided. *)
val explore :
  ?horizon_us:int ->
  ?on_trial:(trial -> unit) ->
  trials:int ->
  seed:int ->
  unit ->
  outcome

(** {2 Interchange}

    A {e case} is the replayable core of a corpus entry or repro:
    profile, seed and the explicit schedule (explicit so shrunk
    schedules, which no longer match the seed's generated one,
    replay). *)

type case = {
  c_profile : profile;
  c_seed : int;
  c_schedule : Unistore.Nemesis.schedule;
}

val case_of_trial : trial -> case

(** Replay a case: {!run_with} on its stored schedule. *)
val replay : case -> Oracle.verdict list * Unistore.System.t

(** [true] iff replaying [sched] under the case's profile and seed
    fails oracle [oracle]. Schedules rejected by validation count as
    not failing — the shrinker's candidate predicate. *)
val schedule_fails :
  case -> oracle:string -> Unistore.Nemesis.schedule -> bool

val trial_to_json : trial -> Sim.Json.t

(** Repro document for a shrunk failure: kind ["repro"], the failing
    oracle and its detail, and the minimal schedule. *)
val repro_to_json : case -> failing:Oracle.verdict -> Sim.Json.t

(** Parse the replayable core of either document kind (corpus entry or
    repro). *)
val case_of_json : Sim.Json.t -> (case, string) result
