(* Schedule shrinking: atomized ddmin + singleton sweep, then window
   shortening and time snapping. See shrink.mli for the contract. *)

module N = Unistore.Nemesis

let sort_sched (s : N.schedule) =
  List.stable_sort (fun (a : N.step) (b : N.step) -> compare a.at_us b.at_us) s

(* Does [cl] close the fault opened by [op]? *)
let closes (op : N.event) (cl : N.event) =
  match (op, cl) with
  | N.Crash_dc a, N.Recover_dc b -> a = b
  | N.Partition (a, b), N.Heal (c, d) -> (a, b) = (c, d) || (a, b) = (d, c)
  | N.Degrade { src; dst; _ }, N.Restore { src = s; dst = d } ->
      src = s && dst = d
  | N.Crash_node { dc; part }, N.Restart_node { dc = d; part = p } ->
      dc = d && part = p
  | N.Slow_disk { dc; part; _ }, N.Restore_disk { dc = d; part = p } ->
      dc = d && part = p
  | _ -> false

(* Split into fixed steps (Heal_all, always kept) and removable atoms:
   each fault step paired with the first later step that closes it,
   everything else a singleton. *)
let atomize (sched : N.schedule) =
  let fixed, rest =
    List.partition (fun (s : N.step) -> s.ev = N.Heal_all) sched
  in
  let rec take_closer op acc = function
    | [] -> None
    | (s : N.step) :: tl ->
        if closes op s.ev then Some (s, List.rev_append acc tl)
        else take_closer op (s :: acc) tl
  in
  let rec build acc = function
    | [] -> List.rev acc
    | (s : N.step) :: tl -> (
        match take_closer s.ev [] tl with
        | Some (closer, tl') -> build ([ s; closer ] :: acc) tl'
        | None -> build ([ s ] :: acc) tl)
  in
  (fixed, build [] rest)

let rebuild fixed atoms = sort_sched (fixed @ List.concat atoms)

(* Zeller-style ddmin over the atom list. *)
let ddmin ~fails_atoms atoms =
  let split n xs =
    let len = List.length xs in
    let base = len / n and extra = len mod n in
    let rec go i xs acc =
      if i = n then List.rev acc
      else
        let k = base + if i < extra then 1 else 0 in
        let rec take k xs acc =
          if k = 0 then (List.rev acc, xs)
          else
            match xs with
            | [] -> (List.rev acc, [])
            | x :: tl -> take (k - 1) tl (x :: acc)
        in
        let chunk, rest = take k xs [] in
        go (i + 1) rest (chunk :: acc)
    in
    go 0 xs []
  in
  let rec loop atoms n =
    if List.length atoms <= 1 then atoms
    else
      let chunks = split n atoms in
      let complement i =
        List.concat
          (List.filteri (fun j _ -> j <> i) chunks |> List.map Fun.id)
      in
      let rec try_at i =
        if i >= List.length chunks then None
        else
          let cand = complement i in
          if cand <> [] && fails_atoms cand then Some cand else try_at (i + 1)
      in
      match try_at 0 with
      | Some reduced -> loop reduced (max 2 (n - 1))
      | None ->
          if n >= List.length atoms then atoms
          else loop atoms (min (List.length atoms) (2 * n))
  in
  loop atoms 2

(* Try dropping each single atom; restart from scratch on success. At
   the fixpoint, no single removal still fails: 1-minimality. *)
let rec sweep ~fails_atoms atoms =
  let rec go pre = function
    | [] -> None
    | a :: post ->
        let cand = List.rev_append pre post in
        if fails_atoms cand then Some cand else go (a :: pre) post
  in
  match go [] atoms with
  | Some reduced -> sweep ~fails_atoms reduced
  | None -> atoms

(* Halve each pair's fault window toward its opening time while the
   failure survives (at most 8 halvings, floor 1 ms). *)
let shorten_windows ~fails_atoms atoms =
  let arr = Array.of_list atoms in
  let all () = Array.to_list arr in
  Array.iteri
    (fun i atom ->
      match atom with
      | [ (o : N.step); (c : N.step) ] when c.at_us > o.at_us ->
          let budget = ref 8 and stop = ref false in
          while (not !stop) && !budget > 0 do
            decr budget;
            let (o : N.step), (c : N.step) =
              match arr.(i) with [ o; c ] -> (o, c) | _ -> assert false
            in
            let gap = c.at_us - o.at_us in
            if gap <= 1_000 then stop := true
            else begin
              let saved = arr.(i) in
              arr.(i) <- [ o; { c with at_us = o.at_us + (gap / 2) } ];
              if not (fails_atoms (all ())) then begin
                arr.(i) <- saved;
                stop := true
              end
            end
          done
      | _ -> ())
    arr;
  all ()

(* Round each step's time down to the grid when the failure survives
   (the candidate is re-sorted, so a snap may reorder steps). *)
let snap_times ~fails grid (sched : N.schedule) =
  let n = List.length sched in
  let cur = ref sched in
  for i = 0 to n - 1 do
    let cand =
      List.mapi
        (fun j (s : N.step) ->
          if j = i then { s with N.at_us = s.at_us - (s.at_us mod grid) }
          else s)
        !cur
      |> sort_sched
    in
    if cand <> !cur && fails cand then cur := cand
  done;
  !cur

let minimize ~fails sched =
  let sched = sort_sched sched in
  if not (fails sched) then sched
  else begin
    let fixed, atoms = atomize sched in
    let fails_atoms atoms = fails (rebuild fixed atoms) in
    let atoms = ddmin ~fails_atoms atoms in
    let atoms = sweep ~fails_atoms atoms in
    let atoms = shorten_windows ~fails_atoms atoms in
    let sched = rebuild fixed atoms in
    List.fold_left
      (fun s grid -> snap_times ~fails grid s)
      sched
      [ 1_000_000; 100_000; 10_000 ]
  end
