(* Swarm fault-space exploration: see explorer.mli for the model. *)

module U = Unistore
module Network = Net.Network
module Json = Sim.Json

type profile = {
  p_dcs : int;
  p_f : int;
  p_partitions : int;
  p_persistence : bool;
  p_admission : int;
  p_lossy : bool;
  p_open_rate : float option;
  p_clients : int;
  p_strong_ratio : float;
  p_keys : int;
  p_max_crashes : int;
  p_max_recoveries : int;
  p_max_partitions : int;
  p_max_degrades : int;
  p_max_sync_partitions : int;
  p_max_sync_degrades : int;
  p_max_node_crashes : int;
  p_horizon_us : int;
}

let profile_to_json p =
  Json.Obj
    [
      ("dcs", Json.Int p.p_dcs);
      ("f", Json.Int p.p_f);
      ("partitions", Json.Int p.p_partitions);
      ("persistence", Json.Bool p.p_persistence);
      ("admission_max_pending", Json.Int p.p_admission);
      ("lossy", Json.Bool p.p_lossy);
      ( "open_rate",
        match p.p_open_rate with None -> Json.Null | Some r -> Json.Float r );
      ("clients_per_dc", Json.Int p.p_clients);
      ("strong_ratio", Json.Float p.p_strong_ratio);
      ("keys", Json.Int p.p_keys);
      ("max_crashes", Json.Int p.p_max_crashes);
      ("max_recoveries", Json.Int p.p_max_recoveries);
      ("max_partitions", Json.Int p.p_max_partitions);
      ("max_degrades", Json.Int p.p_max_degrades);
      ("max_sync_partitions", Json.Int p.p_max_sync_partitions);
      ("max_sync_degrades", Json.Int p.p_max_sync_degrades);
      ("max_node_crashes", Json.Int p.p_max_node_crashes);
      ("horizon_us", Json.Int p.p_horizon_us);
    ]

let profile_of_json j =
  let ( let* ) = Result.bind in
  let int name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Fmt.str "profile: missing int field %S" name)
  in
  let float name =
    match Option.bind (Json.member name j) Json.to_float_opt with
    | Some v -> Ok v
    | None -> Error (Fmt.str "profile: missing float field %S" name)
  in
  let bool name =
    match Json.member name j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error (Fmt.str "profile: missing bool field %S" name)
  in
  let* p_dcs = int "dcs" in
  let* p_f = int "f" in
  let* p_partitions = int "partitions" in
  let* p_persistence = bool "persistence" in
  let* p_admission = int "admission_max_pending" in
  let* p_lossy = bool "lossy" in
  let p_open_rate =
    Option.bind (Json.member "open_rate" j) Json.to_float_opt
  in
  let* p_clients = int "clients_per_dc" in
  let* p_strong_ratio = float "strong_ratio" in
  let* p_keys = int "keys" in
  let* p_max_crashes = int "max_crashes" in
  let* p_max_recoveries = int "max_recoveries" in
  let* p_max_partitions = int "max_partitions" in
  let* p_max_degrades = int "max_degrades" in
  let* p_max_sync_partitions = int "max_sync_partitions" in
  let* p_max_sync_degrades = int "max_sync_degrades" in
  let* p_max_node_crashes = int "max_node_crashes" in
  let* p_horizon_us = int "horizon_us" in
  Ok
    {
      p_dcs;
      p_f;
      p_partitions;
      p_persistence;
      p_admission;
      p_lossy;
      p_open_rate;
      p_clients;
      p_strong_ratio;
      p_keys;
      p_max_crashes;
      p_max_recoveries;
      p_max_partitions;
      p_max_degrades;
      p_max_sync_partitions;
      p_max_sync_degrades;
      p_max_node_crashes;
      p_horizon_us;
    }

(* Swarm draw. The constraints Nemesis.validate enforces hold by
   construction: topologies stay at dcs = 2f+1 (partitions are always
   legal), DC crashes never exceed f (strong durability), and node
   crash/restart cycles imply persistence and exclude DC crashes (the
   two failure domains never mix, on any DC). *)
let draw rng ~horizon_us =
  let big = Sim.Rng.int rng 4 = 0 in
  let p_dcs = if big then 5 else 3 in
  let p_f = if big then 2 else 1 in
  let p_persistence = Sim.Rng.bool rng in
  let p_max_node_crashes =
    if p_persistence && Sim.Rng.bool rng then 1 + Sim.Rng.int rng 2 else 0
  in
  let p_max_crashes =
    if p_max_node_crashes > 0 then 0 else Sim.Rng.int rng (p_f + 1)
  in
  let p_max_recoveries =
    if p_max_crashes > 0 && Sim.Rng.bool rng then p_max_crashes else 0
  in
  let p_max_sync_partitions =
    if p_max_recoveries > 0 && Sim.Rng.bool rng then 1 else 0
  in
  let p_max_sync_degrades =
    if p_max_recoveries > 0 && Sim.Rng.bool rng then 1 else 0
  in
  let p_partitions = 2 + Sim.Rng.int rng 3 in
  {
    p_dcs;
    p_f;
    p_partitions;
    p_persistence;
    p_admission = (if Sim.Rng.bool rng then 0 else 64);
    p_lossy = Sim.Rng.bool rng;
    p_open_rate =
      (if Sim.Rng.int rng 4 = 0 then
         Some (200.0 +. Sim.Rng.float rng 600.0)
       else None);
    p_clients = 2 + Sim.Rng.int rng 3;
    p_strong_ratio = [| 0.0; 0.1; 0.3 |].(Sim.Rng.int rng 3);
    p_keys = 200 + (100 * Sim.Rng.int rng 4);
    p_max_crashes;
    p_max_recoveries;
    p_max_partitions = Sim.Rng.int rng 3;
    p_max_degrades = Sim.Rng.int rng 3;
    p_max_sync_partitions;
    p_max_sync_degrades;
    p_max_node_crashes;
    p_horizon_us = horizon_us;
  }

let schedule_of p ~seed =
  U.Nemesis.random_schedule ~seed ~dcs:p.p_dcs ~horizon_us:p.p_horizon_us
    ~max_crashes:p.p_max_crashes ~max_partitions:p.p_max_partitions
    ~max_degrades:p.p_max_degrades ~max_recoveries:p.p_max_recoveries
    ~max_sync_partitions:p.p_max_sync_partitions
    ~max_sync_degrades:p.p_max_sync_degrades
    ~max_node_crashes:p.p_max_node_crashes ~node_partitions:p.p_partitions ()

let topo_of = function
  | 3 -> Net.Topology.three_dcs ()
  | 4 -> Net.Topology.four_dcs ()
  | 5 -> Net.Topology.five_dcs ()
  | n -> Net.Topology.n_dcs n

let run_with p ~seed ~sched =
  let link_faults =
    if p.p_lossy then Net.Faults.default_spec else Net.Faults.clean_spec
  in
  let cfg =
    U.Config.default ~topo:(topo_of p.p_dcs) ~partitions:p.p_partitions
      ~f:p.p_f ~seed ~link_faults ~record_history:true ~profile:true
      ~client_failover_us:300_000 ~persistence:p.p_persistence
      ~admission_max_pending:p.p_admission ()
  in
  let sys = U.System.create cfg in
  for k = 0 to 15 do
    U.System.preload sys k (Crdt.Reg_write 0)
  done;
  U.Nemesis.inject sys sched;
  (* Workload stops at the schedule's Heal_all (3/4 of the horizon);
     the last quarter is the settle window the oracles rely on. *)
  let heal_at = p.p_horizon_us * 3 / 4 in
  let spec =
    {
      (Workload.Micro.default_spec ~partitions:p.p_partitions) with
      Workload.Micro.keys = p.p_keys;
      strong_ratio = p.p_strong_ratio;
      think_time_us = 1_000;
    }
  in
  (match p.p_open_rate with
  | Some rate ->
      let rng =
        Sim.Rng.split (Sim.Engine.rng (U.System.engine sys)) ~id:0xa111
      in
      let arrivals =
        Workload.Openloop.arrivals ~rng
          ~rate:(Workload.Openloop.constant rate)
          ~until_us:heal_at
      in
      ignore
        (Workload.Openloop.install sys ~arrivals
           ~body:(Workload.Openloop.micro_body spec))
  | None ->
      let stop () = U.System.now sys >= heal_at in
      for i = 0 to (p.p_clients * p.p_dcs) - 1 do
        ignore
          (U.System.spawn_client sys ~dc:(i mod p.p_dcs) (fun c ->
               Workload.Micro.client_body spec ~stop c))
      done);
  U.System.run sys ~until:p.p_horizon_us;
  (* Drain to quiescence before judging: the periodic tasks never
     stop, so the engine never runs empty — instead run extra settle
     slices until no certification is pending, no client call is in
     flight, no DC is syncing, and the reliable layer holds no
     unacknowledged data-plane messages (on lossy profiles the tail of
     causal replication can sit in retransmission for several RTOs
     after the protocol counters reach zero — judging durability or
     convergence before it lands reports phantom losses). Background
     kinds are exempt: failure-detector pings and stability gossip are
     always momentarily in flight, and so is the strong-certification
     family — idle groups keep certifying dummy heartbeat transactions
     to advance the strong frontier, so accept/deliver traffic never
     ceases. Then one grace slice so delivered messages finish
     processing. A system still unquiet after the bounded budget is
     what the liveness oracle is for. *)
  let background_kind = function
    | "fd_ping" | "heartbeat" | "stablevec" | "knownvec_global" | "kv_up"
    | "stable_down"
    (* strong-heartbeat certification churn *)
    | "accept" | "accept_ack" | "deliver" | "learn_decision" | "decision"
    | "already_decided" | "prepare_strong" | "nack" ->
        true
    | _ -> false
  in
  let quiet () =
    U.System.pending_strong sys = 0
    && U.System.clients_in_flight sys = 0
    && Network.unacked_matching
         (U.System.network sys)
         ~f:(fun k -> not (background_kind k))
       = 0
    && not
         (List.exists
            (fun d ->
              (not (Network.dc_failed (U.System.network sys) d))
              && U.System.dc_syncing sys d)
            (List.init p.p_dcs Fun.id))
  in
  let tries = ref 16 in
  while (not (quiet ())) && !tries > 0 do
    decr tries;
    U.System.run sys ~until:(U.System.now sys + 500_000)
  done;
  U.System.run sys ~until:(U.System.now sys + 200_000);
  (Oracle.all sys ~schedule:sched, sys)

(* Fingerprints: which mechanisms did the trial exercise? Only
   deterministic signals — the profiler's per-label event counts (wall
   samples and allocation are excluded), drop/retransmission counters,
   a whitelist of protocol counters, failing oracles. *)

let counter_whitelist =
  [
    "causal_presumed_aborts_total";
    "client_failovers_total";
    "fd_false_suspicions_total";
    "fd_restorations_total";
    "fd_suspicions_total";
    "local_catchup_bytes_total";
    "node_restarts_total";
    "open_loop_arrivals_total";
    "replay_entries_total";
    "strong_aborted_total";
    "sync_log_bytes_total";
    "sync_peer_drops_total";
    "sync_snapshot_bytes_total";
    "txn_overloaded_total";
    "wal_torn_truncations_total";
  ]

(* "dc3/replica/handle:Replicate" -> "replica/handle:Replicate": the
   same code path at a different DC is not new coverage. *)
let normalize_label l =
  match String.index_opt l '/' with
  | Some i
    when i >= 3
         && l.[0] = 'd'
         && l.[1] = 'c'
         && (let digits = ref true in
             for j = 2 to i - 1 do
               if not ('0' <= l.[j] && l.[j] <= '9') then digits := false
             done;
             !digits) ->
      String.sub l (i + 1) (String.length l - i - 1)
  | _ -> l

let features sys verdicts =
  let prof = Sim.Engine.prof (U.System.engine sys) in
  let net = U.System.network sys in
  let metrics = U.System.metrics sys in
  let labels =
    List.filter_map
      (fun (e : Sim.Prof.entry) ->
        if e.e_events > 0 then Some ("lbl:" ^ normalize_label e.e_label)
        else None)
      (Sim.Prof.entries prof)
  in
  let flag name v = if v > 0 then [ name ] else [] in
  let counters =
    List.concat_map
      (fun name ->
        let total =
          List.fold_left
            (fun a (_, c) -> a + Sim.Metrics.counter_value c)
            0
            (Sim.Metrics.counters_matching metrics name)
        in
        if total > 0 then [ "ctr:" ^ name ] else [])
      counter_whitelist
  in
  let fails =
    List.filter_map
      (fun (v : Oracle.verdict) ->
        if v.pass then None else Some ("fail:" ^ v.oracle))
      verdicts
  in
  List.sort_uniq String.compare
    (labels
    @ flag "drop:crash" (Network.dropped_crash net)
    @ flag "drop:loss" (Network.dropped_loss net)
    @ flag "drop:partition" (Network.dropped_partition net)
    @ flag "net:retransmit" (Network.retransmissions net)
    @ flag "net:dup" (Network.duplicates_suppressed net)
    @ counters @ fails)

(* FNV-1a over the sorted feature strings, 0x1f as separator. *)
let fingerprint feats =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix byte = h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) prime in
  List.iter
    (fun s ->
      String.iter (fun c -> mix (Char.code c)) s;
      mix 0x1f)
    feats;
  Printf.sprintf "%016Lx" !h

type trial = {
  t_index : int;
  t_seed : int;
  t_profile : profile;
  t_schedule : U.Nemesis.schedule;
  t_verdicts : Oracle.verdict list;
  t_features : string list;
  t_fingerprint : string;
  t_novel : bool;
}

type outcome = {
  o_trials : trial list;
  o_corpus : trial list;
  o_failures : trial list;
}

let run_trial ~index p ~seed =
  let sched = schedule_of p ~seed in
  let verdicts, sys = run_with p ~seed ~sched in
  let feats = features sys verdicts in
  {
    t_index = index;
    t_seed = seed;
    t_profile = p;
    t_schedule = sched;
    t_verdicts = verdicts;
    t_features = feats;
    t_fingerprint = fingerprint feats;
    t_novel = false;
  }

let explore ?(horizon_us = 8_000_000) ?on_trial ~trials ~seed () =
  let rng = Sim.Rng.create (seed lxor 0x58504c) in
  let union = Hashtbl.create 256 in
  let acc = ref [] in
  for i = 0 to trials - 1 do
    let p = draw rng ~horizon_us in
    let tseed = 1 + Sim.Rng.int rng 0x3FFFFFFF in
    let t = run_trial ~index:i p ~seed:tseed in
    let novel =
      List.exists (fun f -> not (Hashtbl.mem union f)) t.t_features
    in
    List.iter (fun f -> Hashtbl.replace union f ()) t.t_features;
    let t = { t with t_novel = novel } in
    Option.iter (fun f -> f t) on_trial;
    acc := t :: !acc
  done;
  let ts = List.rev !acc in
  {
    o_trials = ts;
    o_corpus = List.filter (fun t -> t.t_novel) ts;
    o_failures = List.filter (fun t -> not (Oracle.ok t.t_verdicts)) ts;
  }

type case = {
  c_profile : profile;
  c_seed : int;
  c_schedule : U.Nemesis.schedule;
}

let case_of_trial t =
  { c_profile = t.t_profile; c_seed = t.t_seed; c_schedule = t.t_schedule }

let replay case = run_with case.c_profile ~seed:case.c_seed ~sched:case.c_schedule

let schedule_fails case ~oracle sched =
  match run_with case.c_profile ~seed:case.c_seed ~sched with
  | verdicts, _ ->
      List.exists
        (fun (v : Oracle.verdict) -> v.oracle = oracle && not v.pass)
        verdicts
  | exception Invalid_argument _ -> false

let trial_to_json t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("kind", Json.String "corpus");
      ("seed", Json.Int t.t_seed);
      ("fingerprint", Json.String t.t_fingerprint);
      ("profile", profile_to_json t.t_profile);
      ( "features",
        Json.List (List.map (fun f -> Json.String f) t.t_features) );
      ("verdicts", Oracle.to_json t.t_verdicts);
      ("schedule", U.Nemesis.schedule_to_json t.t_schedule);
    ]

let repro_to_json case ~failing:(v : Oracle.verdict) =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("kind", Json.String "repro");
      ("failing_oracle", Json.String v.oracle);
      ("detail", Json.String v.detail);
      ("seed", Json.Int case.c_seed);
      ("profile", profile_to_json case.c_profile);
      ("schedule", U.Nemesis.schedule_to_json case.c_schedule);
      ( "replay",
        Json.String "dune exec bin/explore.exe -- --replay <this file>" );
    ]

let case_of_json j =
  let ( let* ) = Result.bind in
  let* c_seed =
    match Option.bind (Json.member "seed" j) Json.to_int_opt with
    | Some s -> Ok s
    | None -> Error "case: missing int field \"seed\""
  in
  let* c_profile =
    match Json.member "profile" j with
    | Some pj -> profile_of_json pj
    | None -> Error "case: missing \"profile\""
  in
  let* c_schedule =
    match Json.member "schedule" j with
    | Some sj -> U.Nemesis.schedule_of_json sj
    | None -> Error "case: missing \"schedule\""
  in
  Ok { c_profile; c_seed; c_schedule }
