(* Message transport between simulated nodes.

   Models the paper's system model (§2) plus the resources its evaluation
   exercises (§8):

   - WAN latency from the deployment topology, plus bounded uniform jitter;
   - per-node CPU: a node processes one message at a time; each message
     has a service cost (microseconds) charged to the node, so nodes
     saturate and queueing delay emerges, which is what shapes the
     throughput/latency curves of §8;
   - whole-data-center crash failures: a failed DC neither sends nor
     receives from the moment of the crash (§2 considers only whole-DC
     failures).

   Channel reliability comes in two regimes:

   - Without faults (the default), channels are reliable FIFO: per-(src,
     dst) delivery times are monotone and messages between correct data
     centers are always delivered — the idealised network the paper's
     happy-path evaluation assumes.
   - With a [Faults.t] installed ([enable_faults] / [set_faults]),
     inter-DC links become lossy: messages can be dropped, duplicated,
     delayed (gray links) or cut off by heal-able partitions. The
     transport then runs a sequence-numbered ack/retransmission layer
     per (src, dst) channel — cumulative acks, timeout with exponential
     backoff, receiver-side reordering and dedup — restoring exactly-once
     FIFO *eventual* delivery, which is all the paper's model promises.
     Intra-DC links stay reliable (the WAN is the adversary).

   Dropped messages are counted by cause (DC crash, random loss,
   partition) and optionally reported to a [Sim.Trace.t].

   The module is parametric in the message type: the protocol layer
   instantiates it with its own message variant. *)

type addr = int

type drop_cause = Crash | Loss | Partition

let drop_cause_name = function
  | Crash -> "crash"
  | Loss -> "loss"
  | Partition -> "partition"

type 'm node = {
  addr : addr;
  dc : int;
  (* client nodes are colocated with a DC for latency purposes only:
     they are external sessions, not part of the DC's failure domain,
     so they keep sending and receiving while the DC is crashed *)
  client : bool;
  (* profiling identity: handler events run as "<name>/handle:<kind>".
     Labels are interned once per (node, kind) through [lab_cache]. *)
  name : string;
  lab_cache : (string, Sim.Prof.label) Hashtbl.t;
  cost : 'm -> int;
  handler : 'm -> unit;
  mutable busy_until : int;
  mutable processed : int;
  mutable busy_us : int;
  (* node-level failure domain: a single machine down while its DC is
     up. Distinct from the DC crash so one process can restart with its
     disk intact while siblings keep serving. *)
  mutable down : bool;
  (* bumped on every node-level restart; pre-crash in-flight traffic
     addressed to the node is discarded by the epoch check *)
  mutable incarnation : int;
}

(* Sender half of a reliable channel. [unacked] holds sent-but-unacked
   messages in ascending sequence order; the retransmission timer walks it
   with exponential backoff until a cumulative ack clears it. *)
type 'm tx_flow = {
  mutable next_seq : int;
  mutable unacked : (int * 'm) list;
  base_rto_us : int;
  mutable rto_us : int;
  mutable timer_armed : bool;
  mutable dup_acks : int;
  mutable in_recovery : bool;
}

(* Receiver half: next in-order sequence number plus an out-of-order
   buffer. Anything below [expected] (or already buffered) is a duplicate
   and is suppressed. *)
type 'm rx_flow = {
  mutable expected : int;
  ooo : (int, 'm) Hashtbl.t;
}

(* Optional instrumentation sink. When installed, the transport feeds a
   metrics registry: per-message-kind and per-DC-link traffic counters
   (messages and estimated bytes), reliable-layer counters
   (retransmits, fast retransmits, duplicate acks, suppressed
   duplicates, acks), drops by cause, and per-link backlog gauges.
   Handle lookups are cached here so the per-message cost is a hash hit
   plus an increment; with no meter installed the cost is one branch. *)
type 'm meter = {
  reg : Sim.Metrics.t;
  kind_of : 'm -> string;
  size_of : 'm -> int;  (* estimated wire bytes *)
  by_kind_sent : (string, Sim.Metrics.counter * Sim.Metrics.counter) Hashtbl.t;
  by_kind_recv : (string, Sim.Metrics.counter) Hashtbl.t;
  by_link : (int * int, Sim.Metrics.counter * Sim.Metrics.counter) Hashtbl.t;
  by_link_backlog : (int * int, Sim.Metrics.gauge) Hashtbl.t;
  m_retransmit : Sim.Metrics.counter;
  m_fast_retransmit : Sim.Metrics.counter;
  m_dup_ack : Sim.Metrics.counter;
  m_dup_suppressed : Sim.Metrics.counter;
  m_ack : Sim.Metrics.counter;
  m_drop_crash : Sim.Metrics.counter;
  m_drop_loss : Sim.Metrics.counter;
  m_drop_partition : Sim.Metrics.counter;
}

type 'm t = {
  eng : Sim.Engine.t;
  topo : Topology.t;
  rng : Sim.Rng.t;
  mutable nodes : 'm node array;
  mutable node_count : int;
  mutable failed : bool array;
  failed_at : int array;  (* crash time per DC, -1 when never/not failed *)
  epochs : int array;  (* per-DC incarnation, bumped on recovery *)
  fifo : (int * int, int) Hashtbl.t;  (* (src, dst) -> last arrival time *)
  mutable faults : Faults.t option;
  tx_flows : (int * int, 'm tx_flow) Hashtbl.t;
  rx_flows : (int * int, 'm rx_flow) Hashtbl.t;
  mutable trace : Sim.Trace.t;
  mutable meter : 'm meter option;
  (* transport-level profiling labels, interned on first use so the
     profiler can be enabled either before or after [create] *)
  prof : Sim.Prof.t;
  mutable lab_deliver : Sim.Prof.label;
  mutable lab_ack : Sim.Prof.label;
  mutable lab_retransmit : Sim.Prof.label;
  mutable rto_cap_us : int;  (* retransmission-backoff ceiling *)
  mutable sent : int;
  mutable dropped_crash : int;
  mutable dropped_loss : int;
  mutable dropped_partition : int;
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable dups_suppressed : int;
}

(* Retransmission backoff is capped so a healed link catches up on its
   backlog before Ω can falsely re-suspect the peer, at the price of a
   few more (dropped) probes while a long partition lasts. The effective
   cap is per-transport ([set_rto_cap]) and is normally derived from the
   deployed failure-detector configuration plus the worst-case link RTT
   (see [Unistore.Config.rto_cap_us]); this constant is only the
   fallback for transports wired without a protocol configuration. *)
let default_rto_cap_us = 500_000

let create eng topo =
  {
    eng;
    topo;
    rng = Sim.Rng.split (Sim.Engine.rng eng) ~id:0x4e45;
    nodes = [||];
    node_count = 0;
    failed = Array.make (Topology.dcs topo) false;
    failed_at = Array.make (Topology.dcs topo) (-1);
    epochs = Array.make (Topology.dcs topo) 0;
    fifo = Hashtbl.create 1024;
    faults = None;
    tx_flows = Hashtbl.create 256;
    rx_flows = Hashtbl.create 256;
    trace = Sim.Trace.disabled;
    meter = None;
    prof = Sim.Engine.prof eng;
    lab_deliver = Sim.Prof.none;
    lab_ack = Sim.Prof.none;
    lab_retransmit = Sim.Prof.none;
    rto_cap_us = default_rto_cap_us;
    sent = 0;
    dropped_crash = 0;
    dropped_loss = 0;
    dropped_partition = 0;
    retransmissions = 0;
    acks_sent = 0;
    dups_suppressed = 0;
  }

let topology t = t.topo
let engine t = t.eng

(* Transport-level attribution labels, interned lazily: [Prof.label]
   returns [none] while the profiler is off, so the memo only sticks
   once it is on. *)
let lab_deliver t =
  if t.lab_deliver <> Sim.Prof.none then t.lab_deliver
  else begin
    let l = Sim.Prof.label t.prof "net/deliver" in
    t.lab_deliver <- l;
    l
  end

let lab_ack t =
  if t.lab_ack <> Sim.Prof.none then t.lab_ack
  else begin
    let l = Sim.Prof.label t.prof "net/ack" in
    t.lab_ack <- l;
    l
  end

let lab_retransmit t =
  if t.lab_retransmit <> Sim.Prof.none then t.lab_retransmit
  else begin
    let l = Sim.Prof.label t.prof "net/retransmit" in
    t.lab_retransmit <- l;
    l
  end

(* "<node>/handle:<kind>" label for a handler-execution event, cached
   per (node, kind). Only called when the profiler is on. *)
let handler_label t n kind =
  match Hashtbl.find_opt n.lab_cache kind with
  | Some l -> l
  | None ->
      let l = Sim.Prof.label t.prof (n.name ^ "/handle:" ^ kind) in
      Hashtbl.replace n.lab_cache kind l;
      l

(* Install a fault model: switches inter-DC channels to the lossy
   transport with the ack/retransmission layer. Idempotent. *)
let set_faults t f = t.faults <- Some f

let enable_faults t =
  match t.faults with
  | Some f -> f
  | None ->
      let f = Faults.create ~dcs:(Topology.dcs t.topo) in
      t.faults <- Some f;
      f

let faults t = t.faults
let set_trace t trace = t.trace <- trace

let set_rto_cap t cap =
  if cap <= 0 then invalid_arg "Network.set_rto_cap: cap must be positive";
  t.rto_cap_us <- cap

let rto_cap t = t.rto_cap_us

let set_meter t reg ~kind_of ~size_of =
  let c ?labels name = Sim.Metrics.counter reg ?labels name in
  t.meter <-
    Some
      {
        reg;
        kind_of;
        size_of;
        by_kind_sent = Hashtbl.create 64;
        by_kind_recv = Hashtbl.create 64;
        by_link = Hashtbl.create 32;
        by_link_backlog = Hashtbl.create 32;
        m_retransmit = c "net_retransmits_total";
        m_fast_retransmit = c "net_fast_retransmits_total";
        m_dup_ack = c "net_dup_acks_total";
        m_dup_suppressed = c "net_dups_suppressed_total";
        m_ack = c "net_acks_total";
        m_drop_crash = c ~labels:[ ("cause", "crash") ] "net_dropped_total";
        m_drop_loss = c ~labels:[ ("cause", "loss") ] "net_dropped_total";
        m_drop_partition =
          c ~labels:[ ("cause", "partition") ] "net_dropped_total";
      }

(* Cached (counter, bytes-counter) per message kind / DC link. *)
let meter_kind_sent m kind =
  match Hashtbl.find_opt m.by_kind_sent kind with
  | Some pair -> pair
  | None ->
      let labels = [ ("kind", kind) ] in
      let pair =
        ( Sim.Metrics.counter m.reg ~labels "net_sent_total",
          Sim.Metrics.counter m.reg ~labels "net_sent_bytes" )
      in
      Hashtbl.replace m.by_kind_sent kind pair;
      pair

let meter_kind_recv m kind =
  match Hashtbl.find_opt m.by_kind_recv kind with
  | Some ctr -> ctr
  | None ->
      let ctr =
        Sim.Metrics.counter m.reg ~labels:[ ("kind", kind) ] "net_received_total"
      in
      Hashtbl.replace m.by_kind_recv kind ctr;
      ctr

let link_labels ~src_dc ~dst_dc =
  [ ("src_dc", string_of_int src_dc); ("dst_dc", string_of_int dst_dc) ]

let meter_link m ~src_dc ~dst_dc =
  match Hashtbl.find_opt m.by_link (src_dc, dst_dc) with
  | Some pair -> pair
  | None ->
      let labels = link_labels ~src_dc ~dst_dc in
      let pair =
        ( Sim.Metrics.counter m.reg ~labels "net_link_sent_total",
          Sim.Metrics.counter m.reg ~labels "net_link_sent_bytes" )
      in
      Hashtbl.replace m.by_link (src_dc, dst_dc) pair;
      pair

let meter_backlog m ~src_dc ~dst_dc =
  match Hashtbl.find_opt m.by_link_backlog (src_dc, dst_dc) with
  | Some g -> g
  | None ->
      let g =
        Sim.Metrics.gauge m.reg
          ~labels:(link_labels ~src_dc ~dst_dc)
          "net_flow_backlog"
      in
      Hashtbl.replace m.by_link_backlog (src_dc, dst_dc) g;
      g

(* Backlog delta on the (src_dc, dst_dc) gauge; the gauge also tracks
   its all-time maximum, the peak flow-buffer depth. *)
let meter_backlog_add t ~src_dc ~dst_dc delta =
  match t.meter with
  | None -> ()
  | Some m ->
      if delta <> 0 then
        Sim.Metrics.gauge_add (meter_backlog m ~src_dc ~dst_dc)
          (float_of_int delta)

let count_drop t cause ~src_dc ~dst_dc =
  (match cause with
  | Crash -> t.dropped_crash <- t.dropped_crash + 1
  | Loss -> t.dropped_loss <- t.dropped_loss + 1
  | Partition -> t.dropped_partition <- t.dropped_partition + 1);
  (match t.meter with
  | None -> ()
  | Some m ->
      Sim.Metrics.incr
        (match cause with
        | Crash -> m.m_drop_crash
        | Loss -> m.m_drop_loss
        | Partition -> m.m_drop_partition));
  if Sim.Trace.enabled t.trace then
    Sim.Trace.emitf t.trace ~source:"net" ~kind:"drop" "%s dc%d->dc%d"
      (drop_cause_name cause) src_dc dst_dc

let register t ?(client = false) ?name ~dc ~cost handler =
  if dc < 0 || dc >= Topology.dcs t.topo then
    invalid_arg "Network.register: no such data center";
  let addr = t.node_count in
  let name =
    match name with Some n -> n | None -> "node" ^ string_of_int addr
  in
  let node =
    {
      addr;
      dc;
      client;
      name;
      lab_cache = Hashtbl.create 8;
      cost;
      handler;
      busy_until = 0;
      processed = 0;
      busy_us = 0;
      down = false;
      incarnation = 0;
    }
  in
  if t.node_count = Array.length t.nodes then begin
    let nodes = Array.make (max 64 (2 * t.node_count)) node in
    Array.blit t.nodes 0 nodes 0 t.node_count;
    t.nodes <- nodes
  end;
  t.nodes.(t.node_count) <- node;
  t.node_count <- t.node_count + 1;
  addr

let node t addr =
  if addr < 0 || addr >= t.node_count then
    invalid_arg "Network.node: unknown address";
  t.nodes.(addr)

let dc_of t addr = (node t addr).dc
let dc_failed t dc = t.failed.(dc)

(* A node is dead iff it crashed on its own ([down]) or its DC crashed
   and it belongs to the DC's failure domain — client nodes are external
   and outlive the crash. *)
let node_failed t n = n.down || (t.failed.(n.dc) && not n.client)

(* Incarnation used for in-flight staleness checks: the DC-crash epoch
   paired with the node's own restart incarnation. Client nodes never
   lose state, so their incarnation is constant: a message between a
   client and a live peer must survive the colocated DC's recovery
   (which bumps the DC epoch to invalidate pre-crash traffic). *)
let epoch_of t n = if n.client then (0, 0) else (t.epochs.(n.dc), n.incarnation)

let fail_dc t dc =
  if dc < 0 || dc >= Topology.dcs t.topo then
    invalid_arg "Network.fail_dc: no such data center";
  if not t.failed.(dc) then begin
    t.failed.(dc) <- true;
    t.failed_at.(dc) <- Sim.Engine.now t.eng
  end

let dc_failed_at t dc =
  if dc < 0 || dc >= Topology.dcs t.topo then
    invalid_arg "Network.dc_failed_at: no such data center";
  if t.failed.(dc) then Some t.failed_at.(dc) else None

(* Revive a crashed data center. Its nodes come back with no in-flight
   state: every FIFO channel and reliable-layer flow touching the DC is
   discarded on both sides, so post-recovery traffic starts fresh
   sequence spaces in both directions (resetting only the tx side would
   leave the peer's rx [expected] suppressing the fresh seq-0 sends as
   duplicates). Messages buffered for the DC while it was down died with
   the crash — the protocol layer's rejoin sync recovers the content. *)
(* Discard every FIFO channel and reliable-layer flow touching a node
   matched by [matches], on both sides, so post-recovery traffic starts
   fresh sequence spaces in both directions (resetting only the tx side
   would leave the peer's rx [expected] suppressing the fresh seq-0
   sends as duplicates). *)
let reset_channels t ~matches =
  let stale tbl =
    Hashtbl.fold
      (fun ((src, dst) as key) _ acc ->
        if matches src || matches dst then key :: acc else acc)
      tbl []
  in
  List.iter (Hashtbl.remove t.fifo) (stale t.fifo);
  List.iter
    (fun ((src, dst) as key) ->
      (match Hashtbl.find_opt t.tx_flows key with
      | Some fl ->
          if fl.unacked <> [] then
            meter_backlog_add t ~src_dc:t.nodes.(src).dc
              ~dst_dc:t.nodes.(dst).dc
              (-List.length fl.unacked);
          (* an armed retransmission timer still references this
             record; emptying it makes the orphaned fire a no-op
             instead of replaying stale sequence numbers into the
             fresh flow's sequence space *)
          fl.unacked <- []
      | None -> ());
      Hashtbl.remove t.tx_flows key)
    (stale t.tx_flows);
  List.iter (Hashtbl.remove t.rx_flows) (stale t.rx_flows)

let recover_dc t dc =
  if dc < 0 || dc >= Topology.dcs t.topo then
    invalid_arg "Network.recover_dc: no such data center";
  if t.failed.(dc) then begin
    t.failed.(dc) <- false;
    t.failed_at.(dc) <- -1;
    (* new incarnation: anything still in flight from before the crash
       (stale data packets, cumulative acks) is discarded on arrival *)
    t.epochs.(dc) <- t.epochs.(dc) + 1;
    (* client nodes kept their state through the crash: their channels
       to live DCs are intact and must not be reset *)
    reset_channels t ~matches:(fun addr ->
        addr >= 0 && addr < t.node_count
        && t.nodes.(addr).dc = dc
        && not t.nodes.(addr).client)
  end

(* Node-level failure domain: one machine dies while its DC stays up.
   Client sessions are not machines of the deployment, so they cannot
   node-crash. *)
let fail_node t addr =
  let n = node t addr in
  if n.client then invalid_arg "Network.fail_node: client nodes cannot crash";
  n.down <- true

let node_down t addr = (node t addr).down

(* Restart a crashed machine: like [recover_dc] but scoped to one
   address — fresh incarnation (in-flight pre-crash traffic dies on the
   epoch check), both-sided channel reset, and an idle CPU. *)
let recover_node t addr =
  let n = node t addr in
  if n.down then begin
    n.down <- false;
    n.incarnation <- n.incarnation + 1;
    n.busy_until <- 0;
    reset_channels t ~matches:(fun a -> a = addr)
  end

(* Base one-way transit time of a physical transmission, jitter included. *)
let transit_us t ~src_dc ~dst_dc =
  let base = Topology.one_way t.topo ~src:src_dc ~dst:dst_dc in
  let jitter =
    let j = Topology.jitter_us t.topo in
    if j = 0 then 0 else Sim.Rng.int t.rng (j + 1)
  in
  base + jitter

(* Process a message at its destination node: serialize on the node's CPU
   and run the handler once the service time has been paid. *)
let process t dst_node msg =
  let now = Sim.Engine.now t.eng in
  let start = max now dst_node.busy_until in
  let cost = dst_node.cost msg in
  let finish = start + cost in
  dst_node.busy_until <- finish;
  dst_node.busy_us <- dst_node.busy_us + cost;
  let ep = epoch_of t dst_node in
  (* handler events carry the node's own identity plus the message kind
     (when a meter names kinds), so replica work is attributed to
     "dcN/replica/handle:Replicate" rather than to whoever sent it *)
  let label =
    if Sim.Prof.is_on t.prof then
      handler_label t dst_node
        (match t.meter with Some m -> m.kind_of msg | None -> "msg")
    else Sim.Prof.none
  in
  Sim.Engine.schedule_at t.eng ~label ~time:finish (fun () ->
      if (not (node_failed t dst_node)) && ep = epoch_of t dst_node then begin
        dst_node.processed <- dst_node.processed + 1;
        (match t.meter with
        | None -> ()
        | Some m -> Sim.Metrics.incr (meter_kind_recv m (m.kind_of msg)));
        dst_node.handler msg
      end)

(* ------------------------------------------------------------------ *)
(* Reliable (default) path: FIFO channels, no loss between live DCs.    *)

let direct_send t ~src_node ~dst_node msg =
  let now = Sim.Engine.now t.eng in
  let arrival = now + transit_us t ~src_dc:src_node.dc ~dst_dc:dst_node.dc in
  (* FIFO per channel: never deliver before an earlier send's arrival. *)
  let key = (src_node.addr, dst_node.addr) in
  let arrival =
    match Hashtbl.find_opt t.fifo key with
    | Some last when arrival <= last -> last + 1
    | _ -> arrival
  in
  Hashtbl.replace t.fifo key arrival;
  let ep = (epoch_of t src_node, epoch_of t dst_node) in
  Sim.Engine.schedule_at t.eng ~label:(lab_deliver t) ~time:arrival (fun () ->
      if ep <> (epoch_of t src_node, epoch_of t dst_node) then ()
      else if node_failed t dst_node then
        count_drop t Crash ~src_dc:src_node.dc ~dst_dc:dst_node.dc
      else process t dst_node msg)

(* ------------------------------------------------------------------ *)
(* Lossy path: ack/retransmission layer over faulty inter-DC links.     *)

let tx_flow t ~src ~dst =
  match Hashtbl.find_opt t.tx_flows (src, dst) with
  | Some fl -> fl
  | None ->
      let src_dc = (node t src).dc and dst_dc = (node t dst).dc in
      (* initial timeout: a full round trip plus jitter and slack *)
      let base_rto =
        (2 * Topology.one_way t.topo ~src:src_dc ~dst:dst_dc)
        + (2 * Topology.jitter_us t.topo)
        + 10_000
      in
      let fl =
        {
          next_seq = 0;
          unacked = [];
          base_rto_us = base_rto;
          rto_us = base_rto;
          timer_armed = false;
          dup_acks = 0;
          in_recovery = false;
        }
      in
      Hashtbl.replace t.tx_flows (src, dst) fl;
      fl

let rx_flow t ~src ~dst =
  match Hashtbl.find_opt t.rx_flows (src, dst) with
  | Some rx -> rx
  | None ->
      let rx = { expected = 0; ooo = Hashtbl.create 8 } in
      Hashtbl.replace t.rx_flows (src, dst) rx;
      rx

(* Cumulative ack for channel (src, dst): everything up to [upto] has
   been received in order. Acks traverse the same faulty links but cost
   no CPU at the sender (pure transport bookkeeping). *)
let rec send_ack t ~src ~dst ~upto =
  let src_node = node t src and dst_node = node t dst in
  (* the ack travels dst -> src *)
  match t.faults with
  | None -> ()
  | Some f -> (
      match Faults.judge f t.rng ~src:dst_node.dc ~dst:src_node.dc with
      | Faults.Cut | Faults.Lost -> ()  (* lost acks just delay the sender *)
      | Faults.Deliver { extra_us; _ } ->
          t.acks_sent <- t.acks_sent + 1;
          (match t.meter with
          | None -> ()
          | Some m -> Sim.Metrics.incr m.m_ack);
          let delay =
            transit_us t ~src_dc:dst_node.dc ~dst_dc:src_node.dc + extra_us
          in
          let ep = (epoch_of t src_node, epoch_of t dst_node) in
          Sim.Engine.schedule t.eng ~label:(lab_ack t) ~delay (fun () ->
              if
                ep = (epoch_of t src_node, epoch_of t dst_node)
                && not (node_failed t src_node)
              then
                match Hashtbl.find_opt t.tx_flows (src, dst) with
                | None -> ()
                | Some fl ->
                    let before = List.length fl.unacked in
                    fl.unacked <-
                      List.filter (fun (s, _) -> s > upto) fl.unacked;
                    let after = List.length fl.unacked in
                    if after <> before then begin
                      (* progress resets the backoff and ends recovery *)
                      meter_backlog_add t ~src_dc:src_node.dc
                        ~dst_dc:dst_node.dc (after - before);
                      fl.rto_us <- fl.base_rto_us;
                      fl.dup_acks <- 0;
                      fl.in_recovery <- false
                    end
                    else if fl.unacked <> [] && not fl.in_recovery then begin
                      (* duplicate cumulative ack: the receiver sees
                         packets beyond a sequence gap — a lost message,
                         or fresh sends landing right after a partition
                         heals. After three duplicates, retransmit the
                         missing head immediately rather than waiting
                         out the backed-off timeout (TCP fast
                         retransmit); the reset timer resends the rest
                         of the window if the gap is wider than one.
                         The [in_recovery] latch allows one fast
                         retransmit per stall: resends arrive as a burst
                         of further duplicate acks, which must not
                         trigger resends of their own. *)
                      fl.dup_acks <- fl.dup_acks + 1;
                      (match t.meter with
                      | None -> ()
                      | Some m -> Sim.Metrics.incr m.m_dup_ack);
                      if fl.dup_acks >= 3 then begin
                        fl.dup_acks <- 0;
                        fl.in_recovery <- true;
                        fl.rto_us <- fl.base_rto_us;
                        match fl.unacked with
                        | (s, m) :: _ ->
                            t.retransmissions <- t.retransmissions + 1;
                            (match t.meter with
                            | None -> ()
                            | Some mt ->
                                Sim.Metrics.incr mt.m_retransmit;
                                Sim.Metrics.incr mt.m_fast_retransmit);
                            transmit t f ~src ~dst s m
                        | [] -> ()
                      end
                    end))

(* A data packet reached the destination: deduplicate, deliver in order,
   flush the out-of-order buffer, and ack cumulatively. *)
and deliver_data t ~src ~dst seq msg =
  let src_node = node t src and dst_node = node t dst in
  if node_failed t dst_node then
    count_drop t Crash ~src_dc:src_node.dc ~dst_dc:dst_node.dc
  else begin
    let rx = rx_flow t ~src ~dst in
    if seq < rx.expected || Hashtbl.mem rx.ooo seq then begin
      t.dups_suppressed <- t.dups_suppressed + 1;
      match t.meter with
      | None -> ()
      | Some m -> Sim.Metrics.incr m.m_dup_suppressed
    end
    else if seq = rx.expected then begin
      process t dst_node msg;
      rx.expected <- rx.expected + 1;
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt rx.ooo rx.expected with
        | Some m ->
            Hashtbl.remove rx.ooo rx.expected;
            process t dst_node m;
            rx.expected <- rx.expected + 1
        | None -> continue := false
      done
    end
    else Hashtbl.replace rx.ooo seq msg;
    send_ack t ~src ~dst ~upto:(rx.expected - 1)
  end

(* One physical transmission attempt of (seq, msg) on channel (src, dst):
   the fault model decides loss, partition, gray delay and duplication. *)
and transmit t f ~src ~dst seq msg =
  let src_node = node t src and dst_node = node t dst in
  let src_dc = src_node.dc and dst_dc = dst_node.dc in
  match Faults.judge f t.rng ~src:src_dc ~dst:dst_dc with
  | Faults.Cut -> count_drop t Partition ~src_dc ~dst_dc
  | Faults.Lost -> count_drop t Loss ~src_dc ~dst_dc
  | Faults.Deliver { extra_us; duplicate } ->
      let ep = (epoch_of t src_node, epoch_of t dst_node) in
      let deliver_after delay =
        Sim.Engine.schedule t.eng ~label:(lab_deliver t) ~delay (fun () ->
            if ep = (epoch_of t src_node, epoch_of t dst_node) then
              deliver_data t ~src ~dst seq msg)
      in
      deliver_after (transit_us t ~src_dc ~dst_dc + extra_us);
      if duplicate then deliver_after (transit_us t ~src_dc ~dst_dc + extra_us)

let rec arm_timer t f ~src ~dst fl =
  if (not fl.timer_armed) && fl.unacked <> [] then begin
    fl.timer_armed <- true;
    Sim.Engine.schedule t.eng ~label:(lab_retransmit t) ~delay:fl.rto_us
      (fun () ->
        fl.timer_armed <- false;
        if fl.unacked <> [] then begin
          let src_node = node t src and dst_node = node t dst in
          let src_dc = src_node.dc and dst_dc = dst_node.dc in
          if node_failed t src_node then begin
            meter_backlog_add t ~src_dc ~dst_dc (-List.length fl.unacked);
            fl.unacked <- []
          end
          else if node_failed t dst_node then begin
            (* the peer crashed: everything buffered is lost with it *)
            List.iter
              (fun _ -> count_drop t Crash ~src_dc ~dst_dc)
              fl.unacked;
            meter_backlog_add t ~src_dc ~dst_dc (-List.length fl.unacked);
            fl.unacked <- []
          end
          else begin
            List.iter
              (fun (seq, msg) ->
                t.retransmissions <- t.retransmissions + 1;
                (match t.meter with
                | None -> ()
                | Some m -> Sim.Metrics.incr m.m_retransmit);
                transmit t f ~src ~dst seq msg)
              fl.unacked;
            fl.rto_us <- min (2 * fl.rto_us) t.rto_cap_us;
            arm_timer t f ~src ~dst fl
          end
        end)
  end

let reliable_send t f ~src ~dst msg =
  let fl = tx_flow t ~src ~dst in
  let seq = fl.next_seq in
  fl.next_seq <- seq + 1;
  fl.unacked <- fl.unacked @ [ (seq, msg) ];
  meter_backlog_add t ~src_dc:(node t src).dc ~dst_dc:(node t dst).dc 1;
  transmit t f ~src ~dst seq msg;
  arm_timer t f ~src ~dst fl

(* ------------------------------------------------------------------ *)

let send t ~src ~dst msg =
  let src_node = node t src and dst_node = node t dst in
  if node_failed t src_node || node_failed t dst_node then
    count_drop t Crash ~src_dc:src_node.dc ~dst_dc:dst_node.dc
  else begin
    t.sent <- t.sent + 1;
    (match t.meter with
    | None -> ()
    | Some m ->
        let bytes = m.size_of msg in
        let kind_msgs, kind_bytes = meter_kind_sent m (m.kind_of msg) in
        Sim.Metrics.incr kind_msgs;
        Sim.Metrics.incr ~by:bytes kind_bytes;
        let link_msgs, link_bytes =
          meter_link m ~src_dc:src_node.dc ~dst_dc:dst_node.dc
        in
        Sim.Metrics.incr link_msgs;
        Sim.Metrics.incr ~by:bytes link_bytes);
    match t.faults with
    | Some f when src_node.dc <> dst_node.dc ->
        reliable_send t f ~src ~dst msg
    | _ -> direct_send t ~src_node ~dst_node msg
  end

(* Deliver a message a node sends to itself: no network hop, but the
   service cost is still charged (the CPU does the work). *)
let send_self t ~node:addr msg =
  let n = node t addr in
  if not (node_failed t n) then process t n msg

let messages_sent t = t.sent

let messages_dropped t =
  t.dropped_crash + t.dropped_loss + t.dropped_partition

let dropped_crash t = t.dropped_crash
let dropped_loss t = t.dropped_loss
let dropped_partition t = t.dropped_partition
let retransmissions t = t.retransmissions
let acks_sent t = t.acks_sent
let duplicates_suppressed t = t.dups_suppressed

(* In-flight reliable-layer backlog: messages sent but not yet
   acknowledged across all channels (0 once the network is quiescent). *)
let unacked_backlog t =
  Hashtbl.fold (fun _ fl acc -> acc + List.length fl.unacked) t.tx_flows 0

let unacked_matching t ~f =
  match t.meter with
  | None -> unacked_backlog t
  | Some m ->
      Hashtbl.fold
        (fun _ fl acc ->
          acc
          + List.length
              (List.filter (fun (_, msg) -> f (m.kind_of msg)) fl.unacked))
        t.tx_flows 0

let dump_flows t =
  let name a =
    let n = t.nodes.(a) in
    Printf.sprintf "dc%d/%s#%d" n.dc (if n.client then "cli" else "node") a
  in
  let tx =
    Hashtbl.fold
      (fun (src, dst) fl acc ->
        if fl.unacked = [] then acc
        else
          let seqs = List.map fst fl.unacked in
          Printf.sprintf "tx %s -> %s: unacked %d (min %d max %d) next %d rto %d armed %b rec %b"
            (name src) (name dst) (List.length seqs)
            (List.fold_left min max_int seqs)
            (List.fold_left max min_int seqs)
            fl.next_seq fl.rto_us fl.timer_armed fl.in_recovery
          :: acc)
      t.tx_flows []
  in
  let rx =
    Hashtbl.fold
      (fun (src, dst) rx acc ->
        if Hashtbl.length rx.ooo = 0 && not (Hashtbl.mem t.tx_flows (src, dst))
        then acc
        else
          Printf.sprintf "rx %s -> %s: expected %d ooo %d" (name src)
            (name dst) rx.expected (Hashtbl.length rx.ooo)
          :: acc)
      t.rx_flows []
  in
  List.sort compare (tx @ rx)

let node_processed t addr = (node t addr).processed
let node_busy_us t addr = (node t addr).busy_us

(* Fraction of the interval [0, now] the node's CPU spent processing. *)
let node_utilization t addr =
  let now = Sim.Engine.now t.eng in
  if now = 0 then 0.0
  else float_of_int (node t addr).busy_us /. float_of_int now
