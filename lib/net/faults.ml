(* Per-link fault model for the simulated network (the nemesis substrate).

   The paper's system model (§2) assumes eventual-delivery links, not
   lossless ones: messages between correct data centers may be lost,
   duplicated or delayed, and must merely arrive eventually if resent.
   This module captures that adversary:

   - [drop_p]: independent per-message loss probability;
   - [dup_p]: probability a message is delivered twice;
   - gray degradation: per-message probability of a large extra delay,
     or a deterministic extra delay pinned to a directed DC link;
   - heal-able bidirectional partitions between data-center pairs.

   Faults apply to inter-DC links only. Intra-DC links (the paper's
   redundant data-center network) stay reliable, so local 2PC and
   client/coordinator RPCs are unaffected; the WAN is the adversary.

   All random decisions draw from the [Sim.Rng.t] the caller passes in
   (the network's own stream), so faulty runs replay deterministically
   from the simulation seed. *)

type spec = {
  drop_p : float;  (* loss probability per inter-DC message *)
  dup_p : float;  (* duplication probability *)
  degrade_p : float;  (* probability of transient extra delay *)
  degrade_extra_us : int;  (* max extra delay when degraded *)
}

(* The acceptance regime of the nemesis experiments: ≥5% loss, some
   duplication, occasional multi-millisecond gray delays. *)
let default_spec =
  { drop_p = 0.05; dup_p = 0.01; degrade_p = 0.02; degrade_extra_us = 20_000 }

(* A spec with every rate at zero: partitions and per-link degradations
   can still be injected, but steady-state links behave perfectly. *)
let clean_spec =
  { drop_p = 0.0; dup_p = 0.0; degrade_p = 0.0; degrade_extra_us = 0 }

type t = {
  dcs : int;
  mutable drop_p : float;
  mutable dup_p : float;
  mutable degrade_p : float;
  mutable degrade_extra_us : int;
  cut : bool array array;  (* cut.(a).(b): link a<->b partitioned *)
  link_extra_us : int array array;  (* pinned gray delay per directed link *)
  mutable partitions_cut : int;  (* how many partitions were ever injected *)
}

let check_pair t a b name =
  if a < 0 || a >= t.dcs || b < 0 || b >= t.dcs then
    invalid_arg (name ^ ": no such data center")

let check_prob p name =
  if p < 0.0 || p > 1.0 then invalid_arg (name ^ ": probability outside [0,1]")

let of_spec ~dcs (spec : spec) =
  if dcs <= 0 then invalid_arg "Faults.of_spec: no data centers";
  check_prob spec.drop_p "Faults.of_spec drop_p";
  check_prob spec.dup_p "Faults.of_spec dup_p";
  check_prob spec.degrade_p "Faults.of_spec degrade_p";
  {
    dcs;
    drop_p = spec.drop_p;
    dup_p = spec.dup_p;
    degrade_p = spec.degrade_p;
    degrade_extra_us = spec.degrade_extra_us;
    cut = Array.make_matrix dcs dcs false;
    link_extra_us = Array.make_matrix dcs dcs 0;
    partitions_cut = 0;
  }

let create ~dcs = of_spec ~dcs clean_spec

let set_drop t p =
  check_prob p "Faults.set_drop";
  t.drop_p <- p

let set_dup t p =
  check_prob p "Faults.set_dup";
  t.dup_p <- p

let set_degrade t ~p ~extra_us =
  check_prob p "Faults.set_degrade";
  if extra_us < 0 then invalid_arg "Faults.set_degrade: negative delay";
  t.degrade_p <- p;
  t.degrade_extra_us <- extra_us

let drop_p t = t.drop_p
let dup_p t = t.dup_p

(* ------------------------------------------------------------------ *)
(* Partitions: bidirectional cuts between DC pairs, heal-able.          *)

let partition t a b =
  check_pair t a b "Faults.partition";
  if a <> b && not t.cut.(a).(b) then begin
    t.cut.(a).(b) <- true;
    t.cut.(b).(a) <- true;
    t.partitions_cut <- t.partitions_cut + 1
  end

let heal t a b =
  check_pair t a b "Faults.heal";
  t.cut.(a).(b) <- false;
  t.cut.(b).(a) <- false

let heal_all t =
  for a = 0 to t.dcs - 1 do
    for b = 0 to t.dcs - 1 do
      t.cut.(a).(b) <- false
    done
  done

let partitioned t a b =
  check_pair t a b "Faults.partitioned";
  t.cut.(a).(b)

let any_partition t =
  let found = ref false in
  for a = 0 to t.dcs - 1 do
    for b = a + 1 to t.dcs - 1 do
      if t.cut.(a).(b) then found := true
    done
  done;
  !found

let partitions_injected t = t.partitions_cut

(* ------------------------------------------------------------------ *)
(* Gray links: a pinned extra delay on a directed link, heal-able.      *)

let degrade_link t ~src ~dst ~extra_us =
  check_pair t src dst "Faults.degrade_link";
  if extra_us < 0 then invalid_arg "Faults.degrade_link: negative delay";
  t.link_extra_us.(src).(dst) <- extra_us

let clear_degrade t ~src ~dst =
  check_pair t src dst "Faults.clear_degrade";
  t.link_extra_us.(src).(dst) <- 0

let link_extra_us t ~src ~dst = t.link_extra_us.(src).(dst)

(* ------------------------------------------------------------------ *)
(* Per-message verdict. Drawn once per physical transmission attempt
   (including retransmissions), never for intra-DC traffic.             *)

type verdict =
  | Deliver of { extra_us : int; duplicate : bool }
  | Cut  (* the link is partitioned *)
  | Lost  (* random loss *)

let judge t rng ~src ~dst =
  if src = dst then Deliver { extra_us = 0; duplicate = false }
  else if t.cut.(src).(dst) then Cut
  else if t.drop_p > 0.0 && Sim.Rng.float rng 1.0 < t.drop_p then Lost
  else
    let extra =
      t.link_extra_us.(src).(dst)
      +
      if
        t.degrade_p > 0.0 && t.degrade_extra_us > 0
        && Sim.Rng.float rng 1.0 < t.degrade_p
      then 1 + Sim.Rng.int rng t.degrade_extra_us
      else 0
    in
    let duplicate = t.dup_p > 0.0 && Sim.Rng.float rng 1.0 < t.dup_p in
    Deliver { extra_us = extra; duplicate }

let pp ppf t =
  Fmt.pf ppf "@[<v>faults: drop=%.3f dup=%.3f degrade=%.3f/%dus@," t.drop_p
    t.dup_p t.degrade_p t.degrade_extra_us;
  for a = 0 to t.dcs - 1 do
    for b = a + 1 to t.dcs - 1 do
      if t.cut.(a).(b) then Fmt.pf ppf "  partition dc%d <-> dc%d@," a b
    done
  done;
  Fmt.pf ppf "@]"
