(** Message transport between simulated nodes: FIFO channels with WAN
    latency and jitter, per-node CPU (service-time) modelling, and
    whole-data-center crash failures — the system model of UniStore §2.

    Channels are perfectly reliable by default. Installing a {!Faults.t}
    ({!enable_faults} / {!set_faults}) makes inter-DC links lossy
    (drop / duplicate / gray delay / heal-able partitions) and switches
    those links to a sequence-numbered ack/retransmission layer that
    restores exactly-once FIFO {e eventual} delivery — the guarantee the
    paper's eventual-delivery links actually provide. Intra-DC traffic
    stays reliable and direct.

    Parametric in the message type. *)

type addr = int

(** Why a message was dropped: destination (or source) DC crashed, random
    link loss, or a network partition. *)
type drop_cause = Crash | Loss | Partition

val drop_cause_name : drop_cause -> string

type 'm t

val create : Sim.Engine.t -> Topology.t -> 'm t
val topology : 'm t -> Topology.t
val engine : 'm t -> Sim.Engine.t

(** [register t ~dc ~cost handler] adds a node in data center [dc].
    [cost msg] is the CPU microseconds charged to the node per message;
    [handler] runs after the service time has been paid, unless the DC has
    failed by then.

    [~client:true] marks the node as an external client session that is
    merely {e colocated} with [dc] for latency purposes: it is not part
    of the DC's failure domain, so it keeps sending and receiving while
    the DC is crashed (messages between it and the dead DC's own nodes
    still drop), and its channels survive the DC's recovery.

    [~name] is the node's profiling identity: handler-execution events
    are attributed to ["<name>/handle:<kind>"] (kind from the installed
    meter's [kind_of], or ["msg"] without one). Defaults to
    ["node<addr>"]. *)
val register :
  'm t ->
  ?client:bool ->
  ?name:string ->
  dc:int ->
  cost:('m -> int) ->
  ('m -> unit) ->
  addr

val dc_of : 'm t -> addr -> int
val dc_failed : 'm t -> int -> bool

(** Crash a whole data center: from now on its nodes neither send nor
    receive, and in-flight messages to it are dropped. *)
val fail_dc : 'm t -> int -> unit

(** Simulated time at which the DC crashed; [None] if it is live. *)
val dc_failed_at : 'm t -> int -> int option

(** Revive a crashed data center with empty in-flight state: every FIFO
    channel and reliable-layer flow touching the DC is discarded on both
    sides (fresh sequence spaces in both directions), and anything still
    in flight from before the crash is dropped on arrival. Messages the
    DC missed while down are {e not} replayed — recovering the content is
    the protocol layer's job (snapshot + log catch-up). No-op if the DC
    is live. *)
val recover_dc : 'm t -> int -> unit

(** {1 Node-level failures}

    The machine-granularity failure domain: one node dies while its DC
    stays up. Distinct from {!fail_dc} so a single replica process can
    crash and restart (with its simulated disk intact — see
    [Store.Wal]) while its siblings keep serving. *)

(** Crash a single node: it neither sends nor receives until
    {!recover_node}. Client nodes cannot node-crash
    ([Invalid_argument]). Idempotent. *)
val fail_node : 'm t -> addr -> unit

(** Restart a crashed node with a fresh incarnation: in-flight pre-crash
    traffic to or from it is dropped on arrival, every channel touching
    it is reset on both sides (fresh sequence spaces), and its CPU comes
    back idle. No-op if the node is up. *)
val recover_node : 'm t -> addr -> unit

val node_down : 'm t -> addr -> bool

(** Send a message. Per-(src,dst) delivery order is FIFO; latency is the
    topology's one-way delay plus jitter; processing at the destination is
    serialized on its CPU. Silently dropped if either end's DC failed.
    With faults installed, inter-DC messages ride the retransmission
    layer: they may arrive late (after retries) but arrive exactly once,
    in order, unless a DC crashes or a partition never heals. *)
val send : 'm t -> src:addr -> dst:addr -> 'm -> unit

(** Local delivery to self: no network hop, service cost still charged. *)
val send_self : 'm t -> node:addr -> 'm -> unit

(** {1 Fault injection} *)

(** Install a fresh all-clean fault model (or return the existing one):
    from now on inter-DC links go through the lossy transport. *)
val enable_faults : 'm t -> Faults.t

val set_faults : 'm t -> Faults.t -> unit
val faults : 'm t -> Faults.t option

(** Report drops (with their cause) to a trace. *)
val set_trace : 'm t -> Sim.Trace.t -> unit

(** Ceiling of the reliable layer's exponential retransmission backoff.
    Defaults to 500 ms; deployments derive it from the failure-detector
    configuration plus the worst-case link RTT so a healed link catches
    up on its backlog before Ω can falsely re-suspect the peer (see
    [Unistore.Config.rto_cap_us]). *)
val set_rto_cap : 'm t -> int -> unit

val rto_cap : 'm t -> int

(** {1 Metrics} *)

(** Install a metrics registry. The transport then maintains
    per-message-kind send/receive counters and byte counts
    ([net_sent_total], [net_sent_bytes], [net_received_total]), per-DC
    link traffic ([net_link_sent_total], [net_link_sent_bytes]),
    reliable-layer counters ([net_retransmits_total],
    [net_fast_retransmits_total], [net_dup_acks_total],
    [net_dups_suppressed_total], [net_acks_total]), drops by cause
    ([net_dropped_total]) and per-link flow-buffer depth gauges
    ([net_flow_backlog], with tracked maxima). [kind_of] names a
    message; [size_of] estimates its wire size in bytes. *)
val set_meter :
  'm t -> Sim.Metrics.t -> kind_of:('m -> string) -> size_of:('m -> int) -> unit

(** {1 Statistics} *)

val messages_sent : 'm t -> int

(** Total drops, all causes (= crash + loss + partition). *)
val messages_dropped : 'm t -> int

val dropped_crash : 'm t -> int
val dropped_loss : 'm t -> int
val dropped_partition : 'm t -> int

(** Physical re-sends performed by the reliable layer. *)
val retransmissions : 'm t -> int

val acks_sent : 'm t -> int

(** Receiver-side duplicates discarded (retransmit races and [dup_p]). *)
val duplicates_suppressed : 'm t -> int

(** Messages sent on lossy channels not yet acknowledged; 0 when the
    network is quiescent. *)
val unacked_backlog : 'm t -> int

(** Unacknowledged messages whose meter kind satisfies [f] — lets a
    drain loop wait for data-plane traffic to clear while ignoring
    periodic background kinds (failure-detector pings, stability
    gossip) that are always momentarily in flight. Counts the whole
    backlog when no meter is installed. *)
val unacked_matching : 'm t -> f:(string -> bool) -> int

val node_processed : 'm t -> addr -> int
val node_busy_us : 'm t -> addr -> int

(** Fraction of elapsed simulated time the node's CPU was busy. *)
val node_utilization : 'm t -> addr -> float

(** One line per non-quiescent reliable-layer flow — sender flows with
    unacked messages and receiver flows holding out-of-order buffers —
    for post-mortem debugging of stuck channels. *)
val dump_flows : 'm t -> string list
