(** Geo-distributed deployment topology with the paper's EC2 regions and
    inter-region round-trip times (§8: 26–202 ms; Virginia–California
    61 ms). *)

type region = Virginia | California | Frankfurt | Ireland | Brazil

val region_name : region -> string
val all_regions : region array

type t

(** [create regions] builds a deployment with one data center per listed
    region. [intra_dc_us] is the one-way latency between machines of the
    same data center; [jitter_us] bounds the uniform per-message jitter;
    [disk_fsync_us]/[disk_mb_per_s] describe each node's local disk
    (fsync latency, sequential write bandwidth — defaults model a
    datacenter SSD). *)
val create :
  ?intra_dc_us:int ->
  ?jitter_us:int ->
  ?disk_fsync_us:int ->
  ?disk_mb_per_s:int ->
  region array ->
  t

val dcs : t -> int
val region : t -> int -> region
val region_of_dc : t -> int -> string

(** One-way latency in microseconds between two data centers (between two
    machines of the same DC when [src = dst]). *)
val one_way : t -> src:int -> dst:int -> int

val jitter_us : t -> int

(** Per-node disk characteristics (see [create]). *)
val disk_fsync_us : t -> int

val disk_mb_per_s : t -> int

(** Worst-case round trip across the deployment: twice the largest
    one-way latency of any DC pair plus twice the jitter bound. The
    basis for deriving timeout bounds (RTO cap, reclaim debounce) from
    the deployment instead of hard-coding them. *)
val max_rtt_us : t -> int

(** The paper's deployments: §8.1–8.2 use \{Virginia, California,
    Frankfurt\}; §8.3 grows to Ireland then Brazil. *)
val three_dcs : unit -> t

val four_dcs : unit -> t
val five_dcs : unit -> t

(** First [n] data centers in the paper's growth order. *)
val n_dcs : int -> t

val pp : t Fmt.t
