(* Geo-distributed deployment topology.

   The paper evaluates on EC2 across five regions: Virginia (US-East),
   California (US-West), Frankfurt, Ireland and Brazil, with RTTs ranging
   from 26 ms to 202 ms (§8). The matrix below reproduces those RTTs; the
   figures the paper quotes directly (Virginia–California 61 ms; the
   min 26 ms and max 202 ms) are kept exact, the others are standard EC2
   inter-region measurements from the same era. *)

type region = Virginia | California | Frankfurt | Ireland | Brazil

let region_name = function
  | Virginia -> "virginia"
  | California -> "california"
  | Frankfurt -> "frankfurt"
  | Ireland -> "ireland"
  | Brazil -> "brazil"

let all_regions = [| Virginia; California; Frankfurt; Ireland; Brazil |]

let region_index = function
  | Virginia -> 0
  | California -> 1
  | Frankfurt -> 2
  | Ireland -> 3
  | Brazil -> 4

(* Full-mesh RTTs in milliseconds between the five regions. *)
let rtt_ms_matrix =
  [|
    (*            Va     Ca     Fra    Ire    Br  *)
    (* Va  *) [| 0.6; 61.0; 88.0; 75.0; 120.0 |];
    (* Ca  *) [| 61.0; 0.6; 145.0; 135.0; 195.0 |];
    (* Fra *) [| 88.0; 145.0; 0.6; 26.0; 202.0 |];
    (* Ire *) [| 75.0; 135.0; 26.0; 0.6; 180.0 |];
    (* Br  *) [| 120.0; 195.0; 202.0; 180.0; 0.6 |];
  |]

type t = {
  regions : region array;  (* regions.(dc) is the region of data center dc *)
  one_way_us : int array array;  (* one-way latency between DCs, microseconds *)
  intra_dc_us : int;  (* one-way latency between machines of the same DC *)
  jitter_us : int;  (* max uniform jitter added per message *)
  disk_fsync_us : int;  (* per-node disk: fsync latency *)
  disk_mb_per_s : int;  (* per-node disk: sequential write bandwidth *)
}

let dcs t = Array.length t.regions
let region t dc = t.regions.(dc)
let region_of_dc t dc = region_name t.regions.(dc)

(* One-way latency in microseconds between two data centers. *)
let one_way t ~src ~dst =
  if src = dst then t.intra_dc_us else t.one_way_us.(src).(dst)

let jitter_us t = t.jitter_us
let disk_fsync_us t = t.disk_fsync_us
let disk_mb_per_s t = t.disk_mb_per_s

(* Worst-case round-trip time across the deployment, jitter included:
   the largest one-way latency of any ordered DC pair, doubled, plus the
   maximum jitter a message can pick up in each direction. Used to derive
   timeout bounds (retransmission caps, leadership-bid debounces) from
   the deployment instead of hard-coding them. *)
let max_rtt_us t =
  let worst = ref t.intra_dc_us in
  let n = dcs t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      worst := max !worst (one_way t ~src ~dst)
    done
  done;
  (2 * !worst) + (2 * t.jitter_us)

(* Disk defaults model a datacenter SSD: ~0.5 ms fsync (NVMe flush),
   ~200 MB/s sustained sequential writes. Deployments override them to
   model slower media; the gray-disk nemesis degrades them at runtime. *)
let create ?(intra_dc_us = 100) ?(jitter_us = 50) ?(disk_fsync_us = 500)
    ?(disk_mb_per_s = 200) regions =
  let n = Array.length regions in
  if n = 0 then invalid_arg "Topology.create: no data centers";
  let one_way_us =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let ri = region_index regions.(i)
            and rj = region_index regions.(j) in
            int_of_float (rtt_ms_matrix.(ri).(rj) /. 2.0 *. 1000.0)))
  in
  {
    regions = Array.copy regions;
    one_way_us;
    intra_dc_us;
    jitter_us;
    disk_fsync_us;
    disk_mb_per_s;
  }

(* Deployments used by the paper's experiments. *)
let three_dcs () = create [| Virginia; California; Frankfurt |]
let four_dcs () = create [| Virginia; California; Frankfurt; Brazil |]

let five_dcs () =
  create [| Virginia; California; Frankfurt; Ireland; Brazil |]

let n_dcs n =
  if n < 1 || n > 5 then invalid_arg "Topology.n_dcs: 1..5 regions available";
  (* Growth order follows §8.3: start from {Va, Ca, Fra}, then add
     Ireland, then Brazil. *)
  let order = [| Virginia; California; Frankfurt; Ireland; Brazil |] in
  create (Array.sub order 0 n)

let pp ppf t =
  Fmt.pf ppf "@[<v>topology (%d DCs):@," (dcs t);
  Array.iteri
    (fun i r -> Fmt.pf ppf "  dc%d = %s@," i (region_name r))
    t.regions;
  Fmt.pf ppf "@]"
