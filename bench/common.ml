(* Shared machinery for the experiment harness: deploy a configuration,
   drive a workload with closed-loop clients, measure over a warmup-free
   window, and print paper-style rows.

   Scale note (see EXPERIMENTS.md): the simulator executes every message
   of every replica in one OCaml process, so experiments run shorter
   windows (1 s of simulated time instead of the paper's 5+ minutes) and
   RUBiS think times are scaled down from 500 ms so that saturation is
   reachable with a simulatable number of clients. Both rescalings leave
   the protocol behaviour (latencies, ratios, crossovers) unchanged. *)

module U = Unistore

type result = {
  r_mode : U.Config.mode;
  r_clients : int;
  r_throughput : float;  (* committed transactions per simulated second *)
  r_lat_all_ms : float;
  r_lat_causal_ms : float;
  r_lat_strong_ms : float;
  r_abort_pct : float;
  r_committed : int;
  r_history : U.History.t;
  r_sys : U.System.t;
}

let mean_ms samples =
  match Sim.Stats.mean_opt samples with
  | Some m -> m /. 1000.0
  | None -> 0.0

let collect sys ~mode ~clients =
  let h = U.System.history sys in
  {
    r_mode = mode;
    r_clients = clients;
    r_throughput =
      (match U.History.throughput h with Some t -> t | None -> 0.0);
    r_lat_all_ms = mean_ms (U.History.latency_all h);
    r_lat_causal_ms = mean_ms (U.History.latency_causal h);
    r_lat_strong_ms = mean_ms (U.History.latency_strong h);
    r_abort_pct = 100.0 *. U.History.abort_rate h;
    r_committed = U.History.committed_total h;
    r_history = h;
    r_sys = sys;
  }

(* ------------------------------------------------------------------ *)
(* Simulator speed accounting.

   Every artifact carries a [sim_events_per_sec] field: engine events
   executed by the systems deployed for it divided by the wall-clock
   time those engines spent inside [Engine.run] — not the wall time
   between artifacts, which would charge deployment setup and JSON
   writing to the simulator and understate throughput on short runs.
   Benches register each deployment with [track]
   ([run_experiment]/[run_rubis] do it automatically); [emit_artifact]
   drains the tracked set — both totals are final by the time an
   artifact is written. The field is the one wall-clock-dependent value
   in an artifact; everything else stays seed-deterministic. *)

let tracked : U.System.t list ref = ref []
let events_done = ref 0  (* events of already-drained systems *)
let wall_done = ref 0.0  (* their cumulative Engine.run wall seconds *)
let events_emitted = ref 0  (* share attributed to previous artifacts *)
let wall_emitted = ref 0.0

let track sys = tracked := sys :: !tracked

let sim_events_per_sec () =
  List.iter
    (fun s ->
      let eng = U.System.engine s in
      events_done := !events_done + Sim.Engine.executed_events eng;
      wall_done := !wall_done +. Sim.Engine.run_wall_seconds eng)
    !tracked;
  tracked := [];
  let ev = !events_done - !events_emitted in
  let dt = !wall_done -. !wall_emitted in
  events_emitted := !events_done;
  wall_emitted := !wall_done;
  if ev = 0 || dt <= 0.0 then None else Some (float_of_int ev /. dt)

(* Process-wide GC delta since the previous artifact: allocation trends
   stay visible even in non-profiled runs. Words are doubles ([float]
   fields of [Gc.stat]) because they overflow int on 32-bit. *)
let last_gc = ref (Gc.quick_stat ())

let gc_summary () =
  let g = Gc.quick_stat () in
  let prev = !last_gc in
  last_gc := g;
  Sim.Json.Obj
    [
      ("minor_words", Sim.Json.Float (g.Gc.minor_words -. prev.Gc.minor_words));
      ( "promoted_words",
        Sim.Json.Float (g.Gc.promoted_words -. prev.Gc.promoted_words) );
      ("major_words", Sim.Json.Float (g.Gc.major_words -. prev.Gc.major_words));
      ( "minor_collections",
        Sim.Json.Int (g.Gc.minor_collections - prev.Gc.minor_collections) );
      ( "major_collections",
        Sim.Json.Int (g.Gc.major_collections - prev.Gc.major_collections) );
    ]

(* Deploy [cfg], spawn [clients] closed-loop clients round-robin across
   DCs running [body], measure for [window_us] after [warmup_us]. *)
let run_experiment ~cfg ~clients ~warmup_us ~window_us ~body =
  let sys = U.System.create cfg in
  track sys;
  U.System.set_window sys ~start:warmup_us ~stop:(warmup_us + window_us);
  let stop_at = warmup_us + window_us in
  let stop () = U.System.now sys >= stop_at in
  let dcs = U.Config.dcs cfg in
  for i = 0 to clients - 1 do
    ignore (U.System.spawn_client sys ~dc:(i mod dcs) (body ~stop))
  done;
  U.System.run sys ~until:(stop_at + 50_000);
  sys

let run_micro ~mode ?(conflict = U.Config.Serializable) ~topo ~partitions
    ~clients ~spec ?(warmup_us = 400_000) ?(window_us = 1_000_000)
    ?(seed = 42) ?(measure_visibility = false) ?(f = 1) () =
  let cfg =
    U.Config.default ~topo ~partitions ~f ~mode ~conflict ~seed
      ~measure_visibility ()
  in
  let body ~stop client = Workload.Micro.client_body spec ~stop client in
  let sys = run_experiment ~cfg ~clients ~warmup_us ~window_us ~body in
  collect sys ~mode ~clients

let run_rubis ~mode ?(think_time_us = 20_000) ~topo ~partitions ~clients
    ?(warmup_us = 400_000) ?(window_us = 1_000_000) ?(seed = 42) () =
  (* STRONG treats every operation pair as conflicting (serializability);
     REDBLUE routes all strong transactions through one central service —
     they are totally ordered there, so like the original system it only
     aborts on data conflicts, while the service itself is the
     bottleneck. *)
  let conflict =
    match mode with
    | U.Config.Strong -> U.Config.Serializable
    | _ -> Workload.Rubis.conflict_spec
  in
  let cfg =
    U.Config.default ~topo ~partitions ~f:1 ~mode ~conflict ~seed ()
  in
  let sys = U.System.create cfg in
  track sys;
  let spec = { Workload.Rubis.default_spec with think_time_us } in
  Workload.Rubis.populate sys spec;
  U.System.set_window sys ~start:warmup_us ~stop:(warmup_us + window_us);
  let stop_at = warmup_us + window_us in
  let stop () = U.System.now sys >= stop_at in
  let dcs = U.Config.dcs cfg in
  for i = 0 to clients - 1 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod dcs) (fun client ->
           Workload.Rubis.client_body spec ~stop client))
  done;
  U.System.run sys ~until:(stop_at + 50_000);
  collect sys ~mode ~clients

(* ------------------------------------------------------------------ *)
(* Machine-readable artifacts (--json <dir>).                            *)

(* Destination directory for BENCH_*.json artifacts; [None] (the
   default) disables writing. Set by main.exe's [--json <dir>] flag. *)
let json_dir : string option ref = ref None

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let artifact_path ~prefix ~name =
  match !json_dir with
  | None -> None
  | Some dir ->
      mkdir_p dir;
      Some (Filename.concat dir (Fmt.str "%s_%s.json" prefix name))

let write_json path json =
  let oc = open_out path in
  output_string oc (Sim.Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc

(* Write [json] as [BENCH_<name>.json] under the [--json] directory (a
   no-op when the flag was not given). Every artifact gains the
   engine-window [sim_events_per_sec] rate (when systems were tracked)
   and a [gc] allocation/collection delta since the previous artifact. *)
let emit_artifact ~name json =
  match artifact_path ~prefix:"BENCH" ~name with
  | None -> ()
  | Some path ->
      let json =
        match json with
        | Sim.Json.Obj fields ->
            let rate =
              match sim_events_per_sec () with
              | Some r -> [ ("sim_events_per_sec", Sim.Json.Float r) ]
              | None -> []
            in
            Sim.Json.Obj (fields @ rate @ [ ("gc", gc_summary ()) ])
        | j -> j
      in
      write_json path json;
      Fmt.pr "  [json: %s]@." path

(* Write a Brendan-Gregg folded-stack export as [PROF_<name>.folded]
   (speedscope / flamegraph.pl input); no-op without [--json]. *)
let emit_folded ~name contents =
  match !json_dir with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      let path = Filename.concat dir (Fmt.str "PROF_%s.folded" name) in
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Fmt.pr "  [folded: %s]@." path

(* Write a Chrome-trace export as [TRACE_<name>.json]. *)
let emit_trace ~name trace =
  match artifact_path ~prefix:"TRACE" ~name with
  | None -> ()
  | Some path ->
      write_json path (Sim.Trace.chrome_json trace);
      Fmt.pr "  [json: %s]@." path

(* JSON view of one sweep point (the same fields [pp_result] prints). *)
let result_json r =
  Sim.Json.Obj
    [
      ("mode", Sim.Json.String (U.Config.mode_name r.r_mode));
      ("clients", Sim.Json.Int r.r_clients);
      ("throughput_tx_s", Sim.Json.Float r.r_throughput);
      ("lat_all_ms", Sim.Json.Float r.r_lat_all_ms);
      ("lat_causal_ms", Sim.Json.Float r.r_lat_causal_ms);
      ("lat_strong_ms", Sim.Json.Float r.r_lat_strong_ms);
      ("abort_pct", Sim.Json.Float r.r_abort_pct);
      ("committed", Sim.Json.Int r.r_committed);
    ]

(* ------------------------------------------------------------------ *)
(* Printing.                                                             *)

let hr () = Fmt.pr "%s@." (String.make 78 '-')

let section title =
  Fmt.pr "@.%s@." (String.make 78 '=');
  Fmt.pr "%s@." title;
  Fmt.pr "%s@." (String.make 78 '=')

let note fmt = Fmt.pr ("  " ^^ fmt ^^ "@.")

let pp_result r =
  Fmt.pr
    "  %-9s clients=%5d  thr=%9.0f tx/s  lat=%7.2f ms  causal=%6.2f ms  strong=%7.2f ms  aborts=%5.3f%%@."
    (U.Config.mode_name r.r_mode)
    r.r_clients r.r_throughput r.r_lat_all_ms r.r_lat_causal_ms
    r.r_lat_strong_ms r.r_abort_pct

let wall_clock = Unix.gettimeofday

let timed name f =
  let t0 = wall_clock () in
  let v = f () in
  Fmt.pr "  [%s: %.1fs wall]@." name (wall_clock () -. t0);
  v
