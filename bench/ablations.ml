(* Ablations of design parameters called out in the paper's text.

   1. Metadata broadcast period (§8.3): "The penalty can be reduced by
      decreasing the frequency at which sibling replicas exchange their
      stableVec, at the expense of an extra delay in the visibility of
      remote transactions." We sweep the period and measure both sides
      of the trade-off.

   2. Clock skew (§2): "The correctness of UniStore does not depend on
      the precision of clock synchronization, but large drifts may
      negatively impact its performance." We sweep the skew bound and
      measure causal latency (and verify PoR consistency still holds at
      extreme skews). *)

module U = Unistore

let partitions = 8

(* --- broadcast period: throughput vs visibility delay --------------- *)

let period_point ~period_us =
  let topo = Net.Topology.three_dcs () in
  let cfg =
    U.Config.default ~topo ~partitions ~mode:U.Config.Uniform_only
      ~broadcast_period_us:period_us ~measure_visibility:true ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  let spec =
    {
      (Workload.Micro.default_spec ~partitions) with
      update_ratio = 0.15;
      strong_ratio = 0.0;
    }
  in
  let warmup = 300_000 and window = 700_000 in
  U.System.set_window sys ~start:warmup ~stop:(warmup + window);
  let stop () = U.System.now sys >= warmup + window in
  for i = 0 to 1199 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 3) (fun c ->
           Workload.Micro.client_body spec ~stop c))
  done;
  U.System.run sys ~until:(warmup + window + 100_000);
  let h = U.System.history sys in
  let thr = match U.History.throughput h with Some t -> t | None -> 0.0 in
  let vis_p90 =
    (* delay of Californian updates at Virginia *)
    match U.History.visibility_samples h ~observer:0 ~origin:1 with
    | Some s -> (
        match Sim.Stats.percentile_opt s 90.0 with
        | Some v -> v /. 1000.0
        | None -> nan)
    | None -> nan
  in
  (thr, vis_p90)

let broadcast_period () =
  Common.section
    "Ablation — stableVec exchange period: throughput vs visibility (§8.3 \
     claim)";
  Fmt.pr "  %-12s %12s %18s@." "period (ms)" "thr (tx/s)" "vis p90 Ca→Va (ms)";
  let points =
    List.map
      (fun period_us ->
        let thr, vis = period_point ~period_us in
        Fmt.pr "  %-12.0f %12.0f %18.1f@."
          (float_of_int period_us /. 1000.0)
          thr vis;
        Sim.Json.Obj
          [
            ("period_us", Sim.Json.Int period_us);
            ("throughput_tx_s", Sim.Json.Float thr);
            ("visibility_p90_ms", Sim.Json.Float vis);
          ])
      [ 2_000; 5_000; 20_000; 50_000 ]
  in
  Common.note
    "expected: larger periods buy background-message savings and cost \
     visibility delay";
  points

(* --- clock skew: causal latency sensitivity ------------------------- *)

let skew_point ?(use_hlc = false) ~skew_us () =
  let topo = Net.Topology.three_dcs () in
  let cfg =
    U.Config.default ~topo ~partitions ~clock_skew_us:skew_us ~use_hlc
      ~record_history:true ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  let spec =
    {
      (Workload.Micro.default_spec ~partitions) with
      update_ratio = 0.5;
      strong_ratio = 0.0;
      think_time_us = 1_000;
    }
  in
  let warmup = 400_000 and window = 1_000_000 in
  U.System.set_window sys ~start:warmup ~stop:(warmup + window);
  let stop () = U.System.now sys >= warmup + window in
  for i = 0 to 59 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 3) (fun c ->
           Workload.Micro.client_body spec ~stop c))
  done;
  U.System.run sys ~until:(warmup + window + 100_000);
  let h = U.System.history sys in
  let lat =
    match Sim.Stats.mean_opt (U.History.latency_causal h) with
    | Some m -> m /. 1000.0
    | None -> nan
  in
  let check =
    U.Checker.check ~preloads:(U.History.preloads h) cfg (U.History.txns h)
  in
  (lat, U.Checker.ok check)

let clock_skew () =
  Common.section
    "Ablation — clock skew: physical vs hybrid clocks (§2, §9)";
  Fmt.pr "  %-12s %22s %22s %10s@." "skew (ms)" "physical: lat (ms)"
    "hybrid: lat (ms)" "PoR holds";
  let points =
    List.map
      (fun skew_us ->
        let lat_p, ok_p = skew_point ~skew_us () in
        let lat_h, ok_h = skew_point ~use_hlc:true ~skew_us () in
        Fmt.pr "  %-12.0f %22.2f %22.2f %10b@."
          (float_of_int skew_us /. 1000.0)
          lat_p lat_h (ok_p && ok_h);
        Sim.Json.Obj
          [
            ("skew_us", Sim.Json.Int skew_us);
            ("physical_lat_ms", Sim.Json.Float lat_p);
            ("hybrid_lat_ms", Sim.Json.Float lat_h);
            ("por_holds", Sim.Json.Bool (ok_p && ok_h));
          ])
      [ 0; 1_000; 10_000; 50_000 ]
  in
  Common.note
    "expected: with physical clocks latency grows with skew (commits and \
     reads wait for clocks to catch up); hybrid clocks merge timestamps \
     instead and stay flat; PoR holds in every configuration";
  points

let run () =
  let period_points = broadcast_period () in
  let skew_points = clock_skew () in
  Common.emit_artifact ~name:"ablations"
    (Sim.Json.Obj
       [
         ("broadcast_period", Sim.Json.List period_points);
         ("clock_skew", Sim.Json.List skew_points);
       ])
