(* Overload experiment (BENCH_overload.json): graceful degradation under
   open-loop saturation.

   An open-loop Poisson arrival process ([Workload.Openloop]) ramps the
   offered rate of all-strong update transactions through the
   certification saturation knee. Without admission control the
   pending-certification queue — and with it the p99 latency — diverges
   past the knee, the textbook open-loop collapse. With
   [admission_max_pending] set, coordinators shed arrivals beyond the
   bound with a retryable R_overloaded instead of queueing them:
   latency stays bounded, the shed fraction absorbs the excess, and
   goodput holds near the saturation plateau.

   The artifact records the admission-off ramp (knee and plateau are
   derived from it), then a stress point at twice the knee rate with
   admission off vs. on, plus machine-checkable verdicts for the
   acceptance criteria. Everything except [sim_events_per_sec] is
   deterministic under the fixed seed. *)

module U = Unistore
module Json = Sim.Json
module Openloop = Workload.Openloop

let seed = 42
let partitions = 2
let warmup_us = 500_000
let window_us = 2_000_000
let drain_us = 300_000

(* Admission bound on a DC's in-flight strong certifications, and the
   p99 bound (ms) graceful degradation is checked against. *)
let admission_bound = 60
let p99_bound_ms = 400.0

(* Heavier certification service cost than the default profile: the
   group leaders saturate within a simulatable arrival ramp (the default
   150 µs puts the knee past 6k tx/s — minutes of wall clock per point). *)
let costs = { U.Config.default_costs with U.Config.c_cert = 600 }

(* All-strong, all-update microbenchmark transactions: every commit
   crosses certification, which is where the knee lives. The wide key
   space keeps certification aborts (which would blur the goodput
   plateau) negligible. *)
let spec =
  {
    (Workload.Micro.default_spec ~partitions) with
    Workload.Micro.keys = 100_000;
    strong_ratio = 1.0;
    update_ratio = 1.0;
    ops_per_txn = 2;
    max_retries = 0;
  }

type point = {
  p_rate : float;  (* offered, tx/s *)
  p_admission : bool;
  p_goodput : float;  (* committed tx/s over the window *)
  p_p50_ms : float;
  p_p99_ms : float;
  p_shed_frac : float;
  p_queue_peak : float;  (* max pending_certifications over any DC *)
  p_arrivals : int;
  p_committed : int;
  p_shed : int;
}

let pct samples q =
  match Sim.Stats.percentile_opt samples q with
  | Some v -> v /. 1000.0
  | None -> 0.0

let queue_peak sys =
  List.fold_left
    (fun acc (_, g) -> Float.max acc (Sim.Metrics.gauge_max g))
    0.0
    (Sim.Metrics.gauges_matching (U.System.metrics sys) "pending_certifications")

(* One open-loop deployment under an arbitrary rate schedule and
   transaction body; [label_rate] is the rate recorded for the point
   (peak rate for shaped schedules). *)
let run_shaped ~label_rate ~rate_fn ~body ~admission =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions ~f:1
      ~admission_max_pending:(if admission then admission_bound else 0)
      ~costs ~seed ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  U.System.set_window sys ~start:warmup_us ~stop:(warmup_us + window_us);
  let stop_at = warmup_us + window_us in
  let rng =
    Sim.Rng.split (Sim.Engine.rng (U.System.engine sys)) ~id:0xa221
  in
  let times = Openloop.arrivals ~rng ~rate:rate_fn ~until_us:stop_at in
  let stats = Openloop.install sys ~arrivals:times ~body in
  U.System.run sys ~until:(stop_at + drain_us);
  let h = U.System.history sys in
  let lat = U.History.latency_all h in
  {
    p_rate = label_rate;
    p_admission = admission;
    p_goodput =
      (match U.History.throughput h with Some t -> t | None -> 0.0);
    p_p50_ms = pct lat 50.0;
    p_p99_ms = pct lat 99.0;
    p_shed_frac = Openloop.shed_fraction stats;
    p_queue_peak = queue_peak sys;
    p_arrivals = stats.Openloop.arrivals;
    p_committed = stats.Openloop.committed;
    p_shed = stats.Openloop.shed;
  }

let run_point ~rate ~admission =
  run_shaped ~label_rate:rate ~rate_fn:(Openloop.constant rate)
    ~body:(Openloop.micro_body spec) ~admission

let point_json p =
  Json.Obj
    [
      ("offered_tx_s", Json.Float p.p_rate);
      ("admission", Json.Bool p.p_admission);
      ("goodput_tx_s", Json.Float p.p_goodput);
      ("p50_ms", Json.Float p.p_p50_ms);
      ("p99_ms", Json.Float p.p_p99_ms);
      ("shed_fraction", Json.Float p.p_shed_frac);
      ("queue_depth_peak", Json.Float p.p_queue_peak);
      ("arrivals", Json.Int p.p_arrivals);
      ("committed", Json.Int p.p_committed);
      ("shed", Json.Int p.p_shed);
    ]

let pp_point p =
  Common.note
    "%-9s offered=%6.0f tx/s  goodput=%6.0f tx/s  p50=%8.2f ms  p99=%8.2f \
     ms  shed=%5.1f%%  queue-peak=%6.0f"
    (if p.p_admission then "admit" else "no-admit")
    p.p_rate p.p_goodput p.p_p50_ms p.p_p99_ms
    (100.0 *. p.p_shed_frac)
    p.p_queue_peak

let run () =
  Common.section
    "Overload — open-loop saturation ramp, admission control off vs. on";
  Common.note
    "all-strong update transactions, Poisson arrivals, %d ms window, seed %d"
    (window_us / 1000) seed;
  Common.hr ();
  (* ramp with admission off: locates the knee and the goodput plateau *)
  let ramp_rates = [ 250.0; 500.0; 750.0; 1000.0; 1250.0; 1500.0; 2000.0 ] in
  let ramp = List.map (fun rate -> run_point ~rate ~admission:false) ramp_rates in
  List.iter pp_point ramp;
  let plateau =
    List.fold_left (fun acc p -> Float.max acc p.p_goodput) 0.0 ramp
  in
  (* knee: first offered rate the store no longer keeps up with *)
  let knee =
    let rec find = function
      | [] -> plateau
      | p :: rest ->
          if p.p_goodput < 0.85 *. p.p_rate then p.p_rate else find rest
    in
    find ramp
  in
  let pre_knee =
    match List.find_opt (fun p -> p.p_rate < knee) (List.rev ramp) with
    | Some p -> p
    | None -> List.hd ramp
  in
  Common.hr ();
  Common.note "knee ≈ %.0f tx/s, plateau %.0f tx/s, pre-knee p99 %.2f ms" knee
    plateau pre_knee.p_p99_ms;
  (* stress point: twice the knee, with and without admission control *)
  let stress_rate = 2.0 *. knee in
  let stress_off = run_point ~rate:stress_rate ~admission:false in
  let stress_on = run_point ~rate:stress_rate ~admission:true in
  pp_point stress_off;
  pp_point stress_on;
  let off_p99_blowup =
    pre_knee.p_p99_ms > 0.0 && stress_off.p_p99_ms > 10.0 *. pre_knee.p_p99_ms
  in
  let off_queue_diverged =
    stress_off.p_queue_peak > 3.0 *. float_of_int admission_bound
  in
  let on_p99_bounded = stress_on.p_p99_ms <= p99_bound_ms in
  let on_goodput_held = stress_on.p_goodput >= 0.8 *. plateau in
  Common.note
    "verdicts: off-p99-blowup=%b off-queue-diverged=%b on-p99-bounded=%b \
     on-goodput-held=%b (shed %.1f%%)"
    off_p99_blowup off_queue_diverged on_p99_bounded on_goodput_held
    (100.0 *. stress_on.p_shed_frac);
  (* hot-key shift: a flash crowd aims its strong transactions at one
     partition's certification leader, then the hot set moves to the
     other partition mid-burst ([Openloop.switch_body]), moving the
     backlog admission control must bound with it. The verdict is that
     shedding keeps p99 bounded across the move, where the uncontrolled
     run collapses on whichever leader is hot. *)
  Common.hr ();
  let burst_at = warmup_us + (window_us / 4) in
  let burst_dur = window_us / 2 in
  let shift_at = burst_at + (burst_dur / 2) in
  let base_rate = 0.5 *. knee and burst_rate = 2.0 *. knee in
  let hot_rate =
    Openloop.flash_crowd ~base:base_rate ~peak:burst_rate ~at_us:burst_at
      ~duration_us:burst_dur
  in
  let hot_spec p =
    { spec with Workload.Micro.hot_partition = Some (p, 0.9) }
  in
  let hot_body =
    Openloop.switch_body ~at_us:shift_at
      (Openloop.micro_body (hot_spec 0))
      (Openloop.micro_body (hot_spec 1))
  in
  Common.note
    "hot-key shift: flash crowd %.0f -> %.0f tx/s at t=%d ms, hot partition \
     0 -> 1 at t=%d ms"
    base_rate burst_rate (burst_at / 1000) (shift_at / 1000);
  let hot_off =
    run_shaped ~label_rate:burst_rate ~rate_fn:hot_rate ~body:hot_body
      ~admission:false
  in
  let hot_on =
    run_shaped ~label_rate:burst_rate ~rate_fn:hot_rate ~body:hot_body
      ~admission:true
  in
  pp_point hot_off;
  pp_point hot_on;
  let hot_off_p99_blowup =
    pre_knee.p_p99_ms > 0.0 && hot_off.p_p99_ms > 10.0 *. pre_knee.p_p99_ms
  in
  let hot_on_p99_bounded = hot_on.p_p99_ms <= p99_bound_ms in
  let hot_on_sheds = hot_on.p_shed > 0 in
  let hot_on_goodput_held = hot_on.p_goodput >= 0.8 *. base_rate in
  Common.note
    "hot-shift verdicts: off-p99-blowup=%b on-p99-bounded=%b on-sheds=%b \
     on-goodput-held=%b"
    hot_off_p99_blowup hot_on_p99_bounded hot_on_sheds hot_on_goodput_held;
  Common.emit_artifact ~name:"overload"
    (Json.Obj
       [
         ("experiment", Json.String "overload");
         ("seed", Json.Int seed);
         ("window_us", Json.Int window_us);
         ("admission_max_pending", Json.Int admission_bound);
         ("p99_bound_ms", Json.Float p99_bound_ms);
         ("ramp", Json.List (List.map point_json ramp));
         ("knee_tx_s", Json.Float knee);
         ("plateau_tx_s", Json.Float plateau);
         ("pre_knee_p99_ms", Json.Float pre_knee.p_p99_ms);
         ("stress_rate_tx_s", Json.Float stress_rate);
         ("stress_admission_off", point_json stress_off);
         ("stress_admission_on", point_json stress_on);
         ( "hot_shift",
           Json.Obj
             [
               ("base_tx_s", Json.Float base_rate);
               ("burst_tx_s", Json.Float burst_rate);
               ("burst_at_us", Json.Int burst_at);
               ("burst_duration_us", Json.Int burst_dur);
               ("shift_at_us", Json.Int shift_at);
               ("admission_off", point_json hot_off);
               ("admission_on", point_json hot_on);
             ] );
         ( "verdicts",
           Json.Obj
             [
               ("off_p99_blowup", Json.Bool off_p99_blowup);
               ("off_queue_diverged", Json.Bool off_queue_diverged);
               ("on_p99_bounded", Json.Bool on_p99_bounded);
               ("on_goodput_held", Json.Bool on_goodput_held);
               ("hot_shift_off_p99_blowup", Json.Bool hot_off_p99_blowup);
               ("hot_shift_on_p99_bounded", Json.Bool hot_on_p99_bounded);
               ("hot_shift_on_sheds", Json.Bool hot_on_sheds);
               ("hot_shift_on_goodput_held", Json.Bool hot_on_goodput_held);
             ] );
       ])
