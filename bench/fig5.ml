(* Figure 5 (§8.3): the throughput cost of tracking uniformity.

   CUREFT (Cure + transaction forwarding, no uniformity metadata) vs
   UNIFORM (UniStore without strong transactions: tracks uniformity and
   exposes remote transactions only when uniform), growing the
   deployment from 3 to 5 data centers (adding Ireland, then Brazil).

   Microbenchmark: causal transactions only, 15% updates, 3 items each.
   Paper shape: throughput roughly constant as DCs are added; uniformity
   costs ~8% on average, growing with the number of DCs (~10.6% at 5). *)

module U = Unistore

let partitions = 16
let clients_per_dc = 550

let run_point ~mode ~dcs =
  let topo = Net.Topology.n_dcs dcs in
  let spec =
    {
      (Workload.Micro.default_spec ~partitions) with
      update_ratio = 0.15;
      strong_ratio = 0.0;
    }
  in
  Common.run_micro ~mode ~topo ~partitions ~clients:(clients_per_dc * dcs)
    ~spec ~warmup_us:300_000 ~window_us:800_000 ()

let run () =
  Common.section
    "Figure 5 — cost of tracking uniformity: CUREFT vs UNIFORM, 3-5 DCs";
  Fmt.pr "  %-6s %14s %14s %8s %16s@." "DCs" "cureft (tx/s)"
    "uniform (tx/s)" "drop" "uniform tx/s/DC";
  let drops = ref [] and rows = ref [] in
  List.iter
    (fun dcs ->
      let cure = run_point ~mode:U.Config.Cure_ft ~dcs in
      let unif = run_point ~mode:U.Config.Uniform_only ~dcs in
      let drop =
        if cure.Common.r_throughput > 0.0 then
          100.0 *. (1.0 -. (unif.Common.r_throughput /. cure.Common.r_throughput))
        else 0.0
      in
      drops := drop :: !drops;
      rows :=
        Sim.Json.Obj
          [
            ("dcs", Sim.Json.Int dcs);
            ("cureft_tx_s", Sim.Json.Float cure.Common.r_throughput);
            ("uniform_tx_s", Sim.Json.Float unif.Common.r_throughput);
            ("drop_pct", Sim.Json.Float drop);
          ]
        :: !rows;
      Fmt.pr "  %-6d %14.0f %14.0f %7.1f%% %16.0f@." dcs
        cure.Common.r_throughput unif.Common.r_throughput drop
        (unif.Common.r_throughput /. float_of_int dcs))
    [ 3; 4; 5 ];
  let avg =
    let l = !drops in
    List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  Fmt.pr "  average uniformity cost: %.1f%% (paper: ~8.0%%, ~10.6%% at 5 \
          DCs)@."
    avg;
  Common.emit_artifact ~name:"fig5"
    (Sim.Json.Obj
       [
         ("rows", Sim.Json.List (List.rev !rows));
         ("avg_drop_pct", Sim.Json.Float avg);
       ])
