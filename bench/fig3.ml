(* Figure 3 (§8.1): RUBiS bidding mix, throughput vs average latency for
   UNISTORE, REDBLUE, STRONG and CAUSAL.

   Deployment: 3 DCs (Virginia, California, Frankfurt); the paper uses
   4 machines × 8 partitions per DC and 500 ms think time — we scale to
   16 partitions per DC and 20 ms think time so saturation is reachable
   with a simulatable number of clients (see EXPERIMENTS.md; think time
   only shifts the client-count axis, not the curves). *)

module U = Unistore

let partitions = 16
let client_counts = [| 400; 1200; 2400; 4800 |]

let modes =
  [
    U.Config.Unistore;
    U.Config.Red_blue;
    U.Config.Strong;
    U.Config.Causal_only;
  ]

let run () =
  Common.section
    "Figure 3 — RUBiS: throughput vs average latency (bidding mix, 3 DCs)";
  Common.note
    "paper shape: UNISTORE peaks ~72%% above REDBLUE and ~183%% above STRONG;";
  Common.note
    "CAUSAL is the upper bound; latencies: UNISTORE ~16.5 ms vs STRONG ~80.4 ms";
  Common.hr ();
  let peaks = Hashtbl.create 4 in
  let points = ref [] in
  List.iter
    (fun mode ->
      Fmt.pr "@.  [%s]@." (U.Config.mode_name mode);
      Array.iter
        (fun clients ->
          let r =
            Common.run_rubis ~mode ~topo:(Net.Topology.three_dcs ())
              ~partitions ~clients ~warmup_us:300_000 ~window_us:800_000 ()
          in
          Common.pp_result r;
          points := Common.result_json r :: !points;
          let best =
            match Hashtbl.find_opt peaks mode with
            | Some p -> max p r.Common.r_throughput
            | None -> r.Common.r_throughput
          in
          Hashtbl.replace peaks mode best)
        client_counts)
    modes;
  Common.hr ();
  let peak m = try Hashtbl.find peaks m with Not_found -> 0.0 in
  let pct a b = if b > 0.0 then 100.0 *. ((a /. b) -. 1.0) else 0.0 in
  Fmt.pr "  peak throughput (tx/s):@.";
  List.iter
    (fun m -> Fmt.pr "    %-9s %9.0f@." (U.Config.mode_name m) (peak m))
    modes;
  Fmt.pr
    "  UNISTORE vs REDBLUE: %+.0f%%  (paper: +72%%)@."
    (pct (peak U.Config.Unistore) (peak U.Config.Red_blue));
  Fmt.pr
    "  UNISTORE vs STRONG:  %+.0f%%  (paper: +183%%)@."
    (pct (peak U.Config.Unistore) (peak U.Config.Strong));
  Fmt.pr
    "  CAUSAL vs UNISTORE:  %+.0f%%  (paper: UNISTORE pays ~45%% vs CAUSAL)@."
    (pct (peak U.Config.Causal_only) (peak U.Config.Unistore));
  Common.emit_artifact ~name:"fig3"
    (Sim.Json.Obj
       [
         ("points", Sim.Json.List (List.rev !points));
         ( "peak_tx_s",
           Sim.Json.Obj
             (List.map
                (fun m ->
                  (U.Config.mode_name m, Sim.Json.Float (peak m)))
                modes) );
       ])
