(* Figures 1 and 2 (§4): the liveness scenarios that motivate transaction
   forwarding and uniformity, replayed as scripted failure schedules.
   These are qualitative figures in the paper; here the runner prints the
   observed event sequence so the mechanism is visible. *)

module U = Unistore
module Client = U.Client
module Fiber = Sim.Fiber

let fig1 () =
  Common.section "Figure 1 — transaction forwarding preserves Eventual \
                  Visibility";
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:4
      ~record_history:true ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  U.System.preload sys 1 (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         Client.start c;
         Client.update c 1 (Crdt.Reg_write 42);
         ignore (Client.commit c);
         Common.note "t=%6dus  t1 committed at California (d1)"
           (U.System.now sys)));
  Sim.Engine.schedule (U.System.engine sys) ~delay:45_000 (fun () ->
      Common.note
        "t=%6dus  California fails: t1 reached Virginia but not Frankfurt"
        (U.System.now sys);
      U.System.fail_dc sys 1);
  let forwarded = ref false in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         let rec poll () =
           Client.start c;
           let v = Client.read_int c 1 in
           ignore (Client.commit c);
           if v = 42 then begin
             forwarded := true;
             Common.note
               "t=%6dus  t1 visible at Frankfurt via forwarding from Virginia"
               (U.System.now sys)
           end
           else begin
             Fiber.sleep 100_000;
             poll ()
           end
         in
         poll ()));
  U.System.run sys ~until:8_000_000;
  let converged =
    match U.System.check_convergence sys with
    | [] ->
        Common.note "correct DCs converged: Eventual Visibility holds";
        true
    | errs ->
        List.iter (Common.note "DIVERGENCE: %s") errs;
        false
  in
  let por = Explore.Oracle.por sys in
  Common.note "PoR check: %s" por.Explore.Oracle.detail;
  (!forwarded, converged, por)

let fig2 () =
  Common.section "Figure 2 — strong transactions wait for uniform \
                  dependencies (liveness)";
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:4
      ~record_history:true ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  U.System.preload sys 1 (Crdt.Reg_write 0);
  U.System.preload sys 2 (Crdt.Reg_write 0);
  ignore
    (U.System.spawn_client sys ~dc:1 (fun c ->
         Client.start c;
         Client.update c 1 (Crdt.Reg_write 1);
         ignore (Client.commit c);
         Common.note "t=%6dus  t1 (causal) committed at California"
           (U.System.now sys);
         Client.start c ~strong:true;
         ignore (Client.read_int c 1);
         Client.update c 2 (Crdt.Reg_write 2);
         (match Client.commit c with
         | `Committed _ ->
             Common.note
               "t=%6dus  t2 (strong) committed — its dependency t1 is \
                already uniform"
               (U.System.now sys);
             U.System.fail_dc sys 1;
             Common.note "t=%6dus  California fails immediately afterwards"
               (U.System.now sys)
         | `Aborted -> Common.note "t2 aborted (unexpected)")));
  let live = ref false in
  ignore
    (U.System.spawn_client sys ~dc:2 (fun c ->
         Fiber.sleep 2_000_000;
         let rec attempt n =
           Client.start c ~strong:true;
           let v = Client.read_int c 2 in
           Client.update c 2 (Crdt.Reg_write 3);
           match Client.commit c with
           | `Committed _ ->
               live := true;
               Common.note
                 "t=%6dus  t3 (strong, conflicts with t2) committed at \
                  Frankfurt having observed t2's write (%d) — liveness \
                  preserved"
                 (U.System.now sys) v
           | `Aborted ->
               if n < 30 then begin
                 Fiber.sleep 200_000;
                 attempt (n + 1)
               end
               else Common.note "t3 never committed: LIVENESS VIOLATION"
         in
         attempt 0));
  U.System.run sys ~until:15_000_000;
  let converged =
    match U.System.check_convergence sys with
    | [] ->
        Common.note "correct DCs converged";
        true
    | errs ->
        List.iter (Common.note "DIVERGENCE: %s") errs;
        false
  in
  let por = Explore.Oracle.por sys in
  Common.note "PoR check: %s" por.Explore.Oracle.detail;
  (!live, converged, por)

let run () =
  let fwd, conv1, por1 = fig1 () in
  let live, conv2, por2 = fig2 () in
  Common.emit_artifact ~name:"scenarios"
    (Sim.Json.Obj
       [
         ( "fig1",
           Sim.Json.Obj
             [
               ("forwarding_visible", Sim.Json.Bool fwd);
               ("converged", Sim.Json.Bool conv1);
               ("por_safe", Sim.Json.Bool por1.Explore.Oracle.pass);
               ("por", Sim.Json.String por1.Explore.Oracle.detail);
             ] );
         ( "fig2",
           Sim.Json.Obj
             [
               ("strong_liveness", Sim.Json.Bool live);
               ("converged", Sim.Json.Bool conv2);
               ("por_safe", Sim.Json.Bool por2.Explore.Oracle.pass);
               ("por", Sim.Json.String por2.Explore.Oracle.detail);
             ] );
       ])
