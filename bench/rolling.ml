(* Rolling-restart artefact (BENCH_rolling.json): node-level durability
   under live open-loop traffic.

   With [Config.persistence] every replica appends to a checksummed WAL
   on a simulated per-node disk before acking, so a node crash is
   recoverable locally: restart replays snapshot + WAL tail, pulls only
   the suffix it missed from a live sibling, and never transfers a WAN
   snapshot. This artefact rolls a whole DC — crash/restart each
   partition in turn, staggered so at most one node is down — while an
   open-loop workload keeps arriving at every DC, and checks the
   operational claims behind "safe rolling restarts":

   - the deployment converges and no strong transaction is left behind;
   - every node of the DC restarted exactly once, each recovered from
     its own disk (zero WAN snapshot bytes; local replay + suffix pull
     carried the catch-up);
   - p99 latency over the measurement window, which contains the whole
     roll, stays bounded — the roll is a blip, not an outage.

   A second sub-run tears the first node's final WAL record before its
   crash (the half-written sector a power cut leaves) and runs the
   schedule twice: recovery truncates the torn tail, re-pulls the
   difference, still moves no WAN snapshot — and the whole run is
   byte-deterministic under its seed. *)

module U = Unistore
module Json = Sim.Json
module Openloop = Workload.Openloop

let seed = 42
let partitions = 2
let rate_tx_s = 300.0
let warmup_us = 500_000
let window_us = 6_000_000 (* contains the whole roll *)
let horizon_us = 12_000_000
let roll_dc = 2
let roll_start_us = 3_000_000
let down_us = 600_000
let stagger_us = 1_500_000
(* the tail during a roll is client failover (150 ms) stacked on a
   strong commit's WAN round trip and one retry — bounded, not a
   queueing collapse *)
let p99_bound_ms = 500.0

(* Mostly-causal mix with a strong component, wide key space: the
   interesting traffic for a roll is ordinary production load, not a
   certification stress test. *)
let spec =
  {
    (Workload.Micro.default_spec ~partitions) with
    Workload.Micro.keys = 50_000;
    strong_ratio = 0.1;
    update_ratio = 0.5;
    ops_per_txn = 2;
    max_retries = 1;
  }

let counter_total reg name =
  List.fold_left
    (fun acc (_, c) -> acc + Sim.Metrics.counter_value c)
    0
    (Sim.Metrics.counters_matching reg name)

let pct samples q =
  match Sim.Stats.percentile_opt samples q with
  | Some v -> v /. 1000.0
  | None -> 0.0

type run = {
  r_sys : U.System.t;
  r_stats : Openloop.stats;
  r_committed : int;
  r_p50_ms : float;
  r_p99_ms : float;
  r_converged : bool;
  r_pending : int;
}

let run_schedule ~seed ~tear () =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions ~f:1
      ~persistence:true ~client_failover_us:150_000 ~seed ~record_history:true
      ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  U.System.set_window sys ~start:warmup_us ~stop:(warmup_us + window_us);
  let sched =
    U.Nemesis.rolling_restart ~dc:roll_dc ~partitions ~start_us:roll_start_us
      ~down_us ~stagger_us
  in
  U.Nemesis.inject sys sched;
  if tear then
    (* corrupt the first rolled node's final WAL record just before its
       crash: the restart must truncate the torn tail and recover anyway *)
    Sim.Engine.schedule_at (U.System.engine sys) ~time:(roll_start_us - 1_000)
      (fun () ->
        U.Replica.tear_disk_next (U.System.replica sys ~dc:roll_dc ~part:0));
  let rng = Sim.Rng.split (Sim.Engine.rng (U.System.engine sys)) ~id:0x4011 in
  let times =
    Openloop.arrivals ~rng
      ~rate:(Openloop.constant rate_tx_s)
      ~until_us:(warmup_us + window_us)
  in
  let stats =
    Openloop.install sys ~arrivals:times ~body:(Openloop.micro_body spec)
  in
  U.System.run sys ~until:horizon_us;
  let h = U.System.history sys in
  let lat = U.History.latency_all h in
  {
    r_sys = sys;
    r_stats = stats;
    r_committed = U.History.committed_total h;
    r_p50_ms = pct lat 50.0;
    r_p99_ms = pct lat 99.0;
    r_converged = U.System.check_convergence sys = [];
    r_pending = U.System.pending_strong sys;
  }

let run () =
  Common.section
    "Rolling restart — node-level durability under live open-loop traffic";
  Common.note
    "roll dc%d (%d partitions) at t=%ds: %d ms down per node, %d ms stagger, \
     %.0f tx/s arrivals, seed %d"
    roll_dc partitions (roll_start_us / 1_000_000) (down_us / 1_000)
    (stagger_us / 1_000) rate_tx_s seed;
  Common.hr ();
  let r = run_schedule ~seed ~tear:false () in
  let reg = U.System.metrics r.r_sys in
  let restarts = counter_total reg "node_restarts_total" in
  let wan_snapshot = counter_total reg "sync_snapshot_bytes_total" in
  let replayed = counter_total reg "replay_entries_total" in
  let local_bytes = counter_total reg "local_catchup_bytes_total" in
  Common.note
    "committed %d of %d arrivals; p50 %.2f ms, p99 %.2f ms over the roll \
     window"
    r.r_committed r.r_stats.Openloop.arrivals r.r_p50_ms r.r_p99_ms;
  Common.note
    "restarts: %d; replayed %d WAL entries, %d local catch-up bytes, %d WAN \
     snapshot bytes"
    restarts replayed local_bytes wan_snapshot;
  let v_converged = r.r_converged in
  let v_no_pending = r.r_pending = 0 in
  let v_all_restarted = restarts = partitions in
  let v_zero_wan = wan_snapshot = 0 in
  let v_local_recovery = replayed > 0 && local_bytes > 0 in
  let v_p99_bounded = r.r_p99_ms > 0.0 && r.r_p99_ms <= p99_bound_ms in
  (* the explorer's safety oracle over the recorded history: a roll must
     not just look available, it must stay PoR-correct *)
  let por = Explore.Oracle.por r.r_sys in
  Common.note "PoR check: %s" por.Explore.Oracle.detail;
  Common.note
    "verdicts: converged=%b no-pending-strong=%b all-nodes-restarted=%b \
     zero-wan-snapshot=%b local-recovery=%b p99-bounded=%b por=%b"
    v_converged v_no_pending v_all_restarted v_zero_wan v_local_recovery
    v_p99_bounded por.Explore.Oracle.pass;
  (* torn-tail sub-run, twice: recovery truncates, still no WAN
     snapshot, and the run replays byte-identically under the seed *)
  Common.hr ();
  let torn_seed = seed + 1 in
  let t1 = run_schedule ~seed:torn_seed ~tear:true () in
  let t2 = run_schedule ~seed:torn_seed ~tear:true () in
  let torn_fp r =
    let reg = U.System.metrics r.r_sys in
    ( r.r_committed,
      r.r_stats.Openloop.arrivals,
      counter_total reg "replay_entries_total",
      counter_total reg "wal_appended_bytes_total" )
  in
  let t1_reg = U.System.metrics t1.r_sys in
  let torn_truncations = counter_total t1_reg "wal_torn_truncations_total" in
  let torn_wan = counter_total t1_reg "sync_snapshot_bytes_total" in
  let v_torn_truncated = torn_truncations >= 1 in
  let v_torn_zero_wan = torn_wan = 0 in
  let v_torn_deterministic = torn_fp t1 = torn_fp t2 && t1.r_converged in
  Common.note
    "torn tail: %d truncation(s), %d WAN snapshot bytes, committed %d \
     (deterministic replay: %b)"
    torn_truncations torn_wan t1.r_committed v_torn_deterministic;
  let verdicts =
    [
      ("converged", v_converged);
      ("no_pending_strong", v_no_pending);
      ("all_nodes_restarted", v_all_restarted);
      ("zero_wan_snapshot", v_zero_wan);
      ("local_recovery", v_local_recovery);
      ("p99_bounded", v_p99_bounded);
      ("por_safe", por.Explore.Oracle.pass);
      ("torn_tail_truncated", v_torn_truncated);
      ("torn_tail_zero_wan", v_torn_zero_wan);
      ("torn_tail_deterministic", v_torn_deterministic);
    ]
  in
  let all_pass = List.for_all snd verdicts in
  Common.note "rolling restart: %s"
    (if all_pass then "ALL VERDICTS PASS" else "VERDICT FAILURES");
  Common.emit_artifact ~name:"rolling"
    (Json.Obj
       [
         ("experiment", Json.String "rolling");
         ("seed", Json.Int seed);
         ("rate_tx_s", Json.Float rate_tx_s);
         ("roll_dc", Json.Int roll_dc);
         ("partitions", Json.Int partitions);
         ("roll_start_us", Json.Int roll_start_us);
         ("down_us", Json.Int down_us);
         ("stagger_us", Json.Int stagger_us);
         ("p99_bound_ms", Json.Float p99_bound_ms);
         ("report", U.Report.of_system ~name:"rolling" r.r_sys);
         ("arrivals", Json.Int r.r_stats.Openloop.arrivals);
         ("committed", Json.Int r.r_committed);
         ("p50_ms", Json.Float r.r_p50_ms);
         ("p99_ms", Json.Float r.r_p99_ms);
         ("node_restarts", Json.Int restarts);
         ("replay_entries", Json.Int replayed);
         ("local_catchup_bytes", Json.Int local_bytes);
         ("wan_snapshot_bytes", Json.Int wan_snapshot);
         ("pending_strong", Json.Int r.r_pending);
         ("por", Json.String por.Explore.Oracle.detail);
         ( "torn_tail",
           Json.Obj
             [
               ("seed", Json.Int torn_seed);
               ("truncations", Json.Int torn_truncations);
               ("wan_snapshot_bytes", Json.Int torn_wan);
               ("committed", Json.Int t1.r_committed);
               ("deterministic", Json.Bool v_torn_deterministic);
             ] );
         ( "verdicts",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Bool v)) verdicts) );
         ("all_pass", Json.Bool all_pass);
       ])
