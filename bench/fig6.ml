(* Figure 6 (§8.3): visibility delay of remote transactions when reading
   from a uniform snapshot.

   4 DCs (Virginia, California, Frankfurt, Brazil) with f = 2: a data
   center exposes a remote transaction once it knows that 3 DCs store it.
   The figure shows the CDF of the extra delay (visible - received) for
   updates originating at California, observed at Brazil (best case:
   ~5 ms at the 90th percentile) and at Virginia (worst case: ~92 ms at
   the 90th percentile, because Virginia must hear that a third, distant
   DC stores the transaction). *)

module U = Unistore

let partitions = 8
let virginia = 0
let california = 1
let brazil = 3

let run () =
  Common.section
    "Figure 6 — extra visibility delay under uniform reads (4 DCs, f = 2)";
  let topo = Net.Topology.four_dcs () in
  let spec =
    {
      (Workload.Micro.default_spec ~partitions) with
      update_ratio = 1.0;
      strong_ratio = 0.0;
      think_time_us = 2_000;
    }
  in
  let cfg =
    U.Config.default ~topo ~partitions ~f:2 ~mode:U.Config.Uniform_only
      ~measure_visibility:true ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  let stop_at = 4_000_000 in
  let stop () = U.System.now sys >= stop_at in
  (* updates originate at California, as in the paper's measurement *)
  for _ = 1 to 150 do
    ignore
      (U.System.spawn_client sys ~dc:california (fun c ->
           Workload.Micro.client_body spec ~stop c))
  done;
  U.System.run sys ~until:(stop_at + 500_000);
  let h = U.System.history sys in
  let pcts = [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0 ] in
  let report ~observer name paper =
    match U.History.visibility_samples h ~observer ~origin:california with
    | Some s when Sim.Stats.count s > 0 ->
        Fmt.pr "  California -> %-9s (%d samples)  (paper: %s)@." name
          (Sim.Stats.count s) paper;
        Fmt.pr "    %-6s %8s@." "pct" "delay ms";
        List.iter
          (fun p ->
            Fmt.pr "    p%-5.0f %8.1f@." p
              (Sim.Stats.percentile s p /. 1000.0))
          pcts;
        Sim.Json.Obj
          [
            ("observer", Sim.Json.String name);
            ("samples", Sim.Json.Int (Sim.Stats.count s));
            ( "delay_ms",
              Sim.Json.Obj
                (List.map
                   (fun p ->
                     ( Fmt.str "p%.0f" p,
                       Sim.Json.Float (Sim.Stats.percentile s p /. 1000.0) ))
                   pcts) );
          ]
    | _ ->
        Fmt.pr "  California -> %s: no samples@." name;
        Sim.Json.Obj
          [
            ("observer", Sim.Json.String name);
            ("samples", Sim.Json.Int 0);
          ]
  in
  let j_brazil = report ~observer:brazil "brazil" "~5 ms at p90 (best case)" in
  let j_virginia =
    report ~observer:virginia "virginia" "~92 ms at p90 (worst case)"
  in
  Common.emit_artifact ~name:"fig6"
    (Sim.Json.Obj
       [ ("origin", Sim.Json.String "california");
         ("observers", Sim.Json.List [ j_brazil; j_virginia ]) ])
