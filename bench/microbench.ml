(* Bechamel microbenchmarks: one [Test.make] per paper artefact, each
   measuring the dominant protocol primitive of that experiment. These
   complement the simulation harness (which regenerates the tables and
   figures themselves) with CPU-level costs of the implementation. *)

open Bechamel
open Toolkit

module U = Unistore
module Vc = Vclock.Vc

(* Figure 3's inner loop: snapshot reads against a populated op-log. *)
let test_fig3_snapshot_read =
  let log = Store.Oplog.create () in
  let snap = Vc.of_array [| 500; 500; 500; 500 |] in
  for i = 1 to 1000 do
    let vec = Vc.of_array [| i; 0; 0; 0 |] in
    Store.Oplog.append log (i mod 50) ~op:(Crdt.Reg_write i) ~vec
      ~tag:{ Crdt.lc = i; origin = 0 }
  done;
  Test.make ~name:"fig3: op-log snapshot read"
    (Staged.stage (fun () -> ignore (Store.Oplog.read log 7 ~snap)))

(* The latency table's dominant metadata operation: vector joins. *)
let test_tab_vector_ops =
  let a = Vc.of_array [| 5; 9; 2; 7 |] and b = Vc.of_array [| 3; 11; 2; 6 |] in
  Test.make ~name:"tab-latency: vector clock join+leq"
    (Staged.stage (fun () ->
         let j = Vc.join a b in
         ignore (Vc.leq a j)))

(* Figure 4's certification hot path: the Algorithm A8 check. *)
let test_fig4_certification =
  let ops_of i =
    [ (0, [ { U.Types.key = i; cls = 0; write = true } ]) ]
  in
  Test.make ~name:"fig4: certification conflict check"
    (Staged.stage
       (let ctr = ref 0 in
        fun () ->
          incr ctr;
          ignore
            (U.Config.txs_conflict U.Config.Serializable
               (List.concat_map snd (ops_of (!ctr mod 100)))
               (List.concat_map snd (ops_of ((!ctr + 1) mod 100))))))

(* Figure 5's extra work: recomputing uniformVec from a stable matrix. *)
let test_fig5_uniform_recompute =
  let dcs = 5 and f = 2 in
  let matrix = Array.init dcs (fun i -> Vc.of_array [| i; i + 1; i + 2; i; i; 0 |]) in
  Test.make ~name:"fig5: uniformVec recomputation"
    (Staged.stage (fun () ->
         (* min over the f largest sibling entries, per origin *)
         for j = 0 to dcs - 1 do
           let others = ref [] in
           for h = 1 to dcs - 1 do
             others := Vc.get matrix.(h) j :: !others
           done;
           let sorted = List.sort (fun a b -> compare b a) !others in
           ignore (min (Vc.get matrix.(0) j) (List.nth sorted (f - 1)))
         done))

(* Figure 6's bookkeeping: Zipf sampling driving the update stream. *)
let test_fig6_workload_gen =
  let rng = Sim.Rng.create 7 in
  let zipf = Sim.Zipf.create ~n:100_000 ~theta:0.0 in
  Test.make ~name:"fig6: workload key sampling"
    (Staged.stage (fun () -> ignore (Sim.Zipf.sample zipf rng)))

(* End-to-end: one simulated event dispatch. *)
let test_engine_dispatch =
  Test.make ~name:"substrate: engine schedule+dispatch"
    (Staged.stage
       (let eng = Sim.Engine.create () in
        fun () ->
          Sim.Engine.schedule eng ~delay:1 (fun () -> ());
          Sim.Engine.run eng))

let benchmarks =
  [
    test_fig3_snapshot_read;
    test_tab_vector_ops;
    test_fig4_certification;
    test_fig5_uniform_recompute;
    test_fig6_workload_gen;
    test_engine_dispatch;
  ]

let run () =
  Common.section "Bechamel microbenchmarks (protocol primitives)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = analyze results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              estimates := (name, est) :: !estimates;
              Fmt.pr "  %-40s %10.1f ns/run@." name est
          | _ -> Fmt.pr "  %-40s (no estimate)@." name)
        analysis)
    benchmarks;
  (* note: ns/run values are wall-clock measurements, not deterministic *)
  Common.emit_artifact ~name:"micro"
    (Sim.Json.Obj
       [
         ( "ns_per_run",
           Sim.Json.Obj
             (List.map
                (fun (name, est) -> (name, Sim.Json.Float est))
                (List.sort compare !estimates)) );
       ])
