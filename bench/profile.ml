(* Self-profiling artifact (BENCH_profile.json): the engine profiles a
   fixed workload mix — a fig3-style closed loop, an open-loop overload
   burst under admission control, and a nemesis churn run with
   persistence on — and the merged per-label breakdown (event counts,
   allocation words per event, sampled wall estimates) becomes the
   document [bin/perfcheck.exe] gates against bench/PERF_BASELINE.json.

   Event counts and allocation words are exact and deterministic under
   the fixed seed; only the sampled wall-clock estimates (and the
   artifact-level [sim_events_per_sec]) vary across machines. The same
   merged breakdown is exported as PROF_profile.folded for
   speedscope/flamegraph.pl. *)

module U = Unistore
module Json = Sim.Json
module Prof = Sim.Prof
module Openloop = Workload.Openloop

let seed = 42
let partitions = 4
let sample_every = 64

(* Closed-loop microbenchmark leg: the fig3 shape (mixed causal/strong
   transactions, closed-loop clients over three DCs), with disks on. *)
let run_closed () =
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions ~f:1
      ~seed ~persistence:true ~profile:true
      ~profile_sample_every:sample_every ()
  in
  let spec = Workload.Micro.default_spec ~partitions in
  let body ~stop client = Workload.Micro.client_body spec ~stop client in
  Common.run_experiment ~cfg ~clients:45 ~warmup_us:200_000
    ~window_us:1_000_000 ~body

(* Open-loop flash-crowd leg: all-strong updates through a flash crowd
   with admission control shedding the excess — exercises the
   certification queue, admission sheds and client fibers. *)
let run_burst () =
  let warmup_us = 200_000 and window_us = 1_000_000 in
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions:2 ~f:1
      ~seed ~persistence:true ~admission_max_pending:60
      ~costs:{ U.Config.default_costs with U.Config.c_cert = 600 }
      ~profile:true ~profile_sample_every:sample_every ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  U.System.set_window sys ~start:warmup_us ~stop:(warmup_us + window_us);
  let stop_at = warmup_us + window_us in
  let spec =
    {
      (Workload.Micro.default_spec ~partitions:2) with
      Workload.Micro.keys = 100_000;
      strong_ratio = 1.0;
      update_ratio = 1.0;
      ops_per_txn = 2;
      max_retries = 0;
    }
  in
  let rng = Sim.Rng.split (Sim.Engine.rng (U.System.engine sys)) ~id:0xbf01 in
  let rate =
    Openloop.flash_crowd ~base:300.0 ~peak:1200.0 ~at_us:(warmup_us + 200_000)
      ~duration_us:500_000
  in
  let times = Openloop.arrivals ~rng ~rate ~until_us:stop_at in
  ignore (Openloop.install sys ~arrivals:times ~body:(Openloop.micro_body spec));
  U.System.run sys ~until:(stop_at + 300_000);
  sys

(* Nemesis churn leg: lossy links plus a scripted partition, a node
   crash/restart from disk, and a whole-DC crash/rejoin — exercises the
   retransmission layer, the detector, the WAL and the sync path. *)
let run_churn () =
  let horizon_us = 8_000_000 in
  let cfg =
    U.Config.default ~topo:(Net.Topology.three_dcs ()) ~partitions ~f:1
      ~seed ~persistence:true ~link_faults:Net.Faults.default_spec
      ~profile:true ~profile_sample_every:sample_every ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  U.System.set_window sys ~start:500_000 ~stop:(horizon_us - 1_000_000);
  let sched =
    [
      { U.Nemesis.at_us = 1_000_000; ev = U.Nemesis.Partition (0, 1) };
      { U.Nemesis.at_us = 2_200_000; ev = U.Nemesis.Heal (0, 1) };
      { U.Nemesis.at_us = 2_500_000;
        ev = U.Nemesis.Crash_node { dc = 1; part = 0 } };
      { U.Nemesis.at_us = 3_200_000;
        ev = U.Nemesis.Restart_node { dc = 1; part = 0 } };
      { U.Nemesis.at_us = 3_500_000; ev = U.Nemesis.Crash_dc 2 };
      { U.Nemesis.at_us = 5_000_000; ev = U.Nemesis.Recover_dc 2 };
      { U.Nemesis.at_us = 6_500_000; ev = U.Nemesis.Heal_all };
    ]
  in
  U.Nemesis.inject sys sched;
  let spec = Workload.Micro.default_spec ~partitions in
  let stop () = U.System.now sys >= horizon_us - 1_000_000 in
  for i = 0 to 8 do
    ignore
      (U.System.spawn_client sys ~dc:(i mod 3) (fun c ->
           Workload.Micro.client_body spec ~stop c))
  done;
  U.System.run sys ~until:horizon_us;
  sys

let run_json name sys =
  let p = Sim.Engine.prof (U.System.engine sys) in
  let h = U.System.history sys in
  Json.Obj
    [
      ("name", Json.String name);
      ("simulated_us", Json.Int (U.System.now sys));
      ("committed", Json.Int (U.History.committed_total h));
      ("events", Json.Int (Prof.total_events p));
      ("coverage_pct", Json.Float (Prof.coverage_pct p));
    ]

let run () =
  Common.section
    "Profile — engine self-profiling over the fixed workload mix";
  Common.note
    "closed loop + overload burst + nemesis churn, persistence on, seed %d, \
     wall sampling every %d events"
    seed sample_every;
  Common.hr ();
  let legs =
    [
      ("closed_loop", run_closed);
      ("overload_burst", run_burst);
      ("nemesis_churn", run_churn);
    ]
  in
  let runs =
    List.map
      (fun (name, f) ->
        let sys = Common.timed name f in
        let p = Sim.Engine.prof (U.System.engine sys) in
        Common.note "%s: %d events, %.1f%% attributed" name
          (Prof.total_events p) (Prof.coverage_pct p);
        U.Report.pp_hot_paths ~n:8 Fmt.stdout sys;
        (name, sys))
      legs
  in
  let merged =
    Prof.merge
      (List.map
         (fun (_, sys) -> Prof.entries (Sim.Engine.prof (U.System.engine sys)))
         runs)
  in
  let total =
    List.fold_left
      (fun acc (_, sys) ->
        acc + Prof.total_events (Sim.Engine.prof (U.System.engine sys)))
      0 runs
  in
  let noise_events, noise_words =
    List.fold_left
      (fun (ne, nw) (_, sys) ->
        let p = Sim.Engine.prof (U.System.engine sys) in
        (ne + Prof.noise_events p, nw +. Prof.noise_words p))
      (0, 0.0) runs
  in
  let attributed =
    List.fold_left
      (fun acc e -> if e.Prof.e_label <> "other" then acc + e.Prof.e_events else acc)
      0 merged
  in
  let coverage =
    if total = 0 then 100.0
    else 100.0 *. float_of_int attributed /. float_of_int total
  in
  let required_labels = [ "net/deliver"; "wal/fsync" ] in
  let labels_present =
    List.for_all
      (fun l -> List.exists (fun e -> e.Prof.e_label = l) merged)
      required_labels
  in
  let coverage_ge_95 = coverage >= 95.0 in
  Common.hr ();
  Common.note
    "merged: %d events over %d labels, %.1f%% attributed; verdicts: \
     coverage-ge-95=%b required-labels-present=%b"
    total (List.length merged) coverage coverage_ge_95 labels_present;
  Common.emit_folded ~name:"profile"
    (Prof.folded_of_entries ~sample_every merged);
  Common.emit_artifact ~name:"profile"
    (Json.Obj
       [
         ("experiment", Json.String "profile");
         ("seed", Json.Int seed);
         ("sample_every", Json.Int sample_every);
         ("runs", Json.List (List.map (fun (n, s) -> run_json n s) runs));
         ( "profile",
           Prof.entries_to_json ~noise_events ~noise_words ~sample_every
             ~total_events:total merged );
         ( "verdicts",
           Json.Obj
             [
               ("coverage_ge_95", Json.Bool coverage_ge_95);
               ("required_labels_present", Json.Bool labels_present);
               ("all_pass", Json.Bool (coverage_ge_95 && labels_present));
             ] );
       ])
